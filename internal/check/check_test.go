package check

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// checkedSubset builds a random graph and a maintained PPR subset the
// auditors should accept as healthy.
func checkedSubset(t *testing.T) *ppr.Subset {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g := graph.New(20)
	for g.NumEdges() < 60 {
		u, v := int32(rng.Intn(20)), int32(rng.Intn(20))
		if u != v {
			g.InsertEdge(u, v)
		}
	}
	sub, err := ppr.NewSubset(g, []int32{0, 3, 9}, ppr.Params{Alpha: 0.2, RMax: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestPPRAuditorsAcceptHealthyState(t *testing.T) {
	sub := checkedSubset(t)
	if err := PPRSubset(sub); err != nil {
		t.Fatalf("healthy subset failed PPRSubset: %v", err)
	}
	if err := PPRSubsetExact(sub); err != nil {
		t.Fatalf("healthy subset failed PPRSubsetExact: %v", err)
	}
}

// TestPPRStateDetectsCorruption plants the corruption classes PPRState is
// specified to catch: broken mass accounting, push-threshold violations,
// out-of-range keys, and non-finite values.
func TestPPRStateDetectsCorruption(t *testing.T) {
	cases := map[string]struct {
		mutate func(*ppr.State)
		want   string
	}{
		"estimate mass leak": {
			func(st *ppr.State) { st.P[st.Source] += 1e-3 },
			"mass accounting",
		},
		"residue above push threshold": {
			func(st *ppr.State) { st.R[st.Source] += 0.5; st.P[st.Source] -= 0.5 },
			"push invariant",
		},
		"estimate key out of range": {
			func(st *ppr.State) { v := st.P[st.Source]; st.P[500] = v; st.P[st.Source] = 0 },
			"outside graph",
		},
		"residue key negative": {
			func(st *ppr.State) { st.R[-2] = 0 },
			"outside graph",
		},
		"non-finite estimate": {
			func(st *ppr.State) { st.P[st.Source] = math.NaN() },
			"non-finite",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			sub := checkedSubset(t)
			tc.mutate(sub.Fwd[0])
			err := PPRSubset(sub)
			if err == nil {
				t.Fatal("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPPRExactDetectsEstimateDrift: an estimate moved away from ground
// truth with mass accounting kept internally consistent slips past
// PPRState (the bug class the ground-truth auditor exists for) but must
// fail PPRExact.
func TestPPRExactDetectsEstimateDrift(t *testing.T) {
	sub := checkedSubset(t)
	st := sub.Fwd[0]
	// Move estimate mass between two nodes: Σp unchanged, residues
	// untouched — PPRState accepts, the exact audit must not.
	st.P[st.Source] -= 5e-3
	st.P[(st.Source+1)%20] += 5e-3
	if err := PPRState(sub.Engine.G, sub.Engine.Params, st); err != nil {
		t.Fatalf("mass-neutral drift tripped the cheap auditor: %v", err)
	}
	err := PPRSubsetExact(sub)
	if err == nil {
		t.Fatal("estimate drift went undetected by exact audit")
	}
	if !strings.Contains(err.Error(), "residue bound") {
		t.Fatalf("error %q does not mention the residue bound", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintVec([]float64{1, 2, 3})
	if FingerprintVec([]float64{1, 2, 3}) != base {
		t.Fatal("fingerprint not deterministic")
	}
	for name, v := range map[string][]float64{
		"value change": {1, 2, 3.0000000001},
		"order swap":   {2, 1, 3},
		"truncation":   {1, 2},
		"zero padding": {1, 2, 3, 0},
	} {
		if FingerprintVec(v) == base {
			t.Errorf("%s not detected", name)
		}
	}

	rows := FingerprintRows([][]float64{{1, 2}, {3}})
	if FingerprintRows([][]float64{{1}, {2, 3}}) == rows {
		t.Error("row-structure change not detected")
	}

	snap := Snapshot([][]float64{{1}}, [][]float64{{2}}, []float64{3})
	for name, other := range map[string]uint64{
		"x change": Snapshot([][]float64{{1.5}}, [][]float64{{2}}, []float64{3}),
		"y change": Snapshot([][]float64{{1}}, [][]float64{{2.5}}, []float64{3}),
		"s change": Snapshot([][]float64{{1}}, [][]float64{{2}}, []float64{3.5}),
		"x/y swap": Snapshot([][]float64{{2}}, [][]float64{{1}}, []float64{3}),
	} {
		if other == snap {
			t.Errorf("snapshot fingerprint misses %s", name)
		}
	}
}
