package treesvd

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/tree-svd/treesvd/internal/wal"
)

// Repro: corrupt a WAL record whose seq is <= the newest checkpoint seq.
// Lenient recovery drops it (harmless — the checkpoint covers it), but the
// new writer resumes at ckSeq+1, leaving a sequence gap vs the surviving
// WAL tail. Batches acknowledged after that open are then dropped by the
// NEXT open.
func TestGapAfterLenientDropBelowCheckpoint(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	acked, _, err := fx.runWorkload(wal.OS, dir)
	if err != nil {
		t.Fatalf("workload: %v (acked %d)", err, acked)
	}

	// Find the oldest remaining WAL segment and flip a byte in its first
	// record's CRC (offset segHdr=8 + 12).
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	if len(segs) == 0 {
		t.Skip("no wal segments remain")
	}
	p := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8+16 {
		t.Skipf("segment too short: %d", len(data))
	}
	data[8+12] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := Open(dir, fx.cfg)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	t.Logf("first open recovery: %+v", d.Recovery())

	// Apply two more acknowledged batches (SyncBatch default).
	extra := fx.batches[:2]
	for i, b := range extra {
		if _, err := d.ApplyEvents(bgt, b); err != nil {
			t.Fatalf("extra batch %d: %v", i, err)
		}
	}
	want := copyMat(d.Embedder().Embedding())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, fx.cfg)
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	t.Logf("second open recovery: %+v", d2.Recovery())
	if d2.Recovery().DroppedBatches > 0 {
		t.Fatalf("second open dropped %d acknowledged batches (reason: %s)",
			d2.Recovery().DroppedBatches, d2.Recovery().DropReason)
	}
	requireMatClose(t, d2.Embedder().Embedding(), want, "state after reopen")
}
