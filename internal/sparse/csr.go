// Package sparse provides the sparse-matrix substrate for Tree-SVD: an
// immutable CSR matrix used by the randomized SVD kernels, and DynRow, a
// mutable row-sparse matrix that the PPR engine updates in place while the
// lazy-update machinery tracks per-column-block Frobenius norms and deltas.
package sparse

import (
	"fmt"
	"sort"

	"github.com/tree-svd/treesvd/internal/linalg"
)

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32   // len Rows+1
	ColIdx     []int32   // len nnz, sorted within each row
	Val        []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the (i,j) element (binary search within the row).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := m.ColIdx[lo:hi]
	k := sort.Search(len(idx), func(p int) bool { return idx[p] >= int32(j) })
	if k < len(idx) && idx[k] == int32(j) {
		return m.Val[int(lo)+k]
	}
	return 0
}

// FrobNorm returns the Frobenius norm.
func (m *CSR) FrobNorm() float64 { return linalg.Norm2(m.Val) }

// ToDense materializes the matrix densely (tests and small matrices only).
func (m *CSR) ToDense() *linalg.Dense {
	out := linalg.NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		orow := out.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			orow[m.ColIdx[p]] = m.Val[p]
		}
	}
	return out
}

// SliceColsCSR extracts the column range [lo,hi) as a new CSR with column
// indices rebased to start at 0. Cost O(Rows·log(nnz/row) + output nnz).
func (m *CSR) SliceColsCSR(lo, hi int) *CSR {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("sparse: SliceColsCSR [%d,%d) out of 0..%d", lo, hi, m.Cols))
	}
	out := &CSR{Rows: m.Rows, Cols: hi - lo, RowPtr: make([]int32, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		s, e := m.RowPtr[i], m.RowPtr[i+1]
		idx := m.ColIdx[s:e]
		a := sort.Search(len(idx), func(p int) bool { return idx[p] >= int32(lo) })
		b := sort.Search(len(idx), func(p int) bool { return idx[p] >= int32(hi) })
		for p := a; p < b; p++ {
			out.ColIdx = append(out.ColIdx, idx[p]-int32(lo))
			out.Val = append(out.Val, m.Val[int(s)+p])
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// Builder accumulates triplets and assembles a CSR. Duplicate (i,j) entries
// are summed.
type Builder struct {
	rows, cols int
	is, js     []int32
	vs         []float64
}

// NewBuilder creates a builder for an r×c matrix.
func NewBuilder(r, c int) *Builder { return &Builder{rows: r, cols: c} }

// Add records a triplet. Zero values are kept out.
func (b *Builder) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add (%d,%d) out of %d×%d", i, j, b.rows, b.cols))
	}
	b.is = append(b.is, int32(i))
	b.js = append(b.js, int32(j))
	b.vs = append(b.vs, v)
}

// Build assembles the CSR, summing duplicates and dropping resulting zeros.
func (b *Builder) Build() *CSR {
	n := len(b.vs)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(x, y int) bool {
		a, c := order[x], order[y]
		if b.is[a] != b.is[c] {
			return b.is[a] < b.is[c]
		}
		return b.js[a] < b.js[c]
	})
	out := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int32, b.rows+1)}
	for k := 0; k < n; {
		p := order[k]
		i, j := b.is[p], b.js[p]
		sum := b.vs[p]
		k++
		for k < n && b.is[order[k]] == i && b.js[order[k]] == j {
			sum += b.vs[order[k]]
			k++
		}
		if sum != 0 {
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, sum)
			out.RowPtr[i+1]++
		}
	}
	for i := 0; i < b.rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// Transpose returns the CSC-equivalent of m as a new CSR (rows and
// columns swapped) via counting sort — O(nnz + Rows + Cols).
func (m *CSR) Transpose() *CSR {
	out := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int32, m.Cols+1)}
	out.ColIdx = make([]int32, m.NNZ())
	out.Val = make([]float64, m.NNZ())
	// Count entries per column of m.
	for _, c := range m.ColIdx {
		out.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int32(nil), out.RowPtr[:m.Cols]...)
	for r := 0; r < m.Rows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			slot := next[c]
			next[c]++
			out.ColIdx[slot] = int32(r)
			out.Val[slot] = m.Val[p]
		}
	}
	return out
}
