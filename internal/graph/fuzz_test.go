package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEvents hardens the stream parser: arbitrary input must either
// parse into a stream whose invariants validate, or return an error —
// never panic.
func FuzzReadEvents(f *testing.F) {
	f.Add("# nodes 5 snapshots 2\nend 1\nend 2\n0 1 +\n1 2 +\n")
	f.Add("# nodes 3 snapshots 1\nend 1\n0 1 -\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add("# nodes 2 snapshots 0\n0 1 +\n0 1 +\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadEvents(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ReadEvents accepted a stream that fails Validate: %v", err)
		}
		// Round-trip: what parses must re-serialize and re-parse equal.
		var buf bytes.Buffer
		if s.NumNodes == 0 && len(s.Events) > 0 {
			return // writer would produce events outside the node bound
		}
		if err := s.WriteEvents(&buf); err != nil {
			t.Fatalf("WriteEvents failed on parsed stream: %v", err)
		}
		s2, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(s2.Events) != len(s.Events) || len(s2.Ends) != len(s.Ends) {
			t.Fatal("round-trip changed the stream shape")
		}
	})
}
