// Package par provides the tiny worker-pool primitive used to
// parallelize the embarrassingly parallel stages of the pipeline:
// per-source PPR pushes, per-block level-1 factorizations and per-parent
// tree merges. The paper's reference setup uses 64 threads; this library
// mirrors that with a Workers knob (0 = GOMAXPROCS) threaded through the
// public configs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values < 1 mean GOMAXPROCS.
func Workers(w int) int {
	if w < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// For runs fn(i) for every i in [0,n) across at most w workers. With one
// worker (or n ≤ 1) it degenerates to a plain loop — no goroutines, no
// overhead, fully deterministic ordering.
func For(n, w int, fn func(i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForWorker is For with the worker index passed to fn, so callers can use
// per-worker scratch state (e.g. one push engine per worker). Worker ids
// are in [0, Workers(w)) and stable within one call.
func ForWorker(n, w int, fn func(worker, i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}
