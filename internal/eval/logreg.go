// Package eval implements the downstream-task machinery of the paper's
// evaluation: a one-vs-rest logistic-regression classifier for node
// classification (micro/macro F1), and the link-prediction protocol of
// Section 6.1 (70/30 edge split, balanced negative sampling, precision at
// the balanced cut).
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tree-svd/treesvd/internal/linalg"
)

// LogRegConfig tunes the one-vs-rest logistic regression.
type LogRegConfig struct {
	// Epochs over the training set.
	Epochs int
	// LearningRate is the AdaGrad base step.
	LearningRate float64
	// L2 is the ridge penalty.
	L2 float64
	// Seed shuffles the sample order.
	Seed int64
}

// DefaultLogRegConfig is adequate for embedding-quality comparison.
func DefaultLogRegConfig() LogRegConfig {
	return LogRegConfig{Epochs: 60, LearningRate: 0.5, L2: 1e-4, Seed: 1}
}

// LogReg is a one-vs-rest logistic-regression classifier with AdaGrad.
type LogReg struct {
	classes int
	dim     int
	w       *linalg.Dense // classes×(dim+1), last column is the bias
}

// TrainLogReg fits the classifier on rows of x with integer labels
// y ∈ [0, classes).
func TrainLogReg(x *linalg.Dense, y []int, classes int, cfg LogRegConfig) *LogReg {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("eval: %d rows vs %d labels", x.Rows, len(y)))
	}
	if classes < 2 {
		panic(fmt.Sprintf("eval: %d classes", classes))
	}
	m := &LogReg{classes: classes, dim: x.Cols, w: linalg.NewDense(classes, x.Cols+1)}
	gsum := linalg.NewDense(classes, x.Cols+1)
	for i := range gsum.Data {
		gsum.Data[i] = 1e-8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(x.Rows)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			row := x.Row(i)
			for c := 0; c < classes; c++ {
				wrow := m.w.Row(c)
				grow := gsum.Row(c)
				z := wrow[x.Cols] + linalg.Dot(wrow[:x.Cols], row)
				p := sigmoid(z)
				target := 0.0
				if y[i] == c {
					target = 1
				}
				err := p - target
				for j, xv := range row {
					grad := err*xv + cfg.L2*wrow[j]
					grow[j] += grad * grad
					wrow[j] -= cfg.LearningRate * grad / math.Sqrt(grow[j])
				}
				gb := err
				grow[x.Cols] += gb * gb
				wrow[x.Cols] -= cfg.LearningRate * gb / math.Sqrt(grow[x.Cols])
			}
		}
	}
	return m
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Predict returns the argmax class per row of x.
func (m *LogReg) Predict(x *linalg.Dense) []int {
	if x.Cols != m.dim {
		panic(fmt.Sprintf("eval: predict dim %d vs trained %d", x.Cols, m.dim))
	}
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		best, bestZ := 0, math.Inf(-1)
		for c := 0; c < m.classes; c++ {
			wrow := m.w.Row(c)
			z := wrow[m.dim] + linalg.Dot(wrow[:m.dim], row)
			if z > bestZ {
				best, bestZ = c, z
			}
		}
		out[i] = best
	}
	return out
}

// MicroF1 computes the micro-averaged F1 of single-label predictions,
// which for exhaustive single-label classification equals accuracy.
func MicroF1(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("eval: prediction/truth length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// MacroF1 averages the per-class F1 over classes that appear in the truth.
func MacroF1(pred, truth []int, classes int) float64 {
	if len(pred) != len(truth) {
		panic("eval: prediction/truth length mismatch")
	}
	tp := make([]int, classes)
	fp := make([]int, classes)
	fn := make([]int, classes)
	present := make([]bool, classes)
	for i := range pred {
		present[truth[i]] = true
		if pred[i] == truth[i] {
			tp[pred[i]]++
		} else {
			fp[pred[i]]++
			fn[truth[i]]++
		}
	}
	var sum float64
	count := 0
	for c := 0; c < classes; c++ {
		if !present[c] {
			continue
		}
		count++
		denom := float64(2*tp[c] + fp[c] + fn[c])
		if denom > 0 {
			sum += 2 * float64(tp[c]) / denom
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// TrainTestSplit partitions indices 0..n-1 into a train set of ⌈ratio·n⌉
// elements and the complement, deterministically for a seed.
func TrainTestSplit(n int, ratio float64, seed int64) (train, test []int) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cut := int(math.Ceil(ratio * float64(n)))
	if cut > n {
		cut = n
	}
	return perm[:cut], perm[cut:]
}

// Classify is the end-to-end node-classification protocol: split rows,
// train on the train rows, return micro and macro F1 on the test rows.
func Classify(x *linalg.Dense, y []int, classes int, trainRatio float64, cfg LogRegConfig) (micro, macro float64) {
	train, test := TrainTestSplit(x.Rows, trainRatio, cfg.Seed)
	xtr := linalg.NewDense(len(train), x.Cols)
	ytr := make([]int, len(train))
	for i, r := range train {
		copy(xtr.Row(i), x.Row(r))
		ytr[i] = y[r]
	}
	model := TrainLogReg(xtr, ytr, classes, cfg)
	xte := linalg.NewDense(len(test), x.Cols)
	yte := make([]int, len(test))
	for i, r := range test {
		copy(xte.Row(i), x.Row(r))
		yte[i] = y[r]
	}
	pred := model.Predict(xte)
	return MicroF1(pred, yte), MacroF1(pred, yte, classes)
}
