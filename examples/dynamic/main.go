// Dynamic: the millisecond dynamic path end to end. A churn stream runs
// through the same embedder twice — recompute-only, then with the
// Brand-style incremental SVD update path (Config.SVDUpdate) enabled,
// both under SOR-accelerated push (Config.PushAccel) — while a trace
// hook prints every per-block decision the scheduler makes: which
// violating blocks were absorbed by an incremental update and which
// fell through to a full re-factorization. The closing Metrics() comparison shows
// what the decisions bought: the update hit rate and the per-block cost
// gap between the two refresh paths (see DESIGN.md §13 and the README's
// "Dynamic path" section).
package main

import (
	"context"
	"fmt"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
)

func main() {
	// A churn-heavy stream in the regime the update path is built for:
	// wide blocks (Branch 4 × Levels 2 = 4 leaf blocks over 1536
	// columns), rank covering the subset, coarse push, and a δ tight
	// enough that steady churn violates the Eqn. 2 trigger regularly.
	subset := make([]int32, 40)
	for i := range subset {
		subset[i] = int32(i * 36)
	}
	initial, stream := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: 1500, MaxNodes: 1536, Degree: 5,
		Batches: 24, BatchSize: 48,
		SelfLoopFrac: 0.05, DeleteFrac: 0.2, DupFrac: 0.05, MissFrac: 0.05, GrowFrac: 0.02,
		BigBatch: -1,
		Protect:  subset,
		Seed:     11,
	})
	cfg := treesvd.Config{
		Dim: 40, Branch: 4, Levels: 2, MaxNodes: 1536, Seed: 3,
		RMax: 0.05, Delta: 0.003,
		// Let every violating block attempt the update — the tail budget
		// (default UpdateTailFrac) still decides when accumulated
		// truncation error forces a refreshing recompute. The tight δ
		// above makes the default eligibility gate (UpdateMaxRel 0.5 of
		// the trigger) too strict for this stream's batch size.
		UpdateMaxRel: 1e6,
		// SOR-accelerated Forward-Push in both passes, so the A/B below
		// isolates the factorization path. The accelerated schedule
		// satisfies the same residue bound and exact-PPR audits as the
		// classic one — only the push count changes.
		PushAccel: treesvd.PushSOR,
	}
	fmt.Printf("stream: %d batches x %d events over %d nodes, %d leaf blocks\n\n",
		len(stream), 48, initial.NumNodes(), 4)

	run := func(update bool) treesvd.Metrics {
		c := cfg
		c.SVDUpdate = update
		emb, err := treesvd.New(initial.Clone(), subset, c)
		if err != nil {
			panic(err)
		}
		if update {
			// The hook runs inline on factorization workers: keep it to
			// a single print, and never call back into the embedder.
			emb.SetTraceHook(func(ev treesvd.TraceEvent) {
				switch ev.Kind {
				case treesvd.TraceBlockUpdate:
					fmt.Printf("  batch block %2d: incremental update in %8v\n",
						ev.Block, ev.Dur.Round(time.Microsecond))
				case treesvd.TraceBlockRecompute:
					fmt.Printf("  batch block %2d: full re-factorization in %8v\n",
						ev.Block, ev.Dur.Round(time.Microsecond))
				}
			})
		}
		t0 := time.Now()
		for _, batch := range stream {
			if _, err := emb.ApplyEvents(context.Background(), batch); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(t0)
		st := emb.LastStats()
		fmt.Printf("variant %-9s: stream applied in %v (last batch: %d rebuilt, %d updated, %d cached)\n",
			name(update), elapsed.Round(time.Millisecond),
			st.Level1Rebuilt, st.Level1Updated, st.Skipped)
		return emb.Metrics()
	}

	fmt.Println("pass 1: recompute-only (SVDUpdate off) — every violating block re-factors")
	base := run(false)
	fmt.Println("\npass 2: SVDUpdate on — per-block decisions as they happen:")
	upd := run(true)

	hit := 0.0
	if n := upd.BlocksUpdated + upd.BlocksRebuilt; n > 0 {
		hit = float64(upd.BlocksUpdated) / float64(n)
	}
	fmt.Printf("\nrecompute-only: %d blocks re-factored, block-factor p50 %v\n",
		base.BlocksRebuilt, base.BlockFactor.P50.Round(time.Microsecond))
	fmt.Printf("update path:    %d re-factored + %d updated (hit rate %.0f%%, %d fallbacks), block-update p50 %v\n",
		upd.BlocksRebuilt, upd.BlocksUpdated, 100*hit, upd.UpdateFallbacks,
		upd.BlockUpdate.P50.Round(time.Microsecond))
	fmt.Println("\nThe per-block gap is the whole story: absorbing a small delta into")
	fmt.Println("the cached (U, Σ, V) costs a fraction of re-running the randomized")
	fmt.Println("SVD, and the fallback gates bound its error inside the same √2·δ·‖B‖")
	fmt.Println("budget the lazy trigger already grants (run `make bench-dynamic` for")
	fmt.Println("the full A/B with p50/p99 latencies).")
}

// name labels a pass for the progress lines.
func name(update bool) string {
	if update {
		return "update"
	}
	return "recompute"
}
