// Matrixmode: use Tree-SVD as a plain fast truncated-SVD engine for a
// wide rectangular matrix — the paper notes the scheme "can be used to
// speed up the SVD computation for any rectangular matrix M with c rows,
// n columns, and c ≪ n". The example factors a synthetic topic-document
// count matrix (40 topics × 60k documents) and verifies the factorization
// quality against the matrix norm.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	treesvd "github.com/tree-svd/treesvd"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	rows, cols, rank := 40, 60000, 10
	fmt.Printf("factorizing a %d×%d matrix (planted rank %d + noise)\n", rows, cols, rank)

	// Planted low-rank structure: each topic is a fixed sparse pattern
	// over rows; every document (column) is one topic's pattern scaled,
	// plus noise — so the signal is exactly rank-`rank`.
	type pattern struct {
		rows    []int
		weights []float64
	}
	topics := make([]pattern, rank)
	for t := range topics {
		perm := rng.Perm(rows)[:8]
		w := make([]float64, 8)
		for i := range w {
			w[i] = 1 + rng.Float64()
		}
		topics[t] = pattern{rows: perm, weights: w}
	}
	m := treesvd.NewSparseMatrix(rows, cols)
	var frobSq float64
	for j := 0; j < cols; j++ {
		tp := topics[rng.Intn(rank)]
		scale := 1 + rng.Float64()
		for k, i := range tp.rows {
			val := scale*tp.weights[k] + 0.1*rng.NormFloat64()
			m.Set(i, j, val)
			frobSq += val * val
		}
	}

	cfg := treesvd.Defaults()
	cfg.Dim = rank
	t0 := time.Now()
	res, err := treesvd.FactorizeMatrix(m, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tree-SVD done in %v, rank %d\n", time.Since(t0).Round(time.Millisecond), res.Rank())

	// Energy captured by the top-rank factorization: Σσ²/‖A‖²_F.
	var captured float64
	for _, s := range res.S {
		captured += s * s
	}
	fmt.Printf("singular values: ")
	for _, s := range res.S {
		fmt.Printf("%.1f ", s)
	}
	fmt.Printf("\ncaptured energy: %.1f%% of ‖A‖²_F\n", 100*captured/frobSq)
	if captured/frobSq < 0.5 {
		panic("factorization missed the planted structure")
	}

	// U columns are orthonormal — spot-check.
	var dot, n0, n1 float64
	for i := 0; i < rows; i++ {
		dot += res.U[i][0] * res.U[i][1]
		n0 += res.U[i][0] * res.U[i][0]
		n1 += res.U[i][1] * res.U[i][1]
	}
	fmt.Printf("U column norms: %.4f %.4f, cross dot %.2e\n", math.Sqrt(n0), math.Sqrt(n1), dot)
}

func randn(rng *rand.Rand, r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}
