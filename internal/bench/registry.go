package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a registered runner that may emit several tables.
type Experiment struct {
	ID    string
	Desc  string
	Run   func(Options) []*Table
	Heavy bool // excluded from "all" unless explicitly requested
}

func single(f func(Options) *Table) func(Options) []*Table {
	return func(o Options) []*Table { return []*Table{f(o)} }
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Desc: "Table 1: subset vs global Micro-F1", Run: single(RunTable1)},
		{ID: "fig3", Desc: "Figure 3: NC Micro-F1 + embedding time, all methods", Run: single(RunFig3)},
		{ID: "table4", Desc: "Table 4 + Fig 4: LP precision + embedding time", Run: single(RunTable4)},
		{ID: "exp2", Desc: "Exp 2 (Fig 5, Tables 5-6): SVD framework comparison", Run: single(RunExp2)},
		{ID: "fig5scale", Desc: "Fig 5 scale series: Tree-SVD-S vs FRPCA crossover", Run: single(RunFig5Scale), Heavy: true},
		{ID: "exp3nc", Desc: "Exp 3 (Figs 6-8): NC per snapshot", Run: RunExp3NC, Heavy: true},
		{ID: "exp3lp", Desc: "Exp 3 (Fig 9): LP per snapshot", Run: RunExp3LP, Heavy: true},
		{ID: "exp4", Desc: "Exp 4 (Fig 10): batch updates, NC", Run: single(RunExp4)},
		{ID: "table7", Desc: "Exp 4 (Table 7): batch updates, LP", Run: single(RunExp4LP)},
		{ID: "exp5", Desc: "Exp 5 (Fig 9 Twitter + Table 8): scalability", Run: RunExp5, Heavy: true},
		{ID: "fig11", Desc: "Figure 11: varying b, HSVD vs Tree-SVD-S", Run: single(RunFig11)},
		{ID: "fig12", Desc: "Figure 12: varying r_max", Run: single(RunFig12)},
		{ID: "fig13", Desc: "Figure 13: varying delta", Run: single(RunFig13)},
		{ID: "fig14", Desc: "Figure 14: update-size cut-off", Run: single(RunFig14)},
		{ID: "ablations", Desc: "Ablations: sketch type, lazy trigger", Run: single(RunAblations)},
		{ID: "futurework", Desc: "Conclusion (§7): coherent vs random subsets", Run: single(RunFutureWork)},
		{ID: "churnstress", Desc: "Correctness harness: audited dynamic path under adversarial churn", Run: single(RunChurnStress)},
	}
}

// Lookup resolves an experiment id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAndPrint executes one experiment and prints its tables.
func RunAndPrint(id string, o Options, w io.Writer) error {
	e, err := Lookup(id)
	if err != nil {
		return err
	}
	for _, t := range e.Run(o) {
		t.Fprint(w)
	}
	return nil
}
