package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"testing"
)

// buildRegistry registers one metric of every kind with live values.
func buildRegistry() *Registry {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var g Gauge
	g.Set(-3)
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	r.Counter("test_ops_total", "ops", "a counter", &c)
	r.Gauge("test_level", "items", "a gauge", &g)
	r.GaugeFunc("test_derived", "seconds", "a derived gauge", func() float64 { return 1.5 })
	r.CounterFunc("test_pool_hits_total", "ops", "a derived counter", func() uint64 { return 9 })
	r.Histogram("test_latency_nanos", "ns", "a histogram", &h)
	return r
}

// TestEveryRegisteredMetricAppears asserts that every name the registry
// knows shows up in both the expvar JSON and the Prometheus text output —
// the registration/export parity gate of ISSUE 5.
func TestEveryRegisteredMetricAppears(t *testing.T) {
	r := buildRegistry()
	var jsonBuf, promBuf strings.Builder
	if err := r.WriteExpvar(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d entries, want 5", len(snap))
	}
	for _, v := range snap {
		if !strings.Contains(jsonBuf.String(), fmt.Sprintf("%q", v.Name)) {
			t.Errorf("metric %s missing from expvar output", v.Name)
		}
		if !strings.Contains(promBuf.String(), "\n"+v.Name) && !strings.HasPrefix(promBuf.String(), "# HELP "+v.Name) {
			t.Errorf("metric %s missing from prometheus output", v.Name)
		}
	}
}

// TestExpvarOutputIsValidJSON decodes the endpoint output and checks the
// values survived the trip.
func TestExpvarOutputIsValidJSON(t *testing.T) {
	r := buildRegistry()
	var buf strings.Builder
	if err := r.WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc["test_ops_total"].(float64) != 7 {
		t.Fatalf("counter round-trip = %v", doc["test_ops_total"])
	}
	if doc["test_level"].(float64) != -3 {
		t.Fatalf("gauge round-trip = %v", doc["test_level"])
	}
	hist := doc["test_latency_nanos"].(map[string]any)
	if hist["count"].(float64) != 100 || hist["sum"].(float64) != 5050 {
		t.Fatalf("histogram round-trip = %v", hist)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := buildRegistry()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 7",
		"# TYPE test_level gauge",
		"test_level -3",
		"# TYPE test_latency_nanos summary",
		`test_latency_nanos{quantile="0.5"}`,
		"test_latency_nanos_sum 5050",
		"test_latency_nanos_count 100",
		"a counter (ops)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestServeHTTP checks content negotiation between the two formats.
func TestServeHTTP(t *testing.T) {
	r := buildRegistry()

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("default content type = %s, want JSON", ct)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatal("default response is not JSON")
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if !strings.Contains(rec.Body.String(), "# TYPE") {
		t.Fatal("format=prometheus did not produce text format")
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	r.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "# TYPE") {
		t.Fatal("Accept: text/plain did not produce text format")
	}
}

// TestStageSetsLabel verifies the pprof label is visible inside the stage
// and gone after it.
func TestStageSetsLabel(t *testing.T) {
	ctx := context.Background()
	var inside string
	Stage(ctx, "unit-test", func(ctx context.Context) {
		inside, _ = pprof.Label(ctx, StageLabel)
	})
	if inside != "unit-test" {
		t.Fatalf("label inside stage = %q, want unit-test", inside)
	}
	if v, ok := pprof.Label(ctx, StageLabel); ok {
		t.Fatalf("label leaked outside stage: %q", v)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1)
		}
	})
}
