package core

import (
	"fmt"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// TreeSnapshot is the serializable state of a Tree: every cached
// factorization plus the randomized-draw counter. The proximity DynRow is
// serialized separately by the owner (it is shared state); Restore rewires
// the snapshot onto it.
type TreeSnapshot struct {
	Level1US   []*linalg.Dense
	Level1Tail []float64
	Upper      [][]*linalg.Dense
	RootU      *linalg.Dense
	RootS      []float64
	RootV      *linalg.Dense
	Seq        int64
	Built      bool
}

// Snapshot captures the tree's cached state for persistence.
func (t *Tree) Snapshot() *TreeSnapshot {
	snap := &TreeSnapshot{Seq: t.seq, Built: t.built}
	snap.Level1US = make([]*linalg.Dense, len(t.level1))
	snap.Level1Tail = make([]float64, len(t.level1))
	for j, c := range t.level1 {
		if c != nil {
			snap.Level1US[j] = c.us
			snap.Level1Tail[j] = c.tail
		}
	}
	snap.Upper = t.upper
	if t.root != nil {
		snap.RootU = t.root.U
		snap.RootS = t.root.S
		snap.RootV = t.root.V
	}
	return snap
}

// RestoreTree rebuilds a Tree over matrix m from a snapshot taken with the
// same configuration. The block partition of m must match the snapshot.
func RestoreTree(m *sparse.DynRow, cfg Config, snap *TreeSnapshot) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Level1US) != m.NumBlocks() {
		return nil, fmt.Errorf("core: snapshot has %d level-1 blocks, matrix has %d",
			len(snap.Level1US), m.NumBlocks())
	}
	t, err := NewTree(m, cfg)
	if err != nil {
		return nil, err
	}
	for j, us := range snap.Level1US {
		if us != nil {
			t.level1[j] = &blockCache{us: us, tail: snap.Level1Tail[j]}
		}
	}
	t.upper = snap.Upper
	if snap.RootU != nil {
		t.root = &linalg.SVDResult{U: snap.RootU, S: snap.RootS, V: snap.RootV}
	}
	t.seq = snap.Seq
	t.built = snap.Built
	return t, nil
}
