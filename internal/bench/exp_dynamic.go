package bench

import (
	"fmt"
	"time"

	"github.com/tree-svd/treesvd/internal/baselines"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/eval"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/rsvd"
)

// RunExp3NC reproduces Figures 6-8: node-classification quality per
// snapshot with 50% and 70% training ratios, re-computing embeddings at
// every snapshot (the paper's Exp. 3 protocol). One table per dataset.
func RunExp3NC(o Options) []*Table {
	var out []*Table
	for _, prof := range ncDatasets() {
		ds := o.load(prof)
		t := &Table{
			Title:  fmt.Sprintf("Figures 6-8 (%s): Micro-F1 (%%) per snapshot", prof.Name),
			Header: []string{"Snapshot", "Method", "F1@50%", "F1@70%"},
		}
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities
		tau := ds.Stream.NumSnapshots()

		// MF pipeline graph (mutated by proximity updates) and an
		// independent graph for the hashing pipeline.
		gMF := ds.SnapshotGraph(1)
		sub := must(ppr.NewSubset(gMF, s, o.params()))
		prox := ppr.NewProximity(sub, ds.Profile.Nodes, o.treeConfig().Blocks())
		gHash := ds.SnapshotGraph(1)
		dyn := must(baselines.NewDynPPE(gHash, s, o.params(), o.Dim, o.Seed))

		for snap := 1; snap <= tau; snap++ {
			if snap > 1 {
				ev := ds.Stream.SnapshotEvents(snap)
				must0(prox.ApplyEvents(bg, ev))
				must0(dyn.ApplyEvents(bg, ev))
			}
			record := func(name string, emb *linalgDense) {
				t.AddRow(fmt.Sprint(snap), name,
					pct(o.classify(emb, labels, cls, 0.5)),
					pct(o.classify(emb, labels, cls, 0.7)))
			}
			record("RandNE", baselines.SubsetRows(baselines.RandNE(gMF, baselines.DefaultRandNEConfig(o.Dim, o.Seed)), s))
			record("DynPPE", dyn.Embedding())
			csr := prox.M.ToCSR()
			strap := must(rsvd.Sparse(csr, rsvd.Options{Rank: o.Dim, Seed: o.Seed, PowerIters: 2, Workers: o.Workers}))
			record("Subset-STRAP", strap.USqrtS())
			tree := must(core.NewTree(prox.M, o.treeConfig()))
			must0(tree.Build(bg))
			record("Tree-SVD", tree.Embedding())
		}
		t.Notes = append(t.Notes, "expected shape: F1 grows along snapshots; Tree-SVD tracks/stays best")
		out = append(out, t)
	}
	return out
}

// linkPredDatasetsExp3 lists the Exp. 3 LP profiles (Fig. 9); Exp. 5 adds
// Twitter via RunExp5.
func linkPredDatasetsExp3() []dataset.Profile {
	return []dataset.Profile{dataset.YouTube(), dataset.Flickr()}
}

// RunExp3LP reproduces Figure 9: LP precision per snapshot with a fresh
// split and from-scratch embeddings at every snapshot.
func RunExp3LP(o Options) []*Table {
	var out []*Table
	for _, prof := range linkPredDatasetsExp3() {
		out = append(out, o.lpPerSnapshot(prof))
	}
	return out
}

func (o Options) lpPerSnapshot(prof dataset.Profile) *Table {
	ds := o.load(prof)
	t := &Table{
		Title:  fmt.Sprintf("Figure 9 (%s): LP precision (%%) per snapshot", prof.Name),
		Header: []string{"Snapshot", "Method", "Precision"},
	}
	s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
	tau := ds.Stream.NumSnapshots()
	for snap := 1; snap <= tau; snap++ {
		g := ds.SnapshotGraph(snap)
		sp := eval.NewLinkPredSplit(g, s, 0.3, o.Seed)
		tg := sp.TrainGraph

		r := o.runRandNE(tg, s)
		t.AddRow(fmt.Sprint(snap), "RandNE", pct(sp.PrecisionSameSpace(r.Right)))
		st := o.runSubsetSTRAP(tg, s, ds.Profile.Nodes)
		t.AddRow(fmt.Sprint(snap), "Subset-STRAP", pct(sp.Precision(st.Left, s, st.Right)))
		tr := o.runTreeSVDS(tg, s, ds.Profile.Nodes, true)
		t.AddRow(fmt.Sprint(snap), "Tree-SVD-S", pct(sp.Precision(tr.Left, s, tr.Right)))
	}
	t.Notes = append(t.Notes, "expected shape: precision improves along snapshots; Tree-SVD-S ≈ Subset-STRAP on top")
	return t
}

// batchPlan describes the Exp. 4 batch-update protocol: start from a
// middle snapshot and stream the following events in fixed-size batches
// (the scaled analogue of the paper's 100 × 10⁴ events).
type batchPlan struct {
	startGraph *graph.Graph
	batches    [][]graph.Event
}

// planBatches builds the Exp. 4 stream: events after the middle snapshot,
// capped at churnFrac of the start graph's edges (the paper's 10⁶ events
// are ~7%% of Patent's edges; churnFrac keeps the scaled protocol's
// per-batch churn comparable).
func (o Options) planBatches(ds *dataset.Dataset, numBatches int, churnFrac float64, exclude map[int64]bool) batchPlan {
	tau := ds.Stream.NumSnapshots()
	mid := tau / 2
	if mid < 1 {
		mid = 1
	}
	startEnd := ds.Stream.Ends[mid-1]
	rest := ds.Stream.Events[startEnd:]
	keep := func(e graph.Event) bool {
		return exclude == nil || !exclude[int64(e.U)<<32|int64(uint32(e.V))]
	}
	g := graph.New(ds.Stream.NumNodes)
	for _, e := range ds.Stream.Events[:startEnd] {
		if keep(e) {
			g.Apply(e)
		}
	}
	var filtered []graph.Event
	for _, e := range rest {
		if keep(e) {
			filtered = append(filtered, e)
		}
	}
	if churnFrac > 0 {
		if cap := int(churnFrac * float64(g.NumEdges())); len(filtered) > cap && cap > 0 {
			filtered = filtered[:cap]
		}
	}
	if numBatches > len(filtered) {
		numBatches = len(filtered)
	}
	plan := batchPlan{startGraph: g}
	for b := 0; b < numBatches; b++ {
		lo := b * len(filtered) / numBatches
		hi := (b + 1) * len(filtered) / numBatches
		plan.batches = append(plan.batches, filtered[lo:hi])
	}
	return plan
}

// exp4NumBatches and exp4Churn are the scaled stand-ins for the paper's
// 100 batches of 10⁴ events (~7%% of Patent's edge count overall).
const (
	exp4NumBatches = 50
	exp4Churn      = 0.10
)

// RunExp4 reproduces Figure 10: average per-batch update time and final
// Micro-F1 after the batch-update stream, for DynPPE, Subset-STRAP,
// Tree-SVD-S (full rebuild per batch) and dynamic Tree-SVD.
func RunExp4(o Options) *Table {
	t := &Table{
		Title:  "Exp 4 (Fig 10): batch updates — avg update time and final Micro-F1",
		Header: []string{"Dataset", "Method", "AvgUpdate", "AvgFactorize", "Micro-F1"},
	}
	for _, prof := range ncDatasets() {
		ds := o.load(prof)
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities
		plan := o.planBatches(ds, exp4NumBatches, exp4Churn, nil)

		// DynPPE (incremental hash).
		dyn := must(baselines.NewDynPPE(plan.startGraph.Clone(), s, o.params(), o.Dim, o.Seed))
		var dt time.Duration
		for _, b := range plan.batches {
			t0 := time.Now()
			must0(dyn.ApplyEvents(bg, b))
			dt += time.Since(t0)
		}
		t.AddRow(prof.Name, "DynPPE", dur(dt/time.Duration(len(plan.batches))), "-",
			pct(o.classify(dyn.Embedding(), labels, cls, o.TrainRatio)))

		// Subset-STRAP: incremental proximity, full SVD per batch.
		subS := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		proxS := ppr.NewProximity(subS, ds.Profile.Nodes, o.treeConfig().Blocks())
		var st, stSVD time.Duration
		var strapEmb *linalgDense
		for _, b := range plan.batches {
			t0 := time.Now()
			must0(proxS.ApplyEvents(bg, b))
			t1 := time.Now()
			strapEmb = must(rsvd.Sparse(proxS.M.ToCSR(), rsvd.Options{Rank: o.Dim, Seed: o.Seed, PowerIters: 2, Workers: o.Workers})).USqrtS()
			stSVD += time.Since(t1)
			st += time.Since(t0)
		}
		nb := time.Duration(len(plan.batches))
		t.AddRow(prof.Name, "Subset-STRAP", dur(st/nb), dur(stSVD/nb),
			pct(o.classify(strapEmb, labels, cls, o.TrainRatio)))

		// Tree-SVD-S: incremental proximity, full tree rebuild per batch.
		subT := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		proxT := ppr.NewProximity(subT, ds.Profile.Nodes, o.treeConfig().Blocks())
		treeS := must(core.NewTree(proxT.M, o.treeConfig()))
		var tt, ttSVD time.Duration
		for _, b := range plan.batches {
			t0 := time.Now()
			must0(proxT.ApplyEvents(bg, b))
			t1 := time.Now()
			must0(treeS.Build(bg))
			ttSVD += time.Since(t1)
			tt += time.Since(t0)
		}
		t.AddRow(prof.Name, "Tree-SVD-S", dur(tt/nb), dur(ttSVD/nb),
			pct(o.classify(treeS.Embedding(), labels, cls, o.TrainRatio)))

		// Dynamic Tree-SVD: incremental proximity + lazy update.
		subD := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		proxD := ppr.NewProximity(subD, ds.Profile.Nodes, o.treeConfig().Blocks())
		treeD := must(core.NewTree(proxD.M, o.treeConfig()))
		must0(treeD.Build(bg))
		var dtt, dttSVD time.Duration
		for _, b := range plan.batches {
			t0 := time.Now()
			must0(proxD.ApplyEvents(bg, b))
			t1 := time.Now()
			must(treeD.Update(bg))
			dttSVD += time.Since(t1)
			dtt += time.Since(t0)
		}
		t.AddRow(prof.Name, "Tree-SVD", dur(dtt/nb), dur(dttSVD/nb),
			pct(o.classify(treeD.Embedding(), labels, cls, o.TrainRatio)))
	}
	t.Notes = append(t.Notes,
		"expected shape: Tree-SVD factorize-update far below Subset-STRAP/Tree-SVD-S rebuilds at MF-level F1; PPR maintenance (in AvgUpdate) is shared by every method")
	return t
}

// RunExp4LP reproduces Table 7: LP precision after the batch-update
// stream. Positive test edges are filtered out of the entire stream so no
// method trains on them.
func RunExp4LP(o Options) *Table {
	t := &Table{
		Title:  "Table 7: LP precision (%) after batch-update stream",
		Header: []string{"Dataset", "Method", "AvgUpdate", "Precision"},
	}
	for _, prof := range lpDatasets() {
		o.exp4LPDataset(t, prof)
	}
	t.Notes = append(t.Notes, "expected shape: Tree-SVD ≈ Tree-SVD-S ≈ Subset-STRAP precision at a fraction of the update cost")
	return t
}

func (o Options) exp4LPDataset(t *Table, prof dataset.Profile) {
	ds := o.load(prof)
	s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
	finalG := ds.SnapshotGraph(ds.Stream.NumSnapshots())
	sp := eval.NewLinkPredSplit(finalG, s, 0.3, o.Seed)
	exclude := make(map[int64]bool, len(sp.PosU))
	for i := range sp.PosU {
		exclude[int64(sp.PosU[i])<<32|int64(uint32(sp.PosV[i]))] = true
	}
	plan := o.planBatches(ds, exp4NumBatches, exp4Churn, exclude)

	// Subset-STRAP.
	subS := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
	proxS := ppr.NewProximity(subS, ds.Profile.Nodes, o.treeConfig().Blocks())
	var st time.Duration
	var strapRes *baselines.STRAPResult
	for _, b := range plan.batches {
		t0 := time.Now()
		must0(proxS.ApplyEvents(bg, b))
		r := must(rsvd.Sparse(proxS.M.ToCSR(), rsvd.Options{Rank: o.Dim, Seed: o.Seed, PowerIters: 2, Workers: o.Workers}))
		strapRes = &baselines.STRAPResult{Left: r.USqrtS(), Right: core.RightEmbeddingOf(r, proxS.M.ToCSR())}
		st += time.Since(t0)
	}
	t.AddRow(prof.Name, "Subset-STRAP", dur(st/time.Duration(len(plan.batches))),
		pct(sp.Precision(strapRes.Left, s, strapRes.Right)))

	// Dynamic Tree-SVD.
	subD := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
	proxD := ppr.NewProximity(subD, ds.Profile.Nodes, o.treeConfig().Blocks())
	treeD := must(core.NewTree(proxD.M, o.treeConfig()))
	must0(treeD.Build(bg))
	var dt time.Duration
	for _, b := range plan.batches {
		t0 := time.Now()
		must0(proxD.ApplyEvents(bg, b))
		must(treeD.Update(bg))
		dt += time.Since(t0)
	}
	t.AddRow(prof.Name, "Tree-SVD", dur(dt/time.Duration(len(plan.batches))),
		pct(sp.Precision(treeD.Embedding(), s, treeD.RightEmbedding())))

	// Tree-SVD-S (rebuild per batch).
	subT := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
	proxT := ppr.NewProximity(subT, ds.Profile.Nodes, o.treeConfig().Blocks())
	treeS := must(core.NewTree(proxT.M, o.treeConfig()))
	var tt time.Duration
	for _, b := range plan.batches {
		t0 := time.Now()
		must0(proxT.ApplyEvents(bg, b))
		must0(treeS.Build(bg))
		tt += time.Since(t0)
	}
	t.AddRow(prof.Name, "Tree-SVD-S", dur(tt/time.Duration(len(plan.batches))),
		pct(sp.Precision(treeS.Embedding(), s, treeS.RightEmbedding())))
}

// RunExp5 reproduces the scalability study: Figure 9's Twitter panel
// (per-snapshot LP) and Table 8 (batch updates on Twitter).
func RunExp5(o Options) []*Table {
	perSnap := o.lpPerSnapshot(dataset.Twitter())
	perSnap.Title = "Exp 5 (Fig 9, Twitter panel): LP precision (%) per snapshot"

	t8 := &Table{
		Title:  "Table 8: LP on Twitter after batch-update stream",
		Header: []string{"Dataset", "Method", "AvgUpdate", "Precision"},
	}
	o.exp4LPDataset(t8, dataset.Twitter())
	t8.Notes = append(t8.Notes, "expected shape: Tree-SVD an order of magnitude faster than Tree-SVD-S, ~30x over Subset-STRAP, same precision")
	return []*Table{perSnap, t8}
}
