package dataset

import (
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

func churnProfile() ChurnProfile {
	return ChurnProfile{
		Nodes: 40, MaxNodes: 50, Degree: 3,
		Batches: 5, BatchSize: 20,
		SelfLoopFrac: 0.2, DeleteFrac: 0.2, DupFrac: 0.1, MissFrac: 0.1, GrowFrac: 0.1,
		BigBatch: 2, BigBatchSize: 60,
		Protect: []int32{0, 7},
		Seed:    3,
	}
}

func TestChurnDeterministic(t *testing.T) {
	g1, b1 := GenerateChurn(churnProfile())
	g2, b2 := GenerateChurn(churnProfile())
	if g1.NumEdges() != g2.NumEdges() || g1.NumNodes() != g2.NumNodes() {
		t.Fatalf("initial graphs differ: %d/%d edges, %d/%d nodes",
			g1.NumEdges(), g2.NumEdges(), g1.NumNodes(), g2.NumNodes())
	}
	if len(b1) != len(b2) {
		t.Fatalf("batch counts differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if len(b1[i]) != len(b2[i]) {
			t.Fatalf("batch %d sizes differ: %d vs %d", i, len(b1[i]), len(b2[i]))
		}
		for k := range b1[i] {
			if b1[i][k] != b2[i][k] {
				t.Fatalf("batch %d event %d differs: %+v vs %+v", i, k, b1[i][k], b2[i][k])
			}
		}
	}
}

// TestChurnStreamShape replays the stream over the initial graph and
// verifies the generator's promises: every event is well-formed and
// applicable, the big batch is inflated, protected nodes never lose their
// last out-edge, growth stays within MaxNodes, and the stream actually
// contains the edge cases it exists to produce — self-loop events
// including sink transitions, genuine duplicate-insert and
// missing-delete no-ops.
func TestChurnStreamShape(t *testing.T) {
	p := churnProfile()
	g, batches := GenerateChurn(p)
	if len(batches) != p.Batches {
		t.Fatalf("%d batches, want %d", len(batches), p.Batches)
	}
	var selfLoops, sinkTransitions, dupNoOps, missNoOps, growth int
	for i, batch := range batches {
		want := p.BatchSize
		if i == p.BigBatch {
			want = p.BigBatchSize
		}
		if len(batch) != want {
			t.Fatalf("batch %d has %d events, want %d", i, len(batch), want)
		}
		for _, ev := range batch {
			if ev.U < 0 || ev.V < 0 || int(ev.U) >= p.MaxNodes || int(ev.V) >= p.MaxNodes {
				t.Fatalf("batch %d: event %+v outside MaxNodes %d", i, ev, p.MaxNodes)
			}
			if ev.U == ev.V {
				selfLoops++
				if ev.Type == graph.Insert && g.OutDeg(ev.U) == 0 {
					sinkTransitions++
				}
			}
			switch ev.Type {
			case graph.Insert:
				if g.HasEdge(ev.U, ev.V) {
					dupNoOps++
				}
				if int(ev.V) >= g.NumNodes() {
					growth++
				}
			case graph.Delete:
				if !g.HasEdge(ev.U, ev.V) {
					missNoOps++
				}
			}
			g.Apply(ev)
			for _, v := range p.Protect {
				if g.OutDeg(v) == 0 {
					t.Fatalf("batch %d: protected node %d left dangling by %+v", i, v, ev)
				}
			}
		}
	}
	if g.NumNodes() > p.MaxNodes {
		t.Fatalf("grew to %d nodes, cap %d", g.NumNodes(), p.MaxNodes)
	}
	if selfLoops == 0 || sinkTransitions == 0 || dupNoOps == 0 || missNoOps == 0 || growth == 0 {
		t.Fatalf("stream missing edge cases: %d self-loops (%d sink transitions), %d dup no-ops, %d miss no-ops, %d growth",
			selfLoops, sinkTransitions, dupNoOps, missNoOps, growth)
	}
}

func TestChurnValidate(t *testing.T) {
	cases := map[string]func(*ChurnProfile){
		"one node":          func(p *ChurnProfile) { p.Nodes = 1 },
		"cap below nodes":   func(p *ChurnProfile) { p.MaxNodes = p.Nodes - 1 },
		"zero degree":       func(p *ChurnProfile) { p.Degree = 0 },
		"degree too high":   func(p *ChurnProfile) { p.Degree = p.Nodes },
		"no batches":        func(p *ChurnProfile) { p.Batches = 0 },
		"empty batch":       func(p *ChurnProfile) { p.BatchSize = 0 },
		"fractions over 1":  func(p *ChurnProfile) { p.DupFrac = 0.9 },
		"negative fraction": func(p *ChurnProfile) { p.GrowFrac = -0.1 },
		"protect range":     func(p *ChurnProfile) { p.Protect = []int32{int32(p.Nodes)} },
	}
	for name, mutate := range cases {
		p := churnProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid profile accepted", name)
		}
	}
	p := churnProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}
