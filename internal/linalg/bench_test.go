// Kernel benchmark suite (external test package so it can drive the
// level-1 rsvd path without an import cycle). `make bench-kernels` runs
// TestEmitKernelBench, which measures every hot kernel across worker
// budgets with testing.Benchmark and writes BENCH_KERNELS.json; the
// B-prefixed functions are plain `go test -bench` entry points for ad-hoc
// profiling.
package linalg_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
)

func benchDense(seed int64, r, c int) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func benchCSR(seed int64, r, c int, density float64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// The 2048×512 class: the |S|×(k·d) concat matrices of upper-level merges
// (|S| subset rows, Branch·Rank ≈ 512 columns after a k=4, d=128 merge).
const (
	benchRows = 2048
	benchCols = 512
)

func BenchmarkGram(b *testing.B) {
	a := benchDense(1, benchRows, benchCols)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linalg.GramW(a, w)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	a := benchDense(2, benchRows, benchCols)
	x := benchDense(3, benchCols, benchCols)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linalg.MulW(a, x, w)
			}
		})
	}
}

func BenchmarkTMul(b *testing.B) {
	a := benchDense(4, benchRows, benchCols)
	x := benchDense(5, benchRows, benchCols)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linalg.TMulW(a, x, w)
			}
		})
	}
}

func BenchmarkSVDTrunc(b *testing.B) {
	a := benchDense(6, benchRows, benchCols)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linalg.SVDTruncW(a, 128, w)
			}
		})
	}
}

func BenchmarkFactorBlock(b *testing.B) {
	blk := benchCSR(7, 512, 4096, 0.01)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rsvd.Sparse(blk, rsvd.Options{Rank: 64, Seed: 9, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRecord is one BENCH_KERNELS.json row.
type benchRecord struct {
	Op       string  `json:"op"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Workers  int     `json:"workers"`
	NsOp     int64   `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	CPUs     int     `json:"cpus"`
	MFlops   float64 `json:"mflops,omitempty"`
}

// TestEmitKernelBench writes the machine-readable kernel benchmark table
// when BENCH_KERNELS_OUT names an output path (it is a no-op under plain
// `go test`). Every record carries the host CPU count: on a single-core
// box the w>1 rows measure dispatch overhead, not scaling.
func TestEmitKernelBench(t *testing.T) {
	out := os.Getenv("BENCH_KERNELS_OUT")
	if out == "" {
		t.Skip("set BENCH_KERNELS_OUT=path to emit BENCH_KERNELS.json")
	}
	cpus := runtime.NumCPU()
	var recs []benchRecord
	add := func(op string, rows, cols, workers int, flops float64, fn func()) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		ns := r.NsPerOp()
		rec := benchRecord{
			Op: op, Rows: rows, Cols: cols, Workers: workers,
			NsOp: ns, AllocsOp: r.AllocsPerOp(), BytesOp: r.AllocedBytesPerOp(),
			CPUs: cpus,
		}
		if flops > 0 && ns > 0 {
			rec.MFlops = flops / float64(ns) * 1e3
		}
		recs = append(recs, rec)
		t.Logf("%-14s %5dx%-5d w=%d  %12d ns/op  %8d allocs/op  %12d B/op",
			op, rows, cols, workers, ns, r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	a := benchDense(1, benchRows, benchCols)
	x := benchDense(2, benchCols, benchCols)
	y := benchDense(3, benchRows, benchCols)
	for _, w := range []int{1, 2, 4} {
		w := w
		add("Gram", benchRows, benchCols, w,
			float64(benchRows)*benchCols*benchCols, // ×2 flops, ÷2 symmetry
			func() { linalg.GramW(a, w) })
		add("Mul", benchRows, benchCols, w,
			2*float64(benchRows)*benchCols*benchCols,
			func() { linalg.MulW(a, x, w) })
		add("TMul", benchRows, benchCols, w,
			2*float64(benchRows)*benchCols*benchCols,
			func() { linalg.TMulW(a, y, w) })
		add("MulT", benchRows, benchCols, w,
			2*float64(benchRows)*benchCols*benchRows,
			func() { linalg.MulTW(a, y, w) })
	}
	add("SVDTrunc", benchRows, benchCols, 1, 0,
		func() { linalg.SVDTruncW(a, 128, 1) })

	blk := benchCSR(4, 512, 4096, 0.01)
	for _, w := range []int{1, 4} {
		w := w
		add("FactorBlock", 512, 4096, w, 0, func() {
			if _, err := rsvd.Sparse(blk, rsvd.Options{Rank: 64, Seed: 9, Workers: w}); err != nil {
				t.Fatal(err)
			}
		})
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
