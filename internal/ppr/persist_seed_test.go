package ppr

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// TestStateGobRoundTripBehaviour: a saved+loaded state must evolve
// identically to the original under the same events.
func TestStateGobRoundTripBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 50, 200)
	params := Params{Alpha: 0.15, RMax: 1e-3}
	e := mustPPR(NewEngine(g, params))
	st := NewState(4, graph.Forward)
	e.Push(st)
	// Some churn so the state is mid-life.
	for i := 0; i < 20; i++ {
		u, v := int32(rng.Intn(50)), int32(rng.Intn(50))
		if u != v && g.InsertEdge(u, v) {
			e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	e.Push(st)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	st2 := &State{}
	if err := gob.NewDecoder(&buf).Decode(st2); err != nil {
		t.Fatal(err)
	}

	// Same future: identical adjustments and pushes.
	g2 := g // shared graph; apply events once, adjust both states
	for i := 0; i < 30; i++ {
		u, v := int32(rng.Intn(50)), int32(rng.Intn(50))
		if u != v && g2.InsertEdge(u, v) {
			e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Insert})
			e.AdjustEvent(st2, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	e.Push(st)
	e.Push(st2)
	if len(st.P) != len(st2.P) || len(st.R) != len(st2.R) {
		t.Fatalf("state sizes diverge: P %d/%d R %d/%d", len(st.P), len(st2.P), len(st.R), len(st2.R))
	}
	for k, v := range st.P {
		if math.Abs(st2.P[k]-v) > 0 {
			t.Fatalf("P[%d] diverges: %g vs %g", k, v, st2.P[k])
		}
	}
	for k, v := range st.R {
		if math.Abs(st2.R[k]-v) > 0 {
			t.Fatalf("R[%d] diverges: %g vs %g", k, v, st2.R[k])
		}
	}
}
