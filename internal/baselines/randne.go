package baselines

import (
	"math"
	"math/rand"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/rsvd"
)

// RandNEConfig tunes the iterative random projection.
type RandNEConfig struct {
	// Dim is the embedding dimension.
	Dim int
	// Weights are the high-order coefficients α_0..α_q of the proximity
	// polynomial Σ α_i·Aⁱ; the projection of each power is accumulated
	// without ever materializing Aⁱ.
	Weights []float64
	// Seed drives the Gaussian draw.
	Seed int64
}

// DefaultRandNEConfig mirrors the reference implementation's emphasis on
// higher-order structure (weights grow with the power).
func DefaultRandNEConfig(dim int, seed int64) RandNEConfig {
	return RandNEConfig{Dim: dim, Weights: []float64{1, 1e2, 1e4, 1e5}, Seed: seed}
}

// RandNE computes Gaussian-random-projection embeddings for every node:
// U₀ = orth(R) with R an n×d Gaussian, U_{i+1} = Â·U_i with Â the
// row-normalized adjacency, and the final embedding Σ_i α_i·U_i. The
// iterative procedure avoids explicit high-order proximity matrices
// (Section 2.2). Node classification reads subset rows; link prediction
// scores pairs within the single shared space.
func RandNE(g *graph.Graph, cfg RandNEConfig) *linalg.Dense {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := rsvd.GaussianDense(rng, n, cfg.Dim)
	if n >= cfg.Dim {
		linalg.Orthonormalize(u)
	}
	emb := linalg.NewDense(n, cfg.Dim)
	accumulate(emb, u, cfg.Weights[0])
	for _, w := range cfg.Weights[1:] {
		u = propagate(g, u)
		accumulate(emb, u, w)
	}
	// Row-normalize so downstream dot products are scale-free.
	for i := 0; i < n; i++ {
		row := emb.Row(i)
		norm := linalg.Norm2(row)
		if norm > 0 {
			inv := 1 / norm
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return emb
}

// propagate returns Â·U for the row-normalized adjacency Â.
func propagate(g *graph.Graph, u *linalg.Dense) *linalg.Dense {
	n := g.NumNodes()
	out := linalg.NewDense(n, u.Cols)
	for v := int32(0); int(v) < n; v++ {
		nbrs := g.OutNeighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		orow := out.Row(int(v))
		inv := 1 / float64(len(nbrs))
		for _, w := range nbrs {
			urow := u.Row(int(w))
			for j, x := range urow {
				orow[j] += inv * x
			}
		}
	}
	return out
}

func accumulate(dst, src *linalg.Dense, w float64) {
	if math.IsNaN(w) || w == 0 {
		return
	}
	for i, v := range src.Data {
		dst.Data[i] += w * v
	}
}
