package rsvd

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// CountSketch holds a Clarkson–Woodruff sketching operator S ∈ {−1,0,+1}^{t×n}
// with exactly one non-zero per column: column j maps to row h(j) with sign
// ξ(j). Applying it costs O(nnz) — the input-sparsity-time primitive behind
// the O(nnz(M) + |S|d²/ε⁴) bound quoted in Theorem 3.3.
type CountSketch struct {
	t    int
	row  []int32 // h: column → sketch row
	sign []int8  // ξ: column → ±1
}

// NewCountSketch draws a sketch with t rows over n input columns.
func NewCountSketch(rng *rand.Rand, t, n int) *CountSketch {
	cs := &CountSketch{t: t, row: make([]int32, n), sign: make([]int8, n)}
	for j := 0; j < n; j++ {
		cs.row[j] = int32(rng.Intn(t))
		if rng.Intn(2) == 0 {
			cs.sign[j] = 1
		} else {
			cs.sign[j] = -1
		}
	}
	return cs
}

// ApplyRight returns A·Sᵀ (rows×t) for a sparse A in O(nnz(A)) time.
func (cs *CountSketch) ApplyRight(a *sparse.CSR) *linalg.Dense {
	out := linalg.NewDense(a.Rows, cs.t)
	for i := 0; i < a.Rows; i++ {
		orow := out.Row(i)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			orow[cs.row[j]] += float64(cs.sign[j]) * a.Val[p]
		}
	}
	return out
}

// SparseCW computes a randomized truncated SVD using a Clarkson–Woodruff
// count-sketch as the range finder instead of a Gaussian: Y = A·Sᵀ with
// t = O(Rank/ε) sketch rows, Q = qr(Y), W = Qᵀ·A, exact SVD of W. With no
// dense n×p Gaussian product the sketching pass is O(nnz(A)), at the cost
// of a weaker (1+ε) constant than the Gaussian scheme; power iterations
// recover most of the gap.
func SparseCW(a *sparse.CSR, opts Options) (*linalg.SVDResult, error) {
	opts = opts.withDefaults()
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("rsvd: non-positive rank %d", opts.Rank)
	}
	defer observe(&sketchCalls, time.Now())
	rng := rand.New(rand.NewSource(opts.Seed))
	// Count-sketch needs a larger sketch than Gaussian for the same
	// accuracy; use 4× the Gaussian width, capped by the matrix size.
	t := 4 * (opts.Rank + opts.Oversample)
	if t > a.Cols {
		t = a.Cols
	}
	if t == 0 || a.NNZ() == 0 {
		return &linalg.SVDResult{U: linalg.NewDense(a.Rows, 0), V: linalg.NewDense(a.Cols, 0)}, nil
	}
	cs := NewCountSketch(rng, t, a.Cols)
	kw := opts.Workers
	y := rangeBasis(cs.ApplyRight(a), kw) // rows×min(rows,t), orthonormal
	for it := 0; it < opts.PowerIters; it++ {
		z := rangeBasis(a.TMulDenseW(y, kw), kw)
		linalg.PutDense(y)
		y = rangeBasis(a.MulDenseW(z, kw), kw)
		linalg.PutDense(z)
	}
	q := y
	wt := a.TMulDenseW(q, kw)
	w := wt.T()
	linalg.PutDense(wt)
	small := linalg.SVDW(w, kw)
	linalg.PutDense(w)
	u := linalg.MulW(q, small.U, kw)
	linalg.PutDense(q)
	linalg.PutDense(small.U)
	res := &linalg.SVDResult{U: u, S: small.S, V: small.V}
	return res.Truncate(opts.Rank), nil
}

// FRPCA approximates the truncated SVD of a sparse matrix in the style of
// Feng et al.'s fast randomized PCA for sparse data: randomized subspace
// iteration with an elevated default power count. It is the whole-matrix
// SVD competitor of Exp. 2 — identical output contract to Sparse, but it
// always factors the full matrix in one shot (no hierarchy), which is what
// Tree-SVD's level structure avoids re-doing on updates.
func FRPCA(a *sparse.CSR, opts Options) (*linalg.SVDResult, error) {
	opts = opts.withDefaults()
	if opts.PowerIters == 0 {
		opts.PowerIters = 4
	}
	frpcaCalls.Inc() // the delegated Sparse call records the timing
	return Sparse(a, opts)
}
