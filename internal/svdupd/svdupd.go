// Package svdupd implements Brand-style rank-k incremental SVD updating
// for the dynamic Tree-SVD path (the DAMF idea, arXiv 2306.08967): instead
// of re-running a randomized SVD over a dirty level-1 block from scratch,
// the block's sparse delta D is absorbed directly into the cached
// factorization B̂ = U·Σ·Vᵀ.
//
// The delta arrives row-factored from sparse.DynRow.BlockDelta: with
// t touched rows, D = E·Dᵣ where E is the m×t selector of the touched
// rows and Dᵣ the t×n matrix of their changed entries. Brand's identity
// then writes
//
//	B̂ + D = [U Q_A] · K · [V Q_W]ᵀ,
//
// where Q_A·R_A is the thin QR of the component of E orthogonal to
// range(U), Q_W·R_W the thin QR of the component of Dᵣᵀ orthogonal to
// range(V), and
//
//	K = [Σ 0; 0 0] + [UᵀE; R_A] · [VᵀDᵣᵀ; R_W]ᵀ
//
// is a small (r+t)×(r+t) core. An exact SVD of K, truncated back to rank
// d, yields the updated factors after two thin products. The cost is
// O((m+n)·(r+t)² + (r+t)³) — independent of the block's nnz, which is
// what makes the update path worthwhile against the O(nnz·(d+p)) sketch
// of a full randomized recompute when t is small.
//
// The truncation of K is the only new error: its discarded spectral mass
// is returned so the caller can maintain the triangle-inequality bound
// ‖B_live − fac_new‖_F ≤ ‖B_base − fac_old‖_F + Discarded and fall back
// to a full recompute once the accumulated update error exhausts its
// budget (the Eqn. 2 trigger's conditioning fallback in internal/core).
package svdupd

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Options tune one incremental update.
type Options struct {
	// Rank is the truncation target d of the updated factorization.
	Rank int
	// Workers is the kernel worker budget (0 or 1 = sequential); results
	// are identical for every budget.
	Workers int
}

// Result is an updated factorization plus the truncation error the update
// introduced.
type Result struct {
	// Fac is the updated rank-≤d factorization of B̂ + D. Its U and V have
	// orthonormal columns (to working precision) and S is descending.
	Fac *linalg.SVDResult
	// Discarded is the Frobenius mass √(Σ σ_i²) of the singular triplets
	// of the core matrix K dropped by the rank-d truncation: an upper
	// bound on ‖(B̂+D) − Fac‖_F, and exactly the new error the update adds
	// on top of the old factorization's residual.
	Discarded float64
}

// Update absorbs the sparse delta d into fac per Brand's identity and
// returns the rank-truncated result. fac must carry its right factors
// (V non-nil) — the update rewrites both sides. It fails when the delta
// touches more rows than the factorization has rows or columns (the thin
// QR of the orthogonal complements needs t ≤ min(m, n)); callers treat
// that as "recompute instead".
//
// The arithmetic is deterministic: the same fac, delta and options produce
// bit-identical results for every worker budget.
func Update(fac *linalg.SVDResult, d *sparse.BlockDelta, opts Options) (*Result, error) {
	if fac == nil || fac.U == nil {
		return nil, fmt.Errorf("svdupd: nil factorization")
	}
	if fac.V == nil {
		return nil, fmt.Errorf("svdupd: factorization has no right factors")
	}
	m, n, r := fac.U.Rows, fac.V.Rows, fac.Rank()
	t := len(d.Rows)
	if t == 0 {
		return &Result{Fac: fac}, nil
	}
	if t > m || t > n {
		return nil, fmt.Errorf("svdupd: delta touches %d rows, factorization is %d×%d", t, m, n)
	}
	for i, row := range d.Rows {
		if row < 0 || row >= m {
			return nil, fmt.Errorf("svdupd: delta row %d outside %d-row factorization", row, m)
		}
		for _, c := range d.Cols[i] {
			if c < 0 || int(c) >= n {
				return nil, fmt.Errorf("svdupd: delta column %d outside %d-column factorization", c, n)
			}
		}
	}
	w := opts.Workers

	// Left side: A = E (the touched-row selector). UᵀA is just the touched
	// rows of U transposed, so project E off range(U) and QR the remainder.
	// The projection runs twice ("twice is enough" reorthogonalization) so
	// Q_A stays orthogonal to U across long chains of updates.
	ut := linalg.NewDense(t, r) // rows of U at the touched indices
	for i, row := range d.Rows {
		copy(ut.Row(i), fac.U.Row(row))
	}
	pa := linalg.MulTW(fac.U, ut, w).Scale(-1) // −U·(UᵀE), m×t
	for i, row := range d.Rows {
		pa.Row(row)[i]++
	}
	projectOff(pa, fac.U, w)
	qa, ra := linalg.QRThinW(pa, w)

	// Right side: W = Dᵣᵀ. VᵀW = (Dᵣ·V)ᵀ accumulates sparsely in one
	// O(nnz(D)·r) pass; the orthogonal complement is dense n×t.
	dv := linalg.NewDense(t, r) // Dᵣ·V
	for i := range d.Rows {
		cols, vals := d.Cols[i], d.Vals[i]
		out := dv.Row(i)
		for k, c := range cols {
			axpyRow(out, vals[k], fac.V.Row(int(c)))
		}
	}
	pw := linalg.MulTW(fac.V, dv, w).Scale(-1) // −V·(VᵀW), n×t
	for i := range d.Rows {
		cols, vals := d.Cols[i], d.Vals[i]
		for k, c := range cols {
			pw.Row(int(c))[i] += vals[k]
		}
	}
	projectOff(pw, fac.V, w)
	qw, rw := linalg.QRThinW(pw, w)

	// Core K = [Σ 0; 0 0] + [UᵀE; R_A]·[VᵀW; R_W]ᵀ, (r+t)×(r+t).
	left := linalg.NewDense(r+t, t)
	right := linalg.NewDense(r+t, t)
	for i := 0; i < r; i++ {
		li, ri := left.Row(i), right.Row(i)
		for jj := 0; jj < t; jj++ {
			li[jj] = ut.At(jj, i) // (UᵀE)[i][jj]
			ri[jj] = dv.At(jj, i) // (VᵀW)[i][jj]
		}
	}
	for i := 0; i < t; i++ {
		copy(left.Row(r+i), ra.Row(i))
		copy(right.Row(r+i), rw.Row(i))
	}
	k := linalg.MulTW(left, right, w)
	for i := 0; i < r; i++ {
		k.Row(i)[i] += fac.S[i]
	}

	kres := linalg.SVDW(k, w)
	kr := kres.Rank()
	dd := kr
	if opts.Rank >= 0 && dd > opts.Rank {
		dd = opts.Rank
	}
	var discSq float64
	for i := dd; i < kr; i++ {
		discSq += kres.S[i] * kres.S[i]
	}
	kt := kres.Truncate(dd)

	// Rotate the expanded bases: U' = [U Q_A]·U_K, V' = [V Q_W]·V_K.
	unew := linalg.MulW(linalg.HCat(fac.U, qa), kt.U, w)
	vnew := linalg.MulW(linalg.HCat(fac.V, qw), kt.V, w)
	return &Result{
		Fac:       &linalg.SVDResult{U: unew, S: append([]float64(nil), kt.S...), V: vnew},
		Discarded: math.Sqrt(discSq),
	}, nil
}

// projectOff subtracts basis·(basisᵀ·p) from p in place — the second
// Gram–Schmidt pass that keeps the orthogonal complement numerically
// orthogonal to the cached basis.
func projectOff(p, basis *linalg.Dense, workers int) {
	bt := linalg.TMulW(basis, p, workers) // basisᵀ·p, r×t
	corr := linalg.MulW(basis, bt, workers)
	for i := range p.Data {
		p.Data[i] -= corr.Data[i]
	}
}

// axpyRow adds a·x into dst (dst += a·x).
func axpyRow(dst []float64, a float64, x []float64) {
	for i, v := range x {
		dst[i] += a * v
	}
}
