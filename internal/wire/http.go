package wire

// This file is the JSON half of the serving-layer wire schema: the DTOs
// the HTTP server marshals and the client SDK unmarshals, plus the typed
// error kinds that let the client reconstruct the facade's error family
// (*InvalidKError, *NotInSubsetError, *NodeRangeError) from an HTTP
// status + body instead of collapsing everything into "request failed".

// Error kinds carried in ErrorDTO.Kind. The client switches on these to
// rebuild typed errors; unknown kinds degrade to a generic API error, so
// adding kinds is backward compatible.
const (
	// KindInvalidK maps to *treesvd.InvalidKError (HTTP 400).
	KindInvalidK = "invalid_k"
	// KindNotInSubset maps to *treesvd.NotInSubsetError (HTTP 404).
	KindNotInSubset = "not_in_subset"
	// KindNodeRange maps to *treesvd.NodeRangeError (HTTP 400).
	KindNodeRange = "node_range"
	// KindBadRequest is a malformed query/body with no richer type (400).
	KindBadRequest = "bad_request"
	// KindInternal is a server-side failure (HTTP 500).
	KindInternal = "internal"
)

// ErrorDTO is the JSON error body every non-2xx response carries. Error
// and Kind are always set; the remaining fields are populated per kind
// (Node/Subset for not_in_subset, K for invalid_k, Index/Node/MaxNodes
// for node_range).
type ErrorDTO struct {
	Error    string `json:"error"`
	Kind     string `json:"kind"`
	Node     int32  `json:"node,omitempty"`
	Subset   int    `json:"subset,omitempty"`
	K        int    `json:"k,omitempty"`
	Index    int    `json:"index,omitempty"`
	MaxNodes int    `json:"max_nodes,omitempty"`
}

// VersionDTO is the GET /v1/version response: the published snapshot
// version plus the live graph/topology shape.
type VersionDTO struct {
	Version    uint64 `json:"version"`
	NumNodes   int    `json:"num_nodes"`
	NumEdges   int    `json:"num_edges"`
	SubsetSize int    `json:"subset_size"`
	Shards     int    `json:"shards"`
}

// RecDTO is one ranked recommendation in JSON form.
type RecDTO struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// RecommendDTO is the GET /v1/recommend response.
type RecommendDTO struct {
	Version         uint64   `json:"version"`
	Source          int32    `json:"source"`
	Recommendations []RecDTO `json:"recommendations"`
}

// MatrixDTO is the GET /v1/embedding and /v1/rightembedding response:
// row-major embedding rows frozen at one snapshot version. Nodes names
// the graph node each row embeds (the subset for /v1/embedding, the
// requested node(s) otherwise).
type MatrixDTO struct {
	Version uint64      `json:"version"`
	Nodes   []int32     `json:"nodes"`
	Rows    [][]float64 `json:"rows"`
}

// EventDTO is one edge event in JSON ingest form; Type is "insert" or
// "delete".
type EventDTO struct {
	U    int32  `json:"u"`
	V    int32  `json:"v"`
	Type string `json:"type"`
}

// IngestDTO is the POST /v1/events JSON request body: one batch.
type IngestDTO struct {
	Events []EventDTO `json:"events"`
}

// ApplyDTO is the POST /v1/events response: batches/events accepted,
// level-1 blocks re-factored, and the snapshot version the last batch
// published.
type ApplyDTO struct {
	Batches int    `json:"batches"`
	Events  int    `json:"events"`
	Rebuilt int    `json:"rebuilt"`
	Version uint64 `json:"version"`
}
