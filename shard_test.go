// Sharding acceptance tests (ISSUE 6): configuration validation, the
// Shards=1 bit-identity guarantee, trajectory parity between shard
// counts, sharded persistence, and the scatter-gather Recommend
// property — per-shard top-k merge must equal the single full scan on
// the same snapshot, including under concurrent updates (-race).
package treesvd

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestShardConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildGraph(rng, 30, 90)
	subset := []int32{1, 4, 9, 15}

	var sce *ShardConfigError
	if _, err := New(g, subset, Config{Dim: 4, Shards: -2}); !errors.As(err, &sce) {
		t.Fatalf("Shards=-2: got %v, want *ShardConfigError", err)
	} else if sce.Shards != -2 {
		t.Fatalf("error carries Shards=%d, want -2", sce.Shards)
	}

	sce = nil
	if _, err := New(g, subset, Config{Dim: 4, Shards: 5}); !errors.As(err, &sce) {
		t.Fatalf("Shards=5 over 4 sources: got %v, want *ShardConfigError", err)
	} else if sce.Shards != 5 || sce.Subset != 4 {
		t.Fatalf("error carries Shards=%d Subset=%d, want 5/4", sce.Shards, sce.Subset)
	}

	if d := Defaults(); d.Shards != 1 {
		t.Fatalf("Defaults().Shards = %d, want 1", d.Shards)
	}
	emb := mustTB(New(g, subset, Config{Dim: 4, Shards: 4}))
	if emb.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", emb.NumShards())
	}
}

// shardTrajectory builds one embedder and drives it through the batches,
// recording the public observables after the initial build and after
// every batch.
type shardObs struct {
	frob     float64
	spectrum []float64
	recon    float64
	x        [][]float64
	y        [][]float64
}

func shardTrajectory(t *testing.T, shards int, dim int, delta float64, batches [][]Event) []shardObs {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	g := buildGraph(rng, 60, 240)
	subset := []int32{3, 7, 11, 20, 42, 13, 17, 25, 30, 31, 44, 51}
	emb := mustTB(New(g, subset, Config{Dim: dim, RMax: 1e-3, Delta: delta, Shards: shards}))
	obs := func() shardObs {
		return shardObs{
			frob:     emb.ProximityFrobNorm(),
			spectrum: emb.Snapshot().Spectrum(),
			recon:    emb.ReconstructionError(),
			x:        emb.Embedding(),
			y:        emb.RightEmbedding(),
		}
	}
	out := []shardObs{obs()}
	for i, b := range batches {
		if _, err := emb.ApplyEvents(bgt, b); err != nil {
			t.Fatalf("shards=%d batch %d: %v", shards, i, err)
		}
		if err := emb.Audit(); err != nil {
			t.Fatalf("shards=%d batch %d audit: %v", shards, i, err)
		}
		out = append(out, obs())
	}
	return out
}

func shardTestBatches() [][]Event {
	rng := rand.New(rand.NewSource(99))
	batches := make([][]Event, 5)
	for i := range batches {
		batches[i] = insertBatch(rng, 60, 30)
	}
	return batches
}

// TestShardsOneBitIdentical pins the compatibility guarantee: Shards
// unset (0) and Shards=1 are the same pipeline, bit for bit, along a
// whole update trajectory.
func TestShardsOneBitIdentical(t *testing.T) {
	batches := shardTestBatches()
	a := shardTrajectory(t, 0, 8, 0, batches)
	b := shardTrajectory(t, 1, 8, 0, batches)
	for i := range a {
		if a[i].frob != b[i].frob {
			t.Fatalf("step %d: frob %g vs %g", i, a[i].frob, b[i].frob)
		}
		if !equalRows([][]float64{a[i].spectrum}, [][]float64{b[i].spectrum}) {
			t.Fatalf("step %d: spectra differ", i)
		}
		if !equalRows(a[i].x, b[i].x) || !equalRows(a[i].y, b[i].y) {
			t.Fatalf("step %d: embeddings differ bitwise", i)
		}
	}
}

// TestShardedTrajectoryParity is the differential leg across shard
// counts. The PPR maintenance is per-source and deterministic, so the
// proximity Frobenius norm must agree to summation-order roundoff
// between Shards=1 and Shards=3 after every batch (the sharded norm is
// √(Σ‖M_i‖²), a different reduction order over bitwise-identical rows).
// The factorizations differ (per-shard truncation), but Weyl's
// inequality bounds the spectra: each reported spectrum is within its
// own reconstruction error of the true proximity spectrum, so
// corresponding singular values can differ by at most the sum of the
// two reconstruction errors.
func TestShardedTrajectoryParity(t *testing.T) {
	batches := shardTestBatches()
	frobClose := func(t *testing.T, step int, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > 1e-12*(1+a) {
			t.Fatalf("step %d: frob %g (1 shard) vs %g (3 shards)", step, a, b)
		}
	}

	// Dim=12 (= |S|: no truncation, so at every step the bound degenerates
	// to float roundoff and pins the merge as exact) and Dim=4 (truncated
	// everywhere). The Weyl argument needs both reported spectra to be
	// fresh — the default lazy δ deliberately serves a stale Σ within its
	// drift budget, so these trajectories run with a near-zero δ that
	// forces every upper-level rebuild.
	for _, dim := range []int{12, 4} {
		one := shardTrajectory(t, 1, dim, 1e-12, batches)
		three := shardTrajectory(t, 3, dim, 1e-12, batches)
		for i := range one {
			frobClose(t, i, one[i].frob, three[i].frob)
			bound := one[i].recon + three[i].recon + 1e-8*(1+one[i].frob)
			for j := range one[i].spectrum {
				if d := math.Abs(one[i].spectrum[j] - three[i].spectrum[j]); d > bound {
					t.Fatalf("dim %d step %d: σ_%d differs by %g, Weyl bound %g",
						dim, i, j, d, bound)
				}
			}
		}
	}
}

// TestShardedSaveLoadRoundTrip persists a 3-shard embedder mid-stream,
// reloads it, and checks both the restored observables and that the
// restored pipeline continues the trajectory identically.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := buildGraph(rng, 60, 240)
	subset := []int32{3, 7, 11, 20, 42, 13, 17, 25, 30, 31, 44, 51}
	batches := shardTestBatches()
	emb := mustTB(New(g, subset, Config{Dim: 6, RMax: 1e-3, Shards: 3}))
	for _, b := range batches[:3] {
		mustTB(emb.ApplyEvents(bgt, b))
	}

	var buf bytes.Buffer
	must0tb(emb.Save(&buf))
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != 3 {
		t.Fatalf("loaded NumShards = %d, want 3", loaded.NumShards())
	}
	requireMatClose(t, loaded.Embedding(), emb.Embedding(), "restored embedding")
	requireMatClose(t, loaded.RightEmbedding(), emb.RightEmbedding(), "restored right embedding")
	requireMatClose(t, [][]float64{loaded.Snapshot().Spectrum()},
		[][]float64{emb.Snapshot().Spectrum()}, "restored spectrum")
	if err := loaded.Audit(); err != nil {
		t.Fatalf("restored audit: %v", err)
	}

	// Both must continue identically (same persisted state, same events).
	for i, b := range batches[3:] {
		mustTB(emb.ApplyEvents(bgt, b))
		mustTB(loaded.ApplyEvents(bgt, b))
		if got, want := loaded.ProximityFrobNorm(), emb.ProximityFrobNorm(); got != want {
			t.Fatalf("post-load batch %d: frob %g, want %g", i, got, want)
		}
		requireMatClose(t, loaded.Embedding(), emb.Embedding(), "post-load embedding")
	}
}

// bruteRecommend recomputes Recommend by full scan over the snapshot's
// own cached factors, mirroring the documented semantics: score
// dot(X[s], Y[v]) over existing nodes, excluding s and its frozen
// out-neighbors, ordered by (score desc, node asc), truncated to k.
func bruteRecommend(snap *Snapshot, src int32, k int) []Recommendation {
	row := snap.rowOf[src]
	xs := snap.xMat().Row(row)
	y := snap.right()
	exclude := map[int32]bool{src: true}
	for _, v := range snap.outNbrs[src] {
		exclude[v] = true
	}
	var all []Recommendation
	for v := 0; v < min(y.Rows, snap.numNodes); v++ {
		if exclude[int32(v)] {
			continue
		}
		all = append(all, Recommendation{Node: int32(v), Score: dot(xs, y.Row(v))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestScatterGatherRecommendProperty is the satellite property test: on
// a sharded snapshot, the scatter-gather Recommend (per-shard top-k
// heaps merged above the shard boundary) must equal the brute-force full
// scan exactly — same nodes, same scores, same tie order — while
// ApplyEvents runs concurrently underneath. Run under -race via `make
// race`.
func TestScatterGatherRecommendProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 90
	g := buildGraph(rng, n, 360)
	subset := []int32{2, 5, 9, 14, 23, 31, 47, 58, 66, 71}
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3, Workers: 2, Shards: 4}))

	batches := make([][]Event, 6)
	for i := range batches {
		batches[i] = insertBatch(rng, n, 25)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := subset[r%len(subset)]
			for iter := 0; ; iter++ {
				select {
				case <-done:
					return
				default:
				}
				snap := emb.Snapshot()
				for _, k := range []int{1, 3, 10, n} {
					got, err := snap.Recommend(src, k)
					if err != nil {
						fail(err)
						return
					}
					want := bruteRecommend(snap, src, k)
					if len(got) != len(want) {
						fail(errors.New("scatter-gather length diverged from full scan"))
						return
					}
					for i := range want {
						if got[i] != want[i] {
							fail(errors.New("scatter-gather result diverged from full scan"))
							return
						}
					}
				}
			}
		}(r)
	}
	for _, b := range batches {
		if _, err := emb.ApplyEvents(bgt, b); err != nil {
			close(done)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
