package server

import (
	"context"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/obs"
)

// AdmissionConfig bounds per-endpoint concurrency. Each v1 endpoint gets
// its own gate: a fixed number of in-flight slots plus a short bounded
// wait queue. A request that finds every slot busy queues for at most
// QueueWait (less if its own deadline is nearer), then is shed with a
// 503 carrying a typed *treesvd.OverloadError and a Retry-After hint —
// the server degrades to fast rejections instead of collapsing under
// unbounded queueing. The zero value applies the defaults below;
// /healthz, /readyz, /metrics and pprof are never gated.
type AdmissionConfig struct {
	// ReadSlots is the in-flight cap for each read endpoint (version,
	// recommend, embedding, rightembedding). 0 means 64; negative
	// disables gating on reads.
	ReadSlots int
	// IngestSlots is the in-flight cap for POST /v1/events. 0 means 8;
	// negative disables gating on ingest.
	IngestSlots int
	// QueueDepth bounds how many requests may wait per gate beyond the
	// slots. 0 means twice the gate's slots; negative means no queue —
	// requests shed the moment every slot is busy.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot; the
	// request's own deadline shortens it. 0 means 25ms.
	QueueWait time.Duration
	// RetryAfter is the backoff hint shed responses carry (the
	// Retry-After and X-Retry-After-Ms headers). 0 means 50ms.
	RetryAfter time.Duration
}

// Admission defaults; see AdmissionConfig.
const (
	defaultReadSlots   = 64
	defaultIngestSlots = 8
	defaultQueueWait   = 25 * time.Millisecond
	defaultRetryAfter  = 50 * time.Millisecond
)

// slotsFor resolves the configured slot count for an endpoint, with -1
// meaning the gate is disabled.
func (c AdmissionConfig) slotsFor(endpoint string) int {
	cfgd, def := c.ReadSlots, defaultReadSlots
	if endpoint == "ingest" {
		cfgd, def = c.IngestSlots, defaultIngestSlots
	}
	switch {
	case cfgd < 0:
		return -1
	case cfgd == 0:
		return def
	}
	return cfgd
}

// gate is one endpoint's admission control: slots is the in-flight
// bound, queue tokens bound the waiters. A nil *gate admits everything.
type gate struct {
	endpoint   string
	slots      chan struct{}
	queue      chan struct{}
	wait       time.Duration
	retryAfter time.Duration
	queued     *obs.Gauge
}

// newGate builds the gate for one endpoint, or nil when disabled.
func newGate(endpoint string, cfg AdmissionConfig, queued *obs.Gauge) *gate {
	slots := cfg.slotsFor(endpoint)
	if slots < 0 {
		return nil
	}
	depth := cfg.QueueDepth
	switch {
	case depth < 0:
		depth = 0
	case depth == 0:
		depth = 2 * slots
	}
	g := &gate{
		endpoint:   endpoint,
		slots:      make(chan struct{}, slots),
		queue:      make(chan struct{}, depth),
		wait:       cfg.QueueWait,
		retryAfter: cfg.RetryAfter,
		queued:     queued,
	}
	if g.wait <= 0 {
		g.wait = defaultQueueWait
	}
	if g.retryAfter <= 0 {
		g.retryAfter = defaultRetryAfter
	}
	return g
}

// acquire admits the request or sheds it with a *treesvd.OverloadError.
// On success the returned release frees the slot; callers must invoke it
// exactly once. The wait is deadline-aware: a request whose context
// expires sooner than QueueWait waits only that long, and one that
// arrives already expired sheds immediately — queueing work that cannot
// be answered in time only deepens an overload.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return nil, g.shed() // queue full: reject in O(1)
	}
	defer func() { <-g.queue }()
	wait := g.wait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		return nil, g.shed()
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	case <-t.C:
		return nil, g.shed()
	case <-ctx.Done():
		return nil, g.shed()
	}
}

func (g *gate) release() { <-g.slots }

func (g *gate) shed() error {
	return &treesvd.OverloadError{Endpoint: g.endpoint, RetryAfter: g.retryAfter}
}
