// Package server exposes a treesvd.Embedder over HTTP: the snapshot-
// isolated read path (Recommend, Embedding, RightEmbedding, Version) plus
// a streaming ApplyEvents ingest endpoint, with the embedder's metric
// registry and net/http/pprof mounted on the same mux. Responses are JSON
// by default and switch to the compact binary frame codec (internal/wire)
// by content negotiation, which matters for bulk embedding reads and
// high-rate ingest.
//
// Endpoints:
//
//	GET  /v1/version                      snapshot version + graph shape
//	GET  /v1/recommend?source=S&k=K       top-k candidates for subset node S
//	GET  /v1/embedding[?node=S]           subset embedding X (or one row)
//	GET  /v1/rightembedding[?node=V]      right embedding Y (or one row)
//	POST /v1/events                       ingest: one JSON batch, or a
//	                                      stream of binary event frames
//	                                      (each frame = one batch)
//	GET  /metrics                         obs registry (expvar JSON /
//	                                      Prometheus text)
//	GET  /debug/pprof/...                 pprof handlers
//
// Reads are lock-free: every request pins the currently published
// Snapshot once and serves entirely from it, so a response is always
// internally consistent (its version matches its payload) even while
// ingest runs. Graceful shutdown stops the listener and drains in-flight
// requests — each keeps serving against the snapshot it pinned.
//
// Typed errors cross the wire: *treesvd.InvalidKError maps to 400,
// *treesvd.NotInSubsetError to 404, *treesvd.NodeRangeError to 400, each
// with a machine-readable kind the client package converts back into the
// same typed error the in-process facade would have returned.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	treesvd "github.com/tree-svd/treesvd"
)

// Ingestor accepts event batches; both *treesvd.Embedder and
// *treesvd.DurableEmbedder satisfy it. The server validates nothing
// itself — the embedder's up-front batch validation (Config.MaxNodes)
// is the contract, and its *NodeRangeError maps to HTTP 400.
type Ingestor interface {
	ApplyEvents(ctx context.Context, events []treesvd.Event) (int, error)
}

// Options configures a Server. The zero value is usable.
type Options struct {
	// Ingest handles POST /v1/events. Nil means the embedder itself;
	// pass the *treesvd.DurableEmbedder wrapping it to log batches to
	// the WAL before they apply.
	Ingest Ingestor
	// MaxBatchEvents caps the events accepted per ingest batch (one JSON
	// body or one binary frame). 0 means the default of 1<<20.
	MaxBatchEvents int
	// ReadHeaderTimeout bounds header parsing per request; 0 means 10s.
	ReadHeaderTimeout time.Duration
	// Admission bounds per-endpoint concurrency; see AdmissionConfig.
	// The zero value applies the defaults.
	Admission AdmissionConfig
	// Trace, when non-nil, receives a TraceShed event for every request
	// admission control rejects (Endpoint names the gate). Server-side
	// only; independent of the embedder's own trace hook.
	Trace treesvd.TraceHook
}

// Server serves one Embedder. Create with New, start with Start (or
// mount Handler on infrastructure you own), stop with Shutdown.
type Server struct {
	e        *treesvd.Embedder
	ingest   Ingestor
	rowOf    map[int32]int
	subset   []int32
	maxBatch int

	met   *metrics
	mux   *http.ServeMux
	gates map[string]*gate
	trace treesvd.TraceHook

	draining atomic.Bool

	mu        sync.Mutex
	hs        *http.Server
	ln        net.Listener
	serveDone chan struct{}
	serveErr  error // set before serveDone closes

	stopOnce sync.Once
	stopErr  error
}

// New wires a server around e. The embedder keeps working as usual —
// in-process ApplyEvents/Recommend callers and the HTTP surface share
// the same snapshots and metrics registry.
func New(e *treesvd.Embedder, opts Options) *Server {
	ingest := opts.Ingest
	if ingest == nil {
		ingest = e
	}
	maxBatch := opts.MaxBatchEvents
	if maxBatch <= 0 {
		maxBatch = 1 << 20
	}
	subset := e.Subset()
	rowOf := make(map[int32]int, len(subset))
	for i, v := range subset {
		rowOf[v] = i
	}
	s := &Server{
		e:        e,
		ingest:   ingest,
		rowOf:    rowOf,
		subset:   subset,
		maxBatch: maxBatch,
		met:      metricsFor(e.MetricsRegistry()),
		trace:    opts.Trace,
	}
	s.gates = make(map[string]*gate, len(endpointNames))
	for _, name := range endpointNames {
		s.gates[name] = newGate(name, opts.Admission, &s.met.endpoint(name).queued)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	mux.HandleFunc("GET /v1/recommend", s.instrument("recommend", s.handleRecommend))
	mux.HandleFunc("GET /v1/embedding", s.instrument("embedding", s.handleEmbedding))
	mux.HandleFunc("GET /v1/rightembedding", s.instrument("rightembedding", s.handleRightEmbedding))
	mux.HandleFunc("POST /v1/events", s.instrument("ingest", s.handleIngest))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("/metrics", e.MetricsRegistry())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.hs = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: cmpOr(opts.ReadHeaderTimeout, 10*time.Second),
	}
	return s
}

// cmpOr returns v, or def when v is zero.
func cmpOr(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	return v
}

// Handler returns the server's mux, for mounting under a listener the
// caller owns (e.g. httptest, or a shared edge mux). Start/Shutdown are
// not needed in that mode.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (host:port; ":0" picks a free port — read it back
// with Addr) and serves in a background goroutine until Shutdown. It
// returns once the listener is bound, so a follow-up request cannot race
// the bind. Watch ServeDone/ServeErr to learn of a serve loop that dies
// for any reason other than Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if err := s.attach(ln); err != nil {
		ln.Close()
		return err
	}
	go s.serve(ln)
	return nil
}

// Serve accepts connections on a listener the caller owns (wrapped for
// fault injection, TLS-terminated, inherited from a supervisor) until
// Shutdown or a listener error. It returns nil after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.attach(ln); err != nil {
		return err
	}
	return s.serve(ln)
}

// attach records the listener; a server serves at most once.
func (s *Server) attach(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return errors.New("server: already started")
	}
	s.ln = ln
	s.serveDone = make(chan struct{})
	return nil
}

// serve runs the accept loop and publishes its exit.
func (s *Server) serve(ln net.Listener) error {
	err := s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil // the Shutdown path: not a serve failure
	}
	s.mu.Lock()
	s.serveErr = err
	done := s.serveDone
	s.mu.Unlock()
	close(done)
	return err
}

// ServeDone returns a channel closed when the serve loop has exited —
// after Shutdown, or on a listener failure. Nil before Start/Serve.
func (s *Server) ServeDone() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveDone
}

// ServeErr returns the error that ended the serve loop, nil for a clean
// Shutdown (or while still serving). Meaningful once ServeDone closes.
func (s *Server) ServeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL ("" before Start).
func (s *Server) URL() string {
	addr := s.Addr()
	if addr == "" {
		return ""
	}
	return "http://" + addr
}

// Shutdown gracefully stops the server: the listener closes immediately
// (new connections are refused) and in-flight requests drain — each
// keeps serving from the snapshot it pinned at entry, so readers observe
// a clean "complete response or connection refused", never a truncated
// or mixed-version payload. ctx bounds the drain; on expiry remaining
// connections are closed hard and ctx.Err() is returned.
// Shutdown is idempotent: the first call performs the drain, later calls
// (including concurrent ones) wait for it and return the same result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	ln, done := s.ln, s.serveDone
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	s.stopOnce.Do(func() {
		// Flip readiness before the listener closes: a load balancer
		// probing /readyz sees "draining" while in-flight requests finish.
		s.draining.Store(true)
		err := s.hs.Shutdown(ctx)
		<-done // the serve loop has returned
		if err != nil {
			s.hs.Close()
			s.stopErr = fmt.Errorf("server: shutdown: %w", err)
		}
	})
	return s.stopErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
