// Package treesvd is the public facade of the Tree-SVD library: efficient
// subset node embedding over large dynamic graphs via hierarchical
// truncated SVD with lazy updates (SIGMOD 2023).
//
// The typical lifecycle is:
//
//	g := treesvd.NewGraph()                    // or load an event stream
//	g.InsertEdge(0, 1); ...
//	emb, err := treesvd.New(g, subset, treesvd.Defaults())
//	X := emb.Embedding()                       // |S|×d subset embedding
//	...
//	emb.ApplyEvents(ctx, events)               // graph changed
//	X = emb.Embedding()                        // lazily-updated embedding
//
// New runs the full pipeline: Forward-Push personalized PageRank on the
// graph and its reverse (Algorithms 1-2 of the paper), the STRAP-style
// log-transformed proximity matrix, and the hierarchical Tree-SVD
// factorization (Algorithm 3). ApplyEvents maintains everything
// incrementally: dynamic Forward-Push repairs the PPR estimates, the
// proximity matrix absorbs the changes with per-block Frobenius
// bookkeeping, and only blocks violating the Lemma 3.4 trigger are
// refreshed (Algorithm 4) — re-factored from scratch or, with
// Config.SVDUpdate, incrementally updated in place.
//
// # Concurrency
//
// Reads and updates are decoupled by snapshot isolation: every successful
// New/ApplyEvents/Rebuild atomically publishes an immutable Snapshot, and
// every read method (Embedding, RightEmbedding, Recommend, LastStats)
// serves from the currently published snapshot. Any number of goroutines
// may read — directly or via Snapshot() — while a single update is in
// flight; updates themselves are serialized by an internal mutex. See the
// Snapshot type for pinning a consistent version across several reads.
package treesvd

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tree-svd/treesvd/internal/check"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/obs"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// Graph is a dynamic directed graph. The zero value is not usable; call
// NewGraph.
type Graph = graph.Graph

// Event is an edge insertion or deletion.
type Event = graph.Event

// Event types.
const (
	Insert = graph.Insert
	Delete = graph.Delete
)

// NewGraph returns an empty dynamic graph; nodes are created on demand by
// InsertEdge.
func NewGraph() *Graph { return graph.New(0) }

// NewGraphN returns a dynamic graph with n isolated nodes.
func NewGraphN(n int) *Graph { return graph.New(n) }

// Config bundles every knob of the pipeline. Zero values are replaced by
// the Defaults() counterparts; negative values for Dim, Alpha, RMax or
// Delta are rejected.
type Config struct {
	// Dim is the embedding dimension d (default 32).
	Dim int
	// Alpha is the PPR decay factor (default 0.15).
	Alpha float64
	// RMax is the Forward-Push threshold (default 1e-4); smaller is more
	// accurate and more expensive.
	RMax float64
	// Branch (k, default 8) and Levels (q, default 3) set the tree shape;
	// the proximity matrix is split into k^(q-1) column blocks.
	Branch, Levels int
	// Delta is the lazy-update threshold δ of Eqn. 2. Zero selects the
	// default 0.65; pass a tiny positive value (e.g. 1e-12) to force
	// eager re-factorization of every touched block.
	Delta float64
	// MaxNodes bounds node ids the graph will ever reach. 0 means "the
	// graph's current size"; set it when the stream will grow the graph.
	//
	// Contract: the proximity matrix and the right embedding are allocated
	// max(MaxNodes, g.NumNodes()) columns wide at New and never grow.
	// ApplyEvents validates every batch against that capacity up front and
	// rejects it with a *NodeRangeError — before mutating the graph or any
	// estimate — when an event references a node id at or beyond it.
	MaxNodes int
	// Seed drives the randomized factorization (default 1).
	Seed int64
	// SelfCheck runs the internal/check invariant auditors (PPR push
	// invariant and mass accounting, proximity-matrix bookkeeping recount,
	// tree cache shapes) after every ApplyEvents/Rebuild, before the new
	// snapshot is published. A failed audit aborts the update with a
	// descriptive error, keeps the previous snapshot readable, and routes
	// the next update through the full-rebuild recovery path. Costs an
	// extra O(nnz) pass per update — a debugging aid, not for production.
	SelfCheck bool
	// Workers parallelizes per-source PPR work and per-block
	// factorizations (0 or 1 = sequential). Results are identical for any
	// worker count.
	Workers int
	// Shards splits the subset into this many contiguous row shards, each
	// owning its sources' PPR states, its slice of the proximity matrix
	// and its own Tree-SVD; the coordinator fans event batches out to
	// every shard in parallel (bounded by Workers overall), merges the
	// per-shard factorizations above the shard boundary, and serves
	// Recommend by scatter-gather over per-shard top-k heaps. 0 and 1 mean
	// unsharded (bit-identical to builds predating this knob). Negative
	// values and counts exceeding the subset size are rejected with a
	// *ShardConfigError.
	Shards int
	// SVDUpdate enables the Brand-style incremental factorization path for
	// the dynamic updates: a violating level-1 block whose accumulated
	// delta is small relative to the Eqn. 2 trigger absorbs it directly
	// into the cached (U, Σ, V) instead of re-running the randomized SVD,
	// falling back to a full recompute when UpdateMaxRel/UpdateTailFrac
	// say no. Off by default; when off, every update is bit-identical to
	// builds predating this knob. Watch treesvd_tree_blocks_updated_total
	// vs treesvd_tree_blocks_rebuilt_total to see the path working.
	SVDUpdate bool
	// UpdateMaxRel caps how large a block's delta may be, relative to the
	// Eqn. 2 trigger √2·δ·‖B_j‖_F, for the incremental path to attempt it
	// (0 means the default 0.5). Raising it makes more blocks eligible at
	// the cost of larger truncation error per update; negative values are
	// rejected. Only meaningful with SVDUpdate.
	UpdateMaxRel float64
	// UpdateTailFrac budgets the truncation error the incremental path may
	// accumulate per block, as a fraction of the Eqn. 2 trigger, before it
	// must fall back to a full recompute (0 means the default 0.25).
	// Lowering it trades update hit rate for a tighter factorization;
	// negative values are rejected. Only meaningful with SVDUpdate.
	UpdateTailFrac float64
	// PushAccel selects the Forward-Push variant used for PPR maintenance:
	// PushClassic (the default, Algorithm 1/2 exactly as before) or
	// PushSOR, the successive-over-relaxation accelerated step. Both
	// satisfy the same |π − p| ≤ Σ|r| contract and pass the same exact-PPR
	// audits; PushSOR reaches the r_max threshold in fewer pushes.
	PushAccel PushAccel
}

// PushAccel enumerates the Forward-Push variants of Config.PushAccel.
type PushAccel int

// Forward-Push variants.
const (
	// PushClassic is the paper's push step: settle α·r(u), spread the
	// (1−α) remainder, clear the residue. The zero value, and bit-exact
	// with builds predating the knob.
	PushClassic PushAccel = iota
	// PushSOR over-relaxes each push by ω = min(2/(1+√(α(2−α))), 2/(2−α))
	// — the momentum-accelerated Forward-Push of arXiv 2306.02102, capped
	// at the factor that keeps total residue mass non-increasing on any
	// graph. A per-call safeguard reverts to the classic step if the
	// accelerated phase ever overstays its push budget, preserving
	// guaranteed termination.
	PushSOR
)

// Defaults returns the paper's configuration (scaled d).
func Defaults() Config {
	return Config{Dim: 32, Alpha: 0.15, RMax: 1e-4, Branch: 8, Levels: 3, Delta: 0.65, Seed: 1, Shards: 1}
}

// withDefaults fills zero values from Defaults and rejects negative knobs
// instead of silently substituting them.
func (c Config) withDefaults() (Config, error) {
	switch {
	case c.Dim < 0:
		return c, fmt.Errorf("treesvd: negative Dim %d", c.Dim)
	case c.Alpha < 0:
		return c, fmt.Errorf("treesvd: negative Alpha %g", c.Alpha)
	case c.RMax < 0:
		return c, fmt.Errorf("treesvd: negative RMax %g", c.RMax)
	case c.Delta < 0:
		return c, fmt.Errorf("treesvd: negative Delta %g", c.Delta)
	case c.Shards < 0:
		return c, &ShardConfigError{Shards: c.Shards}
	case c.UpdateMaxRel < 0:
		return c, fmt.Errorf("treesvd: negative UpdateMaxRel %g", c.UpdateMaxRel)
	case c.UpdateTailFrac < 0:
		return c, fmt.Errorf("treesvd: negative UpdateTailFrac %g", c.UpdateTailFrac)
	case c.PushAccel != PushClassic && c.PushAccel != PushSOR:
		return c, fmt.Errorf("treesvd: unknown PushAccel %d", c.PushAccel)
	}
	d := Defaults()
	if c.Dim == 0 {
		c.Dim = d.Dim
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.RMax == 0 {
		c.RMax = d.RMax
	}
	if c.Branch <= 0 {
		c.Branch = d.Branch
	}
	if c.Levels <= 0 {
		c.Levels = d.Levels
	}
	if c.Delta == 0 {
		c.Delta = d.Delta
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c, nil
}

// Embedder maintains subset embeddings over a dynamic graph.
//
// Concurrency contract: ApplyEvents, Rebuild and Save serialize on an
// internal mutex (safe from any goroutine); Snapshot, Embedding,
// RightEmbedding, Recommend, LastStats, Subset and Version are lock-free
// reads of the last published snapshot and are safe to call concurrently
// with an in-flight update. Graph() returns a read-only view whose
// accessors serialize with updates on the same mutex, so it too is safe
// from any goroutine; the live graph itself is never handed out.
type Embedder struct {
	cfg    Config
	subset []int32
	rowOf  map[int32]int

	mu sync.Mutex // serializes updates (ApplyEvents/Rebuild/Save)
	// g is the shared graph substrate: one copy of the topology, advanced
	// exactly once per batch by the coordinator and read concurrently by
	// every shard's repair pass.
	g *graph.Graph
	// shards partitions the subset into contiguous row ranges; shards[0]
	// additionally holds the metric sets shared by every shard. Unsharded
	// embedders are the len(shards)==1 special case of the same layout.
	shards []*shard
	// stale is set when a cancelled/failed update left the PPR estimates
	// out of sync with the already-advanced graph; the next update then
	// takes the full-rebuild path to recover.
	stale bool
	// trace receives pipeline events when set (see SetTraceHook); durMet
	// links the durable layer's counters in when a DurableEmbedder wraps
	// this embedder. Both are guarded by mu.
	trace  obs.TraceHook
	durMet *durableMetrics

	met     *pipelineMetrics
	version atomic.Uint64
	snap    atomic.Pointer[Snapshot]
}

// shard is the first-class unit of scale-out: a contiguous slice of
// subset rows [lo, hi) together with everything derived from them — the
// forward/reverse PPR states, the shard's rows of the proximity matrix
// (its own DynRow, so level-1 block caches and norms are per-shard), and
// a full Tree-SVD over that slice. Shards share the graph substrate and
// the aggregate metric sets but own no cross-shard state; the
// coordinator (Embedder) merges factorizations above the shard boundary.
type shard struct {
	id     int
	lo, hi int // subset row range [lo, hi)
	prox   *ppr.Proximity
	tree   *core.Tree
}

// shardSeedStride separates the randomized-factorization seed streams of
// neighboring shards; shard 0 keeps Config.Seed exactly, so an unsharded
// embedder is bit-identical to builds predating sharding.
const shardSeedStride = 611_953_393

// forEachShard runs f over every shard, concurrently when there is more
// than one (bounded by the coordinator's Workers budget; each shard's
// own pipeline runs under its SplitBudget share, keeping the product
// within the global budget). The single-shard path calls f inline so an
// unsharded embedder keeps the exact pre-sharding execution shape.
func (e *Embedder) forEachShard(ctx context.Context, f func(s *shard) error) error {
	if len(e.shards) == 1 {
		return f(e.shards[0])
	}
	return par.ForErr(ctx, len(e.shards), par.Workers(e.cfg.Workers), func(i int) error {
		return f(e.shards[i])
	})
}

// New builds the initial embedding state for subset over g and publishes
// the first snapshot. The graph is retained and mutated by ApplyEvents;
// callers must not mutate it directly afterwards.
func New(g *Graph, subset []int32, cfg Config) (*Embedder, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(subset) == 0 {
		return nil, fmt.Errorf("treesvd: empty subset")
	}
	for _, v := range subset {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("treesvd: subset node %d outside graph with %d nodes", v, g.NumNodes())
		}
		if g.OutDeg(v) == 0 {
			return nil, fmt.Errorf("treesvd: subset node %d has no out-edges; PPR from it is degenerate", v)
		}
	}
	if cfg.Shards > len(subset) {
		return nil, &ShardConfigError{Shards: cfg.Shards, Subset: len(subset)}
	}
	// Each shard's pipeline runs under an equal share of the worker
	// budget; the outer fan-out is capped at Workers, so the product stays
	// within the global budget (the par.SplitBudget contract).
	sw := par.SplitBudget(cfg.Workers, cfg.Shards)
	params := ppr.Params{Alpha: cfg.Alpha, RMax: cfg.RMax, Workers: sw, Met: &ppr.Metrics{},
		Accel: cfg.PushAccel == PushSOR}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: sw,
		SVDUpdate: cfg.SVDUpdate, UpdateMaxRel: cfg.UpdateMaxRel, UpdateTailFrac: cfg.UpdateTailFrac,
	}
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes < g.NumNodes() {
		maxNodes = g.NumNodes()
	}
	ranges := core.ShardRanges(len(subset), cfg.Shards)
	shards := make([]*shard, len(ranges))
	treeMet := &core.Metrics{}
	if err := par.ForErr(context.Background(), len(ranges), par.Workers(cfg.Workers), func(i int) error {
		scfg := tcfg
		scfg.Seed = tcfg.Seed + int64(i)*shardSeedStride
		sub, err := ppr.NewSubset(g, subset[ranges[i][0]:ranges[i][1]], params)
		if err != nil {
			return err
		}
		prox := ppr.NewProximity(sub, maxNodes, tcfg.Blocks())
		tree, err := core.NewTree(prox.M, scfg)
		if err != nil {
			return err
		}
		tree.ShareMetrics(treeMet)
		if err := tree.Build(context.Background()); err != nil {
			return err
		}
		shards[i] = &shard{id: i, lo: ranges[i][0], hi: ranges[i][1], prox: prox, tree: tree}
		return nil
	}); err != nil {
		return nil, err
	}
	e := newEmbedder(cfg, subset, g, shards)
	e.publishLocked()
	return e, nil
}

// newEmbedder wires the shared fields (used by New and Load).
func newEmbedder(cfg Config, subset []int32, g *graph.Graph, shards []*shard) *Embedder {
	e := &Embedder{
		cfg:    cfg,
		subset: append([]int32(nil), subset...),
		rowOf:  make(map[int32]int, len(subset)),
		g:      g,
		shards: shards,
	}
	for i, v := range e.subset {
		e.rowOf[v] = i
	}
	e.met = newPipelineMetrics(e)
	return e
}

// NumShards returns the number of subset shards the embedder runs
// (Config.Shards after defaulting; 1 for unsharded embedders).
func (e *Embedder) NumShards() int { return len(e.shards) }

// Subset returns the embedded node ids in row order.
func (e *Embedder) Subset() []int32 { return append([]int32(nil), e.subset...) }

// ApplyEvents advances the graph through a batch of edge events and
// lazily refreshes the factorization, publishing a new snapshot on
// success. It returns the number of level-1 blocks refreshed across all
// shards — re-factored from scratch plus, with Config.SVDUpdate,
// incrementally updated (0 when every block stayed within the Eqn. 2
// tolerance); LastStats splits the two paths apart.
//
// Cancelling ctx aborts the update with ctx's error; the last published
// snapshot stays intact and readable, and the embedder recovers on the
// next successful ApplyEvents or Rebuild (taking the from-scratch path if
// the interrupted update left the PPR estimates behind the graph).
//
// Following Theorem 3.7's min(τ + 1/r_max, |S|/r_max) accounting, a batch
// larger than 1/r_max events is handled by recomputing the PPR states
// from scratch instead of replaying each event — the incremental path
// would cost more than a fresh push per source.
//
// A batch containing an event whose node id is negative or at/beyond the
// embedder's capacity (see Config.MaxNodes) is rejected whole with a
// *NodeRangeError before any state is mutated.
func (e *Embedder) ApplyEvents(ctx context.Context, events []Event) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyEventsLocked(ctx, events, true)
}

// applyEventsLocked is the body of ApplyEvents. Caller holds e.mu.
// publish=false skips the snapshot publication (an O(nnz) copy), letting
// WAL replay fold many batches and publish once at the end. It wraps the
// batch in the trace bracket (one TraceBatchStart, one TraceBatchEnd —
// including on error) and records the facade-level batch metrics; the
// pipeline work itself runs in applyBatchLocked.
func (e *Embedder) applyEventsLocked(ctx context.Context, events []Event, publish bool) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// Validate the whole batch against the fixed proximity width before
	// touching anything: an oversized node id used to grow the graph and
	// then panic deep inside the proximity refresh, after the graph had
	// already advanced past the estimates.
	if err := e.validateEvents(events); err != nil {
		return 0, err
	}
	start := time.Now()
	e.met.seq++
	seq := e.met.seq
	if h := e.trace; h != nil {
		h(obs.TraceEvent{Kind: obs.TraceBatchStart, Seq: seq, Block: -1, Events: len(events)})
	}
	rebuilt, err := e.applyBatchLocked(ctx, events, publish)
	if err == nil {
		e.met.batches.Inc()
		e.met.events.Add(uint64(len(events)))
	}
	e.met.batchNanos.ObserveSince(start)
	if h := e.trace; h != nil {
		h(obs.TraceEvent{Kind: obs.TraceBatchEnd, Seq: seq, Block: -1, Events: len(events),
			Rebuilt: rebuilt, Dur: time.Since(start), Err: err})
	}
	return rebuilt, err
}

// applyBatchLocked runs the batch through the pipeline stages, each under
// its pprof stage label. Caller holds e.mu.
func (e *Embedder) applyBatchLocked(ctx context.Context, events []Event, publish bool) (int, error) {
	if err := stage(ctx, "ppr.apply", func(ctx context.Context) error {
		if e.stale || e.shards[0].prox.Sub.RebuildThreshold(len(events)) {
			// Large batch (the Theorem 3.7 fallback) or recovery from an
			// interrupted update: advance the graph, then recompute PPR and
			// proximity from scratch.
			e.g.ApplyAll(events)
			e.stale = true // graph is ahead of the estimates until Rebuild lands
			if err := e.forEachShard(ctx, func(s *shard) error {
				if err := s.prox.Sub.Rebuild(ctx); err != nil {
					return err
				}
				s.prox.RefreshAll()
				return nil
			}); err != nil {
				return err
			}
			e.stale = false
			return nil
		}
		// The coordinator advances the shared graph exactly once; every
		// shard then repairs its own sources from the recorded applied
		// slice, reading the (now quiescent) graph concurrently.
		applied := ppr.ApplyAll(e.g, events)
		if err := e.forEachShard(ctx, func(s *shard) error {
			return s.prox.RepairApplied(ctx, applied)
		}); err != nil {
			e.stale = true
			return err
		}
		return nil
	}); err != nil {
		return 0, err
	}
	counts := make([]int, len(e.shards))
	if err := e.forEachShard(ctx, func(s *shard) error {
		start := time.Now()
		n, err := s.tree.Update(ctx)
		if err != nil {
			// The tree commit is transactional: its caches and the DynRow
			// baselines are untouched, so the violating blocks re-trigger on
			// the next update. No stale flag needed — shards that already
			// committed simply report zero work on the retry.
			return err
		}
		counts[s.id] = n
		e.met.observeShard(s.id, n, start)
		return nil
	}); err != nil {
		return 0, err
	}
	rebuilt := 0
	for _, n := range counts {
		rebuilt += n
	}
	if err := stage(ctx, "audit", func(context.Context) error { return e.selfCheckLocked() }); err != nil {
		return 0, err
	}
	if publish {
		obs.Stage(ctx, "publish", func(context.Context) { e.publishLocked() })
	}
	return rebuilt, nil
}

// validateEvents checks every event of a batch against the embedder's
// fixed capacity (see Config.MaxNodes). The capacity is immutable after
// New, so this needs no lock; the durable layer calls it before logging
// a batch so nothing unreplayable ever reaches the WAL.
func (e *Embedder) validateEvents(events []Event) error {
	capacity := e.shards[0].prox.M.Cols()
	for i, ev := range events {
		if ev.U < 0 || int(ev.U) >= capacity {
			return &NodeRangeError{Index: i, Node: ev.U, MaxNodes: capacity}
		}
		if ev.V < 0 || int(ev.V) >= capacity {
			return &NodeRangeError{Index: i, Node: ev.V, MaxNodes: capacity}
		}
	}
	return nil
}

// Rebuild recomputes PPR, proximity and the full tree from scratch on the
// current graph — the Tree-SVD-S path, useful after massive changes
// (Theorem 3.7's O(|S|/r_max) fallback). On success a new snapshot is
// published; on error/cancellation the last snapshot stays intact.
func (e *Embedder) Rebuild(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	err := e.rebuildLocked(ctx)
	if err == nil {
		e.met.rebuilds.Inc()
	}
	if h := e.trace; h != nil {
		h(obs.TraceEvent{Kind: obs.TraceRebuild, Block: -1, Dur: time.Since(start), Err: err})
	}
	return err
}

// rebuildLocked is the body of Rebuild. Caller holds e.mu.
func (e *Embedder) rebuildLocked(ctx context.Context) error {
	if err := stage(ctx, "ppr.apply", func(ctx context.Context) error {
		e.stale = true
		if err := e.forEachShard(ctx, func(s *shard) error {
			if err := s.prox.Sub.Rebuild(ctx); err != nil {
				return err
			}
			s.prox.RefreshAll()
			return nil
		}); err != nil {
			return err
		}
		e.stale = false
		return nil
	}); err != nil {
		return err
	}
	if err := e.forEachShard(ctx, func(s *shard) error { return s.tree.Build(ctx) }); err != nil {
		return err
	}
	if err := stage(ctx, "audit", func(context.Context) error { return e.selfCheckLocked() }); err != nil {
		return err
	}
	obs.Stage(ctx, "publish", func(context.Context) { e.publishLocked() })
	return nil
}

// selfCheckLocked runs the invariant auditors when Config.SelfCheck is
// set. On failure the update is aborted before publishing and the stale
// flag routes the next update through full-rebuild recovery — the
// corrupted internal state is never served. Caller holds e.mu.
func (e *Embedder) selfCheckLocked() error {
	if !e.cfg.SelfCheck {
		return nil
	}
	if err := e.auditLocked(); err != nil {
		e.stale = true
		return fmt.Errorf("treesvd: self-check: %w", err)
	}
	return nil
}

// auditLocked runs the cheap internal/check auditors over every pipeline
// layer of every shard, then the cross-shard consistency audit. Caller
// holds e.mu.
func (e *Embedder) auditLocked() error {
	views := make([]check.ShardView, len(e.shards))
	for i, s := range e.shards {
		if err := check.PPRSubset(s.prox.Sub); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := check.DynRow(s.prox.M); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := check.Tree(s.tree); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		views[i] = check.ShardView{Lo: s.lo, Hi: s.hi, Sub: s.prox.Sub, M: s.prox.M}
	}
	return check.Shards(e.g, e.subset, views)
}

// Audit verifies the pipeline's internal invariants (PPR push invariant
// and mass accounting, proximity bookkeeping recount, tree cache shapes)
// and returns the first violation, or nil when everything is consistent.
// It takes the update lock, so it is safe to call concurrently with
// updates. See Config.SelfCheck for running it automatically.
func (e *Embedder) Audit() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.auditLocked()
}

// ReconstructionError returns ‖U·Σ·Ṽ − M‖_F of the current factorization
// against the live proximity matrix — the observable counterpart of the
// Theorem 3.2 approximation guarantee. It takes the update lock.
func (e *Embedder) ReconstructionError() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.shards) == 1 {
		return e.shards[0].tree.ReconstructionError()
	}
	// Merge the live per-shard roots above the shard boundary and apply
	// the same projection identity over the row-stacked matrix.
	w := par.Workers(e.cfg.Workers)
	roots := make([]*linalg.SVDResult, len(e.shards))
	ws := make([]*linalg.Dense, len(e.shards))
	for i, s := range e.shards {
		roots[i] = s.tree.Root()
		ws[i] = s.prox.M.TMulDense(roots[i].U)
	}
	mr, err := core.MergeShardRoots(roots, ws, e.cfg.Dim, w)
	if err != nil {
		// Shapes come straight from the live trees; a mismatch is a
		// programming error, not a runtime condition.
		panic(err)
	}
	return mr.ReconstructionError(ws, e.proximityFrobLocked(), w)
}

// ProximityFrobNorm returns ‖M‖_F of the live proximity matrix, the
// scale against which the Theorem 3.2/3.7 error bounds are stated. It
// takes the update lock.
func (e *Embedder) ProximityFrobNorm() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.proximityFrobLocked()
}

// proximityFrobLocked returns ‖M‖_F over the row-stacked per-shard
// matrices: rows partition M, so ‖M‖²_F = Σ_i ‖M_i‖²_F. Caller holds
// e.mu.
func (e *Embedder) proximityFrobLocked() float64 {
	if len(e.shards) == 1 {
		return e.shards[0].prox.M.FrobNorm()
	}
	sq := 0.0
	for _, s := range e.shards {
		f := s.prox.M.FrobNorm()
		sq += f * f
	}
	return math.Sqrt(sq)
}

// Snapshot returns the currently published immutable snapshot. Safe from
// any goroutine; never nil.
func (e *Embedder) Snapshot() *Snapshot { return e.snap.Load() }

// Version returns the version counter of the current snapshot; it
// increases by one with every published update.
func (e *Embedder) Version() uint64 { return e.Snapshot().Version() }

// Embedding returns the |S|×d subset embedding X = U√Σ of the current
// snapshot as a row-major matrix: row i embeds Subset()[i].
func (e *Embedder) Embedding() [][]float64 { return e.Snapshot().Embedding() }

// RightEmbedding returns the n×d right-factor embedding Y = Ṽ√Σ of the
// current snapshot (row v embeds graph node v); score candidate links
// from subset node s to any node v as dot(X[s], Y[v]).
func (e *Embedder) RightEmbedding() [][]float64 { return e.Snapshot().RightEmbedding() }

// Recommend returns the top-k candidate targets for subset node s from
// the current snapshot; see Snapshot.Recommend.
func (e *Embedder) Recommend(s int32, k int) ([]Recommendation, error) {
	return e.Snapshot().Recommend(s, k)
}

// Stats reports the work done by the last ApplyEvents/Rebuild.
type Stats struct {
	// Level1Rebuilt counts level-1 blocks re-factored from scratch;
	// Level1Updated counts violating blocks served by the incremental
	// update path instead (always 0 unless Config.SVDUpdate is on);
	// Skipped counts blocks served from cache; UpperRebuilt counts merges
	// above level 1.
	Level1Rebuilt, Level1Updated, Skipped, UpperRebuilt int
}

// LastStats returns the factorization work counters of the update that
// published the current snapshot.
func (e *Embedder) LastStats() Stats { return e.Snapshot().Stats() }

// Graph returns a read-only view of the embedded graph that is safe to
// use concurrently with ApplyEvents: every accessor serializes with the
// update path on the embedder's internal mutex, so callers never observe
// a half-applied batch. The live *Graph itself is owned by the update
// path and is no longer handed out — an earlier version of this method
// returned it guarded only by a doc comment, which made every caller a
// latent data race once ingest went concurrent.
//
// Accessors are cheap (a mutex acquisition plus an O(1) or O(degree)
// read) but do contend with updates; for bulk scoring reads use Snapshot,
// which is lock-free. Do not call view accessors from inside a TraceHook:
// hooks run on update goroutines that already hold the lock.
func (e *Embedder) Graph() GraphView { return GraphView{e: e} }

// GraphView is a concurrency-safe, read-only window onto an Embedder's
// live graph. The zero value is not usable; obtain one from
// Embedder.Graph. Methods never panic on out-of-range node ids — they
// report zero degrees, no edges and nil neighbor lists instead, so a
// serving layer can probe arbitrary client-supplied ids safely.
type GraphView struct {
	e *Embedder
}

// NumNodes returns the graph's current node count.
func (v GraphView) NumNodes() int {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	return v.e.g.NumNodes()
}

// NumEdges returns the graph's current edge count.
func (v GraphView) NumEdges() int {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	return v.e.g.NumEdges()
}

// HasEdge reports whether the directed edge (u,w) currently exists.
func (v GraphView) HasEdge(u, w int32) bool {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	return v.e.g.HasEdge(u, w)
}

// OutDeg returns u's current out-degree, or 0 if u is not a node.
func (v GraphView) OutDeg(u int32) int {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	if u < 0 || int(u) >= v.e.g.NumNodes() {
		return 0
	}
	return v.e.g.OutDeg(u)
}

// InDeg returns u's current in-degree, or 0 if u is not a node.
func (v GraphView) InDeg(u int32) int {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	if u < 0 || int(u) >= v.e.g.NumNodes() {
		return 0
	}
	return v.e.g.InDeg(u)
}

// OutNeighbors returns a copy of u's current out-neighbor list (nil if u
// is not a node). The copy is the caller's to keep: unlike the slices the
// graph itself hands out, it is not invalidated by later updates.
func (v GraphView) OutNeighbors(u int32) []int32 {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	if u < 0 || int(u) >= v.e.g.NumNodes() {
		return nil
	}
	return append([]int32(nil), v.e.g.OutNeighbors(u)...)
}

// InNeighbors returns a copy of u's current in-neighbor list (nil if u is
// not a node). Same ownership as OutNeighbors.
func (v GraphView) InNeighbors(u int32) []int32 {
	v.e.mu.Lock()
	defer v.e.mu.Unlock()
	if u < 0 || int(u) >= v.e.g.NumNodes() {
		return nil
	}
	return append([]int32(nil), v.e.g.InNeighbors(u)...)
}
