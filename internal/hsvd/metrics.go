package hsvd

import "github.com/tree-svd/treesvd/internal/obs"

// Process-global work counters for the competitor baseline. The hsvd
// entry points are free functions, so the counters are too; they let the
// Exp. 2 harness report how many exact SVDs the hierarchical baseline
// spent against Tree-SVD's randomized ones.
var level1SVDs, mergeSVDs obs.Counter

// CallStats is a point-in-time view of the package counters.
type CallStats struct {
	// Level1SVDs counts exact truncated SVDs of level-1 column blocks;
	// MergeSVDs counts SVDs of concatenated parents (all levels ≥ 2,
	// final merge included).
	Level1SVDs, MergeSVDs uint64
}

// Stats returns the cumulative SVD counts.
func Stats() CallStats {
	return CallStats{Level1SVDs: level1SVDs.Load(), MergeSVDs: mergeSVDs.Load()}
}
