package linalg

import (
	"fmt"
	"math"
)

// SymEig computes the full eigendecomposition A = V·diag(λ)·Vᵀ of a
// symmetric matrix. Eigenvalues are returned in descending order with
// matching eigenvector columns in V.
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder reduction to tridiagonal form (tred2) followed by the
// implicit-shift QL iteration (tql2), both accumulating the orthogonal
// transform. It is O(n³) with a small constant — an order of magnitude
// faster than the cyclic Jacobi method kept in JacobiSymEig, which tests
// use as an independent cross-check.
func SymEig(a *Dense) (lambda []float64, v *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: SymEig requires a square matrix, got %d×%d", n, a.Cols))
	}
	if n == 0 {
		return nil, NewDense(0, 0)
	}
	// Both stages run on the transposed representation (row i holds what
	// the textbook formulation calls column i) so every inner loop walks a
	// contiguous slice; the input is symmetric, so no initial transpose is
	// needed.
	vt := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(vt, d, e)
	tql2(vt, d, e)
	v = vt.T()
	sortEig(d, v)
	return d, v
}

// tred2 reduces a symmetric matrix to tridiagonal form, overwriting zt
// with the accumulated orthogonal transformation (transposed: row j of zt
// is transform column j), d with the diagonal and e with the subdiagonal
// (e[0] unused). The textbook V[a][b] maps to zt.Row(b)[a], which makes
// every inner loop a contiguous slice walk.
func tred2(zt *Dense, d, e []float64) {
	n := zt.Rows
	copy(d, zt.Row(n-1)) // symmetric input: row n-1 == column n-1
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		for k := 0; k <= l; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[l]
			rowI := zt.Row(i)
			for j := 0; j <= l; j++ {
				d[j] = zt.Row(j)[l]
				zt.Row(j)[i] = 0
				rowI[j] = 0
			}
		} else {
			for k := 0; k <= l; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[l]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[l] = f - g
			for j := 0; j <= l; j++ {
				e[j] = 0
			}
			rowI := zt.Row(i)
			for j := 0; j <= l; j++ {
				f = d[j]
				rowI[j] = f
				rowJ := zt.Row(j)
				g = e[j] + rowJ[j]*f
				for k := j + 1; k <= l; k++ {
					g += rowJ[k] * d[k]
					e[k] += rowJ[k] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j <= l; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j <= l; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j <= l; j++ {
				f = d[j]
				g = e[j]
				rowJ := zt.Row(j)
				for k := j; k <= l; k++ {
					rowJ[k] -= f*e[k] + g*d[k]
				}
				d[j] = rowJ[l]
				rowJ[i] = 0
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		rowI := zt.Row(i)
		rowI[n-1] = rowI[i]
		rowI[i] = 1
		l := i + 1
		rowL := zt.Row(l)
		if d[l] != 0 {
			for k := 0; k < l; k++ {
				d[k] = rowL[k] / d[l]
			}
			for j := 0; j < l; j++ {
				rowJ := zt.Row(j)
				var g float64
				for k := 0; k < l; k++ {
					g += rowL[k] * rowJ[k]
				}
				for k := 0; k < l; k++ {
					rowJ[k] -= g * d[k]
				}
			}
		}
		for k := 0; k < l; k++ {
			rowL[k] = 0
		}
	}
	for j := 0; j < n; j++ {
		rowJ := zt.Row(j)
		d[j] = rowJ[n-1]
		rowJ[n-1] = 0
	}
	zt.Row(n - 1)[n-1] = 1
	e[0] = 0
}

// tql2 diagonalizes the tridiagonal matrix (d, e) with implicit-shift QL
// iterations, rotating the eigenvector matrix alongside. zt holds the
// eigenvector matrix transposed: row i of zt is eigenvector column i. The
// routine is a port of the EISPACK/JAMA tql2, whose shift strategy and
// global deflation test are robust to the clustered and near-zero
// eigenvalues that Gram matrices of nearly low-rank blocks produce.
func tql2(zt *Dense, d, e []float64) {
	n := zt.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	const eps = 2.220446049250313e-16 // 2^-52
	var f, tst1 float64
	for l := 0; l < n; l++ {
		if s := math.Abs(d[l]) + math.Abs(e[l]); s > tst1 {
			tst1 = s
		}
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 1000 {
					panic(fmt.Sprintf("linalg: tql2 failed to converge: l=%d m=%d d=%v e=%v", l, m, d, e))
				}
				// Compute the implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3, c2, s2 = c2, c, s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					ri, ri1 := zt.Row(i), zt.Row(i+1)
					for k := 0; k < n; k++ {
						h = ri1[k]
						ri1[k] = s*ri[k] + c*h
						ri[k] = c*ri[k] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
}

// JacobiSymEig is the cyclic Jacobi eigensolver — slower than SymEig but
// algorithmically independent; tests cross-validate the two.
func JacobiSymEig(a *Dense) (lambda []float64, v *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: JacobiSymEig requires a square matrix, got %d×%d", n, a.Cols))
	}
	w := a.Clone()
	v = Identity(n)
	if n == 0 {
		return nil, v
	}
	total := w.FrobNorm()
	if total == 0 {
		return make([]float64, n), v
	}
	for sweep := 0; sweep < symEigMaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) <= symEigTol*total {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= symEigTol*total/float64(n*n) {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	lambda = make([]float64, n)
	for i := 0; i < n; i++ {
		lambda[i] = w.At(i, i)
	}
	sortEig(lambda, v)
	return lambda, v
}
