package netfault

import (
	"io"
	"net"
	"testing"
	"time"
)

// startEcho serves a one-shot echo on a faulted listener: each
// connection reads one chunk, writes it back, and closes. The echo makes
// both directions observable — a read-side fault corrupts what comes
// back, a write-side fault mangles the reply in flight.
func startEcho(t *testing.T, plan Plan) (string, *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, plan)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				n, err := c.Read(buf)
				if err != nil {
					return
				}
				c.Write(buf[:n])
			}(c)
		}
	}()
	t.Cleanup(func() { inner.Close() })
	return inner.Addr().String(), l
}

// roundTrip sends payload and reads the reply to EOF.
func roundTrip(t *testing.T, addr, payload string) (string, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte(payload)); err != nil {
		return "", err
	}
	data, err := io.ReadAll(c)
	return string(data), err
}

func TestSelectionEveryNAfterSkip(t *testing.T) {
	// SkipFirst 1, EveryN 2: connections 2 and 4 fault, 1/3/5 pass.
	addr, l := startEcho(t, Plan{Mode: CorruptWrite, SkipFirst: 1, EveryN: 2, AfterBytes: 0})
	clean := 0
	for i := 0; i < 5; i++ {
		got, err := roundTrip(t, addr, "payload")
		if err != nil {
			t.Fatalf("conn %d: %v", i+1, err)
		}
		if got == "payload" {
			clean++
		}
	}
	if l.Accepted() != 5 || l.Faulted() != 2 || clean != 3 {
		t.Fatalf("accepted %d, faulted %d, clean %d; want 5/2/3", l.Accepted(), l.Faulted(), clean)
	}
}

func TestReset(t *testing.T) {
	addr, _ := startEcho(t, Plan{Mode: Reset, AfterBytes: 0})
	got, err := roundTrip(t, addr, "0123456789")
	if err == nil {
		t.Fatalf("reset connection returned cleanly with %q", got)
	}
	if got != "" {
		t.Fatalf("reset at byte 0 leaked %q", got)
	}
}

func TestLatencySpike(t *testing.T) {
	const delay = 80 * time.Millisecond
	addr, _ := startEcho(t, Plan{Mode: Latency, Delay: delay})
	start := time.Now()
	got, err := roundTrip(t, addr, "0123456789")
	if err != nil || got != "0123456789" {
		t.Fatalf("latency must not lose data: %q, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("round trip took %v, want at least the %v stall", elapsed, delay)
	}
}

func TestPartialWrite(t *testing.T) {
	addr, _ := startEcho(t, Plan{Mode: PartialWrite, AfterBytes: 4})
	got, err := roundTrip(t, addr, "0123456789")
	if err == nil {
		t.Fatal("partial write must surface a connection error")
	}
	if got != "0123" {
		t.Fatalf("client saw %q, want exactly the 4-byte prefix", got)
	}
}

func TestCorruptWrite(t *testing.T) {
	addr, _ := startEcho(t, Plan{Mode: CorruptWrite, AfterBytes: 2})
	got, err := roundTrip(t, addr, "0123456789")
	if err != nil {
		t.Fatalf("corruption must be silent: %v", err)
	}
	want := []byte("0123456789")
	want[2] ^= 1 << 5
	if got != string(want) {
		t.Fatalf("client saw %q, want %q (bit flipped at offset 2)", got, want)
	}
}

func TestCorruptRead(t *testing.T) {
	// The echo reflects what the server read: the request-side flip
	// comes straight back.
	addr, _ := startEcho(t, Plan{Mode: CorruptRead, AfterBytes: 7})
	got, err := roundTrip(t, addr, "0123456789")
	if err != nil {
		t.Fatalf("corruption must be silent: %v", err)
	}
	want := []byte("0123456789")
	want[7] ^= 1 << 5
	if got != string(want) {
		t.Fatalf("server read %q, want %q (bit flipped at offset 7)", got, want)
	}
}
