package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/wire"
)

// fakeServer counts attempts and serves a scripted sequence of statuses
// before succeeding, to pin down the retry policy without a real server.
func fakeServer(t *testing.T, failures int, failStatus int, handler http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= failures {
			w.WriteHeader(failStatus)
			json.NewEncoder(w).Encode(wire.ErrorDTO{Error: "scripted failure", Kind: wire.KindInternal})
			return
		}
		handler(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

func versionHandler(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(wire.VersionDTO{Version: 42, NumNodes: 10})
}

func TestRetriesOn5xxThenSucceeds(t *testing.T) {
	ts, attempts := fakeServer(t, 2, http.StatusInternalServerError, versionHandler)
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 4*time.Millisecond))
	ver, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ver.Version != 42 || attempts.Load() != 3 {
		t.Fatalf("version=%d attempts=%d, want 42 after exactly 3 attempts", ver.Version, attempts.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	ts, attempts := fakeServer(t, 100, http.StatusServiceUnavailable, versionHandler)
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Version(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want *APIError wrapping 503, got %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", attempts.Load())
	}
}

// A 4xx is a deterministic input error: no retry, and the typed error
// comes back out.
func TestNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wire.ErrorDTO{Error: "bad k", Kind: wire.KindInvalidK, K: -3})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Recommend(context.Background(), 0, -3)
	var ike *treesvd.InvalidKError
	if !errors.As(err, &ike) || ike.K != -3 {
		t.Fatalf("want *InvalidKError{K:-3}, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("4xx retried: %d attempts", attempts.Load())
	}
}

// Writes are never retried — ApplyEvents is not idempotent.
func TestNoRetryOnWrite(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(wire.ErrorDTO{Error: "boom", Kind: wire.KindInternal})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.ApplyEvents(context.Background(), []treesvd.Event{{U: 0, V: 1, Type: treesvd.Insert}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("want *APIError 500, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("write retried: %d attempts", attempts.Load())
	}
}

// TestErrorKindMapping reconstructs the whole typed-error family from
// response bodies, and degrades unknown kinds to *APIError.
func TestErrorKindMapping(t *testing.T) {
	cases := []struct {
		name   string
		status int
		dto    wire.ErrorDTO
		check  func(error) bool
	}{
		{"invalid_k", 400, wire.ErrorDTO{Kind: wire.KindInvalidK, K: 0}, func(err error) bool {
			var e *treesvd.InvalidKError
			return errors.As(err, &e) && e.K == 0
		}},
		{"not_in_subset", 404, wire.ErrorDTO{Kind: wire.KindNotInSubset, Node: 9, Subset: 4}, func(err error) bool {
			var e *treesvd.NotInSubsetError
			return errors.As(err, &e) && e.Node == 9 && e.Subset == 4
		}},
		{"node_range", 400, wire.ErrorDTO{Kind: wire.KindNodeRange, Index: 2, Node: 77, MaxNodes: 50}, func(err error) bool {
			var e *treesvd.NodeRangeError
			return errors.As(err, &e) && e.Index == 2 && e.Node == 77 && e.MaxNodes == 50
		}},
		{"unknown_kind", 418, wire.ErrorDTO{Kind: "teapot", Error: "short and stout"}, func(err error) bool {
			var e *APIError
			return errors.As(err, &e) && e.Status == 418 && e.Kind == "teapot" && e.Message == "short and stout"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				json.NewEncoder(w).Encode(tc.dto)
			}))
			defer ts.Close()
			c := New(ts.URL, WithRetries(0))
			_, err := c.Version(context.Background())
			if !tc.check(err) {
				t.Fatalf("mapping failed: got %v", err)
			}
		})
	}
}

// A non-JSON error body (a proxy's HTML 502 page, say) still surfaces as
// an *APIError rather than a decode failure.
func TestUnparsableErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("<html>bad gateway</html>"))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	_, err := c.Version(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("want *APIError 502, got %v", err)
	}
}

// A backoff that cannot fit inside the caller's deadline is never
// slept: the client fails fast with the last real error instead of
// burning the remaining budget waiting for a retry it cannot make.
func TestDeadlineCutsBackoffShort(t *testing.T) {
	ts, attempts := fakeServer(t, 100, http.StatusInternalServerError, versionHandler)
	c := New(ts.URL, WithRetries(10), WithBackoff(time.Hour, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Version(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("want the last *APIError 500, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v: the 1h backoff was slept instead of skipped", elapsed)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 before the deadline", attempts.Load())
	}
}

// With a deadline, the deadline is the retry budget: attempts continue
// past the configured retry count while backoffs still fit.
func TestDeadlineExtendsAttempts(t *testing.T) {
	ts, attempts := fakeServer(t, 4, http.StatusInternalServerError, versionHandler)
	c := New(ts.URL, WithRetries(1), WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Version != 42 || attempts.Load() != 5 {
		t.Fatalf("version=%d attempts=%d, want 42 after 5 attempts under the deadline budget", ver.Version, attempts.Load())
	}
}

// WithRetries(0) means exactly one attempt regardless of deadline —
// load generators rely on it to observe sheds instead of hiding them.
func TestRetriesZeroSingleAttempt(t *testing.T) {
	ts, attempts := fakeServer(t, 100, http.StatusInternalServerError, versionHandler)
	c := New(ts.URL, WithRetries(0))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Version(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || attempts.Load() != 1 {
		t.Fatalf("err=%v attempts=%d, want one *APIError attempt", err, attempts.Load())
	}
}

// A shed 503 comes back as *treesvd.OverloadError and its Retry-After
// hint floors the backoff before the retry.
func TestOverloadRetryAfterHonored(t *testing.T) {
	const hintMs = 120
	var attempts atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(wire.RetryAfterHeader, "120")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(wire.ErrorDTO{
				Error: "shed", Kind: wire.KindOverloaded, Endpoint: "recommend", RetryAfterMs: hintMs,
			})
			return
		}
		versionHandler(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	ver, err := c.Version(context.Background())
	if err != nil || ver.Version != 42 {
		t.Fatalf("version=%d err=%v, want a clean retry", ver.Version, err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", attempts.Load())
	}
	if got := time.Duration(gap.Load()); got < hintMs*time.Millisecond {
		t.Fatalf("retry after %v, want at least the server's %dms hint", got, hintMs)
	}
}

// The shed error itself is typed when retries run out.
func TestOverloadErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.ErrorDTO{
			Error: "shed", Kind: wire.KindOverloaded, Endpoint: "recommend", RetryAfterMs: 50,
		})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	_, err := c.Version(context.Background())
	var ove *treesvd.OverloadError
	if !errors.As(err, &ove) || ove.Endpoint != "recommend" || ove.RetryAfter != 50*time.Millisecond {
		t.Fatalf("want *OverloadError{recommend, 50ms}, got %v", err)
	}
}

// A degraded 503 is not retried: the server needs an operator, not
// more traffic.
func TestNoRetryOnDegraded(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.ErrorDTO{
			Error: "sealed", Kind: wire.KindDegraded, Reason: "wal append failed",
		})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Version(context.Background())
	var dge *treesvd.DegradedError
	if !errors.As(err, &dge) || dge.Reason != "wal append failed" {
		t.Fatalf("want *DegradedError, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("degraded 503 retried: %d attempts", attempts.Load())
	}
}

// A response that arrives torn (connection cut mid-body) retries like
// any transport failure — the read is idempotent.
func TestRetryOnTornResponse(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Content-Length", "1000")
			w.Write([]byte(`{"version":`)) // then the handler returns: torn body
			return
		}
		versionHandler(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	ver, err := c.Version(context.Background())
	if err != nil || ver.Version != 42 {
		t.Fatalf("version=%d err=%v attempts=%d, want a clean retry", ver.Version, err, attempts.Load())
	}
}

func TestBackoffSchedule(t *testing.T) {
	c := New("http://unused", WithBackoff(50*time.Millisecond, 400*time.Millisecond))
	want := []time.Duration{50, 100, 200, 400, 400, 400}
	for i, w := range want {
		if got := c.backoffFor(i); got != w*time.Millisecond {
			t.Errorf("backoffFor(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Shift overflow saturates at the cap rather than going negative.
	if got := c.backoffFor(62); got != 400*time.Millisecond {
		t.Errorf("backoffFor(62) = %v, want cap", got)
	}
}
