package treesvd

import (
	"fmt"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// SparseMatrix accumulates a rows×cols sparse matrix in triplet form for
// FactorizeMatrix — the paper's "Tree-SVD is not limited to subset
// embedding" use case: fast truncated SVD of any rectangular matrix with
// far fewer rows than columns.
type SparseMatrix struct {
	rows, cols int
	b          *sparse.Builder
}

// NewSparseMatrix creates an empty rows×cols triplet accumulator.
func NewSparseMatrix(rows, cols int) *SparseMatrix {
	return &SparseMatrix{rows: rows, cols: cols, b: sparse.NewBuilder(rows, cols)}
}

// Set records entry (i,j) = v; duplicate coordinates are summed.
func (m *SparseMatrix) Set(i, j int, v float64) { m.b.Add(i, j, v) }

// Dims returns (rows, cols).
func (m *SparseMatrix) Dims() (int, int) { return m.rows, m.cols }

// SVDResult is a truncated singular value decomposition A ≈ U·diag(S)·Vᵀ
// with U rows×rank, S descending, V cols×rank.
type SVDResult struct {
	U [][]float64
	S []float64
	V [][]float64
}

// Rank returns the number of retained singular triplets.
func (r *SVDResult) Rank() int { return len(r.S) }

// FactorizeMatrix computes the top-Dim truncated SVD of a sparse
// rectangular matrix with the static Tree-SVD scheme (Algorithm 3):
// column blocks → sparse randomized SVD per block → hierarchical exact
// merges. For a c×n matrix with c ≪ n it carries the (1+ε)(1+√2)^(q-1)
// Frobenius guarantee of Theorem 3.2 at a fraction of a full randomized
// SVD's cost once n is large. Only Dim, Branch, Levels, Seed and Workers
// of cfg are used.
func FactorizeMatrix(m *SparseMatrix, cfg Config) (*SVDResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: cfg.Workers,
	}
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	csr := m.b.Build()
	if csr.NNZ() == 0 {
		return nil, fmt.Errorf("treesvd: matrix is empty")
	}
	root, err := core.Factorize(csr, tcfg)
	if err != nil {
		return nil, err
	}
	out := &SVDResult{S: append([]float64(nil), root.S...)}
	out.U = make([][]float64, root.U.Rows)
	for i := range out.U {
		out.U[i] = append([]float64(nil), root.U.Row(i)...)
	}
	// Recover the right singular matrix Ṽ = Σ⁻¹·Uᵀ·A (Theorem 3.2) in one
	// sparse pass.
	vt := csr.TMulDenseW(root.U, tcfg.Workers) // cols×rank = Aᵀ·U
	inv := make([]float64, len(root.S))
	for i, s := range root.S {
		if s > 0 {
			inv[i] = 1 / s
		}
	}
	vt.MulDiag(inv)
	out.V = make([][]float64, vt.Rows)
	for i := range out.V {
		out.V[i] = append([]float64(nil), vt.Row(i)...)
	}
	return out, nil
}
