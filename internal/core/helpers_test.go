package core

import "context"

// bgt is the test-wide context; cancellation paths build their own.
var bgt = context.Background()

// mustCore unwraps constructor/factorization results in tests.
func mustCore[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must0t fails the calling test (via panic) on an unexpected error.
func must0t(err error) {
	if err != nil {
		panic(err)
	}
}
