package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tree-svd/treesvd/internal/linalg"
)

func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func randDense(rng *rand.Rand, r, c int) *linalg.Dense {
	m := linalg.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 2, -1)
	b.Add(1, 2, 1) // cancels to zero: must be dropped
	m := b.Build()
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("duplicate sum = %g, want 5", got)
	}
	if m.NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1 (cancelled entry kept?)", m.NNZ())
	}
}

func TestBuilderZeroIgnored(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if m := b.Build(); m.NNZ() != 0 {
		t.Fatalf("explicit zero stored")
	}
}

func TestCSRAtMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randCSR(rng, 12, 9, 0.3)
	d := m.ToDense()
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			if m.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCSRMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 8, 11, 0.4)
	b := randDense(rng, 11, 5)
	got := m.MulDense(b)
	want := linalg.Mul(m.ToDense(), b)
	if d := linalg.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("MulDense diff %g", d)
	}
}

func TestCSRTMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 8, 11, 0.4)
	b := randDense(rng, 8, 4)
	got := m.TMulDense(b)
	want := linalg.Mul(m.ToDense().T(), b)
	if d := linalg.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("TMulDense diff %g", d)
	}
}

func TestCSRDenseLeftMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randCSR(rng, 7, 10, 0.4)
	b := randDense(rng, 3, 7)
	got := m.DenseLeftMul(b)
	want := linalg.Mul(b, m.ToDense())
	if d := linalg.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("DenseLeftMul diff %g", d)
	}
}

func TestCSRSliceCols(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randCSR(rng, 6, 20, 0.3)
	s := m.SliceColsCSR(5, 13)
	want := m.ToDense().SliceCols(5, 13)
	if d := linalg.MaxAbsDiff(s.ToDense(), want); d > 0 {
		t.Fatalf("SliceColsCSR diff %g", d)
	}
}

func TestCSRFrobNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randCSR(rng, 10, 10, 0.5)
	if d := math.Abs(m.FrobNorm() - m.ToDense().FrobNorm()); d > 1e-12 {
		t.Fatalf("FrobNorm diff %g", d)
	}
}

func TestCSRPropertyMulLinear(t *testing.T) {
	// Property: M·(x+y) == M·x + M·y for dense column vectors.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		m := randCSR(rng, r, c, 0.5)
		x := randDense(rng, c, 1)
		y := randDense(rng, c, 1)
		lhs := m.MulDense(linalg.Add(x, y))
		rhs := linalg.Add(m.MulDense(x), m.MulDense(y))
		return linalg.MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSREmptyRows(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(2, 1, 7)
	m := b.Build()
	if m.At(0, 0) != 0 || m.At(2, 1) != 7 {
		t.Fatal("empty-row matrix misbehaves")
	}
	x := linalg.NewDense(4, 1)
	x.Set(1, 0, 1)
	got := m.MulDense(x)
	if got.At(2, 0) != 7 || got.At(0, 0) != 0 {
		t.Fatal("MulDense on empty-row matrix wrong")
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randCSR(rng, 9, 14, 0.3)
	tr := m.Transpose()
	if tr.Rows != 14 || tr.Cols != 9 || tr.NNZ() != m.NNZ() {
		t.Fatalf("transpose shape %dx%d nnz %d", tr.Rows, tr.Cols, tr.NNZ())
	}
	if d := linalg.MaxAbsDiff(tr.ToDense(), m.ToDense().T()); d > 0 {
		t.Fatalf("transpose values differ: %g", d)
	}
	// Column indices sorted within rows (counting sort preserves order).
	for r := 0; r < tr.Rows; r++ {
		for p := tr.RowPtr[r] + 1; p < tr.RowPtr[r+1]; p++ {
			if tr.ColIdx[p-1] >= tr.ColIdx[p] {
				t.Fatalf("transpose row %d unsorted", r)
			}
		}
	}
	// Involution.
	if d := linalg.MaxAbsDiff(tr.Transpose().ToDense(), m.ToDense()); d > 0 {
		t.Fatal("double transpose != original")
	}
}

func TestCSRTransposeEmpty(t *testing.T) {
	m := NewBuilder(3, 5).Build()
	tr := m.Transpose()
	if tr.Rows != 5 || tr.Cols != 3 || tr.NNZ() != 0 {
		t.Fatal("empty transpose wrong")
	}
}
