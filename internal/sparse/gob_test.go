package sparse

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestDynRowGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewDynRow(8, 40, 5)
	for i := 0; i < 200; i++ {
		m.Set(rng.Intn(8), rng.Intn(40), rng.NormFloat64())
	}
	// Rebuild some blocks, then churn more so baselines are non-trivial.
	m.MarkRebuilt(1)
	m.MarkRebuilt(3)
	for i := 0; i < 100; i++ {
		m.Set(rng.Intn(8), rng.Intn(40), rng.NormFloat64())
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	m2 := &DynRow{}
	if err := gob.NewDecoder(&buf).Decode(m2); err != nil {
		t.Fatal(err)
	}
	if m2.Rows() != m.Rows() || m2.Cols() != m.Cols() || m2.NumBlocks() != m.NumBlocks() || m2.NNZ() != m.NNZ() {
		t.Fatal("shape/nnz mismatch after decode")
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.Get(r, c) != m2.Get(r, c) {
				t.Fatalf("entry (%d,%d) differs", r, c)
			}
		}
	}
	for j := 0; j < m.NumBlocks(); j++ {
		if m.BlockFrobNorm(j) != m2.BlockFrobNorm(j) {
			t.Fatalf("block %d frob differs", j)
		}
		if m.DeltaFrobNorm(j) != m2.DeltaFrobNorm(j) {
			t.Fatalf("block %d delta differs", j)
		}
		if m.BlockNNZ(j) != m2.BlockNNZ(j) {
			t.Fatalf("block %d nnz differs", j)
		}
	}
	// Future mutations track identically (baselines restored).
	m.Set(0, 0, 3.5)
	m2.Set(0, 0, 3.5)
	if m.DeltaFrobNorm(0) != m2.DeltaFrobNorm(0) {
		t.Fatal("delta tracking diverges after decode")
	}
}
