package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// churnedDynRow builds a DynRow through a deterministic mix of inserts,
// overwrites, deletions (Set to 0), and per-block rebuild points — the
// update pattern whose incremental frobSq/deltaSq bookkeeping
// AuditRecount exists to cross-check.
func churnedDynRow(t *testing.T, seed int64) *DynRow {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewDynRow(6, 40, 5)
	for i := 0; i < 400; i++ {
		r, c := rng.Intn(6), rng.Intn(40)
		switch rng.Intn(4) {
		case 0:
			m.Set(r, c, 0) // delete (often a no-op)
		default:
			m.Set(r, c, rng.NormFloat64())
		}
		if i%97 == 0 {
			m.MarkRebuilt(rng.Intn(m.NumBlocks()))
		}
	}
	return m
}

func TestAuditRecountClean(t *testing.T) {
	m := churnedDynRow(t, 1)
	if err := m.AuditRecount(); err != nil {
		t.Fatalf("healthy matrix failed audit: %v", err)
	}
}

// TestAuditRecountDetectsCorruption plants one inconsistency at a time in
// the maintained bookkeeping and requires the audit to name it.
func TestAuditRecountDetectsCorruption(t *testing.T) {
	cases := map[string]struct {
		mutate func(*DynRow)
		want   string
	}{
		"frobSq drift": {
			func(m *DynRow) { m.frobSq[1] += 0.5 },
			"frobSq",
		},
		"deltaSq drift": {
			func(m *DynRow) { m.deltaSq[2] -= 0.25 },
			"deltaSq",
		},
		"nnz miscount": {
			func(m *DynRow) { m.nnz[0]++ },
			"nnz",
		},
		"total nnz miscount": {
			func(m *DynRow) { m.totalNNZ-- },
			"total nnz",
		},
		"stored zero": {
			func(m *DynRow) { m.data[3][1][int32(10)] = 0 },
			"stored zero",
		},
		"non-finite entry": {
			func(m *DynRow) {
				for c := range m.data[2][1] {
					m.data[2][1][c] = math.NaN()
					return
				}
			},
			"non-finite",
		},
		"entry outside block range": {
			func(m *DynRow) { m.data[0][1][int32(0)] = 1.5 },
			"stored in block",
		},
		"baseline key outside matrix": {
			func(m *DynRow) { m.base[1][int64(99)<<32|int64(uint32(9))] = 1 },
			"baseline",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			m := churnedDynRow(t, 2)
			tc.mutate(m)
			err := m.AuditRecount()
			if err == nil {
				t.Fatalf("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBaselineBlockCSRReconstructsRebuildState verifies that the baseline
// view really is the block as of its last MarkRebuilt: values written
// after the rebuild must not leak into it, values deleted after the
// rebuild must still appear.
func TestBaselineBlockCSRReconstructsRebuildState(t *testing.T) {
	m := NewDynRow(3, 20, 4) // blocks of width 5
	m.Set(0, 0, 1.0)
	m.Set(1, 2, 2.0)
	m.Set(2, 4, 3.0)
	m.MarkRebuilt(0)
	m.Set(0, 0, 9.0) // overwrite after rebuild
	m.Set(1, 2, 0)   // delete after rebuild
	m.Set(2, 3, 7.0) // insert after rebuild

	base := m.BaselineBlockCSR(0)
	want := map[[2]int]float64{{0, 0}: 1.0, {1, 2}: 2.0, {2, 4}: 3.0}
	got := map[[2]int]float64{}
	for r := 0; r < base.Rows; r++ {
		for i := base.RowPtr[r]; i < base.RowPtr[r+1]; i++ {
			got[[2]int{r, int(base.ColIdx[i])}] = base.Val[i]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("baseline has %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("baseline entry %v = %g, want %g", k, got[k], v)
		}
	}

	// Live view must show the post-rebuild state instead.
	live := m.BlockCSR(0)
	if live.NNZ() != 3 { // (0,0)=9, (2,3)=7, (2,4)=3
		t.Fatalf("live block nnz %d, want 3", live.NNZ())
	}
}
