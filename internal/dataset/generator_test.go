package dataset

import (
	"math"
	"sort"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

func smallProfile() Profile {
	return Profile{Name: "test", Nodes: 500, TargetEdges: 3000,
		Communities: 5, Labeled: true, Snapshots: 6, Homophily: 0.8, Seed: 1}
}

func TestGenerateBasicInvariants(t *testing.T) {
	ds := Generate(smallProfile())
	if err := ds.Stream.Validate(); err != nil {
		t.Fatal(err)
	}
	g := ds.Stream.BuildSnapshot(ds.Stream.NumSnapshots())
	if g.NumEdges() < 3000 {
		t.Fatalf("final edges %d < target 3000", g.NumEdges())
	}
	// Every node has an out-edge (mature-graph assumption).
	for v := int32(0); v < 500; v++ {
		if g.OutDeg(v) == 0 {
			t.Fatalf("node %d has no out-edge", v)
		}
	}
	if len(ds.Labels) != 500 {
		t.Fatalf("labels length %d", len(ds.Labels))
	}
	for _, l := range ds.Labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallProfile())
	b := Generate(smallProfile())
	if len(a.Stream.Events) != len(b.Stream.Events) {
		t.Fatal("event counts differ across runs")
	}
	for i := range a.Stream.Events {
		if a.Stream.Events[i] != b.Stream.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	p := smallProfile()
	p.Seed = 2
	c := Generate(p)
	same := len(a.Stream.Events) == len(c.Stream.Events)
	if same {
		identical := true
		for i := range a.Stream.Events {
			if a.Stream.Events[i] != c.Stream.Events[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds gave identical streams")
		}
	}
}

func TestGenerateSnapshotsMonotone(t *testing.T) {
	ds := Generate(smallProfile())
	if ds.Stream.NumSnapshots() != 6 {
		t.Fatalf("snapshots %d, want 6", ds.Stream.NumSnapshots())
	}
	prevEdges := 0
	for s := 1; s <= 6; s++ {
		g := ds.Stream.BuildSnapshot(s)
		if g.NumEdges() < prevEdges {
			// Deletions could shrink a snapshot, but this profile has none.
			t.Fatalf("snapshot %d has fewer edges (%d) than previous (%d)", s, g.NumEdges(), prevEdges)
		}
		prevEdges = g.NumEdges()
	}
}

func TestGenerateWithDeletions(t *testing.T) {
	p := smallProfile()
	p.DeleteFrac = 0.1
	ds := Generate(p)
	dels := 0
	for _, e := range ds.Stream.Events {
		if e.Type == graph.Delete {
			dels++
		}
	}
	if dels == 0 {
		t.Fatal("no deletions generated despite DeleteFrac=0.1")
	}
	// Replay must succeed and keep min out-degree ≥ 1.
	g := ds.Stream.BuildSnapshot(ds.Stream.NumSnapshots())
	for v := int32(0); int(v) < p.Nodes; v++ {
		if g.OutDeg(v) == 0 {
			t.Fatalf("node %d orphaned by deletions", v)
		}
	}
}

func TestHeavyTailDegrees(t *testing.T) {
	ds := Generate(Profile{Name: "ht", Nodes: 2000, TargetEdges: 12000,
		Communities: 4, Labeled: true, Snapshots: 3, Homophily: 0.7, Seed: 3})
	g := ds.Stream.BuildSnapshot(3)
	degs := make([]int, 2000)
	for v := int32(0); v < 2000; v++ {
		degs[v] = g.InDeg(v) + g.OutDeg(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	mean := float64(2*g.NumEdges()) / 2000
	// Heavy tail: the max degree should be far above the mean.
	if float64(degs[0]) < 5*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %g)", degs[0], mean)
	}
}

func TestHomophilyShapesTopology(t *testing.T) {
	// With high homophily most edges stay within communities.
	p := smallProfile()
	p.Homophily = 0.9
	ds := Generate(p)
	g := ds.Stream.BuildSnapshot(ds.Stream.NumSnapshots())
	within, total := 0, 0
	for u := int32(0); int(u) < p.Nodes; u++ {
		for _, v := range g.OutNeighbors(u) {
			total++
			if ds.Labels[u] == ds.Labels[v] {
				within++
			}
		}
	}
	frac := float64(within) / float64(total)
	if frac < 0.55 {
		t.Fatalf("within-community edge fraction %g too low for homophily 0.9", frac)
	}
	// And with zero homophily it should be much lower.
	p.Homophily = 0
	p.Seed = 9
	ds0 := Generate(p)
	g0 := ds0.Stream.BuildSnapshot(ds0.Stream.NumSnapshots())
	within0, total0 := 0, 0
	for u := int32(0); int(u) < p.Nodes; u++ {
		for _, v := range g0.OutNeighbors(u) {
			total0++
			if ds0.Labels[u] == ds0.Labels[v] {
				within0++
			}
		}
	}
	if f0 := float64(within0) / float64(total0); f0 >= frac {
		t.Fatalf("homophily had no topological effect: %g vs %g", f0, frac)
	}
}

func TestSampleSubset(t *testing.T) {
	ds := Generate(smallProfile())
	s := ds.SampleSubset(1, 50, 7)
	if len(s) != 50 {
		t.Fatalf("subset size %d", len(s))
	}
	g1 := ds.Stream.BuildSnapshot(1)
	seen := map[int32]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate subset node")
		}
		seen[v] = true
		if g1.OutDeg(v) == 0 {
			t.Fatalf("subset node %d inactive at snapshot 1", v)
		}
	}
	// Deterministic.
	s2 := ds.SampleSubset(1, 50, 7)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("subset sampling not deterministic")
		}
	}
}

func TestLabelsFor(t *testing.T) {
	ds := Generate(smallProfile())
	s := ds.SampleSubset(1, 10, 1)
	labels := ds.LabelsFor(s)
	for i, v := range s {
		if labels[i] != ds.Labels[v] {
			t.Fatal("LabelsFor mismatch")
		}
	}
}

func TestLabelsForPanicsUnlabeled(t *testing.T) {
	p := smallProfile()
	p.Labeled = false
	ds := Generate(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.LabelsFor([]int32{0})
}

func TestProfilesResolve(t *testing.T) {
	for _, p := range AllProfiles() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ByName(%s) failed: %v", p.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestProfileRatiosMatchPaper(t *testing.T) {
	// The scaled profiles must keep the paper's edge/node ratios within a
	// reasonable band (Table 3): e.g. Wikipedia is dense (~28.7), YouTube
	// sparse (~2.9).
	paper := map[string]float64{
		"Patent": 14.0 / 2.7, "Mag-authors": 27.7 / 5.8, "Wikipedia": 178.0 / 6.2,
		"YouTube": 9.4 / 3.2, "Flickr": 33.1 / 2.3, "Twitter": 1500.0 / 41.6,
	}
	for _, p := range AllProfiles() {
		want := paper[p.Name]
		got := float64(p.TargetEdges) / float64(p.Nodes)
		if got < want*0.5 || got > want*2 {
			t.Fatalf("%s: edge/node ratio %g, paper %g", p.Name, got, want)
		}
	}
}

func TestScaleProfile(t *testing.T) {
	p := ScaleProfile(Patent(), 0.1)
	if p.Nodes != 900 {
		t.Fatalf("scaled nodes %d", p.Nodes)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tiny scale clamps to a generatable floor.
	tiny := ScaleProfile(Patent(), 1e-6)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Nodes: 1, TargetEdges: 10, Communities: 2, Snapshots: 1},
		{Nodes: 10, TargetEdges: 5, Communities: 2, Snapshots: 1},
		{Nodes: 10, TargetEdges: 40, Communities: 0, Snapshots: 1},
		{Nodes: 10, TargetEdges: 40, Communities: 2, Snapshots: 0},
		{Nodes: 10, TargetEdges: 40, Communities: 2, Snapshots: 1, Homophily: 2},
		{Nodes: 10, TargetEdges: 40, Communities: 2, Snapshots: 1, DeleteFrac: 0.6},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("bad profile %d accepted", i)
		}
	}
}

func TestEventCountsRoughlyBalanced(t *testing.T) {
	ds := Generate(smallProfile())
	tau := ds.Stream.NumSnapshots()
	per := float64(len(ds.Stream.Events)) / float64(tau)
	for s := 1; s <= tau; s++ {
		got := float64(len(ds.Stream.SnapshotEvents(s)))
		if math.Abs(got-per) > per*0.5+2 {
			t.Fatalf("snapshot %d has %g events, mean %g", s, got, per)
		}
	}
}

func TestSampleSubsetFromCommunities(t *testing.T) {
	ds := Generate(smallProfile())
	s := ds.SampleSubsetFromCommunities(1, 40, 3, 0, 1)
	if len(s) == 0 {
		t.Fatal("empty coherent subset")
	}
	for _, v := range s {
		if l := ds.Labels[v]; l != 0 && l != 1 {
			t.Fatalf("node %d has label %d outside requested communities", v, l)
		}
	}
	// Deterministic.
	s2 := ds.SampleSubsetFromCommunities(1, 40, 3, 0, 1)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("coherent sampling not deterministic")
		}
	}
}
