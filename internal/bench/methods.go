package bench

import (
	"context"
	"math"
	"time"

	"github.com/tree-svd/treesvd/internal/baselines"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// linalgDense shortens signatures inside the harness.
type linalgDense = linalg.Dense

// bg is the harness-wide context: experiments always run to completion.
var bg = context.Background()

// must unwraps (v, err) results inside the harness — an experiment cannot
// proceed past a failed pipeline stage, so errors abort the run.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must0 is must for error-only results.
func must0(err error) {
	if err != nil {
		panic(err)
	}
}

// Options configure a harness run. Zero value is unusable; use
// DefaultOptions (full experiment sizes) or QuickOptions (smoke sizes for
// testing.B and CI).
type Options struct {
	// SubsetSize is |S|.
	SubsetSize int
	// Dim is the embedding dimension d.
	Dim int
	// Alpha and RMax configure PPR for the subset methods.
	Alpha, RMax float64
	// GlobalRMax is the coarser push threshold Global-STRAP can afford
	// when covering all n sources.
	GlobalRMax float64
	// TrainRatio for node classification (Exp. 1/2 use 0.5).
	TrainRatio float64
	// Scale shrinks dataset profiles (1 = full harness size).
	Scale float64
	// Seed drives subset sampling, splits and sketches.
	Seed int64
	// Workers parallelizes PPR and factorization work (0/1 = sequential,
	// the default so timings reflect single-core algorithmic cost).
	Workers int
}

// DefaultOptions mirror the paper's setup scaled per DESIGN.md §4:
// |S|=300 (paper 3000), d=32 (paper 128), b=64, q=3, k=8, δ=0.65.
func DefaultOptions() Options {
	return Options{SubsetSize: 300, Dim: 32, Alpha: 0.15, RMax: 1e-4,
		GlobalRMax: 3e-2, TrainRatio: 0.5, Scale: 1, Seed: 1}
}

// QuickOptions shrink everything for smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.SubsetSize = 80
	o.Dim = 16
	o.Scale = 0.15
	return o
}

func (o Options) params() ppr.Params {
	return ppr.Params{Alpha: o.Alpha, RMax: o.RMax, Workers: o.Workers}
}

func (o Options) treeConfig() core.Config {
	cfg := core.DefaultConfig(o.Dim)
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	return cfg
}

// load generates a dataset profile at the harness scale.
func (o Options) load(p dataset.Profile) *dataset.Dataset {
	if o.Scale != 1 {
		p = dataset.ScaleProfile(p, o.Scale)
	}
	return dataset.Generate(p)
}

// embedResult is one method's output on one graph state.
type embedResult struct {
	// Left is the |S|×d subset embedding.
	Left *linalg.Dense
	// Right is the n×d right-factor embedding (nil for same-space
	// methods like RandNE and DynPPE).
	Right *linalg.Dense
	// Elapsed covers proximity construction + factorization.
	Elapsed time.Duration
}

// buildProximity runs the shared PPR pipeline (forward + reverse push,
// log transform) used by Subset-STRAP and Tree-SVD.
func (o Options) buildProximity(g *graph.Graph, s []int32, maxNodes int) *ppr.Proximity {
	sub := must(ppr.NewSubset(g, s, o.params()))
	return ppr.NewProximity(sub, maxNodes, o.treeConfig().Blocks())
}

// runTreeSVDS is Tree-SVD-S: full pipeline from the graph.
func (o Options) runTreeSVDS(g *graph.Graph, s []int32, maxNodes int, needRight bool) embedResult {
	t0 := time.Now()
	prox := o.buildProximity(g, s, maxNodes)
	tree := must(core.NewTree(prox.M, o.treeConfig()))
	must0(tree.Build(bg))
	res := embedResult{Left: tree.Embedding(), Elapsed: time.Since(t0)}
	if needRight {
		res.Right = tree.RightEmbedding()
	}
	return res
}

// runSubsetSTRAP re-factorizes the full proximity matrix from scratch.
func (o Options) runSubsetSTRAP(g *graph.Graph, s []int32, maxNodes int) embedResult {
	t0 := time.Now()
	st := must(baselines.NewSubsetSTRAP(g, s, o.params(), maxNodes, o.Dim, o.Seed))
	r := must(st.Factorize())
	return embedResult{Left: r.Left, Right: r.Right, Elapsed: time.Since(t0)}
}

// runGlobalSTRAP embeds every node with a coarser budget and extracts S.
func (o Options) runGlobalSTRAP(g *graph.Graph, s []int32) embedResult {
	t0 := time.Now()
	gs := baselines.NewGlobalSTRAP(g, ppr.Params{Alpha: o.Alpha, RMax: o.GlobalRMax}, o.Dim, o.Seed)
	r := must(gs.Factorize())
	return embedResult{
		Left:    baselines.SubsetRows(r.Left, s),
		Right:   r.Right,
		Elapsed: time.Since(t0),
	}
}

// runDynPPE builds the hashing-based embedding from scratch.
func (o Options) runDynPPE(g *graph.Graph, s []int32) (*baselines.DynPPE, embedResult) {
	t0 := time.Now()
	// DynPPE tolerates (and the paper gives it) a finer r_max since it
	// skips the SVD; we keep the shared r_max for apples-to-apples PPR.
	d := must(baselines.NewDynPPE(g, s, o.params(), o.Dim, o.Seed))
	return d, embedResult{Left: d.Embedding(), Elapsed: time.Since(t0)}
}

// runFREDE sketches the forward-PPR rows. Unlike the STRAP-family methods
// FREDE's original formulation factorizes the plain PPR matrix — no
// transpose-proximity (reverse-push) component — which is one of the
// reasons the paper finds it behind the MF methods.
func (o Options) runFREDE(g *graph.Graph, s []int32, maxNodes int) embedResult {
	t0 := time.Now()
	sub := must(ppr.NewSubsetDirs(g, s, o.params(), true, false))
	b := sparse.NewBuilder(len(s), maxNodes)
	for i := range s {
		for v, pv := range sub.Fwd[i].P {
			if arg := pv / o.RMax; arg > 1 {
				b.Add(i, int(v), math.Log(arg))
			}
		}
	}
	r := baselines.FREDE(b.Build(), o.Dim)
	return embedResult{Left: r.Left, Right: r.Right, Elapsed: time.Since(t0)}
}

// runRandNE projects the adjacency; the same space serves both LP sides.
func (o Options) runRandNE(g *graph.Graph, s []int32) embedResult {
	t0 := time.Now()
	emb := baselines.RandNE(g, baselines.DefaultRandNEConfig(o.Dim, o.Seed))
	return embedResult{Left: baselines.SubsetRows(emb, s), Right: emb, Elapsed: time.Since(t0)}
}
