package bench

import (
	"fmt"
	"time"

	"github.com/tree-svd/treesvd/internal/check"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// RunChurnStress drives the dynamic pipeline through the correctness
// harness's adversarial churn streams — the same dataset.GenerateChurn
// profiles the differential fuzzer uses, scaled up — with the
// internal/check invariant auditors running after every batch, exactly
// what Config.SelfCheck wires into the facade. It reports the cost of
// the audited dynamic path (AvgUpdate includes the audits) next to the
// final divergence from a fresh rebuild.
func RunChurnStress(o Options) *Table {
	t := &Table{
		Title:  "Churn stress: audited dynamic path on adversarial event streams",
		Header: []string{"Profile", "Events", "AvgUpdate", "RelErr", "RelErrFresh"},
	}
	scale := func(n int) int { return max(8, int(float64(n)*o.Scale)) }
	profiles := []dataset.ChurnProfile{
		{
			Nodes: scale(600), MaxNodes: scale(600) + 40, Degree: 4,
			Batches: 8, BatchSize: scale(200),
			SelfLoopFrac: 0.15, DeleteFrac: 0.2, DupFrac: 0.1, MissFrac: 0.1, GrowFrac: 0.05,
			Seed: o.Seed,
		},
		{
			Nodes: scale(600), MaxNodes: scale(600), Degree: 4,
			Batches: 8, BatchSize: scale(120),
			SelfLoopFrac: 0.3, DeleteFrac: 0.3, DupFrac: 0.15, MissFrac: 0.15,
			BigBatch: 4, BigBatchSize: scale(2000),
			Seed: o.Seed + 1,
		},
	}
	for i, p := range profiles {
		subset := make([]int32, 0, min(o.SubsetSize, p.Nodes/2))
		for v := int32(0); len(subset) < cap(subset); v += 2 {
			subset = append(subset, v)
		}
		p.Protect = subset
		initial, batches := dataset.GenerateChurn(p)

		cfg := o.treeConfig()
		sub := must(ppr.NewSubset(initial.Clone(), subset, o.params()))
		prox := ppr.NewProximity(sub, p.MaxNodes, cfg.Blocks())
		tree := must(core.NewTree(prox.M, cfg))
		must0(tree.Build(bg))

		var events int
		var dt time.Duration
		for _, b := range batches {
			events += len(b)
			t0 := time.Now()
			if sub.RebuildThreshold(len(b)) {
				sub.Engine.G.ApplyAll(b)
				must0(sub.Rebuild(bg))
				prox.RefreshAll()
				must0(tree.Build(bg))
			} else {
				must0(prox.ApplyEvents(bg, b))
				must(tree.Update(bg))
			}
			// The Config.SelfCheck auditor set, timed as part of the update.
			must0(check.PPRSubset(sub))
			must0(check.DynRow(prox.M))
			must0(check.Tree(tree))
			dt += time.Since(t0)
			initial.ApplyAll(b)
		}

		freshSub := must(ppr.NewSubset(initial, subset, o.params()))
		freshProx := ppr.NewProximity(freshSub, p.MaxNodes, cfg.Blocks())
		freshTree := must(core.NewTree(freshProx.M, cfg))
		must0(freshTree.Build(bg))

		relErr := tree.ReconstructionError() / prox.M.FrobNorm()
		relFresh := freshTree.ReconstructionError() / freshProx.M.FrobNorm()
		t.AddRow(fmt.Sprintf("churn-%d", i+1), fmt.Sprint(events),
			dur(dt/time.Duration(len(batches))),
			fmt.Sprintf("%.4f", relErr), fmt.Sprintf("%.4f", relFresh))
	}
	return t
}
