// Package client is the typed Go SDK for the treesvd serving layer
// (package server): Recommend, Embedding, RightEmbedding, Version and
// streaming ApplyEvents over HTTP, with context plumbing, per-attempt
// timeouts, retries with exponential backoff for idempotent reads, and
// typed error mapping — a 404 for a non-subset source comes back as the
// same *treesvd.NotInSubsetError the in-process facade returns, so code
// migrating from embedding the library to calling the service keeps its
// errors.As branches.
//
// Reads default to JSON and switch to the compact binary frame codec
// with WithBinary(true); ingest always sends binary frames (one frame
// per batch) because that is the only streaming form. Writes are never
// retried by the SDK — ApplyEvents is not idempotent; callers own
// replay decisions (or use the durable layer's WAL on the server side).
//
// Retries respect the caller's context deadline as a budget: the SDK
// never sleeps a backoff past it, honors the server's Retry-After hint
// when admission control sheds a request (503, *treesvd.OverloadError),
// and does not retry a degraded server (503, *treesvd.DegradedError) —
// that one needs an operator, not more traffic. See Client.get's policy
// comment for the full contract.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/wire"
)

// APIError is a server response the SDK could not map to one of the
// facade's typed errors: transport-level failures excluded, it carries
// the HTTP status, the server's error kind, and its message.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Kind is the machine-readable error kind from the response body
	// ("bad_request", "internal", ...), empty if the body was unreadable.
	Kind string
	// Message is the server's error string.
	Message string
}

// Error formats the status, kind and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("treesvd client: HTTP %d (%s): %s", e.Status, e.Kind, e.Message)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (pooling,
// proxies, TLS). The default client has a 30s overall timeout.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times an idempotent read is retried after a
// transport error or a 5xx (default 2; 0 disables — exactly one attempt
// always). When the call's context carries a deadline and retries are
// enabled, the deadline replaces the count as the budget: attempts
// continue while their backoffs fit before it. Writes are never
// retried.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and cap of the exponential retry backoff
// (defaults 50ms and 1s): attempt i sleeps min(base<<i, max).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = base, max }
}

// WithBinary switches bulk reads (Recommend, Embedding, RightEmbedding)
// to the compact binary frame codec.
func WithBinary(on bool) Option { return func(c *Client) { c.binary = on } }

// Client talks to one treesvd server. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	binary     bool
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{Timeout: 30 * time.Second},
		retries:    2,
		backoff:    50 * time.Millisecond,
		maxBackoff: time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Version mirrors the server's GET /v1/version response.
type Version struct {
	Version    uint64
	NumNodes   int
	NumEdges   int
	SubsetSize int
	Shards     int
}

// Recommendations is one Recommend result: the ranked candidates and the
// snapshot version they were scored at.
type Recommendations struct {
	Version uint64
	Source  int32
	Recs    []treesvd.Recommendation
}

// Matrix is one embedding read: row-major rows frozen at Version, with
// Nodes naming the graph node each row embeds.
type Matrix struct {
	Version uint64
	Nodes   []int32
	Rows    [][]float64
}

// ApplyResult reports one ingest call: batches/events accepted, level-1
// blocks re-factored, and the snapshot version after the last batch.
type ApplyResult struct {
	Batches int
	Events  int
	Rebuilt int
	Version uint64
}

// Version fetches the current snapshot version and graph shape.
func (c *Client) Version(ctx context.Context) (Version, error) {
	var dto wire.VersionDTO
	if err := c.getJSON(ctx, "/v1/version", &dto); err != nil {
		return Version{}, err
	}
	return Version{
		Version:    dto.Version,
		NumNodes:   dto.NumNodes,
		NumEdges:   dto.NumEdges,
		SubsetSize: dto.SubsetSize,
		Shards:     dto.Shards,
	}, nil
}

// Recommend fetches the top-k candidates for subset node source. The
// facade's k contract crosses the wire: k <= 0 returns a
// *treesvd.InvalidKError, a non-subset source a
// *treesvd.NotInSubsetError, and an oversized k truncates.
func (c *Client) Recommend(ctx context.Context, source int32, k int) (Recommendations, error) {
	path := "/v1/recommend?source=" + strconv.Itoa(int(source)) + "&k=" + strconv.Itoa(k)
	if c.binary {
		payload, err := c.getFrame(ctx, path)
		if err != nil {
			return Recommendations{}, err
		}
		version, src, wrecs, err := wire.DecodeRecs(payload)
		if err != nil {
			return Recommendations{}, err
		}
		out := Recommendations{Version: version, Source: src, Recs: make([]treesvd.Recommendation, len(wrecs))}
		for i, rc := range wrecs {
			out.Recs[i] = treesvd.Recommendation{Node: rc.Node, Score: rc.Score}
		}
		return out, nil
	}
	var dto wire.RecommendDTO
	if err := c.getJSON(ctx, path, &dto); err != nil {
		return Recommendations{}, err
	}
	out := Recommendations{Version: dto.Version, Source: dto.Source, Recs: make([]treesvd.Recommendation, len(dto.Recommendations))}
	for i, rc := range dto.Recommendations {
		out.Recs[i] = treesvd.Recommendation{Node: rc.Node, Score: rc.Score}
	}
	return out, nil
}

// Embedding fetches the whole |S|×d subset embedding.
func (c *Client) Embedding(ctx context.Context) (Matrix, error) {
	return c.matrix(ctx, "/v1/embedding")
}

// EmbeddingRow fetches one subset node's embedding row; a non-subset
// node returns a *treesvd.NotInSubsetError.
func (c *Client) EmbeddingRow(ctx context.Context, node int32) (Matrix, error) {
	return c.matrix(ctx, "/v1/embedding?node="+strconv.Itoa(int(node)))
}

// RightEmbedding fetches the whole n×d right embedding (n = the node
// count of the served snapshot). Consider WithBinary for this one: the
// JSON form of a large Y is several times the frame size.
func (c *Client) RightEmbedding(ctx context.Context) (Matrix, error) {
	return c.matrix(ctx, "/v1/rightembedding")
}

// RightEmbeddingRow fetches one node's right-embedding row; a node the
// served snapshot has not reached returns a *treesvd.NodeRangeError.
func (c *Client) RightEmbeddingRow(ctx context.Context, node int32) (Matrix, error) {
	return c.matrix(ctx, "/v1/rightembedding?node="+strconv.Itoa(int(node)))
}

// matrix fetches one embedding endpoint in the negotiated codec.
func (c *Client) matrix(ctx context.Context, path string) (Matrix, error) {
	if c.binary {
		payload, err := c.getFrame(ctx, path)
		if err != nil {
			return Matrix{}, err
		}
		version, rows, err := wire.DecodeMatrix(payload)
		if err != nil {
			return Matrix{}, err
		}
		return Matrix{Version: version, Rows: rows}, nil
	}
	var dto wire.MatrixDTO
	if err := c.getJSON(ctx, path, &dto); err != nil {
		return Matrix{}, err
	}
	return Matrix{Version: dto.Version, Nodes: dto.Nodes, Rows: dto.Rows}, nil
}

// ApplyEvents sends one event batch. It is not retried (ingest is not
// idempotent); an event outside the server embedder's capacity returns a
// *treesvd.NodeRangeError with nothing applied, the same all-or-nothing
// batch contract the facade gives in process.
func (c *Client) ApplyEvents(ctx context.Context, events []treesvd.Event) (ApplyResult, error) {
	return c.ApplyEventBatches(ctx, [][]treesvd.Event{events})
}

// ApplyEventBatches streams several batches in one request — one binary
// frame per batch, applied in order as they arrive. On error, batches
// before the failing one stay applied (the same prefix semantics as WAL
// replay); the returned error is typed.
func (c *Client) ApplyEventBatches(ctx context.Context, batches [][]treesvd.Event) (ApplyResult, error) {
	var body bytes.Buffer
	for _, b := range batches {
		if err := wire.WriteFrame(&body, wire.EncodeEvents(b)); err != nil {
			return ApplyResult{}, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/events", &body)
	if err != nil {
		return ApplyResult{}, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	if deadline, ok := ctx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(wire.TimeoutHeader, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return ApplyResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ApplyResult{}, decodeError(resp)
	}
	payload, err := wire.ReadFrame(resp.Body)
	if err != nil {
		return ApplyResult{}, err
	}
	res, err := wire.DecodeApplyResult(payload)
	if err != nil {
		return ApplyResult{}, err
	}
	return ApplyResult{Batches: res.Batches, Events: res.Events, Rebuilt: res.Rebuilt, Version: res.Version}, nil
}

// getJSON GETs path and decodes a JSON response, with read retries.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	return c.get(ctx, path, "", func(body io.Reader) error {
		return json.NewDecoder(body).Decode(out)
	})
}

// getFrame GETs path and reads one binary frame, with read retries.
func (c *Client) getFrame(ctx context.Context, path string) ([]byte, error) {
	var payload []byte
	err := c.get(ctx, path, wire.ContentType, func(body io.Reader) error {
		var err error
		payload, err = wire.ReadFrame(body)
		return err
	})
	return payload, err
}

// get runs one idempotent read with the retry/backoff policy.
//
// What retries: transport errors, 5xx responses, and torn or corrupt
// payloads (the read is idempotent, so re-fetching a response the
// network mangled is always safe). What never retries: 4xx responses
// (deterministic input errors, returned typed) and a 503 carrying a
// *treesvd.DegradedError — the server needs operator action, more
// traffic is noise.
//
// How many times: without a context deadline, up to c.retries retries
// as configured. With a deadline, the deadline is the budget — attempts
// continue while it lasts, each backoff sleep is taken only if it fits,
// and the loop fails fast with the last real error the moment the next
// wait would cross the deadline; it never burns the caller's remaining
// budget sleeping. A shed response's Retry-After hint floors the
// backoff either way. The remaining budget also rides each request as
// X-Timeout-Ms so the server abandons work the caller gave up on.
func (c *Client) get(ctx context.Context, path, accept string, decode func(io.Reader) error) error {
	var lastErr error
	deadline, hasDeadline := ctx.Deadline()
	attempts := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if c.retries <= 0 {
				break
			}
			if !hasDeadline && attempt > c.retries {
				break
			}
			wait := c.backoffFor(attempt - 1)
			var ove *treesvd.OverloadError
			if errors.As(lastErr, &ove) && ove.RetryAfter > wait {
				wait = ove.RetryAfter // the server's shed hint floors the backoff
			}
			if hasDeadline && time.Now().Add(wait).After(deadline) {
				break // the wait would cross the deadline: fail fast instead
			}
			if err := sleepCtx(ctx, wait); err != nil {
				break // canceled mid-backoff
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if hasDeadline {
			if ms := time.Until(deadline).Milliseconds(); ms > 0 {
				req.Header.Set(wire.TimeoutHeader, strconv.FormatInt(ms, 10))
			}
		}
		attempts++
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil && attempts == 1 {
				return ctx.Err() // never got a real answer to report
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			err := decodeError(resp)
			resp.Body.Close()
			var dge *treesvd.DegradedError
			if errors.As(err, &dge) {
				return err
			}
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			err := decodeError(resp)
			resp.Body.Close()
			return err
		}
		err = decode(resp.Body)
		resp.Body.Close()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("treesvd client: %d attempts failed: %w", attempts, lastErr)
}

// backoffFor returns the sleep before retry i (exponential, capped).
func (c *Client) backoffFor(i int) time.Duration {
	d := c.backoff << i
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return d
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeError maps a non-2xx response to the facade's typed error family
// via the body's machine-readable kind (see internal/wire.ErrorDTO),
// falling back to *APIError for unknown kinds or unreadable bodies.
func decodeError(resp *http.Response) error {
	var dto wire.ErrorDTO
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(data, &dto); err != nil {
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	switch dto.Kind {
	case wire.KindInvalidK:
		return &treesvd.InvalidKError{K: dto.K}
	case wire.KindNotInSubset:
		return &treesvd.NotInSubsetError{Node: dto.Node, Subset: dto.Subset}
	case wire.KindNodeRange:
		return &treesvd.NodeRangeError{Index: dto.Index, Node: dto.Node, MaxNodes: dto.MaxNodes}
	case wire.KindOverloaded:
		ra := time.Duration(dto.RetryAfterMs) * time.Millisecond
		if ra == 0 {
			ra = retryAfterHint(resp)
		}
		return &treesvd.OverloadError{Endpoint: dto.Endpoint, RetryAfter: ra}
	case wire.KindDegraded:
		return &treesvd.DegradedError{Reason: dto.Reason}
	}
	return &APIError{Status: resp.StatusCode, Kind: dto.Kind, Message: dto.Error}
}

// retryAfterHint reads the server's backoff hint off the response
// headers: the sub-second X-Retry-After-Ms when present, else the
// standard whole-second Retry-After. Zero when neither parses.
func retryAfterHint(resp *http.Response) time.Duration {
	if raw := resp.Header.Get(wire.RetryAfterHeader); raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if raw := resp.Header.Get("Retry-After"); raw != "" {
		if s, err := strconv.ParseInt(raw, 10, 64); err == nil && s > 0 {
			return time.Duration(s) * time.Second
		}
	}
	return 0
}
