// Command treesvd embeds a node subset of a dynamic graph given as an
// event stream (the format of cmd/datagen / graph.WriteEvents) and writes
// the embedding per snapshot. It demonstrates the dynamic pipeline: the
// first snapshot is a full build, every further snapshot an incremental
// lazy update.
//
// Usage:
//
//	treesvd -events patent.events -subset 300 -dim 32 -out emb
//
// writes emb.snapshot<t>.tsv with one "node v_1 … v_d" row per subset
// node, and prints per-snapshot maintenance statistics.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/graph"
)

func main() {
	var (
		events     = flag.String("events", "", "event-stream file (required)")
		subsetSize = flag.Int("subset", 100, "subset size |S| (sampled from snapshot 1)")
		dim        = flag.Int("dim", 32, "embedding dimension d")
		rmax       = flag.Float64("rmax", 1e-4, "Forward-Push threshold")
		alpha      = flag.Float64("alpha", 0.15, "PPR decay factor")
		delta      = flag.Float64("delta", 0.65, "lazy-update threshold δ")
		seed       = flag.Int64("seed", 1, "subset sampling seed")
		out        = flag.String("out", "", "output prefix (omit to skip writing embeddings)")
		saveTo     = flag.String("save", "", "write the final maintenance state to this file")
		loadFrom   = flag.String("load", "", "resume from a state file written by -save (skips the initial build)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = sequential)")
	)
	flag.Parse()
	if *events == "" {
		fmt.Fprintln(os.Stderr, "treesvd: -events is required")
		os.Exit(2)
	}
	f, err := os.Open(*events)
	if err != nil {
		fail(err)
	}
	stream, err := graph.ReadEvents(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}
	if stream.NumSnapshots() == 0 {
		fail(fmt.Errorf("stream has no snapshots"))
	}

	var emb *treesvd.Embedder
	var subset []int32
	if *loadFrom != "" {
		emb, err = treesvd.LoadFile(*loadFrom)
		if err != nil {
			fail(err)
		}
		subset = emb.Subset()
		fmt.Printf("resumed state: %d nodes, %d edges, |S|=%d\n",
			emb.Graph().NumNodes(), emb.Graph().NumEdges(), len(subset))
	} else {
		g := stream.BuildSnapshot(1)
		subset = sampleSubset(g, *subsetSize, *seed)
		fmt.Printf("graph: %d nodes, %d edges at snapshot 1; |S|=%d\n", g.NumNodes(), g.NumEdges(), len(subset))

		cfg := treesvd.Defaults()
		cfg.Dim = *dim
		cfg.RMax = *rmax
		cfg.Alpha = *alpha
		cfg.Delta = *delta
		cfg.MaxNodes = stream.NumNodes
		cfg.Workers = *workers

		t0 := time.Now()
		var err error
		emb, err = treesvd.New(g, subset, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("snapshot 1: full build in %v\n", time.Since(t0).Round(time.Millisecond))
		writeSnapshot(*out, 1, subset, emb.Embedding())
	}

	for t := 2; t <= stream.NumSnapshots(); t++ {
		batch := stream.SnapshotEvents(t)
		t0 := time.Now()
		rebuilt, err := emb.ApplyEvents(context.Background(), batch)
		if err != nil {
			fail(err)
		}
		st := emb.LastStats()
		fmt.Printf("snapshot %d: %d events, update in %v (blocks rebuilt %d, cached %d)\n",
			t, len(batch), time.Since(t0).Round(time.Millisecond), rebuilt, st.Skipped)
		writeSnapshot(*out, t, subset, emb.Embedding())
	}
	if *saveTo != "" {
		// SaveFile publishes atomically: a crash mid-save leaves any
		// previous state file intact instead of a torn one.
		if err := emb.SaveFile(*saveTo); err != nil {
			fail(err)
		}
		fmt.Printf("state saved to %s\n", *saveTo)
	}
}

// sampleSubset picks nodes with out-edges, deterministically.
func sampleSubset(g *treesvd.Graph, size int, seed int64) []int32 {
	var candidates []int32
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		if g.OutDeg(v) > 0 {
			candidates = append(candidates, v)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(a, b int) { candidates[a], candidates[b] = candidates[b], candidates[a] })
	if size > len(candidates) {
		size = len(candidates)
	}
	return candidates[:size]
}

func writeSnapshot(prefix string, t int, subset []int32, x [][]float64) {
	if prefix == "" {
		return
	}
	path := fmt.Sprintf("%s.snapshot%d.tsv", prefix, t)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, v := range subset {
		fmt.Fprintf(w, "%d", v)
		for _, x := range x[i] {
			fmt.Fprintf(w, "\t%.6g", x)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "treesvd:", err)
	os.Exit(1)
}
