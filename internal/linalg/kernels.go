package linalg

import "github.com/tree-svd/treesvd/internal/par"

// This file holds the matrix-product kernels of the package, in two
// flavors per operation: the historical serial entry point (Mul, MulT,
// TMul, Gram, GramT) and a worker-budgeted variant with a W suffix. All
// variants share one cache-blocked implementation; the serial names are
// just workers=1 calls, so there is a single code path to verify.
//
// Design:
//
//   - Row-panel parallelism. Every kernel partitions its *output* rows
//     into contiguous panels via par.ForChunks, so workers never write
//     the same cache line and goroutine dispatch is amortized over whole
//     panels. Because each output element is produced by exactly one
//     panel and the reduction order inside a panel is fixed, every dense
//     kernel is bit-for-bit deterministic for any worker count.
//   - Tiling. Mul blocks over the reduction dimension (tileK rows of b)
//     and the output columns (tileJ) so the streamed b-panel stays
//     L2-resident and the destination stripe stays in L1 while it is
//     reused across the k-tile.
//   - Instruction-level parallelism. Dot runs four independent
//     accumulators (a serial dot product is latency-bound on the FP add
//     chain); the axpy kernels unroll 4× and the k-loops of Mul/TMul/Gram
//     process two reduction rows per pass (axpy2), halving traffic over
//     the destination stripe.
//
// parMinFlops gates goroutine dispatch: products smaller than this run
// serially even when a budget is offered, so tiny merge nodes and test
// matrices never pay scheduling overhead.

const (
	tileK = 64  // reduction rows per panel; tileK×tileJ b-panel ≈ 256 KB
	tileJ = 512 // output columns per tile; one 4 KB dst stripe stays in L1
)

// parMinFlops is a variable only so tests can lower it to drive the
// parallel paths on small matrices; production code treats it as const.
var parMinFlops = 1 << 18

// kernelWorkers resolves the effective worker count for a kernel with n
// partitionable output rows and roughly flops multiply-adds.
func kernelWorkers(w, n, flops int) int {
	w = par.Workers(w)
	if flops < parMinFlops {
		return 1
	}
	return min(w, n)
}

// Dot returns the inner product of equal-length vectors. Four independent
// accumulators break the floating-point add latency chain; the summation
// order therefore differs from a naive left-to-right loop by O(ε‖a‖‖b‖).
func Dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}

// axpy computes dst += a·x elementwise. Per-element order matches the
// naive loop exactly (no reassociation).
func axpy(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+3 < len(dst); i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// axpy2 computes dst += a0·x0 + a1·x1 in one pass over dst, halving the
// store traffic of two separate axpy calls.
func axpy2(dst []float64, a0 float64, x0 []float64, a1 float64, x1 []float64) {
	x0 = x0[:len(dst)]
	x1 = x1[:len(dst)]
	for i := range dst {
		dst[i] += a0*x0[i] + a1*x1[i]
	}
}

// axpyPair adds rows k and k+1 (when present) of b, scaled by a0/a1, into
// dst — the shared two-row inner step of Mul, TMul and Gram.
func axpyPair(dst []float64, a0 float64, x0 []float64, a1 float64, x1 []float64) {
	switch {
	case a0 == 0 && a1 == 0:
	case a1 == 0:
		axpy(dst, a0, x0)
	case a0 == 0:
		axpy(dst, a1, x1)
	default:
		axpy2(dst, a0, x0, a1, x1)
	}
}

// Mul returns a·b.
func Mul(a, b *Dense) *Dense { return MulW(a, b, 1) }

// MulW returns a·b using up to workers goroutines over row panels of a.
// The result is identical for every worker count.
func MulW(a, b *Dense, workers int) *Dense {
	if a.Cols != b.Rows {
		panic(shapeErr("Mul", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	mulInto(out, a, b, workers)
	return out
}

// mulInto accumulates a·b into out (which must be zeroed, shape-checked).
func mulInto(out, a, b *Dense, workers int) {
	r, k, n := a.Rows, a.Cols, b.Cols
	if r == 0 || k == 0 || n == 0 {
		return
	}
	w := kernelWorkers(workers, r, r*k*n)
	par.ForChunks(r, w, func(lo, hi int) { mulPanel(out, a, b, lo, hi) })
}

// mulPanel computes out[rlo:rhi] += a[rlo:rhi]·b with k/j tiling.
func mulPanel(out, a, b *Dense, rlo, rhi int) {
	kk, n := a.Cols, b.Cols
	for kb := 0; kb < kk; kb += tileK {
		kh := min(kb+tileK, kk)
		for jb := 0; jb < n; jb += tileJ {
			jh := min(jb+tileJ, n)
			for i := rlo; i < rhi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)[jb:jh]
				k := kb
				for ; k+1 < kh; k += 2 {
					axpyPair(orow, arow[k], b.Row(k)[jb:jh], arow[k+1], b.Row(k+1)[jb:jh])
				}
				if k < kh {
					if av := arow[k]; av != 0 {
						axpy(orow, av, b.Row(k)[jb:jh])
					}
				}
			}
		}
	}
}

// MulT returns a·bᵀ.
func MulT(a, b *Dense) *Dense { return MulTW(a, b, 1) }

// MulTW returns a·bᵀ using up to workers goroutines over row panels of a.
// The result is identical for every worker count.
func MulTW(a, b *Dense, workers int) *Dense {
	if a.Cols != b.Cols {
		panic(shapeErr("MulT", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	w := kernelWorkers(workers, a.Rows, a.Rows*a.Cols*b.Rows)
	par.ForChunks(a.Rows, w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// TMul returns aᵀ·b.
func TMul(a, b *Dense) *Dense { return TMulW(a, b, 1) }

// TMulW returns aᵀ·b using up to workers goroutines over panels of the
// output rows (= columns of a). Each panel accumulates over the shared
// rows of a and b in fixed ascending order, so the result is identical
// for every worker count.
func TMulW(a, b *Dense, workers int) *Dense {
	if a.Rows != b.Rows {
		panic(shapeErr("TMul", a.Cols, a.Rows, b.Rows, b.Cols))
	}
	out := NewDense(a.Cols, b.Cols)
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return out
	}
	w := kernelWorkers(workers, a.Cols, a.Rows*a.Cols*b.Cols)
	par.ForChunks(a.Cols, w, func(ilo, ihi int) {
		kk := a.Rows
		k := 0
		for ; k+1 < kk; k += 2 {
			ar0, ar1 := a.Row(k), a.Row(k+1)
			br0, br1 := b.Row(k), b.Row(k+1)
			for i := ilo; i < ihi; i++ {
				axpyPair(out.Row(i), ar0[i], br0, ar1[i], br1)
			}
		}
		if k < kk {
			arow, brow := a.Row(k), b.Row(k)
			for i := ilo; i < ihi; i++ {
				if av := arow[i]; av != 0 {
					axpy(out.Row(i), av, brow)
				}
			}
		}
	})
	return out
}

// Gram returns aᵀ·a, exploiting symmetry.
func Gram(a *Dense) *Dense { return GramW(a, 1) }

// GramW returns aᵀ·a using up to workers goroutines over panels of the
// output rows. Only the upper triangle is computed (then mirrored), and
// the result is identical for every worker count.
func GramW(a *Dense, workers int) *Dense {
	out := NewDense(a.Cols, a.Cols)
	gramInto(out, a, workers)
	return out
}

// gramInto accumulates aᵀ·a into out (which must be a zeroed n×n matrix).
func gramInto(out, a *Dense, workers int) {
	n := a.Cols
	if n == 0 || a.Rows == 0 {
		return
	}
	w := kernelWorkers(workers, n, a.Rows*n*n/2)
	par.ForChunks(n, w, func(ilo, ihi int) {
		kk := a.Rows
		k := 0
		for ; k+1 < kk; k += 2 {
			r0, r1 := a.Row(k), a.Row(k+1)
			for i := ilo; i < ihi; i++ {
				axpyPair(out.Row(i)[i:], r0[i], r0[i:], r1[i], r1[i:])
			}
		}
		if k < kk {
			row := a.Row(k)
			for i := ilo; i < ihi; i++ {
				if vi := row[i]; vi != 0 {
					axpy(out.Row(i)[i:], vi, row[i:])
				}
			}
		}
	})
	mirrorUpper(out)
}

// GramT returns a·aᵀ, exploiting symmetry.
func GramT(a *Dense) *Dense { return GramTW(a, 1) }

// GramTW returns a·aᵀ using up to workers goroutines over panels of the
// output rows. The result is identical for every worker count.
func GramTW(a *Dense, workers int) *Dense {
	out := NewDense(a.Rows, a.Rows)
	gramTInto(out, a, workers)
	return out
}

// gramTInto accumulates a·aᵀ into out (which must be a zeroed n×n matrix).
func gramTInto(out, a *Dense, workers int) {
	n := a.Rows
	if n == 0 || a.Cols == 0 {
		return
	}
	w := kernelWorkers(workers, n, n*n*a.Cols/2)
	par.ForChunks(n, w, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			ri := a.Row(i)
			orow := out.Row(i)
			for j := i; j < n; j++ {
				orow[j] = Dot(ri, a.Row(j))
			}
		}
	})
	mirrorUpper(out)
}

// mirrorUpper copies the upper triangle of a square matrix onto the lower.
func mirrorUpper(m *Dense) {
	n := m.Cols
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Data[j*n+i] = m.Data[i*n+j]
		}
	}
}
