// Package wire is the compact binary codec of the serving layer: a
// length-prefixed frame format shared by the HTTP server and the client
// SDK for event ingest and bulk embedding reads, where JSON's ~3-4x size
// and float formatting cost actually show up in tail latency.
//
// A frame on the wire is
//
//	[4B uint32 LE payload length] [payload] [4B "TSV2"] [4B uint32 LE CRC32C(payload)]
//
// — the same 8-byte magic+CRC32C (Castagnoli) integrity footer the v2/v3
// persist formats append to their gob payloads, so torn or bit-flipped
// frames are rejected deterministically rather than mis-decoded. The
// payload's first byte tags its type (events, recommendations, matrix,
// apply-result); all integers are little-endian, scores and embedding
// coordinates are IEEE-754 float64 bits.
//
// Streams compose by concatenation: an ingest request body is any number
// of event frames back to back, each applied as one batch.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/tree-svd/treesvd/internal/graph"
)

// ContentType is the MIME type negotiating the binary codec over HTTP;
// requests and responses carrying frames use it in Content-Type/Accept.
const ContentType = "application/x-treesvd-frame"

// Frame magic/footer layout, shared with the persist formats (TSV2 +
// CRC32C over the payload, little-endian).
const (
	frameMagic = "TSV2"
	footerLen  = 8
	prefixLen  = 4
)

// MaxFrame bounds a single frame's payload so a corrupt or hostile
// length prefix cannot make the reader allocate unbounded memory. 1 GiB
// covers a full right embedding for ~16M nodes at d=8.
const MaxFrame = 1 << 30

// Payload type tags, the first byte of every payload.
const (
	tagEvents      = 'E'
	tagRecs        = 'R'
	tagMatrix      = 'M'
	tagApplyResult = 'A'
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame reports a frame whose footer failed to verify: wrong
// magic, checksum mismatch, or an impossible length. Callers separate it
// from io.ErrUnexpectedEOF (a torn stream) with errors.Is.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// Rec is one ranked recommendation on the wire; the facade's
// Recommendation type has the same shape and converts field by field.
type Rec struct {
	Node  int32
	Score float64
}

// ApplyResult reports one applied ingest stream: how many batches and
// events were accepted, how many level-1 blocks were re-factored, and
// the snapshot version published by the last batch.
type ApplyResult struct {
	Batches, Events, Rebuilt int
	Version                  uint64
}

// WriteFrame writes one frame (length prefix, payload, integrity footer)
// to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %d-byte payload exceeds the %d-byte frame bound", len(payload), MaxFrame)
	}
	var prefix [prefixLen]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var footer [footerLen]byte
	copy(footer[:4], frameMagic)
	binary.LittleEndian.PutUint32(footer[4:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(footer[:])
	return err
}

// ReadFrame reads and verifies one frame from r, returning its payload.
// A clean end of stream returns io.EOF; a stream that ends mid-frame
// returns io.ErrUnexpectedEOF; a failed footer returns ErrCorruptFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var prefix [prefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF: clean end of stream
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte length prefix exceeds the %d-byte bound", ErrCorruptFrame, n, MaxFrame)
	}
	buf := make([]byte, int(n)+footerLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payload, footer := buf[:n], buf[n:]
	if string(footer[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad frame magic %q", ErrCorruptFrame, footer[:4])
	}
	want := binary.LittleEndian.Uint32(footer[4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch: computed %08x, footer %08x", ErrCorruptFrame, got, want)
	}
	return payload, nil
}

// appendUint32 appends v little-endian.
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendUint64 appends v little-endian.
func appendUint64(b []byte, v uint64) []byte {
	b = appendUint32(b, uint32(v))
	return appendUint32(b, uint32(v>>32))
}

// reader consumes a payload with bounds checking; fail is sticky.
type reader struct {
	b    []byte
	fail bool
}

func (r *reader) take(n int) []byte {
	if r.fail || len(r.b) < n {
		r.fail = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// done reports whether the payload was consumed exactly and completely.
func (r *reader) done() bool { return !r.fail && len(r.b) == 0 }

// corrupt builds the uniform malformed-payload error.
func corrupt(what string) error { return fmt.Errorf("%w: malformed %s payload", ErrCorruptFrame, what) }

// EncodeEvents encodes one event batch: tag, count, then 9 bytes per
// event (u, v, type).
func EncodeEvents(events []graph.Event) []byte {
	b := make([]byte, 0, 5+9*len(events))
	b = append(b, tagEvents)
	b = appendUint32(b, uint32(len(events)))
	for _, ev := range events {
		b = appendUint32(b, uint32(ev.U))
		b = appendUint32(b, uint32(ev.V))
		b = append(b, byte(ev.Type))
	}
	return b
}

// DecodeEvents decodes an event-batch payload written by EncodeEvents.
func DecodeEvents(payload []byte) ([]graph.Event, error) {
	r := &reader{b: payload}
	if r.u8() != tagEvents {
		return nil, corrupt("events")
	}
	n := int(r.u32())
	if r.fail || n > len(r.b)/9 {
		return nil, corrupt("events")
	}
	events := make([]graph.Event, n)
	for i := range events {
		events[i].U = int32(r.u32())
		events[i].V = int32(r.u32())
		t := r.u8()
		if t > byte(graph.Delete) {
			return nil, corrupt("events")
		}
		events[i].Type = graph.EventType(t)
	}
	if !r.done() {
		return nil, corrupt("events")
	}
	return events, nil
}

// EncodeRecs encodes a ranked recommendation list for one source at one
// snapshot version.
func EncodeRecs(version uint64, source int32, recs []Rec) []byte {
	b := make([]byte, 0, 17+12*len(recs))
	b = append(b, tagRecs)
	b = appendUint64(b, version)
	b = appendUint32(b, uint32(source))
	b = appendUint32(b, uint32(len(recs)))
	for _, rc := range recs {
		b = appendUint32(b, uint32(rc.Node))
		b = appendUint64(b, math.Float64bits(rc.Score))
	}
	return b
}

// DecodeRecs decodes a payload written by EncodeRecs.
func DecodeRecs(payload []byte) (version uint64, source int32, recs []Rec, err error) {
	r := &reader{b: payload}
	if r.u8() != tagRecs {
		return 0, 0, nil, corrupt("recommendations")
	}
	version = r.u64()
	source = int32(r.u32())
	n := int(r.u32())
	if r.fail || n > len(r.b)/12 {
		return 0, 0, nil, corrupt("recommendations")
	}
	recs = make([]Rec, n)
	for i := range recs {
		recs[i].Node = int32(r.u32())
		recs[i].Score = math.Float64frombits(r.u64())
	}
	if !r.done() {
		return 0, 0, nil, corrupt("recommendations")
	}
	return version, source, recs, nil
}

// EncodeMatrix encodes a row-major matrix (an embedding) at one snapshot
// version.
func EncodeMatrix(version uint64, rows [][]float64) []byte {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	b := make([]byte, 0, 17+8*len(rows)*cols)
	b = append(b, tagMatrix)
	b = appendUint64(b, version)
	b = appendUint32(b, uint32(len(rows)))
	b = appendUint32(b, uint32(cols))
	for _, row := range rows {
		for _, x := range row {
			b = appendUint64(b, math.Float64bits(x))
		}
	}
	return b
}

// DecodeMatrix decodes a payload written by EncodeMatrix.
func DecodeMatrix(payload []byte) (version uint64, rows [][]float64, err error) {
	r := &reader{b: payload}
	if r.u8() != tagMatrix {
		return 0, nil, corrupt("matrix")
	}
	version = r.u64()
	nr := int(r.u32())
	nc := int(r.u32())
	if r.fail || nc != 0 && nr > len(r.b)/(8*nc) || nc == 0 && nr > math.MaxInt32 {
		return 0, nil, corrupt("matrix")
	}
	rows = make([][]float64, nr)
	flat := make([]float64, nr*nc)
	for i := range rows {
		rows[i] = flat[i*nc : (i+1)*nc : (i+1)*nc]
		for j := 0; j < nc; j++ {
			rows[i][j] = math.Float64frombits(r.u64())
		}
	}
	if !r.done() {
		return 0, nil, corrupt("matrix")
	}
	return version, rows, nil
}

// EncodeApplyResult encodes an ingest summary.
func EncodeApplyResult(res ApplyResult) []byte {
	b := make([]byte, 0, 21)
	b = append(b, tagApplyResult)
	b = appendUint32(b, uint32(res.Batches))
	b = appendUint32(b, uint32(res.Events))
	b = appendUint32(b, uint32(res.Rebuilt))
	b = appendUint64(b, res.Version)
	return b
}

// DecodeApplyResult decodes a payload written by EncodeApplyResult.
func DecodeApplyResult(payload []byte) (ApplyResult, error) {
	r := &reader{b: payload}
	if r.u8() != tagApplyResult {
		return ApplyResult{}, corrupt("apply-result")
	}
	res := ApplyResult{
		Batches: int(r.u32()),
		Events:  int(r.u32()),
		Rebuilt: int(r.u32()),
		Version: r.u64(),
	}
	if !r.done() {
		return ApplyResult{}, corrupt("apply-result")
	}
	return res, nil
}
