package treesvd_test

import (
	"context"
	"fmt"

	treesvd "github.com/tree-svd/treesvd"
)

// Build a small deterministic graph: a ring with chords so every node has
// out-degree ≥ 2.
func ringGraph(n int32) *treesvd.Graph {
	g := treesvd.NewGraphN(int(n))
	for v := int32(0); v < n; v++ {
		g.InsertEdge(v, (v+1)%n)
		g.InsertEdge(v, (v+3)%n)
	}
	return g
}

func ExampleNew() {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0, 8, 16, 24}, treesvd.Config{Dim: 4})
	if err != nil {
		panic(err)
	}
	x := emb.Embedding()
	fmt.Printf("%d nodes embedded into %d dimensions\n", len(x), len(x[0]))
	// Output: 4 nodes embedded into 4 dimensions
}

func ExampleEmbedder_ApplyEvents() {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0, 8}, treesvd.Config{Dim: 4})
	if err != nil {
		panic(err)
	}
	// Insert a batch of chords; the factorization refreshes lazily.
	var events []treesvd.Event
	for v := int32(0); v < 32; v++ {
		events = append(events, treesvd.Event{U: v, V: (v + 7) % 32, Type: treesvd.Insert})
	}
	emb.ApplyEvents(context.Background(), events)
	st := emb.LastStats()
	fmt.Printf("cached+rebuilt blocks = %d\n", st.Skipped+st.Level1Rebuilt)
	// Output: cached+rebuilt blocks = 32
}

func ExampleFactorizeMatrix() {
	// Rank-1 matrix: ones everywhere in a 2×6 shape → σ₁ = √12.
	m := treesvd.NewSparseMatrix(2, 6)
	for i := 0; i < 2; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, 1)
		}
	}
	res, err := treesvd.FactorizeMatrix(m, treesvd.Config{Dim: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank %d, σ₁² = %.0f\n", res.Rank(), res.S[0]*res.S[0])
	// Output: rank 1, σ₁² = 12
}

func ExampleEmbedder_Recommend() {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0}, treesvd.Config{Dim: 4})
	if err != nil {
		panic(err)
	}
	recs, err := emb.Recommend(0, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d candidates, none already linked: %v\n",
		len(recs),
		!g.HasEdge(0, recs[0].Node) && !g.HasEdge(0, recs[1].Node) && !g.HasEdge(0, recs[2].Node))
	// Output: 3 candidates, none already linked: true
}

func ExampleEmbedder_Metrics() {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0, 8, 16, 24}, treesvd.Config{Dim: 4})
	if err != nil {
		panic(err)
	}
	for round := int32(0); round < 3; round++ {
		var events []treesvd.Event
		for v := int32(0); v < 32; v++ {
			events = append(events, treesvd.Event{U: v, V: (v + 9 + round) % 32, Type: treesvd.Insert})
		}
		if _, err := emb.ApplyEvents(context.Background(), events); err != nil {
			panic(err)
		}
	}
	m := emb.Metrics()
	fmt.Printf("batches=%d events=%d builds=%d snapshots=%d pushes>0=%t\n",
		m.BatchesApplied, m.EventsApplied, m.TreeBuilds, m.SnapshotsPublished, m.Pushes > 0)
	// Output: batches=3 events=96 builds=1 snapshots=4 pushes>0=true
}

func ExampleConfig_dynamicUpdates() {
	g := ringGraph(32)
	cfg := treesvd.Config{
		Dim:    4,
		Branch: 4, Levels: 2, // 4 wide blocks, so every block has mass
		Delta: 1e-3, // tight trigger: every batch below violates it
		// Enable the Brand-style incremental path and let every violating
		// block attempt it; the UpdateTailFrac budget still bounds the
		// accumulated truncation error.
		SVDUpdate:    true,
		UpdateMaxRel: 1e6,
	}
	emb, err := treesvd.New(g, []int32{0, 8}, cfg)
	if err != nil {
		panic(err)
	}
	for round := int32(0); round < 4; round++ {
		events := []treesvd.Event{{U: round, V: (16 + 3*round) % 32, Type: treesvd.Insert}}
		if _, err := emb.ApplyEvents(context.Background(), events); err != nil {
			panic(err)
		}
	}
	m := emb.Metrics()
	fmt.Printf("blocks updated > 0: %t, fallbacks: %d\n", m.BlocksUpdated > 0, m.UpdateFallbacks)
	// Output: blocks updated > 0: true, fallbacks: 0
}

func ExampleConfig_pushAccel() {
	subset := []int32{0, 8}
	build := func(accel treesvd.PushAccel) *treesvd.Embedder {
		emb, err := treesvd.New(ringGraph(32), subset, treesvd.Config{Dim: 4, PushAccel: accel})
		if err != nil {
			panic(err)
		}
		return emb
	}
	classic := build(treesvd.PushClassic) // the default: Algorithm 1 exactly
	sor := build(treesvd.PushSOR)         // over-relaxed steps, same residue bound
	a, b := classic.ProximityFrobNorm(), sor.ProximityFrobNorm()
	fmt.Printf("both engines pushed: %t, proximity norms within 5%%: %t\n",
		classic.Metrics().Pushes > 0 && sor.Metrics().Pushes > 0,
		(a-b)/a < 0.05 && (b-a)/a < 0.05)
	// Output: both engines pushed: true, proximity norms within 5%: true
}

func ExampleEmbedder_SetTraceHook() {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0, 8}, treesvd.Config{Dim: 4})
	if err != nil {
		panic(err)
	}
	// The hook runs inline on pipeline goroutines; keep it cheap.
	var starts, ends int
	emb.SetTraceHook(func(ev treesvd.TraceEvent) {
		switch ev.Kind {
		case treesvd.TraceBatchStart:
			starts++
		case treesvd.TraceBatchEnd:
			ends++
		}
	})
	for round := int32(0); round < 2; round++ {
		events := []treesvd.Event{{U: round, V: 16 + round, Type: treesvd.Insert}}
		if _, err := emb.ApplyEvents(context.Background(), events); err != nil {
			panic(err)
		}
	}
	emb.SetTraceHook(nil) // detach; later batches fire no events
	fmt.Printf("starts=%d ends=%d\n", starts, ends)
	// Output: starts=2 ends=2
}
