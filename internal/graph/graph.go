// Package graph provides the dynamic directed-graph substrate: an
// adjacency structure with O(degree) edge insertion/deletion that maintains
// forward and reverse adjacency jointly, the snapshot/event stream model of
// Definition 2.1 of the paper, and edge-list IO.
package graph

import (
	"fmt"
)

// Graph is a mutable directed graph over nodes 0..NumNodes()-1. Both
// out-adjacency and in-adjacency are maintained so personalized PageRank
// can run on the graph and its reverse without materializing a transposed
// copy. Parallel edges are rejected; self-loops are allowed.
type Graph struct {
	out   [][]int32
	in    [][]int32
	edges map[int64]struct{}
	m     int
}

// New creates a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{
		out:   make([][]int32, n),
		in:    make([][]int32, n),
		edges: make(map[int64]struct{}, n),
	}
}

// NumNodes returns the current node count.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the current edge count.
func (g *Graph) NumEdges() int { return g.m }

// EnsureNode grows the graph so node v exists.
func (g *Graph) EnsureNode(v int32) {
	for int(v) >= len(g.out) {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
}

func edgeKey(u, v int32) int64 { return int64(u)<<32 | int64(uint32(v)) }

// HasEdge reports whether edge (u,v) exists.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := g.edges[edgeKey(u, v)]
	return ok
}

// InsertEdge adds the directed edge (u,v), growing the node set as needed.
// It returns false if the edge already exists.
func (g *Graph) InsertEdge(u, v int32) bool {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node id (%d,%d)", u, v))
	}
	k := edgeKey(u, v)
	if _, ok := g.edges[k]; ok {
		return false
	}
	g.EnsureNode(u)
	g.EnsureNode(v)
	g.edges[k] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	return true
}

// DeleteEdge removes the directed edge (u,v). It returns false if the edge
// does not exist.
func (g *Graph) DeleteEdge(u, v int32) bool {
	k := edgeKey(u, v)
	if _, ok := g.edges[k]; !ok {
		return false
	}
	delete(g.edges, k)
	g.out[u] = removeOne(g.out[u], v)
	g.in[v] = removeOne(g.in[v], u)
	g.m--
	return true
}

// removeOne deletes the first occurrence of x via swap-remove.
func removeOne(s []int32, x int32) []int32 {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	panic("graph: adjacency/edge-set inconsistency")
}

// OutDeg returns the out-degree of v.
func (g *Graph) OutDeg(v int32) int { return len(g.out[v]) }

// InDeg returns the in-degree of v.
func (g *Graph) InDeg(v int32) int { return len(g.in[v]) }

// OutNeighbors returns v's out-neighbors. The slice aliases internal
// storage and is invalidated by mutations; callers must not modify it.
func (g *Graph) OutNeighbors(v int32) []int32 { return g.out[v] }

// InNeighbors returns v's in-neighbors, i.e. the out-neighbors of v in the
// reverse graph. Same aliasing caveats as OutNeighbors.
func (g *Graph) InNeighbors(v int32) []int32 { return g.in[v] }

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:   make([][]int32, len(g.out)),
		in:    make([][]int32, len(g.in)),
		edges: make(map[int64]struct{}, len(g.edges)),
		m:     g.m,
	}
	for i, s := range g.out {
		c.out[i] = append([]int32(nil), s...)
	}
	for i, s := range g.in {
		c.in[i] = append([]int32(nil), s...)
	}
	for k := range g.edges {
		c.edges[k] = struct{}{}
	}
	return c
}

// Direction selects which orientation of the graph an algorithm traverses.
type Direction uint8

const (
	// Forward traverses edges as stored.
	Forward Direction = iota
	// Reverse traverses edges backwards (the transposed graph Gᵀ).
	Reverse
)

// Neighbors returns v's out-neighbors in the chosen direction.
func (g *Graph) Neighbors(v int32, dir Direction) []int32 {
	if dir == Forward {
		return g.out[v]
	}
	return g.in[v]
}

// Degree returns v's out-degree in the chosen direction.
func (g *Graph) Degree(v int32, dir Direction) int {
	if dir == Forward {
		return len(g.out[v])
	}
	return len(g.in[v])
}
