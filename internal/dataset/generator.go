// Package dataset generates the synthetic dynamic graphs this repository
// substitutes for the paper's real datasets (Patent, Mag-authors,
// Wikipedia, YouTube, Flickr, Twitter — see DESIGN.md §4). The generator
// reproduces the properties the evaluation depends on: heavy-tailed degree
// distributions (preferential attachment), planted communities that drive
// both edge affinity and node labels (so classification quality separates
// embedding methods), node arrival over time, and optional edge deletions,
// all cut into the same snapshot counts τ as the paper's streams.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tree-svd/treesvd/internal/graph"
)

// Profile describes one synthetic dataset.
type Profile struct {
	// Name identifies the dataset in reports.
	Name string
	// Nodes and TargetEdges set the final size.
	Nodes, TargetEdges int
	// Communities is the number of planted communities; labeled datasets
	// expose them as classes (|C| in Table 3), unlabeled ones use them
	// only to shape topology.
	Communities int
	// Labeled controls whether Generate emits labels.
	Labeled bool
	// Snapshots is τ, the number of stream snapshots.
	Snapshots int
	// Homophily is the probability an edge stays within its source's
	// community.
	Homophily float64
	// DeleteFrac is the fraction of events that are deletions.
	DeleteFrac float64
	// Seed fixes the stream.
	Seed int64
}

// Validate reports whether the profile is generatable.
func (p Profile) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("dataset: %d nodes", p.Nodes)
	}
	if p.TargetEdges < p.Nodes {
		return fmt.Errorf("dataset: %d edges < %d nodes (every node needs an out-edge)", p.TargetEdges, p.Nodes)
	}
	if p.Communities < 1 {
		return fmt.Errorf("dataset: %d communities", p.Communities)
	}
	if p.Snapshots < 1 {
		return fmt.Errorf("dataset: %d snapshots", p.Snapshots)
	}
	if p.Homophily < 0 || p.Homophily > 1 {
		return fmt.Errorf("dataset: homophily %g outside [0,1]", p.Homophily)
	}
	if p.DeleteFrac < 0 || p.DeleteFrac >= 0.5 {
		return fmt.Errorf("dataset: delete fraction %g outside [0,0.5)", p.DeleteFrac)
	}
	return nil
}

// Dataset bundles a generated stream with its labels.
type Dataset struct {
	Profile Profile
	Stream  *graph.Stream
	// Labels[v] is the class of node v; nil for unlabeled profiles.
	Labels []int
}

// Generate materializes the event stream for a profile. The stream is
// deterministic in the profile (including Seed).
func Generate(p Profile) *Dataset {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Community assignment with skewed sizes: community c gets weight
	// 1/(c+1)^0.7, producing a few large and many small classes as in
	// citation/co-authorship data.
	weights := make([]float64, p.Communities)
	var wsum float64
	for c := range weights {
		weights[c] = 1 / math.Pow(float64(c+1), 0.7)
		wsum += weights[c]
	}
	comm := make([]int, p.Nodes)
	for v := range comm {
		x := rng.Float64() * wsum
		for c, w := range weights {
			x -= w
			if x <= 0 || c == p.Communities-1 {
				comm[v] = c
				break
			}
		}
	}

	// Preferential-attachment target pools: every edge endpoint is
	// appended, so sampling a pool element is degree-proportional.
	// Separate pools per community enable homophilous targeting.
	global := make([]int32, 0, 2*p.TargetEdges)
	perComm := make([][]int32, p.Communities)

	g := graph.New(p.Nodes) // live graph to reject duplicates
	var events []graph.Event
	addEdge := func(u, v int32) bool {
		if u == v || !g.InsertEdge(u, v) {
			return false
		}
		events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		global = append(global, u, v)
		perComm[comm[u]] = append(perComm[comm[u]], u)
		perComm[comm[v]] = append(perComm[comm[v]], v)
		return true
	}
	pickTarget := func(u int32) int32 {
		var pool []int32
		if rng.Float64() < p.Homophily {
			pool = perComm[comm[u]]
		} else {
			pool = global
		}
		if len(pool) == 0 || rng.Float64() < 0.1 {
			// Uniform exploration keeps new/small communities reachable.
			return int32(rng.Intn(p.Nodes))
		}
		return pool[rng.Intn(len(pool))]
	}

	// Node arrival: node v arrives with outDeg(v) initial edges drawn
	// from a heavy-tailed distribution with the mean that hits
	// TargetEdges overall (reserving DeleteFrac churn on top).
	meanDeg := float64(p.TargetEdges) / float64(p.Nodes)
	// Seed a small clique-ish core so early preferential picks exist.
	core := 5
	if core > p.Nodes {
		core = p.Nodes
	}
	for v := 1; v < core; v++ {
		addEdge(int32(v), int32(rng.Intn(v)))
	}
	for v := core; v < p.Nodes; v++ {
		d := heavyTailDegree(rng, meanDeg)
		tried := 0
		for added := 0; added < d && tried < 8*d+16; tried++ {
			if addEdge(int32(v), pickTarget(int32(v))) {
				added++
			}
		}
		if g.OutDeg(int32(v)) == 0 {
			// Guarantee one out-edge (mature-graph assumption of Alg. 2).
			for {
				if addEdge(int32(v), int32(rng.Intn(p.Nodes))) {
					break
				}
			}
		}
		// Densification: existing nodes keep linking over time.
		if rng.Float64() < 0.3 {
			u := int32(rng.Intn(v + 1))
			addEdge(u, pickTarget(u))
		}
		// Deletion churn.
		if p.DeleteFrac > 0 && rng.Float64() < p.DeleteFrac {
			if ev, ok := randomDeletableEdge(rng, g); ok {
				g.DeleteEdge(ev.U, ev.V)
				events = append(events, ev)
			}
		}
	}
	// Top up to the edge target with densification edges.
	for g.NumEdges() < p.TargetEdges {
		u := int32(rng.Intn(p.Nodes))
		addEdge(u, pickTarget(u))
	}

	ends := make([]int, p.Snapshots)
	for t := 0; t < p.Snapshots; t++ {
		ends[t] = (t + 1) * len(events) / p.Snapshots
	}
	ds := &Dataset{
		Profile: p,
		Stream:  &graph.Stream{Events: events, Ends: ends, NumNodes: p.Nodes},
	}
	if p.Labeled {
		ds.Labels = comm
	}
	return ds
}

// randomDeletableEdge samples an existing edge whose removal keeps the
// source's out-degree positive.
func randomDeletableEdge(rng *rand.Rand, g *graph.Graph) (graph.Event, bool) {
	for try := 0; try < 32; try++ {
		u := int32(rng.Intn(g.NumNodes()))
		if g.OutDeg(u) < 2 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		v := nbrs[rng.Intn(len(nbrs))]
		return graph.Event{U: u, V: v, Type: graph.Delete}, true
	}
	return graph.Event{}, false
}

// heavyTailDegree draws from a discrete Pareto-ish distribution with the
// given mean: P(d) ∝ d^-2.5, truncated, then shifted to hit the mean.
func heavyTailDegree(rng *rand.Rand, mean float64) int {
	// Inverse-transform for a Pareto tail with xm=1, α=1.5; its mean is 3,
	// rescale to the requested mean.
	u := rng.Float64()
	x := math.Pow(1-u, -2.0/3.0) // Pareto α=1.5, xm=1, mean 3
	if x > 50 {
		x = 50
	}
	d := int(x * mean / 3)
	if d < 1 {
		d = 1
	}
	return d
}
