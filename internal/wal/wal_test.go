package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

func mustAppend(t *testing.T, w *Writer, payload []byte) uint64 {
	t.Helper()
	seq, err := w.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func payloadFor(i int) []byte {
	return bytes.Repeat([]byte{byte(i)}, 10+i%7)
}

// writeLog appends n records starting at seq 1 and closes the writer.
func writeLog(t *testing.T, dir string, n int, opt Options) {
	t.Helper()
	w, err := NewWriter(OS, dir, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mustAppend(t, w, payloadFor(i)); got != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, got)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func checkRecords(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncBatch, SyncInterval, SyncNone} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, 25, Options{Sync: sync, SyncEvery: 4})
			res, err := Recover(OS, dir, true)
			if err != nil {
				t.Fatal(err)
			}
			checkRecords(t, res.Records, 25)
			if res.TornTail || res.Dropped != 0 {
				t.Fatalf("clean log recovered with TornTail=%v Dropped=%d", res.TornTail, res.Dropped)
			}
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// ~26 bytes per record; rotate every ~3 records.
	writeLog(t, dir, 20, Options{SegmentSize: 90})
	segs, err := listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	res, err := Recover(OS, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res.Records, 20)
}

func TestWriterResumesAfterRecover(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 5, Options{})
	res, err := Recover(OS, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	next := res.Records[len(res.Records)-1].Seq + 1
	w, err := NewWriter(OS, dir, next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustAppend(t, w, payloadFor(5)); got != 6 {
		t.Fatalf("resumed append assigned seq %d, want 6", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Recover(OS, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res.Records, 6)
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(OS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 5, recHdrLen - 1, recHdrLen + 3} {
		t.Run(fmt.Sprint(cut), func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, 8, Options{})
			name := lastSegment(t, dir)
			fi, err := os.Stat(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(name, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}
			// A torn tail is a crash artifact, not corruption: even strict
			// mode repairs it silently.
			res, err := Recover(OS, dir, true)
			if err != nil {
				t.Fatal(err)
			}
			if !res.TornTail {
				t.Fatal("torn tail not reported")
			}
			if res.Dropped != 0 {
				t.Fatalf("torn tail counted %d dropped records", res.Dropped)
			}
			checkRecords(t, res.Records, 7)
			// The log must now be clean: recover again, nothing torn.
			res, err = Recover(OS, dir, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.TornTail {
				t.Fatal("tail still torn after repair")
			}
			checkRecords(t, res.Records, 7)
		})
	}
}

// flipByteAt flips one bit of the file at off.
func flipByteAt(t *testing.T, name string, off int64) {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x10
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipStrictFails(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 8, Options{})
	// Flip inside the payload of the third record (header 8 + two 26-byte
	// records + a few bytes in).
	flipByteAt(t, lastSegment(t, dir), segHdrLen+2*26+recHdrLen+2)
	_, err := Recover(OS, dir, true)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("strict recovery returned %v, want *CorruptError", err)
	}
}

func TestBitFlipLenientTruncates(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 8, Options{})
	flipByteAt(t, lastSegment(t, dir), segHdrLen+2*26+recHdrLen+2)
	res, err := Recover(OS, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res.Records, 2)
	if res.Dropped == 0 || res.DropReason == "" {
		t.Fatalf("lenient recovery dropped %d (%q), want a reported loss", res.Dropped, res.DropReason)
	}
	// The surviving prefix must be a valid log a writer can resume.
	w, err := NewWriter(OS, dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, payloadFor(2))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Recover(OS, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res.Records, 3)
}

func TestDamagedMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 20, Options{SegmentSize: 90})
	segs, err := listSegments(OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d (%v)", len(segs), err)
	}
	mid := filepath.Join(dir, segName(segs[1]))
	flipByteAt(t, mid, segHdrLen+recHdrLen+1)
	if _, err := Recover(OS, dir, true); err == nil {
		t.Fatal("strict recovery accepted a damaged middle segment")
	}
	res, err := Recover(OS, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, res.Records, int(segs[1]-1))
	if res.Dropped == 0 {
		t.Fatal("lenient recovery reported no loss")
	}
	// Later segments must be gone: the prefix is the whole log now.
	left, err := listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("still %d segments after truncating at segment 2 of %d", len(left), len(segs))
	}
}

func TestPruneSegments(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 20, Options{SegmentSize: 90})
	segs, err := listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	upTo := segs[2] - 1 // everything the first two segments hold
	if err := PruneSegments(OS, dir, upTo); err != nil {
		t.Fatal(err)
	}
	left, err := listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != len(segs)-2 || left[0] != segs[2] {
		t.Fatalf("prune(upTo=%d) left %v, want suffix from %d", upTo, left, segs[2])
	}
	// The pruned log must still recover: records seq > upTo all present.
	res, err := Recover(OS, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Seq != segs[2] || res.Records[len(res.Records)-1].Seq != 20 {
		t.Fatalf("pruned log spans %d..%d, want %d..20", res.Records[0].Seq, res.Records[len(res.Records)-1].Seq, segs[2])
	}
	// Pruning everything must keep the newest segment: a writer may own it.
	if err := PruneSegments(OS, dir, 20); err != nil {
		t.Fatal(err)
	}
	left, err = listSegments(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("full prune left %d segments, want the newest only", len(left))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("state"), 100)
	if err := WriteCheckpoint(OS, dir, 42, payload); err != nil {
		t.Fatal(err)
	}
	cks, err := ListCheckpoints(OS, dir)
	if err != nil || len(cks) != 1 || cks[0].Seq != 42 {
		t.Fatalf("ListCheckpoints = %v, %v", cks, err)
	}
	seq, got, err := ReadCheckpoint(OS, dir, cks[0].Name)
	if err != nil || seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("ReadCheckpoint = seq %d, %d bytes, %v", seq, len(got), err)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("state"), 100)
	if err := WriteCheckpoint(OS, dir, 7, payload); err != nil {
		t.Fatal(err)
	}
	name := ckptName(7)
	for _, off := range []int64{1, 9, 20, ckptHdrLen + 50} {
		t.Run(fmt.Sprint(off), func(t *testing.T) {
			path := filepath.Join(dir, name)
			flipByteAt(t, path, off)
			defer flipByteAt(t, path, off) // restore for the next case
			_, _, err := ReadCheckpoint(OS, dir, name)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at %d: got %v, want *CorruptError", off, err)
			}
		})
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(OS, dir, 7, bytes.Repeat([]byte("x"), 500)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName(7))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-100); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadCheckpoint(OS, dir, ckptName(7))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
}

func TestPruneCheckpointsKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{3, 9, 12, 40} {
		if err := WriteCheckpoint(OS, dir, seq, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(OS, dir, 2); err != nil {
		t.Fatal(err)
	}
	cks, err := ListCheckpoints(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 || cks[0].Seq != 12 || cks[1].Seq != 40 {
		t.Fatalf("prune kept %v, want seqs 12 and 40", cks)
	}
}

func TestRemoveTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(OS, dir, 1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	stranded := filepath.Join(dir, ckptName(9)+tmpSuffix)
	if err := os.WriteFile(stranded, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stranded tmp must neither be listed nor survive cleanup.
	cks, err := ListCheckpoints(OS, dir)
	if err != nil || len(cks) != 1 {
		t.Fatalf("tmp file leaked into ListCheckpoints: %v, %v", cks, err)
	}
	if err := RemoveTempFiles(OS, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Fatalf("stranded tmp still present (%v)", err)
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if has, err := HasState(OS, dir); err != nil || has {
		t.Fatalf("empty dir: HasState = %v, %v", has, err)
	}
	if err := WriteCheckpoint(OS, dir, 0, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if has, err := HasState(OS, dir); err != nil || !has {
		t.Fatalf("dir with checkpoint: HasState = %v, %v", has, err)
	}
}

func TestEncodeDecodeEvents(t *testing.T) {
	events := []graph.Event{
		{U: 0, V: 1, Type: graph.Insert},
		{U: 2147483647, V: 0, Type: graph.Delete},
		{U: 5, V: 5, Type: graph.Insert},
	}
	got, err := DecodeEvents(EncodeEvents(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	if _, err := DecodeEvents(make([]byte, 10)); err == nil {
		t.Fatal("accepted a payload of non-multiple length")
	}
	bad := EncodeEvents(events[:1])
	bad[8] = 9
	if _, err := DecodeEvents(bad); err == nil {
		t.Fatal("accepted an unknown event type")
	}
}

func TestWriterPoisonsOnError(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(OS, dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, []byte("ok"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The closed writer must refuse everything rather than write through a
	// dead handle.
	if _, err := w.Append([]byte("late")); err == nil {
		t.Fatal("closed writer accepted an append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("closed writer accepted a sync")
	}
}
