package treesvd_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	treesvd "github.com/tree-svd/treesvd"
)

// chordBatches returns nb deterministic insert batches over a ring graph
// of n nodes, each adding one chord per node.
func chordBatches(n int32, nb int) [][]treesvd.Event {
	out := make([][]treesvd.Event, nb)
	for b := range out {
		for v := int32(0); v < n; v++ {
			out[b] = append(out[b], treesvd.Event{U: v, V: (v + 5 + int32(b)) % n, Type: treesvd.Insert})
		}
	}
	return out
}

func TestMetricsAfterChurn(t *testing.T) {
	g := ringGraph(64)
	emb, err := treesvd.New(g, []int32{0, 8, 16, 24, 32, 40}, treesvd.Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m := emb.Metrics(); m.Pushes == 0 || m.TreeBuilds != 1 || m.SnapshotsPublished != 1 {
		t.Fatalf("post-New metrics: pushes=%d builds=%d snapshots=%d",
			m.Pushes, m.TreeBuilds, m.SnapshotsPublished)
	}
	batches := chordBatches(64, 4)
	for _, b := range batches {
		if _, err := emb.ApplyEvents(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	m := emb.Metrics()
	if m.BatchesApplied != 4 {
		t.Fatalf("BatchesApplied = %d, want 4", m.BatchesApplied)
	}
	if want := uint64(4 * 64); m.EventsApplied != want {
		t.Fatalf("EventsApplied = %d, want %d", m.EventsApplied, want)
	}
	if m.Adjusts == 0 {
		t.Fatal("Adjusts = 0 after incremental batches")
	}
	if m.TreeUpdates != 4 {
		t.Fatalf("TreeUpdates = %d, want 4", m.TreeUpdates)
	}
	if m.BlocksRebuilt+m.BlocksSkipped == 0 {
		t.Fatal("no block outcomes recorded")
	}
	if m.SnapshotsPublished != 5 {
		t.Fatalf("SnapshotsPublished = %d, want 5", m.SnapshotsPublished)
	}
	if m.Batch.Count != 4 || m.Batch.Max <= 0 {
		t.Fatalf("Batch stats = %+v", m.Batch)
	}
	if m.SnapshotAge <= 0 {
		t.Fatalf("SnapshotAge = %v, want > 0", m.SnapshotAge)
	}
	if m.WAL != nil {
		t.Fatal("WAL metrics set on a non-durable embedder")
	}
	if err := emb.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	m2 := emb.Metrics()
	if m2.Rebuilds != 1 || m2.SourceRebuilds == 0 || m2.TreeBuilds != 2 {
		t.Fatalf("post-Rebuild: rebuilds=%d sourceRebuilds=%d builds=%d",
			m2.Rebuilds, m2.SourceRebuilds, m2.TreeBuilds)
	}
}

// TestMetricsRegistryServesBothFormats exercises the facade registry end
// to end over HTTP: the JSON form must parse and the Prometheus form must
// carry the pipeline's key series with non-zero totals.
func TestMetricsRegistryServesBothFormats(t *testing.T) {
	g := ringGraph(32)
	emb, err := treesvd.New(g, []int32{0, 8, 16}, treesvd.Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emb.ApplyEvents(context.Background(), chordBatches(32, 1)[0]); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	emb.MetricsRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var decoded map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	emb.MetricsRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	prom := rec.Body.String()
	for _, name := range []string{
		"treesvd_ppr_pushes_total",
		"treesvd_ppr_adjusts_total",
		"treesvd_tree_blocks_rebuilt_total",
		"treesvd_tree_blocks_skipped_total",
		"treesvd_batches_applied_total",
		"treesvd_snapshots_published_total",
		"treesvd_snapshot_age_seconds",
		"treesvd_tree_pass_nanos",
		"treesvd_pool_hits_total",
	} {
		if _, ok := decoded[name]; !ok {
			t.Errorf("metric %s missing from the JSON export", name)
		}
		if !strings.Contains(prom, "# TYPE "+name+" ") {
			t.Errorf("metric %s missing from the Prometheus export", name)
		}
	}
}

// traceLog is a concurrency-safe TraceHook recorder.
type traceLog struct {
	mu     sync.Mutex
	events []treesvd.TraceEvent
}

func (l *traceLog) hook(ev treesvd.TraceEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *traceLog) snapshot() []treesvd.TraceEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]treesvd.TraceEvent(nil), l.events...)
}

func (l *traceLog) count(k treesvd.TraceKind) int {
	n := 0
	for _, ev := range l.snapshot() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// TestTraceHookOrdering drives batches through ApplyEvents and checks the
// documented bracket: per batch exactly one TraceBatchStart, then every
// TraceBlockRecompute, then exactly one TraceBatchEnd, in recorded order
// (block recomputes fire concurrently but always inside the bracket,
// which the per-batch serialization makes observable as a total order
// here).
func TestTraceHookOrdering(t *testing.T) {
	g := ringGraph(48)
	// A tiny Delta forces every touched block to re-factor, so the test
	// observes TraceBlockRecompute events deterministically.
	emb, err := treesvd.New(g, []int32{0, 8, 16, 24}, treesvd.Config{Dim: 4, Workers: 4, Delta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	log := &traceLog{}
	emb.SetTraceHook(log.hook)
	const nb = 3
	rebuilt := 0
	for _, b := range chordBatches(48, nb) {
		n, err := emb.ApplyEvents(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt += n
	}
	if rebuilt == 0 {
		t.Fatal("no blocks rebuilt; the trace test needs recompute events")
	}
	events := log.snapshot()
	inBatch := false
	var starts, ends, recomputes int
	var seq uint64
	for i, ev := range events {
		switch ev.Kind {
		case treesvd.TraceBatchStart:
			if inBatch {
				t.Fatalf("event %d: nested TraceBatchStart", i)
			}
			if ev.Seq <= seq {
				t.Fatalf("event %d: batch seq %d not increasing past %d", i, ev.Seq, seq)
			}
			seq = ev.Seq
			inBatch = true
			starts++
		case treesvd.TraceBlockRecompute:
			if !inBatch {
				t.Fatalf("event %d: TraceBlockRecompute outside the batch bracket", i)
			}
			if ev.Block < 0 {
				t.Fatalf("event %d: recompute with negative block %d", i, ev.Block)
			}
			recomputes++
		case treesvd.TraceBatchEnd:
			if !inBatch {
				t.Fatalf("event %d: TraceBatchEnd without a start", i)
			}
			if ev.Seq != seq {
				t.Fatalf("event %d: end seq %d does not match start seq %d", i, ev.Seq, seq)
			}
			if ev.Err != nil {
				t.Fatalf("event %d: unexpected batch error %v", i, ev.Err)
			}
			inBatch = false
			ends++
		default:
			t.Fatalf("event %d: unexpected kind %v", i, ev.Kind)
		}
	}
	if starts != nb || ends != nb {
		t.Fatalf("starts=%d ends=%d, want %d each", starts, ends, nb)
	}
	if recomputes != rebuilt {
		t.Fatalf("recompute events = %d, blocks rebuilt = %d", recomputes, rebuilt)
	}

	// Clearing the hook stops the stream.
	emb.SetTraceHook(nil)
	if _, err := emb.ApplyEvents(context.Background(), chordBatches(48, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if got := len(log.snapshot()); got != len(events) {
		t.Fatalf("hook fired after being cleared: %d -> %d events", len(events), got)
	}
}

// TestDurableMetricsAndTrace covers the durability slice: WAL counters in
// Metrics().WAL, checkpoint trace events, and the single TraceRecovery on
// reopen.
func TestDurableMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	log := &traceLog{}
	cfg := treesvd.DurableConfig{
		Config:          treesvd.Config{Dim: 4},
		CheckpointEvery: 2,
		SyncCheckpoints: true,
		Trace:           log.hook,
	}
	d, err := treesvd.Create(dir, ringGraph(32), []int32{0, 8, 16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range chordBatches(32, 4) {
		if _, err := d.ApplyEvents(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.WAL == nil {
		t.Fatal("durable embedder reports no WAL metrics")
	}
	if m.WAL.Appends != 4 {
		t.Fatalf("WAL.Appends = %d, want 4", m.WAL.Appends)
	}
	if m.WAL.Fsyncs == 0 || m.WAL.AppendedBytes == 0 {
		t.Fatalf("WAL counters empty: %+v", *m.WAL)
	}
	if m.WAL.Checkpoints != 2 {
		t.Fatalf("WAL.Checkpoints = %d, want 2", m.WAL.Checkpoints)
	}
	if got := log.count(treesvd.TraceCheckpoint); got != 2 {
		t.Fatalf("TraceCheckpoint events = %d, want 2", got)
	}
	reg := d.MetricsRegistry()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if !strings.Contains(rec.Body.String(), "treesvd_wal_appends_total 4") {
		t.Fatal("treesvd_wal_appends_total not exported with the expected value")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	relog := &traceLog{}
	cfg.Trace = relog.hook
	d2, err := treesvd.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recov := relog.snapshot()
	if len(recov) != 1 || recov[0].Kind != treesvd.TraceRecovery {
		t.Fatalf("expected exactly one TraceRecovery after Open, got %v", recov)
	}
	if want := d2.Recovery().ReplayedBatches; recov[0].Rebuilt != want {
		t.Fatalf("TraceRecovery.Rebuilt = %d, want %d replayed batches", recov[0].Rebuilt, want)
	}
	// Metrics are process-lifetime, not persisted: the reopened store
	// starts counting from zero.
	if m := d2.Metrics(); m.WAL == nil || m.WAL.Appends != 0 {
		t.Fatalf("reopened WAL metrics = %+v, want fresh counters", m.WAL)
	}
}
