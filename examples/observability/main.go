// Observability: operate a dynamic embedder with eyes open. The example
// streams a synthetic social graph through a durable embedder while
//
//   - a TraceHook prints one line per batch, checkpoint and block
//     recompute burst,
//   - the metric registry is served on http://localhost:8077/metrics
//     (expvar JSON; add ?format=prometheus for the Prometheus text form),
//   - and at the end the programmatic Metrics() view is dumped, mapping
//     each counter back to the paper's cost terms.
//
// While it runs, try:
//
//	curl localhost:8077/metrics
//	curl 'localhost:8077/metrics?format=prometheus'
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
)

func main() {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.YouTube(), 0.3))
	stream := ds.Stream
	g := stream.BuildSnapshot(1)
	subset := ds.SampleSubset(1, 80, 7)

	cfg := treesvd.Defaults()
	cfg.Dim = 16
	cfg.MaxNodes = stream.NumNodes

	// The trace hook runs inline on pipeline goroutines — including the
	// factorization workers — so it only bumps counters and prints the
	// cheap per-batch lines.
	var recomputes atomic.Int64
	trace := func(ev treesvd.TraceEvent) {
		switch ev.Kind {
		case treesvd.TraceBlockRecompute:
			recomputes.Add(1)
		case treesvd.TraceBatchEnd:
			fmt.Printf("  batch %d: %d events, %d blocks re-factored (%d recompute events), %v\n",
				ev.Seq, ev.Events, ev.Rebuilt, recomputes.Swap(0), ev.Dur.Round(time.Millisecond))
		case treesvd.TraceCheckpoint:
			fmt.Printf("  checkpoint @batch %d committed in %v\n", ev.Seq, ev.Dur.Round(time.Millisecond))
		case treesvd.TraceRecovery:
			fmt.Printf("  recovered from checkpoint %d, %d batches replayed\n", ev.Seq, ev.Rebuilt)
		}
	}

	dir, err := os.MkdirTemp("", "treesvd-obs-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	d, err := treesvd.Create(dir, g, subset, treesvd.DurableConfig{
		Config:          cfg,
		CheckpointEvery: 3,
		SyncCheckpoints: true,
		Trace:           trace,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	// One line mounts the metrics endpoint; both the durable wrapper and
	// the plain Embedder expose the same registry. ListenAndServe only
	// returns on failure (e.g. the port is taken) — swallowing that error
	// would silently serve nothing, so fail loudly instead.
	go func() {
		if err := http.ListenAndServe("localhost:8077", d.MetricsRegistry()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics endpoint:", err)
			os.Exit(1)
		}
	}()
	fmt.Println("metrics on http://localhost:8077/metrics — streaming snapshots:")

	for t := 2; t <= stream.NumSnapshots(); t++ {
		if _, err := d.ApplyEvents(context.Background(), stream.SnapshotEvents(t)); err != nil {
			panic(err)
		}
	}

	m := d.Metrics()
	fmt.Println("\ncumulative metrics (the Theorem 3.7 cost terms, observed):")
	fmt.Printf("  PPR: %d pushes, %d adjusts, %d source rebuilds\n", m.Pushes, m.Adjusts, m.SourceRebuilds)
	fmt.Printf("  tree: %d builds, %d updates; blocks %d rebuilt / %d skipped (skip rate %.0f%%); %d upper merges\n",
		m.TreeBuilds, m.TreeUpdates, m.BlocksRebuilt, m.BlocksSkipped,
		100*float64(m.BlocksSkipped)/float64(m.BlocksRebuilt+m.BlocksSkipped), m.UpperMerges)
	fmt.Printf("  timing: block factor p50 %v, tree pass p50 %v, batch p50 %v\n",
		m.BlockFactor.P50.Round(time.Microsecond), m.TreePass.P50.Round(time.Microsecond),
		m.Batch.P50.Round(time.Microsecond))
	fmt.Printf("  pool: %d hits / %d misses; snapshot age %v\n",
		m.PoolHits, m.PoolMisses, m.SnapshotAge.Round(time.Millisecond))
	fmt.Printf("  WAL: %d appends (%d bytes), %d fsyncs (p50 %v), %d checkpoints\n",
		m.WAL.Appends, m.WAL.AppendedBytes, m.WAL.Fsyncs,
		m.WAL.Fsync.P50.Round(time.Microsecond), m.WAL.Checkpoints)
}
