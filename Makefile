# Tree-SVD developer targets. `make ci` is the full gate: vet, build,
# tests, and the race-detector pass over the concurrency-sensitive
# packages (the public facade and everything under internal/).

GO ?= go

.PHONY: ci vet build test race bench bench-kernels fmt

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 50x .

# Emits BENCH_KERNELS.json: ns/op, allocs/op and B/op for every hot
# linear-algebra kernel across worker budgets (see internal/linalg/bench_test.go).
bench-kernels:
	BENCH_KERNELS_OUT=$(CURDIR)/BENCH_KERNELS.json $(GO) test -run TestEmitKernelBench -v ./internal/linalg

fmt:
	gofmt -l .
