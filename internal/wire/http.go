package wire

// This file is the JSON half of the serving-layer wire schema: the DTOs
// the HTTP server marshals and the client SDK unmarshals, plus the typed
// error kinds that let the client reconstruct the facade's error family
// (*InvalidKError, *NotInSubsetError, *NodeRangeError) from an HTTP
// status + body instead of collapsing everything into "request failed".

// Error kinds carried in ErrorDTO.Kind. The client switches on these to
// rebuild typed errors; unknown kinds degrade to a generic API error, so
// adding kinds is backward compatible.
const (
	// KindInvalidK maps to *treesvd.InvalidKError (HTTP 400).
	KindInvalidK = "invalid_k"
	// KindNotInSubset maps to *treesvd.NotInSubsetError (HTTP 404).
	KindNotInSubset = "not_in_subset"
	// KindNodeRange maps to *treesvd.NodeRangeError (HTTP 400).
	KindNodeRange = "node_range"
	// KindBadRequest is a malformed query/body with no richer type (400).
	KindBadRequest = "bad_request"
	// KindInternal is a server-side failure (HTTP 500).
	KindInternal = "internal"
	// KindOverloaded maps to *treesvd.OverloadError (HTTP 503): admission
	// control shed the request; RetryAfterMs carries the backoff hint.
	KindOverloaded = "overloaded"
	// KindDegraded maps to *treesvd.DegradedError (HTTP 503): the durable
	// embedder is sealed read-only after a WAL I/O failure. Not worth
	// retrying without operator action.
	KindDegraded = "degraded"
)

// RetryAfterHeader is the sub-second companion of the standard
// Retry-After response header (which RFC 9110 limits to whole seconds):
// the server sends both on a shed, and the client prefers this one.
const RetryAfterHeader = "X-Retry-After-Ms"

// TimeoutHeader carries the caller's remaining deadline budget in
// milliseconds; the server folds it into the handler context so
// server-side work is abandoned once the caller has given up.
const TimeoutHeader = "X-Timeout-Ms"

// ErrorDTO is the JSON error body every non-2xx response carries. Error
// and Kind are always set; the remaining fields are populated per kind
// (Node/Subset for not_in_subset, K for invalid_k, Index/Node/MaxNodes
// for node_range).
type ErrorDTO struct {
	Error    string `json:"error"`
	Kind     string `json:"kind"`
	Node     int32  `json:"node,omitempty"`
	Subset   int    `json:"subset,omitempty"`
	K        int    `json:"k,omitempty"`
	Index    int    `json:"index,omitempty"`
	MaxNodes int    `json:"max_nodes,omitempty"`
	// Endpoint and RetryAfterMs accompany kind "overloaded": the gate
	// that shed the request and the server's backoff hint.
	Endpoint     string `json:"endpoint,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	// Reason accompanies kind "degraded": why the embedder sealed.
	Reason string `json:"reason,omitempty"`
}

// HealthDTO is the GET /healthz and /readyz response body. Status is
// "ok"/"ready" on 200; on a 503 from /readyz it names the condition
// ("draining", "degraded", "no snapshot") and Reason elaborates when the
// condition carries a cause.
type HealthDTO struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// VersionDTO is the GET /v1/version response: the published snapshot
// version plus the live graph/topology shape.
type VersionDTO struct {
	Version    uint64 `json:"version"`
	NumNodes   int    `json:"num_nodes"`
	NumEdges   int    `json:"num_edges"`
	SubsetSize int    `json:"subset_size"`
	Shards     int    `json:"shards"`
}

// RecDTO is one ranked recommendation in JSON form.
type RecDTO struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// RecommendDTO is the GET /v1/recommend response.
type RecommendDTO struct {
	Version         uint64   `json:"version"`
	Source          int32    `json:"source"`
	Recommendations []RecDTO `json:"recommendations"`
}

// MatrixDTO is the GET /v1/embedding and /v1/rightembedding response:
// row-major embedding rows frozen at one snapshot version. Nodes names
// the graph node each row embeds (the subset for /v1/embedding, the
// requested node(s) otherwise).
type MatrixDTO struct {
	Version uint64      `json:"version"`
	Nodes   []int32     `json:"nodes"`
	Rows    [][]float64 `json:"rows"`
}

// EventDTO is one edge event in JSON ingest form; Type is "insert" or
// "delete".
type EventDTO struct {
	U    int32  `json:"u"`
	V    int32  `json:"v"`
	Type string `json:"type"`
}

// IngestDTO is the POST /v1/events JSON request body: one batch.
type IngestDTO struct {
	Events []EventDTO `json:"events"`
}

// ApplyDTO is the POST /v1/events response: batches/events accepted,
// level-1 blocks re-factored, and the snapshot version the last batch
// published.
type ApplyDTO struct {
	Batches int    `json:"batches"`
	Events  int    `json:"events"`
	Rebuilt int    `json:"rebuilt"`
	Version uint64 `json:"version"`
}
