package eval

import (
	"math/rand"
	"sort"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
)

// LinkPredSplit is the paper's LP protocol (Section 6.1): the test set is
// 30% of the subset's outgoing edges (positives) plus an equal number of
// sampled non-edges (negatives); positives are removed from the training
// graph before embeddings are generated.
type LinkPredSplit struct {
	// TrainGraph has the positive test edges removed.
	TrainGraph *graph.Graph
	// PosU/PosV and NegU/NegV are the test pairs (subset node → any node).
	PosU, PosV []int32
	NegU, NegV []int32
}

// NewLinkPredSplit builds the protocol split from graph g and subset s.
// testFrac is the held-out fraction (the paper uses 0.3).
func NewLinkPredSplit(g *graph.Graph, s []int32, testFrac float64, seed int64) *LinkPredSplit {
	rng := rand.New(rand.NewSource(seed))
	inSubset := make(map[int32]bool, len(s))
	for _, v := range s {
		inSubset[v] = true
	}
	// Collect E_S, the outgoing edges of subset nodes.
	var eu, ev []int32
	for _, u := range s {
		for _, v := range g.OutNeighbors(u) {
			eu = append(eu, u)
			ev = append(ev, v)
		}
	}
	sp := &LinkPredSplit{TrainGraph: g.Clone()}
	// Sample testFrac of E_S as positives and remove them from the train
	// graph, skipping removals that would orphan a node's last out-edge
	// (keeps PPR well-behaved, mirroring mature-graph evaluation).
	order := rng.Perm(len(eu))
	want := int(testFrac * float64(len(eu)))
	for _, idx := range order {
		if len(sp.PosU) >= want {
			break
		}
		u, v := eu[idx], ev[idx]
		if sp.TrainGraph.OutDeg(u) <= 1 {
			continue
		}
		sp.TrainGraph.DeleteEdge(u, v)
		sp.PosU = append(sp.PosU, u)
		sp.PosV = append(sp.PosV, v)
	}
	// Negative pairs: random (s, v) that are not edges, with v drawn from
	// the *active* nodes (degree > 0). Sampling over the whole id space
	// would make isolated not-yet-arrived nodes trivial negatives (their
	// embeddings are zero), inflating precision on early snapshots of a
	// growing stream.
	var active []int32
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		if g.OutDeg(v) > 0 || g.InDeg(v) > 0 {
			active = append(active, v)
		}
	}
	for len(sp.NegU) < len(sp.PosU) {
		u := s[rng.Intn(len(s))]
		v := active[rng.Intn(len(active))]
		if u == v || g.HasEdge(u, v) {
			continue
		}
		sp.NegU = append(sp.NegU, u)
		sp.NegV = append(sp.NegV, v)
	}
	return sp
}

// Precision scores every test pair with x_u·y_v (left embedding indexed by
// subset position, right embedding indexed by node id), ranks them, labels
// the top half positive (the test set is balanced by construction), and
// returns the fraction of true positives among predicted positives.
func (sp *LinkPredSplit) Precision(left *linalg.Dense, s []int32, right *linalg.Dense) float64 {
	pos := make(map[int32]int, len(s))
	for i, v := range s {
		pos[v] = i
	}
	type scored struct {
		score float64
		label bool
	}
	all := make([]scored, 0, len(sp.PosU)+len(sp.NegU))
	score := func(u, v int32) float64 {
		return linalg.Dot(left.Row(pos[u]), right.Row(int(v)))
	}
	for i := range sp.PosU {
		all = append(all, scored{score(sp.PosU[i], sp.PosV[i]), true})
	}
	for i := range sp.NegU {
		all = append(all, scored{score(sp.NegU[i], sp.NegV[i]), false})
	}
	if len(all) == 0 {
		return 0
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score > all[b].score })
	k := len(sp.PosU)
	correct := 0
	for _, sc := range all[:k] {
		if sc.label {
			correct++
		}
	}
	return float64(correct) / float64(k)
}

// AUC computes the area under the ROC curve for the split's test pairs
// under the same scoring as Precision: the probability that a random
// positive outscores a random negative (ties count half). It is the
// threshold-free companion to the paper's precision numbers.
func (sp *LinkPredSplit) AUC(left *linalg.Dense, s []int32, right *linalg.Dense) float64 {
	pos := make(map[int32]int, len(s))
	for i, v := range s {
		pos[v] = i
	}
	score := func(u, v int32) float64 {
		return linalg.Dot(left.Row(pos[u]), right.Row(int(v)))
	}
	posScores := make([]float64, len(sp.PosU))
	for i := range sp.PosU {
		posScores[i] = score(sp.PosU[i], sp.PosV[i])
	}
	negScores := make([]float64, len(sp.NegU))
	for i := range sp.NegU {
		negScores[i] = score(sp.NegU[i], sp.NegV[i])
	}
	return rankAUC(posScores, negScores)
}

// rankAUC computes AUC from score slices via rank statistics in
// O((p+n)·log(p+n)).
func rankAUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return 0
	}
	type scored struct {
		v   float64
		pos bool
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, scored{v, true})
	}
	for _, v := range neg {
		all = append(all, scored{v, false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v < all[b].v })
	// Sum of positive ranks with midranks for ties.
	var rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank of the tie group
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += mid
			}
		}
		i = j
	}
	p, n := float64(len(pos)), float64(len(neg))
	return (rankSum - p*(p+1)/2) / (p * n)
}

// PrecisionSameSpace scores pairs within a single shared embedding space
// (methods like RandNE and DynPPE have no distinct right factor): the
// score of (u,v) is emb_u·emb_v with both rows indexed by node id.
func (sp *LinkPredSplit) PrecisionSameSpace(emb *linalg.Dense) float64 {
	type scored struct {
		score float64
		label bool
	}
	all := make([]scored, 0, len(sp.PosU)+len(sp.NegU))
	for i := range sp.PosU {
		all = append(all, scored{linalg.Dot(emb.Row(int(sp.PosU[i])), emb.Row(int(sp.PosV[i]))), true})
	}
	for i := range sp.NegU {
		all = append(all, scored{linalg.Dot(emb.Row(int(sp.NegU[i])), emb.Row(int(sp.NegV[i]))), false})
	}
	if len(all) == 0 {
		return 0
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score > all[b].score })
	k := len(sp.PosU)
	correct := 0
	for _, sc := range all[:k] {
		if sc.label {
			correct++
		}
	}
	return float64(correct) / float64(k)
}
