package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%50) + 1
		w := int(seed%7) + 1
		seen := make([]int32, n)
		For(n, w, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForSingleWorkerOrdered(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatal("single-worker For not sequential")
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) != GOMAXPROCS")
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-3) != GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}

func TestForParallelActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core machine")
	}
	var concurrent, peak int32
	For(64, 8, func(int) {
		c := atomic.AddInt32(&concurrent, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&concurrent, -1)
	})
	if peak < 2 {
		t.Skip("no observed concurrency (scheduler-dependent)")
	}
}

func TestForWorkerCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%40) + 1
		w := int(seed%5) + 1
		seen := make([]int32, n)
		workers := make([]int32, n)
		ForWorker(n, w, func(worker, i int) {
			atomic.AddInt32(&seen[i], 1)
			atomic.StoreInt32(&workers[i], int32(worker))
		})
		resolved := Workers(w)
		if resolved > n {
			resolved = n
		}
		for i, c := range seen {
			if c != 1 {
				return false
			}
			if int(workers[i]) >= resolved && resolved > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForWorkerSequentialIsWorkerZero(t *testing.T) {
	ForWorker(8, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("sequential ForWorker used worker %d", worker)
		}
	})
	ForWorker(0, 4, func(worker, i int) { t.Fatal("fn called for n=0") })
}

func TestForWorkerStableIDsWithinCall(t *testing.T) {
	// Worker ids must stay in range even when w exceeds n.
	ForWorker(3, 16, func(worker, i int) {
		if worker < 0 || worker >= 3 {
			t.Fatalf("worker id %d out of range for n=3", worker)
		}
	})
}
