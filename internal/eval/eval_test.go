package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
)

func TestMicroF1(t *testing.T) {
	if got := MicroF1([]int{1, 2, 3}, []int{1, 2, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("MicroF1 = %g, want 2/3", got)
	}
	if MicroF1(nil, nil) != 0 {
		t.Fatal("empty MicroF1 not 0")
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	if got := MacroF1([]int{0, 1, 2}, []int{0, 1, 2}, 3); got != 1 {
		t.Fatalf("perfect MacroF1 = %g", got)
	}
	if got := MacroF1([]int{1, 2, 0}, []int{0, 1, 2}, 3); got != 0 {
		t.Fatalf("all-wrong MacroF1 = %g", got)
	}
}

func TestMacroF1IgnoresAbsentClasses(t *testing.T) {
	// Class 2 never appears in the truth: only classes 0,1 averaged.
	got := MacroF1([]int{0, 1}, []int{0, 1}, 3)
	if got != 1 {
		t.Fatalf("MacroF1 with absent class = %g, want 1", got)
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test := TrainTestSplit(10, 0.5, 1)
	if len(train) != 5 || len(test) != 5 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatal("duplicate index in split")
		}
		seen[i] = true
	}
	// Deterministic.
	tr2, _ := TrainTestSplit(10, 0.5, 1)
	for i := range train {
		if train[i] != tr2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestTrainTestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		ratio := rng.Float64()
		train, test := TrainTestSplit(n, ratio, seed)
		return len(train)+len(test) == n && len(train) == int(math.Ceil(ratio*float64(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogRegSeparable(t *testing.T) {
	// Two well-separated Gaussian blobs must be classified near-perfectly.
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := linalg.NewDense(n, 4)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		mean := -2.0
		if c == 1 {
			mean = 2
		}
		for j := 0; j < 4; j++ {
			x.Set(i, j, mean+0.5*rng.NormFloat64())
		}
	}
	micro, macro := Classify(x, y, 2, 0.5, DefaultLogRegConfig())
	if micro < 0.95 || macro < 0.95 {
		t.Fatalf("separable blobs: micro %g macro %g", micro, macro)
	}
}

func TestLogRegMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, classes := 300, 3
	x := linalg.NewDense(n, 3)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		for j := 0; j < 3; j++ {
			v := 0.4 * rng.NormFloat64()
			if j == c {
				v += 3
			}
			x.Set(i, j, v)
		}
	}
	micro, _ := Classify(x, y, classes, 0.7, DefaultLogRegConfig())
	if micro < 0.9 {
		t.Fatalf("one-hot-ish classes: micro %g", micro)
	}
}

func TestLogRegChanceOnNoise(t *testing.T) {
	// Pure noise: accuracy should hover near 1/classes, far from 1.
	rng := rand.New(rand.NewSource(4))
	n := 400
	x := linalg.NewDense(n, 5)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = rng.Intn(4)
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	micro, _ := Classify(x, y, 4, 0.5, DefaultLogRegConfig())
	if micro > 0.45 {
		t.Fatalf("noise classified at %g — leakage?", micro)
	}
}

func buildLPGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for v := int32(0); int(v) < n; v++ {
		for g.OutDeg(v) < 4 {
			u := int32(rng.Intn(n))
			if u != v {
				g.InsertEdge(v, u)
			}
		}
	}
	return g
}

func TestLinkPredSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := buildLPGraph(rng, 40)
	s := []int32{0, 1, 2, 3, 4}
	sp := NewLinkPredSplit(g, s, 0.3, 7)
	if len(sp.PosU) == 0 {
		t.Fatal("no positive test edges sampled")
	}
	if len(sp.PosU) != len(sp.NegU) {
		t.Fatalf("unbalanced test set: %d pos vs %d neg", len(sp.PosU), len(sp.NegU))
	}
	for i := range sp.PosU {
		if sp.TrainGraph.HasEdge(sp.PosU[i], sp.PosV[i]) {
			t.Fatal("positive edge still in train graph")
		}
		if !g.HasEdge(sp.PosU[i], sp.PosV[i]) {
			t.Fatal("positive edge not in the original graph")
		}
	}
	for i := range sp.NegU {
		if g.HasEdge(sp.NegU[i], sp.NegV[i]) {
			t.Fatal("negative pair is an actual edge")
		}
	}
	// No node loses its last out-edge.
	for v := int32(0); int(v) < 40; v++ {
		if g.OutDeg(v) > 0 && sp.TrainGraph.OutDeg(v) == 0 {
			t.Fatalf("node %d orphaned by split", v)
		}
	}
}

func TestLinkPredPrecisionOracle(t *testing.T) {
	// An oracle embedding that scores positives above negatives must get
	// precision 1; an inverted oracle gets 0.
	rng := rand.New(rand.NewSource(6))
	g := buildLPGraph(rng, 30)
	s := []int32{0, 1, 2}
	sp := NewLinkPredSplit(g, s, 0.3, 3)

	// Build left/right factors realizing an arbitrary score function via
	// 1-d embeddings: left row = 1, right row = desired score.
	left := linalg.NewDense(len(s), 1)
	for i := range s {
		left.Set(i, 0, 1)
	}
	right := linalg.NewDense(30, 1)
	posSet := map[int64]bool{}
	for i := range sp.PosU {
		posSet[int64(sp.PosU[i])<<32|int64(sp.PosV[i])] = true
	}
	// Score v high iff it appears as a positive target (ties possible if
	// a node is both a positive and a negative target; craft scores so
	// positives dominate).
	for i := range sp.PosV {
		right.Set(int(sp.PosV[i]), 0, 10)
	}
	for i := range sp.NegV {
		if !isPosTarget(sp, sp.NegV[i]) {
			right.Set(int(sp.NegV[i]), 0, -10)
		}
	}
	// Collisions (a node that is both pos and neg target) break a perfect
	// oracle; only assert perfection when there are none.
	collision := false
	for i := range sp.NegV {
		if isPosTarget(sp, sp.NegV[i]) {
			collision = true
		}
	}
	p := sp.Precision(left, s, right)
	if !collision && p != 1 {
		t.Fatalf("oracle precision %g, want 1", p)
	}
	if collision && p < 0.8 {
		t.Fatalf("oracle-with-collisions precision %g", p)
	}
}

func isPosTarget(sp *LinkPredSplit, v int32) bool {
	for _, pv := range sp.PosV {
		if pv == v {
			return true
		}
	}
	return false
}

func TestLinkPredPrecisionRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := buildLPGraph(rng, 60)
	s := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sp := NewLinkPredSplit(g, s, 0.3, 9)
	left := linalg.NewDense(len(s), 4)
	right := linalg.NewDense(60, 4)
	for i := range left.Data {
		left.Data[i] = rng.NormFloat64()
	}
	for i := range right.Data {
		right.Data[i] = rng.NormFloat64()
	}
	p := sp.Precision(left, s, right)
	if p < 0.15 || p > 0.85 {
		t.Fatalf("random embedding precision %g, expected near 0.5", p)
	}
}

func TestPrecisionSameSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := buildLPGraph(rng, 30)
	s := []int32{0, 1, 2}
	sp := NewLinkPredSplit(g, s, 0.3, 3)
	emb := linalg.NewDense(30, 3)
	for i := range emb.Data {
		emb.Data[i] = rng.NormFloat64()
	}
	p := sp.PrecisionSameSpace(emb)
	if p < 0 || p > 1 {
		t.Fatalf("precision out of range: %g", p)
	}
}

func TestRankAUC(t *testing.T) {
	// Perfect separation → 1; inverted → 0; identical → 0.5 (all ties).
	if got := rankAUC([]float64{3, 4}, []float64{1, 2}); got != 1 {
		t.Fatalf("perfect AUC = %g", got)
	}
	if got := rankAUC([]float64{1, 2}, []float64{3, 4}); got != 0 {
		t.Fatalf("inverted AUC = %g", got)
	}
	if got := rankAUC([]float64{1, 1}, []float64{1, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("all-ties AUC = %g", got)
	}
	// Hand-computed mix: pos {2,4}, neg {1,3}: pairs (2>1),(2<3),(4>1),(4>3) → 3/4.
	if got := rankAUC([]float64{2, 4}, []float64{1, 3}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("mixed AUC = %g, want 0.75", got)
	}
	if rankAUC(nil, []float64{1}) != 0 {
		t.Fatal("empty pos AUC not 0")
	}
}

func TestRankAUCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		pos := make([]float64, p)
		neg := make([]float64, n)
		for i := range pos {
			pos[i] = float64(rng.Intn(8)) // small range to force ties
		}
		for i := range neg {
			neg[i] = float64(rng.Intn(8))
		}
		var wins float64
		for _, a := range pos {
			for _, b := range neg {
				if a > b {
					wins++
				} else if a == b {
					wins += 0.5
				}
			}
		}
		want := wins / float64(p*n)
		return math.Abs(rankAUC(pos, neg)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := buildLPGraph(rng, 30)
	s := []int32{0, 1, 2}
	sp := NewLinkPredSplit(g, s, 0.3, 3)
	left := linalg.NewDense(len(s), 1)
	for i := range s {
		left.Set(i, 0, 1)
	}
	right := linalg.NewDense(30, 1)
	for i := range sp.PosV {
		right.Set(int(sp.PosV[i]), 0, 10)
	}
	collision := false
	for i := range sp.NegV {
		if isPosTarget(sp, sp.NegV[i]) {
			collision = true
		} else {
			right.Set(int(sp.NegV[i]), 0, -10)
		}
	}
	auc := sp.AUC(left, s, right)
	if !collision && auc != 1 {
		t.Fatalf("oracle AUC %g, want 1", auc)
	}
	// With pos/neg target collisions the tiny test set ties at the top;
	// anything clearly above chance is correct behavior.
	if auc < 0.6 {
		t.Fatalf("oracle AUC %g too low", auc)
	}
}
