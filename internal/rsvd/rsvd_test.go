package rsvd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// lowRankCSR builds a sparse-ish matrix with an exact low-rank core plus
// small noise, the regime randomized SVD is designed for.
func lowRankCSR(rng *rand.Rand, rows, cols, rank int, noise float64) *sparse.CSR {
	u := GaussianDense(rng, rows, rank)
	v := GaussianDense(rng, cols, rank)
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			val := linalg.Dot(u.Row(i), v.Row(j))
			if noise > 0 {
				val += noise * rng.NormFloat64()
			}
			// Sparsify noisy matrices: keep large entries plus a random
			// sample. Noise-free matrices must stay exactly low-rank, so
			// keep everything.
			if noise == 0 || math.Abs(val) > 0.5 || rng.Float64() < 0.3 {
				b.Add(i, j, val)
			}
		}
	}
	return b.Build()
}

func relErr(approx *linalg.SVDResult, a *sparse.CSR, d int) (got, best float64) {
	dense := a.ToDense()
	rec := approx.Reconstruct()
	got = linalg.Sub(rec, dense).FrobNorm()
	exact := linalg.SVDTrunc(dense, d)
	best = linalg.Sub(exact.Reconstruct(), dense).FrobNorm()
	return got, best
}

func TestSparseRecoversExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := lowRankCSR(rng, 20, 60, 3, 0)
	res := mustSVD(Sparse(a, Options{Rank: 3, Seed: 7}))
	got, _ := relErr(res, a, 3)
	if got > 1e-6*a.FrobNorm() {
		t.Fatalf("exact rank-3 matrix: residual %g", got)
	}
}

func TestSparseNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := lowRankCSR(rng, 30, 80, 5, 0.05)
	res := mustSVD(Sparse(a, Options{Rank: 5, Seed: 3, PowerIters: 2}))
	got, best := relErr(res, a, 5)
	if got > 1.2*best+1e-12 {
		t.Fatalf("residual %g > 1.2× optimal %g", got, best)
	}
}

func TestSparseOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := lowRankCSR(rng, 15, 40, 4, 0.1)
	res := mustSVD(Sparse(a, Options{Rank: 4, Seed: 5}))
	gu := linalg.Gram(res.U)
	if d := linalg.MaxAbsDiff(gu, linalg.Identity(res.U.Cols)); d > 1e-8 {
		t.Fatalf("U not orthonormal: %g", d)
	}
	gv := linalg.Gram(res.V)
	if d := linalg.MaxAbsDiff(gv, linalg.Identity(res.V.Cols)); d > 1e-8 {
		t.Fatalf("V not orthonormal: %g", d)
	}
}

func TestSparseDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := lowRankCSR(rng, 12, 30, 3, 0.1)
	r1 := mustSVD(Sparse(a, Options{Rank: 3, Seed: 42}))
	r2 := mustSVD(Sparse(a, Options{Rank: 3, Seed: 42}))
	if d := linalg.MaxAbsDiff(r1.U, r2.U); d != 0 {
		t.Fatalf("same seed, different U: %g", d)
	}
}

func TestSparseRankClamp(t *testing.T) {
	// Rank larger than matrix dimensions must not panic and must return
	// at most min(rows, cols) triplets.
	rng := rand.New(rand.NewSource(5))
	a := lowRankCSR(rng, 5, 9, 2, 0.1)
	res := mustSVD(Sparse(a, Options{Rank: 20, Seed: 1}))
	if res.Rank() > 5 {
		t.Fatalf("rank %d > min dimension 5", res.Rank())
	}
}

func TestSparseEmptyMatrix(t *testing.T) {
	a := sparse.NewBuilder(4, 10).Build()
	res := mustSVD(Sparse(a, Options{Rank: 3, Seed: 1}))
	if res.Rank() != 0 {
		t.Fatalf("empty matrix rank %d", res.Rank())
	}
}

func TestDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := lowRankCSR(rng, 18, 35, 4, 0.05)
	rs := mustSVD(Sparse(a, Options{Rank: 4, Seed: 9, PowerIters: 2}))
	rd := mustSVD(Dense(a.ToDense(), Options{Rank: 4, Seed: 9, PowerIters: 2}))
	// Same seed, same algorithm → identical sketches → identical results.
	if d := linalg.MaxAbsDiff(rs.Reconstruct(), rd.Reconstruct()); d > 1e-9 {
		t.Fatalf("dense/sparse paths diverge: %g", d)
	}
}

func TestCountSketchApplyRight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := lowRankCSR(rng, 8, 20, 2, 0.1)
	cs := NewCountSketch(rng, 6, 20)
	got := cs.ApplyRight(a)
	// Materialize S densely and compare A·Sᵀ.
	s := linalg.NewDense(6, 20)
	for j := 0; j < 20; j++ {
		s.Set(int(cs.row[j]), j, float64(cs.sign[j]))
	}
	want := linalg.MulT(a.ToDense(), s)
	if d := linalg.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("ApplyRight mismatch %g", d)
	}
}

func TestSparseCWNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := lowRankCSR(rng, 25, 90, 4, 0.05)
	res := mustSVD(SparseCW(a, Options{Rank: 4, Seed: 11, PowerIters: 2}))
	got, best := relErr(res, a, 4)
	if got > 1.3*best+1e-12 {
		t.Fatalf("count-sketch residual %g > 1.3× optimal %g", got, best)
	}
}

func TestFRPCANearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := lowRankCSR(rng, 30, 100, 6, 0.05)
	res := mustSVD(FRPCA(a, Options{Rank: 6, Seed: 13}))
	got, best := relErr(res, a, 6)
	if got > 1.1*best+1e-12 {
		t.Fatalf("FRPCA residual %g > 1.1× optimal %g", got, best)
	}
}

func TestPowerItersImproveAccuracy(t *testing.T) {
	// With a slowly decaying spectrum, more power iterations must not make
	// the approximation worse (allowing tiny noise slack).
	rng := rand.New(rand.NewSource(10))
	a := lowRankCSR(rng, 30, 120, 10, 0.3)
	r0 := mustSVD(Sparse(a, Options{Rank: 4, Seed: 21, PowerIters: 0}))
	r3 := mustSVD(Sparse(a, Options{Rank: 4, Seed: 21, PowerIters: 3}))
	e0, _ := relErr(r0, a, 4)
	e3, _ := relErr(r3, a, 4)
	if e3 > e0*1.01 {
		t.Fatalf("power iterations hurt: e0=%g e3=%g", e0, e3)
	}
}
