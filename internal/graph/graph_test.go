package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertDelete(t *testing.T) {
	g := New(3)
	if !g.InsertEdge(0, 1) {
		t.Fatal("insert failed")
	}
	if g.InsertEdge(0, 1) {
		t.Fatal("duplicate insert accepted")
	}
	if g.NumEdges() != 1 || g.OutDeg(0) != 1 || g.InDeg(1) != 1 {
		t.Fatal("degree bookkeeping wrong after insert")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong (directedness)")
	}
	if !g.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if g.DeleteEdge(0, 1) {
		t.Fatal("double delete accepted")
	}
	if g.NumEdges() != 0 || g.OutDeg(0) != 0 || g.InDeg(1) != 0 {
		t.Fatal("degree bookkeeping wrong after delete")
	}
}

func TestEnsureNodeGrowth(t *testing.T) {
	g := New(0)
	g.InsertEdge(5, 2)
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	if !g.InsertEdge(1, 1) {
		t.Fatal("self loop rejected")
	}
	if g.OutDeg(1) != 1 || g.InDeg(1) != 1 {
		t.Fatal("self loop degrees wrong")
	}
}

func TestInOutConsistency(t *testing.T) {
	// Property: after random churn, in-adjacency is exactly the transpose
	// of out-adjacency and both match the edge set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		type pair struct{ u, v int32 }
		live := map[pair]bool{}
		for step := 0; step < 300; step++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Float64() < 0.7 {
				if g.InsertEdge(u, v) != !live[pair{u, v}] {
					return false
				}
				live[pair{u, v}] = true
			} else {
				if g.DeleteEdge(u, v) != live[pair{u, v}] {
					return false
				}
				delete(live, pair{u, v})
			}
		}
		if g.NumEdges() != len(live) {
			return false
		}
		outCount := 0
		for u := int32(0); int(u) < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				if !live[pair{u, v}] {
					return false
				}
				outCount++
			}
			for _, w := range g.InNeighbors(u) {
				if !live[pair{w, u}] {
					return false
				}
			}
		}
		return outCount == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionAccessors(t *testing.T) {
	g := New(3)
	g.InsertEdge(0, 1)
	g.InsertEdge(2, 1)
	if got := g.Neighbors(0, Forward); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Forward neighbors of 0 = %v", got)
	}
	if got := g.Neighbors(1, Reverse); len(got) != 2 {
		t.Fatalf("Reverse neighbors of 1 = %v", got)
	}
	if g.Degree(1, Reverse) != 2 || g.Degree(1, Forward) != 0 {
		t.Fatal("Degree accessor wrong")
	}
}

func TestClone(t *testing.T) {
	g := New(4)
	g.InsertEdge(0, 1)
	g.InsertEdge(1, 2)
	c := g.Clone()
	c.DeleteEdge(0, 1)
	c.InsertEdge(3, 0)
	if !g.HasEdge(0, 1) || g.HasEdge(3, 0) {
		t.Fatal("clone not independent")
	}
	if g.NumEdges() != 2 || c.NumEdges() != 2 {
		t.Fatal("clone edge counts wrong")
	}
}

func TestApplyEvents(t *testing.T) {
	g := New(3)
	n := g.ApplyAll([]Event{
		{U: 0, V: 1, Type: Insert},
		{U: 0, V: 1, Type: Insert}, // duplicate: no-op
		{U: 1, V: 2, Type: Insert},
		{U: 0, V: 1, Type: Delete},
	})
	if n != 3 {
		t.Fatalf("effective events = %d, want 3", n)
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("event application wrong")
	}
}

func TestStreamSnapshots(t *testing.T) {
	s := &Stream{
		Events: []Event{
			{U: 0, V: 1, Type: Insert},
			{U: 1, V: 2, Type: Insert},
			{U: 0, V: 1, Type: Delete},
		},
		Ends:     []int{2, 3},
		NumNodes: 3,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g1 := s.BuildSnapshot(1)
	if g1.NumEdges() != 2 {
		t.Fatalf("snapshot 1 edges = %d, want 2", g1.NumEdges())
	}
	g2 := s.BuildSnapshot(2)
	if g2.NumEdges() != 1 || g2.HasEdge(0, 1) {
		t.Fatal("snapshot 2 wrong")
	}
	d2 := s.SnapshotEvents(2)
	if len(d2) != 1 || d2[0].Type != Delete {
		t.Fatalf("Δ² = %v", d2)
	}
}

func TestStreamValidateRejectsBadEnds(t *testing.T) {
	s := &Stream{Events: make([]Event, 2), Ends: []int{2, 1}, NumNodes: 1}
	if s.Validate() == nil {
		t.Fatal("decreasing Ends accepted")
	}
	s = &Stream{Events: make([]Event, 1), Ends: []int{5}, NumNodes: 1}
	if s.Validate() == nil {
		t.Fatal("Ends beyond events accepted")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := &Stream{NumNodes: 50}
	for i := 0; i < 200; i++ {
		typ := Insert
		if rng.Float64() < 0.2 {
			typ = Delete
		}
		s.Events = append(s.Events, Event{U: int32(rng.Intn(50)), V: int32(rng.Intn(50)), Type: typ})
	}
	s.Ends = []int{50, 120, 200}
	var buf bytes.Buffer
	if err := s.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != s.NumNodes || len(got.Events) != len(s.Events) || len(got.Ends) != len(s.Ends) {
		t.Fatal("round trip shape mismatch")
	}
	for i := range s.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d mismatch: %v vs %v", i, got.Events[i], s.Events[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"0 1 *\n",
		"0 one +\n",
		"0 1\n",
	} {
		if _, err := ReadEvents(bytes.NewBufferString("# nodes 5 snapshots 0\n" + bad)); err == nil {
			t.Fatalf("accepted garbage %q", bad)
		}
	}
}

func TestStreamAccessorsEdgeCases(t *testing.T) {
	s := &Stream{
		Events:   []Event{{U: 0, V: 1, Type: Insert}},
		Ends:     []int{1},
		NumNodes: 2,
	}
	if s.NumSnapshots() != 1 {
		t.Fatalf("NumSnapshots = %d", s.NumSnapshots())
	}
	// BuildSnapshot(0) is the empty graph G⁰ of Definition 2.1.
	if g := s.BuildSnapshot(0); g.NumEdges() != 0 {
		t.Fatal("snapshot 0 not empty")
	}
	// Out-of-range snapshot index must panic, not silently truncate.
	defer func() {
		if recover() == nil {
			t.Fatal("SnapshotEvents(2) did not panic")
		}
	}()
	s.SnapshotEvents(2)
}

func TestInsertEdgeRejectsNegative(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative node id accepted")
		}
	}()
	g.InsertEdge(-1, 0)
}

func TestValidateRejectsOutOfRangeEvent(t *testing.T) {
	s := &Stream{Events: []Event{{U: 5, V: 0, Type: Insert}}, Ends: []int{1}, NumNodes: 3}
	if s.Validate() == nil {
		t.Fatal("event beyond NumNodes accepted")
	}
	s2 := &Stream{Events: []Event{{U: -1, V: 0, Type: Insert}}, Ends: []int{1}, NumNodes: 3}
	if s2.Validate() == nil {
		t.Fatal("negative node id in event accepted")
	}
}

func TestReadEventsBadHeaderAndEnd(t *testing.T) {
	if _, err := ReadEvents(bytes.NewBufferString("# nodes x snapshots y\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadEvents(bytes.NewBufferString("# nodes 3 snapshots 1\nend notanumber\n")); err == nil {
		t.Fatal("bad end accepted")
	}
}
