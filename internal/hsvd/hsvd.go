// Package hsvd implements the hierarchical SVD of Iwen & Ong ("A
// distributed and incremental SVD algorithm for agglomerative data
// analysis on large networks", SIMAX 2016): split the input matrix into b
// column blocks, take an *exact* truncated SVD of every block, concatenate
// the U·Σ results in groups of k, and recurse. It is the method Tree-SVD
// improves on — identical tree structure, but an exact (slow) SVD at level
// 1 instead of a sparse randomized one — and serves as the Exp. 2 / Fig. 11
// competitor.
package hsvd

import (
	"fmt"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Config mirrors Tree-SVD's tree shape.
type Config struct {
	// Rank d of every truncated SVD and of the final embedding.
	Rank int
	// Blocks is the number b of level-1 column blocks.
	Blocks int
	// Branch is the merge fan-in k; b/k blocks remain after each level.
	Branch int
	// Workers is the worker budget (0 or 1 = sequential), split across the
	// level-1 blocks and the merge sweep exactly like core.Factorize's.
	Workers int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("hsvd: rank %d must be positive", c.Rank)
	}
	if c.Blocks <= 0 {
		return fmt.Errorf("hsvd: blocks %d must be positive", c.Blocks)
	}
	if c.Branch < 2 {
		return fmt.Errorf("hsvd: branch %d must be ≥ 2", c.Branch)
	}
	return nil
}

// Factorize runs hierarchical SVD over a sparse matrix and returns the
// final d-rank truncated SVD result (U and Σ; V is the small right-factor
// of the last merge, not the full-width right singular matrix).
func Factorize(m *sparse.CSR, cfg Config) *linalg.SVDResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nb := cfg.Blocks
	if nb > m.Cols {
		nb = m.Cols
	}
	width := (m.Cols + nb - 1) / nb
	nb = (m.Cols + width - 1) / width
	// Level 1: exact truncated SVD per column block.
	w := par.Workers(cfg.Workers)
	kb := splitBudget(w, nb)
	level := make([]*linalg.Dense, nb)
	par.For(nb, w, func(j int) {
		lo := j * width
		hi := lo + width
		if hi > m.Cols {
			hi = m.Cols
		}
		blk := m.SliceColsCSR(lo, hi).ToDense()
		level[j] = linalg.SVDTruncW(blk, cfg.Rank, kb).US()
	})
	level1SVDs.Add(uint64(nb))
	return mergeLevels(level, cfg)
}

// FactorizeDense is Factorize for a dense input (tests and Exp. 2 feeds).
func FactorizeDense(m *linalg.Dense, cfg Config) *linalg.SVDResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nb := cfg.Blocks
	if nb > m.Cols {
		nb = m.Cols
	}
	width := (m.Cols + nb - 1) / nb
	nb = (m.Cols + width - 1) / width
	w := par.Workers(cfg.Workers)
	kb := splitBudget(w, nb)
	level := make([]*linalg.Dense, nb)
	par.For(nb, w, func(j int) {
		lo := j * width
		hi := lo + width
		if hi > m.Cols {
			hi = m.Cols
		}
		level[j] = linalg.SVDTruncW(m.SliceCols(lo, hi), cfg.Rank, kb).US()
	})
	level1SVDs.Add(uint64(nb))
	return mergeLevels(level, cfg)
}

// splitBudget divides the worker budget across concurrent tasks via the
// shared resolver in internal/par (fan-out workers × kernel workers ≈
// budget; see par.SplitBudget for the composition contract).
func splitBudget(w, tasks int) int {
	return par.SplitBudget(w, tasks)
}

// mergeLevels repeatedly concatenates groups of k compressed blocks and
// re-factors them until one matrix remains, returning its truncated SVD.
// Each level's merges fan out across the worker budget; the final merge is
// a single task and runs its SVD with the whole budget.
func mergeLevels(level []*linalg.Dense, cfg Config) *linalg.SVDResult {
	w := par.Workers(cfg.Workers)
	for len(level) > 1 {
		parents := (len(level) + cfg.Branch - 1) / cfg.Branch
		mb := splitBudget(w, parents)
		mergeSVDs.Add(uint64(parents))
		if parents == 1 {
			// Final merge: return the full truncated result.
			return linalg.SVDTruncW(linalg.HCat(level...), cfg.Rank, w)
		}
		next := make([]*linalg.Dense, parents)
		lv := level
		par.For(parents, w, func(pi int) {
			lo := pi * cfg.Branch
			hi := lo + cfg.Branch
			if hi > len(lv) {
				hi = len(lv)
			}
			next[pi] = linalg.SVDTruncW(linalg.HCat(lv[lo:hi]...), cfg.Rank, mb).US()
		})
		level = next
	}
	// Single block: its SVD is the answer.
	mergeSVDs.Inc()
	return linalg.SVDTruncW(level[0], cfg.Rank, w)
}

// Embedding runs Factorize and applies the X = U√Σ convention.
func Embedding(m *sparse.CSR, cfg Config) *linalg.Dense {
	return Factorize(m, cfg).USqrtS()
}
