package sparse

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/par"
)

// Sparse×dense product kernels, in the same two flavors as the dense
// kernels in internal/linalg: the historical serial entry points
// (MulDense, TMulDense, DenseLeftMul) are workers=1 calls into the
// worker-budgeted W variants, so there is a single code path.
//
// MulDenseW and DenseLeftMulW partition their *output* rows, so each
// element is produced by exactly one worker with a fixed reduction order
// — bit-identical for every worker count, like the dense kernels.
// TMulDenseW is the one scatter-shaped product (output rows are indexed
// by column ids of the sparse operand); it uses per-worker partial
// outputs reduced in worker order, so its result varies with the worker
// count by O(ε) rounding. That is the single documented bit-stability
// exemption of the kernel layer (see DESIGN.md); embeddings are compared
// by tolerance, never bit-for-bit.

// spMinFlops gates goroutine dispatch, like linalg's parMinFlops. It is a
// variable only so tests can lower it to drive the parallel paths on
// small matrices; production code treats it as const.
var spMinFlops = 1 << 18

// spMaxPartialFloats caps the pooled partial-output scratch of
// TMulDenseW (floats, so 64 MB): the worker count is lowered until the
// extra buffers fit.
const spMaxPartialFloats = 1 << 23

// axpyRow computes dst += a·x elementwise, 4× unrolled with per-element
// order matching the naive loop.
func axpyRow(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+3 < len(dst); i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// MulDense returns m·b for a dense b (Cols×k). Cost O(nnz·k).
func (m *CSR) MulDense(b *linalg.Dense) *linalg.Dense { return m.MulDenseW(b, 1) }

// MulDenseW is MulDense with a worker budget over output-row panels.
// The result is identical for every worker count.
func (m *CSR) MulDenseW(b *linalg.Dense, workers int) *linalg.Dense {
	if b.Rows != m.Cols {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := linalg.NewDense(m.Rows, b.Cols)
	w := par.Workers(workers)
	if 2*m.NNZ()*b.Cols < spMinFlops {
		w = 1
	}
	par.ForChunks(m.Rows, w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				axpyRow(orow, m.Val[p], b.Row(int(m.ColIdx[p])))
			}
		}
	})
	return out
}

// TMulDense returns mᵀ·b for a dense b (Rows×k), i.e. a (Cols×k) result.
// Cost O(nnz·k).
func (m *CSR) TMulDense(b *linalg.Dense) *linalg.Dense { return m.TMulDenseW(b, 1) }

// TMulDenseW is TMulDense with a worker budget. Workers process
// nnz-balanced contiguous stripes of input rows into private partial
// outputs (pooled; worker 0 writes the result directly), which are then
// summed in worker order. Deterministic for a fixed worker count; across
// worker counts the summation order differs, so results agree only to
// rounding — the kernel layer's one bit-stability exemption.
func (m *CSR) TMulDenseW(b *linalg.Dense, workers int) *linalg.Dense {
	if b.Rows != m.Rows {
		panic(fmt.Sprintf("sparse: TMulDense shape mismatch (%d×%d)ᵀ · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := linalg.NewDense(m.Cols, b.Cols)
	k := b.Cols
	w := par.Workers(workers)
	if w > m.Rows {
		w = m.Rows
	}
	for w > 1 && (w-1)*m.Cols*k > spMaxPartialFloats {
		w--
	}
	if w <= 1 || 2*m.NNZ()*k < spMinFlops {
		m.tMulDenseStripe(out, b, 0, m.Rows)
		return out
	}
	// nnz-balanced static row stripes: stripe g covers the rows whose
	// entry offsets fall in [g·nnz/w, (g+1)·nnz/w).
	bounds := make([]int, w+1)
	bounds[w] = m.Rows
	for g := 1; g < w; g++ {
		target := int32(g * m.NNZ() / w)
		bounds[g] = sort.Search(m.Rows, func(r int) bool { return m.RowPtr[r] >= target })
		if bounds[g] < bounds[g-1] {
			bounds[g] = bounds[g-1]
		}
	}
	partials := make([]*linalg.Dense, w)
	partials[0] = out
	for g := 1; g < w; g++ {
		partials[g] = linalg.GetDense(m.Cols, k)
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			m.tMulDenseStripe(partials[g], b, bounds[g], bounds[g+1])
		}(g)
	}
	wg.Wait()
	// Reduce in worker order, parallel over output-row panels.
	par.ForChunks(m.Cols, w, func(lo, hi int) {
		for g := 1; g < w; g++ {
			p := partials[g]
			for i := lo; i < hi; i++ {
				axpyRow(out.Row(i), 1, p.Row(i))
			}
		}
	})
	for g := 1; g < w; g++ {
		linalg.PutDense(partials[g])
	}
	return out
}

// tMulDenseStripe accumulates mᵀ[·, rlo:rhi]·b[rlo:rhi] into out.
func (m *CSR) tMulDenseStripe(out, b *linalg.Dense, rlo, rhi int) {
	for i := rlo; i < rhi; i++ {
		brow := b.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			axpyRow(out.Row(int(m.ColIdx[p])), m.Val[p], brow)
		}
	}
}

// DenseLeftMul returns b·m for a dense b (k×Rows), i.e. a (k×Cols) result.
func (m *CSR) DenseLeftMul(b *linalg.Dense) *linalg.Dense { return m.DenseLeftMulW(b, 1) }

// DenseLeftMulW is DenseLeftMul with a worker budget over output-row
// panels (rows of b). The result is identical for every worker count.
func (m *CSR) DenseLeftMulW(b *linalg.Dense, workers int) *linalg.Dense {
	if b.Cols != m.Rows {
		panic(fmt.Sprintf("sparse: DenseLeftMul shape mismatch %d×%d · %d×%d", b.Rows, b.Cols, m.Rows, m.Cols))
	}
	out := linalg.NewDense(b.Rows, m.Cols)
	w := par.Workers(workers)
	if 2*b.Rows*m.NNZ() < spMinFlops {
		w = 1
	}
	par.ForChunks(b.Rows, w, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			brow := b.Row(r)
			orow := out.Row(r)
			for i, bv := range brow {
				if bv == 0 {
					continue
				}
				for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
					orow[m.ColIdx[p]] += bv * m.Val[p]
				}
			}
		}
	})
	return out
}
