package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/tree-svd/treesvd/internal/wal"
)

// workload runs a fixed op sequence through fs: create two files, write
// and sync them, rename one, remove the other. Returns the first injected
// error (nil when the plan never fired on it).
func workload(dir string, fs *FS) error {
	a, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		return err
	}
	if _, err := a.Write([]byte("aaaaaaaaaa")); err != nil {
		return err
	}
	if err := a.Sync(); err != nil {
		return err
	}
	if _, err := a.Write([]byte("bbbbbbbbbb")); err != nil {
		return err
	}
	if err := a.Close(); err != nil {
		return err
	}
	b, err := fs.Create(filepath.Join(dir, "b"))
	if err != nil {
		return err
	}
	if _, err := b.Write([]byte("cc")); err != nil {
		return err
	}
	if err := b.Sync(); err != nil {
		return err
	}
	if err := b.Close(); err != nil {
		return err
	}
	if err := fs.Rename(filepath.Join(dir, "b"), filepath.Join(dir, "b2")); err != nil {
		return err
	}
	if err := fs.Remove(filepath.Join(dir, "b2")); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestNoPlanPassesThrough(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(wal.OS, Plan{})
	if err := workload(dir, fs); err != nil {
		t.Fatal(err)
	}
	if fs.Fired() {
		t.Fatal("disabled plan fired")
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(data) != "aaaaaaaaaabbbbbbbbbb" {
		t.Fatalf("file a = %q, %v", data, err)
	}
}

func TestCrashSweepCoversEveryOp(t *testing.T) {
	// Sweep the crash point across the whole workload: every k must fail
	// with ErrInjected until the sweep runs off the end.
	fired := 0
	for k := 1; ; k++ {
		dir := t.TempDir()
		fs := Wrap(wal.OS, Plan{FailAt: k, Mode: Crash})
		err := workload(dir, fs)
		if !fs.Fired() {
			if err != nil {
				t.Fatalf("k=%d: plan never fired yet workload failed: %v", k, err)
			}
			break
		}
		fired++
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("k=%d: workload error %v, want ErrInjected", k, err)
		}
		if !fs.Crashed() {
			t.Fatalf("k=%d: crash did not latch", k)
		}
		// A dead process does no further I/O: everything fails now.
		if _, err := fs.Create(filepath.Join(dir, "late")); !errors.Is(err, ErrInjected) {
			t.Fatalf("k=%d: post-crash Create returned %v", k, err)
		}
		if _, err := fs.Open(filepath.Join(dir, "a")); !errors.Is(err, ErrInjected) {
			t.Fatalf("k=%d: post-crash Open returned %v", k, err)
		}
	}
	if fired < 10 {
		t.Fatalf("sweep visited only %d crash points", fired)
	}
}

func TestCrashTornWrite(t *testing.T) {
	dir := t.TempDir()
	// Op 1: Create(a); op 2: the first Write — crash there, half torn.
	fs := Wrap(wal.OS, Plan{FailAt: 2, Mode: Crash, TornFrac: 0.5})
	err := workload(dir, fs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("workload error %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "aaaaa" {
		t.Fatalf("torn write left %q, want the 5-byte prefix", data)
	}
}

func TestCrashDropUnsynced(t *testing.T) {
	dir := t.TempDir()
	// Crash on the second Write (op 4: Create, Write, Sync, Write). The
	// first write was fsynced and must survive; the second was not and must
	// vanish entirely.
	fs := Wrap(wal.OS, Plan{FailAt: 4, Mode: Crash, DropUnsynced: true})
	err := workload(dir, fs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("workload error %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "aaaaaaaaaa" {
		t.Fatalf("file rolled back to %q, want the synced 10 bytes", data)
	}
}

func TestBitFlipSilent(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(wal.OS, Plan{FailAt: 1, Mode: BitFlip})
	if err := workload(dir, fs); err != nil {
		t.Fatalf("bit flip must be silent, got %v", err)
	}
	if !fs.Fired() {
		t.Fatal("plan never fired")
	}
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("aaaaaaaaaabbbbbbbbbb")
	diff := 0
	for i := range want {
		if data[i] != want[i] {
			diff++
			if data[i]^want[i] != 1<<3 {
				t.Fatalf("byte %d: %02x vs %02x — not a single-bit flip", i, data[i], want[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestSyncError(t *testing.T) {
	dir := t.TempDir()
	// Syncs in the workload: a.Sync (1), b.Sync (2), SyncDir (3).
	fs := Wrap(wal.OS, Plan{FailAt: 2, Mode: SyncError})
	err := workload(dir, fs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("workload error %v", err)
	}
	if fs.Crashed() {
		t.Fatal("sync error must not latch a crash")
	}
	// The process keeps running: later operations succeed.
	f, err := fs.Create(filepath.Join(dir, "after"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFullThenClear(t *testing.T) {
	dir := t.TempDir()
	// Writes and syncs count: a.Write (1), a.Sync (2), a.Write (3) — the
	// disk fills on the second write of file a.
	fs := Wrap(wal.OS, Plan{FailAt: 3, Mode: DiskFull})
	err := workload(dir, fs)
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("workload error %v, want ErrDiskFull", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatal("ErrDiskFull must wrap syscall.ENOSPC")
	}
	if !fs.Full() || fs.Crashed() {
		t.Fatalf("state full=%v crashed=%v, want full and not crashed", fs.Full(), fs.Crashed())
	}
	// The synced prefix survives; the failed write reached nothing.
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(data) != "aaaaaaaaaa" {
		t.Fatalf("file a = %q, %v; want the first 10 bytes only", data, err)
	}
	// While full, every mutating op fails but reads keep working.
	if _, err := fs.Create(filepath.Join(dir, "c")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Create while full: %v, want ErrDiskFull", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("SyncDir while full: %v, want ErrDiskFull", err)
	}
	if _, err := fs.Open(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("Open while full: %v, want reads to keep working", err)
	}
	if _, err := fs.ReadDir(dir); err != nil {
		t.Fatalf("ReadDir while full: %v", err)
	}
	// Clear models the operator freeing space: everything works again.
	fs.Clear()
	if fs.Full() {
		t.Fatal("Clear did not clear")
	}
	f, err := fs.Create(filepath.Join(dir, "after"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameCarriesWatermark(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(wal.OS, Plan{FailAt: 1000, Mode: Crash, DropUnsynced: true})
	f, err := fs.Create(filepath.Join(dir, "t"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-lost")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "t"), filepath.Join(dir, "r")); err != nil {
		t.Fatal(err)
	}
	// Force the crash: rollback must track the renamed path.
	fs.plan.FailAt = fs.Ops() + 1
	if _, err := fs.Create(filepath.Join(dir, "boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "r"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "synced" {
		t.Fatalf("renamed file rolled back to %q, want %q", data, "synced")
	}
}
