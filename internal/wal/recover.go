package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// Record is one recovered WAL entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// RecoverResult reports what Recover found and repaired.
type RecoverResult struct {
	// Records are the surviving entries, contiguous and ascending in Seq.
	Records []Record
	// TornTail is set when a physically incomplete record (or segment
	// header) at the very end of the log was truncated — the expected
	// artifact of a crash mid-append, carrying no acknowledged data.
	TornTail bool
	// Dropped counts records discarded because of a fault that cannot be
	// a pure torn tail: a checksum mismatch on a fully present record, a
	// broken sequence chain, or valid data stranded after a fault. These
	// may have been acknowledged batches; DropReason describes the fault.
	// In strict mode such faults become a *CorruptError instead.
	Dropped    int
	DropReason string
}

// faultKind classifies why a record failed to parse.
type faultKind int

const (
	faultNone    faultKind = iota // record parsed cleanly
	faultEOF                      // clean segment end
	faultTorn                     // bytes physically missing at the end
	faultCorrupt                  // bytes present but checksum/length invalid
)

// Recover scans the log in dir, validates every record checksum and the
// sequence chain, and repairs the log so a Writer can resume:
//
//   - a physically torn record at the end of the last segment is
//     truncated away (TornTail) — a crash mid-append, nothing lost,
//   - any other fault — a bit-flipped record, a broken sequence chain, a
//     damaged non-final segment — either returns a *CorruptError (strict)
//     or, by default, truncates the log at the fault: every later record
//     and segment is deleted and counted in Dropped, degrading the log to
//     its longest verifiable prefix rather than refusing to open.
//
// A last segment left with zero records is removed so NewWriter can
// recreate its name without colliding.
func Recover(fs FS, dir string, strict bool) (*RecoverResult, error) {
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{}
	var expect uint64
	for i, first := range segs {
		name := filepath.Join(dir, segName(first))
		last := i == len(segs)-1
		if i == 0 {
			expect = first
		} else if first != expect {
			return res, res.fault(fs, dir, segs[i:], name, -1, 0, strict, &CorruptError{
				Path: name, Offset: -1,
				Reason: fmt.Sprintf("segment starts at seq %d, want %d: broken sequence chain", first, expect),
			})
		}
		data, err := readAll(fs, name)
		if err != nil {
			return nil, err
		}
		if !validSegHeader(data) {
			if last && countParseable(data[min(len(data), segHdrLen):]) == 0 {
				// A crash during segment creation: no records committed.
				if err := fs.Remove(name); err != nil {
					return nil, err
				}
				res.TornTail = true
				return res, nil
			}
			return res, res.fault(fs, dir, segs[i:], name, 0, 0, strict, &CorruptError{
				Path: name, Offset: 0, Reason: "bad segment header",
			})
		}
		off, segRecords := int64(segHdrLen), 0
		for {
			rec, n, kind, ferr := parseRecord(data[off:], name, off)
			if kind == faultEOF {
				break
			}
			if kind == faultTorn && last {
				// Pure torn tail: nothing acknowledged lies beyond it.
				if err := truncateAt(fs, name, off, segRecords); err != nil {
					return nil, err
				}
				res.TornTail = true
				return res, nil
			}
			if kind == faultNone && rec.Seq != expect {
				ferr = &CorruptError{Path: name, Offset: off,
					Reason: fmt.Sprintf("record seq %d, want %d: broken sequence chain", rec.Seq, expect)}
			}
			if ferr != nil {
				return res, res.fault(fs, dir, segs[i:], name, off, segRecords, strict, ferr)
			}
			res.Records = append(res.Records, rec)
			segRecords++
			expect++
			off += int64(n)
		}
	}
	return res, nil
}

// fault handles a non-torn fault at offset off of segment segs[0]:
// strict mode propagates ferr; lenient mode deletes everything from the
// fault on (the rest of the faulted segment and all later segments),
// counts the structurally parseable records it discarded, and returns nil
// so recovery lands on the verified prefix.
func (res *RecoverResult) fault(fs FS, dir string, segs []uint64, name string, off int64, keep int, strict bool, ferr *CorruptError) error {
	if strict {
		return ferr
	}
	dropped := 0
	for i, first := range segs {
		segPath := filepath.Join(dir, segName(first))
		if i == 0 && off >= 0 {
			if data, err := readAll(fs, segPath); err == nil && off <= int64(len(data)) {
				dropped += max(1, countParseable(data[off:]))
			}
			if err := truncateAt(fs, segPath, off, keep); err != nil {
				return err
			}
			continue
		}
		if data, err := readAll(fs, segPath); err == nil && len(data) > segHdrLen {
			dropped += countParseable(data[segHdrLen:])
		}
		if err := fs.Remove(segPath); err != nil {
			return err
		}
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	res.Dropped += dropped
	res.DropReason = ferr.Reason
	return nil
}

// validSegHeader reports whether data opens with a well-formed segment
// header.
func validSegHeader(data []byte) bool {
	return len(data) >= segHdrLen &&
		string(data[:4]) == segMagic &&
		binary.LittleEndian.Uint32(data[4:8]) == segVersion
}

// parseRecord decodes one record at buf[0:]; name and off only label
// errors. Torn faults (bytes missing) and corrupt faults (bytes present
// but invalid) are distinguished so the caller can tell a crash artifact
// from bit rot. A corrupt fault carries a non-nil *CorruptError; a seq
// check is left to the caller (the record decodes fine in isolation).
func parseRecord(buf []byte, name string, off int64) (Record, int, faultKind, *CorruptError) {
	if len(buf) == 0 {
		return Record{}, 0, faultEOF, nil
	}
	if len(buf) < recHdrLen {
		return Record{}, 0, faultTorn, &CorruptError{Path: name, Offset: off, Reason: "torn record header"}
	}
	plen := binary.LittleEndian.Uint32(buf[0:4])
	if plen > maxRecordLen {
		return Record{}, 0, faultCorrupt, &CorruptError{Path: name, Offset: off,
			Reason: fmt.Sprintf("implausible record length %d", plen)}
	}
	total := recHdrLen + int(plen)
	if len(buf) < total {
		return Record{}, 0, faultTorn, &CorruptError{Path: name, Offset: off,
			Reason: fmt.Sprintf("torn record: %d payload bytes of %d", len(buf)-recHdrLen, plen)}
	}
	seq := binary.LittleEndian.Uint64(buf[4:12])
	want := binary.LittleEndian.Uint32(buf[12:16])
	crc := crc32.Update(0, castagnoli, buf[4:12])
	crc = crc32.Update(crc, castagnoli, buf[recHdrLen:total])
	if crc != want {
		return Record{}, 0, faultCorrupt, &CorruptError{Path: name, Offset: off,
			Reason: fmt.Sprintf("record checksum mismatch: computed %08x, stored %08x", crc, want)}
	}
	payload := make([]byte, plen)
	copy(payload, buf[recHdrLen:total])
	return Record{Seq: seq, Payload: payload}, total, faultNone, nil
}

// countParseable counts structurally valid records in buf — a
// best-effort census of data lost past a fault, for reporting only.
func countParseable(buf []byte) int {
	n, off := 0, 0
	for off < len(buf) {
		_, adv, kind, _ := parseRecord(buf[off:], "", 0)
		if kind != faultNone || adv == 0 {
			break
		}
		n++
		off += adv
	}
	return n
}

// truncateAt cuts the segment at off; a segment left with zero records
// is removed entirely so its name can be reused by the writer.
func truncateAt(fs FS, name string, off int64, records int) error {
	if records == 0 {
		return fs.Remove(name)
	}
	return fs.Truncate(name, off)
}

// readAll slurps a file through the FS abstraction.
func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
