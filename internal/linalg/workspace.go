package linalg

import (
	"sync"

	"github.com/tree-svd/treesvd/internal/obs"
)

// The scratch pool backs the allocation-disciplined hot paths: Tree-SVD
// rebuilds thousands of level-1 blocks per stream (Fig. 13 measures up to
// 3062 rebuilds), and every rebuild needs the same handful of short-lived
// temporaries — the Gaussian sketch, the subspace-iteration ping-pong
// buffers, the projected small matrix, the Gram matrix of an exact SVD,
// and the per-parent concat buffer of a merge. Drawing those from a
// sync.Pool instead of the heap removes the dominant steady-state
// allocations of the update loop.
//
// Ownership rules (documented in DESIGN.md): a pooled matrix is owned by
// the caller from GetDense until PutDense; it must not be retained, and
// no result returned to an outer caller may alias it. Kernels never pool
// their own return values — only explicitly scratch intermediates.
var densePool sync.Pool

// poolHits/poolMisses count GetDense calls served from the pool versus
// freshly allocated (a recycled buffer too small for the request counts
// as a hit — the pool supplied the header — but still reallocates data).
// Process-global like the pool itself; read them via PoolStats.
var poolHits, poolMisses obs.Counter

// PoolStats returns the cumulative GetDense pool hit and miss counts.
// Their ratio is the workspace-reuse rate of the kernel hot paths: a low
// hit rate under steady-state updates means scratch buffers are being
// retained (or PutDense calls are missing) somewhere upstream.
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

// GetDense returns a zeroed r×c matrix backed by pooled storage. The
// caller must release it with PutDense once no live result aliases it.
func GetDense(r, c int) *Dense {
	n := r * c
	v := densePool.Get()
	if v == nil {
		poolMisses.Inc()
		return NewDense(r, c)
	}
	poolHits.Inc()
	m := v.(*Dense)
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		clear(m.Data)
	}
	m.Rows, m.Cols = r, c
	return m
}

// PutDense returns a matrix obtained from GetDense to the pool. Passing
// nil is a no-op; passing a matrix that a live result still references is
// a caller bug (the storage will be recycled under it).
func PutDense(m *Dense) {
	if m != nil {
		densePool.Put(m)
	}
}
