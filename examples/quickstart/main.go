// Quickstart: embed a small node subset of a directed graph and print the
// most similar subset pairs. Demonstrates the minimal static use of the
// public API.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	treesvd "github.com/tree-svd/treesvd"
)

func main() {
	// Build a toy graph: two communities of 50 nodes with dense
	// intra-community links and a few bridges.
	rng := rand.New(rand.NewSource(42))
	g := treesvd.NewGraphN(100)
	community := func(v int32) int32 { return v / 50 }
	for v := int32(0); v < 100; v++ {
		for g.OutDeg(v) < 6 {
			var u int32
			if rng.Float64() < 0.9 { // mostly within community
				u = community(v)*50 + int32(rng.Intn(50))
			} else {
				u = int32(rng.Intn(100))
			}
			if u != v {
				g.InsertEdge(v, u)
			}
		}
	}

	// Embed a subset straddling both communities.
	subset := []int32{0, 5, 10, 15, 20, 50, 55, 60, 65, 70}
	cfg := treesvd.Defaults()
	cfg.Dim = 8
	emb, err := treesvd.New(g, subset, cfg)
	if err != nil {
		panic(err)
	}
	x := emb.Embedding()

	// Rank subset pairs by cosine similarity: intra-community pairs
	// should dominate the top of the list.
	type pair struct {
		a, b int32
		sim  float64
	}
	var pairs []pair
	for i := 0; i < len(subset); i++ {
		for j := i + 1; j < len(subset); j++ {
			pairs = append(pairs, pair{subset[i], subset[j], cosine(x[i], x[j])})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].sim > pairs[b].sim })

	fmt.Println("top-10 most similar subset pairs (expect same-community pairs):")
	for _, p := range pairs[:10] {
		tag := "cross-community"
		if community(p.a) == community(p.b) {
			tag = "same-community"
		}
		fmt.Printf("  %3d ~ %-3d  sim=%+.3f  (%s)\n", p.a, p.b, p.sim, tag)
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
