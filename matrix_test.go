package treesvd

import (
	"math"
	"math/rand"
	"testing"
)

func TestFactorizeMatrixLowRank(t *testing.T) {
	// Exact rank-3 matrix: Tree-SVD must recover it to numerical
	// precision (singular values and reconstruction).
	rng := rand.New(rand.NewSource(1))
	rows, cols, rank := 12, 200, 3
	u := make([][]float64, rows)
	v := make([][]float64, cols)
	for i := range u {
		u[i] = make([]float64, rank)
		for k := range u[i] {
			u[i][k] = rng.NormFloat64()
		}
	}
	for j := range v {
		v[j] = make([]float64, rank)
		for k := range v[j] {
			v[j][k] = rng.NormFloat64()
		}
	}
	m := NewSparseMatrix(rows, cols)
	dense := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dense[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			var s float64
			for k := 0; k < rank; k++ {
				s += u[i][k] * v[j][k]
			}
			dense[i][j] = s
			m.Set(i, j, s)
		}
	}
	res, err := FactorizeMatrix(m, Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank() != 3 {
		t.Fatalf("rank %d, want 3", res.Rank())
	}
	// Reconstruct and compare.
	var maxDiff float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for k := 0; k < res.Rank(); k++ {
				s += res.U[i][k] * res.S[k] * res.V[j][k]
			}
			if d := math.Abs(s - dense[i][j]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-6 {
		t.Fatalf("reconstruction max diff %g", maxDiff)
	}
	// Singular values descending and positive.
	for k := 1; k < res.Rank(); k++ {
		if res.S[k] > res.S[k-1] || res.S[k] <= 0 {
			t.Fatalf("singular values not descending-positive: %v", res.S)
		}
	}
}

func TestFactorizeMatrixEmpty(t *testing.T) {
	m := NewSparseMatrix(4, 10)
	if _, err := FactorizeMatrix(m, Config{Dim: 2}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestFactorizeMatrixDuplicatesSummed(t *testing.T) {
	m := NewSparseMatrix(2, 4)
	m.Set(0, 1, 2)
	m.Set(0, 1, 3) // same cell: 5 total
	m.Set(1, 2, 5)
	res, err := FactorizeMatrix(m, Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Both rows have a single entry of magnitude 5: σ = {5, 5}.
	if math.Abs(res.S[0]-5) > 1e-9 || math.Abs(res.S[1]-5) > 1e-9 {
		t.Fatalf("singular values %v, want [5 5]", res.S)
	}
}

func TestFactorizeMatrixDims(t *testing.T) {
	m := NewSparseMatrix(3, 7)
	if r, c := m.Dims(); r != 3 || c != 7 {
		t.Fatal("Dims wrong")
	}
}
