# Tree-SVD developer targets. `make ci` is the full gate: vet, build,
# tests, the race-detector pass over the concurrency-sensitive packages
# (the public facade and everything under internal/), the short-mode
# differential fuzz of the correctness harness, and the fault-injection
# crash matrix of the durable wrapper.

GO ?= go

# Seed count for `make fuzz`; each seed is one adversarial churn stream
# driven through the differential harness (internal/check).
SEEDS ?= 16

.PHONY: ci vet build test race differential crash chaos fuzz bench bench-kernels bench-recovery bench-shards bench-shards-short bench-serve bench-serve-short bench-dynamic bench-dynamic-short serve-race fmt docs

ci: vet build test race differential crash chaos docs bench-shards-short bench-serve-short bench-dynamic-short

vet:
	$(GO) vet ./...

# Documentation gate: go vet's doc-adjacent checks plus cmd/doclint,
# which requires a package comment on every package and a doc comment on
# every exported identifier of the public root package.
docs: vet
	$(GO) run ./cmd/doclint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... ./server/... ./client/... .

# Differential correctness harness at the default seed count, under the
# race detector — the CI gate for the dynamic path. Includes the
# crash-recovery leg (fault injection mid-stream, reopen, track shadow).
differential:
	$(GO) test -race -run 'TestDifferential|TestCrashRecoveryDifferential' -count=1 ./internal/check

# Fault-injection gate: the scripted crash-point matrix over the durable
# wrapper (every filesystem operation killed once, per failure mode) plus
# the faultfs harness's own tests.
crash:
	$(GO) test -run TestCrashPointMatrix -count=1 .
	$(GO) test -count=1 ./internal/faultfs ./internal/wal

# Robustness gate, under the race detector: the netfault storm (scripted
# connection resets, latency spikes, partial writes, corruption through a
# fault-injecting listener), the admission-control overload suite
# (sheds at 2x the knee, health/readiness, deadline propagation,
# shutdown-drops-nothing) and the disk-full -> degraded -> Reopen sweep.
chaos:
	$(GO) test -race -count=1 -run 'TestNetFault|TestOverload|TestIngestSheds|TestTimeoutHeader|TestHealthAndReadiness|TestDegradedEndToEnd|TestShutdownDrops' ./server/
	$(GO) test -race -count=1 ./internal/netfault/
	$(GO) test -race -count=1 -run TestDiskFullDegradedReopen .

# Configurable-depth fuzz: make fuzz SEEDS=64
fuzz:
	TREESVD_FUZZ_SEEDS=$(SEEDS) $(GO) test -run 'TestDifferential|TestCrashRecoveryDifferential' -count=1 -v ./internal/check

bench:
	$(GO) test -run '^$$' -bench . -benchtime 50x .

# Emits BENCH_KERNELS.json: ns/op, allocs/op and B/op for every hot
# linear-algebra kernel across worker budgets (see internal/linalg/bench_test.go).
bench-kernels:
	BENCH_KERNELS_OUT=$(CURDIR)/BENCH_KERNELS.json $(GO) test -run TestEmitKernelBench -v ./internal/linalg

# Emits BENCH_RECOVERY.json: checkpoint commit cost, WAL append overhead
# per fsync policy (acceptance: <10% at fsync=batch), and cold-start
# replay time vs WAL length (see recovery_bench_test.go).
bench-recovery:
	BENCH_RECOVERY_OUT=$(CURDIR)/BENCH_RECOVERY.json $(GO) test -run TestEmitRecoveryBench -count=1 -v .

# Emits BENCH_SHARDS.json: ApplyEvents throughput (events/sec and
# speedup vs 1 shard) and Recommend p50/p99 latency at Shards ∈ {1,2,4,8}
# on the churnstress stream (see shard_bench_test.go).
bench-shards:
	BENCH_SHARDS_OUT=$(CURDIR)/BENCH_SHARDS.json $(GO) test -run TestEmitShardBench -count=1 -v .

# Short smoke variant for `make ci`: a tiny stream and a throwaway
# output file — it gates that the shard bench harness still runs end to
# end, not the machine-dependent numbers.
bench-shards-short:
	BENCH_SHARDS_OUT=$(CURDIR)/.bench-shards-ci.json BENCH_SHARDS_SHORT=1 $(GO) test -run TestEmitShardBench -count=1 .
	@rm -f $(CURDIR)/.bench-shards-ci.json

# Emits BENCH_DYNAMIC.json: per-batch ApplyEvents latency (p50/p99) on
# the churnstress stream with the Brand-style incremental update path
# off vs on, plus the update hit rate, fallback rate and the p99 speedup
# (see dynamic_bench_test.go). README's "Dynamic path" section quotes
# these.
bench-dynamic:
	BENCH_DYNAMIC_OUT=$(CURDIR)/BENCH_DYNAMIC.json $(GO) test -run TestEmitDynamicBench -count=1 -v .

# Short smoke variant for `make ci`: a tiny stream and a throwaway
# output file — it gates that the dynamic bench harness still runs end
# to end, not the machine-dependent numbers.
bench-dynamic-short:
	BENCH_DYNAMIC_OUT=$(CURDIR)/.bench-dynamic-ci.json BENCH_DYNAMIC_SHORT=1 $(GO) test -run TestEmitDynamicBench -count=1 .
	@rm -f $(CURDIR)/.bench-dynamic-ci.json

# Emits BENCH_SERVE.json: open-loop serving latency (p50/p99/p999) at
# three or more offered-load points against an in-process HTTP server,
# then one overload point at 2x the observed knee reporting the
# accepted/shed split (see cmd/loadgen). The read gate is sized for the
# box (8 slots on this 1-CPU runner) so the saturated sweep point sheds
# instead of queueing without bound; the overload point also bounds
# client-side outstanding requests so its numbers reflect the server,
# not generator self-queueing. README's "Serving" section quotes these.
bench-serve:
	$(GO) run ./cmd/loadgen -rates 200,500,1000,2000 -duration 3s \
		-read-slots 8 -out $(CURDIR)/BENCH_SERVE.json

# Short smoke variant for `make ci`: tiny graph, short windows, throwaway
# output — it gates that serve + client + loadgen still work end to end,
# not the machine-dependent numbers.
bench-serve-short:
	$(GO) run ./cmd/loadgen -short -out $(CURDIR)/.bench-serve-ci.json
	@rm -f $(CURDIR)/.bench-serve-ci.json

# The serving integration + storm suite under the race detector alone
# (it is also part of `make race`).
serve-race:
	$(GO) test -race -count=1 ./server/... ./client/...

fmt:
	gofmt -l .
