package treesvd

import (
	"fmt"
	"time"
)

// NodeRangeError reports an event whose node id falls outside the
// embedder's fixed proximity width (the Config.MaxNodes contract).
// ApplyEvents validates the whole batch up front and returns this error
// before mutating anything — the graph, the PPR estimates and the
// published snapshot are exactly as they were, so the caller may drop or
// remap the offending events and retry.
type NodeRangeError struct {
	Index    int   // position of the offending event within the batch
	Node     int32 // the out-of-range (or negative) node id
	MaxNodes int   // the embedder's capacity, fixed at New
}

// Error describes the offending event, its node id, and the capacity it
// exceeded.
func (e *NodeRangeError) Error() string {
	return fmt.Sprintf(
		"treesvd: event %d references node %d outside the embedder's capacity of %d nodes (set Config.MaxNodes at New to cover every id the stream will reach)",
		e.Index, e.Node, e.MaxNodes)
}

// NotInSubsetError reports a Recommend (or embedding-row lookup) source
// that is not one of the embedder's subset rows. Only subset nodes have a
// left factor to score candidates with, so the request cannot be served —
// but nothing is wrong with the embedder either, which is why the error
// is typed: a server can map it to HTTP 404 ("no such resource") instead
// of a generic 500, and a caller can distinguish "wrong source" from a
// real failure with errors.As:
//
//	var nis *treesvd.NotInSubsetError
//	if errors.As(err, &nis) { ... }
type NotInSubsetError struct {
	// Node is the requested source node id.
	Node int32
	// Subset is the size of the embedded subset the node was looked up in.
	Subset int
}

// Error names the missing source and the subset it was looked up in.
func (e *NotInSubsetError) Error() string {
	return fmt.Sprintf(
		"treesvd: node %d is not in the embedded subset of %d sources (only subset nodes have a left factor; pick a source from Subset())",
		e.Node, e.Subset)
}

// InvalidKError reports a Recommend call with a non-positive k. The top-k
// contract is: k <= 0 is rejected with this error (a server maps it to
// HTTP 400), and a k larger than the candidate set silently truncates to
// every available candidate — see Snapshot.Recommend.
type InvalidKError struct {
	// K is the rejected top-k request size.
	K int
}

// Error describes the rejected k and the valid range.
func (e *InvalidKError) Error() string {
	return fmt.Sprintf("treesvd: non-positive top-k request k=%d (k must be >= 1; oversized k truncates to the candidate count)", e.K)
}

// ShardConfigError reports a Config.Shards value the embedder cannot
// honor: a negative count, or more shards than subset sources (every
// shard must own at least one source row — an empty shard would publish
// a degenerate factorization). New and Load return it before any state
// is built, so the caller can clamp the count and retry:
//
//	var sce *treesvd.ShardConfigError
//	if errors.As(err, &sce) { cfg.Shards = sce.Subset; ... }
type ShardConfigError struct {
	// Shards is the rejected Config.Shards value.
	Shards int
	// Subset is the subset size the count was checked against; 0 when the
	// count was rejected as negative before the subset was known.
	Subset int
}

// Error describes the rejected shard count and the valid range.
func (e *ShardConfigError) Error() string {
	if e.Shards < 0 {
		return fmt.Sprintf("treesvd: negative Shards %d (0 means the default of 1)", e.Shards)
	}
	return fmt.Sprintf(
		"treesvd: %d shards for a subset of %d sources; every shard must own at least one source (set Config.Shards in [1, %d])",
		e.Shards, e.Subset, e.Subset)
}

// OverloadError reports a request the serving layer's admission control
// refused: every in-flight slot for the endpoint was taken and the wait
// queue was full (or the request's remaining deadline budget could not
// cover the wait). The server maps it to HTTP 503 with a Retry-After
// hint, and the client SDK reconstructs it on the other side, so both
// in-process and remote callers can distinguish "come back later" from a
// real failure:
//
//	var oe *treesvd.OverloadError
//	if errors.As(err, &oe) { time.Sleep(oe.RetryAfter); ... }
type OverloadError struct {
	// Endpoint names the admission gate that shed the request
	// ("recommend", "ingest", ...).
	Endpoint string
	// RetryAfter is the server's backoff hint; zero means "unknown, use
	// your own backoff".
	RetryAfter time.Duration
}

// Error names the shedding endpoint and the retry hint.
func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("treesvd: overloaded: endpoint %q shed the request (retry after %v)", e.Endpoint, e.RetryAfter)
	}
	return fmt.Sprintf("treesvd: overloaded: endpoint %q shed the request", e.Endpoint)
}

// DegradedError reports an update rejected because the durable embedder
// sealed itself into read-only degraded mode after a persistent WAL I/O
// failure (a full disk, an fsync error). Reads keep serving the last
// published snapshot; ingest returns this error until the operator
// clears the underlying fault and calls DurableEmbedder.Reopen. The
// server maps it to HTTP 503 (kind "degraded") and the client SDK
// reconstructs it, unlike an OverloadError it is not worth retrying
// without operator action:
//
//	var de *treesvd.DegradedError
//	if errors.As(err, &de) { page the operator }
type DegradedError struct {
	// Reason describes the transition ("wal append failed").
	Reason string
	// Err is the I/O failure that sealed the embedder, when known.
	Err error
}

// Error describes the degraded state and its cause.
func (e *DegradedError) Error() string {
	msg := "treesvd: embedder is in read-only degraded mode"
	if e.Reason != "" {
		msg += " (" + e.Reason + ")"
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap returns the sealing I/O error for errors.Is/As chains.
func (e *DegradedError) Unwrap() error { return e.Err }

// CorruptStateError reports persisted state that failed an integrity
// check: a checksum mismatch, a structurally inconsistent save, a broken
// WAL sequence chain, or a checkpoint that does not verify. Load,
// LoadFile, Open's WAL recovery and its checkpoint verification all
// return it, so callers can separate "the bytes are wrong" from ordinary
// I/O errors with errors.As and decide between restoring a backup and
// retrying:
//
//	var corrupt *treesvd.CorruptStateError
//	if errors.As(err, &corrupt) { ... }
type CorruptStateError struct {
	// Path names the offending file; empty when the source was an
	// in-memory reader.
	Path string
	// Offset is the byte offset of the fault when known, -1 otherwise.
	Offset int64
	// Reason describes what failed to verify.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

// Error describes what failed to verify and where.
func (e *CorruptStateError) Error() string {
	loc := ""
	if e.Path != "" {
		loc = " in " + e.Path
		if e.Offset >= 0 {
			loc = fmt.Sprintf(" in %s@%d", e.Path, e.Offset)
		}
	}
	msg := "treesvd: corrupt state" + loc + ": " + e.Reason
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap returns the underlying error for errors.Is/As chains.
func (e *CorruptStateError) Unwrap() error { return e.Err }
