package check

import "math"

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashBits(h uint64, bits uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= bits & 0xff
		h *= fnvPrime
		bits >>= 8
	}
	return h
}

// FingerprintVec returns an order-sensitive FNV-1a hash of a float
// vector's exact bit patterns. Any mutation — value, order, or length —
// changes the fingerprint (up to hash collisions).
func FingerprintVec(v []float64) uint64 {
	h := uint64(fnvOffset)
	h = hashBits(h, uint64(len(v)))
	for _, x := range v {
		h = hashBits(h, math.Float64bits(x))
	}
	return h
}

// FingerprintRows returns an order-sensitive FNV-1a hash of a row-major
// matrix's exact bit patterns, including the row structure.
func FingerprintRows(rows [][]float64) uint64 {
	h := uint64(fnvOffset)
	h = hashBits(h, uint64(len(rows)))
	for _, r := range rows {
		h = hashBits(h, uint64(len(r)))
		for _, x := range r {
			h = hashBits(h, math.Float64bits(x))
		}
	}
	return h
}

// Snapshot combines the observable state of a published embedding
// snapshot — left embedding X, right embedding Y, and the root spectrum —
// into one immutability fingerprint. The concurrency harness hashes a
// snapshot before and after an update storm: published versions are
// immutable, so the two fingerprints must be identical.
func Snapshot(x, y [][]float64, rootS []float64) uint64 {
	h := uint64(fnvOffset)
	h = hashBits(h, FingerprintRows(x))
	h = hashBits(h, FingerprintRows(y))
	h = hashBits(h, FingerprintVec(rootS))
	return h
}
