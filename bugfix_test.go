package treesvd

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestApplyEventsRejectsOutOfRangeNodes is the ISSUE 3 regression for the
// MaxNodes overflow: an event referencing a node id at or beyond the
// proximity width used to grow the graph and then panic inside the sparse
// refresh, after the graph had already advanced. The whole batch must now
// be rejected with a *NodeRangeError before anything mutates.
func TestApplyEventsRejectsOutOfRangeNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := buildGraph(rng, 12, 40)
	emb, err := New(g, []int32{0, 1, 2, 3}, Config{Dim: 4, RMax: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, version := g.NumNodes(), g.NumEdges(), emb.Version()

	batches := map[string][]Event{
		"beyond capacity (U)": {{U: 25, V: 0, Type: Insert}},
		"beyond capacity (V)": {{U: 0, V: 1, Type: Insert}, {U: 3, V: 12, Type: Insert}},
		"negative id":         {{U: -1, V: 0, Type: Delete}},
	}
	for name, batch := range batches {
		_, err := emb.ApplyEvents(context.Background(), batch)
		var nre *NodeRangeError
		if !errors.As(err, &nre) {
			t.Fatalf("%s: want *NodeRangeError, got %v", name, err)
		}
		if nre.MaxNodes != 12 {
			t.Errorf("%s: MaxNodes = %d, want 12", name, nre.MaxNodes)
		}
		if g.NumNodes() != nodes || g.NumEdges() != edges {
			t.Fatalf("%s: graph mutated by a rejected batch: %d nodes / %d edges, want %d / %d",
				name, g.NumNodes(), g.NumEdges(), nodes, edges)
		}
		if emb.Version() != version {
			t.Errorf("%s: snapshot republished after a rejected batch", name)
		}
	}
	if got := batches["beyond capacity (V)"]; got != nil {
		_, err := emb.ApplyEvents(context.Background(), got)
		var nre *NodeRangeError
		if errors.As(err, &nre) && (nre.Index != 1 || nre.Node != 12) {
			t.Errorf("offending event: Index=%d Node=%d, want Index=1 Node=12", nre.Index, nre.Node)
		}
	}

	// The rebuild path (batch past RebuildThreshold) must validate too.
	big := make([]Event, 0, 1100)
	for i := 0; i < 1099; i++ {
		big = append(big, Event{U: int32(rng.Intn(12)), V: int32(rng.Intn(12)), Type: Insert})
	}
	big = append(big, Event{U: 0, V: 40, Type: Insert})
	if _, err := emb.ApplyEvents(context.Background(), big); err == nil {
		t.Fatal("rebuild path accepted an out-of-range event")
	}
	if g.NumNodes() != nodes || g.NumEdges() != edges {
		t.Fatalf("rebuild path mutated the graph before validation: %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}

	// The embedder must still be fully usable after rejected batches.
	if _, err := emb.ApplyEvents(context.Background(), []Event{{U: 5, V: 6, Type: Insert}}); err != nil {
		t.Fatalf("valid batch after rejections: %v", err)
	}
	if emb.Version() == version {
		t.Error("valid batch did not publish a new snapshot")
	}

	// With MaxNodes headroom, growth events inside the capacity are fine.
	g2 := buildGraph(rand.New(rand.NewSource(3)), 10, 30)
	emb2, err := New(g2, []int32{0, 1}, Config{Dim: 4, RMax: 1e-3, MaxNodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emb2.ApplyEvents(context.Background(), []Event{{U: 0, V: 19, Type: Insert}}); err != nil {
		t.Fatalf("growth within MaxNodes rejected: %v", err)
	}
	if _, err := emb2.ApplyEvents(context.Background(), []Event{{U: 0, V: 20, Type: Insert}}); err == nil {
		t.Fatal("node id == MaxNodes accepted")
	}
}

// TestRecommendNoGhostNodes is the ISSUE 3 regression for ghost
// recommendations: with MaxNodes headroom the right embedding has rows
// for node ids the graph has not reached yet, and Recommend used to let
// their zero scores fill the top-k.
func TestRecommendNoGhostNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildGraph(rng, 10, 30)
	emb, err := New(g, []int32{0, 1, 2}, Config{Dim: 4, RMax: 1e-3, MaxNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := emb.Snapshot().NumNodes(); got != 10 {
		t.Fatalf("Snapshot.NumNodes() = %d, want 10", got)
	}
	// Ask for more candidates than real nodes: the result must stay within
	// the live id range and never pad with reserved ids.
	recs, err := emb.Recommend(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if len(recs) > 9 {
		t.Fatalf("got %d recommendations from a 10-node graph (source excluded)", len(recs))
	}
	for _, r := range recs {
		if r.Node >= 10 {
			t.Errorf("ghost node %d (graph has 10 nodes) recommended with score %g", r.Node, r.Score)
		}
	}

	// After growth, the new node becomes a legitimate candidate on the new
	// snapshot — and the old pinned snapshot still excludes it.
	old := emb.Snapshot()
	if _, err := emb.ApplyEvents(context.Background(), []Event{{U: 3, V: 10, Type: Insert}, {U: 10, V: 4, Type: Insert}}); err != nil {
		t.Fatal(err)
	}
	if got := emb.Snapshot().NumNodes(); got != 11 {
		t.Fatalf("after growth NumNodes() = %d, want 11", got)
	}
	recs, err = emb.Recommend(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Node >= 11 {
			t.Errorf("ghost node %d recommended after growth to 11 nodes", r.Node)
		}
	}
	oldRecs, err := old.Recommend(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range oldRecs {
		if r.Node >= 10 {
			t.Errorf("pinned snapshot recommended node %d born after its version", r.Node)
		}
	}
}

// TestRecommendKContract is the ISSUE 8 regression for the top-k edge
// cases: k <= 0 must be rejected with a *InvalidKError (so a server can
// map it to HTTP 400 deterministically), and a k larger than the
// candidate set must truncate to every available candidate instead of
// erroring or padding.
func TestRecommendKContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := buildGraph(rng, 12, 48)
	emb, err := New(g, []int32{0, 1}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -1, -100} {
		_, err := emb.Recommend(0, k)
		var ike *InvalidKError
		if !errors.As(err, &ike) {
			t.Fatalf("k=%d: want *InvalidKError, got %v", k, err)
		}
		if ike.K != k {
			t.Errorf("k=%d: error carries K=%d", k, ike.K)
		}
		// The snapshot path must agree with the facade path.
		if _, err := emb.Snapshot().Recommend(0, k); !errors.As(err, &ike) {
			t.Fatalf("snapshot k=%d: want *InvalidKError, got %v", k, err)
		}
	}
	// Oversized k: 12 nodes minus the source and its out-neighbors can
	// never reach 1000; the result is simply every candidate, ranked.
	recs, err := emb.Recommend(0, 1000)
	if err != nil {
		t.Fatalf("oversized k must truncate, got error %v", err)
	}
	if len(recs) == 0 || len(recs) > 11 {
		t.Fatalf("oversized k returned %d candidates, want 1..11", len(recs))
	}
	exact, err := emb.Recommend(0, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if exact[i] != recs[i] {
			t.Fatal("truncated oversized-k result diverged from the exact-k result")
		}
	}
}

// TestRecommendNotInSubsetTyped is the ISSUE 8 regression for the untyped
// not-in-subset error: a source outside the embedded subset must surface
// as a *NotInSubsetError so the serving layer can distinguish 404 from
// 500.
func TestRecommendNotInSubsetTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := buildGraph(rng, 12, 48)
	emb, err := New(g, []int32{0, 1, 2}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = emb.Recommend(7, 5)
	var nis *NotInSubsetError
	if !errors.As(err, &nis) {
		t.Fatalf("want *NotInSubsetError, got %v", err)
	}
	if nis.Node != 7 || nis.Subset != 3 {
		t.Errorf("error carries Node=%d Subset=%d, want 7 and 3", nis.Node, nis.Subset)
	}
}

// TestGraphViewConcurrentWithUpdates is the ISSUE 8 regression for the
// Graph() escape hatch: the read-only view must be safe to hammer from
// many goroutines — including with out-of-range ids — while ApplyEvents
// streams batches. Run under -race (make race covers this package).
func TestGraphViewConcurrentWithUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := buildGraph(rng, 24, 120)
	emb, err := New(g, []int32{0, 1, 2, 3}, Config{Dim: 4, RMax: 1e-3, MaxNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	view := emb.Graph()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				u := int32((i + r) % 40) // past NumNodes on purpose
				view.NumNodes()
				view.NumEdges()
				view.HasEdge(u, int32(i%40))
				view.OutDeg(u)
				view.InDeg(-1)
				if nbrs := view.OutNeighbors(u); u >= 32 && nbrs != nil {
					panic("neighbors for an out-of-range id")
				}
				view.InNeighbors(u)
			}
		}(r)
	}
	evRng := rand.New(rand.NewSource(14))
	for b := 0; b < 30; b++ {
		batch := make([]Event, 0, 8)
		for len(batch) < 8 {
			u, v := int32(evRng.Intn(32)), int32(evRng.Intn(32))
			batch = append(batch, Event{U: u, V: v, Type: Insert})
		}
		if _, err := emb.ApplyEvents(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	// The copies handed out must stay valid after further updates.
	nbrs := view.OutNeighbors(0)
	if _, err := emb.ApplyEvents(context.Background(), []Event{{U: 0, V: 31, Type: Insert}}); err != nil {
		t.Fatal(err)
	}
	_ = nbrs[:cap(nbrs)]
}
