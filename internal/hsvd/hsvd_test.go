package hsvd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

func lowRank(rng *rand.Rand, rows, cols, rank int, noise float64) *linalg.Dense {
	u := linalg.NewDense(rows, rank)
	v := linalg.NewDense(cols, rank)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	m := linalg.MulT(u, v)
	for i := range m.Data {
		m.Data[i] += noise * rng.NormFloat64()
	}
	return m
}

func toCSR(m *linalg.Dense) *sparse.CSR {
	b := sparse.NewBuilder(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			b.Add(i, j, m.At(i, j))
		}
	}
	return b.Build()
}

func TestExactLowRankRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := lowRank(rng, 12, 64, 3, 0)
	cfg := Config{Rank: 3, Blocks: 8, Branch: 2}
	res := FactorizeDense(m, cfg)
	// Singular values must match the exact SVD (HSVD is lossless when the
	// block rank bounds the matrix rank).
	exact := linalg.SVDTrunc(m, 3)
	for i := range exact.S {
		if math.Abs(res.S[i]-exact.S[i]) > 1e-6*exact.S[0] {
			t.Fatalf("σ%d = %g, want %g", i, res.S[i], exact.S[i])
		}
	}
}

func TestApproximationWithinTheorem(t *testing.T) {
	// Theorem 3.2 with ε=0 (exact level-1 SVD): the reconstruction error
	// is at most ((2)(1+√2)^{q-1} − 1)·‖M−(M)_d‖_F. Check the projection
	// error of the returned left subspace against that bound.
	rng := rand.New(rand.NewSource(2))
	m := lowRank(rng, 15, 60, 8, 0.3)
	d := 4
	cfg := Config{Rank: d, Blocks: 4, Branch: 2} // q = 3 levels
	res := FactorizeDense(m, cfg)
	// Residual after projecting M on the returned left singular space.
	proj := linalg.Mul(res.U, linalg.TMul(res.U, m))
	got := linalg.Sub(m, proj).FrobNorm()
	best := linalg.SVD(m).TailEnergy(m.FrobNorm(), d)
	q := 3.0
	bound := (2*math.Pow(1+math.Sqrt2, q-1) - 1) * best
	if got > bound {
		t.Fatalf("projection error %g exceeds Theorem 3.2 bound %g", got, bound)
	}
	// And it should in practice be close to optimal.
	if got > 1.5*best {
		t.Fatalf("projection error %g vs optimal %g — worse than expected in practice", got, best)
	}
}

func TestSparseDensePathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := lowRank(rng, 10, 40, 3, 0.1)
	cfg := Config{Rank: 3, Blocks: 5, Branch: 3}
	rd := FactorizeDense(m, cfg)
	rs := Factorize(toCSR(m), cfg)
	for i := range rd.S {
		if math.Abs(rd.S[i]-rs.S[i]) > 1e-8*rd.S[0] {
			t.Fatalf("σ%d dense %g vs sparse %g", i, rd.S[i], rs.S[i])
		}
	}
}

func TestSingleBlockDegeneratesToSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := lowRank(rng, 8, 20, 5, 0.05)
	res := FactorizeDense(m, Config{Rank: 4, Blocks: 1, Branch: 2})
	exact := linalg.SVDTrunc(m, 4)
	for i := range exact.S {
		if math.Abs(res.S[i]-exact.S[i]) > 1e-8*exact.S[0] {
			t.Fatalf("σ%d = %g, want %g", i, res.S[i], exact.S[i])
		}
	}
}

func TestBlocksExceedingColsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := lowRank(rng, 6, 10, 2, 0.05)
	// 64 blocks over 10 columns: must clamp, not panic.
	res := FactorizeDense(m, Config{Rank: 2, Blocks: 64, Branch: 8})
	if res.Rank() == 0 {
		t.Fatal("clamped factorization returned nothing")
	}
}

func TestEmbeddingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := toCSR(lowRank(rng, 9, 30, 3, 0.1))
	x := Embedding(m, Config{Rank: 3, Blocks: 6, Branch: 2})
	if x.Rows != 9 || x.Cols != 3 {
		t.Fatalf("embedding shape %d×%d, want 9×3", x.Rows, x.Cols)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{{Rank: 0, Blocks: 4, Branch: 2}, {Rank: 2, Blocks: 0, Branch: 2}, {Rank: 2, Blocks: 4, Branch: 1}} {
		if bad.Validate() == nil {
			t.Fatalf("accepted bad config %+v", bad)
		}
	}
}
