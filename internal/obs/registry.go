package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that moves in both directions.
	KindGauge
	// KindHistogram is a latency/size distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind (histograms are
// exported as summaries: pre-computed quantiles, not cumulative buckets).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one registered metric's point-in-time reading, produced by
// Registry.Snapshot. Exactly one of Counter/Gauge/Hist is meaningful,
// selected by Kind. Labels is the rendered label pairs (`shard="0"`),
// empty for unlabeled series.
type Value struct {
	Name, Labels, Unit, Help string
	Kind                     Kind
	Counter                  uint64
	Gauge                    float64
	Hist                     HistStats
}

// Label is one metric label pair; see the *With registration methods.
type Label struct {
	Key, Value string
}

// renderLabels formats label pairs in registration order as the inner
// Prometheus label body: `k1="v1",k2="v2"`.
func renderLabels(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// entry pairs a metric's description with a closure that reads it.
type entry struct {
	name, labels, unit, help string
	kind                     Kind
	read                     func() Value
}

// Registry is a named collection of metrics that can be snapshotted and
// served over HTTP (expvar-style JSON and Prometheus text format). Every
// embedder owns one; registration happens at construction time, reads at
// any time. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries []entry
	byName  map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// add registers one entry, panicking on a duplicate (name, labels) pair —
// duplicate registration is a wiring bug, not a runtime condition.
// Labeled series under one base name must share kind/unit/help (the
// Prometheus exposition emits HELP/TYPE once per name).
func (r *Registry) add(name, labels, unit, help string, kind Kind, read func() Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name
	if labels != "" {
		key += "{" + labels + "}"
	}
	if _, dup := r.byName[key]; dup {
		panic("obs: duplicate metric " + key)
	}
	r.byName[key] = struct{}{}
	r.entries = append(r.entries, entry{name: name, labels: labels, unit: unit, help: help, kind: kind, read: read})
}

// Counter registers a counter under name.
func (r *Registry) Counter(name, unit, help string, c *Counter) {
	r.CounterWith(name, nil, unit, help, c)
}

// CounterWith registers a counter under name with label pairs — one
// series per distinct label set, sharing the base name's HELP/TYPE (used
// for per-shard series).
func (r *Registry) CounterWith(name string, labels []Label, unit, help string, c *Counter) {
	ls := renderLabels(labels)
	r.add(name, ls, unit, help, KindCounter, func() Value {
		return Value{Name: name, Labels: ls, Unit: unit, Help: help, Kind: KindCounter, Counter: c.Load()}
	})
}

// CounterFunc registers a counter read through f (derived or process-wide
// counts owned elsewhere, e.g. the linalg workspace pool).
func (r *Registry) CounterFunc(name, unit, help string, f func() uint64) {
	r.add(name, "", unit, help, KindCounter, func() Value {
		return Value{Name: name, Unit: unit, Help: help, Kind: KindCounter, Counter: f()}
	})
}

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name, unit, help string, g *Gauge) {
	r.GaugeWith(name, nil, unit, help, g)
}

// GaugeWith is Gauge with label pairs (see CounterWith).
func (r *Registry) GaugeWith(name string, labels []Label, unit, help string, g *Gauge) {
	ls := renderLabels(labels)
	r.add(name, ls, unit, help, KindGauge, func() Value {
		return Value{Name: name, Labels: ls, Unit: unit, Help: help, Kind: KindGauge, Gauge: float64(g.Load())}
	})
}

// GaugeFunc registers a gauge computed by f at read time (derived values
// such as the age of the current snapshot).
func (r *Registry) GaugeFunc(name, unit, help string, f func() float64) {
	r.GaugeFuncWith(name, nil, unit, help, f)
}

// GaugeFuncWith is GaugeFunc with label pairs (see CounterWith).
func (r *Registry) GaugeFuncWith(name string, labels []Label, unit, help string, f func() float64) {
	ls := renderLabels(labels)
	r.add(name, ls, unit, help, KindGauge, func() Value {
		return Value{Name: name, Labels: ls, Unit: unit, Help: help, Kind: KindGauge, Gauge: f()}
	})
}

// Histogram registers a histogram under name.
func (r *Registry) Histogram(name, unit, help string, h *Histogram) {
	r.HistogramWith(name, nil, unit, help, h)
}

// HistogramWith is Histogram with label pairs (see CounterWith).
func (r *Registry) HistogramWith(name string, labels []Label, unit, help string, h *Histogram) {
	ls := renderLabels(labels)
	r.add(name, ls, unit, help, KindHistogram, func() Value {
		return Value{Name: name, Labels: ls, Unit: unit, Help: help, Kind: KindHistogram, Hist: h.Snapshot()}
	})
}

// Snapshot reads every registered metric, sorted by name. Each metric is
// read atomically; the set as a whole is approximately consistent (see
// the package comment).
func (r *Registry) Snapshot() []Value {
	r.mu.RLock()
	vals := make([]Value, len(r.entries))
	for i, e := range r.entries {
		vals[i] = e.read()
	}
	r.mu.RUnlock()
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].Name != vals[j].Name {
			return vals[i].Name < vals[j].Name
		}
		return vals[i].Labels < vals[j].Labels
	})
	return vals
}

// series renders a Value's full series identifier: the bare name, or
// name{labels} for labeled series.
func (v Value) series() string {
	if v.Labels == "" {
		return v.Name
	}
	return v.Name + "{" + v.Labels + "}"
}

// quantileSeries renders the summary-quantile series for a histogram
// Value, merging the quantile label into any existing labels.
func (v Value) quantileSeries(q string) string {
	if v.Labels == "" {
		return fmt.Sprintf("%s{quantile=%q}", v.Name, q)
	}
	return fmt.Sprintf("%s{%s,quantile=%q}", v.Name, v.Labels, q)
}

// WriteExpvar writes the registry as one expvar-style JSON object: metric
// name → number, histograms → an object with count/sum/min/max/mean and
// the window quantiles. The output is deterministic (sorted by name) and
// built by hand so the write path stays dependency-free.
func (r *Registry) WriteExpvar(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n")
	for i, v := range r.Snapshot() {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "%q: ", v.series())
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%d", v.Counter)
		case KindGauge:
			fmt.Fprintf(&b, "%g", v.Gauge)
		case KindHistogram:
			h := v.Hist
			fmt.Fprintf(&b, `{"count": %d, "sum": %d, "min": %d, "max": %d, "mean": %d, "p50": %d, "p90": %d, "p99": %d, "p999": %d}`,
				h.Count, h.Sum, h.Min, h.Max, h.Mean(), h.P50, h.P90, h.P99, h.P999)
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Histograms are exported as summaries: <name>{quantile="..."}
// series plus <name>_sum and <name>_count. Units are appended to HELP, not
// encoded in the metric name — names are chosen by the caller.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	prevName := ""
	for _, v := range r.Snapshot() {
		if v.Name != prevName {
			// HELP/TYPE once per base name: labeled series under one name
			// share a single header (the exposition-format requirement).
			help := v.Help
			if v.Unit != "" {
				help += " (" + v.Unit + ")"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", v.Name, help, v.Name, v.Kind)
			prevName = v.Name
		}
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s %d\n", v.series(), v.Counter)
		case KindGauge:
			fmt.Fprintf(&b, "%s %g\n", v.series(), v.Gauge)
		case KindHistogram:
			h := v.Hist
			fmt.Fprintf(&b, "%s %d\n", v.quantileSeries("0.5"), h.P50)
			fmt.Fprintf(&b, "%s %d\n", v.quantileSeries("0.9"), h.P90)
			fmt.Fprintf(&b, "%s %d\n", v.quantileSeries("0.99"), h.P99)
			fmt.Fprintf(&b, "%s %d\n", v.quantileSeries("0.999"), h.P999)
			sumName, countName := v.Name+"_sum", v.Name+"_count"
			if v.Labels != "" {
				sumName += "{" + v.Labels + "}"
				countName += "{" + v.Labels + "}"
			}
			fmt.Fprintf(&b, "%s %d\n%s %d\n", sumName, h.Sum, countName, h.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP serves the registry: Prometheus text format when the request
// has ?format=prometheus (or an Accept header preferring text/plain),
// expvar-style JSON otherwise. Mount it wherever the operator wants the
// endpoint, e.g. http.Handle("/metrics", emb.MetricsRegistry()).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	prom := req.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(req.Header.Get("Accept"), "text/plain")
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	r.WriteExpvar(w)
}
