// Crash-recovery leg of the differential fuzzer (durability ISSUE). Per
// seed, the same adversarial churn generator that drives TestDifferential
// feeds two pipelines: a never-persisted shadow embedder recording the
// ground-truth embedding after every batch prefix, and a durable embedder
// whose filesystem dies mid-stream at a seed-derived fault point. After
// the "crash", the store is reopened on the real filesystem and must land
// on a self-check-clean state equal to a committed prefix of the stream —
// never shorter than what the WAL acknowledged under per-batch fsync —
// and must then track the shadow for the rest of the stream.
package check_test

import (
	"context"
	"errors"
	"math"
	"strconv"
	"testing"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/faultfs"
	"github.com/tree-svd/treesvd/internal/wal"
)

// cloneMat deep-copies an embedding matrix.
func cloneMat(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, r := range m {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// requireClose asserts entrywise agreement at the persistence tolerance
// (1e-9 relative — the save/load float-reassociation budget).
func requireClose(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > 1e-9*(1+math.Abs(want[i][j])) {
				t.Fatalf("%s: entry (%d,%d) = %g, want %g", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestCrashRecoveryDifferential(t *testing.T) {
	seeds := fuzzSeeds(t)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			t.Parallel()
			runCrashSeed(t, int64(seed))
		})
	}
}

func runCrashSeed(t *testing.T, seed int64) {
	ctx := context.Background()
	nodes := 20 + int(seed%3)*8
	maxNodes := nodes + 6
	subset := []int32{0, 3, 5, int32(nodes - 1)}
	cfg := treesvd.DurableConfig{
		Config: treesvd.Config{
			Dim: 4, Branch: 4, Levels: 2,
			MaxNodes: maxNodes, Seed: seed + 1, SelfCheck: true,
		},
		CheckpointEvery: 2,
		KeepCheckpoints: 2,
		SyncCheckpoints: true,
		SegmentSize:     256, // a few records per segment: rotation is on the crash path
	}
	initial, batches := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: nodes, MaxNodes: maxNodes, Degree: 3,
		Batches: 6, BatchSize: 12,
		SelfLoopFrac: 0.1, DeleteFrac: 0.2, DupFrac: 0.1, MissFrac: 0.1, GrowFrac: 0.1,
		BigBatch: -1,
		Protect:  subset,
		Seed:     seed,
	})

	// Ground truth: the embedding after every batch prefix, never persisted.
	shadowEmb, err := treesvd.New(initial.Clone(), subset, cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	shadow := [][][]float64{cloneMat(shadowEmb.Embedding())}
	for i, b := range batches {
		if _, err := shadowEmb.ApplyEvents(ctx, b); err != nil {
			t.Fatalf("shadow batch %d: %v", i, err)
		}
		shadow = append(shadow, cloneMat(shadowEmb.Embedding()))
	}

	// Fault plan: the mode and the operation it strikes at both derive from
	// the seed, so a sweep over seeds covers crash/bit-flip/fsync-error
	// points scattered across creates, appends, rotations, and checkpoints.
	modes := []faultfs.Mode{faultfs.Crash, faultfs.Crash, faultfs.BitFlip, faultfs.SyncError}
	plan := faultfs.Plan{
		Mode:         modes[seed%int64(len(modes))],
		FailAt:       1 + int(seed*7)%40,
		DropUnsynced: seed%2 == 1,
	}
	dir := t.TempDir()
	ffs := faultfs.Wrap(wal.OS, plan)

	acked, createFailed := 0, false
	d, err := treesvd.CreateWithFS(ffs, dir, initial.Clone(), subset, cfg)
	if err != nil {
		createFailed = true
	} else {
		for _, b := range batches {
			if _, err := d.ApplyEvents(ctx, b); err != nil {
				break
			}
			acked++
		}
		// A dying process never runs Close; leak the handle like a crash
		// would. (Close on a poisoned writer would only re-report the fault.)
	}

	// Recovery happens on the pristine filesystem — the fault model is a
	// process death, not a persistently broken disk.
	rec, err := treesvd.Open(dir, cfg)
	if err != nil {
		if createFailed && errors.Is(err, treesvd.ErrNoState) {
			return // the fault struck before Create committed checkpoint 0
		}
		t.Fatalf("seed %d (plan %+v): Open after fault: %v (createFailed=%v)", seed, plan, err, createFailed)
	}
	defer rec.Close()
	if err := rec.Embedder().Audit(); err != nil {
		t.Fatalf("seed %d: recovered state failed the audit: %v", seed, err)
	}
	info := rec.Recovery()
	prefix := int(info.CheckpointSeq) + info.ReplayedBatches
	if prefix > len(batches) {
		t.Fatalf("seed %d: recovered prefix %d beyond the %d-batch stream", seed, prefix, len(batches))
	}
	// Per-batch fsync durability floor; a silent bit flip may cost
	// acknowledged records (lenient recovery keeps the longest verifiable
	// prefix), every other mode may not.
	if plan.Mode != faultfs.BitFlip && prefix < acked {
		t.Fatalf("seed %d: recovered prefix %d < %d acknowledged batches", seed, prefix, acked)
	}
	requireClose(t, rec.Embedder().Embedding(), shadow[prefix], "recovered embedding")

	// The recovered store must pick the stream back up and track the
	// never-crashed shadow for every remaining prefix.
	for i, b := range batches[prefix:] {
		if _, err := rec.ApplyEvents(ctx, b); err != nil {
			t.Fatalf("seed %d: post-recovery batch %d: %v", seed, prefix+i, err)
		}
		requireClose(t, rec.Embedder().Embedding(), shadow[prefix+i+1], "post-recovery embedding")
	}
}
