package bench

import (
	"io"
	"strings"
	"testing"
)

// TestRegistryComplete pins the experiment inventory to DESIGN.md §3.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "table4", "exp2", "fig5scale", "exp3nc", "exp3lp",
		"exp4", "table7", "exp5", "fig11", "fig12", "fig13", "fig14", "ablations", "futurework",
		"churnstress"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := Lookup("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

// TestQuickExperimentsProduceRows runs every light experiment end-to-end
// at smoke scale: the full pipeline (datasets → PPR → factorizations →
// downstream tasks) must produce a non-empty, well-formed table.
func TestQuickExperimentsProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	o := QuickOptions()
	o.SubsetSize = 40
	o.Dim = 8
	o.Scale = 0.08
	for _, e := range Registry() {
		if e.Heavy {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %q row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
					for _, cell := range row {
						if strings.Contains(cell, "NaN") {
							t.Fatalf("table %q contains NaN cell", tab.Title)
						}
					}
				}
				tab.Fprint(io.Discard)
			}
		})
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"A", "B"}, Notes: []string{"n"}}
	tab.AddRow("1", "22")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "A", "22", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.SubsetSize != 300 || o.Dim != 32 {
		t.Fatalf("unexpected defaults %+v", o)
	}
	q := QuickOptions()
	if q.SubsetSize >= o.SubsetSize || q.Scale >= o.Scale {
		t.Fatal("quick options not smaller than defaults")
	}
}
