// Linkpred: recommend links for a set of target users — the paper's
// motivating application. The example holds out 30% of the subset's
// outgoing edges, embeds on the remaining graph, and measures how well
// dot-product scores between the subset (left) embedding and the
// right-factor embedding separate held-out edges from random non-edges.
package main

import (
	"fmt"
	"sort"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/eval"
)

func main() {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Flickr(), 0.5))
	g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
	subset := ds.SampleSubset(1, 150, 3)
	fmt.Printf("graph: %d nodes, %d edges; recommending for %d target users\n",
		g.NumNodes(), g.NumEdges(), len(subset))

	// Protocol of Section 6.1: hold out 30% of E_S as positives plus an
	// equal number of sampled non-edges; embed on the train graph.
	split := eval.NewLinkPredSplit(g, subset, 0.3, 9)
	fmt.Printf("held out %d positive edges (+%d negatives)\n", len(split.PosU), len(split.NegU))

	cfg := treesvd.Defaults()
	cfg.Dim = 32
	emb, err := treesvd.New(split.TrainGraph, subset, cfg)
	if err != nil {
		panic(err)
	}
	left := emb.Embedding()
	right := emb.RightEmbedding()

	// Precision at the balanced cut: rank all test pairs, label the top
	// half positive.
	rowOf := make(map[int32]int, len(subset))
	for i, v := range subset {
		rowOf[v] = i
	}
	type scored struct {
		u, v  int32
		score float64
		pos   bool
	}
	var all []scored
	score := func(u, v int32) float64 {
		var s float64
		for j := range left[rowOf[u]] {
			s += left[rowOf[u]][j] * right[v][j]
		}
		return s
	}
	for i := range split.PosU {
		all = append(all, scored{split.PosU[i], split.PosV[i], score(split.PosU[i], split.PosV[i]), true})
	}
	for i := range split.NegU {
		all = append(all, scored{split.NegU[i], split.NegV[i], score(split.NegU[i], split.NegV[i]), false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].score > all[b].score })
	k := len(split.PosU)
	hit := 0
	for _, s := range all[:k] {
		if s.pos {
			hit++
		}
	}
	fmt.Printf("link-prediction precision: %.1f%% (random guessing: 50%%)\n", 100*float64(hit)/float64(k))

	// The one-call API for the same task: top-k link candidates for one
	// target user, existing edges excluded.
	user := subset[0]
	recs, err := emb.Recommend(user, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntop recommendations for user %d:\n", user)
	for _, r := range recs {
		fmt.Printf("  suggest %d -> %d (score %.2f)\n", user, r.Node, r.Score)
	}
}
