// Command loadgen drives the treesvd HTTP service with an open-loop
// workload and reports latency percentiles per offered-load point. Open
// loop means requests launch on the arrival schedule regardless of how
// many are still in flight, so queueing delay shows up in the numbers
// instead of silently throttling the generator (the coordinated-omission
// trap of closed-loop benchmarks).
//
// By default it builds a synthetic embedder in process, serves it on a
// loopback listener and measures through the real HTTP stack — fully
// self-contained, which is how `make bench-serve` runs it. Point -addr at
// an already-running `serve` process to measure a remote deployment.
//
// Sources for reads are drawn Zipf-skewed over the subset (-skew), the
// read/write mix is -readmix, and each load point in -rates runs for
// -duration. Results go to -out as JSON:
//
//	{"points": [{"offered_rps": 400, "p50_us": ..., "p99_us": ..., "p999_us": ...}, ...]}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/client"
	"github.com/tree-svd/treesvd/server"
)

// pointResult is one offered-load point. achieved_rps and the latency
// percentiles cover accepted (served) requests only — goodput — so a
// point past the knee shows bounded accepted latency plus a shed count,
// not percentiles polluted by fast 503s. Before admission control
// existed shed was always 0 and the fields read exactly as before.
type pointResult struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int     `json:"requests"`
	Reads       int     `json:"reads"`
	Writes      int     `json:"writes"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	MaxUs       float64 `json:"max_us"`
}

// overloadResult characterizes one deliberately-past-the-knee point: the
// knee is the best achieved throughput across the sweep, the overload
// point offers twice that, and requests split into accepted (served)
// versus shed (admission-control 503). Graceful degradation means the
// accepted side stays fast — accepted_p99_within_3x records whether its
// p99 held within 3x the unloaded p99 from the sweep's lightest point,
// plus the server's default admission queue wait (25ms): time spent in
// the gate's queue is legitimate accepted-side latency under overload,
// and a couple of ms on top keeps scheduler noise on small smoke-scale
// samples from flapping the verdict.
// Unlike the sweep, the overload point bounds outstanding requests (the
// wrk2 compromise): arrivals stay on schedule, but once maxOutstanding
// are in flight, further arrivals count as unlaunched instead of piling
// client-side goroutines onto the same box — on a small machine an
// unbounded open loop at 2x the knee measures generator self-queueing,
// not the server. Unlaunched requests are overload the gate never got
// to see; they are reported, not hidden.
type overloadResult struct {
	OfferedRPS       float64 `json:"offered_rps"`
	KneeRPS          float64 `json:"knee_rps"`
	Requests         int     `json:"requests"`
	Accepted         int     `json:"accepted"`
	Shed             int     `json:"shed"`
	Unlaunched       int     `json:"unlaunched"`
	Errors           int     `json:"errors"`
	ShedRate         float64 `json:"shed_rate"`
	AcceptedP50us    float64 `json:"accepted_p50_us"`
	AcceptedP99us    float64 `json:"accepted_p99_us"`
	ShedP99us        float64 `json:"shed_p99_us"`
	UnloadedP99us    float64 `json:"unloaded_p99_us"`
	AcceptedWithin3x bool    `json:"accepted_p99_within_3x"`
}

type benchReport struct {
	GeneratedAt string          `json:"generated_at"`
	Target      string          `json:"target"`
	Nodes       int             `json:"nodes"`
	SubsetSize  int             `json:"subset_size"`
	Dim         int             `json:"dim"`
	ReadMix     float64         `json:"read_mix"`
	Skew        float64         `json:"skew"`
	K           int             `json:"k"`
	DurationSec float64         `json:"duration_sec_per_point"`
	Binary      bool            `json:"binary_codec"`
	Points      []pointResult   `json:"points"`
	Overload    *overloadResult `json:"overload,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server (empty = self-contained in-process server)")
		rates    = flag.String("rates", "200,500,1000", "comma-separated offered loads in req/s (>=3 points)")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per load point")
		readmix  = flag.Float64("readmix", 0.9, "fraction of requests that are reads (Recommend)")
		skew     = flag.Float64("skew", 1.1, "Zipf s parameter for read-key skew (>1)")
		k        = flag.Int("k", 10, "top-k per Recommend")
		binary   = flag.Bool("binary", false, "use the binary frame codec for reads")
		out      = flag.String("out", "BENCH_SERVE.json", "output JSON path")
		seed     = flag.Int64("seed", 1, "workload seed")
		nodes    = flag.Int("nodes", 4000, "in-process: initial node count")
		edges    = flag.Int("edges", 20000, "in-process: initial edge count")
		subset   = flag.Int("subset", 128, "in-process: subset size")
		dim      = flag.Int("dim", 16, "in-process: embedding dimension")
		shards   = flag.Int("shards", 1, "in-process: subset row shards")
		short    = flag.Bool("short", false, "CI smoke: tiny graph, short windows, low rates")
		overload = flag.Bool("overload", true, "after the sweep, run one point at 2x the observed knee and report accepted/shed split")
		readSlot = flag.Int("read-slots", 0, "in-process: admission slots per read endpoint (0 = server default, -1 = no gate)")
		ingSlot  = flag.Int("ingest-slots", 0, "in-process: admission slots for ingest (0 = server default, -1 = no gate)")
		queueDep = flag.Int("queue-depth", 0, "in-process: admission wait-queue depth (0 = 2x slots, -1 = no queue)")
		ovCap    = flag.Int("overload-cap", 256, "overload phase: max outstanding requests (size a few multiples past the admission gate)")
	)
	flag.Parse()

	if *short {
		*rates = "100,200,400"
		*duration = 400 * time.Millisecond
		*nodes, *edges, *subset, *dim = 600, 2400, 48, 8
	}
	offered, err := parseRates(*rates)
	if err != nil {
		fail(err)
	}
	if len(offered) < 3 {
		fail(fmt.Errorf("need at least 3 load points, got %d (-rates %q)", len(offered), *rates))
	}

	target := *addr
	var subsetIDs []int32
	var capacity int
	if target == "" {
		emb, err := buildSynthetic(*nodes, *edges, *subset, *dim, *shards, *seed)
		if err != nil {
			fail(err)
		}
		srv := server.New(emb, server.Options{
			Admission: server.AdmissionConfig{ReadSlots: *readSlot, IngestSlots: *ingSlot, QueueDepth: *queueDep},
		})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			fail(err)
		}
		defer srv.Shutdown(context.Background())
		target = srv.URL()
		subsetIDs = emb.Subset()
		capacity = 2 * *nodes
		fmt.Printf("loadgen: in-process server at %s (%d nodes, |S|=%d, d=%d)\n",
			target, *nodes, len(subsetIDs), *dim)
	} else {
		c := client.New(target, client.WithRetries(0))
		ver, err := c.Version(context.Background())
		if err != nil {
			fail(fmt.Errorf("probing %s: %w", target, err))
		}
		x, err := c.Embedding(context.Background())
		if err != nil {
			fail(fmt.Errorf("probing subset of %s: %w", target, err))
		}
		subsetIDs = x.Nodes
		capacity = ver.NumNodes // stay within what the server already holds
		fmt.Printf("loadgen: target %s (version %d, %d nodes, |S|=%d)\n",
			target, ver.Version, ver.NumNodes, len(subsetIDs))
	}
	if len(subsetIDs) == 0 {
		fail(fmt.Errorf("target has an empty subset"))
	}

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		Nodes:       capacity,
		SubsetSize:  len(subsetIDs),
		Dim:         *dim,
		ReadMix:     *readmix,
		Skew:        *skew,
		K:           *k,
		DurationSec: duration.Seconds(),
		Binary:      *binary,
	}
	for _, rps := range offered {
		pt := runPoint(target, rps, *duration, *readmix, *skew, *k, *binary, *seed, subsetIDs, capacity)
		report.Points = append(report.Points, pt)
		fmt.Printf("loadgen: %7.0f req/s offered -> %7.0f served, p50 %8.0fus  p99 %8.0fus  p999 %8.0fus  (%d shed, %d errors / %d reqs)\n",
			pt.OfferedRPS, pt.AchievedRPS, pt.P50us, pt.P99us, pt.P999us, pt.Shed, pt.Errors, pt.Requests)
	}

	if *overload {
		// Knee = best achieved throughput; unloaded baseline = p99 at
		// the lightest offered point (the -rates order is the user's).
		knee, unloaded := 0.0, report.Points[0]
		for _, pt := range report.Points {
			if pt.AchievedRPS > knee {
				knee = pt.AchievedRPS
			}
			if pt.OfferedRPS < unloaded.OfferedRPS {
				unloaded = pt
			}
		}
		ov := runOverload(target, knee, unloaded.P99us, *duration, *readmix, *skew, *k, *binary, *seed, *ovCap, subsetIDs, capacity)
		report.Overload = &ov
		fmt.Printf("loadgen: overload %7.0f req/s (2x knee %.0f) -> %d accepted (p99 %8.0fus, unloaded %8.0fus, within 3x: %v), %d shed (p99 %8.0fus), %d unlaunched, %d errors\n",
			ov.OfferedRPS, ov.KneeRPS, ov.Accepted, ov.AcceptedP99us, ov.UnloadedP99us, ov.AcceptedWithin3x, ov.Shed, ov.ShedP99us, ov.Unlaunched, ov.Errors)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("loadgen: wrote %s (%d load points)\n", *out, len(report.Points))
}

// runPoint offers rps requests/second for window and returns the latency
// distribution. Arrivals are scheduled against the wall clock: if the
// server falls behind, later requests still launch on time and absorb the
// queueing delay.
func runPoint(target string, rps float64, window time.Duration, readmix, skew float64, k int, binary bool, seed int64, subset []int32, capacity int) pointResult {
	interval := time.Duration(float64(time.Second) / rps)
	total := int(window.Seconds() * rps)
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(len(subset)-1))

	// Pre-draw the schedule so the dispatch loop does no rng work.
	type req struct {
		read bool
		src  int32
		u, v int32
	}
	plan := make([]req, total)
	for i := range plan {
		if rng.Float64() < readmix {
			plan[i] = req{read: true, src: subset[zipf.Uint64()]}
		} else {
			plan[i] = req{u: int32(rng.Intn(capacity)), v: int32(rng.Intn(capacity))}
		}
	}

	opts := []client.Option{client.WithRetries(0)}
	if binary {
		opts = append(opts, client.WithBinary(true))
	}
	c := client.New(target, opts...)
	ctx := context.Background()

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, total)
	var sheds, errs, reads, writes int
	var wg sync.WaitGroup
	start := time.Now()
	for i := range plan {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(r req) {
			defer wg.Done()
			t0 := time.Now()
			var err error
			if r.read {
				_, err = c.Recommend(ctx, r.src, k)
			} else {
				_, err = c.ApplyEvents(ctx, []treesvd.Event{{U: r.u, V: r.v, Type: treesvd.Insert}})
			}
			lat := time.Since(t0)
			var ove *treesvd.OverloadError
			mu.Lock()
			switch {
			case err == nil:
				latencies = append(latencies, lat)
			case errors.As(err, &ove):
				sheds++
			default:
				errs++
			}
			if r.read {
				reads++
			} else {
				writes++
			}
			mu.Unlock()
		}(plan[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return pointResult{
		OfferedRPS:  rps,
		AchievedRPS: float64(len(latencies)) / elapsed.Seconds(),
		Requests:    total,
		Reads:       reads,
		Writes:      writes,
		Shed:        sheds,
		Errors:      errs,
		P50us:       quantileUs(latencies, 0.50),
		P99us:       quantileUs(latencies, 0.99),
		P999us:      quantileUs(latencies, 0.999),
		MaxUs:       quantileUs(latencies, 1),
	}
}

// runOverload offers 2x the knee throughput for window and splits the
// outcomes: accepted requests (served responses, timed), sheds
// (admission-control *treesvd.OverloadError, also timed — rejections
// must be fast) and everything else as errors. Same open-loop dispatch
// as runPoint, so queueing delay lands in the accepted numbers.
func runOverload(target string, knee, unloadedP99us float64, window time.Duration, readmix, skew float64, k int, binary bool, seed int64, maxOutstanding int, subset []int32, capacity int) overloadResult {
	rps := 2 * knee
	interval := time.Duration(float64(time.Second) / rps)
	total := int(window.Seconds() * rps)
	rng := rand.New(rand.NewSource(seed + 1))
	zipf := rand.NewZipf(rng, skew, 1, uint64(len(subset)-1))

	type req struct {
		read bool
		src  int32
		u, v int32
	}
	plan := make([]req, total)
	for i := range plan {
		if rng.Float64() < readmix {
			plan[i] = req{read: true, src: subset[zipf.Uint64()]}
		} else {
			plan[i] = req{u: int32(rng.Intn(capacity)), v: int32(rng.Intn(capacity))}
		}
	}

	opts := []client.Option{client.WithRetries(0)}
	if binary {
		opts = append(opts, client.WithBinary(true))
	}
	c := client.New(target, opts...)
	ctx := context.Background()

	slots := make(chan struct{}, max(maxOutstanding, 1))
	var mu sync.Mutex
	accepted := make([]time.Duration, 0, total)
	var shed []time.Duration
	var errs, unlaunched int
	var wg sync.WaitGroup
	start := time.Now()
	for i := range plan {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case slots <- struct{}{}:
		default:
			unlaunched++
			continue
		}
		wg.Add(1)
		go func(r req) {
			defer func() { <-slots }()
			defer wg.Done()
			t0 := time.Now()
			var err error
			if r.read {
				_, err = c.Recommend(ctx, r.src, k)
			} else {
				_, err = c.ApplyEvents(ctx, []treesvd.Event{{U: r.u, V: r.v, Type: treesvd.Insert}})
			}
			lat := time.Since(t0)
			var ove *treesvd.OverloadError
			mu.Lock()
			switch {
			case err == nil:
				accepted = append(accepted, lat)
			case errors.As(err, &ove):
				shed = append(shed, lat)
			default:
				errs++
			}
			mu.Unlock()
		}(plan[i])
	}
	wg.Wait()

	sort.Slice(accepted, func(a, b int) bool { return accepted[a] < accepted[b] })
	sort.Slice(shed, func(a, b int) bool { return shed[a] < shed[b] })
	acceptedP99 := quantileUs(accepted, 0.99)
	return overloadResult{
		OfferedRPS:       rps,
		KneeRPS:          knee,
		Requests:         total,
		Accepted:         len(accepted),
		Shed:             len(shed),
		Unlaunched:       unlaunched,
		Errors:           errs,
		ShedRate:         float64(len(shed)) / float64(max(total, 1)),
		AcceptedP50us:    quantileUs(accepted, 0.50),
		AcceptedP99us:    acceptedP99,
		ShedP99us:        quantileUs(shed, 0.99),
		UnloadedP99us:    unloadedP99us,
		AcceptedWithin3x: acceptedP99 <= 3*unloadedP99us+27_000,
	}
}

// quantileUs is the nearest-rank quantile of a sorted sample, in µs.
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Microsecond)
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildSynthetic mirrors cmd/serve's generator: a random graph with a
// uniformly sampled subset and 2x node-capacity headroom for the writes.
func buildSynthetic(nodes, edges, subsetSize, dim, shards int, seed int64) (*treesvd.Embedder, error) {
	rng := rand.New(rand.NewSource(seed))
	g := treesvd.NewGraphN(nodes)
	for v := int32(0); int(v) < nodes; v++ {
		for {
			u := int32(rng.Intn(nodes))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < edges {
		g.InsertEdge(int32(rng.Intn(nodes)), int32(rng.Intn(nodes)))
	}
	subset := make([]int32, 0, subsetSize)
	for _, v := range rng.Perm(nodes) {
		if len(subset) == subsetSize {
			break
		}
		subset = append(subset, int32(v))
	}
	cfg := treesvd.Defaults()
	cfg.Dim = dim
	cfg.RMax = 1e-3
	cfg.Shards = shards
	cfg.Seed = seed
	cfg.MaxNodes = 2 * nodes
	return treesvd.New(g, subset, cfg)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
