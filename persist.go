package treesvd

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// persistVersion guards the save format; bump on incompatible changes.
const persistVersion = 1

// savedEmbedder is the gob wire form of an Embedder: configuration,
// subset, the dynamic graph, every PPR state, the proximity matrix with
// its lazy-update bookkeeping, and the tree's cached factorizations.
// Loading restores the exact maintenance state — subsequent ApplyEvents
// behave as if the process had never restarted.
type savedEmbedder struct {
	Version int
	Config  Config
	Subset  []int32
	Graph   *graph.Graph
	Fwd     []*ppr.State
	Rev     []*ppr.State
	M       *sparse.DynRow
	Tree    *core.TreeSnapshot
}

// Save serializes the embedder's complete state to w (gob encoding). It
// takes the update lock, so it is safe to call concurrently with
// ApplyEvents/Rebuild and always writes a fully committed state.
func (e *Embedder) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	saved := savedEmbedder{
		Version: persistVersion,
		Config:  e.cfg,
		Subset:  e.subset,
		Graph:   e.prox.Sub.Engine.G,
		Fwd:     e.prox.Sub.Fwd,
		Rev:     e.prox.Sub.Rev,
		M:       e.prox.M,
		Tree:    e.tree.Snapshot(),
	}
	return gob.NewEncoder(w).Encode(&saved)
}

// Load restores an Embedder previously written by Save.
func Load(r io.Reader) (*Embedder, error) {
	var saved savedEmbedder
	if err := gob.NewDecoder(r).Decode(&saved); err != nil {
		return nil, fmt.Errorf("treesvd: decode: %w", err)
	}
	if saved.Version != persistVersion {
		return nil, fmt.Errorf("treesvd: save format version %d, want %d", saved.Version, persistVersion)
	}
	// Structural validation of the decoded state: gob only guarantees the
	// wire types, not that the pieces agree with each other. Check the
	// cross-field invariants New establishes before wiring anything
	// together, so a truncated or hand-edited save errors here instead of
	// panicking on first use. RestoreSubset and RestoreTree re-check their
	// own pieces (state shapes, tree cache dims) below.
	switch {
	case saved.Graph == nil:
		return nil, fmt.Errorf("treesvd: corrupt save: missing graph")
	case saved.M == nil:
		return nil, fmt.Errorf("treesvd: corrupt save: missing proximity matrix")
	case saved.Tree == nil:
		return nil, fmt.Errorf("treesvd: corrupt save: missing tree snapshot")
	case len(saved.Subset) == 0:
		return nil, fmt.Errorf("treesvd: corrupt save: empty subset")
	case saved.M.Rows() != len(saved.Subset):
		return nil, fmt.Errorf("treesvd: corrupt save: proximity matrix has %d rows for a subset of %d nodes",
			saved.M.Rows(), len(saved.Subset))
	case saved.M.Cols() < saved.Graph.NumNodes():
		return nil, fmt.Errorf("treesvd: corrupt save: proximity matrix %d columns narrower than the %d-node graph",
			saved.M.Cols(), saved.Graph.NumNodes())
	}
	seen := make(map[int32]bool, len(saved.Subset))
	for _, v := range saved.Subset {
		if seen[v] {
			return nil, fmt.Errorf("treesvd: corrupt save: duplicate subset node %d", v)
		}
		seen[v] = true
	}
	cfg, err := saved.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	params := ppr.Params{Alpha: cfg.Alpha, RMax: cfg.RMax, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sub, err := ppr.RestoreSubset(saved.Graph, saved.Subset, params, saved.Fwd, saved.Rev)
	if err != nil {
		return nil, err
	}
	prox := ppr.RestoreProximity(sub, saved.M)
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: cfg.Workers,
	}
	tree, err := core.RestoreTree(saved.M, tcfg, saved.Tree)
	if err != nil {
		return nil, err
	}
	e := newEmbedder(cfg, saved.Subset, prox, tree)
	if !tree.Built() {
		// Defensive: a snapshot saved before any Build (not reachable via
		// New+Save, but cheap to repair here).
		if err := tree.Build(context.Background()); err != nil {
			return nil, err
		}
	}
	e.publishLocked()
	return e, nil
}
