package linalg

import (
	"fmt"
	"math"
)

// SVDResult holds a (possibly truncated) singular value decomposition
// A ≈ U·diag(S)·Vᵀ. U is rows×r, S has length r (descending, non-negative),
// V is cols×r (so Vᵀ is r×cols). V may be nil when the caller requested
// left factors only.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// Rank returns the number of retained singular triplets.
func (r *SVDResult) Rank() int { return len(r.S) }

// US returns U·diag(S), the "left embedding" matrix Ū = AV used throughout
// Tree-SVD as the compressed representation of a block.
func (r *SVDResult) US() *Dense {
	out := r.U.Clone()
	return out.MulDiag(r.S)
}

// USqrtS returns U·diag(√S), the embedding convention X = U√Σ of
// STRAP/NRP used for the final subset embedding.
func (r *SVDResult) USqrtS() *Dense {
	sq := make([]float64, len(r.S))
	for i, s := range r.S {
		if s > 0 {
			sq[i] = math.Sqrt(s)
		}
	}
	out := r.U.Clone()
	return out.MulDiag(sq)
}

// Truncate keeps the top d singular triplets (no-op if rank ≤ d).
func (r *SVDResult) Truncate(d int) *SVDResult {
	if d >= len(r.S) {
		return r
	}
	out := &SVDResult{U: r.U.SliceCols(0, d), S: append([]float64(nil), r.S[:d]...)}
	if r.V != nil {
		out.V = r.V.SliceCols(0, d)
	}
	return out
}

// Reconstruct returns U·diag(S)·Vᵀ. V must be present.
func (r *SVDResult) Reconstruct() *Dense {
	if r.V == nil {
		panic("linalg: Reconstruct requires V")
	}
	return MulT(r.US(), r.V)
}

// TailEnergy returns √(‖A‖²_F − Σ_{i<d} σ_i²) given the full Frobenius norm
// of the original matrix: the Frobenius distance ‖A − (A)_d‖_F when the
// decomposition is exact. It is the cached residual used by the lazy-update
// trigger (Lemma 3.4).
func (r *SVDResult) TailEnergy(frobNorm float64, d int) float64 {
	t := frobNorm * frobNorm
	for i := 0; i < d && i < len(r.S); i++ {
		t -= r.S[i] * r.S[i]
	}
	if t < 0 {
		t = 0 // rounding
	}
	return math.Sqrt(t)
}

// svdRankTol drops singular values below this relative threshold: they are
// numerically zero and their singular vectors are noise.
const svdRankTol = 1e-13

// SVD computes the exact thin SVD of a dense matrix via the eigensystem of
// the Gram matrix of the smaller side. For an m×n matrix with n ≤ m it
// eigendecomposes AᵀA (n×n); otherwise AAᵀ. This squares the condition
// number, which is acceptable for embedding workloads (singular values
// below √ε·σ₁ carry no embedding signal); JacobiSVD provides a slower
// one-sided route used to cross-validate in tests.
func SVD(a *Dense) *SVDResult {
	return svdLimited(a, -1, 1)
}

// SVDW is SVD with a worker budget for the Gram product, the eigensolve
// and the singular-vector recovery.
func SVDW(a *Dense, workers int) *SVDResult {
	return svdLimited(a, -1, workers)
}

// SVDTrunc computes the top-d thin SVD. The full eigensystem of the Gram
// matrix is still computed (exactness), but only the top d singular
// vectors of the larger side are recovered, which dominates the cost for
// d ≪ min(rows, cols).
func SVDTrunc(a *Dense, d int) *SVDResult {
	return svdLimited(a, d, 1)
}

// SVDTruncW is SVDTrunc with a worker budget.
func SVDTruncW(a *Dense, d, workers int) *SVDResult {
	return svdLimited(a, d, workers)
}

// svdLimited is the shared Gram-route implementation; maxRank < 0 keeps
// every numerically non-zero triplet. The Gram matrix is pooled scratch:
// SymEigW clones it internally, so it is released before the routine
// returns and every tree merge reuses the same storage.
func svdLimited(a *Dense, maxRank, workers int) *SVDResult {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return &SVDResult{U: NewDense(m, 0), S: nil, V: NewDense(n, 0)}
	}
	if n <= m {
		g := GetDense(n, n)
		gramInto(g, a, workers)
		lambda, v := SymEigW(g, workers)
		PutDense(g)
		s, rank := sigmaFromLambda(lambda)
		if maxRank >= 0 && rank > maxRank {
			rank = maxRank
			s = s[:rank]
		}
		vk := v.SliceCols(0, rank)
		// U = A·V·Σ⁻¹
		u := MulW(a, vk, workers)
		invScaleCols(u, s)
		return &SVDResult{U: u, S: s, V: vk}
	}
	g := GetDense(m, m)
	gramTInto(g, a, workers)
	lambda, u := SymEigW(g, workers)
	PutDense(g)
	s, rank := sigmaFromLambda(lambda)
	if maxRank >= 0 && rank > maxRank {
		rank = maxRank
		s = s[:rank]
	}
	uk := u.SliceCols(0, rank)
	// V = Aᵀ·U·Σ⁻¹
	v := TMulW(a, uk, workers)
	invScaleCols(v, s)
	return &SVDResult{U: uk, S: s, V: v}
}

func sigmaFromLambda(lambda []float64) ([]float64, int) {
	if len(lambda) == 0 {
		return nil, 0
	}
	max := lambda[0]
	if max <= 0 {
		return nil, 0
	}
	rank := 0
	s := make([]float64, 0, len(lambda))
	for _, l := range lambda {
		if l <= svdRankTol*max {
			break
		}
		s = append(s, math.Sqrt(l))
		rank++
	}
	return s, rank
}

func invScaleCols(m *Dense, s []float64) {
	inv := make([]float64, len(s))
	for i, v := range s {
		inv[i] = 1 / v
	}
	m.MulDiag(inv)
}

// JacobiSVD computes the thin SVD of an m×n matrix (m ≥ n required;
// transpose first otherwise) using the one-sided Jacobi method: rotate
// column pairs of A until they are mutually orthogonal, accumulate the
// rotations in V, then read σ and U off the column norms. Slower than the
// Gram route but does not square the condition number.
func JacobiSVD(a *Dense) *SVDResult {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: JacobiSVD requires rows ≥ cols, got %d×%d", m, n))
	}
	w := a.Clone()
	v := Identity(n)
	const tol = 1e-14
	for sweep := 0; sweep < symEigMaxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					xp := w.At(i, p)
					xq := w.At(i, q)
					app += xp * xp
					aqq += xq * xq
					apq += xp * xq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				rotated = true
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					xp := w.At(i, p)
					xq := w.At(i, q)
					w.Set(i, p, c*xp-s*xq)
					w.Set(i, q, s*xp+c*xq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}
	// Singular values are column norms of the rotated matrix.
	sig := make([]float64, n)
	for j := 0; j < n; j++ {
		var ss float64
		for i := 0; i < m; i++ {
			x := w.At(i, j)
			ss += x * x
		}
		sig[j] = math.Sqrt(ss)
	}
	// Sort descending, permuting w's and v's columns alongside.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // selection sort: n is small here
		best := i
		for j := i + 1; j < n; j++ {
			if sig[order[j]] > sig[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	maxSig := 0.0
	if n > 0 {
		maxSig = sig[order[0]]
	}
	rank := 0
	for _, j := range order {
		if sig[j] <= svdRankTol*maxSig || sig[j] == 0 {
			break
		}
		rank++
	}
	u := NewDense(m, rank)
	vOut := NewDense(n, rank)
	sOut := make([]float64, rank)
	for to := 0; to < rank; to++ {
		from := order[to]
		sOut[to] = sig[from]
		inv := 1 / sig[from]
		for i := 0; i < m; i++ {
			u.Set(i, to, w.At(i, from)*inv)
		}
		for i := 0; i < n; i++ {
			vOut.Set(i, to, v.At(i, from))
		}
	}
	return &SVDResult{U: u, S: sOut, V: vOut}
}
