// Package par provides the tiny worker-pool primitive used to
// parallelize the embarrassingly parallel stages of the pipeline:
// per-source PPR pushes, per-block level-1 factorizations and per-parent
// tree merges. The paper's reference setup uses 64 threads; this library
// mirrors that with a Workers knob (0 = GOMAXPROCS) threaded through the
// public configs.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values < 1 mean GOMAXPROCS.
func Workers(w int) int {
	if w < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// For runs fn(i) for every i in [0,n) across at most w workers. With one
// worker (or n ≤ 1) it degenerates to a plain loop — no goroutines, no
// overhead, fully deterministic ordering.
func For(n, w int, fn func(i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0,n) across at most w workers, with
// cancellation and first-error propagation: once ctx is done or any call
// returns an error, no further indices are scheduled and the first error
// observed is returned (in-flight calls run to completion first). A panic
// inside fn is recovered and converted into an error, so a failing task
// degrades into an error return instead of killing the process — the
// property that lets the update pipeline promise "no reachable panics".
// A nil ctx disables cancellation. With one worker (or n ≤ 1) it
// degenerates to a plain sequential loop.
func ForErr(ctx context.Context, n, w int, fn func(i int) error) error {
	return ForWorkerErr(ctx, n, w, func(_, i int) error { return fn(i) })
}

// ForWorkerErr is ForErr with the worker index passed to fn (see ForWorker).
func ForWorkerErr(ctx context.Context, n, w int, fn func(worker, i int) error) error {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := protect(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next  int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		stop  atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := protect(fn, worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return first
}

// protect invokes fn(worker, i), converting a panic into an error.
func protect(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v", i, r)
		}
	}()
	return fn(worker, i)
}

// ForWorker is For with the worker index passed to fn, so callers can use
// per-worker scratch state (e.g. one push engine per worker). Worker ids
// are in [0, Workers(w)) and stable within one call.
func ForWorker(n, w int, fn func(worker, i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}
