package server_test

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/client"
	"github.com/tree-svd/treesvd/internal/netfault"
	"github.com/tree-svd/treesvd/server"
)

// TestNetFaultStorm storms the serving stack through a fault-injecting
// listener, one sub-storm per fault mode: connection resets, latency
// spikes, partial writes (the torn-frame land) and byte corruption in
// either direction (the corrupt-frame land). Under injected network
// faults a request may fail any way it likes — transport error, 4xx from
// a mangled request, exhausted retries — but every response that does
// arrive must be internally consistent, the embedder must stay coherent
// (Audit), and once the faults stop the service must answer cleanly.
// Run under -race via `make chaos`.
func TestNetFaultStorm(t *testing.T) {
	plans := []netfault.Plan{
		{Mode: netfault.Reset, EveryN: 3, AfterBytes: 40},
		{Mode: netfault.Latency, EveryN: 3, Delay: 20 * time.Millisecond},
		{Mode: netfault.PartialWrite, EveryN: 3, AfterBytes: 80},
		{Mode: netfault.CorruptWrite, EveryN: 3, AfterBytes: 120},
		{Mode: netfault.CorruptRead, EveryN: 3, AfterBytes: 30},
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Mode.String(), func(t *testing.T) {
			t.Parallel()
			stormUnderFaults(t, plan)
		})
	}
}

func stormUnderFaults(t *testing.T, plan netfault.Plan) {
	g := buildGraph(rand.New(rand.NewSource(31)), 40, 160)
	emb, err := treesvd.New(g, testSubset, treesvd.Config{Dim: 6, RMax: 1e-3, MaxNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(emb, server.Options{})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := netfault.Wrap(inner, plan)
	go srv.Serve(fl)
	url := "http://" + inner.Addr().String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	const (
		readers   = 3
		readIters = 40
		batches   = 15
	)
	var (
		wg      sync.WaitGroup
		okReads atomic.Int64
		failed  atomic.Int64
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			c := client.New(url, client.WithRetries(2), client.WithBinary(seed%2 == 0))
			for i := 0; i < readIters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				switch rng.Intn(2) {
				case 0:
					k := 1 + rng.Intn(8)
					src := testSubset[rng.Intn(len(testSubset))]
					res, err := c.Recommend(ctx, src, k)
					if err != nil {
						failed.Add(1) // any failure shape is legal under injected faults
						cancel()
						continue
					}
					if len(res.Recs) > k {
						t.Errorf("reader: %d recs for k=%d", len(res.Recs), k)
					}
					for j := 1; j < len(res.Recs); j++ {
						if res.Recs[j].Score > res.Recs[j-1].Score {
							t.Errorf("reader: recs not sorted at %d", j)
						}
					}
				default:
					res, err := c.Embedding(ctx)
					if err != nil {
						failed.Add(1)
						cancel()
						continue
					}
					if len(res.Rows) != len(testSubset) {
						t.Errorf("reader: embedding has %d rows, want %d", len(res.Rows), len(testSubset))
					}
					for _, row := range res.Rows {
						if len(row) != 6 {
							t.Errorf("reader: embedding row dim %d, want 6", len(row))
						}
					}
				}
				okReads.Add(1)
				cancel()
			}
		}(int64(200 + r))
	}

	// Writer: small batches, single-attempt (the SDK never retries
	// writes); a batch lost to a faulted connection just counts as a
	// failure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		c := client.New(url, client.WithRetries(2))
		for i := 0; i < batches; i++ {
			batch := make([]treesvd.Event, 4)
			for j := range batch {
				batch[j] = treesvd.Event{U: int32(rng.Intn(60)), V: int32(rng.Intn(60)), Type: treesvd.Insert}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if _, err := c.ApplyEvents(ctx, batch); err != nil {
				failed.Add(1)
			}
			cancel()
		}
	}()

	wg.Wait()
	if okReads.Load() == 0 {
		t.Fatalf("storm made no progress under %v faults", plan.Mode)
	}
	if fl.Faulted() == 0 {
		t.Fatalf("no connection was ever faulted (%d accepted) — the storm tested nothing", fl.Accepted())
	}

	// The faults never touched process state: the embedder is coherent
	// and a patient client gets a clean answer.
	if err := emb.Audit(); err != nil {
		t.Fatalf("post-storm audit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := client.New(url, client.WithRetries(5))
	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatalf("post-storm version: %v", err)
	}
	if ver.SubsetSize != len(testSubset) {
		t.Fatalf("post-storm subset size %d, want %d", ver.SubsetSize, len(testSubset))
	}
	t.Logf("%v storm: %d clean reads, %d failures, %d/%d connections faulted",
		plan.Mode, okReads.Load(), failed.Load(), fl.Faulted(), fl.Accepted())
}
