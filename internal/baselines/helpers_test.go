package baselines

import "context"

// bgt is the test-wide context.
var bgt = context.Background()

// mustBL unwraps constructor/factorization results in tests.
func mustBL[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must0t fails the calling test (via panic) on an unexpected error.
func must0t(err error) {
	if err != nil {
		panic(err)
	}
}
