// Differential/metamorphic fuzzer for the dynamic Tree-SVD pipeline
// (ISSUE 3 tentpole). It lives in the external test package of
// internal/check so it can drive the public treesvd facade — treesvd
// imports check for Config.SelfCheck, so the reverse import is only legal
// from a _test package.
//
// For every seed, an adversarial churn stream (self-loops, deletes,
// duplicate inserts, missing deletes, node growth, one batch straddling
// the rebuild threshold) is driven through ApplyEvents, and after every
// batch the incrementally maintained embedder is compared against a fresh
// New on an identically-evolved clone of the graph:
//
//   - the internal invariant auditors must stay green (Config.SelfCheck
//     runs them before every publish; Audit re-checks via the public API),
//   - the relative reconstruction error must stay within the fresh
//     rebuild's error plus the Eqn. 2 lazy slack √2·δ (Theorems 3.2/3.7)
//     plus a small drift margin for the PPR estimates themselves,
//   - the score matrices X·Yᵀ of both pipelines must agree relative to
//     their scale within the same tolerance, and
//   - an embedder restored from a mid-stream Save must track the
//     never-restarted one near-bitwise for the rest of the stream.
//
// Batches also interleave a poisoned batch (node id beyond MaxNodes) that
// must be rejected atomically, and every published snapshot is checked
// for ghost recommendations — harness-level regressions for the ISSUE 3
// bug classes.
package check_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/check"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// fuzzSeeds returns how many seeds to run: TREESVD_FUZZ_SEEDS when set
// (make fuzz SEEDS=n), otherwise 8 — the short-mode CI budget.
func fuzzSeeds(t *testing.T) int {
	if s := os.Getenv("TREESVD_FUZZ_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("TREESVD_FUZZ_SEEDS=%q: want a positive integer", s)
		}
		return n
	}
	return 8
}

// gram returns aᵀ·b (d_a×d_b) for row-major matrices with d columns.
func gram(a, b [][]float64) [][]float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	da, db := len(a[0]), len(b[0])
	out := make([][]float64, da)
	for i := range out {
		out[i] = make([]float64, db)
	}
	for r := range a {
		ar, br := a[r], b[r]
		for i := 0; i < da; i++ {
			if ar[i] == 0 {
				continue
			}
			for j := 0; j < db; j++ {
				out[i][j] += ar[i] * br[j]
			}
		}
	}
	return out
}

// traceProd returns tr(p·q) for small square-compatible matrices.
func traceProd(p, q [][]float64) float64 {
	var s float64
	for i := range p {
		for j := range p[i] {
			s += p[i][j] * q[j][i]
		}
	}
	return s
}

// scoreDistSq returns ‖Xa·Yaᵀ − Xb·Ybᵀ‖²_F by the Gram-trace identity —
// O((|S|+n)·d²) instead of materializing two |S|×n score matrices.
func scoreDistSq(xa, ya, xb, yb [][]float64) float64 {
	return traceProd(gram(xa, xa), gram(ya, ya)) -
		2*traceProd(gram(xa, xb), gram(yb, ya)) +
		traceProd(gram(xb, xb), gram(yb, yb))
}

// scoreNormSq returns ‖X·Yᵀ‖²_F.
func scoreNormSq(x, y [][]float64) float64 {
	return traceProd(gram(x, x), gram(y, y))
}

func TestDifferential(t *testing.T) {
	seeds := fuzzSeeds(t)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			t.Parallel()
			runDifferentialSeed(t, int64(seed), nil)
		})
	}
}

// TestDifferentialDynamicUpdate re-runs the whole differential harness
// with the millisecond dynamic path switched on: Brand-style incremental
// SVD updates absorbing violating blocks and SOR-accelerated push. The
// Eqn. 2 tolerance stays at the library default (eager δ≈0 would starve
// the update path: its pre-check needs real trigger slack), UpdateMaxRel
// is opened wide so every violating block attempts the update, and
// UpdateTailFrac stays at its default so commits remain inside the same
// √2·δ error envelope the tolerance formulas below already budget for —
// which is exactly why the bounds need no loosening here.
func TestDifferentialDynamicUpdate(t *testing.T) {
	seeds := fuzzSeeds(t)
	var updated, rebuilt atomic.Uint64
	t.Cleanup(func() {
		// Parallel subtests finish before cleanup; across all seeds the
		// incremental path must have absorbed at least one block, or the
		// whole variant silently degenerated into the recompute baseline.
		if updated.Load() == 0 {
			t.Errorf("dynamic differential never took the update path (%d recomputes)", rebuilt.Load())
		}
	})
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			t.Parallel()
			m := runDifferentialSeed(t, int64(seed), func(cfg *treesvd.Config) {
				cfg.Delta = treesvd.Defaults().Delta
				cfg.SVDUpdate = true
				cfg.UpdateMaxRel = 1e6
				cfg.PushAccel = treesvd.PushSOR
			})
			updated.Add(m.BlocksUpdated)
			rebuilt.Add(m.BlocksRebuilt)
		})
	}
}

// runDifferentialSeed drives one adversarial churn stream through the
// incremental embedder and its fresh-build mirror, returning the
// embedder's final metrics. mutate, when non-nil, edits the seed's base
// configuration before the run (the dynamic-path variant hooks in here);
// the shadow PPR pipelines always mirror the final configuration's push
// variant so they keep tracking the embedder bitwise.
func runDifferentialSeed(t *testing.T, seed int64, mutate func(*treesvd.Config)) treesvd.Metrics {
	ctx := context.Background()
	nodes := 30 + int(seed%4)*10
	maxNodes := nodes + 12
	if seed%3 == 0 {
		maxNodes = nodes // every third seed: no growth headroom, fixed id range
	}
	subset := []int32{0, 2, 5, 7, 11, int32(nodes - 1)}
	const rmax = 0.01 // rebuild threshold at 1/rmax = 100 events
	cfg := treesvd.Config{
		Dim: 8, RMax: rmax, Branch: 4, Levels: 3,
		MaxNodes: maxNodes, Seed: seed + 1, SelfCheck: true,
	}
	if seed%2 == 0 {
		cfg.Delta = 1e-12 // eager: every touched block re-factors, sharp compare
	}
	if seed%4 == 1 {
		cfg.Workers = 2
	}
	if mutate != nil {
		mutate(&cfg)
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = treesvd.Defaults().Delta
	}

	initial, batches := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: nodes, MaxNodes: maxNodes, Degree: 3,
		Batches: 6, BatchSize: 24,
		SelfLoopFrac: 0.15, DeleteFrac: 0.2, DupFrac: 0.1, MissFrac: 0.1, GrowFrac: 0.1,
		BigBatch: 3, BigBatchSize: 120, // straddles the 1/rmax = 100 threshold
		Protect: subset,
		Seed:    seed,
	})

	emb, err := treesvd.New(initial.Clone(), subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mirror := initial.Clone() // evolves alongside emb for the fresh rebuilds
	var restored *treesvd.Embedder

	// Shadow proximity pipeline: the same incremental PPR maintenance the
	// embedder runs internally, mirrored here so the harness can measure
	// the exact estimate drift ‖M_inc − M_fresh‖_F — the term of the
	// equivalence bound the public API cannot expose. PPR pushes are
	// deterministic, so the shadow matrix tracks the embedder's bitwise
	// (asserted below through ProximityFrobNorm).
	params := ppr.Params{Alpha: 0.15, RMax: rmax, Workers: cfg.Workers,
		Accel: cfg.PushAccel == treesvd.PushSOR}
	nblocks := core.Config{Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels, Delta: delta, Seed: cfg.Seed}.Blocks()
	shadowSub, err := ppr.NewSubset(initial.Clone(), subset, params)
	if err != nil {
		t.Fatal(err)
	}
	shadow := ppr.NewProximity(shadowSub, maxNodes, nblocks)
	// Tight shadow: a second PPR mirror at r_max = 1e-6, never rebuilt, so
	// every batch flows through the incremental corrections. Its residue
	// bound Σ|r| ≤ r_max·vol is ~10⁻⁴ here — tight enough that the exact
	// ground-truth audit resolves estimate corruption the working r_max of
	// 0.01 would hide inside legitimately parked residue mass.
	tightSub, err := ppr.NewSubset(initial.Clone(), subset,
		ppr.Params{Alpha: params.Alpha, RMax: 1e-6, Workers: cfg.Workers, Accel: params.Accel})
	if err != nil {
		t.Fatal(err)
	}
	shadowApply := func(batch []treesvd.Event) error {
		if shadow.Sub.RebuildThreshold(len(batch)) {
			shadow.Sub.Engine.G.ApplyAll(batch)
			if err := shadow.Sub.Rebuild(ctx); err != nil {
				return err
			}
			shadow.RefreshAll()
			return nil
		}
		return shadow.ApplyEvents(ctx, batch)
	}
	// frobDiff computes ‖A − B‖_F over equal-shaped dense materializations.
	frobDiff := func(a, b *linalg.Dense) float64 {
		var sq float64
		for r := 0; r < a.Rows; r++ {
			ra, rb := a.Row(r), b.Row(r)
			for c := range ra {
				d := ra[c] - rb[c]
				sq += d * d
			}
		}
		return math.Sqrt(sq)
	}

	for b, batch := range batches {
		// Poison prelude: a batch referencing an id beyond capacity must be
		// rejected atomically — same version, graph untouched, and the
		// subsequent legitimate batch unaffected.
		if b == 2 {
			beforeVer, beforeEdges := emb.Version(), emb.Graph().NumEdges()
			poison := append([]treesvd.Event{{U: 0, V: int32(maxNodes), Type: treesvd.Insert}}, batch...)
			if _, err := emb.ApplyEvents(ctx, poison); err == nil {
				t.Fatalf("batch %d: poisoned batch accepted", b)
			}
			if emb.Version() != beforeVer || emb.Graph().NumEdges() != beforeEdges {
				t.Fatalf("batch %d: poisoned batch mutated state", b)
			}
		}

		if _, err := emb.ApplyEvents(ctx, batch); err != nil {
			t.Fatalf("batch %d: ApplyEvents: %v", b, err)
		}
		if err := emb.Audit(); err != nil {
			t.Fatalf("batch %d: audit: %v", b, err)
		}
		for _, ev := range batch {
			mirror.Apply(ev)
		}
		if got, want := emb.Graph().NumEdges(), mirror.NumEdges(); got != want {
			t.Fatalf("batch %d: embedder graph has %d edges, mirror %d", b, got, want)
		}

		// Differential core: fresh build on an identically-evolved graph.
		if err := shadowApply(batch); err != nil {
			t.Fatalf("batch %d: shadow pipeline: %v", b, err)
		}
		fresh, err := treesvd.New(mirror.Clone(), subset, cfg)
		if err != nil {
			t.Fatalf("batch %d: fresh New: %v", b, err)
		}
		mNorm := emb.ProximityFrobNorm()
		if mNorm == 0 {
			t.Fatalf("batch %d: zero proximity norm", b)
		}
		// The shadow pipeline must track the embedder's internal proximity
		// matrix exactly — same events, same deterministic maintenance.
		if d := math.Abs(shadow.M.FrobNorm() - mNorm); d > 1e-9*(1+mNorm) {
			t.Fatalf("batch %d: shadow proximity diverged from embedder: ‖M‖ %.12f vs %.12f",
				b, shadow.M.FrobNorm(), mNorm)
		}
		// Ground-truth audit: after any number of dynamic corrections, every
		// estimate must stay within its parked residue mass of the exact PPR
		// value — Algorithm 2's correctness criterion. This is what catches
		// maintenance bugs (like the self-loop corruption) that conserve
		// mass internally but walk the estimates away from the truth.
		if err := tightSub.ApplyEvents(ctx, batch); err != nil {
			t.Fatalf("batch %d: tight shadow: %v", b, err)
		}
		if err := check.PPRSubsetExact(tightSub); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		relInc := emb.ReconstructionError() / mNorm
		relFresh := fresh.ReconstructionError() / fresh.ProximityFrobNorm()
		// ‖M_inc − M_fresh‖_F: the dynamic Forward-Push drift — both
		// estimate sets satisfy the same r_max guarantee but park residues
		// differently, and the STRAP transform amplifies that by 1/r_max.
		freshSub, err := ppr.NewSubset(mirror.Clone(), subset, params)
		if err != nil {
			t.Fatalf("batch %d: fresh shadow subset: %v", b, err)
		}
		freshM := ppr.NewProximity(freshSub, maxNodes, nblocks)
		drift := frobDiff(shadow.M.ToDense(), freshM.M.ToDense())
		// Theorem 3.2/3.7 shape: each pipeline's score matrix X·Yᵀ equals
		// the rank-d projection U·Uᵀ·M of its own proximity matrix, so
		//
		//   ‖S_inc − S_fresh‖_F ≤ e_inc + ‖M_inc − M_fresh‖_F + e_fresh,
		//
		// with every term measured, not estimated. The lazy path's deferral
		// is already inside e_inc (bounded by the √2·δ trigger). The 2%
		// multiplicative slack covers float accumulation; the absolute term
		// covers the Gram-trace identity's cancellation floor — dist² is a
		// difference of O(scale²) traces, so dist itself is only resolved
		// down to about √eps·scale, even when the matrices agree bitwise.
		// The 5% multiplicative + 1e-7 absolute slack absorbs randomized-SVD
		// variance between the two pipelines' sketch draws when both errors
		// sit at float-noise level (e.g. right after a full rebuild).
		if tol := relFresh*1.05 + math.Sqrt2*delta + drift/mNorm + 1e-7; relInc > tol {
			t.Errorf("batch %d: incremental rel. reconstruction error %.3e exceeds fresh %.3e + lazy slack + drift %.3e (tol %.3e)",
				b, relInc, relFresh, drift/mNorm, tol)
		}
		xi, yi := emb.Embedding(), emb.RightEmbedding()
		xf, yf := fresh.Embedding(), fresh.RightEmbedding()
		scale := math.Sqrt(scoreNormSq(xf, yf))
		dist := math.Sqrt(math.Max(0, scoreDistSq(xi, yi, xf, yf)))
		eInc, eFresh := emb.ReconstructionError(), fresh.ReconstructionError()
		if tol := (eInc+eFresh+drift)*1.02 + 1e-5*(1+scale); dist > tol {
			t.Errorf("batch %d: score matrices diverge: ‖ΔS‖_F = %.3e > e_inc %.3e + e_fresh %.3e + drift %.3e (scale %.4f)",
				b, dist, eInc, eFresh, drift, scale)
		}

		// Ghost-node regression at harness level: recommendations must stay
		// within the ids that exist at this version.
		snap := emb.Snapshot()
		recs, err := snap.Recommend(subset[0], maxNodes)
		if err != nil {
			t.Fatalf("batch %d: Recommend: %v", b, err)
		}
		for _, r := range recs {
			if int(r.Node) >= snap.NumNodes() {
				t.Errorf("batch %d: ghost recommendation %d (graph has %d nodes)", b, r.Node, snap.NumNodes())
			}
		}

		// Persistence equivalence: restore from a mid-stream save and let
		// it track the never-restarted embedder for the rest of the stream.
		if b == 2 {
			var buf bytes.Buffer
			if err := emb.Save(&buf); err != nil {
				t.Fatalf("batch %d: Save: %v", b, err)
			}
			if restored, err = treesvd.Load(&buf); err != nil {
				t.Fatalf("batch %d: Load: %v", b, err)
			}
		} else if restored != nil {
			if _, err := restored.ApplyEvents(ctx, batch); err != nil {
				t.Fatalf("batch %d: restored ApplyEvents: %v", b, err)
			}
			xr := restored.Embedding()
			for i := range xi {
				for j := range xi[i] {
					if d := math.Abs(xi[i][j] - xr[i][j]); d > 1e-9*(1+math.Abs(xi[i][j])) {
						t.Fatalf("batch %d: restored embedder diverged at (%d,%d): %g vs %g",
							b, i, j, xr[i][j], xi[i][j])
					}
				}
			}
		}
	}
	return emb.Metrics()
}
