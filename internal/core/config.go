// Package core implements Tree-SVD, the paper's primary contribution: a
// hierarchical truncated SVD over vertically partitioned sparse matrices
// (Algorithm 3) whose per-block intermediate results are cached so that
// dynamic updates only re-factor blocks whose accumulated change violates
// the Frobenius trigger of Lemma 3.4 (Algorithm 4, the lazy update).
package core

import (
	"fmt"
)

// Config holds the Tree-SVD hyper-parameters (Table 2 notation in
// comments).
type Config struct {
	// Rank is the embedding dimension d; every truncated SVD in the tree
	// keeps d singular triplets.
	Rank int
	// Branch is the fan-in k: how many child results merge into one
	// parent matrix.
	Branch int
	// Levels is the tree depth q; the number of level-1 blocks is
	// b = k^(q-1). The paper uses q=3, k=8 → b=64.
	Levels int
	// Delta is the lazy-update threshold δ of Eqn. 2; a level-1 block is
	// re-factored when tail + ‖D_j‖_F > √2·δ·‖B_j‖_F. The theoretical
	// guarantee of Theorem 3.6 holds for δ ≤ (1+ε)/√2; the paper uses
	// 0.65 empirically.
	Delta float64
	// Oversample and PowerIters tune the level-1 randomized SVD.
	Oversample int
	PowerIters int
	// Seed makes the randomized level-1 factorization deterministic.
	Seed int64
	// UseCountSketch switches the level-1 range finder from Gaussian to
	// Clarkson–Woodruff (the input-sparsity-time variant); an ablation
	// knob, off by default.
	UseCountSketch bool
	// Workers parallelizes per-block factorization and per-level merges
	// (0 or 1 = sequential).
	Workers int
	// SVDUpdate enables the Brand-style incremental path (internal/svdupd):
	// a violating level-1 block whose delta is small absorbs D_j into the
	// cached (U, Σ, V) instead of re-running the randomized SVD, falling
	// back to the full recompute when the thresholds below say no. Off by
	// default; when off, behavior and memory use are bit-identical to
	// before the knob existed (the caches do not retain right factors).
	SVDUpdate bool
	// UpdateMaxRel is the update path's eligibility threshold: a dirty
	// block is updated in place only while ‖D_j‖_F ≤ UpdateMaxRel·√2·δ·
	// ‖B_j‖_F (the same trigger quantity as Eqn. 2). Bigger deltas carry
	// enough new spectrum that a fresh randomized SVD is both cheaper and
	// tighter. Zero means the default 0.5.
	UpdateMaxRel float64
	// UpdateTailFrac budgets the error the update path may accumulate: the
	// discarded spectral mass since the block's last full factorization
	// must stay within UpdateTailFrac·√2·δ·‖B_j‖_F or the block falls back
	// to a full recompute (which resets the budget). Zero means the
	// default 0.25.
	UpdateTailFrac float64
}

// DefaultConfig mirrors the paper's settings scaled to this repository's
// benchmark sizes: q=3, k=8, b=64, δ=0.65.
func DefaultConfig(rank int) Config {
	return Config{Rank: rank, Branch: 8, Levels: 3, Delta: 0.65, Oversample: 8, PowerIters: 0, Seed: 1}
}

// Blocks returns b = k^(q-1), the requested number of level-1 blocks.
func (c Config) Blocks() int {
	b := 1
	for i := 1; i < c.Levels; i++ {
		b *= c.Branch
	}
	return b
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("core: rank %d must be positive", c.Rank)
	}
	if c.Branch < 2 {
		return fmt.Errorf("core: branch %d must be ≥ 2", c.Branch)
	}
	if c.Levels < 2 {
		return fmt.Errorf("core: levels %d must be ≥ 2", c.Levels)
	}
	if c.Delta < 0 {
		return fmt.Errorf("core: delta %g must be non-negative", c.Delta)
	}
	if c.UpdateMaxRel < 0 {
		return fmt.Errorf("core: update max-rel threshold %g must be non-negative", c.UpdateMaxRel)
	}
	if c.UpdateTailFrac < 0 {
		return fmt.Errorf("core: update tail fraction %g must be non-negative", c.UpdateTailFrac)
	}
	return nil
}

// Tuning defaults for the incremental-update thresholds; see UpdateMaxRel
// and UpdateTailFrac.
const (
	DefaultUpdateMaxRel   = 0.5
	DefaultUpdateTailFrac = 0.25
)

// updateMaxRel resolves the zero-means-default eligibility threshold.
func (c Config) updateMaxRel() float64 {
	if c.UpdateMaxRel == 0 {
		return DefaultUpdateMaxRel
	}
	return c.UpdateMaxRel
}

// updateTailFrac resolves the zero-means-default error budget.
func (c Config) updateTailFrac() float64 {
	if c.UpdateTailFrac == 0 {
		return DefaultUpdateTailFrac
	}
	return c.UpdateTailFrac
}
