package sparse

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
)

// lowerSparseFlopGate drops the dispatch floor so small test matrices
// exercise the parallel sparse kernels; restored via t.Cleanup.
func lowerSparseFlopGate(t *testing.T) {
	t.Helper()
	old := spMinFlops
	spMinFlops = 1
	t.Cleanup(func() { spMinFlops = old })
}

func TestMulDenseWMatchesSerial(t *testing.T) {
	lowerSparseFlopGate(t)
	rng := rand.New(rand.NewSource(31))
	for _, sh := range []struct{ r, c, k int }{{1, 1, 1}, {9, 5, 3}, {60, 40, 7}, {0, 4, 3}} {
		m := randCSR(rng, sh.r, sh.c, 0.3)
		b := randDense(rng, sh.c, sh.k)
		ref := m.MulDenseW(b, 1)
		for _, w := range []int{2, 3, 8} {
			if d := linalg.MaxAbsDiff(ref, m.MulDenseW(b, w)); d != 0 {
				t.Fatalf("%v workers=%d: differs by %g (must be bit-identical)", sh, w, d)
			}
		}
	}
}

func TestDenseLeftMulWMatchesSerial(t *testing.T) {
	lowerSparseFlopGate(t)
	rng := rand.New(rand.NewSource(37))
	for _, sh := range []struct{ k, r, c int }{{1, 1, 1}, {4, 9, 5}, {7, 60, 40}} {
		m := randCSR(rng, sh.r, sh.c, 0.3)
		b := randDense(rng, sh.k, sh.r)
		ref := m.DenseLeftMulW(b, 1)
		for _, w := range []int{2, 3, 8} {
			if d := linalg.MaxAbsDiff(ref, m.DenseLeftMulW(b, w)); d != 0 {
				t.Fatalf("%v workers=%d: differs by %g (must be bit-identical)", sh, w, d)
			}
		}
	}
}

// TestTMulDenseWMatchesSerial allows a summation-scaled tolerance: the
// parallel transpose-product reduces per-worker partials, so across
// worker counts results agree only to reordered-summation rounding (the
// kernel layer's documented bit-stability exemption). For a fixed worker
// count the result must still be deterministic.
func TestTMulDenseWMatchesSerial(t *testing.T) {
	lowerSparseFlopGate(t)
	rng := rand.New(rand.NewSource(41))
	for _, sh := range []struct{ r, c, k int }{{1, 1, 1}, {9, 5, 3}, {60, 40, 7}, {200, 30, 5}} {
		m := randCSR(rng, sh.r, sh.c, 0.3)
		b := randDense(rng, sh.r, sh.k)
		ref := m.TMulDenseW(b, 1)
		scale := 1.0
		for _, v := range ref.Data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-12 * float64(sh.r+1) * scale
		for _, w := range []int{2, 3, 8} {
			got := m.TMulDenseW(b, w)
			if d := linalg.MaxAbsDiff(ref, got); d > tol {
				t.Fatalf("%v workers=%d: differs by %g > tol %g", sh, w, d, tol)
			}
			if d := linalg.MaxAbsDiff(got, m.TMulDenseW(b, w)); d != 0 {
				t.Fatalf("%v workers=%d: non-deterministic for fixed worker count (%g)", sh, w, d)
			}
		}
	}
}

// TestDynRowTMulDense checks the direct-from-maps transpose product
// against the CSR route it replaces in ReconstructionError. The two visit
// each output row's contributions in the same ascending input-row order,
// so they must agree exactly.
func TestDynRowTMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewDynRow(12, 50, 5)
	for i := 0; i < 200; i++ {
		m.Set(rng.Intn(12), rng.Intn(50), rng.NormFloat64())
	}
	b := randDense(rng, 12, 7)
	want := m.ToCSR().TMulDense(b)
	if d := linalg.MaxAbsDiff(want, m.TMulDense(b)); d != 0 {
		t.Fatalf("DynRow.TMulDense differs from CSR route by %g", d)
	}
}
