package server

import (
	"sync"

	"github.com/tree-svd/treesvd/internal/obs"
)

// endpointMetrics is one endpoint's request instrumentation, registered
// under treesvd_http_*{endpoint="..."} labels in the embedder's own
// registry — the serving layer shows up on the same /metrics page as the
// pipeline it fronts.
type endpointMetrics struct {
	requests obs.Counter
	errors   obs.Counter
	shed     obs.Counter
	queued   obs.Gauge
	nanos    obs.Histogram
}

// metrics is the server-side metric set for one embedder.
type metrics struct {
	inflight      obs.Gauge
	ingestBatches obs.Counter
	ingestEvents  obs.Counter

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	reg       *obs.Registry
}

// endpoints the server instruments; registered eagerly so the series
// exist (at zero) before the first request.
var endpointNames = []string{"version", "recommend", "embedding", "rightembedding", "ingest"}

// registryMetrics caches one metrics set per obs.Registry. Registration
// into a registry is permanent and duplicate registration panics, so a
// server restart on the same embedder — the storm test's shutdown/
// restart cycle, or any reconfigure-and-relisten — must reuse the set
// registered by the first server rather than re-register.
var registryMetrics sync.Map // *obs.Registry -> *metrics

// metricsFor returns the (single) server metric set for reg, creating
// and registering it on first use.
func metricsFor(reg *obs.Registry) *metrics {
	if m, ok := registryMetrics.Load(reg); ok {
		return m.(*metrics)
	}
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpointNames)), reg: reg}
	actual, loaded := registryMetrics.LoadOrStore(reg, m)
	if loaded {
		return actual.(*metrics)
	}
	reg.Gauge("treesvd_http_inflight", "requests", "HTTP requests currently being served", &m.inflight)
	reg.Counter("treesvd_http_ingest_batches_total", "batches",
		"Event batches accepted over HTTP ingest", &m.ingestBatches)
	reg.Counter("treesvd_http_ingest_events_total", "events",
		"Edge events accepted over HTTP ingest", &m.ingestEvents)
	for _, name := range endpointNames {
		em := &endpointMetrics{}
		m.endpoints[name] = em
		ls := []obs.Label{{Key: "endpoint", Value: name}}
		reg.CounterWith("treesvd_http_requests_total", ls, "requests",
			"HTTP requests served, by endpoint", &em.requests)
		reg.CounterWith("treesvd_http_errors_total", ls, "requests",
			"HTTP requests answered with status >= 400, by endpoint", &em.errors)
		reg.CounterWith("treesvd_http_shed_total", ls, "requests",
			"HTTP requests shed by admission control, by endpoint", &em.shed)
		reg.GaugeWith("treesvd_http_queued", ls, "requests",
			"HTTP requests waiting in the admission queue, by endpoint", &em.queued)
		reg.HistogramWith("treesvd_http_request_nanos", ls, "ns",
			"Server-side wall time per HTTP request, by endpoint", &em.nanos)
	}
	return m
}

// endpoint returns the named endpoint's metric set.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		// Unknown endpoints get an unregistered set rather than a panic;
		// the named ones are all registered eagerly above.
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}
