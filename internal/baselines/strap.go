package baselines

import (
	"context"
	"math"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// STRAPResult bundles the left (|rows|×d) and right (n×d) embeddings of a
// STRAP-style factorization, X = U√Σ and Y = V√Σ.
type STRAPResult struct {
	Left  *linalg.Dense
	Right *linalg.Dense
	Root  *linalg.SVDResult
}

// strapFactor applies the randomized truncated SVD to a proximity CSR and
// extracts both embedding sides.
func strapFactor(m *sparse.CSR, dim int, opts rsvd.Options) (*STRAPResult, error) {
	opts.Rank = dim
	res, err := rsvd.Sparse(m, opts)
	if err != nil {
		return nil, err
	}
	sq := make([]float64, len(res.S))
	for i, s := range res.S {
		if s > 0 {
			sq[i] = math.Sqrt(s)
		}
	}
	right := res.V.Clone().MulDiag(sq)
	return &STRAPResult{Left: res.USqrtS(), Right: right, Root: res}, nil
}

// SubsetSTRAP extends STRAP to the subset setting (Section 2.2): build the
// log-transformed PPR proximity matrix for the rows of S only, then take a
// full truncated SVD from scratch. It is the quality reference that
// Tree-SVD matches at a fraction of the (re)computation cost.
type SubsetSTRAP struct {
	Prox *ppr.Proximity
	Dim  int
	Seed int64
}

// NewSubsetSTRAP builds the proximity state for subset s over g.
func NewSubsetSTRAP(g *graph.Graph, s []int32, params ppr.Params, maxNodes, dim int, seed int64) (*SubsetSTRAP, error) {
	sub, err := ppr.NewSubset(g, s, params)
	if err != nil {
		return nil, err
	}
	// Block count is irrelevant for STRAP itself; reuse a coarse split.
	return &SubsetSTRAP{Prox: ppr.NewProximity(sub, maxNodes, 16), Dim: dim, Seed: seed}, nil
}

// ApplyEvents advances the proximity matrix incrementally (the PPR side is
// shared with Tree-SVD; only the factorization differs).
func (s *SubsetSTRAP) ApplyEvents(ctx context.Context, events []graph.Event) error {
	return s.Prox.ApplyEvents(ctx, events)
}

// Factorize runs the from-scratch truncated SVD of the current proximity
// matrix — the step Subset-STRAP must redo in full at every snapshot.
func (s *SubsetSTRAP) Factorize() (*STRAPResult, error) {
	return strapFactor(s.Prox.M.ToCSR(), s.Dim, rsvd.Options{Seed: s.Seed, PowerIters: 2})
}

// GlobalSTRAP is the whole-graph STRAP: the proximity matrix covers every
// node as a source, with a correspondingly coarser per-source push budget.
// Its subset rows are extracted after the global factorization — the
// configuration shown in Table 1 to lose badly to subset methods.
type GlobalSTRAP struct {
	G      *graph.Graph
	Params ppr.Params
	Dim    int
	Seed   int64
}

// NewGlobalSTRAP prepares a global STRAP run. params.RMax should be coarser
// than the subset methods' (the paper's framing: a global method cannot
// afford the same per-source accuracy on all n sources).
func NewGlobalSTRAP(g *graph.Graph, params ppr.Params, dim int, seed int64) *GlobalSTRAP {
	return &GlobalSTRAP{G: g, Params: params, Dim: dim, Seed: seed}
}

// Factorize builds the full n×n log-PPR proximity matrix and factors it.
func (g *GlobalSTRAP) Factorize() (*STRAPResult, error) {
	n := g.G.NumNodes()
	eng, err := ppr.NewEngine(g.G, g.Params)
	if err != nil {
		return nil, err
	}
	b := sparse.NewBuilder(n, n)
	rmax := g.Params.RMax
	for src := 0; src < n; src++ {
		stF := ppr.NewState(int32(src), graph.Forward)
		eng.Push(stF)
		stR := ppr.NewState(int32(src), graph.Reverse)
		eng.Push(stR)
		for v, pv := range stR.P {
			arg := (stF.P[v] + pv) / rmax
			if arg > 1 {
				b.Add(src, int(v), math.Log(arg))
			}
		}
		// Forward-only entries (no reverse mass).
		for v, pf := range stF.P {
			if _, ok := stR.P[v]; ok {
				continue
			}
			arg := pf / rmax
			if arg > 1 {
				b.Add(src, int(v), math.Log(arg))
			}
		}
	}
	return strapFactor(b.Build(), g.Dim, rsvd.Options{Seed: g.Seed, PowerIters: 2})
}

// SubsetRows extracts the rows of a global left embedding belonging to s.
func SubsetRows(global *linalg.Dense, s []int32) *linalg.Dense {
	out := linalg.NewDense(len(s), global.Cols)
	for i, v := range s {
		copy(out.Row(i), global.Row(int(v)))
	}
	return out
}
