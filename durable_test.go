package treesvd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/faultfs"
	"github.com/tree-svd/treesvd/internal/wal"
)

// durableFixture is the deterministic workload shared by the durable
// tests: an initial graph, a churn stream, the durable configuration, and
// the ground truth — the embedding after every batch prefix, computed on
// a never-persisted embedder.
type durableFixture struct {
	initial *Graph
	subset  []int32
	batches [][]Event
	cfg     DurableConfig
	shadow  [][][]float64 // shadow[i] = embedding after batches[:i]
}

func newDurableFixture(t testing.TB) *durableFixture { return newShardedDurableFixture(t, 1) }

// newShardedDurableFixture is the fixture at an explicit shard count;
// the shadow trajectory is computed under the same sharding so recovered
// states compare at the persistence tolerance.
func newShardedDurableFixture(t testing.TB, shards int) *durableFixture {
	t.Helper()
	subset := []int32{0, 3, 5, 9}
	initial, batches := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: 20, MaxNodes: 24, Degree: 3,
		Batches: 6, BatchSize: 10,
		SelfLoopFrac: 0.1, DeleteFrac: 0.2, DupFrac: 0.1, MissFrac: 0.1, GrowFrac: 0.1,
		BigBatch: -1,
		Protect:  subset,
		Seed:     11,
	})
	fx := &durableFixture{
		initial: initial,
		subset:  subset,
		batches: batches,
		cfg: DurableConfig{
			Config:          Config{Dim: 4, Branch: 4, Levels: 2, MaxNodes: 24, Seed: 5, Shards: shards},
			CheckpointEvery: 2,
			KeepCheckpoints: 2,
			SyncCheckpoints: true,
			SegmentSize:     256, // a few records per segment: rotation is on every crash path
		},
	}
	emb, err := New(initial.Clone(), subset, fx.cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	fx.shadow = append(fx.shadow, copyMat(emb.Embedding()))
	for i, b := range batches {
		if _, err := emb.ApplyEvents(bgt, b); err != nil {
			t.Fatalf("shadow batch %d: %v", i, err)
		}
		fx.shadow = append(fx.shadow, copyMat(emb.Embedding()))
	}
	return fx
}

func copyMat(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, r := range m {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// requireMatClose asserts entrywise agreement at the persistence
// tolerance (1e-9 relative — the save/load float-reassociation budget
// documented in persist_test.go).
func requireMatClose(t testing.TB, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > 1e-9*(1+math.Abs(want[i][j])) {
				t.Fatalf("%s: entry (%d,%d) = %g, want %g", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// runWorkload drives the whole fixture stream through a durable embedder
// on fsys, stopping at the first error the way a dying process would.
func (fx *durableFixture) runWorkload(fsys wal.FS, dir string) (acked int, createFailed bool, err error) {
	d, err := CreateWithFS(fsys, dir, fx.initial.Clone(), fx.subset, fx.cfg)
	if err != nil {
		return 0, true, err
	}
	for _, b := range fx.batches {
		if _, err := d.ApplyEvents(nil, b); err != nil {
			return acked, false, err
		}
		acked++
	}
	return acked, false, d.Close()
}

func TestDurableCreateOpenRoundTrip(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	acked, createFailed, err := fx.runWorkload(wal.OS, dir)
	if err != nil || createFailed || acked != len(fx.batches) {
		t.Fatalf("workload: acked %d, createFailed %v, err %v", acked, createFailed, err)
	}
	d, err := Open(dir, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	info := d.Recovery()
	if got := int(info.CheckpointSeq) + info.ReplayedBatches; got != len(fx.batches) {
		t.Fatalf("recovered prefix %d (checkpoint %d + replayed %d), want %d",
			got, info.CheckpointSeq, info.ReplayedBatches, len(fx.batches))
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], "reopened embedding")
}

func TestOpenWithoutStateFails(t *testing.T) {
	_, err := Open(t.TempDir(), DurableConfig{})
	if !errors.Is(err, ErrNoState) {
		t.Fatalf("Open on empty dir: %v, want ErrNoState", err)
	}
	// A directory that does not exist at all is the same condition for a
	// consumer probing "is there a store yet?".
	_, err = Open(filepath.Join(t.TempDir(), "never-created"), DurableConfig{})
	if !errors.Is(err, ErrNoState) {
		t.Fatalf("Open on missing dir: %v, want ErrNoState", err)
	}
}

func TestCreateRefusesExistingState(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	d, err := Create(dir, fx.initial.Clone(), fx.subset, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, fx.initial.Clone(), fx.subset, fx.cfg); err == nil {
		t.Fatal("Create over an existing store succeeded")
	}
}

func TestDurableReplayWithoutCheckpoints(t *testing.T) {
	fx := newDurableFixture(t)
	cfg := fx.cfg
	cfg.CheckpointEvery = -1 // WAL replay must carry the whole stream
	dir := t.TempDir()
	d, err := Create(dir, fx.initial.Clone(), fx.subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range fx.batches {
		if _, err := d.ApplyEvents(nil, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	info := d.Recovery()
	if info.CheckpointSeq != 0 || info.ReplayedBatches != len(fx.batches) {
		t.Fatalf("recovery = %+v, want all %d batches replayed from checkpoint 0", info, len(fx.batches))
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], "replayed embedding")
}

func TestDurableCheckpointPrunesWAL(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	if _, _, err := fx.runWorkload(wal.OS, dir); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, segs []string
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".ckpt") {
			ckpts = append(ckpts, n.Name())
		}
		if strings.HasSuffix(n.Name(), ".log") {
			segs = append(segs, n.Name())
		}
	}
	if len(ckpts) != fx.cfg.KeepCheckpoints {
		t.Fatalf("store holds %d checkpoints %v, want %d", len(ckpts), ckpts, fx.cfg.KeepCheckpoints)
	}
	// 6 batches ≈ 106 bytes each against 256-byte segments is ≥3 segments;
	// pruning up to the oldest kept checkpoint (seq 4) must have removed
	// the earliest of them.
	if len(segs) >= 4 {
		t.Fatalf("store still holds %d WAL segments %v — pruning never ran", len(segs), segs)
	}
}

func TestOpenFallsBackPastCorruptCheckpoint(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	if _, _, err := fx.runWorkload(wal.OS, dir); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the newest checkpoint's payload.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".ckpt") && n.Name() > newest {
			newest = n.Name()
		}
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	info := d.Recovery()
	if info.SkippedCheckpoints != 1 {
		t.Fatalf("recovery skipped %d checkpoints, want 1", info.SkippedCheckpoints)
	}
	// The fallback checkpoint plus WAL replay must land on the full stream:
	// segments are only pruned up to the oldest kept checkpoint.
	if got := int(info.CheckpointSeq) + info.ReplayedBatches; got != len(fx.batches) {
		t.Fatalf("fallback recovered prefix %d, want %d", got, len(fx.batches))
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], "fallback embedding")
}

func TestOpenRejectsFullyCorruptStore(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	if _, _, err := fx.runWorkload(wal.OS, dir); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if !strings.HasSuffix(n.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(dir, n.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = Open(dir, fx.cfg)
	var corrupt *CorruptStateError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Open with every checkpoint corrupt: %v, want *CorruptStateError", err)
	}
}

func TestDurableRetriesLoggedBatchAfterFailure(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	d, err := Create(dir, fx.initial.Clone(), fx.subset, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A cancelled context fails the in-memory apply after the batch is
	// durably logged; the wrapper must re-apply it before the next batch
	// so memory never falls behind the log.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.ApplyEvents(cancelled, fx.batches[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled apply returned %v", err)
	}
	if _, err := d.ApplyEvents(bgt, fx.batches[1]); err != nil {
		t.Fatal(err)
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[2], "embedding after retry")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// And the log must agree: both batches recovered.
	d, err = Open(dir, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	info := d.Recovery()
	if got := int(info.CheckpointSeq) + info.ReplayedBatches; got != 2 {
		t.Fatalf("recovered prefix %d, want 2", got)
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[2], "reopened embedding after retry")
}

func TestDurableRejectsInvalidBatchBeforeLogging(t *testing.T) {
	fx := newDurableFixture(t)
	dir := t.TempDir()
	d, err := Create(dir, fx.initial.Clone(), fx.subset, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	poison := []Event{{U: 0, V: int32(fx.cfg.Config.MaxNodes), Type: Insert}}
	var nre *NodeRangeError
	if _, err := d.ApplyEvents(nil, poison); !errors.As(err, &nre) {
		t.Fatalf("poisoned batch returned %v, want *NodeRangeError", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Nothing may have reached the log: reopen replays zero batches.
	d, err = Open(dir, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if info := d.Recovery(); info.CheckpointSeq != 0 || info.ReplayedBatches != 0 {
		t.Fatalf("rejected batch leaked into the log: %+v", info)
	}
}

// TestCrashPointMatrix is the fault-injection acceptance test: for every
// failure mode, the fault point k is swept from the first filesystem
// operation until a run completes with no fault fired — so every crash
// point of the workload (record appends, segment rotations, checkpoint
// writes, renames, prunes) is visited exactly once. After every fault,
// Open must land on a self-check-clean state equal to a committed prefix
// of the stream (never shorter than what was acknowledged under the
// per-batch fsync policy), and the store must accept further updates.
func TestCrashPointMatrix(t *testing.T) {
	runCrashMatrix(t, newDurableFixture(t))
}

// TestCrashPointMatrixSharded re-runs the full crash-point sweep with a
// 3-shard embedder. Every checkpoint now commits as a multi-file set —
// three shard payloads, fsynced in order, then the manifest whose rename
// is the commit point — so the sweep additionally kills the store
// between shard writes, between the last shard write and the manifest,
// and during orphan pruning. The recovery contract is unchanged: an
// audit-clean committed prefix, never shorter than what was
// acknowledged under per-batch fsync.
func TestCrashPointMatrixSharded(t *testing.T) {
	runCrashMatrix(t, newShardedDurableFixture(t, 3))
}

func runCrashMatrix(t *testing.T, fx *durableFixture) {
	plans := []struct {
		name string
		plan faultfs.Plan
	}{
		{"crash-torn", faultfs.Plan{Mode: faultfs.Crash}},
		{"crash-dropcache", faultfs.Plan{Mode: faultfs.Crash, DropUnsynced: true}},
		{"bitflip", faultfs.Plan{Mode: faultfs.BitFlip}},
		{"syncerror", faultfs.Plan{Mode: faultfs.SyncError}},
	}
	for _, tc := range plans {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			points := 0
			for k := 1; ; k++ {
				plan := tc.plan
				plan.FailAt = k
				dir := t.TempDir()
				ffs := faultfs.Wrap(wal.OS, plan)
				acked, createFailed, werr := fx.runWorkload(ffs, dir)
				if !ffs.Fired() {
					if werr != nil {
						t.Fatalf("k=%d: fault never fired yet the workload failed: %v", k, werr)
					}
					break // swept past the last operation: matrix complete
				}
				points++
				fx.verifyRecovery(t, dir, k, acked, createFailed, tc.plan.Mode)
			}
			if points < 10 {
				t.Fatalf("sweep visited only %d fault points — the workload shrank?", points)
			}
			t.Logf("%s: %d fault points verified", tc.name, points)
		})
	}
}

// matClose is the non-fatal form of requireMatClose, for probing which
// shadow prefix a state corresponds to.
func matClose(got, want [][]float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range want[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > 1e-9*(1+math.Abs(want[i][j])) {
				return false
			}
		}
	}
	return true
}

// TestDiskFullDegradedReopen sweeps an injected ENOSPC across every
// write and fsync of the workload. At each fault point the store must
// either seal into read-only degraded mode (a WAL append failed: reads
// keep serving the pre-fault snapshot, further ingest returns a typed
// *DegradedError) or surface a plain checkpoint error with the batch
// still applied. After the operator clears the fault, Reopen must
// restore ingest, the rest of the stream must apply, and a final
// Close/Open round trip must land on the full-stream shadow — no
// acknowledged batch lost anywhere in the sweep.
func TestDiskFullDegradedReopen(t *testing.T) {
	fx := newDurableFixture(t)
	var traceMu sync.Mutex
	seals, reopens := 0, 0
	cfg := fx.cfg
	cfg.Trace = func(ev TraceEvent) {
		if ev.Kind != TraceDegraded {
			return
		}
		traceMu.Lock()
		if ev.Err != nil {
			seals++
		} else {
			reopens++
		}
		traceMu.Unlock()
	}
	points, degradedPoints := 0, 0
	for k := 1; ; k++ {
		dir := t.TempDir()
		ffs := faultfs.Wrap(wal.OS, faultfs.Plan{FailAt: k, Mode: faultfs.DiskFull})
		label := fmt.Sprintf("diskfull@%d", k)
		d, err := CreateWithFS(ffs, dir, fx.initial.Clone(), fx.subset, cfg)
		if err != nil {
			if !ffs.Fired() {
				t.Fatalf("%s: Create failed without the fault firing: %v", label, err)
			}
			if !errors.Is(err, faultfs.ErrDiskFull) {
				t.Fatalf("%s: Create failed with %v, want ErrDiskFull", label, err)
			}
			// The disk filled during Create: nothing was ever acknowledged.
			// Once space frees, the directory either never committed its
			// first checkpoint (ErrNoState) or recovers to the empty prefix.
			ffs.Clear()
			if d2, err := OpenWithFS(ffs, dir, cfg); err == nil {
				requireMatClose(t, d2.Embedder().Embedding(), fx.shadow[0], label+" post-create-fault embedding")
				d2.Close()
			} else if !errors.Is(err, ErrNoState) {
				t.Fatalf("%s: Open after cleared create fault: %v", label, err)
			}
			points++
			continue
		}

		applied := 0
		sealed := false
		for applied < len(fx.batches) {
			_, err := d.ApplyEvents(nil, fx.batches[applied])
			if err == nil {
				applied++
				continue
			}
			if !ffs.Fired() {
				t.Fatalf("%s: batch %d failed without the fault firing: %v", label, applied, err)
			}
			var de *DegradedError
			if errors.As(err, &de) {
				sealed = true
				if !errors.Is(err, faultfs.ErrDiskFull) {
					t.Fatalf("%s: DegradedError does not wrap ErrDiskFull: %v", label, err)
				}
				if d.Degraded() == nil {
					t.Fatalf("%s: DegradedError returned but Degraded() is nil", label)
				}
				// Reads keep serving the last published snapshot.
				requireMatClose(t, d.Embedder().Embedding(), fx.shadow[applied], label+" degraded reads")
				// Ingest stays sealed until Reopen, even after retrying.
				if _, err := d.ApplyEvents(nil, fx.batches[applied]); !errors.As(err, &de) {
					t.Fatalf("%s: ingest while degraded returned %v, want *DegradedError", label, err)
				}
				// Reopen before the fault clears fails and stays degraded.
				if err := d.Reopen(); err == nil {
					t.Fatalf("%s: Reopen succeeded while the disk is still full", label)
				}
				if d.Degraded() == nil {
					t.Fatalf("%s: failed Reopen cleared degraded mode", label)
				}
				ffs.Clear()
				if err := d.Reopen(); err != nil {
					t.Fatalf("%s: Reopen after clearing the fault: %v", label, err)
				}
				if d.Degraded() != nil {
					t.Fatalf("%s: Reopen left the store degraded", label)
				}
				// A failed fsync can leave the unacknowledged batch fully
				// logged; Reopen folds it in so memory matches replay.
				if matClose(d.Embedder().Embedding(), fx.shadow[applied+1]) {
					applied++
				} else {
					requireMatClose(t, d.Embedder().Embedding(), fx.shadow[applied], label+" reopened embedding")
				}
				continue
			}
			// Not an append failure: the checkpoint I/O hit ENOSPC after the
			// batch was logged and applied. The store must not be sealed.
			if d.Degraded() != nil {
				t.Fatalf("%s: checkpoint failure sealed the store: %v", label, err)
			}
			applied++
			ffs.Clear()
		}
		if sealed {
			degradedPoints++
		}
		requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], label+" final embedding")
		// The sweep tail pushes the fault into the epilogue — shutdown
		// checkpoint, directory reopen, the post-recovery probe. An ENOSPC
		// there is operator-visible but must not lose acked data either.
		tolerateDiskFull := func(stage string, err error) {
			t.Helper()
			if err == nil {
				return
			}
			if !ffs.Fired() || !errors.Is(err, faultfs.ErrDiskFull) {
				t.Fatalf("%s: %s: %v", label, stage, err)
			}
			ffs.Clear()
		}
		tolerateDiskFull("Close", d.Close())
		// The directory must recover to the full stream on a fresh Open.
		d2, err := OpenWithFS(ffs, dir, cfg)
		if err != nil {
			tolerateDiskFull("reopen directory", err)
			if d2, err = OpenWithFS(ffs, dir, cfg); err != nil {
				t.Fatalf("%s: reopen directory after clearing the fault: %v", label, err)
			}
		}
		requireMatClose(t, d2.Embedder().Embedding(), fx.shadow[len(fx.batches)], label+" recovered embedding")
		if _, err := d2.ApplyEvents(nil, []Event{{U: 1, V: 2, Type: Insert}}); err != nil {
			tolerateDiskFull("post-recovery ApplyEvents", err)
		}
		tolerateDiskFull("post-recovery Close", d2.Close())
		points++
		if !ffs.Fired() {
			break // swept past the last write/sync: matrix complete
		}
	}
	if points < 10 || degradedPoints < 3 {
		t.Fatalf("sweep visited %d fault points, %d of them degraded — the workload shrank?", points, degradedPoints)
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	// Every mid-stream seal was Reopened; the epilogue probe can add seals
	// that are closed out without a Reopen, so seals may exceed reopens.
	if reopens != degradedPoints || seals < degradedPoints {
		t.Fatalf("TraceDegraded fired %d seals / %d reopens, want >=%d seals and exactly %d reopens",
			seals, reopens, degradedPoints, degradedPoints)
	}
	t.Logf("diskfull: %d fault points verified, %d sealed into degraded mode", points, degradedPoints)
}

// TestShardedDurableRoundTrip is the sharded create/run/reopen parity
// check: the recovered 3-shard state (manifest + shard payload files +
// WAL replay) must match the sharded shadow at the persistence
// tolerance.
func TestShardedDurableRoundTrip(t *testing.T) {
	fx := newShardedDurableFixture(t, 3)
	dir := t.TempDir()
	acked, createFailed, err := fx.runWorkload(wal.OS, dir)
	if err != nil || createFailed || acked != len(fx.batches) {
		t.Fatalf("workload: acked %d, createFailed %v, err %v", acked, createFailed, err)
	}
	d, err := Open(dir, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Embedder().NumShards(); got != 3 {
		t.Fatalf("recovered NumShards = %d, want 3", got)
	}
	info := d.Recovery()
	if got := int(info.CheckpointSeq) + info.ReplayedBatches; got != len(fx.batches) {
		t.Fatalf("recovered prefix %d, want %d", got, len(fx.batches))
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], "reopened sharded embedding")
}

// TestOpenFallsBackPastDamagedShardFile damages one shard payload file
// of the newest committed checkpoint — a bit flip in one run, deletion
// in the other — and requires Open to classify the whole checkpoint as
// corrupt, fall back to the previous one, and replay the WAL to the full
// stream.
func TestOpenFallsBackPastDamagedShardFile(t *testing.T) {
	for _, damage := range []string{"bitflip", "missing"} {
		damage := damage
		t.Run(damage, func(t *testing.T) {
			fx := newShardedDurableFixture(t, 3)
			dir := t.TempDir()
			if _, _, err := fx.runWorkload(wal.OS, dir); err != nil {
				t.Fatal(err)
			}
			cks, err := wal.ListCheckpoints(wal.OS, dir)
			if err != nil || len(cks) < 2 {
				t.Fatalf("checkpoints: %v, %v (need ≥2 for a fallback)", cks, err)
			}
			target := filepath.Join(dir, wal.ShardCheckpointName(cks[len(cks)-1].Seq, 1))
			switch damage {
			case "bitflip":
				data, err := os.ReadFile(target)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x20
				if err := os.WriteFile(target, data, 0o644); err != nil {
					t.Fatal(err)
				}
			case "missing":
				if err := os.Remove(target); err != nil {
					t.Fatal(err)
				}
			}
			d, err := Open(dir, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			info := d.Recovery()
			if info.SkippedCheckpoints != 1 {
				t.Fatalf("recovery skipped %d checkpoints, want 1", info.SkippedCheckpoints)
			}
			if got := int(info.CheckpointSeq) + info.ReplayedBatches; got != len(fx.batches) {
				t.Fatalf("fallback recovered prefix %d, want %d", got, len(fx.batches))
			}
			requireMatClose(t, d.Embedder().Embedding(), fx.shadow[len(fx.batches)], "fallback sharded embedding")
		})
	}
}

func (fx *durableFixture) verifyRecovery(t *testing.T, dir string, k, acked int, createFailed bool, mode faultfs.Mode) {
	t.Helper()
	label := fmt.Sprintf("%v@%d", mode, k)
	d, err := Open(dir, fx.cfg)
	if err != nil {
		// The only acceptable failure: the fault struck before Create
		// committed the first checkpoint, so the store never existed and
		// nothing was ever acknowledged.
		if createFailed && errors.Is(err, ErrNoState) {
			return
		}
		t.Fatalf("%s: Open: %v (createFailed=%v)", label, err, createFailed)
	}
	defer d.Close()
	info := d.Recovery()
	prefix := int(info.CheckpointSeq) + info.ReplayedBatches
	if prefix > len(fx.batches) {
		t.Fatalf("%s: recovered prefix %d beyond the %d-batch stream", label, prefix, len(fx.batches))
	}
	// Durability floor: with per-batch fsync, every acknowledged batch
	// survives any crash. A silent bit flip is the one mode allowed to
	// cost acknowledged (but still checksummed-detectable) records — that
	// is lenient recovery degrading to the longest verifiable prefix.
	if mode != faultfs.BitFlip && prefix < acked {
		t.Fatalf("%s: recovered prefix %d < %d acknowledged batches", label, prefix, acked)
	}
	requireMatClose(t, d.Embedder().Embedding(), fx.shadow[prefix], label+" embedding")
	// The recovered store must stay serviceable.
	extra := []Event{{U: 1, V: 2, Type: Insert}, {U: 2, V: 4, Type: Insert}}
	if _, err := d.ApplyEvents(nil, extra); err != nil {
		t.Fatalf("%s: post-recovery ApplyEvents: %v", label, err)
	}
}
