package treesvd

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// insertBatch pre-generates a batch of insert events so reader goroutines
// never have to touch the (writer-owned) graph.
func insertBatch(rng *rand.Rand, n, size int) []Event {
	events := make([]Event, 0, size)
	for len(events) < size {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			events = append(events, Event{U: u, V: v, Type: Insert})
		}
	}
	return events
}

func equalRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSnapshotStressRace races ≥8 concurrent readers against a writer
// applying event batches. Run with -race: the readers exercise Snapshot,
// Embedding, RightEmbedding, Recommend and Version while ApplyEvents
// mutates the pipeline underneath, and each reader checks that the
// versions it observes never go backwards.
func TestSnapshotStressRace(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	const n = 80
	g := buildGraph(rng, n, 320)
	subset := []int32{2, 5, 9, 14, 23, 31, 47, 58, 66, 71}
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3, Workers: 2}))

	const readers = 8
	batches := make([][]Event, 6)
	for i := range batches {
		batches[i] = insertBatch(rng, n, 25)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := subset[r%len(subset)]
			var prev uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := emb.Snapshot()
				if v := snap.Version(); v < prev {
					fail(errors.New("snapshot version went backwards"))
					return
				} else {
					prev = v
				}
				if x := snap.Embedding(); len(x) != len(subset) || len(x[0]) != 8 {
					fail(errors.New("bad embedding shape"))
					return
				}
				if y := snap.RightEmbedding(); len(y) != n {
					fail(errors.New("bad right embedding shape"))
					return
				}
				recs, err := snap.Recommend(src, 5)
				if err != nil {
					fail(err)
					return
				}
				for i := 1; i < len(recs); i++ {
					if recs[i].Score > recs[i-1].Score {
						fail(errors.New("recommendations not sorted by descending score"))
						return
					}
				}
			}
		}(r)
	}

	prev := emb.Version()
	for _, batch := range batches {
		if _, err := emb.ApplyEvents(bgt, batch); err != nil {
			close(done)
			wg.Wait()
			t.Fatal(err)
		}
		if v := emb.Version(); v != prev+1 {
			close(done)
			wg.Wait()
			t.Fatalf("writer saw version %d after update, want %d", v, prev+1)
		} else {
			prev = v
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestOldSnapshotUnchanged pins a snapshot, pushes the embedder through
// updates that change the published embedding, and verifies the pinned
// version still serves exactly the same numbers.
func TestOldSnapshotUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 50
	g := buildGraph(rng, n, 200)
	subset := []int32{1, 2, 3, 4, 5, 6}
	// Tiny Delta forces eager re-factorization so the update really
	// changes the published embedding.
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3, Delta: 1e-12}))

	old := emb.Snapshot()
	oldX := old.Embedding()
	oldY := old.RightEmbedding()
	oldRecs := mustTB(old.Recommend(3, 5))

	for i := 0; i < 3; i++ {
		mustTB(emb.ApplyEvents(bgt, insertBatch(rng, n, 30)))
	}
	if emb.Version() != old.Version()+3 {
		t.Fatalf("version %d after 3 updates from %d", emb.Version(), old.Version())
	}
	if equalRows(emb.Embedding(), oldX) {
		t.Fatal("test premise broken: updates did not change the live embedding")
	}

	if !equalRows(old.Embedding(), oldX) {
		t.Fatal("old snapshot's Embedding changed after updates")
	}
	if !equalRows(old.RightEmbedding(), oldY) {
		t.Fatal("old snapshot's RightEmbedding changed after updates")
	}
	recs := mustTB(old.Recommend(3, 5))
	if len(recs) != len(oldRecs) {
		t.Fatal("old snapshot's Recommend changed after updates")
	}
	for i := range recs {
		if recs[i] != oldRecs[i] {
			t.Fatalf("old snapshot's Recommend changed at %d: %+v vs %+v", i, recs[i], oldRecs[i])
		}
	}
}

// cancelAfter is a Context whose Err flips to Canceled after a fixed
// number of polls — it cancels an update deterministically *mid-flight*
// (the top-of-call check passes, a later worker-pool check fails).
type cancelAfter struct {
	context.Context
	calls atomic.Int32
	after int32
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancelledUpdateKeepsSnapshot cancels ApplyEvents mid-update and
// checks the published snapshot is untouched and fully readable, then
// verifies the embedder recovers on the next un-cancelled call.
func TestCancelledUpdateKeepsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 40
	g := buildGraph(rng, n, 160)
	subset := []int32{1, 3, 5, 7, 9}
	// Workers:1 keeps the pool sequential so the cancellation point is
	// deterministic.
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3, Workers: 1}))

	before := emb.Snapshot()
	beforeX := before.Embedding()

	ctx := &cancelAfter{Context: context.Background(), after: 1}
	if _, err := emb.ApplyEvents(ctx, insertBatch(rng, n, 20)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	if emb.Snapshot() != before {
		t.Fatal("cancelled update replaced the published snapshot")
	}
	if emb.Version() != before.Version() {
		t.Fatal("cancelled update bumped the version")
	}
	if !equalRows(emb.Embedding(), beforeX) {
		t.Fatal("cancelled update changed the readable embedding")
	}
	if _, err := emb.Recommend(3, 4); err != nil {
		t.Fatalf("Recommend after cancelled update: %v", err)
	}

	// Recovery: the next successful call rebuilds from scratch (the graph
	// advanced past the estimates) and publishes a fresh snapshot.
	if _, err := emb.ApplyEvents(bgt, insertBatch(rng, n, 10)); err != nil {
		t.Fatal(err)
	}
	if emb.Version() != before.Version()+1 {
		t.Fatalf("version %d after recovery, want %d", emb.Version(), before.Version()+1)
	}

	// Same contract for Rebuild.
	mid := emb.Snapshot()
	ctx = &cancelAfter{Context: context.Background(), after: 1}
	if err := emb.Rebuild(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Rebuild: got %v, want context.Canceled", err)
	}
	if emb.Snapshot() != mid {
		t.Fatal("cancelled Rebuild replaced the published snapshot")
	}
	if err := emb.Rebuild(bgt); err != nil {
		t.Fatal(err)
	}
	if emb.Version() != mid.Version()+1 {
		t.Fatal("successful Rebuild after cancellation did not publish")
	}
}

// TestRightEmbeddingComputedOncePerSnapshot hammers one snapshot's
// RightEmbedding and Recommend from many goroutines and checks Y was
// materialized exactly once — the call-counter form of the "second
// Recommend on an unchanged snapshot is ≥10× cheaper" criterion: the
// first call pays the O(nnz·d) Theorem 3.2 recovery, every later call
// reuses the cached Y and only pays the O(n·d) scoring loop.
func TestRightEmbeddingComputedOncePerSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := buildGraph(rng, 60, 240)
	subset := []int32{2, 4, 6, 8, 10, 12}
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3}))

	snap := emb.Snapshot()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				_ = snap.RightEmbedding()
				if _, err := snap.Recommend(subset[r%len(subset)], 5); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := snap.yComputes.Load(); got != 1 {
		t.Fatalf("right embedding materialized %d times on one snapshot, want 1", got)
	}

	// A new snapshot starts cold and pays the materialization again.
	mustTB(emb.ApplyEvents(bgt, insertBatch(rng, 60, 10)))
	next := emb.Snapshot()
	if next == snap {
		t.Fatal("update did not publish a new snapshot")
	}
	if next.yComputes.Load() != 0 {
		t.Fatal("fresh snapshot claims a materialized right embedding")
	}
	_ = next.RightEmbedding()
	if next.yComputes.Load() != 1 {
		t.Fatal("fresh snapshot did not materialize exactly once")
	}
}

// benchEmbedder builds a larger instance so Y materialization dominates.
func benchEmbedder(b *testing.B) *Embedder {
	b.Helper()
	rng := rand.New(rand.NewSource(44))
	const n = 1500
	g := buildGraph(rng, n, 6000)
	subset := make([]int32, 48)
	for i := range subset {
		subset[i] = int32(i * 7)
	}
	return mustTB(New(g, subset, Config{Dim: 16, RMax: 2e-4}))
}

// BenchmarkRecommendFirstCall measures Recommend on a cold snapshot —
// each iteration re-publishes so the call pays the Y materialization.
func BenchmarkRecommendFirstCall(b *testing.B) {
	emb := benchEmbedder(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		emb.mu.Lock()
		emb.publishLocked()
		emb.mu.Unlock()
		snap := emb.Snapshot()
		b.StartTimer()
		mustTB(snap.Recommend(7, 10))
	}
}

// BenchmarkRecommendCachedSnapshot measures Recommend on an unchanged
// snapshot whose Y is already materialized (the ≥10×-cheaper path).
func BenchmarkRecommendCachedSnapshot(b *testing.B) {
	emb := benchEmbedder(b)
	snap := emb.Snapshot()
	mustTB(snap.Recommend(7, 10)) // warm the cached Y
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustTB(snap.Recommend(7, 10))
	}
}
