package linalg

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/par"
)

// qrDeflationTol is the relative column-norm floor below which QRThin
// treats a column as numerically dependent on its predecessors.
const qrDeflationTol = 1e-13

// QRThin computes the thin QR factorization A = Q·R of an m×n matrix with
// m ≥ n using Householder reflections. Q is m×n with orthonormal columns
// and R is n×n upper triangular.
func QRThin(a *Dense) (q, r *Dense) { return QRThinW(a, 1) }

// QRThinW is QRThin with a worker budget. The working matrix is held
// transposed so that every Householder vector and every column it touches
// is a contiguous slice — the inner loops are pure []float64 traversals.
//
// The two O(m·n) passes per reflector — applying it to the trailing
// columns and, later, accumulating Q — write one working-matrix row per
// column index and read only the reflector (frozen before the pass), so
// both fan out over column panels; results are identical for every
// worker count. The reflector construction itself is a serial O(m) scan.
func QRThinW(a *Dense, workers int) (q, r *Dense) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QRThin requires rows ≥ cols, got %d×%d", m, n))
	}
	wt := a.T() // wt.Row(k) is column k of A
	betas := make([]float64, n)
	v0 := make([]float64, n)
	// Deflation floor: a column whose remaining norm is rounding noise
	// relative to the input must not seed a reflector — on rank-deficient
	// inputs such junk reflectors amplify noise exponentially across
	// steps. The column is zeroed instead (R gets an exact zero).
	floor := qrDeflationTol * Norm2(a.Data)
	// The reflector-application closure is hoisted out of the step loop and
	// parameterized through the c* locals (one escaping closure per
	// factorization instead of one per reflector); tgt switches between the
	// trailing-column pass and the Q-accumulation pass.
	var (
		tgt      *Dense
		ck, coff int
		cbeta    float64
		cvk      float64
		ctail    []float64
	)
	applyReflector := func(jlo, jhi int) {
		for j := coff + jlo; j < coff+jhi; j++ {
			cj := tgt.Row(j)
			dot := cbeta * (cvk*cj[ck] + Dot(ctail, cj[ck+1:]))
			cj[ck] -= dot * cvk
			axpy(cj[ck+1:], -dot, ctail)
		}
	}
	for k := 0; k < n; k++ {
		col := wt.Row(k)
		var norm float64
		for _, x := range col[k:] {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm <= floor {
			for i := k; i < m; i++ {
				col[i] = 0
			}
			continue
		}
		alpha := col[k]
		s := norm
		if alpha > 0 {
			s = -norm
		}
		v0[k] = alpha - s
		col[k] = s
		vtv := v0[k] * v0[k]
		for _, x := range col[k+1:] {
			vtv += x * x
		}
		if vtv == 0 {
			continue
		}
		beta := 2 / vtv
		betas[k] = beta
		tgt, ck, coff, cbeta, cvk, ctail = wt, k, k+1, beta, v0[k], col[k+1:]
		pw := kernelWorkers(workers, n-k-1, 2*(n-k-1)*(m-k))
		par.ForChunks(n-k-1, pw, applyReflector)
	}
	r = NewDense(n, n)
	for i := 0; i < n; i++ {
		ri := r.Row(i)
		for j := i; j < n; j++ {
			ri[j] = wt.Row(j)[i]
		}
	}
	// Accumulate Q (transposed: qt.Row(j) is column j of Q) by applying
	// reflectors in reverse to the identity's first n columns.
	qt := NewDense(n, m)
	for j := 0; j < n; j++ {
		qt.Row(j)[j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		tgt, ck, coff, cbeta, cvk, ctail = qt, k, 0, beta, v0[k], wt.Row(k)[k+1:]
		pw := kernelWorkers(workers, n, 2*n*(m-k))
		par.ForChunks(n, pw, applyReflector)
	}
	return qt.T(), r
}

// Orthonormalize replaces the columns of a with an orthonormal basis of
// their span (the Q factor of a thin QR) and returns a. It is the
// re-orthonormalization step of randomized subspace iteration.
func Orthonormalize(a *Dense) *Dense { return OrthonormalizeW(a, 1) }

// OrthonormalizeW is Orthonormalize with a worker budget.
func OrthonormalizeW(a *Dense, workers int) *Dense {
	q, _ := QRThinW(a, workers)
	copy(a.Data, q.Data)
	return a
}
