// Package treesvd is the public facade of the Tree-SVD library: efficient
// subset node embedding over large dynamic graphs via hierarchical
// truncated SVD with lazy updates (SIGMOD 2023).
//
// The typical lifecycle is:
//
//	g := treesvd.NewGraph()                    // or load an event stream
//	g.InsertEdge(0, 1); ...
//	emb, err := treesvd.New(g, subset, treesvd.Defaults())
//	X := emb.Embedding()                       // |S|×d subset embedding
//	...
//	emb.ApplyEvents(events)                    // graph changed
//	X = emb.Embedding()                        // lazily-updated embedding
//
// New runs the full pipeline: Forward-Push personalized PageRank on the
// graph and its reverse (Algorithms 1-2 of the paper), the STRAP-style
// log-transformed proximity matrix, and the hierarchical Tree-SVD
// factorization (Algorithm 3). ApplyEvents maintains everything
// incrementally: dynamic Forward-Push repairs the PPR estimates, the
// proximity matrix absorbs the changes with per-block Frobenius
// bookkeeping, and only blocks violating the Lemma 3.4 trigger are
// re-factored (Algorithm 4).
package treesvd

import (
	"fmt"
	"sort"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// Graph is a dynamic directed graph. The zero value is not usable; call
// NewGraph.
type Graph = graph.Graph

// Event is an edge insertion or deletion.
type Event = graph.Event

// Event types.
const (
	Insert = graph.Insert
	Delete = graph.Delete
)

// NewGraph returns an empty dynamic graph; nodes are created on demand by
// InsertEdge.
func NewGraph() *Graph { return graph.New(0) }

// NewGraphN returns a dynamic graph with n isolated nodes.
func NewGraphN(n int) *Graph { return graph.New(n) }

// Config bundles every knob of the pipeline. Zero values are replaced by
// the Defaults() counterparts.
type Config struct {
	// Dim is the embedding dimension d (default 32).
	Dim int
	// Alpha is the PPR decay factor (default 0.15).
	Alpha float64
	// RMax is the Forward-Push threshold (default 1e-4); smaller is more
	// accurate and more expensive.
	RMax float64
	// Branch (k, default 8) and Levels (q, default 3) set the tree shape;
	// the proximity matrix is split into k^(q-1) column blocks.
	Branch, Levels int
	// Delta is the lazy-update threshold δ of Eqn. 2. Zero selects the
	// default 0.65; pass a tiny positive value (e.g. 1e-12) to force
	// eager re-factorization of every touched block.
	Delta float64
	// MaxNodes bounds node ids the graph will ever reach. 0 means "the
	// graph's current size"; set it when the stream will grow the graph.
	MaxNodes int
	// Seed drives the randomized factorization (default 1).
	Seed int64
	// Workers parallelizes per-source PPR work and per-block
	// factorizations (0 or 1 = sequential). Results are identical for any
	// worker count.
	Workers int
}

// Defaults returns the paper's configuration (scaled d).
func Defaults() Config {
	return Config{Dim: 32, Alpha: 0.15, RMax: 1e-4, Branch: 8, Levels: 3, Delta: 0.65, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.RMax <= 0 {
		c.RMax = d.RMax
	}
	if c.Branch <= 0 {
		c.Branch = d.Branch
	}
	if c.Levels <= 0 {
		c.Levels = d.Levels
	}
	if c.Delta == 0 {
		c.Delta = d.Delta
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Embedder maintains subset embeddings over a dynamic graph.
type Embedder struct {
	cfg    Config
	subset []int32
	prox   *ppr.Proximity
	tree   *core.Tree
}

// New builds the initial embedding state for subset over g. The graph is
// retained and mutated by ApplyEvents; callers must not mutate it
// directly afterwards.
func New(g *Graph, subset []int32, cfg Config) (*Embedder, error) {
	cfg = cfg.withDefaults()
	if len(subset) == 0 {
		return nil, fmt.Errorf("treesvd: empty subset")
	}
	for _, v := range subset {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("treesvd: subset node %d outside graph with %d nodes", v, g.NumNodes())
		}
		if g.OutDeg(v) == 0 {
			return nil, fmt.Errorf("treesvd: subset node %d has no out-edges; PPR from it is degenerate", v)
		}
	}
	params := ppr.Params{Alpha: cfg.Alpha, RMax: cfg.RMax, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: cfg.Workers,
	}
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes < g.NumNodes() {
		maxNodes = g.NumNodes()
	}
	sub := ppr.NewSubset(g, subset, params)
	prox := ppr.NewProximity(sub, maxNodes, tcfg.Blocks())
	tree := core.NewTree(prox.M, tcfg)
	tree.Build()
	return &Embedder{cfg: cfg, subset: append([]int32(nil), subset...), prox: prox, tree: tree}, nil
}

// Subset returns the embedded node ids in row order.
func (e *Embedder) Subset() []int32 { return append([]int32(nil), e.subset...) }

// ApplyEvents advances the graph through a batch of edge events and
// lazily refreshes the factorization. It returns the number of level-1
// blocks that were re-factored (0 when every block stayed within the
// Eqn. 2 tolerance).
//
// Following Theorem 3.7's min(τ + 1/r_max, |S|/r_max) accounting, a batch
// larger than 1/r_max events is handled by recomputing the PPR states
// from scratch instead of replaying each event — the incremental path
// would cost more than a fresh push per source.
func (e *Embedder) ApplyEvents(events []Event) int {
	if e.prox.Sub.RebuildThreshold(len(events)) {
		e.prox.Sub.Engine.G.ApplyAll(events)
		e.prox.Sub.Rebuild()
		e.prox.RefreshAll()
	} else {
		e.prox.ApplyEvents(events)
	}
	return e.tree.Update()
}

// Rebuild recomputes PPR, proximity and the full tree from scratch on the
// current graph — the Tree-SVD-S path, useful after massive changes
// (Theorem 3.7's O(|S|/r_max) fallback).
func (e *Embedder) Rebuild() {
	e.prox.Sub.Rebuild()
	e.prox.RefreshAll()
	e.tree.Build()
}

// Embedding returns the |S|×d subset embedding X = U√Σ as a row-major
// matrix: row i embeds Subset()[i]. The rows follow the order of the
// subset passed to New.
func (e *Embedder) Embedding() [][]float64 {
	x := e.tree.Embedding()
	out := make([][]float64, x.Rows)
	for i := range out {
		out[i] = append([]float64(nil), x.Row(i)...)
	}
	return out
}

// RightEmbedding returns the n×d right-factor embedding Y = Ṽ√Σ (row v
// embeds graph node v); score candidate links from subset node s to any
// node v as dot(X[s], Y[v]).
func (e *Embedder) RightEmbedding() [][]float64 {
	y := e.tree.RightEmbedding()
	out := make([][]float64, y.Rows)
	for i := range out {
		out[i] = append([]float64(nil), y.Row(i)...)
	}
	return out
}

// Stats reports the work done by the last ApplyEvents/Rebuild.
type Stats struct {
	// Level1Rebuilt counts re-factored level-1 blocks; Skipped counts
	// blocks served from cache; UpperRebuilt counts merges above level 1.
	Level1Rebuilt, Skipped, UpperRebuilt int
}

// LastStats returns the factorization work counters of the most recent
// update.
func (e *Embedder) LastStats() Stats {
	s := e.tree.Stats()
	return Stats{Level1Rebuilt: s.Level1Rebuilt, Skipped: s.Skipped, UpperRebuilt: s.UpperRebuilt}
}

// Graph exposes the embedded graph (owned by the Embedder; mutate only
// through ApplyEvents).
func (e *Embedder) Graph() *Graph { return e.prox.Sub.Engine.G }

// Recommendation is one ranked link candidate.
type Recommendation struct {
	Node  int32
	Score float64
}

// Recommend returns the top-k candidate targets for subset node s, ranked
// by the factorization score dot(X[s], Y[v]) — the paper's motivating
// application. Existing out-neighbors of s and s itself are excluded.
// It returns an error if s is not in the subset.
func (e *Embedder) Recommend(s int32, k int) ([]Recommendation, error) {
	row := -1
	for i, v := range e.subset {
		if v == s {
			row = i
			break
		}
	}
	if row < 0 {
		return nil, fmt.Errorf("treesvd: node %d is not in the embedded subset", s)
	}
	if e.tree.Root().Rank() == 0 {
		return nil, fmt.Errorf("treesvd: empty factorization")
	}
	y := e.tree.RightEmbedding()
	xs := e.tree.Embedding().Row(row)
	g := e.Graph()
	exclude := make(map[int32]bool, g.OutDeg(s)+1)
	exclude[s] = true
	for _, v := range g.OutNeighbors(s) {
		exclude[v] = true
	}
	top := make([]Recommendation, 0, k+1)
	for v := 0; v < y.Rows; v++ {
		if exclude[int32(v)] {
			continue
		}
		score := dot(xs, y.Row(v))
		switch {
		case len(top) < k:
			top = append(top, Recommendation{Node: int32(v), Score: score})
			if len(top) == k {
				sortRecs(top)
			}
		case score > top[k-1].Score:
			top[k-1] = Recommendation{Node: int32(v), Score: score}
			sortRecs(top)
		}
	}
	sortRecs(top)
	return top, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sortRecs(r []Recommendation) {
	sort.SliceStable(r, func(a, b int) bool { return r[a].Score > r[b].Score })
}
