package treesvd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/wal"
)

// SyncPolicy selects when the durable embedder fsyncs WAL appends; see
// the DurableConfig.Sync field.
type SyncPolicy int

const (
	// SyncBatch fsyncs once per ApplyEvents: every batch the call
	// acknowledges survives any crash. The default, and the policy the
	// <10%-overhead acceptance benchmark is stated against.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs every SyncEvery batches: a crash can lose up to
	// SyncEvery-1 acknowledged batches, but never corrupts state.
	SyncInterval
	// SyncNone never fsyncs on append; the OS decides when data reaches
	// the disk. A crash loses whatever the page cache held, never more
	// than since the last checkpoint.
	SyncNone
)

// String returns the policy's name (batch, interval, none).
func (p SyncPolicy) String() string { return wal.SyncPolicy(p).String() }

// ErrNoState is returned by Open when the directory holds no durable
// state (no checkpoint was ever committed there). Use Create to start a
// new store.
var ErrNoState = errors.New("treesvd: no durable state in directory")

// errClosed reports use after Close.
var errClosed = errors.New("treesvd: durable embedder is closed")

// DurableConfig configures a durable embedder. The zero value is usable:
// per-batch fsync, a checkpoint every 64 batches, two checkpoints kept.
type DurableConfig struct {
	// Config configures the embedder itself (only used by Create;
	// Open restores the configuration stored in the checkpoint).
	Config Config
	// Sync is the WAL fsync policy; SyncEvery is the period of
	// SyncInterval (default 8).
	Sync      SyncPolicy
	SyncEvery int
	// SegmentSize rotates the WAL to a new segment file past this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// CheckpointEvery takes a checkpoint after this many applied batches
	// (default 64); negative disables automatic checkpoints (use the
	// Checkpoint method).
	CheckpointEvery int
	// KeepCheckpoints retains this many committed checkpoints (default 2,
	// minimum 1). Keeping more than one lets recovery fall back past a
	// checkpoint that fails verification; the WAL is pruned only up to the
	// oldest kept checkpoint so the fallback can always be replayed
	// forward.
	KeepCheckpoints int
	// SyncCheckpoints takes checkpoints synchronously inside ApplyEvents
	// instead of in a background goroutine. Deterministic and slower; the
	// fault-injection harness depends on it.
	SyncCheckpoints bool
	// StrictRecovery makes Open fail with a *CorruptStateError on any WAL
	// damage beyond a pure torn tail (a crash artifact). By default such
	// damage degrades the log to its longest verifiable prefix and is
	// reported in RecoveryInfo instead.
	StrictRecovery bool
	// Trace receives pipeline trace events (see TraceHook), covering the
	// durable layer's TraceCheckpoint and TraceRecovery in addition to the
	// per-batch bracket. Open installs it only after WAL replay, so
	// recovery does not fire a batch event per replayed record — it fires
	// one TraceRecovery instead. DurableConfig is never persisted, which
	// is why the hook lives here and not on Config.
	Trace TraceHook
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.KeepCheckpoints < 1 {
		c.KeepCheckpoints = 2
	}
	return c
}

func (c DurableConfig) walOptions(met *wal.Metrics) wal.Options {
	return wal.Options{
		SegmentSize: c.SegmentSize,
		Sync:        wal.SyncPolicy(c.Sync),
		SyncEvery:   c.SyncEvery,
		Met:         met,
	}
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// CheckpointSeq is the batch seq of the checkpoint the state was
	// restored from; SkippedCheckpoints counts newer checkpoints that
	// failed verification and were bypassed.
	CheckpointSeq      uint64
	SkippedCheckpoints int
	// ReplayedBatches counts WAL batches folded in on top of the
	// checkpoint.
	ReplayedBatches int
	// TornTail is set when a physically incomplete record at the end of
	// the log was truncated — the normal artifact of a crash mid-append.
	TornTail bool
	// DroppedBatches counts batches discarded because of WAL damage beyond
	// a torn tail (lenient recovery only); DropReason describes the fault.
	DroppedBatches int
	DropReason     string
}

// DurableEmbedder wraps an Embedder with write-ahead logging and
// crash-safe checkpointing in a single directory. Every ApplyEvents batch
// is appended to the WAL — checksummed and fsynced per the configured
// policy — before it mutates any in-memory state, and a checkpoint (a
// full atomic save) is committed every CheckpointEvery batches, after
// which older WAL segments are pruned. Open recovers the directory to a
// committed prefix of the acknowledged stream no matter where a previous
// process stopped.
//
// Route every update through the DurableEmbedder; calling ApplyEvents or
// Rebuild directly on the wrapped Embedder would mutate state the log
// knows nothing about. Reads (Embedding, Snapshot, Recommend, ...) go to
// the wrapped Embedder and stay lock-free.
//
// A WAL append failure (full disk, fsync error) seals the embedder into
// read-only degraded mode: ingest returns a *DegradedError, reads keep
// serving the last published snapshot, Degraded reports the cause, and
// Reopen re-arms the WAL once the operator has cleared the fault.
type DurableEmbedder struct {
	fs  wal.FS
	dir string
	cfg DurableConfig

	mu     sync.Mutex // serializes updates; ordered before e.mu
	e      *Embedder
	w      *wal.Writer
	closed bool
	// pending is a batch that reached the WAL but whose in-memory apply
	// failed (cancellation, self-check). It must be re-applied before
	// anything else so memory never falls behind the log; edge events are
	// set operations, so re-applying a partially applied batch in order is
	// idempotent.
	pending   []Event
	sinceCkpt int

	// degraded is the WAL I/O failure that sealed the embedder read-only
	// (nil while healthy); sealedNext is the writer's next sequence at
	// seal time, the point Reopen resumes the log from. Guarded by mu.
	degraded   error
	sealedNext uint64

	ckptWG   sync.WaitGroup
	ckptMu   sync.Mutex // guards the fields below; never held with mu
	ckptBusy bool
	ckptErr  error

	// met holds the WAL and checkpoint counters; it outlives writer
	// re-creation and is linked into the wrapped embedder's Metrics/
	// registry at construction.
	met *durableMetrics

	recovery RecoveryInfo
}

// Create initializes a new durable embedder in dir: it builds the initial
// state with New(g, subset, cfg.Config), commits it as the first
// checkpoint, and opens the WAL. It fails if dir already holds durable
// state.
func Create(dir string, g *Graph, subset []int32, cfg DurableConfig) (*DurableEmbedder, error) {
	return createDurable(wal.OS, dir, g, subset, cfg)
}

// Open recovers the durable embedder stored in dir: it restores the
// newest checkpoint that verifies (falling back past corrupt ones),
// repairs the WAL tail, replays every logged batch past the checkpoint,
// audits the result with the internal invariant checkers, and only then
// publishes the first readable snapshot. It returns ErrNoState when dir
// was never initialized with Create, and a *CorruptStateError when the
// store cannot be brought to a verified state.
func Open(dir string, cfg DurableConfig) (*DurableEmbedder, error) {
	return openDurable(wal.OS, dir, cfg)
}

// CreateWithFS is Create on an explicit filesystem. It exists for the
// internal fault-injection harness — the FS type lives in an internal
// package, so code outside this module cannot supply one; use Create.
func CreateWithFS(fsys wal.FS, dir string, g *Graph, subset []int32, cfg DurableConfig) (*DurableEmbedder, error) {
	return createDurable(fsys, dir, g, subset, cfg)
}

// OpenWithFS is Open on an explicit filesystem; see CreateWithFS.
func OpenWithFS(fsys wal.FS, dir string, cfg DurableConfig) (*DurableEmbedder, error) {
	return openDurable(fsys, dir, cfg)
}

func createDurable(fsys wal.FS, dir string, g *Graph, subset []int32, cfg DurableConfig) (*DurableEmbedder, error) {
	cfg = cfg.withDefaults()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if has, err := wal.HasState(fsys, dir); err != nil {
		return nil, err
	} else if has {
		return nil, fmt.Errorf("treesvd: directory %s already holds durable state", dir)
	}
	e, err := New(g, subset, cfg.Config)
	if err != nil {
		return nil, err
	}
	manifest, shards, err := e.checkpointPayloads()
	if err != nil {
		return nil, err
	}
	// Batches are numbered from 1; checkpoint seq 0 is "nothing applied
	// beyond the initial build".
	if err := writeCheckpointSet(fsys, dir, 0, manifest, shards); err != nil {
		return nil, err
	}
	dm := &durableMetrics{}
	w, err := wal.NewWriter(fsys, dir, 1, cfg.walOptions(&dm.wal))
	if err != nil {
		return nil, err
	}
	e.registerDurable(dm)
	if cfg.Trace != nil {
		e.SetTraceHook(cfg.Trace)
	}
	return &DurableEmbedder{fs: fsys, dir: dir, cfg: cfg, e: e, w: w, met: dm}, nil
}

func openDurable(fsys wal.FS, dir string, cfg DurableConfig) (*DurableEmbedder, error) {
	cfg = cfg.withDefaults()
	cks, err := wal.ListCheckpoints(fsys, dir)
	if err != nil {
		// A directory that does not exist holds no state; a consumer
		// probing "is there a store yet?" sees ErrNoState either way.
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoState, dir)
		}
		return nil, err
	}
	if len(cks) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoState, dir)
	}

	// Newest checkpoint that verifies and decodes wins; corrupt ones are
	// bypassed. The WAL is only ever pruned up to the oldest kept
	// checkpoint, so every batch a fallback needs is still logged.
	var (
		e       *Embedder
		ckSeq   uint64
		skipped int
		lastErr error
	)
	for i := len(cks) - 1; i >= 0 && e == nil; i-- {
		seq, payload, err := wal.ReadCheckpoint(fsys, dir, cks[i].Name)
		if err == nil {
			var cand *Embedder
			if cand, err = restoreCheckpoint(fsys, dir, cks[i].Name, seq, payload); err == nil {
				e, ckSeq = cand, seq
				break
			}
		}
		var corrupt *CorruptStateError
		if !errors.As(err, &corrupt) && !isWALCorrupt(err) {
			return nil, err // I/O failure, not damage — don't mask it
		}
		skipped++
		lastErr = asCorruptState(err)
	}
	if e == nil {
		return nil, lastErr
	}

	rec, err := wal.Recover(fsys, dir, cfg.StrictRecovery)
	if err != nil {
		return nil, asCorruptState(err)
	}
	if err := wal.RemoveTempFiles(fsys, dir); err != nil {
		return nil, err
	}
	// Shard payload files whose manifest never landed (a crash between the
	// shard writes and the manifest rename) are dead weight; collect them.
	if err := wal.PruneShardCheckpoints(fsys, dir); err != nil {
		return nil, err
	}

	info := RecoveryInfo{
		CheckpointSeq:      ckSeq,
		SkippedCheckpoints: skipped,
		TornTail:           rec.TornTail,
		DroppedBatches:     rec.Dropped,
		DropReason:         rec.DropReason,
	}
	ctx := context.Background()
	next := ckSeq + 1
	e.mu.Lock()
	for _, r := range rec.Records {
		if r.Seq <= ckSeq {
			continue // already folded into the checkpoint
		}
		if r.Seq != next {
			e.mu.Unlock()
			return nil, &CorruptStateError{Path: dir, Offset: -1,
				Reason: fmt.Sprintf("log resumes at batch %d after checkpoint %d: missing batches", r.Seq, ckSeq)}
		}
		events, err := wal.DecodeEvents(r.Payload)
		if err != nil {
			e.mu.Unlock()
			return nil, &CorruptStateError{Path: dir, Offset: -1,
				Reason: fmt.Sprintf("logged batch %d does not decode", r.Seq), Err: err}
		}
		if _, err := e.applyEventsLocked(ctx, events, false); err != nil {
			e.mu.Unlock()
			return nil, &CorruptStateError{Path: dir, Offset: -1,
				Reason: fmt.Sprintf("replay of logged batch %d failed", r.Seq), Err: err}
		}
		next++
		info.ReplayedBatches++
	}
	// Audit before anything becomes readable: a recovered state that fails
	// the invariant checkers must never serve a query.
	if err := e.auditLocked(); err != nil {
		e.mu.Unlock()
		return nil, &CorruptStateError{Path: dir, Offset: -1,
			Reason: "recovered state failed the invariant audit", Err: err}
	}
	e.publishLocked()
	e.mu.Unlock()

	dm := &durableMetrics{}
	w, err := wal.NewWriter(fsys, dir, next, cfg.walOptions(&dm.wal))
	if err != nil {
		return nil, err
	}
	e.registerDurable(dm)
	// The hook goes live only now, after replay: recovery is reported as
	// one TraceRecovery instead of a batch bracket per replayed record.
	if cfg.Trace != nil {
		e.SetTraceHook(cfg.Trace)
		cfg.Trace(TraceEvent{Kind: TraceRecovery, Seq: ckSeq, Block: -1,
			Rebuilt: info.ReplayedBatches})
	}
	return &DurableEmbedder{fs: fsys, dir: dir, cfg: cfg, e: e, w: w, met: dm, recovery: info}, nil
}

// restoreCheckpoint decodes one verified checkpoint payload into an
// embedder. An unsharded (or inline-sharded) payload is a complete save;
// a sharded manifest instead references ShardFiles sibling payload
// files, which are read and verified here and decoded in parallel under
// the saved worker budget. A missing or damaged shard file classifies as
// corruption — never an I/O error — so the caller's fallback loop moves
// on to an older checkpoint whose shard set is intact.
func restoreCheckpoint(fsys wal.FS, dir, name string, seq uint64, payload []byte) (*Embedder, error) {
	path := filepath.Join(dir, name)
	saved, err := decodeSaved(payload, path)
	if err != nil {
		return nil, err
	}
	if saved.ShardFiles > 0 {
		shards := make([]savedShard, saved.ShardFiles)
		err := par.ForErr(context.Background(), saved.ShardFiles, par.Workers(saved.Config.Workers), func(i int) error {
			shardPath := filepath.Join(dir, wal.ShardCheckpointName(seq, i))
			data, err := wal.ReadShardCheckpoint(fsys, dir, seq, i)
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					return corruptErr(shardPath, "manifest %s references a missing shard payload", name)
				}
				return err
			}
			sh, err := decodeShardPayload(data, shardPath)
			if err != nil {
				return err
			}
			shards[i] = *sh
			return nil
		})
		if err != nil {
			return nil, err
		}
		saved.Shards = shards
		saved.ShardFiles = 0
	}
	return embedderFromSaved(saved, path)
}

// writeCheckpointSet commits one checkpoint: every shard payload file is
// written and made durable first, sequentially, and only then the
// manifest, whose rename is the commit point. A crash anywhere in the
// sequence leaves at worst orphan shard files — never a listed
// checkpoint with missing payloads.
func writeCheckpointSet(fsys wal.FS, dir string, seq uint64, manifest []byte, shards [][]byte) error {
	for i, p := range shards {
		if err := wal.WriteShardCheckpoint(fsys, dir, seq, i, p); err != nil {
			return err
		}
	}
	return wal.WriteCheckpoint(fsys, dir, seq, manifest)
}

// isWALCorrupt reports whether err is the WAL layer's corruption type.
func isWALCorrupt(err error) bool {
	var ce *wal.CorruptError
	return errors.As(err, &ce)
}

// asCorruptState converts the WAL layer's corruption error to the public
// *CorruptStateError; other errors pass through.
func asCorruptState(err error) error {
	var ce *wal.CorruptError
	if errors.As(err, &ce) {
		return &CorruptStateError{Path: ce.Path, Offset: ce.Offset, Reason: ce.Reason, Err: ce.Err}
	}
	return err
}

// Embedder returns the wrapped embedder for reads (Embedding, Snapshot,
// Recommend, ...). Do not call its update methods directly — see the
// DurableEmbedder contract.
func (d *DurableEmbedder) Embedder() *Embedder { return d.e }

// Recovery reports what Open found and repaired; the zero value after
// Create.
func (d *DurableEmbedder) Recovery() RecoveryInfo { return d.recovery }

// Metrics returns the wrapped embedder's work counters; for a durable
// embedder the WAL field is populated with the durability counters.
func (d *DurableEmbedder) Metrics() Metrics { return d.e.Metrics() }

// MetricsRegistry returns the wrapped embedder's metric registry,
// including the treesvd_wal_* and treesvd_checkpoint* series.
func (d *DurableEmbedder) MetricsRegistry() *Registry { return d.e.MetricsRegistry() }

// Dir returns the managed directory.
func (d *DurableEmbedder) Dir() string { return d.dir }

// ApplyEvents durably applies one batch: the batch is validated, appended
// to the WAL (fsynced per the Sync policy), and only then applied to the
// in-memory embedder, which publishes a new snapshot. Once ApplyEvents
// returns nil the batch will survive a crash (immediately under
// SyncBatch, within the policy's window otherwise).
//
// If the in-memory apply fails after the batch was logged (cancellation,
// a failed self-check), the error is returned and the batch is retried
// in front of the next call, so memory never falls behind the log.
func (d *DurableEmbedder) ApplyEvents(ctx context.Context, events []Event) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errClosed
	}
	if d.degraded != nil {
		return 0, &DegradedError{Reason: "wal append failed", Err: d.degraded}
	}
	if err := d.retryPendingLocked(ctx); err != nil {
		return 0, err
	}
	if err := d.e.validateEvents(events); err != nil {
		return 0, err // never logged: an invalid batch must not reach replay
	}
	seq, err := d.w.Append(wal.EncodeEvents(events))
	if err != nil {
		d.sealLocked(err)
		return 0, &DegradedError{Reason: "wal append failed", Err: err}
	}
	rebuilt, err := d.e.ApplyEvents(ctx, events)
	if err != nil {
		d.pending = append([]Event(nil), events...)
		return 0, err
	}
	d.sinceCkpt++
	if err := d.maybeCheckpointLocked(seq); err != nil {
		return rebuilt, err
	}
	return rebuilt, nil
}

// sealLocked flips the embedder into read-only degraded mode after a WAL
// append failure. Reads keep serving the published snapshot; every
// further ApplyEvents returns a *DegradedError until Reopen. Caller
// holds d.mu.
func (d *DurableEmbedder) sealLocked(cause error) {
	d.degraded = cause
	d.sealedNext = d.w.NextSeq()
	d.met.degraded.Set(1)
	d.met.seals.Inc()
	if h := d.cfg.Trace; h != nil {
		h(TraceEvent{Kind: TraceDegraded, Seq: d.sealedNext, Block: -1, Err: cause})
	}
}

// Degraded returns the WAL I/O failure that sealed the embedder into
// read-only degraded mode, or nil while ingest is healthy. The serving
// layer's /readyz probes it.
func (d *DurableEmbedder) Degraded() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// Reopen re-arms the WAL after the fault behind degraded mode has been
// cleared (disk space freed, volume remounted): it repairs the log tail,
// folds in any record that reached the log but never memory — a failed
// fsync can leave the record bytes fully persisted even though the
// append erred, and the writer poisons itself after the first failure,
// so at most one such record exists — and opens a fresh writer at the
// continuation sequence. On success ingest works again; on failure the
// embedder stays degraded and Reopen can be retried. A no-op when not
// degraded.
func (d *DurableEmbedder) Reopen() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if d.degraded == nil {
		return nil
	}
	// Best effort: the poisoned writer reports the sealing error again;
	// what matters is releasing its file handle.
	d.w.Close()
	// Repair the tail on disk first — NewWriter requires it: a torn
	// record left by the failed append is truncated and a zero-record
	// tail segment removed, so the fresh segment's name cannot collide.
	rec, err := wal.Recover(d.fs, d.dir, false)
	if err != nil {
		return asCorruptState(err)
	}
	next := d.sealedNext
	for _, r := range rec.Records {
		if r.Seq < d.sealedNext {
			continue // applied before the seal
		}
		if r.Seq != next {
			return &CorruptStateError{Path: d.dir, Offset: -1,
				Reason: fmt.Sprintf("reopen: log resumes at batch %d, expected %d", r.Seq, next)}
		}
		events, err := wal.DecodeEvents(r.Payload)
		if err != nil {
			return &CorruptStateError{Path: d.dir, Offset: -1,
				Reason: fmt.Sprintf("reopen: logged batch %d does not decode", r.Seq), Err: err}
		}
		if _, err := d.e.ApplyEvents(context.Background(), events); err != nil {
			return fmt.Errorf("treesvd: reopen: applying logged batch %d: %w", r.Seq, err)
		}
		d.sinceCkpt++
		next++
		// Advance the seal watermark as each record folds in, so a Reopen
		// that fails later (the disk is still full when the fresh writer
		// opens) never replays the same record twice on retry.
		d.sealedNext = next
	}
	w, err := wal.NewWriter(d.fs, d.dir, next, d.cfg.walOptions(&d.met.wal))
	if err != nil {
		return fmt.Errorf("treesvd: reopen: %w", err)
	}
	d.w = w
	d.degraded = nil
	d.sealedNext = 0
	d.met.degraded.Set(0)
	d.met.reopens.Inc()
	if h := d.cfg.Trace; h != nil {
		h(TraceEvent{Kind: TraceDegraded, Seq: next, Block: -1})
	}
	return nil
}

// retryPendingLocked re-applies a logged-but-unapplied batch. Caller
// holds d.mu.
func (d *DurableEmbedder) retryPendingLocked(ctx context.Context) error {
	if d.pending == nil {
		return nil
	}
	if _, err := d.e.ApplyEvents(ctx, d.pending); err != nil {
		return fmt.Errorf("treesvd: retrying logged batch: %w", err)
	}
	d.pending = nil
	d.sinceCkpt++
	return nil
}

// maybeCheckpointLocked takes the periodic checkpoint. Caller holds d.mu.
func (d *DurableEmbedder) maybeCheckpointLocked(seq uint64) error {
	if d.cfg.CheckpointEvery < 0 || d.sinceCkpt < d.cfg.CheckpointEvery {
		return nil
	}
	if d.cfg.SyncCheckpoints {
		return d.checkpointLocked(seq)
	}
	d.ckptMu.Lock()
	busy := d.ckptBusy
	if !busy {
		d.ckptBusy = true
	}
	d.ckptMu.Unlock()
	if busy {
		return nil // one in flight; the next batch re-triggers
	}
	// Capture the state synchronously — checkpointPayloads takes e.mu,
	// which is free here — so the checkpoint is exactly the state after
	// batch seq; only the file I/O runs in the background.
	manifest, shards, err := d.e.checkpointPayloads()
	if err != nil {
		d.ckptMu.Lock()
		d.ckptBusy = false
		d.ckptMu.Unlock()
		return err
	}
	d.sinceCkpt = 0
	d.ckptWG.Add(1)
	go func() {
		defer d.ckptWG.Done()
		err := d.commitCheckpoint(seq, manifest, shards)
		d.ckptMu.Lock()
		d.ckptErr = err
		d.ckptBusy = false
		d.ckptMu.Unlock()
	}()
	return nil
}

// checkpointLocked takes a synchronous checkpoint of the state after
// batch seq. Caller holds d.mu.
func (d *DurableEmbedder) checkpointLocked(seq uint64) error {
	d.ckptWG.Wait() // never two checkpoint writers at once
	manifest, shards, err := d.e.checkpointPayloads()
	if err != nil {
		return err
	}
	if err := d.commitCheckpoint(seq, manifest, shards); err != nil {
		return err
	}
	d.sinceCkpt = 0
	return nil
}

// commitCheckpoint publishes one checkpoint and prunes: older checkpoints
// beyond KeepCheckpoints first, then WAL segments covered by the oldest
// checkpoint that remains. Safe to run concurrently with Append — it only
// touches checkpoint files and sealed segments. It records the commit in
// the checkpoint metrics and fires TraceCheckpoint (from the background
// checkpoint goroutine unless SyncCheckpoints is set).
func (d *DurableEmbedder) commitCheckpoint(seq uint64, manifest []byte, shards [][]byte) error {
	start := time.Now()
	err := d.writeCheckpointFiles(seq, manifest, shards)
	if err == nil {
		d.met.checkpoints.Inc()
		d.met.ckptNanos.ObserveSince(start)
	}
	if h := d.cfg.Trace; h != nil {
		h(TraceEvent{Kind: TraceCheckpoint, Seq: seq, Block: -1, Dur: time.Since(start), Err: err})
	}
	return err
}

// writeCheckpointFiles is the I/O body of commitCheckpoint: commit the
// set (shard payloads, then manifest), retire old manifests, collect the
// shard payloads those manifests stranded, and prune covered WAL
// segments.
func (d *DurableEmbedder) writeCheckpointFiles(seq uint64, manifest []byte, shards [][]byte) error {
	if err := writeCheckpointSet(d.fs, d.dir, seq, manifest, shards); err != nil {
		return err
	}
	if err := wal.PruneCheckpoints(d.fs, d.dir, d.cfg.KeepCheckpoints); err != nil {
		return err
	}
	if err := wal.PruneShardCheckpoints(d.fs, d.dir); err != nil {
		return err
	}
	cks, err := wal.ListCheckpoints(d.fs, d.dir)
	if err != nil {
		return err
	}
	if len(cks) == 0 {
		return nil // unreachable: the checkpoint just committed is listed
	}
	return wal.PruneSegments(d.fs, d.dir, cks[0].Seq)
}

// Checkpoint synchronously commits a checkpoint of the current state and
// prunes the WAL behind it.
func (d *DurableEmbedder) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if err := d.retryPendingLocked(context.Background()); err != nil {
		return err
	}
	return d.checkpointLocked(d.w.NextSeq() - 1)
}

// Sync forces an fsync of the WAL regardless of the Sync policy, making
// every acknowledged batch durable now.
func (d *DurableEmbedder) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	return d.w.Sync()
}

// Close flushes and closes the WAL and waits for any in-flight background
// checkpoint. It reports the first deferred checkpoint error, if any; the
// store recovers regardless — the WAL still holds everything past the
// last committed checkpoint.
func (d *DurableEmbedder) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.ckptWG.Wait()
	d.ckptMu.Lock()
	err := d.ckptErr
	d.ckptMu.Unlock()
	// A degraded store's poisoned writer reports its sealing error again
	// on Close; that failure already reached the caller when it happened.
	if werr := d.w.Close(); err == nil && d.degraded == nil {
		err = werr
	}
	return err
}
