package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	for v := int32(0); int(v) < n; v++ {
		for {
			u := int32(rng.Intn(n))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < m {
		g.InsertEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return g
}

func pickSubset(rng *rand.Rand, n, size int) []int32 {
	perm := rng.Perm(n)
	s := make([]int32, size)
	for i := range s {
		s[i] = int32(perm[i])
	}
	return s
}

var testParams = ppr.Params{Alpha: 0.15, RMax: 1e-3}

func TestDynPPEHashEmbeddingMatchesScratch(t *testing.T) {
	// The incremental re-hash must equal hashing the PPR vectors afresh.
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 40, 150)
	s := pickSubset(rng, 40, 6)
	d := mustBL(NewDynPPE(g, s, testParams, 8, 7))

	check := func() {
		for i := range s {
			want := make([]float64, 8)
			for v, pv := range d.Sub.Fwd[i].P {
				dim, sign := d.hash(v)
				if arg := pv / testParams.RMax; arg > 1 {
					want[dim] += sign * math.Log(arg)
				}
			}
			got := d.Embedding().Row(i)
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					t.Fatalf("row %d dim %d: %g vs scratch %g", i, j, got[j], want[j])
				}
			}
		}
	}
	check()

	// Apply events and re-check the incremental path.
	var events []graph.Event
	for len(events) < 25 {
		u, v := int32(rng.Intn(40)), int32(rng.Intn(40))
		if u != v && !g.HasEdge(u, v) {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	must0t(d.ApplyEvents(bgt, events))
	check()
}

func TestDynPPEDeterministicHash(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 20, 60)
	s := pickSubset(rng, 20, 4)
	d1 := mustBL(NewDynPPE(g.Clone(), s, testParams, 8, 5))
	d2 := mustBL(NewDynPPE(g.Clone(), s, testParams, 8, 5))
	// Hash accumulation iterates maps, so float reassociation allows
	// ~1e-16 jitter; everything beyond that is nondeterminism.
	if diff := linalg.MaxAbsDiff(d1.Embedding(), d2.Embedding()); diff > 1e-12 {
		t.Fatalf("same seed, different embeddings: %g", diff)
	}
	d3 := mustBL(NewDynPPE(g.Clone(), s, testParams, 8, 6))
	if diff := linalg.MaxAbsDiff(d1.Embedding(), d3.Embedding()); diff == 0 {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestSubsetSTRAPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 30, 120)
	s := pickSubset(rng, 30, 5)
	st := mustBL(NewSubsetSTRAP(g, s, testParams, 30, 4, 1))
	res := mustBL(st.Factorize())
	if res.Left.Rows != 5 || res.Left.Cols > 4 {
		t.Fatalf("left shape %d×%d", res.Left.Rows, res.Left.Cols)
	}
	if res.Right.Rows != 30 || res.Right.Cols != res.Left.Cols {
		t.Fatalf("right shape %d×%d", res.Right.Rows, res.Right.Cols)
	}
	// X·Yᵀ must approximate the proximity matrix (both sides √Σ-scaled).
	m := st.Prox.M.ToDense()
	rec := linalg.MulT(res.Left, res.Right)
	best := linalg.SVD(m).TailEnergy(m.FrobNorm(), 4)
	if got := linalg.Sub(rec, m).FrobNorm(); got > 1.2*best+1e-9 {
		t.Fatalf("STRAP reconstruction %g vs optimal %g", got, best)
	}
}

func TestSubsetSTRAPDynamicUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGraph(rng, 25, 100)
	s := pickSubset(rng, 25, 4)
	st := mustBL(NewSubsetSTRAP(g, s, testParams, 25, 3, 1))
	before := mustBL(st.Factorize())
	var events []graph.Event
	for len(events) < 20 {
		u, v := int32(rng.Intn(25)), int32(rng.Intn(25))
		if u != v && !g.HasEdge(u, v) {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	must0t(st.ApplyEvents(bgt, events))
	after := mustBL(st.Factorize())
	if linalg.MaxAbsDiff(before.Left, after.Left) == 0 {
		t.Fatal("embedding unchanged after 20 insertions")
	}
}

func TestGlobalSTRAP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 25, 100)
	gs := NewGlobalSTRAP(g, ppr.Params{Alpha: 0.15, RMax: 1e-2}, 4, 1)
	res := mustBL(gs.Factorize())
	if res.Left.Rows != 25 {
		t.Fatalf("global left rows %d, want 25", res.Left.Rows)
	}
	s := pickSubset(rng, 25, 5)
	sub := SubsetRows(res.Left, s)
	if sub.Rows != 5 || sub.Cols != res.Left.Cols {
		t.Fatalf("subset rows shape %d×%d", sub.Rows, sub.Cols)
	}
	for i, v := range s {
		if linalg.Dot(sub.Row(i), sub.Row(i)) != linalg.Dot(res.Left.Row(int(v)), res.Left.Row(int(v))) {
			t.Fatal("SubsetRows copied wrong rows")
		}
	}
}

func TestFrequentDirectionsGuarantee(t *testing.T) {
	// FD guarantee: ‖AᵀA − BᵀB‖₂ ≤ ‖A‖²_F / ℓ. The spectral norm is
	// bounded by the Frobenius norm, which we can compute directly.
	rng := rand.New(rand.NewSource(6))
	rows, cols, l := 40, 15, 8
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.5 {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	m := b.Build()
	fd := NewFrequentDirections(l, cols)
	for i := 0; i < rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		fd.AppendSparse(m.ColIdx[lo:hi], m.Val[lo:hi])
	}
	sk := fd.Sketch()
	if sk.Rows != l || sk.Cols != cols {
		t.Fatalf("sketch shape %d×%d", sk.Rows, sk.Cols)
	}
	ata := linalg.Gram(m.ToDense())
	btb := linalg.Gram(sk)
	diff := linalg.Sub(ata, btb)
	frob := m.FrobNorm()
	// Spectral-norm bound via largest eigenvalue of the symmetric diff.
	lam, _ := linalg.SymEig(diff)
	spec := 0.0
	for _, x := range lam {
		if a := math.Abs(x); a > spec {
			spec = a
		}
	}
	if spec > frob*frob/float64(l)+1e-9 {
		t.Fatalf("FD bound violated: ‖AᵀA−BᵀB‖₂=%g > ‖A‖²_F/ℓ=%g", spec, frob*frob/float64(l))
	}
}

func TestFREDEEmbeddingShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := sparse.NewBuilder(10, 30)
	for i := 0; i < 10; i++ {
		for j := 0; j < 30; j++ {
			if rng.Float64() < 0.4 {
				b.Add(i, j, math.Abs(rng.NormFloat64()))
			}
		}
	}
	res := FREDE(b.Build(), 4)
	if res.Left.Rows != 10 || res.Right.Rows != 30 {
		t.Fatalf("FREDE shapes left %d right %d", res.Left.Rows, res.Right.Rows)
	}
	if res.Left.Cols != res.Right.Cols {
		t.Fatal("FREDE factor widths differ")
	}
}

func TestFREDEEmptyMatrix(t *testing.T) {
	res := FREDE(sparse.NewBuilder(5, 12).Build(), 3)
	if res.Left.Rows != 5 || res.Right.Rows != 12 {
		t.Fatal("FREDE empty-matrix shapes wrong")
	}
}

func TestRandNEShapesAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randGraph(rng, 30, 120)
	cfg := DefaultRandNEConfig(8, 3)
	e1 := RandNE(g, cfg)
	e2 := RandNE(g, cfg)
	if e1.Rows != 30 || e1.Cols != 8 {
		t.Fatalf("RandNE shape %d×%d", e1.Rows, e1.Cols)
	}
	if linalg.MaxAbsDiff(e1, e2) != 0 {
		t.Fatal("RandNE not deterministic for fixed seed")
	}
	// Rows are unit-normalized.
	for i := 0; i < 30; i++ {
		n := linalg.Norm2(e1.Row(i))
		if n != 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm %g", i, n)
		}
	}
}

func TestRandNECapturesNeighborhoods(t *testing.T) {
	// Two nodes with identical out-neighborhoods get near-identical
	// high-order signal; a node with disjoint links should differ more.
	g := graph.New(8)
	// 0 and 1 point to {2,3,4}; 5 points to {6,7}.
	for _, v := range []int32{2, 3, 4} {
		g.InsertEdge(0, v)
		g.InsertEdge(1, v)
	}
	g.InsertEdge(5, 6)
	g.InsertEdge(5, 7)
	g.InsertEdge(6, 0)
	g.InsertEdge(7, 1)
	g.InsertEdge(2, 5)
	g.InsertEdge(3, 5)
	g.InsertEdge(4, 5)
	cfg := RandNEConfig{Dim: 6, Weights: []float64{0, 1, 10}, Seed: 4}
	e := RandNE(g, cfg)
	simTwin := linalg.Dot(e.Row(0), e.Row(1))
	simFar := linalg.Dot(e.Row(0), e.Row(5))
	if simTwin <= simFar {
		t.Fatalf("structural twins less similar (%g) than unrelated nodes (%g)", simTwin, simFar)
	}
}
