package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/obs"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
	"github.com/tree-svd/treesvd/internal/svdupd"
)

// blockCache is the per-level-1-block state kept between updates: the
// compressed representation Ū = (U)_d(Σ)_d fed to level 2, and the tail
// energy ‖(B)_d − B‖_F measured when the block was last factored (the
// first term of Eqn. 2, free from the cached singular values).
type blockCache struct {
	us   *linalg.Dense
	tail float64
	// seq is the tree's factorization counter when this cache was built; it
	// pins the randomized draw, so the correctness harness can re-factor
	// the block's baseline at the same seed and demand an identical result.
	// -1 marks caches that are not seed-replayable: restored from a
	// snapshot without provenance, or produced by the incremental update
	// path (which is deterministic but not a fresh randomized draw —
	// AuditBlock switches to a residual-bound check when fac is present).
	seq int64
	// fac retains the full (U, Σ, V) factorization when Config.SVDUpdate
	// is on, so a later delta can be absorbed by internal/svdupd instead
	// of re-factoring the block. Nil when the update path is disabled.
	fac *linalg.SVDResult
	// updErr accumulates the spectral mass discarded by incremental
	// updates since the block's last full factorization; tail includes it
	// (tail = exact residual at the last full factorization + updErr), and
	// the update path falls back to a recompute — which resets it to zero —
	// once it exhausts the Config.UpdateTailFrac budget.
	updErr float64
}

// Stats counts the work done by the last Build or Update call.
type Stats struct {
	// Level1Rebuilt is how many violating level-1 blocks were re-factored
	// from scratch with the randomized SVD. Level1Rebuilt + Level1Updated
	// is |Z|, the violating-block count of the pass.
	Level1Rebuilt int
	// Level1Updated is how many violating level-1 blocks absorbed their
	// delta through the incremental update path instead (always 0 unless
	// Config.SVDUpdate is on).
	Level1Updated int
	// UpperRebuilt counts SVDs at levels ≥ 2 (affected ancestors + root).
	UpperRebuilt int
	// Skipped counts level-1 blocks served from cache.
	Skipped int
}

// Tree is the dynamic Tree-SVD over a column-blocked DynRow proximity
// matrix. The DynRow is owned by the caller (typically ppr.Proximity);
// Tree reads blocks, tracks their rebuild state via MarkRebuilt, and keeps
// all intermediate SVD results cached between snapshots.
//
// Build and Update are transactional: every factorization is produced into
// fresh structures and committed (together with the DynRow baseline resets)
// only after the whole pass succeeds. On error or context cancellation the
// tree's caches, root and the matrix's delta bookkeeping are left exactly
// as they were, so the previous factorization stays valid and a later
// Update re-triggers the pending blocks.
type Tree struct {
	cfg Config
	m   *sparse.DynRow

	level1 []*blockCache
	// upper[l][j] caches Ū of node j at tree level l+2 (level 2 is
	// upper[0]); the root's full SVD lives in root instead. The last
	// entry of upper always has a single node (the root's merge input is
	// the level below it), except when the whole tree is a single chain.
	upper [][]*linalg.Dense
	root  *linalg.SVDResult
	seq   int64 // per-factorization counter so randomized draws differ
	stats Stats
	built bool

	// met accumulates lifetime work counters and timing spans (always
	// non-nil); trace, when set, receives a TraceBlockRecompute or
	// TraceBlockUpdate event for every level-1 block a lazy Update
	// refreshes, telling the two paths apart.
	met   *Metrics
	trace obs.TraceHook
}

// NewTree wraps a DynRow whose block partition was created with
// cfg.Blocks() blocks. The realized block count may be smaller when the
// matrix is narrow; the tree adapts. It returns an error when the
// configuration is invalid.
func NewTree(m *sparse.DynRow, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, m: m, level1: make([]*blockCache, m.NumBlocks()), met: &Metrics{}}, nil
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Metrics returns the tree's cumulative work counters; see Metrics.
func (t *Tree) Metrics() *Metrics { return t.met }

// ShareMetrics replaces the tree's counter set with m, so several trees
// (one per shard) aggregate into a single Metrics. Call right after
// NewTree/RestoreTree, before any Build/Update — the counters are
// updated concurrently from worker goroutines once work starts. A nil m
// is ignored.
func (t *Tree) ShareMetrics(m *Metrics) {
	if m != nil {
		t.met = m
	}
}

// SetTrace installs (or clears, with nil) the hook that receives a
// TraceBlockRecompute or TraceBlockUpdate event for every violating block
// a lazy Update refreshes (recomputed vs incrementally updated). The
// hook fires from worker goroutines; it must be fast and concurrency-safe.
// Not safe to call concurrently with Build/Update — the facade serializes
// it behind the update lock.
func (t *Tree) SetTrace(h obs.TraceHook) { t.trace = h }

// Stats returns the work counters of the last successful Build/Update.
func (t *Tree) Stats() Stats { return t.stats }

// Built reports whether the tree holds a committed factorization.
func (t *Tree) Built() bool { return t.built }

// factorBlock runs the level-1 sparse randomized SVD on block j and
// returns a fresh cache entry. kernelWorkers is the worker budget handed
// to the linear-algebra kernels inside the factorization (see
// splitBudget); the randomized draw — and hence the result — depends only
// on the seed, never on the budget. It does not touch the tree or the
// DynRow baseline — commits happen only after a whole Build/Update
// succeeds.
func (t *Tree) factorBlock(j, kernelWorkers int) (*blockCache, error) {
	return t.factorCSR(t.m.BlockCSR(j), j, t.seq, kernelWorkers)
}

// blockSeed pins the randomized draw of block j's factorization at pass
// seq; factorCSR and the harness's AuditBlock derive seeds the same way,
// so replaying a block's baseline reproduces its cached factorization.
func (t *Tree) blockSeed(j int, seq int64) int64 {
	return t.cfg.Seed + int64(j)*1_000_003 + seq*7_777_777
}

// factorCSR factors an extracted block at an explicit pass counter.
func (t *Tree) factorCSR(blk *sparse.CSR, j int, seq int64, kernelWorkers int) (*blockCache, error) {
	start := time.Now()
	defer t.met.BlockFactorNanos.ObserveSince(start)
	frob := blk.FrobNorm()
	opts := rsvd.Options{
		Rank:       t.cfg.Rank,
		Oversample: t.cfg.Oversample,
		PowerIters: t.cfg.PowerIters,
		Seed:       t.blockSeed(j, seq),
		Workers:    kernelWorkers,
	}
	var res *linalg.SVDResult
	var err error
	if t.cfg.UseCountSketch {
		res, err = rsvd.SparseCW(blk, opts)
	} else {
		res, err = rsvd.Sparse(blk, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: block %d: %w", j, err)
	}
	c := &blockCache{us: res.US(), tail: res.TailEnergy(frob, t.cfg.Rank), seq: seq}
	if t.cfg.SVDUpdate {
		// Retain the full factors so the incremental path can absorb the
		// next delta; the extra memory is one n_j×d V per block, paid only
		// when the knob is on.
		c.fac = res
	}
	return c, nil
}

// tryUpdateBlock attempts the incremental path on violating block j:
// absorb its sparse delta into the cached factorization via svdupd.Update.
// It reports false — recompute instead — when the path is disabled, the
// cache lacks right factors, the delta is too large relative to the Eqn. 2
// trigger (Config.UpdateMaxRel), the updater errors (delta touches more
// rows than the block has columns), or absorbing it would blow the
// accumulated-error budget (Config.UpdateTailFrac). Only the last two
// count as fallbacks in the metrics: the block was eligible and the
// update path gave up.
func (t *Tree) tryUpdateBlock(j, kernelWorkers int) (*blockCache, bool) {
	c := t.level1[j]
	if !t.cfg.SVDUpdate || c == nil || c.fac == nil {
		return nil, false
	}
	trigger := math.Sqrt2 * t.cfg.Delta * t.m.BlockFrobNorm(j)
	if t.m.DeltaFrobNorm(j) > t.cfg.updateMaxRel()*trigger {
		return nil, false
	}
	d := t.m.BlockDelta(j)
	if d.NNZ() == 0 {
		// Every touched entry returned exactly to baseline; the violation
		// came from numeric residue in the delta norm. Recompute to reset
		// the bookkeeping.
		return nil, false
	}
	start := time.Now()
	res, err := svdupd.Update(c.fac, d, svdupd.Options{Rank: t.cfg.Rank, Workers: kernelWorkers})
	if err != nil {
		t.met.UpdateFallbacks.Inc()
		return nil, false
	}
	if c.updErr+res.Discarded > t.cfg.updateTailFrac()*trigger {
		// The truncation error since the last full factorization would
		// exceed its budget: discard the update and pay for a recompute,
		// which resets updErr to zero.
		t.met.UpdateFallbacks.Inc()
		return nil, false
	}
	t.met.BlockUpdateNanos.ObserveSince(start)
	return &blockCache{
		us:     res.Fac.US(),
		tail:   c.tail + res.Discarded,
		seq:    -1, // not a fresh randomized draw: audit by residual bound
		fac:    res.Fac,
		updErr: c.updErr + res.Discarded,
	}, true
}

// splitBudget divides the tree's worker budget across tasks concurrent
// tasks so fan-out parallelism and kernel parallelism compose instead of
// oversubscribing: with many level-1 blocks each factorization runs its
// kernels serially, while a root merge (one task) gets the whole budget.
// It delegates to the shared resolver in internal/par, which documents
// the composition contract.
func splitBudget(w, tasks int) int {
	return par.SplitBudget(w, tasks)
}

// Build runs the full static Tree-SVD (Algorithm 3) over the current
// matrix: every level-1 block is factored and the whole tree is merged.
// Cancelling ctx aborts the pass without touching the committed state.
func (t *Tree) Build(ctx context.Context) error {
	start := time.Now()
	t.seq++
	w := par.Workers(t.cfg.Workers)
	fresh := make([]*blockCache, len(t.level1))
	kb := splitBudget(w, len(fresh))
	if err := stage(ctx, "tree.level1", func(ctx context.Context) error {
		return par.ForErr(ctx, len(fresh), w, func(j int) error {
			c, err := t.factorBlock(j, kb)
			if err != nil {
				return err
			}
			fresh[j] = c
			return nil
		})
	}); err != nil {
		return err
	}
	dirty := make(map[int]bool, len(fresh))
	for j := range fresh {
		dirty[j] = true
	}
	upper, root, merges, err := t.merge(ctx, fresh, dirty)
	if err != nil {
		return err
	}
	t.commit(fresh, upper, root, dirty,
		Stats{Level1Rebuilt: len(fresh), UpperRebuilt: merges})
	t.met.Builds.Inc()
	t.met.PassNanos.ObserveSince(start)
	return nil
}

// violates evaluates the Eqn. 2 trigger for level-1 block j:
//
//	‖(B^(t-i))_d − B^(t-i)‖_F + ‖D_j‖_F > √2·δ·‖B^t_j‖_F.
//
// Unbuilt blocks always violate.
func (t *Tree) violates(j int) bool {
	c := t.level1[j]
	if c == nil {
		return true
	}
	delta := t.m.DeltaFrobNorm(j)
	if delta == 0 {
		return false // untouched block: cache is exact
	}
	return c.tail+delta > math.Sqrt2*t.cfg.Delta*t.m.BlockFrobNorm(j)
}

// Update runs the lazy update (Algorithm 4): re-factor only the level-1
// blocks violating Eqn. 2 — incrementally when Config.SVDUpdate allows it
// (see tryUpdateBlock), from scratch otherwise — then recompute the
// affected ancestors. Call it after the proximity matrix absorbed a batch
// of edge events. It returns the number of violating level-1 blocks
// refreshed (updated + recomputed). On error (including context
// cancellation) the committed factorization and the DynRow baselines are
// untouched, so the pending blocks still violate and a retry picks them up.
func (t *Tree) Update(ctx context.Context) (int, error) {
	if !t.built {
		if err := t.Build(ctx); err != nil {
			return 0, err
		}
		return t.stats.Level1Rebuilt, nil
	}
	start := time.Now()
	t.seq++
	var z []int
	skipped := 0
	for j := range t.level1 {
		if t.violates(j) {
			z = append(z, j)
		} else {
			skipped++
		}
	}
	if len(z) == 0 {
		t.stats = Stats{Skipped: skipped}
		t.met.Updates.Inc()
		t.met.BlocksSkipped.Add(uint64(skipped))
		t.met.PassNanos.ObserveSince(start)
		return 0, nil // every block within tolerance: cached embedding stands
	}
	w := par.Workers(t.cfg.Workers)
	fresh := append([]*blockCache(nil), t.level1...)
	updated := make([]bool, len(z))
	kb := splitBudget(w, len(z))
	if err := stage(ctx, "tree.level1", func(ctx context.Context) error {
		return par.ForErr(ctx, len(z), w, func(i int) error {
			bstart := time.Now()
			if c, ok := t.tryUpdateBlock(z[i], kb); ok {
				fresh[z[i]] = c
				updated[i] = true
				if h := t.trace; h != nil {
					h(obs.TraceEvent{Kind: obs.TraceBlockUpdate, Block: z[i], Dur: time.Since(bstart)})
				}
				return nil
			}
			c, err := t.factorBlock(z[i], kb)
			if err != nil {
				return err
			}
			fresh[z[i]] = c
			if h := t.trace; h != nil {
				h(obs.TraceEvent{Kind: obs.TraceBlockRecompute, Block: z[i], Dur: time.Since(bstart)})
			}
			return nil
		})
	}); err != nil {
		return 0, err
	}
	nupd := 0
	for _, u := range updated {
		if u {
			nupd++
		}
	}
	dirty := make(map[int]bool, len(z))
	for _, j := range z {
		dirty[j] = true
	}
	upper, root, merges, err := t.merge(ctx, fresh, dirty)
	if err != nil {
		return 0, err
	}
	t.commit(fresh, upper, root, dirty,
		Stats{Level1Rebuilt: len(z) - nupd, Level1Updated: nupd, Skipped: skipped, UpperRebuilt: merges})
	t.met.Updates.Inc()
	t.met.PassNanos.ObserveSince(start)
	return len(z), nil
}

// commit atomically installs a finished factorization pass: the fresh
// caches replace the old ones wholesale and only now are the rebuilt
// blocks' DynRow baselines reset. Readers holding results obtained before
// the commit keep valid (old) data — nothing they reference is mutated.
func (t *Tree) commit(level1 []*blockCache, upper [][]*linalg.Dense, root *linalg.SVDResult, rebuilt map[int]bool, stats Stats) {
	t.level1 = level1
	t.upper = upper
	t.root = root
	for j := range rebuilt {
		t.m.MarkRebuilt(j)
	}
	t.stats = stats
	t.built = true
	t.met.observeCommit(stats)
}

// levelCounts returns the node counts per tree level, bottom-up, ending
// with the single root.
func (t *Tree) levelCounts() []int {
	counts := []int{len(t.level1)}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+t.cfg.Branch-1)/t.cfg.Branch)
	}
	return counts
}

// merge propagates rebuilt nodes up the tree (Algorithm 4 lines 6-12) into
// fresh upper-level caches and a fresh root: a parent is re-merged exactly
// when one of its children changed; untouched subtrees are copied from the
// previous caches. The tree itself is not modified — the caller commits
// the returned structures only when the whole pass succeeded.
func (t *Tree) merge(ctx context.Context, level1 []*blockCache, dirty map[int]bool) ([][]*linalg.Dense, *linalg.SVDResult, int, error) {
	start := time.Now()
	defer t.met.MergeNanos.ObserveSince(start)
	w := par.Workers(t.cfg.Workers)
	counts := t.levelCounts()
	if len(counts) == 1 {
		// Single level-1 block: its truncated SVD is the root.
		return nil, linalg.SVDTruncW(level1[0].us, t.cfg.Rank, w), 1, nil
	}
	// Fresh upper cache: one slice per intermediate level (2..q-1), seeded
	// with the previous pass's results where present.
	upper := make([][]*linalg.Dense, len(counts)-2)
	for li := range upper {
		upper[li] = make([]*linalg.Dense, counts[li+1])
		if li < len(t.upper) {
			copy(upper[li], t.upper[li])
		}
	}
	childUS := func(cl, j int) *linalg.Dense {
		if cl == 0 {
			return level1[j].us
		}
		return upper[cl-1][j]
	}
	var root *linalg.SVDResult
	merges := 0
	k := t.cfg.Branch
	if err := stage(ctx, "tree.merge", func(ctx context.Context) error {
		for cl := 0; cl+1 < len(counts); cl++ {
			parentDirty := make(map[int]bool)
			for j := range dirty {
				parentDirty[j/k] = true
			}
			parents := make([]int, 0, len(parentDirty))
			for pj := range parentDirty {
				parents = append(parents, pj)
			}
			sort.Ints(parents)
			isRootLevel := counts[cl+1] == 1
			// Fan-out across dirty parents; each merge's kernels get the
			// leftover budget (the root level has one parent, so its exact SVD
			// runs with the full budget — it is the serial bottleneck of every
			// update pass).
			kb := splitBudget(w, len(parents))
			if err := par.ForErr(ctx, len(parents), w, func(pi int) error {
				pj := parents[pi]
				lo := pj * k
				hi := lo + k
				if hi > counts[cl] {
					hi = counts[cl]
				}
				children := make([]*linalg.Dense, 0, hi-lo)
				cols := 0
				for j := lo; j < hi; j++ {
					c := childUS(cl, j)
					children = append(children, c)
					cols += c.Cols
				}
				// The |S|×(k·d) concat is pooled scratch: SVDTruncW's results
				// never alias its input, so the buffer is recycled as soon as
				// the merge SVD returns instead of being reallocated for every
				// parent of every update pass.
				cc := linalg.GetDense(children[0].Rows, cols)
				linalg.HCatInto(cc, children...)
				res := linalg.SVDTruncW(cc, t.cfg.Rank, kb)
				linalg.PutDense(cc)
				if isRootLevel {
					root = res // exactly one root-level parent: no write race
				} else {
					upper[cl][pj] = res.US()
				}
				return nil
			}); err != nil {
				return err
			}
			merges += len(parents)
			dirty = parentDirty
		}
		return nil
	}); err != nil {
		return nil, nil, 0, err
	}
	return upper, root, merges, nil
}

// ForceRebuildBlock re-factors level-1 block j unconditionally and
// propagates along its ancestor path, bypassing the Eqn. 2 trigger (used
// by trigger ablations). It returns 1 (blocks rebuilt), or falls back to a
// full Build when the tree has never been built.
func (t *Tree) ForceRebuildBlock(ctx context.Context, j int) (int, error) {
	if !t.built {
		if err := t.Build(ctx); err != nil {
			return 0, err
		}
		return t.stats.Level1Rebuilt, nil
	}
	start := time.Now()
	t.seq++
	c, err := t.factorBlock(j, par.Workers(t.cfg.Workers))
	if err != nil {
		return 0, err
	}
	fresh := append([]*blockCache(nil), t.level1...)
	fresh[j] = c
	dirty := map[int]bool{j: true}
	upper, root, merges, err := t.merge(ctx, fresh, dirty)
	if err != nil {
		return 0, err
	}
	t.commit(fresh, upper, root, dirty,
		Stats{Level1Rebuilt: 1, UpperRebuilt: merges})
	t.met.Updates.Inc()
	t.met.PassNanos.ObserveSince(start)
	return 1, nil
}

// Root returns the root truncated SVD (U_{q,1})_d, (Σ_{q,1})_d. Build or
// Update must have succeeded first. The returned result (and its U/S/V)
// is immutable: later Build/Update calls install fresh objects instead of
// mutating it, so callers may hold it across updates.
func (t *Tree) Root() *linalg.SVDResult {
	if t.root == nil {
		panic("core: Root before Build")
	}
	return t.root
}

// Embedding returns the subset embedding X = (U_{q,1})_d·√(Σ_{q,1})_d.
func (t *Tree) Embedding() *linalg.Dense {
	return t.Root().USqrtS()
}

// RightEmbedding recovers the right-factor embedding Y = Ṽ_d·√Σ with
// Ṽ_d = Σ⁻¹·Uᵀ·M_S (Theorem 3.2), i.e. Yᵀ rows are indexed by graph
// nodes. Net per-column scaling is 1/√σ, computed in one sparse pass.
func (t *Tree) RightEmbedding() *linalg.Dense {
	return RightEmbeddingOfW(t.Root(), t.m.ToCSR(), par.Workers(t.cfg.Workers))
}

// Matrix exposes the underlying proximity DynRow.
func (t *Tree) Matrix() *sparse.DynRow { return t.m }

// ReconstructionError returns ‖U·Σ·Ṽ − M‖_F with Ṽ = Σ⁻¹UᵀM, the
// observable counterpart of the Theorem 3.2 guarantee (tests and
// diagnostics; materializes an n×d dense intermediate). ‖M‖_F comes from
// DynRow's incrementally maintained block norms (O(nblocks)), and Mᵀ·U is
// read straight off the live row maps — no CSR materialization, so the
// whole routine is one O(nnz·d) pass.
func (t *Tree) ReconstructionError() float64 {
	root := t.Root()
	f := t.m.FrobNorm()
	if root.Rank() == 0 {
		return f
	}
	vt := t.m.TMulDense(root.U) // n×d = Mᵀ·U
	// ‖M − U·Uᵀ·M‖²_F = ‖M‖²_F − ‖Uᵀ·M‖²_F (projection identity).
	proj := vt.FrobNorm()
	diff := f*f - proj*proj
	if diff < 0 {
		diff = 0
	}
	return math.Sqrt(diff)
}

func (t *Tree) String() string {
	return fmt.Sprintf("TreeSVD(d=%d, k=%d, q=%d, b=%d, δ=%g)",
		t.cfg.Rank, t.cfg.Branch, t.cfg.Levels, t.m.NumBlocks(), t.cfg.Delta)
}
