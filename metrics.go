package treesvd

import (
	"context"
	"strconv"
	"time"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/obs"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/wal"
)

// Registry is a named collection of metrics that can be snapshotted and
// served over HTTP: expvar-style JSON by default, the Prometheus text
// exposition format with ?format=prometheus (or an Accept header
// preferring text/plain). Every Embedder owns one — mount it wherever the
// operator wants the endpoint:
//
//	http.Handle("/metrics", emb.MetricsRegistry())
type Registry = obs.Registry

// TraceHook receives pipeline trace events; install one with
// Embedder.SetTraceHook or DurableConfig.Trace. A nil hook costs one
// branch per fire site; a non-nil hook runs inline on pipeline goroutines
// (including factorization workers and the background checkpoint
// goroutine), so implementations must be fast and safe for concurrent
// use. See TraceEvent for the ordering contract.
type TraceHook = obs.TraceHook

// TraceEvent is the payload handed to a TraceHook. Per update the hook
// sees exactly one TraceBatchStart, then zero or more concurrent
// TraceBlockRecompute and TraceBlockUpdate, then exactly one
// TraceBatchEnd (Err non-nil on failure); TraceRebuild, TraceCheckpoint
// and TraceRecovery fire outside that bracket.
type TraceEvent = obs.TraceEvent

// TraceKind identifies which pipeline event a TraceEvent reports.
type TraceKind = obs.TraceKind

// Trace event kinds; see the obs package for the per-kind field contract.
const (
	TraceBatchStart     = obs.TraceBatchStart
	TraceBlockRecompute = obs.TraceBlockRecompute
	TraceBatchEnd       = obs.TraceBatchEnd
	TraceRebuild        = obs.TraceRebuild
	TraceCheckpoint     = obs.TraceCheckpoint
	TraceRecovery       = obs.TraceRecovery
	TraceShed           = obs.TraceShed
	TraceDegraded       = obs.TraceDegraded
	TraceBlockUpdate    = obs.TraceBlockUpdate
)

// StageLabel is the pprof label key the pipeline sets around every stage
// (ppr.apply, tree.level1, tree.merge, audit, publish). Profile a running
// embedder and focus on one stage with
//
//	go tool pprof -tagfocus treesvd_stage=tree.level1 cpu.out
const StageLabel = obs.StageLabel

// DurationStats summarizes a latency distribution: lifetime count and
// mean, plus min/max/quantiles over a sliding window of recent
// observations (see Metrics for which operation each instance spans).
type DurationStats struct {
	// Count is the lifetime number of observations; Mean the lifetime
	// average.
	Count uint64
	Mean  time.Duration
	// Min, Max and the quantiles describe the recent-window distribution.
	Min, Max, P50, P90, P99, P999 time.Duration
}

func durStats(h obs.HistStats) DurationStats {
	return DurationStats{
		Count: h.Count,
		Mean:  time.Duration(h.Mean()),
		Min:   time.Duration(h.Min),
		Max:   time.Duration(h.Max),
		P50:   time.Duration(h.P50),
		P90:   time.Duration(h.P90),
		P99:   time.Duration(h.P99),
		P999:  time.Duration(h.P999),
	}
}

// WALMetrics is the durability slice of Metrics, present only for
// embedders managed by a DurableEmbedder.
type WALMetrics struct {
	// Appends counts logged batches; AppendedBytes their on-disk record
	// bytes. Fsyncs counts File.Sync calls (policy, rotation, explicit
	// Sync, close); Rotations counts segment rollovers; Checkpoints
	// counts committed checkpoints.
	Appends, AppendedBytes, Fsyncs, Rotations, Checkpoints uint64
	// Append spans whole WAL appends (any policy fsync included), Fsync
	// the fsync calls alone, Checkpoint the full checkpoint commits
	// (write + prune).
	Append, Fsync, Checkpoint DurationStats
}

// Metrics is a point-in-time view of the pipeline's cumulative work
// counters — the observable form of the paper's cost model. All counts
// are lifetime totals since New/Open (metrics are not persisted); read it
// twice and subtract to rate a window. Each field is read atomically, the
// struct as a whole is approximately consistent with concurrent updates.
type Metrics struct {
	// Pushes counts Forward-Push PUSH operations (the O(1/r_max) term of
	// Theorem 3.7); Adjusts the per-event Algorithm 2 corrections (the τ
	// term); SourceRebuilds per-source from-scratch PPR rebuilds (the
	// O(|S|/r_max) fallback).
	Pushes, Adjusts, SourceRebuilds uint64
	// TreeBuilds counts full Build passes, TreeUpdates lazy Update
	// passes. BlocksRebuilt/BlocksSkipped accumulate the per-pass Eqn. 2
	// outcomes (their ratio is the lazy skip rate); UpperMerges counts
	// SVD merges above level 1.
	TreeBuilds, TreeUpdates      uint64
	BlocksRebuilt, BlocksSkipped uint64
	UpperMerges                  uint64
	// BlocksUpdated counts violating blocks absorbed by the incremental
	// Brand update instead of a recompute (always 0 unless
	// Config.SVDUpdate is on); UpdateFallbacks counts eligible blocks
	// that attempted the update but fell back to a recompute. The update
	// hit rate is BlocksUpdated / (BlocksUpdated + BlocksRebuilt).
	BlocksUpdated, UpdateFallbacks uint64
	// BlockFactor spans one level-1 block factorization, BlockUpdate one
	// successful incremental update, Merge one upper merge sweep,
	// TreePass one whole Build/Update.
	BlockFactor, BlockUpdate, Merge, TreePass DurationStats
	// BatchesApplied counts successful ApplyEvents batches and
	// EventsApplied their events; Rebuilds counts successful full
	// Rebuild calls. Batch spans each ApplyEvents attempt end to end.
	BatchesApplied, EventsApplied, Rebuilds uint64
	Batch                                   DurationStats
	// SnapshotsPublished counts published snapshots; SnapshotAge is the
	// time since the last publish (how stale readers currently are).
	SnapshotsPublished uint64
	SnapshotAge        time.Duration
	// PoolHits/PoolMisses are the process-wide linalg scratch-pool
	// counters (shared across embedders in the same process).
	PoolHits, PoolMisses uint64
	// WAL is nil unless this embedder is managed by a DurableEmbedder.
	WAL *WALMetrics
}

// pipelineMetrics is the facade layer's own instrumentation, owned by one
// Embedder. seq is guarded by e.mu (updates are serialized); everything
// else is atomic.
type pipelineMetrics struct {
	seq              uint64 // batch attempt counter, for TraceEvent.Seq
	batches, events  obs.Counter
	rebuilds         obs.Counter
	batchNanos       obs.Histogram
	snapshots        obs.Counter
	lastPublishNanos obs.Gauge // unix nanos of the last publish, 0 before
	shards           []*shardMetrics
	reg              *obs.Registry
}

// shardMetrics is one shard's slice of the facade instrumentation,
// registered in the registry under shard="<id>" labels. The pipeline
// counter sets (PPR pushes, tree blocks, ...) are shared across shards
// and stay aggregate; these series carve the per-shard view the
// aggregate cannot recover.
type shardMetrics struct {
	updates       obs.Counter   // completed tree Update passes
	blocksRebuilt obs.Counter   // level-1 blocks the shard re-factored
	updateNanos   obs.Histogram // wall time per shard tree Update
}

// observeShard records one shard's completed tree update: n re-factored
// blocks since start. Called from the coordinator fan-out, one goroutine
// per shard.
func (p *pipelineMetrics) observeShard(id, n int, start time.Time) {
	sm := p.shards[id]
	sm.updates.Inc()
	sm.blocksRebuilt.Add(uint64(n))
	sm.updateNanos.ObserveSince(start)
}

// durableMetrics is the durability layer's instrumentation, owned by one
// DurableEmbedder and linked into the wrapped embedder's Metrics/registry.
type durableMetrics struct {
	wal         wal.Metrics
	checkpoints obs.Counter
	ckptNanos   obs.Histogram
	degraded    obs.Gauge // 1 while sealed read-only, else 0
	seals       obs.Counter
	reopens     obs.Counter
}

// ageNanos returns nanoseconds since the last snapshot publish (0 before
// the first publish).
func (p *pipelineMetrics) ageNanos() int64 {
	last := p.lastPublishNanos.Load()
	if last == 0 {
		return 0
	}
	return time.Now().UnixNano() - last
}

// newPipelineMetrics builds the embedder's metric set and registry. Every
// metric the embedder exposes through Metrics() is also registered here,
// under stable Prometheus-style names, so the HTTP endpoint and the
// programmatic API never drift apart.
func newPipelineMetrics(e *Embedder) *pipelineMetrics {
	p := &pipelineMetrics{reg: obs.NewRegistry()}
	r := p.reg
	pm := e.shards[0].prox.Sub.Metrics()
	r.Counter("treesvd_ppr_pushes_total", "ops",
		"Forward-Push PUSH operations (Theorem 3.7's 1/r_max term)", &pm.Pushes)
	r.Counter("treesvd_ppr_adjusts_total", "ops",
		"Algorithm 2 per-event estimate corrections (the tau term)", &pm.Adjusts)
	r.Counter("treesvd_ppr_source_rebuilds_total", "sources",
		"Per-source from-scratch PPR rebuilds (the |S|/r_max fallback)", &pm.SourceRebuilds)
	tm := e.shards[0].tree.Metrics()
	r.Counter("treesvd_tree_builds_total", "passes", "Full Tree-SVD Build passes", &tm.Builds)
	r.Counter("treesvd_tree_updates_total", "passes", "Lazy Update passes (Algorithm 4)", &tm.Updates)
	r.Counter("treesvd_tree_blocks_rebuilt_total", "blocks",
		"Level-1 blocks re-factored by the Eqn. 2 trigger", &tm.BlocksRebuilt)
	r.Counter("treesvd_tree_blocks_skipped_total", "blocks",
		"Level-1 blocks served from cache", &tm.BlocksSkipped)
	r.Counter("treesvd_tree_blocks_updated_total", "blocks",
		"Violating level-1 blocks absorbed by the incremental SVD update", &tm.BlocksUpdated)
	r.Counter("treesvd_tree_update_fallbacks_total", "blocks",
		"Eligible blocks that fell back from the incremental update to a recompute", &tm.UpdateFallbacks)
	r.Counter("treesvd_tree_upper_merges_total", "merges",
		"SVD merges above level 1 (affected ancestors plus root)", &tm.UpperMerges)
	r.Histogram("treesvd_tree_block_factor_nanos", "ns",
		"Wall time per level-1 block factorization", &tm.BlockFactorNanos)
	r.Histogram("treesvd_tree_block_update_nanos", "ns",
		"Wall time per successful incremental block update", &tm.BlockUpdateNanos)
	r.Histogram("treesvd_tree_merge_nanos", "ns",
		"Wall time per upper merge sweep", &tm.MergeNanos)
	r.Histogram("treesvd_tree_pass_nanos", "ns",
		"Wall time per whole Build/Update pass", &tm.PassNanos)
	r.Counter("treesvd_batches_applied_total", "batches",
		"Successful ApplyEvents batches", &p.batches)
	r.Counter("treesvd_events_applied_total", "events",
		"Edge events in successful batches", &p.events)
	r.Counter("treesvd_rebuilds_total", "rebuilds", "Successful full Rebuild calls", &p.rebuilds)
	r.Histogram("treesvd_batch_nanos", "ns",
		"Wall time per ApplyEvents attempt, end to end", &p.batchNanos)
	r.Counter("treesvd_snapshots_published_total", "snapshots",
		"Snapshots published by New/ApplyEvents/Rebuild", &p.snapshots)
	r.GaugeFunc("treesvd_snapshot_age_seconds", "s",
		"Seconds since the last snapshot publish", func() float64 {
			return float64(p.ageNanos()) / 1e9
		})
	r.CounterFunc("treesvd_pool_hits_total", "gets",
		"Process-wide linalg scratch-pool hits", func() uint64 {
			h, _ := linalg.PoolStats()
			return h
		})
	r.CounterFunc("treesvd_pool_misses_total", "gets",
		"Process-wide linalg scratch-pool misses (fresh allocations)", func() uint64 {
			_, m := linalg.PoolStats()
			return m
		})
	r.CounterFunc("treesvd_rsvd_sparse_total", "calls",
		"Process-wide randomized sparse SVD factorizations", func() uint64 {
			return rsvd.Stats().Sparse
		})
	r.CounterFunc("treesvd_rsvd_countsketch_total", "calls",
		"Process-wide count-sketch SVD factorizations", func() uint64 {
			return rsvd.Stats().CountSketch
		})
	r.GaugeFunc("treesvd_shards", "shards", "Configured subset shards", func() float64 {
		return float64(len(e.shards))
	})
	p.shards = make([]*shardMetrics, len(e.shards))
	for i, s := range e.shards {
		s := s
		sm := &shardMetrics{}
		p.shards[i] = sm
		ls := []obs.Label{{Key: "shard", Value: strconv.Itoa(i)}}
		r.GaugeFuncWith("treesvd_shard_sources", ls, "sources",
			"Subset sources owned by the shard", func() float64 { return float64(s.hi - s.lo) })
		r.CounterWith("treesvd_shard_updates_total", ls, "passes",
			"Completed tree Update passes on the shard", &sm.updates)
		r.CounterWith("treesvd_shard_blocks_rebuilt_total", ls, "blocks",
			"Level-1 blocks the shard re-factored", &sm.blocksRebuilt)
		r.HistogramWith("treesvd_shard_update_nanos", ls, "ns",
			"Wall time per shard tree Update", &sm.updateNanos)
	}
	return p
}

// registerDurable links the durable layer's metrics into the embedder:
// they appear in Metrics().WAL and in the registry. Called once, before
// the durable embedder is returned to the caller.
func (e *Embedder) registerDurable(dm *durableMetrics) {
	e.mu.Lock()
	e.durMet = dm
	e.mu.Unlock()
	r := e.met.reg
	r.Counter("treesvd_wal_appends_total", "records", "WAL records appended", &dm.wal.Appends)
	r.Counter("treesvd_wal_appended_bytes_total", "bytes",
		"On-disk bytes of appended WAL records", &dm.wal.AppendedBytes)
	r.Counter("treesvd_wal_fsyncs_total", "calls", "WAL fsync calls, all paths", &dm.wal.Fsyncs)
	r.Counter("treesvd_wal_rotations_total", "segments", "WAL segment rollovers", &dm.wal.Rotations)
	r.Histogram("treesvd_wal_append_nanos", "ns",
		"Wall time per WAL append (policy fsync included)", &dm.wal.AppendNanos)
	r.Histogram("treesvd_wal_fsync_nanos", "ns", "Wall time per WAL fsync", &dm.wal.FsyncNanos)
	r.Counter("treesvd_checkpoints_total", "checkpoints",
		"Committed durable checkpoints", &dm.checkpoints)
	r.Histogram("treesvd_checkpoint_nanos", "ns",
		"Wall time per checkpoint commit (write plus prune)", &dm.ckptNanos)
	r.Gauge("treesvd_degraded", "state",
		"1 while the durable embedder is sealed read-only after a WAL I/O failure", &dm.degraded)
	r.Counter("treesvd_degraded_seals_total", "transitions",
		"Transitions into read-only degraded mode", &dm.seals)
	r.Counter("treesvd_degraded_reopens_total", "transitions",
		"Successful Reopen calls restoring ingest after degraded mode", &dm.reopens)
}

// Metrics returns a point-in-time view of the pipeline's cumulative work
// counters. Safe from any goroutine, any time; see Metrics for what each
// field means and MetricsRegistry for the HTTP form of the same data.
func (e *Embedder) Metrics() Metrics {
	pm := e.shards[0].prox.Sub.Metrics()
	tm := e.shards[0].tree.Metrics()
	hits, misses := linalg.PoolStats()
	m := Metrics{
		Pushes:             pm.Pushes.Load(),
		Adjusts:            pm.Adjusts.Load(),
		SourceRebuilds:     pm.SourceRebuilds.Load(),
		TreeBuilds:         tm.Builds.Load(),
		TreeUpdates:        tm.Updates.Load(),
		BlocksRebuilt:      tm.BlocksRebuilt.Load(),
		BlocksSkipped:      tm.BlocksSkipped.Load(),
		UpperMerges:        tm.UpperMerges.Load(),
		BlocksUpdated:      tm.BlocksUpdated.Load(),
		UpdateFallbacks:    tm.UpdateFallbacks.Load(),
		BlockFactor:        durStats(tm.BlockFactorNanos.Snapshot()),
		BlockUpdate:        durStats(tm.BlockUpdateNanos.Snapshot()),
		Merge:              durStats(tm.MergeNanos.Snapshot()),
		TreePass:           durStats(tm.PassNanos.Snapshot()),
		BatchesApplied:     e.met.batches.Load(),
		EventsApplied:      e.met.events.Load(),
		Rebuilds:           e.met.rebuilds.Load(),
		Batch:              durStats(e.met.batchNanos.Snapshot()),
		SnapshotsPublished: e.met.snapshots.Load(),
		SnapshotAge:        time.Duration(e.met.ageNanos()),
		PoolHits:           hits,
		PoolMisses:         misses,
	}
	if dm := e.loadDurMet(); dm != nil {
		m.WAL = &WALMetrics{
			Appends:       dm.wal.Appends.Load(),
			AppendedBytes: dm.wal.AppendedBytes.Load(),
			Fsyncs:        dm.wal.Fsyncs.Load(),
			Rotations:     dm.wal.Rotations.Load(),
			Checkpoints:   dm.checkpoints.Load(),
			Append:        durStats(dm.wal.AppendNanos.Snapshot()),
			Fsync:         durStats(dm.wal.FsyncNanos.Snapshot()),
			Checkpoint:    durStats(dm.ckptNanos.Snapshot()),
		}
	}
	return m
}

// loadDurMet reads the durable-metrics link under the update lock (it is
// written once, before the DurableEmbedder escapes its constructor).
func (e *Embedder) loadDurMet() *durableMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.durMet
}

// MetricsRegistry returns the embedder's metric registry — every counter
// Metrics() reports, under stable treesvd_* names — ready to mount as an
// HTTP handler or to scrape programmatically via its Snapshot/Write
// methods.
func (e *Embedder) MetricsRegistry() *Registry { return e.met.reg }

// SetTraceHook installs (or clears, with nil) the hook receiving pipeline
// trace events; see TraceHook for the contract. It serializes with
// updates, so it is safe to call at any time, but is typically set once
// after New. For durable embedders prefer DurableConfig.Trace, which also
// covers checkpoint and recovery events.
func (e *Embedder) SetTraceHook(h TraceHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.trace = h
	for i, s := range e.shards {
		if h == nil {
			s.tree.SetTrace(nil)
			continue
		}
		i := i
		s.tree.SetTrace(func(ev obs.TraceEvent) {
			ev.Shard = i
			h(ev)
		})
	}
}

// stage runs f under an obs pprof stage label, returning its error.
func stage(ctx context.Context, name string, f func(context.Context) error) error {
	var err error
	obs.Stage(ctx, name, func(ctx context.Context) { err = f(ctx) })
	return err
}
