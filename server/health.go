package server

import (
	"net/http"

	"github.com/tree-svd/treesvd/internal/wire"
)

// degrader is implemented by *treesvd.DurableEmbedder: a non-nil
// Degraded() means ingest is sealed read-only (see the degraded-mode
// contract there). A plain *treesvd.Embedder has no durability to lose
// and never degrades.
type degrader interface {
	Degraded() error
}

// handleHealthz is the liveness probe: the process is up and the mux is
// answering. It stays 200 while draining or degraded — restarting a
// process that is still serving reads would make either condition worse.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.HealthDTO{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 only while the server should
// receive new traffic — a snapshot is published, Shutdown has not begun,
// and the ingest path is not sealed in degraded mode. The body always
// says why not, so an operator curling the endpoint needs no logs.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	dto := wire.HealthDTO{Status: "ready"}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		dto.Status, status = "draining", http.StatusServiceUnavailable
	case s.e.Snapshot() == nil:
		dto.Status, status = "no snapshot", http.StatusServiceUnavailable
	default:
		if d, ok := s.ingest.(degrader); ok {
			if err := d.Degraded(); err != nil {
				dto.Status, dto.Reason, status = "degraded", err.Error(), http.StatusServiceUnavailable
			}
		}
	}
	writeJSON(w, status, dto)
}
