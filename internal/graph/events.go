package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EventType distinguishes edge insertions from deletions.
type EventType uint8

const (
	// Insert adds an edge.
	Insert EventType = iota
	// Delete removes an edge.
	Delete
)

// Event is one edge event ⟨u, v, type⟩ of Definition 2.1.
type Event struct {
	U, V int32
	Type EventType
}

// Apply executes the event on the graph. It returns false for no-op events
// (inserting an existing edge, deleting a missing one).
func (g *Graph) Apply(e Event) bool {
	if e.Type == Insert {
		return g.InsertEdge(e.U, e.V)
	}
	return g.DeleteEdge(e.U, e.V)
}

// ApplyAll executes a batch of events and returns how many took effect.
func (g *Graph) ApplyAll(events []Event) int {
	n := 0
	for _, e := range events {
		if g.Apply(e) {
			n++
		}
	}
	return n
}

// Stream is a dynamic graph per Definition 2.1: an ordered event log cut
// into snapshots. Snapshot t (1-based; snapshot 0 is the empty graph)
// consists of the first Ends[t-1] events. NumNodes is the id upper bound.
type Stream struct {
	Events   []Event
	Ends     []int // cumulative event counts, one per snapshot; non-decreasing
	NumNodes int
}

// NumSnapshots returns τ, the number of non-empty snapshots.
func (s *Stream) NumSnapshots() int { return len(s.Ends) }

// SnapshotEvents returns the events between snapshot t-1 and t (Δ^t),
// where t is 1-based.
func (s *Stream) SnapshotEvents(t int) []Event {
	if t < 1 || t > len(s.Ends) {
		panic(fmt.Sprintf("graph: snapshot %d out of 1..%d", t, len(s.Ends)))
	}
	lo := 0
	if t > 1 {
		lo = s.Ends[t-2]
	}
	return s.Events[lo:s.Ends[t-1]]
}

// BuildSnapshot materializes the graph at snapshot t (1-based).
func (s *Stream) BuildSnapshot(t int) *Graph {
	g := New(s.NumNodes)
	if t < 1 {
		return g
	}
	g.ApplyAll(s.Events[:s.Ends[t-1]])
	return g
}

// Validate checks structural invariants of the stream.
func (s *Stream) Validate() error {
	prev := 0
	for i, e := range s.Ends {
		if e < prev {
			return fmt.Errorf("graph: Ends[%d]=%d decreases below %d", i, e, prev)
		}
		if e > len(s.Events) {
			return fmt.Errorf("graph: Ends[%d]=%d exceeds %d events", i, e, len(s.Events))
		}
		prev = e
	}
	for i, ev := range s.Events {
		if ev.U < 0 || ev.V < 0 || int(ev.U) >= s.NumNodes || int(ev.V) >= s.NumNodes {
			return fmt.Errorf("graph: event %d touches node out of range [0,%d)", i, s.NumNodes)
		}
	}
	return nil
}

// WriteEvents writes the stream in a line format: a header
// "# nodes N snapshots K" followed by "end <count>" lines and one
// "u v +|-" line per event.
func (s *Stream) WriteEvents(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d snapshots %d\n", s.NumNodes, len(s.Ends)); err != nil {
		return err
	}
	for _, e := range s.Ends {
		if _, err := fmt.Fprintf(bw, "end %d\n", e); err != nil {
			return err
		}
	}
	for _, ev := range s.Events {
		op := "+"
		if ev.Type == Delete {
			op = "-"
		}
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", ev.U, ev.V, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses the format written by WriteEvents.
func ReadEvents(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s := &Stream{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#"):
			var n, k int
			if _, err := fmt.Sscanf(line, "# nodes %d snapshots %d", &n, &k); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header: %w", lineNo, err)
			}
			s.NumNodes = n
		case strings.HasPrefix(line, "end "):
			e, err := strconv.Atoi(strings.TrimPrefix(line, "end "))
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad end: %w", lineNo, err)
			}
			s.Ends = append(s.Ends, e)
		default:
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'u v op', got %q", lineNo, line)
			}
			u, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			v, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			var typ EventType
			switch f[2] {
			case "+":
				typ = Insert
			case "-":
				typ = Delete
			default:
				return nil, fmt.Errorf("graph: line %d: bad op %q", lineNo, f[2])
			}
			s.Events = append(s.Events, Event{U: int32(u), V: int32(v), Type: typ})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
