// Command datagen materializes the synthetic dynamic-graph datasets to
// disk in the event-stream format understood by cmd/treesvd and
// graph.ReadEvents, plus an optional labels file.
//
// Usage:
//
//	datagen -profile Patent -out patent.events [-labels patent.labels] [-scale 1] [-seed 101]
//	datagen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/tree-svd/treesvd/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "", "profile name (see -list)")
		out     = flag.String("out", "", "output event-stream path")
		labels  = flag.String("labels", "", "optional labels output path (labeled profiles only)")
		scale   = flag.Float64("scale", 1, "size multiplier")
		seed    = flag.Int64("seed", 0, "override stream seed")
		list    = flag.Bool("list", false, "list built-in profiles")
	)
	flag.Parse()

	if *list {
		for _, p := range dataset.AllProfiles() {
			fmt.Printf("%-12s n=%-7d m=%-7d classes=%-3d snapshots=%-3d labeled=%v\n",
				p.Name, p.Nodes, p.TargetEdges, p.Communities, p.Snapshots, p.Labeled)
		}
		return
	}
	if *profile == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -profile and -out are required (try -list)")
		os.Exit(2)
	}
	p, err := dataset.ByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *scale != 1 {
		p = dataset.ScaleProfile(p, *scale)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	ds := dataset.Generate(p)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := ds.Stream.WriteEvents(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events / %d snapshots / %d nodes to %s\n",
		len(ds.Stream.Events), ds.Stream.NumSnapshots(), ds.Stream.NumNodes, *out)

	if *labels != "" {
		if ds.Labels == nil {
			fmt.Fprintf(os.Stderr, "datagen: profile %s is unlabeled\n", p.Name)
			os.Exit(1)
		}
		lf, err := os.Create(*labels)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer lf.Close()
		w := bufio.NewWriter(lf)
		for v, l := range ds.Labels {
			fmt.Fprintf(w, "%d %d\n", v, l)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d labels to %s\n", len(ds.Labels), *labels)
	}
}
