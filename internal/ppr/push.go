// Package ppr implements the personalized-PageRank machinery of the paper:
// the Forward-Push algorithm of Andersen et al. (Algorithm 1), the dynamic
// Forward-Push of Zhang et al. (Algorithm 2) that maintains estimate and
// residue vectors across edge events, per-subset management of forward and
// reverse PPR states, and the STRAP-style log-transformed proximity matrix.
package ppr

import (
	"fmt"
	"math"
	"sort"

	"github.com/tree-svd/treesvd/internal/graph"
)

// Params are the PPR knobs: the decay factor α and the push threshold
// r_max (Table 2). Smaller r_max means more accurate estimates at
// O(1/r_max) push cost. Workers parallelizes per-source work (0 or 1 =
// sequential; each worker gets its own push scratch). Met, when non-nil,
// is the shared work-counter set every engine built from these params
// reports into — a sharded embedder passes one instance to every shard's
// Subset so the counts aggregate across shards; nil allocates a private
// set per NewEngine.
//
// Accel switches Push to the successive-over-relaxation step (the
// momentum-accelerated Forward-Push of arXiv 2306.02102): each push moves
// ω·r(u) instead of r(u), with ω the SOR optimum 2/(1+√(α(2−α))) capped
// by the stability bound 2/(2−α) — see omega for why the cap, not the
// optimum, is what keeps the sweep convergent on a directed P̃. Every push —
// classic or over-relaxed, by any amount — preserves the invariant
// π = p + Σ_v r(v)·π_v exactly, so the accelerated variant satisfies the
// same error bound |π(u) − p(u)| ≤ Σ|r| at termination and passes the
// same exact-PPR audits; only the number of pushes to get there changes.
// Off by default; when off, Push is bit-identical to the classic step.
type Params struct {
	Alpha   float64
	RMax    float64
	Workers int
	Met     *Metrics
	Accel   bool
}

// omega returns the over-relaxation factor Push uses: 1 (the classic
// step) unless Accel is set. The accelerated factor is the classic SOR
// optimum 2/(1+√(α(2−α))) capped by the mass-safe bound 2/(2−α): a push
// of d = ω·r(u) removes |r(u)| of residue mass, leaves (ω−1)|r(u)|
// behind and spreads at most (1−α)·ω·|r(u)|, so Σ|r| scales by at worst
// ω(2−α)−1 per push — above 2/(2−α) that factor exceeds 1 and the sweep
// can diverge on adversarial graphs (oscillating residues grow without
// bound, and once estimates reach ~1e11 float cancellation destroys the
// push invariant itself; the 64-seed differential fuzz caught exactly
// this). At or below the cap Σ|r| is non-increasing, so the residue
// bound |π−p| ≤ Σ|r| can only tighten and divergence is impossible; the
// push budget in Push still guards termination in the neutral worst
// case. The optimum formula assumes a consistently-ordered symmetric
// system — a directed P̃ is neither, hence the separate stability cap.
func (p Params) omega() float64 {
	if !p.Accel {
		return 1
	}
	return min(2/(1+math.Sqrt(p.Alpha*(2-p.Alpha))), 2/(2-p.Alpha))
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("ppr: alpha %g outside (0,1)", p.Alpha)
	}
	if p.RMax <= 0 {
		return fmt.Errorf("ppr: rmax %g must be positive", p.RMax)
	}
	return nil
}

// State holds the estimate vector p_s and residue vector r_s of one source
// in one traversal direction, plus the set of nodes whose estimate changed
// since the last Proximity refresh.
type State struct {
	Source int32
	Dir    graph.Direction
	P      map[int32]float64
	R      map[int32]float64
	// Touched collects nodes whose P entry changed since the caller last
	// drained it (used to refresh proximity-matrix entries incrementally).
	Touched map[int32]struct{}
	// dirtyR collects nodes whose residue (or traversal degree) changed
	// since the last Push, so re-pushing seeds in O(changed) instead of
	// scanning the whole residue map. The push invariant guarantees no
	// other node can violate the threshold.
	dirtyR map[int32]struct{}
}

// NewState initializes a state with the one-hot residue r_s = 1_s.
func NewState(source int32, dir graph.Direction) *State {
	return &State{
		Source:  source,
		Dir:     dir,
		P:       make(map[int32]float64),
		R:       map[int32]float64{source: 1},
		Touched: make(map[int32]struct{}),
		dirtyR:  map[int32]struct{}{source: {}},
	}
}

// Engine runs push operations for states over a shared graph, reusing
// scratch queues across sources.
type Engine struct {
	G      *graph.Graph
	Params Params
	// Met receives the engine's work counters; always non-nil (NewEngine
	// allocates one, and Subset shares a single instance across its
	// worker engines so counts aggregate).
	Met *Metrics

	inQueue []bool
	queue   []int32
}

// NewEngine creates an engine over g. The graph may keep growing; scratch
// structures resize on demand. It returns an error when params are invalid.
func NewEngine(g *graph.Graph, params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	met := params.Met
	if met == nil {
		met = &Metrics{}
	}
	return &Engine{G: g, Params: params, Met: met}, nil
}

func (e *Engine) ensureScratch() {
	if n := e.G.NumNodes(); len(e.inQueue) < n {
		e.inQueue = make([]bool, n)
	}
}

// degOrOne returns the traversal degree of u, treating dangling nodes as
// having an implicit self-loop (degree 1), the standard sink convention.
func (e *Engine) degOrOne(u int32, dir graph.Direction) float64 {
	if d := e.G.Degree(u, dir); d > 0 {
		return float64(d)
	}
	return 1
}

// Push runs the Forward-Push loop (Algorithm 1 lines 2-3 and the negative
// counterpart of Algorithm 2 lines 8-11) until no node's |residue|/degree
// exceeds r_max. It pushes positive and negative residues alike, so it
// serves both the static build and the dynamic repair phase.
//
// With Params.Accel the loop over-relaxes: each push moves ω·r(u)
// (ω > 1, see Params), leaving a small negative counter-residue at u.
// Asynchronous over-relaxation has no termination guarantee in general,
// so a safeguard bounds the accelerated phase: past a generous per-call
// push budget the loop reverts to the classic ω = 1 step, whose
// termination argument applies to whatever residue vector the
// accelerated phase left behind (every push preserves the estimate
// identity, so the switch is seamless).
func (e *Engine) Push(st *State) {
	e.ensureScratch()
	alpha, rmax := e.Params.Alpha, e.Params.RMax
	omega := e.Params.omega()
	budget := uint64(1024 + 32*e.G.NumNodes())
	// Seed the queue with the violating nodes among those whose residue
	// or degree changed since the last Push; the push invariant ensures
	// no other node can have crossed the threshold. The seeds are sorted
	// so results do not depend on map iteration order — pushes are
	// reproducible run-to-run and across worker counts.
	e.queue = e.queue[:0]
	for u := range st.dirtyR {
		if abs(st.R[u]) > rmax*e.degOrOne(u, st.Dir) {
			e.queue = append(e.queue, u)
			e.inQueue[u] = true
		}
	}
	sort.Slice(e.queue, func(a, b int) bool { return e.queue[a] < e.queue[b] })
	st.dirtyR = make(map[int32]struct{})
	// pushed is accumulated locally and folded into Met with one atomic
	// add at the end — the loop body stays free of shared-memory traffic.
	pushed := uint64(0)
	for len(e.queue) > 0 {
		u := e.queue[0]
		e.queue = e.queue[1:]
		e.inQueue[u] = false
		ru := st.R[u]
		if ru == 0 {
			continue
		}
		deg := float64(e.G.Degree(u, st.Dir))
		if abs(ru) <= rmax*max(deg, 1) {
			continue
		}
		// PUSH(u): move d = ω·r(u) — settle α·d at u, spread (1−α)·d
		// across neighbors, leave r(u) − d behind (exactly zero at ω = 1,
		// where d is computed as r(u) itself so the classic bit pattern is
		// preserved).
		pushed++
		if omega != 1 && pushed > budget {
			// Safeguard: the accelerated phase overstayed its budget;
			// finish with the terminating classic step.
			omega = 1
		}
		d := ru
		if omega != 1 {
			d = omega * ru
		}
		st.bumpP(u, alpha*d)
		if deg == 0 {
			// Dangling sink: the (1−α) share self-loops back to u, joining
			// whatever the over-relaxed step left behind.
			rem := (1-alpha)*d + (ru - d)
			if rem == 0 {
				delete(st.R, u)
			} else {
				st.R[u] = rem
			}
			if abs(rem) > rmax {
				e.enqueue(u)
			}
			continue
		}
		if left := ru - d; left == 0 {
			delete(st.R, u)
		} else {
			st.R[u] = left
			if abs(left) > rmax*deg {
				e.enqueue(u)
			}
		}
		share := (1 - alpha) * d / deg
		for _, v := range e.G.Neighbors(u, st.Dir) {
			rv := st.R[v] + share
			if rv == 0 {
				delete(st.R, v)
			} else {
				st.R[v] = rv
			}
			if abs(rv) > rmax*e.degOrOne(v, st.Dir) {
				e.enqueue(v)
			}
		}
	}
	e.Met.Pushes.Add(pushed)
}

func (e *Engine) enqueue(u int32) {
	if !e.inQueue[u] {
		e.inQueue[u] = true
		e.queue = append(e.queue, u)
	}
}

// bumpP adds delta to p_s(u) and records u as touched.
func (st *State) bumpP(u int32, delta float64) {
	if delta == 0 {
		return
	}
	nv := st.P[u] + delta
	if nv == 0 {
		delete(st.P, u)
	} else {
		st.P[u] = nv
	}
	st.Touched[u] = struct{}{}
}

// AdjustEvent applies the estimate/residue corrections of Algorithm 2
// (lines 1-7) for a single edge event. The graph must already reflect the
// event (degrees are read post-event, which keeps both the insert and the
// delete formulas well-defined for positive degrees). Corrections with a
// zero estimate at the event's tail are no-ops and skipped.
//
// Sink transitions are handled exactly under the self-loop convention the
// push engine uses for dangling nodes. When a sink a (all arriving mass
// eventually absorbed, so p(a) equals the absorbed arrivals M) gains its
// first real out-edge, each arrival now stops with probability α and
// moves on otherwise: p'(a) = α·p(a) and r(b) += (1−α)·p(a). When a
// degree-1 node loses its last out-edge the correction is the exact
// inverse: p'(a) = p(a)/α and r(b) −= (1−α)·p(a)/α.
//
// Self-loop events (a == b) take a dedicated correction path — see
// adjustSelfLoop; the a ≠ b formulas above are not valid for them.
func (e *Engine) AdjustEvent(st *State, ev graph.Event) {
	a, b := ev.U, ev.V
	if st.Dir == graph.Reverse {
		a, b = b, a
	}
	if int(a) >= e.G.NumNodes() || int(b) >= e.G.NumNodes() {
		return
	}
	e.adjustWithDeg(st, a, b, ev.Type, float64(e.G.Degree(a, st.Dir)))
}

// adjustWithDeg is AdjustEvent with the post-event traversal degree of a
// supplied by the caller, so batched updates can record degrees while
// mutating the graph and replay the per-source corrections in parallel
// afterwards.
func (e *Engine) adjustWithDeg(st *State, a, b int32, typ graph.EventType, d float64) {
	// a's traversal degree changed, so its existing residue may now
	// violate the push threshold even if no estimate mass moves.
	st.dirtyR[a] = struct{}{}
	pa := st.P[a]
	if pa == 0 {
		return
	}
	alpha := e.Params.Alpha
	if a == b {
		e.adjustSelfLoop(st, a, typ, d)
		return
	}
	if typ == graph.Insert {
		if d == 1 {
			// Sink → degree 1: of the absorbed arrivals p(a), only the
			// α-fraction still stops at a; the rest walks on to b.
			st.setP(a, alpha*pa)
			st.addR(b, (1-alpha)*pa)
			return
		}
		pa *= d / (d - 1)
		st.setP(a, pa)
		st.addR(a, -pa/(d*alpha))
		st.addR(b, (1-alpha)*pa/(d*alpha))
	} else {
		if d == 0 {
			// Degree 1 → sink: every arrival is now absorbed at a; retract
			// the (1−α)-share previously routed to b.
			st.setP(a, pa/alpha)
			st.addR(b, -(1-alpha)*pa/alpha)
			return
		}
		pa *= d / (d + 1)
		st.setP(a, pa)
		st.addR(a, pa/(d*alpha))
		st.addR(b, -(1-alpha)*pa/(d*alpha))
	}
}

// adjustSelfLoop applies the a == b corrections for self-loop events. The
// a ≠ b formulas of Algorithm 2 are derived for an edge whose endpoints
// are distinct nodes; applying them verbatim to a self-loop writes the
// estimate rescale and the addR(b,…) residue correction onto the same
// node, which is wrong in the sink-transition cases. The exact a == b
// corrections follow from the push identity r = e_s − p·(I − (1−α)P̃)/α
// (P̃ is the traversal matrix with the engine's implicit self-loop at
// dangling nodes) under the rank-1 row perturbation P̃' = P̃ + e_a(q'−q)ᵀ:
//
//   - insert, d == 1: a was dangling, so its effective row was already
//     e_a; making the self-loop explicit leaves P̃ unchanged. The exact
//     correction is a no-op — in particular the sink→degree-1 formula
//     p'(a) = α·p(a), r(a) += (1−α)·p(a) must NOT run: it deflates the
//     estimate by a factor α and manufactures (1−α)·p(a) of artificial
//     residue that later pushes have to settle all over again.
//   - delete, d == 0: the inverse transition — removing the only
//     (self-loop) edge returns a to the implicit-self-loop convention,
//     again leaving P̃ unchanged. No-op; the degree-1→sink formula
//     p'(a) = p(a)/α would inflate the estimate by 1/α and create
//     (1−α)·p(a)/α of spurious negative residue.
//   - insert, d ≥ 2: q' = ((d−1)q + e_a)/d; choosing p'(a) = p(a)·d/(d−1)
//     cancels the q-component and both residue terms land on a itself:
//     Δr(a) = (p(a) − p'(a))/α + (1−α)p'(a)/(dα) = −p'(a)/d.
//   - delete, d ≥ 1: q' = ((d+1)q − e_a)/d; p'(a) = p(a)·d/(d+1) and the
//     mirrored algebra gives Δr(a) = +p'(a)/d.
//
// The combined Δr keeps the estimate/residue mass Σp + Σr invariant, so
// check.PPRState's accounting holds across self-loop churn.
func (e *Engine) adjustSelfLoop(st *State, a int32, typ graph.EventType, d float64) {
	pa := st.P[a]
	if typ == graph.Insert {
		if d == 1 {
			return // dangling → explicit self-loop: P̃ unchanged
		}
		pa *= d / (d - 1)
		st.setP(a, pa)
		st.addR(a, -pa/d)
	} else {
		if d == 0 {
			return // explicit self-loop → dangling: P̃ unchanged
		}
		pa *= d / (d + 1)
		st.setP(a, pa)
		st.addR(a, pa/d)
	}
}

func (st *State) setP(u int32, v float64) {
	if v == 0 {
		delete(st.P, u)
	} else {
		st.P[u] = v
	}
	st.Touched[u] = struct{}{}
}

func (st *State) addR(u int32, delta float64) {
	nv := st.R[u] + delta
	if nv == 0 {
		delete(st.R, u)
	} else {
		st.R[u] = nv
	}
	st.dirtyR[u] = struct{}{}
}

// ResidueL1 returns Σ|r|, an upper bound on the pointwise estimate error
// (|p(u) − π(u)| ≤ Σ_v |r(v)| because every π_v(u) ≤ 1).
func (st *State) ResidueL1() float64 {
	var s float64
	for _, r := range st.R {
		s += abs(r)
	}
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
