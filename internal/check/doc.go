// Package check is the correctness harness of the repository: invariant
// auditors for every layer of the dynamic pipeline, plus the fingerprint
// helpers the snapshot-immutability and differential tests build on.
//
// The auditors verify redundancy the pipeline maintains for speed against
// the ground truth it summarizes:
//
//   - PPRState / PPRSubset — the Forward-Push contract: every residue
//     within the r_max threshold, every key a valid node id, and the
//     estimate/residue mass exactly accounted for (Σp + Σr = 1, which
//     both pushes and the Algorithm 2 corrections preserve).
//   - DynRow — the incrementally maintained block Frobenius norms, delta
//     norms, nnz counters and baseline keys versus an exact recount.
//   - Tree / TreeDeep — cached factorization shapes versus the tree
//     geometry, and (deep) each level-1 cache versus re-factoring its
//     recorded baseline at its recorded seed.
//   - Snapshot / FingerprintRows — order-sensitive content hashes used to
//     prove published snapshots never mutate.
//
// Auditors return nil on a healthy structure and a descriptive error
// naming the first violated invariant otherwise. They read (never mutate)
// the structures they audit; callers are responsible for excluding
// concurrent writers, exactly as for any other read of those structures.
//
// The differential/metamorphic fuzzer lives in this package's external
// test suite (package check_test), which may import the public treesvd
// facade without creating an import cycle; treesvd itself imports this
// package for its opt-in Config.SelfCheck hook.
package check
