package core

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// TreeSnapshot is the serializable state of a Tree: every cached
// factorization plus the randomized-draw counter. The proximity DynRow is
// serialized separately by the owner (it is shared state); Restore rewires
// the snapshot onto it.
type TreeSnapshot struct {
	Level1US   []*linalg.Dense
	Level1Tail []float64
	// Level1Seq records the factorization counter each cache was built at
	// (seed provenance for the correctness harness). Absent in saves from
	// older versions — gob leaves the slice nil and Restore falls back to
	// the "no provenance" sentinel, keeping old saves loadable.
	Level1Seq []int64
	// Level1U/Level1S/Level1V and Level1UpdErr carry the full per-block
	// factors and accumulated update error retained when Config.SVDUpdate
	// is on, so a restored tree keeps serving the incremental path with
	// its exact pre-save state. All nil when the update path is off (and
	// in saves from older versions — gob leaves them nil and Restore
	// simply rebuilds caches without factors, which the recompute path
	// handles as before).
	Level1U      []*linalg.Dense
	Level1S      [][]float64
	Level1V      []*linalg.Dense
	Level1UpdErr []float64
	Upper        [][]*linalg.Dense
	RootU        *linalg.Dense
	RootS        []float64
	RootV        *linalg.Dense
	Seq          int64
	Built        bool
}

// Snapshot captures the tree's cached state for persistence.
func (t *Tree) Snapshot() *TreeSnapshot {
	snap := &TreeSnapshot{Seq: t.seq, Built: t.built}
	snap.Level1US = make([]*linalg.Dense, len(t.level1))
	snap.Level1Tail = make([]float64, len(t.level1))
	snap.Level1Seq = make([]int64, len(t.level1))
	hasFac := false
	for _, c := range t.level1 {
		if c != nil && c.fac != nil {
			hasFac = true
			break
		}
	}
	if hasFac {
		snap.Level1U = make([]*linalg.Dense, len(t.level1))
		snap.Level1S = make([][]float64, len(t.level1))
		snap.Level1V = make([]*linalg.Dense, len(t.level1))
		snap.Level1UpdErr = make([]float64, len(t.level1))
	}
	for j, c := range t.level1 {
		if c != nil {
			snap.Level1US[j] = c.us
			snap.Level1Tail[j] = c.tail
			snap.Level1Seq[j] = c.seq
			if hasFac && c.fac != nil {
				snap.Level1U[j] = c.fac.U
				snap.Level1S[j] = c.fac.S
				snap.Level1V[j] = c.fac.V
				snap.Level1UpdErr[j] = c.updErr
			}
		} else {
			snap.Level1Seq[j] = -1
		}
	}
	snap.Upper = t.upper
	if t.root != nil {
		snap.RootU = t.root.U
		snap.RootS = t.root.S
		snap.RootV = t.root.V
	}
	return snap
}

// RestoreTree rebuilds a Tree over matrix m from a snapshot taken with the
// same configuration. The block partition of m must match the snapshot.
// Snapshots come from untrusted decodes, so every cached structure is
// shape-checked against the matrix and the tree geometry before it is
// installed; a corrupted snapshot errors here instead of panicking inside
// a later merge or read.
func RestoreTree(m *sparse.DynRow, cfg Config, snap *TreeSnapshot) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("core: nil tree snapshot")
	}
	if len(snap.Level1US) != m.NumBlocks() {
		return nil, fmt.Errorf("core: snapshot has %d level-1 blocks, matrix has %d",
			len(snap.Level1US), m.NumBlocks())
	}
	if err := snap.validate(m, cfg); err != nil {
		return nil, err
	}
	t, err := NewTree(m, cfg)
	if err != nil {
		return nil, err
	}
	for j, us := range snap.Level1US {
		if us != nil {
			seq := int64(-1) // no provenance: AuditBlock skips this cache
			if len(snap.Level1Seq) == len(snap.Level1US) {
				seq = snap.Level1Seq[j]
			}
			c := &blockCache{us: us, tail: snap.Level1Tail[j], seq: seq}
			if len(snap.Level1U) == len(snap.Level1US) && snap.Level1U[j] != nil {
				c.fac = &linalg.SVDResult{U: snap.Level1U[j], S: snap.Level1S[j], V: snap.Level1V[j]}
				c.updErr = snap.Level1UpdErr[j]
			}
			t.level1[j] = c
		}
	}
	t.upper = snap.Upper
	if snap.RootU != nil {
		t.root = &linalg.SVDResult{U: snap.RootU, S: snap.RootS, V: snap.RootV}
	}
	t.seq = snap.Seq
	t.built = snap.Built
	return t, nil
}

// validate shape-checks a decoded snapshot against the matrix it is being
// rewired onto and the tree geometry cfg implies.
func (snap *TreeSnapshot) validate(m *sparse.DynRow, cfg Config) error {
	if len(snap.Level1Tail) != len(snap.Level1US) {
		return fmt.Errorf("core: snapshot has %d tail energies for %d level-1 blocks",
			len(snap.Level1Tail), len(snap.Level1US))
	}
	for j, us := range snap.Level1US {
		if us == nil {
			continue
		}
		if us.Rows != m.Rows() {
			return fmt.Errorf("core: snapshot block %d cache has %d rows, matrix has %d", j, us.Rows, m.Rows())
		}
		if tail := snap.Level1Tail[j]; math.IsNaN(tail) || tail < 0 {
			return fmt.Errorf("core: snapshot block %d has invalid tail energy %g", j, tail)
		}
	}
	// Retained per-block factors, when present, come as four aligned
	// slices (all-or-nothing) whose shapes must agree entry-wise.
	if len(snap.Level1U) != 0 || len(snap.Level1S) != 0 || len(snap.Level1V) != 0 || len(snap.Level1UpdErr) != 0 {
		b := len(snap.Level1US)
		if len(snap.Level1U) != b || len(snap.Level1S) != b || len(snap.Level1V) != b || len(snap.Level1UpdErr) != b {
			return fmt.Errorf("core: snapshot factor slices are %d/%d/%d/%d long for %d level-1 blocks",
				len(snap.Level1U), len(snap.Level1S), len(snap.Level1V), len(snap.Level1UpdErr), b)
		}
		for j := 0; j < b; j++ {
			u, s, v := snap.Level1U[j], snap.Level1S[j], snap.Level1V[j]
			blo, bhi := m.BlockRange(j)
			width := bhi - blo
			if u == nil {
				if s != nil || v != nil {
					return fmt.Errorf("core: snapshot block %d has partial factors", j)
				}
				continue
			}
			switch {
			case snap.Level1US[j] == nil:
				return fmt.Errorf("core: snapshot block %d has factors without a cache", j)
			case u.Rows != m.Rows() || u.Cols != len(s):
				return fmt.Errorf("core: snapshot block %d factor U is %d×%d for %d singular values",
					j, u.Rows, u.Cols, len(s))
			case v == nil || v.Rows != width || v.Cols != len(s):
				return fmt.Errorf("core: snapshot block %d factor V missing or mis-shaped", j)
			case math.IsNaN(snap.Level1UpdErr[j]) || snap.Level1UpdErr[j] < 0:
				return fmt.Errorf("core: snapshot block %d has invalid update error %g", j, snap.Level1UpdErr[j])
			}
			for i, sv := range s {
				if math.IsNaN(sv) || sv < 0 {
					return fmt.Errorf("core: snapshot block %d singular value %d is %g", j, i, sv)
				}
			}
		}
	}
	// Geometry of the cached upper levels: counts[l] nodes at level l+1,
	// mirroring Tree.levelCounts over the snapshot's block count.
	counts := []int{len(snap.Level1US)}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+cfg.Branch-1)/cfg.Branch)
	}
	if want := max(len(counts)-2, 0); len(snap.Upper) > want {
		return fmt.Errorf("core: snapshot has %d upper levels, tree geometry allows %d", len(snap.Upper), want)
	}
	for li, level := range snap.Upper {
		if len(level) != counts[li+1] {
			return fmt.Errorf("core: snapshot upper level %d has %d nodes, want %d", li, len(level), counts[li+1])
		}
		for j, us := range level {
			if us != nil && us.Rows != m.Rows() {
				return fmt.Errorf("core: snapshot upper cache (%d,%d) has %d rows, matrix has %d", li, j, us.Rows, m.Rows())
			}
		}
	}
	if snap.Built && snap.RootU == nil {
		return fmt.Errorf("core: snapshot marked built without a root factorization")
	}
	if snap.RootU != nil {
		switch {
		case snap.RootU.Rows != m.Rows():
			return fmt.Errorf("core: snapshot root U has %d rows, matrix has %d", snap.RootU.Rows, m.Rows())
		case snap.RootU.Cols != len(snap.RootS):
			return fmt.Errorf("core: snapshot root has %d left vectors for %d singular values",
				snap.RootU.Cols, len(snap.RootS))
		case snap.RootV != nil && snap.RootV.Cols != len(snap.RootS):
			return fmt.Errorf("core: snapshot root has %d right vectors for %d singular values",
				snap.RootV.Cols, len(snap.RootS))
		}
		for i, s := range snap.RootS {
			if math.IsNaN(s) || s < 0 {
				return fmt.Errorf("core: snapshot root singular value %d is %g", i, s)
			}
		}
	}
	return nil
}
