package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 7, 5)
	got := Mul(a, Identity(5))
	if MaxAbsDiff(a, got) != 0 {
		t.Fatalf("A·I != A, max diff %g", MaxAbsDiff(a, got))
	}
	got = Mul(Identity(7), a)
	if MaxAbsDiff(a, got) != 0 {
		t.Fatalf("I·A != A")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 6, 4)
	b := randDense(rng, 4, 9)
	got := Mul(a, b)
	want := NewDense(6, 9)
	for i := 0; i < 6; i++ {
		for j := 0; j < 9; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Mul mismatch vs naive: %g", d)
	}
}

func TestMulTAndTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 5, 7)
	b := randDense(rng, 6, 7)
	if d := MaxAbsDiff(MulT(a, b), Mul(a, b.T())); d > 1e-12 {
		t.Fatalf("MulT != A·Bᵀ: %g", d)
	}
	c := randDense(rng, 5, 4)
	if d := MaxAbsDiff(TMul(a, c), Mul(a.T(), c)); d > 1e-12 {
		t.Fatalf("TMul != Aᵀ·C: %g", d)
	}
}

func TestGram(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 8, 5)
	if d := MaxAbsDiff(Gram(a), Mul(a.T(), a)); d > 1e-12 {
		t.Fatalf("Gram != AᵀA: %g", d)
	}
	if d := MaxAbsDiff(GramT(a), MulT(a, a)); d > 1e-12 {
		t.Fatalf("GramT != AAᵀ: %g", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		a := randDense(rng, r, c)
		return MaxAbsDiff(a, a.T().T()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHCatSliceColsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c1 := 1 + rng.Intn(6)
		c2 := 1 + rng.Intn(6)
		a := randDense(rng, r, c1)
		b := randDense(rng, r, c2)
		cat := HCat(a, b)
		return MaxAbsDiff(cat.SliceCols(0, c1), a) == 0 &&
			MaxAbsDiff(cat.SliceCols(c1, c1+c2), b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2([3,4]) = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g, want 0", got)
	}
	// Overflow safety: components near math.MaxFloat64's sqrt.
	big := 1e200
	if got := Norm2([]float64{big, big}); math.IsInf(got, 1) {
		t.Fatalf("Norm2 overflowed on large components")
	}
}

func TestFrobNormMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 6, 6)
	var ss float64
	for _, v := range a.Data {
		ss += v * v
	}
	if d := math.Abs(a.FrobNorm() - math.Sqrt(ss)); d > 1e-12 {
		t.Fatalf("FrobNorm mismatch: %g", d)
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 4, 4)
	b := randDense(rng, 4, 4)
	if d := MaxAbsDiff(Sub(Add(a, b), b), a); d > 1e-12 {
		t.Fatalf("(a+b)−b != a: %g", d)
	}
	c := a.Clone().Scale(2)
	if d := MaxAbsDiff(c, Add(a, a)); d > 1e-12 {
		t.Fatalf("2a != a+a: %g", d)
	}
}

func TestMulDiag(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 3, 4)
	d := []float64{1, 2, 0.5, -1}
	got := a.Clone().MulDiag(d)
	diag := NewDense(4, 4)
	for i, v := range d {
		diag.Set(i, i, v)
	}
	if x := MaxAbsDiff(got, Mul(a, diag)); x > 1e-12 {
		t.Fatalf("MulDiag != A·diag(d): %g", x)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(4, 2))
}
