package treesvd

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

// appendFooter seals buf's gob payload with the v2 integrity footer.
func appendFooter(buf *bytes.Buffer) {
	var footer [footerLen]byte
	copy(footer[:4], persistMagic)
	binary.LittleEndian.PutUint32(footer[4:], crc32.Checksum(buf.Bytes(), persistCRC))
	buf.Write(footer[:])
}

// corruptSave builds a healthy embedder, decodes its save into the wire
// struct, lets mutate corrupt it, and re-encodes. The result is a
// structurally valid gob stream carrying inconsistent state — exactly
// what a hand-edited or partially overwritten save file looks like.
func corruptSave(t *testing.T, mutate func(*savedEmbedder)) *bytes.Reader {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := buildGraph(rng, 30, 120)
	emb, err := New(g, []int32{1, 3, 5, 7}, Config{Dim: 4, MaxNodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	mustTB(emb.ApplyEvents(bgt, []Event{{U: 0, V: 9, Type: Insert}, {U: 2, V: 11, Type: Insert}}))
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var saved savedEmbedder
	if err := gob.NewDecoder(&buf).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	mutate(&saved)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&saved); err != nil {
		t.Fatal(err)
	}
	// Re-seal with a valid footer: these cases model semantic corruption
	// that a checksum cannot catch, so the integrity layer must pass and
	// the structural validation must do the rejecting.
	appendFooter(&out)
	return bytes.NewReader(out.Bytes())
}

// TestLoadRejectsCorruptedSaves is the ISSUE 3 regression for Load
// trusting its input: each corruption used to slip through Load and
// panic on first use (or corrupt results silently). All must now be
// rejected at Load with a descriptive error.
func TestLoadRejectsCorruptedSaves(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*savedEmbedder)
		wantSub string // substring expected in the error
	}{
		{"subset id out of range", func(s *savedEmbedder) { s.Subset[0] = 999 }, "subset node 999"},
		{"negative subset id", func(s *savedEmbedder) { s.Subset[1] = -2 }, "subset node -2"},
		{"duplicate subset ids", func(s *savedEmbedder) { s.Subset[1] = s.Subset[0] }, "duplicate subset node"},
		{"missing graph", func(s *savedEmbedder) { s.Graph = nil }, "missing graph"},
		{"missing proximity matrix", func(s *savedEmbedder) { s.M = nil }, "missing proximity"},
		{"missing tree snapshot", func(s *savedEmbedder) { s.Tree = nil }, "missing tree"},
		{"empty subset", func(s *savedEmbedder) { s.Subset = nil }, "empty subset"},
		{"forward state count mismatch", func(s *savedEmbedder) { s.Fwd = s.Fwd[:2] }, "states for a subset"},
		{"state source mismatch", func(s *savedEmbedder) { s.Fwd[0], s.Fwd[1] = s.Fwd[1], s.Fwd[0] }, "source"},
		{"state direction mismatch", func(s *savedEmbedder) { s.Rev[0] = s.Fwd[0] }, "direction"},
		{"estimate key out of range", func(s *savedEmbedder) { s.Fwd[0].P[500] = 0.1 }, "estimate key 500"},
		{"residue key out of range", func(s *savedEmbedder) { s.Rev[1].R[-3] = 0.1 }, "residue key -3"},
		{"tree block count mismatch", func(s *savedEmbedder) {
			s.Tree.Level1US = s.Tree.Level1US[:1]
			s.Tree.Level1Tail = s.Tree.Level1Tail[:1]
		}, "level-1 blocks"},
		{"tail/cache length mismatch", func(s *savedEmbedder) { s.Tree.Level1Tail = s.Tree.Level1Tail[:1] }, "tail energies"},
		{"built without root", func(s *savedEmbedder) { s.Tree.RootU = nil }, "without a root"},
		{"root rank mismatch", func(s *savedEmbedder) { s.Tree.RootS = s.Tree.RootS[:1] }, "singular values"},
		{"version mismatch", func(s *savedEmbedder) { s.Version = 99 }, "version 99"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(corruptSave(t, tc.mutate))
			if err == nil {
				t.Fatal("Load accepted the corrupted save")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestLoadRejectsTruncatedStream: a save cut off mid-stream must fail at
// decode, never produce a half-restored embedder.
func TestLoadRejectsTruncatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := buildGraph(rng, 20, 80)
	emb, err := New(g, []int32{0, 1, 2}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, frac := range []int{4, 2} {
		if _, err := Load(bytes.NewReader(raw[:len(raw)/frac])); err == nil {
			t.Errorf("Load accepted a stream truncated to 1/%d", frac)
		}
	}
}
