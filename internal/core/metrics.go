package core

import (
	"context"

	"github.com/tree-svd/treesvd/internal/obs"
)

// Metrics are the tree layer's cumulative work counters and timing spans
// — the observable form of the Theorem 3.6/3.7 cost model, whose update
// cost is dominated by how many of the b = k^(q-1) level-1 blocks trip
// the Eqn. 2 trigger. Unlike Stats (the last pass only), these accumulate
// over the tree's lifetime. One instance per Tree, allocated by NewTree;
// all fields are updated with single atomic operations per block or pass.
type Metrics struct {
	// Builds counts full Build passes (initial build, Rebuild fallback);
	// Updates counts lazy Update passes (including ones that rebuilt
	// nothing).
	Builds, Updates obs.Counter
	// BlocksRebuilt and BlocksSkipped accumulate the per-pass recompute
	// and cache-hit counts: their ratio is the lazy update's skip rate,
	// the quantity Fig. 13 sweeps δ against. With Config.SVDUpdate on,
	// BlocksRebuilt counts only full recomputes; violating blocks served
	// by the incremental path land in BlocksUpdated instead, so
	// BlocksRebuilt + BlocksUpdated is the per-pass |Z|.
	BlocksRebuilt, BlocksSkipped obs.Counter
	// BlocksUpdated counts violating level-1 blocks absorbed by the
	// Brand-style incremental path; UpdateFallbacks counts blocks that
	// were eligible for it (small delta, cached factors present) but fell
	// back to a recompute — the updater errored or the accumulated
	// truncation error would exceed its Config.UpdateTailFrac budget. The
	// update hit rate is BlocksUpdated/(BlocksUpdated+BlocksRebuilt).
	BlocksUpdated, UpdateFallbacks obs.Counter
	// UpperMerges accumulates SVD merges at levels ≥ 2 (affected
	// ancestors plus the root, per pass).
	UpperMerges obs.Counter
	// BlockFactorNanos records one observation per level-1 block
	// factorization (the rsvd.Sparse call); BlockUpdateNanos one per
	// successful incremental block update (svdupd.Update) — comparing the
	// two distributions is the observable form of the update path's win;
	// MergeNanos one per upper merge pass; PassNanos one per whole
	// Build/Update.
	BlockFactorNanos, BlockUpdateNanos, MergeNanos, PassNanos obs.Histogram
}

// observeCommit folds one committed pass's Stats into the cumulative
// counters.
func (m *Metrics) observeCommit(s Stats) {
	m.BlocksRebuilt.Add(uint64(s.Level1Rebuilt))
	m.BlocksUpdated.Add(uint64(s.Level1Updated))
	m.BlocksSkipped.Add(uint64(s.Skipped))
	m.UpperMerges.Add(uint64(s.UpperRebuilt))
}

// stage runs f under an obs pprof stage label, returning its error.
func stage(ctx context.Context, name string, f func(context.Context) error) error {
	var err error
	obs.Stage(ctx, name, func(ctx context.Context) { err = f(ctx) })
	return err
}
