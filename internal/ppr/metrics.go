package ppr

import "github.com/tree-svd/treesvd/internal/obs"

// Metrics are the PPR layer's cumulative work counters — the observable
// form of Theorem 3.7's min(τ + 1/r_max, |S|/r_max) cost accounting. One
// instance is shared by every worker engine of a Subset, so the counts
// aggregate across the worker pool; updates are single atomic adds per
// Push/batch, never per pushed node or per event.
type Metrics struct {
	// Pushes counts PUSH operations (Algorithm 1 line 2: settle α·r,
	// spread the rest). The dominant O(1/r_max) cost term of every
	// update; watch it per batch to see how hard the estimates churn.
	Pushes obs.Counter
	// Adjusts counts Algorithm 2 estimate/residue corrections — the τ
	// term: one per (applied event, subset source, direction).
	Adjusts obs.Counter
	// SourceRebuilds counts per-source from-scratch state rebuilds (the
	// Theorem 3.7 fallback taken for oversized batches or recovery).
	SourceRebuilds obs.Counter
}
