package wal

import "fmt"

// CorruptError reports on-disk state that failed an integrity check: a
// checksum mismatch, a broken sequence chain, a bad magic or an
// impossible length. It is distinct from plain I/O errors so callers can
// route "the disk lied" differently from "the disk failed". The public
// facade converts it into treesvd's *CorruptStateError.
type CorruptError struct {
	Path   string // offending file
	Offset int64  // byte offset of the fault when known, -1 otherwise
	Reason string
	Err    error // underlying error, may be nil
}

func (e *CorruptError) Error() string {
	loc := e.Path
	if e.Offset >= 0 {
		loc = fmt.Sprintf("%s@%d", e.Path, e.Offset)
	}
	if e.Err != nil {
		return fmt.Sprintf("wal: corrupt %s: %s: %v", loc, e.Reason, e.Err)
	}
	return fmt.Sprintf("wal: corrupt %s: %s", loc, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }
