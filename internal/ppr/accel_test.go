package ppr

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// TestAccelOffIsDeterministic: with Accel off, Push is deterministic
// run-to-run (the knob's zero value leaves the classic code path exactly
// in place; the differential harness separately pins that path's
// results against fresh builds).
func TestAccelOffIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 60, 240)
	run := func(accel bool) *State {
		e, err := NewEngine(g, Params{Alpha: 0.15, RMax: 1e-3, Accel: accel})
		if err != nil {
			t.Fatal(err)
		}
		st := NewState(0, graph.Forward)
		e.Push(st)
		return st
	}
	// Accel=false twice: Push must be deterministic.
	a, b := run(false), run(false)
	if !reflect.DeepEqual(a.P, b.P) || !reflect.DeepEqual(a.R, b.R) {
		t.Fatal("classic push not deterministic")
	}
}

// TestAccelSatisfiesResidueBound: the over-relaxed variant must land
// within the same |π − p| ≤ Σ|r| contract as the classic step, on graphs
// with dangling nodes and self-loops included.
func TestAccelSatisfiesResidueBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(rng, 50, 200)
		// Punch in a dangling node and a self-loop.
		g.InsertEdge(3, 3)
		e, err := NewEngine(g, Params{Alpha: 0.15, RMax: 1e-4, Accel: true})
		if err != nil {
			t.Fatal(err)
		}
		src := int32(rng.Intn(50))
		st := NewState(src, graph.Forward)
		e.Push(st)
		pi := exactPPR(g, src, 0.15, graph.Forward)
		bound := st.ResidueL1() + 1e-9
		for u, p := range st.P {
			if d := math.Abs(pi[u] - p); d > bound {
				t.Fatalf("trial %d: |π(%d) − p(%d)| = %g exceeds Σ|r| = %g", trial, u, u, d, bound)
			}
		}
		// Mass conservation: Σp + Σr == 1 exactly up to float error.
		var mass float64
		for _, v := range st.P {
			mass += v
		}
		for _, v := range st.R {
			mass += v
		}
		if math.Abs(mass-1) > 1e-8 {
			t.Fatalf("trial %d: estimate+residue mass %g, want 1", trial, mass)
		}
	}
}

// TestAccelTracksClassicEstimates: both variants converge to the same
// limit; at the same r_max their estimates agree within the sum of their
// residue bounds.
func TestAccelTracksClassicEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randGraph(rng, 80, 320)
	run := func(accel bool) *State {
		e, err := NewEngine(g, Params{Alpha: 0.15, RMax: 1e-4, Accel: accel})
		if err != nil {
			t.Fatal(err)
		}
		st := NewState(5, graph.Forward)
		e.Push(st)
		return st
	}
	cl, ac := run(false), run(true)
	tol := cl.ResidueL1() + ac.ResidueL1() + 1e-12
	keys := map[int32]struct{}{}
	for u := range cl.P {
		keys[u] = struct{}{}
	}
	for u := range ac.P {
		keys[u] = struct{}{}
	}
	for u := range keys {
		if d := math.Abs(cl.P[u] - ac.P[u]); d > tol {
			t.Fatalf("estimates diverge at %d: classic %g vs accel %g (tol %g)", u, cl.P[u], ac.P[u], d)
		}
	}
}

// TestAccelDynamicStream: the accelerated engine driven through a churn
// stream of inserts and deletes keeps the exact invariant the auditors
// check — the final estimates match a from-scratch accelerated push on
// the final graph within both residue sums.
func TestAccelDynamicStream(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randGraph(rng, 40, 160)
	e, err := NewEngine(g, Params{Alpha: 0.2, RMax: 1e-4, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(2, graph.Forward)
	e.Push(st)
	var edges [][2]int32
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u, graph.Forward) {
			edges = append(edges, [2]int32{u, v})
		}
	}
	for step := 0; step < 200; step++ {
		if rng.Float64() < 0.45 && len(edges) > 40 {
			i := rng.Intn(len(edges))
			ev := graph.Event{Type: graph.Delete, U: edges[i][0], V: edges[i][1]}
			if g.DeleteEdge(ev.U, ev.V) {
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				e.AdjustEvent(st, ev)
			}
		} else {
			u, v := int32(rng.Intn(40)), int32(rng.Intn(40))
			if g.InsertEdge(u, v) {
				edges = append(edges, [2]int32{u, v})
				e.AdjustEvent(st, graph.Event{Type: graph.Insert, U: u, V: v})
			}
		}
		e.Push(st)
	}
	fresh := NewState(2, graph.Forward)
	e.Push(fresh)
	tol := st.ResidueL1() + fresh.ResidueL1() + 1e-9
	for u, p := range fresh.P {
		if d := math.Abs(st.P[u] - p); d > tol {
			t.Fatalf("dynamic accel diverged from scratch at %d: %g vs %g", u, st.P[u], p)
		}
	}
}

// TestAccelSafeguardTerminates: a tiny graph with a very tight r_max
// forces a long accelerated phase — small enough that the per-call push
// budget (1024 + 32·n) trips and ω reverts to 1. The test demands what
// the safeguard guarantees: termination with every residue below the
// threshold.
func TestAccelSafeguardTerminates(t *testing.T) {
	// A ring with chords: tight r_max forces long pushes.
	g := graph.New(16)
	for i := int32(0); i < 16; i++ {
		g.InsertEdge(i, (i+1)%16)
		g.InsertEdge(i, (i+5)%16)
	}
	e, err := NewEngine(g, Params{Alpha: 0.05, RMax: 1e-9, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(0, graph.Forward)
	e.Push(st) // must return; the budget reverts ω to 1 if needed
	rmax := e.Params.RMax
	for u, r := range st.R {
		if abs(r) > rmax*e.degOrOne(u, st.Dir) {
			t.Fatalf("terminated with violating residue at %d: %g", u, r)
		}
	}
}

// TestOmegaFormula pins the SOR factor to its closed form: the classic
// optimum capped by the mass-safe stability bound 2/(2−α), and never
// above it for any α — above the cap Σ|r| can grow per push and the
// sweep diverges on adversarial graphs.
func TestOmegaFormula(t *testing.T) {
	p := Params{Alpha: 0.15, RMax: 1e-3}
	if p.omega() != 1 {
		t.Fatal("omega must be 1 with Accel off")
	}
	p.Accel = true
	want := math.Min(2/(1+math.Sqrt(0.15*(2-0.15))), 2/(2-0.15))
	if math.Abs(p.omega()-want) > 1e-15 {
		t.Fatalf("omega = %g, want %g", p.omega(), want)
	}
	if p.omega() <= 1 || p.omega() >= 2 {
		t.Fatalf("omega %g outside (1,2)", p.omega())
	}
	for _, alpha := range []float64{0.01, 0.15, 0.3, 0.5, 0.85, 0.99} {
		q := Params{Alpha: alpha, RMax: 1e-3, Accel: true}
		if w := q.omega(); w*(2-alpha)-1 > 1+1e-12 {
			t.Fatalf("alpha %g: omega %g exceeds the mass-safe bound 2/(2-α)", alpha, w)
		} else if w <= 1 {
			t.Fatalf("alpha %g: omega %g is not an acceleration", alpha, w)
		}
	}
}
