package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// fillLowRank populates a DynRow with a low-rank + noise matrix.
func fillLowRank(rng *rand.Rand, m *sparse.DynRow, rank int, noise, density float64) {
	u := linalg.NewDense(m.Rows(), rank)
	v := linalg.NewDense(m.Cols(), rank)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if rng.Float64() < density {
				m.Set(i, j, linalg.Dot(u.Row(i), v.Row(j))+noise*rng.NormFloat64())
			}
		}
	}
}

func testConfig(rank int) Config {
	return Config{Rank: rank, Branch: 2, Levels: 3, Delta: 0.65, Oversample: 6, PowerIters: 2, Seed: 1}
}

func TestConfigBlocks(t *testing.T) {
	c := Config{Rank: 8, Branch: 8, Levels: 3}
	if c.Blocks() != 64 {
		t.Fatalf("Blocks = %d, want 64 (paper setting)", c.Blocks())
	}
	c = Config{Rank: 8, Branch: 2, Levels: 4}
	if c.Blocks() != 8 {
		t.Fatalf("Blocks = %d, want 8", c.Blocks())
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Rank: 0, Branch: 2, Levels: 2},
		{Rank: 4, Branch: 1, Levels: 2},
		{Rank: 4, Branch: 2, Levels: 1},
		{Rank: 4, Branch: 2, Levels: 2, Delta: -1},
	} {
		if bad.Validate() == nil {
			t.Fatalf("accepted bad config %+v", bad)
		}
	}
	if DefaultConfig(64).Validate() != nil {
		t.Fatal("default config invalid")
	}
}

func TestBuildEmbeddingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(4)
	m := sparse.NewDynRow(10, 40, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.6)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	x := tr.Embedding()
	if x.Rows != 10 || x.Cols != 4 {
		t.Fatalf("embedding shape %d×%d, want 10×4", x.Rows, x.Cols)
	}
	if tr.Stats().Level1Rebuilt != m.NumBlocks() {
		t.Fatalf("Build rebuilt %d blocks, want %d", tr.Stats().Level1Rebuilt, m.NumBlocks())
	}
}

func TestStaticTheorem32Bound(t *testing.T) {
	// Theorem 3.2: the recovered rank-d factorization satisfies
	// ‖Ψ‖_F ≤ ((2+ε)(1+√2)^{q-1} − 1)·‖M − (M)_d‖_F. We check the
	// observable projection error of the root left subspace.
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig(4)
	m := sparse.NewDynRow(12, 48, cfg.Blocks())
	fillLowRank(rng, m, 8, 0.3, 1.0)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	got := tr.ReconstructionError()
	dense := m.ToDense()
	best := linalg.SVD(dense).TailEnergy(dense.FrobNorm(), cfg.Rank)
	eps := 0.5 // generous ε for the randomized level 1
	bound := ((2 + eps) * math.Pow(1+math.Sqrt2, float64(cfg.Levels-1))) * best
	if got > bound {
		t.Fatalf("reconstruction error %g exceeds Theorem 3.2 bound %g", got, bound)
	}
	// Empirically Tree-SVD should be near-optimal, not just within bound.
	if got > 1.35*best {
		t.Fatalf("reconstruction error %g vs optimal %g: too loose in practice", got, best)
	}
}

func TestExactLowRankRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig(3)
	m := sparse.NewDynRow(9, 36, cfg.Blocks())
	fillLowRank(rng, m, 3, 0, 1.0)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	if err := tr.ReconstructionError(); err > 1e-6*m.FrobNorm() {
		t.Fatalf("exact rank-3 input: reconstruction error %g", err)
	}
	// Singular values must match the exact SVD.
	exact := linalg.SVDTrunc(m.ToDense(), 3)
	root := tr.Root()
	for i := range exact.S {
		if math.Abs(root.S[i]-exact.S[i]) > 1e-6*exact.S[0] {
			t.Fatalf("σ%d = %g, want %g", i, root.S[i], exact.S[i])
		}
	}
}

func TestStaticFactorizeMatchesTreeBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig(4)
	m := sparse.NewDynRow(11, 44, cfg.Blocks())
	fillLowRank(rng, m, 5, 0.1, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	// The standalone Factorize splits columns the same way (same widths)
	// and uses the same per-block seeds on the first pass.
	res := mustCore(Factorize(m.ToCSR(), cfg))
	rootSeq := tr.Root()
	for i := range res.S {
		// Level-1 seeds differ by the tree's seq counter, so compare only
		// singular values (subspace quality), loosely.
		if math.Abs(res.S[i]-rootSeq.S[i]) > 0.05*res.S[0] {
			t.Fatalf("σ%d static %g vs tree %g", i, res.S[i], rootSeq.S[i])
		}
	}
}

func TestUpdateNoChangeIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 32, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.6)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	before := tr.Embedding()
	if n := mustCore(tr.Update(bgt)); n != 0 {
		t.Fatalf("update with no changes rebuilt %d blocks", n)
	}
	if tr.Stats().UpperRebuilt != 0 {
		t.Fatal("update with no changes touched upper levels")
	}
	if d := linalg.MaxAbsDiff(before, tr.Embedding()); d != 0 {
		t.Fatal("embedding changed with no data change")
	}
}

func TestUpdateSmallChangeLazySkips(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.02, 0.8)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	// Tiny perturbation of one entry in block 0: must stay under the
	// Eqn. 2 threshold and be skipped.
	m.Set(0, 0, m.Get(0, 0)+1e-6)
	if n := mustCore(tr.Update(bgt)); n != 0 {
		t.Fatalf("negligible change rebuilt %d blocks", n)
	}
}

func TestUpdateLargeChangeRebuildsOnlyAffected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.02, 0.8)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	// Overwrite block 0 entirely: a massive change confined to one block.
	lo, hi := m.BlockRange(0)
	for i := 0; i < 8; i++ {
		for c := lo; c < hi; c++ {
			m.Set(i, c, rng.NormFloat64()*3)
		}
	}
	n := mustCore(tr.Update(bgt))
	if n != 1 {
		t.Fatalf("rebuilt %d blocks, want exactly 1", n)
	}
	st := tr.Stats()
	if st.Skipped != m.NumBlocks()-1 {
		t.Fatalf("skipped %d blocks, want %d", st.Skipped, m.NumBlocks()-1)
	}
	// Affected path: one ancestor per upper level (q−1 = 2 merges).
	if st.UpperRebuilt != cfg.Levels-1 {
		t.Fatalf("upper rebuilds = %d, want %d (affected path only)", st.UpperRebuilt, cfg.Levels-1)
	}
}

func TestUpdateEmbeddingTracksData(t *testing.T) {
	// After updates the embedding must approximate the *new* matrix about
	// as well as a from-scratch build.
	rng := rand.New(rand.NewSource(8))
	cfg := testConfig(4)
	cfg.Delta = 0.3 // eager-ish updates for a tight comparison
	m := sparse.NewDynRow(10, 80, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	// Substantial churn across all blocks.
	for step := 0; step < 400; step++ {
		m.Set(rng.Intn(10), rng.Intn(80), rng.NormFloat64())
	}
	mustCore(tr.Update(bgt))
	got := tr.ReconstructionError()
	dense := m.ToDense()
	best := linalg.SVD(dense).TailEnergy(dense.FrobNorm(), cfg.Rank)
	if got > 2.5*best {
		t.Fatalf("post-update reconstruction %g vs optimal %g", got, best)
	}
}

func TestLazyBoundTheorem36(t *testing.T) {
	// Theorem 3.6: with cached (stale) blocks the recovered factorization
	// satisfies ‖Ψ‖_F ≤ ((1+δ√2)(1+√2)^{q-1} − 1)·‖M‖_F. The observable
	// projection error is bounded by ‖Ψ‖_F + ‖M−(M)_d‖… we check the
	// conservative form against ‖M‖_F.
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig(4)
	m := sparse.NewDynRow(10, 80, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	for step := 0; step < 150; step++ {
		m.Set(rng.Intn(10), rng.Intn(80), rng.NormFloat64())
	}
	mustCore(tr.Update(bgt))
	got := tr.ReconstructionError()
	bound := ((1 + cfg.Delta*math.Sqrt2) * math.Pow(1+math.Sqrt2, float64(cfg.Levels-1))) * m.FrobNorm()
	if got > bound {
		t.Fatalf("lazy reconstruction %g exceeds Theorem 3.6 bound %g", got, bound)
	}
}

func TestDeltaZeroForcesEagerUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := testConfig(4)
	cfg.Delta = 0
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	// Touch one entry per block: δ=0 must rebuild every touched block.
	for j := 0; j < m.NumBlocks(); j++ {
		lo, _ := m.BlockRange(j)
		m.Set(0, lo, m.Get(0, lo)+0.5)
	}
	if n := mustCore(tr.Update(bgt)); n != m.NumBlocks() {
		t.Fatalf("δ=0 rebuilt %d blocks, want all %d", n, m.NumBlocks())
	}
}

func TestRightEmbeddingShapeAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testConfig(3)
	m := sparse.NewDynRow(8, 40, cfg.Blocks())
	fillLowRank(rng, m, 3, 0, 1.0)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	y := tr.RightEmbedding()
	if y.Rows != 40 || y.Cols != 3 {
		t.Fatalf("right embedding shape %d×%d, want 40×3", y.Rows, y.Cols)
	}
	// For an exact factorization, X·Yᵀ should reconstruct M:
	// X·Yᵀ = U√Σ·(√Σ⁻¹... ) — U√Σ · (MᵀUΣ^{-1/2})ᵀ = U·Uᵀ·M = M.
	x := tr.Embedding()
	rec := linalg.MulT(x, y)
	if d := linalg.MaxAbsDiff(rec, m.ToDense()); d > 1e-6 {
		t.Fatalf("X·Yᵀ reconstruction diff %g", d)
	}
}

func TestUpdateBeforeBuildFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := testConfig(3)
	m := sparse.NewDynRow(6, 24, cfg.Blocks())
	fillLowRank(rng, m, 3, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	if n := mustCore(tr.Update(bgt)); n != m.NumBlocks() {
		t.Fatalf("first Update rebuilt %d, want full build %d", n, m.NumBlocks())
	}
}

func TestRootBeforeBuildPanics(t *testing.T) {
	m := sparse.NewDynRow(3, 12, 4)
	tr := mustCore(NewTree(m, testConfig(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Root()
}

func TestEmptyMatrixBuild(t *testing.T) {
	cfg := testConfig(3)
	m := sparse.NewDynRow(5, 20, cfg.Blocks())
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	if tr.Root().Rank() != 0 {
		t.Fatalf("empty matrix produced rank %d", tr.Root().Rank())
	}
	if err := tr.ReconstructionError(); err != 0 {
		t.Fatalf("empty matrix reconstruction error %g", err)
	}
}

func TestCountSketchVariantWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := testConfig(4)
	cfg.UseCountSketch = true
	m := sparse.NewDynRow(10, 80, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.6)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	got := tr.ReconstructionError()
	dense := m.ToDense()
	best := linalg.SVD(dense).TailEnergy(dense.FrobNorm(), cfg.Rank)
	if got > 2*best+1e-9 {
		t.Fatalf("count-sketch reconstruction %g vs optimal %g", got, best)
	}
}

func TestDeepTree(t *testing.T) {
	// q=4, k=2 → 8 blocks; exercise multi-level upper caching.
	rng := rand.New(rand.NewSource(14))
	cfg := Config{Rank: 3, Branch: 2, Levels: 4, Delta: 0.65, Oversample: 6, PowerIters: 2, Seed: 2}
	m := sparse.NewDynRow(9, 64, cfg.Blocks())
	fillLowRank(rng, m, 3, 0.02, 0.8)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	if err := tr.ReconstructionError(); err > 0.35*m.FrobNorm() {
		t.Fatalf("deep tree reconstruction error %g vs ‖M‖=%g", err, m.FrobNorm())
	}
	// Dirty one block; affected path = 3 upper merges (levels 2,3,root).
	lo, hi := m.BlockRange(5)
	for i := 0; i < 9; i++ {
		for c := lo; c < hi; c++ {
			m.Set(i, c, rng.NormFloat64()*2)
		}
	}
	mustCore(tr.Update(bgt))
	if tr.Stats().UpperRebuilt != 3 {
		t.Fatalf("deep tree upper rebuilds = %d, want 3", tr.Stats().UpperRebuilt)
	}
}

func TestUpdateIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	for i := 0; i < 120; i++ {
		m.Set(rng.Intn(8), rng.Intn(64), rng.NormFloat64())
	}
	mustCore(tr.Update(bgt))
	before := tr.Embedding()
	if n := mustCore(tr.Update(bgt)); n != 0 {
		t.Fatalf("second Update rebuilt %d blocks without data changes", n)
	}
	if d := linalg.MaxAbsDiff(before, tr.Embedding()); d != 0 {
		t.Fatal("idempotent Update changed the embedding")
	}
}

func TestDeltaMonotonicity(t *testing.T) {
	// Larger δ must never rebuild more blocks than smaller δ on the same
	// churn (the Eqn. 2 threshold grows with δ).
	rng := rand.New(rand.NewSource(16))
	base := testConfig(4)
	var prev = 1 << 30
	for _, delta := range []float64{0.05, 0.3, 0.65, 1.2} {
		rng2 := rand.New(rand.NewSource(16))
		cfg := base
		cfg.Delta = delta
		m := sparse.NewDynRow(8, 64, cfg.Blocks())
		fillLowRank(rng2, m, 4, 0.05, 0.7)
		tr := mustCore(NewTree(m, cfg))
		must0t(tr.Build(bgt))
		for i := 0; i < 100; i++ {
			m.Set(rng2.Intn(8), rng2.Intn(64), rng2.NormFloat64())
		}
		n := mustCore(tr.Update(bgt))
		if n > prev {
			t.Fatalf("δ=%g rebuilt %d blocks > %d at smaller δ", delta, n, prev)
		}
		prev = n
	}
	_ = rng
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	snap := tr.Snapshot()
	tr2, err := RestoreTree(m, cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(tr.Embedding(), tr2.Embedding()); d != 0 {
		t.Fatal("restored tree embedding differs")
	}
	// Identical future behavior.
	for i := 0; i < 150; i++ {
		m.Set(rng.Intn(8), rng.Intn(64), rng.NormFloat64())
	}
	n1 := mustCore(tr.Update(bgt))
	// tr already consumed the dirty state (MarkRebuilt); only check the
	// update preserved a valid factorization.
	if n1 > 0 && tr.Root().Rank() == 0 {
		t.Fatal("update lost factorization")
	}
}

func TestRestoreTreeRejectsMismatchedBlocks(t *testing.T) {
	cfg := testConfig(3)
	m := sparse.NewDynRow(4, 32, cfg.Blocks())
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	snap := tr.Snapshot()
	other := sparse.NewDynRow(4, 32, cfg.Blocks()*2)
	if _, err := RestoreTree(other, cfg, snap); err == nil {
		t.Fatal("mismatched block count accepted")
	}
}

func TestStaticEmbeddingHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	cfg := testConfig(3)
	m := sparse.NewDynRow(8, 48, cfg.Blocks())
	fillLowRank(rng, m, 3, 0, 1.0)
	csr := m.ToCSR()
	x := mustCore(Embedding(csr, cfg))
	if x.Rows != 8 || x.Cols != 3 {
		t.Fatalf("static embedding shape %d×%d", x.Rows, x.Cols)
	}
	root := mustCore(Factorize(csr, cfg))
	y := RightEmbeddingOf(root, csr)
	if y.Rows != 48 || y.Cols != root.Rank() {
		t.Fatalf("right embedding shape %d×%d", y.Rows, y.Cols)
	}
	// Exact low-rank input: X·Yᵀ reconstructs the matrix.
	rec := linalg.MulT(root.USqrtS(), y)
	if d := linalg.MaxAbsDiff(rec, m.ToDense()); d > 1e-6 {
		t.Fatalf("static X·Yᵀ reconstruction diff %g", d)
	}
}

func TestForceRebuildBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := testConfig(4)
	m := sparse.NewDynRow(8, 64, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.7)
	tr := mustCore(NewTree(m, cfg))
	// Before Build: falls back to a full build.
	if n := mustCore(tr.ForceRebuildBlock(bgt, 2)); n != m.NumBlocks() {
		t.Fatalf("pre-build ForceRebuildBlock rebuilt %d, want %d", n, m.NumBlocks())
	}
	// After Build: rebuilds exactly the one block and its ancestor path.
	if n := mustCore(tr.ForceRebuildBlock(bgt, 2)); n != 1 {
		t.Fatalf("ForceRebuildBlock rebuilt %d, want 1", n)
	}
	if tr.Stats().UpperRebuilt != cfg.Levels-1 {
		t.Fatalf("upper rebuilds %d, want %d", tr.Stats().UpperRebuilt, cfg.Levels-1)
	}
}

func TestAccessors(t *testing.T) {
	cfg := testConfig(2)
	m := sparse.NewDynRow(3, 16, cfg.Blocks())
	m.Set(0, 0, 1)
	tr := mustCore(NewTree(m, cfg))
	if tr.Config().Rank != 2 {
		t.Fatal("Config accessor wrong")
	}
	if tr.Matrix() != m {
		t.Fatal("Matrix accessor wrong")
	}
	if s := tr.String(); s == "" {
		t.Fatal("String empty")
	}
}

func TestNewTreeRejectsBadConfig(t *testing.T) {
	m := sparse.NewDynRow(2, 8, 4)
	if _, err := NewTree(m, Config{Rank: 0, Branch: 2, Levels: 2}); err == nil {
		t.Fatal("expected error for invalid config")
	}
}
