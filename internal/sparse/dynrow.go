package sparse

import (
	"fmt"
	"math"
	"sort"

	"github.com/tree-svd/treesvd/internal/linalg"
)

// DynRow is a mutable row-sparse matrix whose columns are partitioned into
// contiguous blocks (the level-1 blocks of Tree-SVD). It maintains, per
// block j, two quantities needed by the lazy-update trigger (Eqn. 2 of the
// paper) in O(1) per entry update:
//
//   - ‖B_{1,j}^t‖²_F — the live squared Frobenius norm of the block, and
//   - ‖D_j‖²_F — the squared Frobenius norm of the delta between the live
//     block and its value at the block's last SVD rebuild (the baseline).
//
// Baselines are stored lazily: only entries touched since the last rebuild
// keep their baseline value, so memory overhead is proportional to churn,
// not to nnz. MarkRebuilt resets a block's baseline and recomputes its
// Frobenius norm exactly, purging incremental floating-point drift.
type DynRow struct {
	rows, cols int
	width      int // columns per block (last block may be narrower)
	nblocks    int

	// data[r][j] maps global column index → value within block j of row r.
	data [][]map[int32]float64

	frobSq  []float64 // per block: Σ v², maintained incrementally
	deltaSq []float64 // per block: Σ (v − baseline)², maintained incrementally

	// base[j] maps packed (row,col) → value at last rebuild, only for
	// entries modified since that rebuild.
	base []map[int64]float64

	nnz      []int // per block live nnz
	totalNNZ int
}

// NewDynRow creates a rows×cols matrix partitioned into nblocks column
// blocks of near-equal width. The realized block count (NumBlocks) can be
// smaller than requested when cols < nblocks.
func NewDynRow(rows, cols, nblocks int) *DynRow {
	if rows < 0 || cols <= 0 || nblocks <= 0 {
		panic(fmt.Sprintf("sparse: NewDynRow invalid shape %d×%d / %d blocks", rows, cols, nblocks))
	}
	width := (cols + nblocks - 1) / nblocks
	nb := (cols + width - 1) / width
	m := &DynRow{
		rows: rows, cols: cols, width: width, nblocks: nb,
		data:    make([][]map[int32]float64, rows),
		frobSq:  make([]float64, nb),
		deltaSq: make([]float64, nb),
		base:    make([]map[int64]float64, nb),
		nnz:     make([]int, nb),
	}
	for r := range m.data {
		m.data[r] = make([]map[int32]float64, nb)
	}
	for j := range m.base {
		m.base[j] = make(map[int64]float64)
	}
	return m
}

// Rows returns the number of rows.
func (m *DynRow) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *DynRow) Cols() int { return m.cols }

// NumBlocks returns the realized number of column blocks.
func (m *DynRow) NumBlocks() int { return m.nblocks }

// BlockOf returns the block index containing column c.
func (m *DynRow) BlockOf(c int) int { return c / m.width }

// BlockRange returns the half-open column range [lo,hi) of block j.
func (m *DynRow) BlockRange(j int) (lo, hi int) {
	lo = j * m.width
	hi = lo + m.width
	if hi > m.cols {
		hi = m.cols
	}
	return lo, hi
}

// NNZ returns the total number of stored entries.
func (m *DynRow) NNZ() int { return m.totalNNZ }

// BlockNNZ returns the number of stored entries in block j.
func (m *DynRow) BlockNNZ(j int) int { return m.nnz[j] }

// Get returns the (r,c) element.
func (m *DynRow) Get(r, c int) float64 {
	blk := m.data[r][c/m.width]
	if blk == nil {
		return 0
	}
	return blk[int32(c)]
}

func packKey(r, c int) int64 { return int64(r)<<32 | int64(int32(c)) }

// Set assigns the (r,c) element, updating block norm and delta tracking.
func (m *DynRow) Set(r, c int, v float64) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: Set (%d,%d) out of %d×%d", r, c, m.rows, m.cols))
	}
	j := c / m.width
	blk := m.data[r][j]
	var old float64
	if blk != nil {
		old = blk[int32(c)]
	}
	if old == v {
		return
	}
	if blk == nil {
		blk = make(map[int32]float64)
		m.data[r][j] = blk
	}
	// Record the baseline the first time this entry moves after a rebuild.
	key := packKey(r, c)
	baseVal, seen := m.base[j][key]
	if !seen {
		baseVal = old
		m.base[j][key] = old
	}
	dOld := old - baseVal
	dNew := v - baseVal
	m.deltaSq[j] += dNew*dNew - dOld*dOld
	m.frobSq[j] += v*v - old*old
	if old == 0 {
		m.nnz[j]++
		m.totalNNZ++
	}
	if v == 0 {
		delete(blk, int32(c))
		m.nnz[j]--
		m.totalNNZ--
	} else {
		blk[int32(c)] = v
	}
}

// BlockFrobNorm returns ‖B_{1,j}^t‖_F, the live Frobenius norm of block j.
func (m *DynRow) BlockFrobNorm(j int) float64 {
	f := m.frobSq[j]
	if f < 0 {
		f = 0 // incremental rounding
	}
	return math.Sqrt(f)
}

// DeltaFrobNorm returns ‖D_j‖_F, the Frobenius norm of the change of block
// j since its last rebuild.
func (m *DynRow) DeltaFrobNorm(j int) float64 {
	d := m.deltaSq[j]
	if d < 0 {
		d = 0
	}
	return math.Sqrt(d)
}

// DirtyBlocks returns the indices of blocks with a non-empty delta since
// their last rebuild.
func (m *DynRow) DirtyBlocks() []int {
	var out []int
	for j := 0; j < m.nblocks; j++ {
		if len(m.base[j]) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// MarkRebuilt resets block j's baseline to its current contents and
// recomputes its Frobenius norm exactly (purging incremental drift).
// Call it after recomputing the block's SVD.
func (m *DynRow) MarkRebuilt(j int) {
	m.base[j] = make(map[int64]float64)
	m.deltaSq[j] = 0
	var f float64
	for r := 0; r < m.rows; r++ {
		for _, v := range m.data[r][j] {
			f += v * v
		}
	}
	m.frobSq[j] = f
}

// BlockCSR extracts block j as a CSR with columns rebased to start at 0.
func (m *DynRow) BlockCSR(j int) *CSR {
	lo, hi := m.BlockRange(j)
	out := &CSR{Rows: m.rows, Cols: hi - lo, RowPtr: make([]int32, m.rows+1)}
	out.ColIdx = make([]int32, 0, m.nnz[j])
	out.Val = make([]float64, 0, m.nnz[j])
	cols := make([]int32, 0, 64)
	for r := 0; r < m.rows; r++ {
		blk := m.data[r][j]
		if len(blk) > 0 {
			cols = cols[:0]
			for c := range blk {
				cols = append(cols, c)
			}
			sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
			for _, c := range cols {
				out.ColIdx = append(out.ColIdx, c-int32(lo))
				out.Val = append(out.Val, blk[c])
			}
		}
		out.RowPtr[r+1] = int32(len(out.Val))
	}
	return out
}

// RowColumns returns the columns with stored entries in row r, unsorted.
func (m *DynRow) RowColumns(r int) []int32 {
	var out []int32
	for j := 0; j < m.nblocks; j++ {
		for c := range m.data[r][j] {
			out = append(out, c)
		}
	}
	return out
}

// ToCSR materializes the whole matrix as a CSR.
func (m *DynRow) ToCSR() *CSR {
	out := &CSR{Rows: m.rows, Cols: m.cols, RowPtr: make([]int32, m.rows+1)}
	out.ColIdx = make([]int32, 0, m.totalNNZ)
	out.Val = make([]float64, 0, m.totalNNZ)
	cols := make([]int32, 0, 256)
	for r := 0; r < m.rows; r++ {
		cols = cols[:0]
		for j := 0; j < m.nblocks; j++ {
			for c := range m.data[r][j] {
				cols = append(cols, c)
			}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, c := range cols {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, m.data[r][int(c)/m.width][c])
		}
		out.RowPtr[r+1] = int32(len(out.Val))
	}
	return out
}

// TMulDense returns mᵀ·b for a dense b (rows×k) directly from the live
// row maps — no CSR materialization (ToCSR costs O(nnz·log) in sorts and
// a full copy, which dominated ReconstructionError before this existed).
// Each output row c accumulates its contributions in ascending input-row
// order, so the result is deterministic despite map iteration: entries of
// a given column c within one row map are unique, and rows are visited in
// order.
func (m *DynRow) TMulDense(b *linalg.Dense) *linalg.Dense {
	if b.Rows != m.rows {
		panic(fmt.Sprintf("sparse: TMulDense shape mismatch (%d×%d)ᵀ · %d×%d", m.rows, m.cols, b.Rows, b.Cols))
	}
	out := linalg.NewDense(m.cols, b.Cols)
	for r := 0; r < m.rows; r++ {
		brow := b.Row(r)
		for j := 0; j < m.nblocks; j++ {
			for c, v := range m.data[r][j] {
				axpyRow(out.Row(int(c)), v, brow)
			}
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of the whole matrix.
func (m *DynRow) FrobNorm() float64 {
	var f float64
	for _, v := range m.frobSq {
		if v > 0 {
			f += v
		}
	}
	return math.Sqrt(f)
}

// BaselineBlockCSR reconstructs block j as it stood at its last rebuild
// (the baseline the delta bookkeeping measures against): live entries,
// with every entry touched since the rebuild restored to its recorded
// baseline value (a zero baseline means the entry did not exist then).
// Used by the correctness harness to re-factor a block at its recorded
// seed and compare against the cached factorization.
func (m *DynRow) BaselineBlockCSR(j int) *CSR {
	lo, hi := m.BlockRange(j)
	rows := make([]map[int32]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		if blk := m.data[r][j]; len(blk) > 0 {
			mm := make(map[int32]float64, len(blk))
			for c, v := range blk {
				mm[c] = v
			}
			rows[r] = mm
		}
	}
	for key, bv := range m.base[j] {
		r, c := int(key>>32), int32(key)
		if rows[r] == nil {
			rows[r] = make(map[int32]float64)
		}
		if bv == 0 {
			delete(rows[r], c)
		} else {
			rows[r][c] = bv
		}
	}
	out := &CSR{Rows: m.rows, Cols: hi - lo, RowPtr: make([]int32, m.rows+1)}
	cols := make([]int32, 0, 64)
	for r := 0; r < m.rows; r++ {
		if len(rows[r]) > 0 {
			cols = cols[:0]
			for c := range rows[r] {
				cols = append(cols, c)
			}
			sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
			for _, c := range cols {
				out.ColIdx = append(out.ColIdx, c-int32(lo))
				out.Val = append(out.Val, rows[r][c])
			}
		}
		out.RowPtr[r+1] = int32(len(out.Val))
	}
	return out
}

// BlockDelta is the row-factored sparse delta D_j = B_live − B_baseline of
// one column block: every entry touched since the block's last rebuild
// whose live value still differs from its baseline, grouped by row.
// Columns are block-local (rebased to start at 0, matching BlockCSR).
// Rows and the columns within each row are sorted ascending, so extraction
// is deterministic despite map iteration order — the incremental SVD
// updater consuming it produces run-to-run identical factorizations.
type BlockDelta struct {
	Rows []int       // touched row indices, ascending
	Cols [][]int32   // per touched row: block-local column indices, ascending
	Vals [][]float64 // per touched row: live − baseline, aligned with Cols
}

// NNZ returns the number of changed entries in the delta.
func (d *BlockDelta) NNZ() int {
	n := 0
	for _, v := range d.Vals {
		n += len(v)
	}
	return n
}

// BlockDelta extracts block j's sparse delta since its last rebuild (see
// the BlockDelta type). Entries that moved and then returned exactly to
// their baseline value are dropped, so the result can be empty even while
// the block is marked dirty. O(touched·log touched).
func (m *DynRow) BlockDelta(j int) *BlockDelta {
	lo, _ := m.BlockRange(j)
	byRow := make(map[int][]int32, len(m.base[j]))
	for key := range m.base[j] {
		r := int(key >> 32)
		byRow[r] = append(byRow[r], int32(key))
	}
	d := &BlockDelta{}
	rows := make([]int, 0, len(byRow))
	for r := range byRow {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		cols := byRow[r]
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		var cc []int32
		var vv []float64
		for _, c := range cols {
			dv := m.Get(r, int(c)) - m.base[j][packKey(r, int(c))]
			if dv == 0 {
				continue
			}
			cc = append(cc, c-int32(lo))
			vv = append(vv, dv)
		}
		if len(cc) > 0 {
			d.Rows = append(d.Rows, r)
			d.Cols = append(d.Cols, cc)
			d.Vals = append(d.Vals, vv)
		}
	}
	return d
}

// AuditRecount verifies the incrementally maintained bookkeeping against
// an exact recount: per-block squared Frobenius norm, squared delta norm,
// nnz counters, baseline key validity, and the no-stored-zero/no-NaN
// storage invariants. Floating-point accumulators are compared within a
// scale-aware tolerance; the integer counters must match exactly. O(nnz),
// intended for the correctness harness and debug builds, not hot paths.
func (m *DynRow) AuditRecount() error {
	const tol = 1e-7
	total := 0
	for j := 0; j < m.nblocks; j++ {
		lo, hi := m.BlockRange(j)
		var frob float64
		nnz := 0
		for r := 0; r < m.rows; r++ {
			for c, v := range m.data[r][j] {
				switch {
				case int(c) < lo || int(c) >= hi:
					return fmt.Errorf("sparse: audit: entry (%d,%d) stored in block %d [%d,%d)", r, c, j, lo, hi)
				case v == 0:
					return fmt.Errorf("sparse: audit: stored zero at (%d,%d)", r, c)
				case math.IsNaN(v) || math.IsInf(v, 0):
					return fmt.Errorf("sparse: audit: non-finite value %g at (%d,%d)", v, r, c)
				}
				frob += v * v
				nnz++
			}
		}
		var delta float64
		for key, bv := range m.base[j] {
			r, c := int(key>>32), int(int32(key))
			if r < 0 || r >= m.rows || c < lo || c >= hi {
				return fmt.Errorf("sparse: audit: baseline key (%d,%d) outside block %d of %d×%d", r, c, j, m.rows, m.cols)
			}
			d := m.Get(r, c) - bv
			delta += d * d
		}
		if nnz != m.nnz[j] {
			return fmt.Errorf("sparse: audit: block %d nnz counter %d, recount %d", j, m.nnz[j], nnz)
		}
		if got := m.frobSq[j]; abs(got-frob) > tol*(1+frob) {
			return fmt.Errorf("sparse: audit: block %d frobSq drifted: maintained %g, recount %g", j, got, frob)
		}
		if got := m.deltaSq[j]; abs(got-delta) > tol*(1+delta) {
			return fmt.Errorf("sparse: audit: block %d deltaSq drifted: maintained %g, recount %g", j, got, delta)
		}
		total += nnz
	}
	if total != m.totalNNZ {
		return fmt.Errorf("sparse: audit: total nnz counter %d, recount %d", m.totalNNZ, total)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ToDense materializes densely (tests only).
func (m *DynRow) ToDense() *linalg.Dense {
	out := linalg.NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		row := out.Row(r)
		for j := 0; j < m.nblocks; j++ {
			for c, v := range m.data[r][j] {
				row[c] = v
			}
		}
	}
	return out
}
