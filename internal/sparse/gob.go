package sparse

import (
	"bytes"
	"encoding/gob"
)

// gobDynRow is the wire form of a DynRow: shape, entries in row-major
// order, and the per-block lazy-update bookkeeping (baselines, squared
// norms) that must survive a save/load for Eqn. 2 triggers to stay exact.
type gobDynRow struct {
	Rows, Cols, Blocks int
	EntryRow           []int32
	EntryCol           []int32
	EntryVal           []float64
	FrobSq             []float64
	DeltaSq            []float64
	BaseKeys           [][]int64
	BaseVals           [][]float64
}

// GobEncode implements gob.GobEncoder.
func (m *DynRow) GobEncode() ([]byte, error) {
	wire := gobDynRow{
		Rows: m.rows, Cols: m.cols, Blocks: m.nblocks,
		FrobSq:   append([]float64(nil), m.frobSq...),
		DeltaSq:  append([]float64(nil), m.deltaSq...),
		BaseKeys: make([][]int64, m.nblocks),
		BaseVals: make([][]float64, m.nblocks),
	}
	for r := 0; r < m.rows; r++ {
		for j := 0; j < m.nblocks; j++ {
			for c, v := range m.data[r][j] {
				wire.EntryRow = append(wire.EntryRow, int32(r))
				wire.EntryCol = append(wire.EntryCol, c)
				wire.EntryVal = append(wire.EntryVal, v)
			}
		}
	}
	for j := 0; j < m.nblocks; j++ {
		for k, v := range m.base[j] {
			wire.BaseKeys[j] = append(wire.BaseKeys[j], k)
			wire.BaseVals[j] = append(wire.BaseVals[j], v)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *DynRow) GobDecode(data []byte) error {
	var wire gobDynRow
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return err
	}
	*m = *NewDynRow(wire.Rows, wire.Cols, wire.Blocks)
	// Raw insert (no delta tracking — bookkeeping is restored verbatim
	// below).
	for i := range wire.EntryRow {
		r, c, v := int(wire.EntryRow[i]), wire.EntryCol[i], wire.EntryVal[i]
		j := int(c) / m.width
		if m.data[r][j] == nil {
			m.data[r][j] = make(map[int32]float64)
		}
		m.data[r][j][c] = v
		m.nnz[j]++
		m.totalNNZ++
	}
	copy(m.frobSq, wire.FrobSq)
	copy(m.deltaSq, wire.DeltaSq)
	for j := range wire.BaseKeys {
		for i, k := range wire.BaseKeys[j] {
			m.base[j][k] = wire.BaseVals[j][i]
		}
	}
	return nil
}
