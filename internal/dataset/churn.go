package dataset

import (
	"fmt"
	"math/rand"

	"github.com/tree-svd/treesvd/internal/graph"
)

// ChurnProfile describes an adversarial event stream for the differential
// correctness harness: batches deliberately mixing the edge cases the
// dynamic path must survive — self-loops (including sink transitions),
// duplicate inserts and missing deletes (graph no-ops), node growth up to
// a capacity, and optionally one batch inflated past the incremental
// path's RebuildThreshold. The same profile always produces the same
// stream, so failures reproduce from a seed alone.
type ChurnProfile struct {
	// Nodes is the initial node count; MaxNodes caps growth (ids beyond
	// Nodes arrive via growth events). MaxNodes == Nodes disables growth.
	Nodes, MaxNodes int
	// Degree is the initial out-degree of every node.
	Degree int
	// Batches and BatchSize shape the stream.
	Batches, BatchSize int
	// Event-mix fractions (cumulative weight must stay ≤ 1; the remainder
	// are plain inserts): self-loop events, deletes of existing edges,
	// duplicate inserts, deletes of absent edges, growth events.
	SelfLoopFrac, DeleteFrac, DupFrac, MissFrac, GrowFrac float64
	// BigBatch, when in [0,Batches), inflates that batch to BigBatchSize
	// events — sized by the caller to straddle the rebuild threshold.
	BigBatch, BigBatchSize int
	// Protect lists nodes whose last out-edge is never deleted (subset
	// nodes must stay non-degenerate for fresh rebuilds).
	Protect []int32
	// Seed fixes the stream.
	Seed int64
}

// Validate reports whether the profile is generatable.
func (p ChurnProfile) Validate() error {
	switch {
	case p.Nodes < 2:
		return fmt.Errorf("dataset: churn: %d nodes", p.Nodes)
	case p.MaxNodes < p.Nodes:
		return fmt.Errorf("dataset: churn: MaxNodes %d < Nodes %d", p.MaxNodes, p.Nodes)
	case p.Degree < 1 || p.Degree >= p.Nodes:
		return fmt.Errorf("dataset: churn: degree %d outside [1,%d)", p.Degree, p.Nodes)
	case p.Batches < 1 || p.BatchSize < 1:
		return fmt.Errorf("dataset: churn: %d batches × %d events", p.Batches, p.BatchSize)
	}
	frac := p.SelfLoopFrac + p.DeleteFrac + p.DupFrac + p.MissFrac + p.GrowFrac
	if frac < 0 || frac > 1 ||
		p.SelfLoopFrac < 0 || p.DeleteFrac < 0 || p.DupFrac < 0 || p.MissFrac < 0 || p.GrowFrac < 0 {
		return fmt.Errorf("dataset: churn: event fractions sum to %g", frac)
	}
	for _, v := range p.Protect {
		if v < 0 || int(v) >= p.Nodes {
			return fmt.Errorf("dataset: churn: protected node %d outside initial %d nodes", v, p.Nodes)
		}
	}
	return nil
}

// GenerateChurn materializes the initial graph and the event batches of a
// churn profile. Every event is generated against a live working copy of
// the graph, so deletes hit existing edges, duplicates/missing-deletes
// are genuine no-ops, and growth events extend the id range one node at a
// time — while protected nodes always keep at least one out-edge.
func GenerateChurn(p ChurnProfile) (*graph.Graph, [][]graph.Event) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New(p.Nodes)
	for v := int32(0); int(v) < p.Nodes; v++ {
		for g.OutDeg(v) < p.Degree {
			u := int32(rng.Intn(p.Nodes))
			if u != v {
				g.InsertEdge(v, u)
			}
		}
	}
	initial := g.Clone()
	protected := make(map[int32]bool, len(p.Protect))
	for _, v := range p.Protect {
		protected[v] = true
	}

	randNode := func() int32 { return int32(rng.Intn(g.NumNodes())) }
	// deletable rejects removals that would strip a protected node's last
	// out-edge; everything else — including creating dangling nodes — is
	// fair game for the harness.
	deletable := func(u, v int32) bool {
		return g.HasEdge(u, v) && !(protected[u] && g.OutDeg(u) == 1)
	}
	randEdge := func() (int32, int32, bool) {
		for try := 0; try < 64; try++ {
			u := randNode()
			if d := g.OutDeg(u); d > 0 {
				v := g.OutNeighbors(u)[rng.Intn(d)]
				return u, v, true
			}
		}
		return 0, 0, false
	}

	// sinkCandidate hunts for the self-loop edge cases that random node
	// picks almost never produce: a dangling node (self-loop insert there
	// is the d: 0→1 sink transition — the transition matrix row does not
	// change) or a node whose self-loop is its last out-edge (deleting it
	// is the reverse d: 1→0 transition).
	sinkCandidate := func() (graph.Event, bool) {
		for u, n := int32(0), int32(g.NumNodes()); u < n; u++ {
			switch g.OutDeg(u) {
			case 0:
				return graph.Event{U: u, V: u, Type: graph.Insert}, true
			case 1:
				// Deleting the last out-edge either IS a sink transition
				// (when the edge is the node's own self-loop) or creates the
				// dangling node a later self-loop insert lands on.
				if v := g.OutNeighbors(u)[0]; deletable(u, v) {
					return graph.Event{U: u, V: v, Type: graph.Delete}, true
				}
			}
		}
		return graph.Event{}, false
	}

	next := func() graph.Event {
		x := rng.Float64()
		switch {
		case x < p.SelfLoopFrac:
			// Half the self-loop budget goes to sink transitions whenever
			// the graph offers one; the rest exercises the d ≥ 1 self-loop
			// corrections on ordinary nodes.
			if rng.Intn(2) == 0 {
				if ev, ok := sinkCandidate(); ok {
					return ev
				}
			}
			u := randNode()
			if g.HasEdge(u, u) && deletable(u, u) {
				return graph.Event{U: u, V: u, Type: graph.Delete}
			}
			return graph.Event{U: u, V: u, Type: graph.Insert}
		case x < p.SelfLoopFrac+p.DeleteFrac:
			if u, v, ok := randEdge(); ok && deletable(u, v) {
				return graph.Event{U: u, V: v, Type: graph.Delete}
			}
		case x < p.SelfLoopFrac+p.DeleteFrac+p.DupFrac:
			if u, v, ok := randEdge(); ok {
				return graph.Event{U: u, V: v, Type: graph.Insert} // duplicate: no-op
			}
		case x < p.SelfLoopFrac+p.DeleteFrac+p.DupFrac+p.MissFrac:
			for try := 0; try < 64; try++ {
				u, v := randNode(), randNode()
				if !g.HasEdge(u, v) {
					return graph.Event{U: u, V: v, Type: graph.Delete} // missing: no-op
				}
			}
		case x < p.SelfLoopFrac+p.DeleteFrac+p.DupFrac+p.MissFrac+p.GrowFrac:
			if n := g.NumNodes(); n < p.MaxNodes {
				// A fresh id arrives with one in- and one out-edge, so the
				// newborn is reachable and non-dangling.
				return graph.Event{U: randNode(), V: int32(n), Type: graph.Insert}
			}
		}
		for {
			u, v := randNode(), randNode()
			if !g.HasEdge(u, v) {
				return graph.Event{U: u, V: v, Type: graph.Insert}
			}
		}
	}

	batches := make([][]graph.Event, p.Batches)
	for b := range batches {
		size := p.BatchSize
		if b == p.BigBatch && p.BigBatchSize > 0 {
			size = p.BigBatchSize
		}
		batch := make([]graph.Event, 0, size)
		for len(batch) < size {
			ev := next()
			g.Apply(ev)
			batch = append(batch, ev)
			// Follow a growth event immediately with an out-edge for the
			// newborn so it does not linger dangling across batches.
			if ev.Type == graph.Insert && int(ev.V) == g.NumNodes()-1 && g.OutDeg(ev.V) == 0 && len(batch) < size {
				out := graph.Event{U: ev.V, V: randNode(), Type: graph.Insert}
				if out.U != out.V {
					g.Apply(out)
					batch = append(batch, out)
				}
			}
		}
		batches[b] = batch
	}
	return initial, batches
}
