// Package rsvd implements randomized truncated SVD for sparse matrices:
// the Halko–Martinsson–Tropp randomized subspace iteration used at level 1
// of Tree-SVD, a Clarkson–Woodruff count-sketch variant achieving
// input-sparsity time (the O(nnz + |S|d²/ε⁴) term of Theorem 3.3), and an
// FRPCA-style baseline (randomized PCA with power iteration, the Exp. 2
// competitor).
package rsvd

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Options configures the randomized SVD.
type Options struct {
	// Rank is the number of singular triplets to return (d in the paper).
	Rank int
	// Oversample adds extra sketch columns beyond Rank for accuracy.
	// Default 8.
	Oversample int
	// PowerIters is the number of subspace (power) iterations. Each
	// iteration sharpens the spectral gap at the cost of two extra sparse
	// products. Default 2.
	PowerIters int
	// Seed drives the Gaussian / count-sketch draw; runs are deterministic
	// for a fixed seed.
	Seed int64
	// Workers is the kernel worker budget for the sparse products, QR and
	// small SVD (0 or 1 = sequential). It does not affect the factorization
	// result except through the documented O(ε) rounding of parallel
	// sparse transpose-products.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	}
	return o
}

func (o Options) sketchCols(n int) int {
	p := o.Rank + o.Oversample
	if p > n {
		p = n
	}
	return p
}

// GaussianDense returns an r×c matrix of iid N(0,1) entries drawn from rng.
func GaussianDense(rng *rand.Rand, r, c int) *linalg.Dense {
	m := linalg.NewDense(r, c)
	fillGaussian(rng, m)
	return m
}

func fillGaussian(rng *rand.Rand, m *linalg.Dense) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
}

// Sparse computes a randomized truncated SVD of a sparse matrix A (rows×n).
// The scheme is Halko-style subspace iteration on the row space:
//
//	Y = A·Ω (n×p Gaussian), q power iterations Y ← A·(Aᵀ·Y) with
//	re-orthonormalization, Q = qr(Y), W = Qᵀ·A, exact thin SVD of the small
//	W, then U = Q·U_w.
//
// For Tree-SVD's level-1 blocks the row count is |S| (small) and n is the
// block width, so every dense intermediate is tiny; the sparse products are
// O(nnz·p) each, matching the Theorem 3.3 accounting.
//
// Every intermediate that dies inside the routine — the Gaussian sketch,
// the subspace ping-pong buffers, the projected small matrix — cycles
// through the linalg scratch pool, so the thousands of block rebuilds of a
// dynamic stream reuse a handful of buffers instead of reallocating them.
func Sparse(a *sparse.CSR, opts Options) (*linalg.SVDResult, error) {
	opts = opts.withDefaults()
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("rsvd: non-positive rank %d", opts.Rank)
	}
	defer observe(&sparseCalls, time.Now())
	rng := rand.New(rand.NewSource(opts.Seed))
	kw := opts.Workers
	p := opts.sketchCols(min(a.Rows, a.Cols))
	if p == 0 || a.NNZ() == 0 {
		return &linalg.SVDResult{U: linalg.NewDense(a.Rows, 0), V: linalg.NewDense(a.Cols, 0)}, nil
	}
	if a.Cols <= opts.Rank+opts.Oversample {
		// The sketch would be as wide as the matrix: a randomized range
		// finder saves nothing, so take the exact thin SVD of the block
		// directly (Gram side is Cols×Cols — tiny). Cheaper and exact for
		// the narrow blocks produced by large b.
		return linalg.SVDTruncW(a.ToDense(), opts.Rank, kw), nil
	}
	omega := linalg.GetDense(a.Cols, p)
	fillGaussian(rng, omega)
	y := a.MulDenseW(omega, kw) // rows×p
	linalg.PutDense(omega)
	for it := 0; it < opts.PowerIters; it++ {
		linalg.OrthonormalizeW(y, kw)
		z := a.TMulDenseW(y, kw) // n×p
		linalg.OrthonormalizeW(z, kw)
		linalg.PutDense(y)
		y = a.MulDenseW(z, kw)
		linalg.PutDense(z)
	}
	q, _ := linalg.QRThinW(y, kw)
	linalg.PutDense(y)
	wt := a.TMulDenseW(q, kw) // n×p
	w := wt.T()               // (p×n): rows are Qᵀ·A
	linalg.PutDense(wt)
	small := linalg.SVDW(w, kw)
	linalg.PutDense(w)
	u := linalg.MulW(q, small.U, kw)
	linalg.PutDense(q)
	linalg.PutDense(small.U)
	res := &linalg.SVDResult{U: u, S: small.S, V: small.V}
	return res.Truncate(opts.Rank), nil
}

// Dense computes a randomized truncated SVD of a dense matrix with the same
// scheme as Sparse. Used by HSVD-style pipelines when the input block is
// already dense.
func Dense(a *linalg.Dense, opts Options) (*linalg.SVDResult, error) {
	opts = opts.withDefaults()
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("rsvd: non-positive rank %d", opts.Rank)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	kw := opts.Workers
	p := opts.sketchCols(min(a.Rows, a.Cols))
	if p == 0 {
		return &linalg.SVDResult{U: linalg.NewDense(a.Rows, 0), V: linalg.NewDense(a.Cols, 0)}, nil
	}
	omega := linalg.GetDense(a.Cols, p)
	fillGaussian(rng, omega)
	y := linalg.MulW(a, omega, kw)
	linalg.PutDense(omega)
	for it := 0; it < opts.PowerIters; it++ {
		linalg.OrthonormalizeW(y, kw)
		z := linalg.TMulW(a, y, kw)
		linalg.OrthonormalizeW(z, kw)
		linalg.PutDense(y)
		y = linalg.MulW(a, z, kw)
		linalg.PutDense(z)
	}
	q, _ := linalg.QRThinW(y, kw)
	linalg.PutDense(y)
	w := linalg.TMulW(q, a, kw)
	small := linalg.SVDW(w, kw)
	linalg.PutDense(w)
	u := linalg.MulW(q, small.U, kw)
	linalg.PutDense(q)
	linalg.PutDense(small.U)
	res := &linalg.SVDResult{U: u, S: small.S, V: small.V}
	return res.Truncate(opts.Rank), nil
}

// rangeBasis returns an orthonormal basis of the column space of y: the
// thin-QR Q for tall matrices, the left singular vectors for wide ones.
// It consumes y (the storage is pooled).
func rangeBasis(y *linalg.Dense, workers int) *linalg.Dense {
	if y.Rows >= y.Cols {
		q, _ := linalg.QRThinW(y, workers)
		linalg.PutDense(y)
		return q
	}
	u := linalg.SVDW(y, workers).U
	linalg.PutDense(y)
	return u
}
