# Tree-SVD developer targets. `make ci` is the full gate: vet, build,
# tests, and the race-detector pass over the concurrency-sensitive
# packages (the public facade and everything under internal/).

GO ?= go

.PHONY: ci vet build test race bench fmt

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 50x .

fmt:
	gofmt -l .
