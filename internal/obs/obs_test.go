package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// checks the total; run under -race this also proves data-race freedom.
func TestCounterConcurrent(t *testing.T) {
	const workers, per = 16, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(3)
				}
			}
		}()
	}
	wg.Wait()
	want := uint64(workers * (per/2 + 3*per/2))
	if got := c.Load(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Load(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

// TestHistogramConcurrent checks the lifetime aggregates under concurrent
// observation and that quantiles land inside the observed range.
func TestHistogramConcurrent(t *testing.T) {
	const workers, per = 8, 4000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	wantSum := int64(workers) * int64(per) * int64(per+1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Min != 1 || s.Max != int64(per) {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.Min, s.Max, per)
	}
	for _, q := range []int64{s.P50, s.P90, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %d outside [%d, %d]", q, s.Min, s.Max)
		}
	}
	if m := s.Mean(); m < s.Min || m > s.Max {
		t.Fatalf("mean %d outside [%d, %d]", m, s.Min, s.Max)
	}
}

// TestHistogramSnapshotDuringWrites takes snapshots while writers run:
// every snapshot must be internally sane (monotone count, quantiles
// within min..max) even though it is only approximately consistent.
func TestHistogramSnapshotDuringWrites(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := int64(1)
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(v%1000 + 1)
					v++
				}
			}
		}()
	}
	var last uint64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < last {
			t.Fatalf("count went backwards: %d < %d", s.Count, last)
		}
		last = s.Count
		if s.Count > 0 {
			if s.Min < 0 || s.Max > 1001 {
				t.Fatalf("min/max out of range: %+v", s)
			}
			for _, q := range []int64{s.P50, s.P90, s.P99} {
				if q < s.Min || q > s.Max {
					t.Fatalf("quantile %d outside [%d, %d]", q, s.Min, s.Max)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(-5) // clamped
	if s := h.Snapshot(); s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if s := h.Snapshot(); s.Min < int64(time.Millisecond)/2 {
		t.Fatalf("ObserveSince recorded %v", time.Duration(s.Min))
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Counter("dup", "ops", "first", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "ops", "second", &c)
}

func TestTraceKindStrings(t *testing.T) {
	kinds := []TraceKind{TraceBatchStart, TraceBlockRecompute, TraceBatchEnd,
		TraceRebuild, TraceCheckpoint, TraceRecovery, TraceKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !seen["unknown"] {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
	if !strings.Contains(TraceBatchStart.String(), "batch") {
		t.Fatal("unexpected batch-start name")
	}
}
