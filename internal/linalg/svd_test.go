package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkOrthonormalCols verifies QᵀQ ≈ I.
func checkOrthonormalCols(t *testing.T, q *Dense, tol float64, label string) {
	t.Helper()
	g := Gram(q)
	if d := MaxAbsDiff(g, Identity(q.Cols)); d > tol {
		t.Fatalf("%s: columns not orthonormal, max deviation %g", label, d)
	}
}

func TestQRThinReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {20, 7}, {3, 1}} {
		a := randDense(rng, dims[0], dims[1])
		q, r := QRThin(a)
		checkOrthonormalCols(t, q, 1e-10, "QR Q")
		if d := MaxAbsDiff(Mul(q, r), a); d > 1e-10 {
			t.Fatalf("QR %v: Q·R != A, diff %g", dims, d)
		}
		// R upper triangular.
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still reconstruct.
	a := NewDense(6, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		v := rng.NormFloat64()
		a.Set(i, 0, v)
		a.Set(i, 1, v)
		a.Set(i, 2, rng.NormFloat64())
	}
	q, r := QRThin(a)
	if d := MaxAbsDiff(Mul(q, r), a); d > 1e-10 {
		t.Fatalf("rank-deficient QR reconstruct diff %g", d)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	l, v := SymEig(a)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(l[i]-w) > 1e-12 {
			t.Fatalf("eigenvalue %d = %g, want %g", i, l[i], w)
		}
	}
	checkOrthonormalCols(t, v, 1e-12, "SymEig V")
}

func TestSymEigReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 5, 12, 30} {
		b := randDense(rng, n, n)
		a := Add(b, b.T()) // symmetric
		l, v := SymEig(a)
		checkOrthonormalCols(t, v, 1e-9, "SymEig V")
		// V·diag(l)·Vᵀ == A
		rec := MulT(v.Clone().MulDiag(l), v)
		if d := MaxAbsDiff(rec, a); d > 1e-8*math.Max(1, a.FrobNorm()) {
			t.Fatalf("n=%d: eig reconstruct diff %g", n, d)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if l[i] > l[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending at %d", i)
			}
		}
	}
}

func TestSymEigMatchesJacobi(t *testing.T) {
	// Two independent eigensolvers (tred2/tql2 vs cyclic Jacobi) must
	// agree on eigenvalues and produce equivalent reconstructions.
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 7, 16, 40} {
		b := randDense(rng, n, n)
		a := Add(b, b.T())
		l1, v1 := SymEig(a)
		l2, v2 := JacobiSymEig(a)
		checkOrthonormalCols(t, v1, 1e-9, "SymEig V")
		checkOrthonormalCols(t, v2, 1e-9, "JacobiSymEig V")
		scale := math.Max(1, math.Abs(l2[0]))
		for i := range l1 {
			if math.Abs(l1[i]-l2[i]) > 1e-8*scale {
				t.Fatalf("n=%d: λ%d tql2=%g jacobi=%g", n, i, l1[i], l2[i])
			}
		}
		r1 := MulT(v1.Clone().MulDiag(l1), v1)
		if d := MaxAbsDiff(r1, a); d > 1e-8*math.Max(1, a.FrobNorm()) {
			t.Fatalf("n=%d: tql2 reconstruct diff %g", n, d)
		}
	}
}

func TestSymEigTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := randDense(rng, n, n)
		a := Add(b, b.T())
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		l, _ := SymEig(a)
		var sum float64
		for _, x := range l {
			sum += x
		}
		return math.Abs(tr-sum) <= 1e-9*math.Max(1, math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstructBothOrientations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][2]int{{8, 5}, {5, 8}, {12, 12}, {1, 6}, {6, 1}} {
		a := randDense(rng, dims[0], dims[1])
		res := SVD(a)
		checkOrthonormalCols(t, res.U, 1e-8, "SVD U")
		checkOrthonormalCols(t, res.V, 1e-8, "SVD V")
		if d := MaxAbsDiff(res.Reconstruct(), a); d > 1e-7 {
			t.Fatalf("SVD %v reconstruct diff %g", dims, d)
		}
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-12 {
				t.Fatalf("singular values not descending")
			}
		}
	}
}

func TestSVDKnownMatrix(t *testing.T) {
	// A = [[3,0],[0,2]] has singular values {3,2}.
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	res := SVD(a)
	if len(res.S) != 2 || math.Abs(res.S[0]-3) > 1e-12 || math.Abs(res.S[1]-2) > 1e-12 {
		t.Fatalf("got singular values %v, want [3 2]", res.S)
	}
}

func TestSVDTruncEckartYoung(t *testing.T) {
	// Truncating the exact SVD to rank d gives the optimal rank-d
	// approximation; its error must equal the tail energy.
	rng := rand.New(rand.NewSource(14))
	a := randDense(rng, 10, 7)
	full := SVD(a)
	for d := 1; d < 7; d++ {
		tr := full.Truncate(d)
		err := Sub(tr.Reconstruct(), a).FrobNorm()
		var tail float64
		for i := d; i < len(full.S); i++ {
			tail += full.S[i] * full.S[i]
		}
		want := math.Sqrt(tail)
		if math.Abs(err-want) > 1e-8 {
			t.Fatalf("d=%d: trunc error %g, tail energy %g", d, err, want)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-2 matrix in a 6×5 shape: SVD must report rank 2.
	rng := rand.New(rand.NewSource(15))
	u := randDense(rng, 6, 2)
	v := randDense(rng, 5, 2)
	a := MulT(u, v)
	res := SVD(a)
	if res.Rank() != 2 {
		t.Fatalf("rank = %d, want 2 (S=%v)", res.Rank(), res.S)
	}
	if d := MaxAbsDiff(res.Reconstruct(), a); d > 1e-8 {
		t.Fatalf("rank-deficient reconstruct diff %g", d)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewDense(4, 3)
	res := SVD(a)
	if res.Rank() != 0 {
		t.Fatalf("zero matrix rank = %d, want 0", res.Rank())
	}
}

func TestJacobiSVDAgreesWithGramSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, dims := range [][2]int{{9, 4}, {15, 8}, {5, 5}} {
		a := randDense(rng, dims[0], dims[1])
		g := SVD(a)
		j := JacobiSVD(a)
		if g.Rank() != j.Rank() {
			t.Fatalf("%v: rank mismatch gram=%d jacobi=%d", dims, g.Rank(), j.Rank())
		}
		for i := range g.S {
			if math.Abs(g.S[i]-j.S[i]) > 1e-8*math.Max(1, g.S[0]) {
				t.Fatalf("%v: σ%d gram=%g jacobi=%g", dims, i, g.S[i], j.S[i])
			}
		}
		if d := MaxAbsDiff(j.Reconstruct(), a); d > 1e-9 {
			t.Fatalf("%v: jacobi reconstruct diff %g", dims, d)
		}
	}
}

func TestSVDResultHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randDense(rng, 6, 4)
	res := SVD(a)
	us := res.US()
	if d := MaxAbsDiff(us, Mul(a, res.V)); d > 1e-9 {
		t.Fatalf("US != A·V: %g", d)
	}
	uss := res.USqrtS()
	for j, s := range res.S {
		for i := 0; i < 6; i++ {
			want := res.U.At(i, j) * math.Sqrt(s)
			if math.Abs(uss.At(i, j)-want) > 1e-12 {
				t.Fatalf("USqrtS mismatch at (%d,%d)", i, j)
			}
		}
	}
	// TailEnergy with d == rank must be ~0 for an exact decomposition.
	if te := res.TailEnergy(a.FrobNorm(), res.Rank()); te > 1e-6 {
		t.Fatalf("tail energy at full rank = %g, want ~0", te)
	}
	// TailEnergy at d=1 equals ‖A − (A)₁‖_F.
	want := Sub(res.Truncate(1).Reconstruct(), a).FrobNorm()
	if te := res.TailEnergy(a.FrobNorm(), 1); math.Abs(te-want) > 1e-8 {
		t.Fatalf("tail energy d=1: %g want %g", te, want)
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randDense(rng, 12, 5)
	orig := a.Clone()
	Orthonormalize(a)
	checkOrthonormalCols(t, a, 1e-10, "Orthonormalize")
	// Span preserved: projecting orig onto span(a) must reproduce orig.
	proj := Mul(a, TMul(a, orig))
	if d := MaxAbsDiff(proj, orig); d > 1e-9 {
		t.Fatalf("span not preserved: %g", d)
	}
}

func TestSVDPropertySingularValuesMatchGram(t *testing.T) {
	// Property: σ_i² are the eigenvalues of AᵀA.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(8)
		c := 2 + rng.Intn(8)
		a := randDense(rng, r, c)
		res := SVD(a)
		l, _ := SymEig(Gram(a))
		for i, s := range res.S {
			if math.Abs(s*s-l[i]) > 1e-7*math.Max(1, l[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQRThinHighlyRankDeficient(t *testing.T) {
	// Regression: a 200×40 matrix with only 4 non-zero rows used to send
	// QRThin into exponential noise amplification (NaN in Q). The
	// deflation floor must keep Q finite and orthonormal on its span.
	rng := rand.New(rand.NewSource(77))
	a := NewDense(200, 40)
	for _, r := range []int{3, 50, 120, 199} {
		for j := 0; j < 40; j++ {
			a.Set(r, j, rng.NormFloat64())
		}
	}
	q, r := QRThin(a)
	for _, v := range q.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("rank-deficient QR produced non-finite Q")
		}
	}
	if d := MaxAbsDiff(Mul(q, r), a); d > 1e-9 {
		t.Fatalf("rank-deficient QR reconstruct diff %g", d)
	}
	// Q columns orthonormal.
	if d := MaxAbsDiff(Gram(q), Identity(40)); d > 1e-9 {
		t.Fatalf("rank-deficient Q not orthonormal: %g", d)
	}
}
