package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{n: 7, k: 3, want: [][2]int{{0, 3}, {3, 5}, {5, 7}}},
		{n: 4, k: 1, want: [][2]int{{0, 4}}},
		{n: 4, k: 4, want: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{n: 3, k: 5, want: [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // clamped
		{n: 5, k: 0, want: [][2]int{{0, 5}}},                 // clamped
	}
	for _, c := range cases {
		got := ShardRanges(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("ShardRanges(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ShardRanges(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
}

// TestMergeShardRootsExact checks the merge identity: when the per-shard
// factorizations are exact (full-rank SVDs of the row blocks), the merged
// root is an exact SVD of the stacked matrix — same singular values as a
// direct SVD and a reconstruction that matches M entrywise.
func TestMergeShardRootsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols = 7, 12
	m := linalg.NewDense(rows, cols)
	for i := range m.Data {
		if rng.Float64() < 0.6 {
			m.Data[i] = rng.NormFloat64()
		}
	}
	direct := linalg.SVD(m)

	ranges := ShardRanges(rows, 3)
	roots := make([]*linalg.SVDResult, len(ranges))
	ws := make([]*linalg.Dense, len(ranges))
	for i, r := range ranges {
		mi := linalg.NewDenseData(r[1]-r[0], cols, m.Data[r[0]*cols:r[1]*cols])
		roots[i] = linalg.SVD(mi)
		ws[i] = linalg.TMul(mi, roots[i].U) // W_i = M_iᵀ·U_i
	}
	mr, err := MergeShardRoots(roots, ws, cols, 1)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := mr.Root.Rank(), direct.Rank(); got != want {
		t.Fatalf("merged rank %d, want %d", got, want)
	}
	for i, s := range direct.S {
		if math.Abs(mr.Root.S[i]-s) > 1e-9*(1+s) {
			t.Fatalf("σ_%d = %g, want %g", i, mr.Root.S[i], s)
		}
	}
	recon := mr.Root.Reconstruct()
	if d := linalg.MaxAbsDiff(recon, m); d > 1e-9 {
		t.Fatalf("merged reconstruction off by %g", d)
	}

	// Derived quantities match their full-matrix counterparts. The error
	// bound is loose: ‖M‖² − ‖proj‖² cancels catastrophically when the
	// merge is exact, so √diff floors around √ε·‖M‖.
	if got := mr.ReconstructionError(ws, m.FrobNorm(), 1); got > 1e-5 {
		t.Fatalf("exact merge has reconstruction error %g", got)
	}
	yWant := RightEmbeddingOfW(mr.Root, denseToCSR(m), 1)
	yGot := mr.RightEmbedding(ws, 1)
	if d := linalg.MaxAbsDiff(yGot, yWant); d > 1e-9 {
		t.Fatalf("right embedding off by %g", d)
	}
}

// TestMergeShardRootsTruncated checks the rank-d merge: singular values
// match the direct rank-d SVD and the reconstruction error equals the
// optimal tail energy (the shard span contains the top-d subspace when
// the shard SVDs are exact).
func TestMergeShardRootsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rows, cols, d = 8, 10, 3
	m := linalg.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	direct := linalg.SVDTrunc(m, d)

	ranges := ShardRanges(rows, 2)
	roots := make([]*linalg.SVDResult, len(ranges))
	ws := make([]*linalg.Dense, len(ranges))
	for i, r := range ranges {
		mi := linalg.NewDenseData(r[1]-r[0], cols, m.Data[r[0]*cols:r[1]*cols])
		roots[i] = linalg.SVD(mi)
		ws[i] = linalg.TMul(mi, roots[i].U)
	}
	mr, err := MergeShardRoots(roots, ws, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mr.Root.Rank(), direct.Rank(); got != want {
		t.Fatalf("merged rank %d, want %d", got, want)
	}
	for i, s := range direct.S {
		if math.Abs(mr.Root.S[i]-s) > 1e-9*(1+s) {
			t.Fatalf("σ_%d = %g, want %g", i, mr.Root.S[i], s)
		}
	}
	full := linalg.SVD(m)
	want := full.TailEnergy(m.FrobNorm(), d)
	if got := mr.ReconstructionError(ws, m.FrobNorm(), 1); math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("reconstruction error %g, want optimal %g", got, want)
	}
}

func TestMergeShardRootsEmpty(t *testing.T) {
	roots := []*linalg.SVDResult{
		{U: linalg.NewDense(2, 0)},
		{U: linalg.NewDense(3, 0)},
	}
	ws := []*linalg.Dense{linalg.NewDense(6, 0), linalg.NewDense(6, 0)}
	mr, err := MergeShardRoots(roots, ws, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Root.Rank() != 0 || mr.Root.U.Rows != 5 {
		t.Fatalf("empty merge: rank %d, U rows %d", mr.Root.Rank(), mr.Root.U.Rows)
	}
	if got := mr.ReconstructionError(ws, 0, 1); got != 0 {
		t.Fatalf("empty merge reconstruction error %g", got)
	}
}

func TestMergeShardRootsMismatch(t *testing.T) {
	roots := []*linalg.SVDResult{{U: linalg.NewDense(2, 1), S: []float64{1}}}
	if _, err := MergeShardRoots(roots, []*linalg.Dense{linalg.NewDense(4, 2)}, 2, 1); err == nil {
		t.Fatal("want error on W column mismatch")
	}
	if _, err := MergeShardRoots(nil, nil, 2, 1); err == nil {
		t.Fatal("want error on empty merge")
	}
}

// denseToCSR round-trips a dense matrix through a DynRow so the test can
// call the CSR-based full-matrix routines.
func denseToCSR(m *linalg.Dense) *sparse.CSR {
	dr := sparse.NewDynRow(m.Rows, m.Cols, 1)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				dr.Set(i, j, v)
			}
		}
	}
	return dr.ToCSR()
}
