// Dynamicstream: maintain subset embeddings over an evolving graph and
// watch the lazy update at work. A synthetic YouTube-like social network
// streams through its snapshots; at each snapshot the example reports how
// many of the 64 proximity blocks were re-factored versus served from
// cache, and how the embedding of a tracked node drifts.
package main

import (
	"context"
	"fmt"
	"math"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
)

func main() {
	// A scaled YouTube-profile dynamic graph: 8 snapshots of edge events.
	ds := dataset.Generate(dataset.ScaleProfile(dataset.YouTube(), 0.5))
	stream := ds.Stream
	fmt.Printf("stream: %d nodes, %d events, %d snapshots\n",
		stream.NumNodes, len(stream.Events), stream.NumSnapshots())

	g := stream.BuildSnapshot(1)
	subset := ds.SampleSubset(1, 120, 7)

	cfg := treesvd.Defaults()
	cfg.Dim = 16
	cfg.MaxNodes = stream.NumNodes
	t0 := time.Now()
	emb, err := treesvd.New(g, subset, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot 1: full build in %v\n", time.Since(t0).Round(time.Millisecond))

	prev := emb.Embedding()
	for t := 2; t <= stream.NumSnapshots(); t++ {
		batch := stream.SnapshotEvents(t)
		t0 = time.Now()
		if _, err := emb.ApplyEvents(context.Background(), batch); err != nil {
			panic(err)
		}
		elapsed := time.Since(t0)
		st := emb.LastStats()

		cur := emb.Embedding()
		drift := embeddingDrift(prev, cur)
		prev = cur
		fmt.Printf("snapshot %d: %5d events in %7v | blocks rebuilt %2d, cached %2d | embedding drift %.3f\n",
			t, len(batch), elapsed.Round(time.Millisecond), st.Level1Rebuilt, st.Skipped, drift)
	}
	fmt.Println("\nThe cached-block counts are the point: most of the factorization")
	fmt.Println("is reused across snapshots (Algorithm 4), which is what makes the")
	fmt.Println("update an order of magnitude cheaper than re-running Tree-SVD-S.")
}

// embeddingDrift measures the average row-space rotation between two
// embeddings via normalized row dot products (sign-invariant).
func embeddingDrift(a, b [][]float64) float64 {
	var total float64
	n := 0
	for i := range a {
		na, nb, dot := 0.0, 0.0, 0.0
		for j := range a[i] {
			na += a[i][j] * a[i][j]
			nb += b[i][j] * b[i][j]
			dot += a[i][j] * b[i][j]
		}
		if na == 0 || nb == 0 {
			continue
		}
		total += 1 - math.Abs(dot)/math.Sqrt(na*nb)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
