package rsvd

import (
	"time"

	"github.com/tree-svd/treesvd/internal/obs"
)

// Process-global factorization counters and kernel-time span. The rsvd
// entry points are free functions, so the counters are too; they separate
// level-1 kernel time from the tree bookkeeping around it when read next
// to core.Metrics. One observation per completed factorization.
var (
	sparseCalls, sketchCalls, frpcaCalls obs.Counter
	factorNanos                          obs.Histogram
)

// CallStats is a point-in-time view of the package counters.
type CallStats struct {
	// Sparse / CountSketch / FRPCA count completed factorizations per
	// entry point (Sparse, SparseCW, FRPCA).
	Sparse, CountSketch, FRPCA uint64
	// FactorNanos summarizes wall time per factorization, all entry
	// points pooled.
	FactorNanos obs.HistStats
}

// Stats returns the cumulative factorization counts and timing.
func Stats() CallStats {
	return CallStats{
		Sparse:      sparseCalls.Load(),
		CountSketch: sketchCalls.Load(),
		FRPCA:       frpcaCalls.Load(),
		FactorNanos: factorNanos.Snapshot(),
	}
}

// observe records one completed factorization of the given counter.
func observe(c *obs.Counter, start time.Time) {
	c.Inc()
	factorNanos.ObserveSince(start)
}
