package treesvd

// End-to-end regression gate: run the full dynamic pipeline over a scaled
// Patent-like stream and assert the qualitative properties every release
// must keep — classification quality that *improves* with maintenance,
// lazy updates that actually skip work, and agreement between the
// incremental and from-scratch paths. Skipped under -short.

import (
	"testing"

	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/eval"
	"github.com/tree-svd/treesvd/internal/linalg"
)

func TestEndToEndDynamicPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end soak test")
	}
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Patent(), 0.4))
	stream := ds.Stream
	subset := ds.SampleSubset(1, 150, 3)
	labels := ds.LabelsFor(subset)
	classes := ds.Profile.Communities

	cfg := Defaults()
	cfg.Dim = 32
	cfg.MaxNodes = stream.NumNodes
	emb, err := New(stream.BuildSnapshot(1), subset, cfg)
	if err != nil {
		t.Fatal(err)
	}

	classify := func(rows [][]float64) float64 {
		x := linalg.NewDense(len(rows), len(rows[0]))
		for i, r := range rows {
			copy(x.Row(i), r)
		}
		micro, _ := eval.Classify(x, labels, classes, 0.5, eval.DefaultLogRegConfig())
		return micro
	}

	first := classify(emb.Embedding())
	totalRebuilt, totalSkipped := 0, 0
	for snap := 2; snap <= stream.NumSnapshots(); snap++ {
		rebuilt := mustTB(emb.ApplyEvents(bgt, stream.SnapshotEvents(snap)))
		totalRebuilt += rebuilt
		totalSkipped += emb.LastStats().Skipped
	}
	last := classify(emb.Embedding())

	// Quality must improve as the stream matures (paper Exp. 3 shape).
	if last < first+0.05 {
		t.Fatalf("quality did not improve across the stream: %.3f → %.3f", first, last)
	}
	if last < 0.70 {
		t.Fatalf("final micro-F1 %.3f below the regression floor 0.70", last)
	}
	// The lazy update must actually skip work (paper Exp. 4 mechanism).
	if totalSkipped == 0 || totalRebuilt == 0 {
		t.Fatalf("degenerate lazy update: rebuilt %d, skipped %d", totalRebuilt, totalSkipped)
	}
	if float64(totalSkipped) < 0.5*float64(totalRebuilt+totalSkipped) {
		t.Fatalf("lazy update skipped only %d of %d block checks", totalSkipped, totalRebuilt+totalSkipped)
	}

	// The incremental result must match a from-scratch build on the final
	// graph within a loose quality band (push-tolerance drift only).
	scratch, err := New(stream.BuildSnapshot(stream.NumSnapshots()), subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf := classify(scratch.Embedding())
	if last < sf-0.08 {
		t.Fatalf("incremental quality %.3f trails from-scratch %.3f by more than 8 points", last, sf)
	}
}
