package treesvd

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// persistVersion guards the save format; bump on incompatible changes.
// Version 2 appends an integrity footer — the 4-byte magic "TSV2"
// followed by a little-endian CRC32C of the entire gob payload — so bit
// rot that still decodes as structurally plausible gob is rejected
// deterministically. Version-1 saves (no footer) remain loadable.
const (
	persistVersion = 2
	persistMagic   = "TSV2"
	footerLen      = 8
)

// persistCRC is the CRC32C (Castagnoli) table shared by the save footer
// and the WAL/checkpoint formats.
var persistCRC = crc32.MakeTable(crc32.Castagnoli)

// savedEmbedder is the gob wire form of an Embedder: configuration,
// subset, the dynamic graph, every PPR state, the proximity matrix with
// its lazy-update bookkeeping, and the tree's cached factorizations.
// Loading restores the exact maintenance state — subsequent ApplyEvents
// behave as if the process had never restarted.
type savedEmbedder struct {
	Version int
	Config  Config
	Subset  []int32
	Graph   *graph.Graph
	Fwd     []*ppr.State
	Rev     []*ppr.State
	M       *sparse.DynRow
	Tree    *core.TreeSnapshot
}

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, persistCRC, p[:n])
	return n, err
}

// Save serializes the embedder's complete state to w: a gob payload
// followed by the version-2 integrity footer. It takes the update lock,
// so it is safe to call concurrently with ApplyEvents/Rebuild and always
// writes a fully committed state.
//
// Save alone is not crash-atomic: a crash mid-write leaves a truncated
// stream that Load will reject but nothing will repair. Use SaveFile for
// an atomically replaced on-disk checkpoint, or Open for continuous
// WAL-backed durability.
func (e *Embedder) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saveLocked(w)
}

// saveLocked writes the versioned payload and footer. Caller holds e.mu.
func (e *Embedder) saveLocked(w io.Writer) error {
	cw := &crcWriter{w: w}
	saved := savedEmbedder{
		Version: persistVersion,
		Config:  e.cfg,
		Subset:  e.subset,
		Graph:   e.prox.Sub.Engine.G,
		Fwd:     e.prox.Sub.Fwd,
		Rev:     e.prox.Sub.Rev,
		M:       e.prox.M,
		Tree:    e.tree.Snapshot(),
	}
	if err := gob.NewEncoder(cw).Encode(&saved); err != nil {
		return fmt.Errorf("treesvd: encode: %w", err)
	}
	var footer [footerLen]byte
	copy(footer[:4], persistMagic)
	binary.LittleEndian.PutUint32(footer[4:], cw.crc)
	if _, err := w.Write(footer[:]); err != nil {
		return err
	}
	return nil
}

// saveBytes captures a complete save in memory (checkpoint payloads).
func (e *Embedder) saveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores an Embedder previously written by Save (either format
// version). Integrity and structural-consistency failures are reported
// as a *CorruptStateError.
func Load(r io.Reader) (*Embedder, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("treesvd: read save: %w", err)
	}
	e, err := decodeEmbedder(data, "")
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return e, nil
}

// SaveFile writes the embedder's state to path crash-atomically: the
// save goes to a temporary file in the same directory, is fsynced, and
// is renamed over path, with a final directory fsync. Readers of path
// therefore always observe either the previous complete save or the new
// one, never a torn mixture — the property Save(w io.Writer) alone
// cannot give.
func (e *Embedder) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := e.Save(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// LoadFile restores an Embedder from a file written by SaveFile (or any
// complete Save stream). Corruption is reported as a *CorruptStateError
// carrying the path.
func LoadFile(path string) (*Embedder, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, err := decodeEmbedder(data, path)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return e, nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// corruptErr builds the uniform corruption error for decode failures.
func corruptErr(path, format string, args ...any) error {
	return &CorruptStateError{Path: path, Offset: -1, Reason: fmt.Sprintf(format, args...)}
}

// decodeEmbedder verifies, decodes and structurally validates a save,
// returning a fully wired but *unpublished* embedder: no snapshot exists
// until the caller runs publishLocked, which lets WAL recovery replay
// and audit before anything becomes readable. path labels errors.
func decodeEmbedder(data []byte, path string) (*Embedder, error) {
	payload := data
	hasFooter := false
	if len(data) >= footerLen && string(data[len(data)-footerLen:len(data)-4]) == persistMagic {
		payload = data[:len(data)-footerLen]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.Checksum(payload, persistCRC); got != want {
			return nil, corruptErr(path, "save checksum mismatch: computed %08x, footer %08x", got, want)
		}
		hasFooter = true
	}
	var saved savedEmbedder
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&saved); err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "gob decode failed", Err: err}
	}
	switch {
	case saved.Version == persistVersion && !hasFooter:
		return nil, corruptErr(path, "version %d save is missing its integrity footer", saved.Version)
	case saved.Version == 1 && hasFooter:
		return nil, corruptErr(path, "version 1 payload carries a version 2 footer")
	case saved.Version != 1 && saved.Version != persistVersion:
		return nil, fmt.Errorf("treesvd: save format version %d, want %d", saved.Version, persistVersion)
	}
	// Structural validation of the decoded state: the checksum only
	// guarantees the bytes, not that the pieces agree with each other.
	// Check the cross-field invariants New establishes before wiring
	// anything together, so a hand-edited or v1 (checksum-less) save
	// errors here instead of panicking on first use. RestoreSubset and
	// RestoreTree re-check their own pieces (state shapes, tree cache
	// dims) below.
	switch {
	case saved.Graph == nil:
		return nil, corruptErr(path, "missing graph")
	case saved.M == nil:
		return nil, corruptErr(path, "missing proximity matrix")
	case saved.Tree == nil:
		return nil, corruptErr(path, "missing tree snapshot")
	case len(saved.Subset) == 0:
		return nil, corruptErr(path, "empty subset")
	case saved.M.Rows() != len(saved.Subset):
		return nil, corruptErr(path, "proximity matrix has %d rows for a subset of %d nodes",
			saved.M.Rows(), len(saved.Subset))
	case saved.M.Cols() < saved.Graph.NumNodes():
		return nil, corruptErr(path, "proximity matrix %d columns narrower than the %d-node graph",
			saved.M.Cols(), saved.Graph.NumNodes())
	}
	seen := make(map[int32]bool, len(saved.Subset))
	for _, v := range saved.Subset {
		if seen[v] {
			return nil, corruptErr(path, "duplicate subset node %d", v)
		}
		seen[v] = true
	}
	cfg, err := saved.Config.withDefaults()
	if err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "invalid saved configuration", Err: err}
	}
	params := ppr.Params{Alpha: cfg.Alpha, RMax: cfg.RMax, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "invalid saved configuration", Err: err}
	}
	sub, err := ppr.RestoreSubset(saved.Graph, saved.Subset, params, saved.Fwd, saved.Rev)
	if err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "inconsistent PPR state", Err: err}
	}
	prox := ppr.RestoreProximity(sub, saved.M)
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: cfg.Workers,
	}
	tree, err := core.RestoreTree(saved.M, tcfg, saved.Tree)
	if err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "inconsistent tree snapshot", Err: err}
	}
	e := newEmbedder(cfg, saved.Subset, prox, tree)
	if !tree.Built() {
		// Defensive: a snapshot saved before any Build (not reachable via
		// New+Save, but cheap to repair here).
		if err := tree.Build(context.Background()); err != nil {
			return nil, err
		}
	}
	return e, nil
}
