package treesvd

import (
	"math/rand"
	"testing"
)

func buildGraph(rng *rand.Rand, n, m int) *Graph {
	g := NewGraphN(n)
	for v := int32(0); int(v) < n; v++ {
		for {
			u := int32(rng.Intn(n))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < m {
		g.InsertEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return g
}

func TestNewAndEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildGraph(rng, 60, 240)
	subset := []int32{3, 7, 11, 20, 42, 13, 17, 25, 30, 31, 44, 51}
	emb, err := New(g, subset, Config{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := emb.Embedding()
	if len(x) != len(subset) || len(x[0]) != 8 {
		t.Fatalf("embedding shape %dx%d, want %dx8", len(x), len(x[0]), len(subset))
	}
	y := emb.RightEmbedding()
	if len(y) != 60 || len(y[0]) != 8 {
		t.Fatalf("right embedding shape %dx%d, want 60x8", len(y), len(y[0]))
	}
	got := emb.Subset()
	for i, v := range subset {
		if got[i] != v {
			t.Fatal("Subset() order mismatch")
		}
	}
}

func TestApplyEventsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := buildGraph(rng, 50, 200)
	emb, err := New(g, []int32{1, 2, 3, 4}, Config{Dim: 8, Delta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Embedding()
	var events []Event
	for len(events) < 60 {
		u, v := int32(rng.Intn(50)), int32(rng.Intn(50))
		if u != v {
			events = append(events, Event{U: u, V: v, Type: Insert})
		}
	}
	rebuilt := mustTB(emb.ApplyEvents(bgt, events))
	if rebuilt == 0 {
		t.Fatal("δ=0 with 60 insertions rebuilt nothing")
	}
	after := emb.Embedding()
	same := true
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("embedding unchanged after updates")
	}
	st := emb.LastStats()
	if st.Level1Rebuilt != rebuilt {
		t.Fatalf("stats mismatch: %d vs %d", st.Level1Rebuilt, rebuilt)
	}
}

func TestRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildGraph(rng, 40, 160)
	emb, err := New(g, []int32{5, 6}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	must0tb(emb.Rebuild(bgt))
	if x := emb.Embedding(); len(x) != 2 {
		t.Fatal("rebuild broke embedding")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := buildGraph(rng, 10, 40)
	if _, err := New(g, nil, Defaults()); err == nil {
		t.Fatal("empty subset accepted")
	}
	if _, err := New(g, []int32{99}, Defaults()); err == nil {
		t.Fatal("out-of-range subset accepted")
	}
	g2 := NewGraphN(3)
	g2.InsertEdge(0, 1)
	g2.InsertEdge(1, 0)
	if _, err := New(g2, []int32{2}, Defaults()); err == nil {
		t.Fatal("dangling subset node accepted")
	}
	if _, err := New(g, []int32{0}, Config{Dim: 4, Alpha: 2}); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestConfigDefaultsFill(t *testing.T) {
	c := mustTB(Config{}.withDefaults())
	d := Defaults()
	if c != d {
		t.Fatalf("withDefaults() = %+v, want %+v", c, d)
	}
	// Partial overrides survive.
	c = mustTB(Config{Dim: 64}.withDefaults())
	if c.Dim != 64 || c.Branch != 8 {
		t.Fatal("partial defaults wrong")
	}
}

func TestConfigRejectsNegatives(t *testing.T) {
	for _, bad := range []Config{
		{Dim: -1},
		{Alpha: -0.1},
		{RMax: -1e-4},
		{Delta: -0.5},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Fatalf("withDefaults accepted negative knob %+v", bad)
		}
	}
	// New surfaces the same rejection.
	g := NewGraphN(3)
	g.InsertEdge(0, 1)
	g.InsertEdge(1, 0)
	if _, err := New(g, []int32{0}, Config{Dim: -8}); err == nil {
		t.Fatal("New accepted negative Dim")
	}
}

func TestMaxNodesGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := buildGraph(rng, 20, 80)
	emb, err := New(g, []int32{0, 1}, Config{Dim: 4, MaxNodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Insert edges touching nodes beyond the initial graph size.
	mustTB(emb.ApplyEvents(bgt, []Event{{U: 0, V: 35, Type: Insert}, {U: 35, V: 1, Type: Insert}}))
	y := emb.RightEmbedding()
	if len(y) != 40 {
		t.Fatalf("right embedding rows %d, want MaxNodes=40", len(y))
	}
}

func TestRecommend(t *testing.T) {
	// Two dense communities; recommendations for a community-0 member
	// should be dominated by community-0 nodes it doesn't link to yet.
	rng := rand.New(rand.NewSource(6))
	g := NewGraphN(80)
	comm := func(v int32) int32 { return v / 40 }
	for v := int32(0); v < 80; v++ {
		for g.OutDeg(v) < 6 {
			var u int32
			if rng.Float64() < 0.92 {
				u = comm(v)*40 + int32(rng.Intn(40))
			} else {
				u = int32(rng.Intn(80))
			}
			if u != v {
				g.InsertEdge(v, u)
			}
		}
	}
	emb, err := New(g, []int32{3, 7, 11, 50, 54, 58}, Config{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := emb.Recommend(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d recommendations, want 10", len(recs))
	}
	sameComm := 0
	for i, r := range recs {
		if r.Node == 3 || emb.Graph().HasEdge(3, r.Node) {
			t.Fatalf("recommendation %d is self or an existing edge", r.Node)
		}
		if i > 0 && recs[i-1].Score < r.Score {
			t.Fatal("recommendations not sorted by score")
		}
		if comm(r.Node) == 0 {
			sameComm++
		}
	}
	if sameComm < 7 {
		t.Fatalf("only %d/10 recommendations in the right community", sameComm)
	}
	if _, err := emb.Recommend(99, 5); err == nil {
		t.Fatal("non-subset node accepted")
	}
}

func TestRecommendKLargerThanGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildGraph(rng, 12, 48)
	emb, err := New(g, []int32{0, 1}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := emb.Recommend(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 12 {
		t.Fatalf("more recommendations (%d) than nodes", len(recs))
	}
}

func TestApplyEventsLargeBatchRebuildFallback(t *testing.T) {
	// A batch larger than 1/r_max must take the Theorem 3.7 rebuild path
	// and still leave a consistent, updated embedding.
	rng := rand.New(rand.NewSource(8))
	g := buildGraph(rng, 50, 200)
	cfg := Config{Dim: 4, RMax: 1e-2} // 1/r_max = 100
	emb, err := New(g, []int32{1, 2, 3, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Embedding()
	var events []Event
	for len(events) < 300 { // ≫ 1/r_max
		u, v := int32(rng.Intn(50)), int32(rng.Intn(50))
		if u != v {
			events = append(events, Event{U: u, V: v, Type: Insert})
		}
	}
	mustTB(emb.ApplyEvents(bgt, events))
	after := emb.Embedding()
	changed := false
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("embedding unchanged after 300-event rebuild-path batch")
	}
	// Further small updates still work on the rebuilt state.
	mustTB(emb.ApplyEvents(bgt, []Event{{U: 1, V: 49, Type: Insert}}))
}
