package core

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
)

// ShardRanges partitions n items into k contiguous near-equal ranges
// [lo, hi). The first n mod k ranges get one extra item, so sizes differ
// by at most one and the concatenation of the ranges covers [0, n)
// exactly. k is clamped to [1, max(n, 1)]: asking for more shards than
// items would produce empty shards, which the facade rejects earlier
// with a typed error.
func ShardRanges(n, k int) [][2]int {
	if k < 1 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	out := make([][2]int, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// MergedRoot is the coordinator's factorization assembled above the
// shard boundary: a rank-d truncated SVD of the full row-stacked
// proximity matrix M = [M_1; …; M_K], recovered from the per-shard
// roots without ever materializing M.
//
// Let shard i hold M_i ≈ U_i Σ_i V_iᵀ and let W_i = M_iᵀ·U_i (n×d_i),
// the projection of M_i onto its own left factors. Because the block-
// diagonal matrix diag(U_1, …, U_K) has orthonormal columns, the best
// rank-d approximation of M restricted to the span of the shard factors
// is obtained from one small SVD of W_all = [W_1 … W_K] ≈ P·Σ_g·Qᵀ:
//
//	U_g = diag(U_1, …, U_K) · Q   (|S|×d, rows grouped by shard)
//	Σ_g = Σ_g, V_g = P             (n×d)
//
// This is exactly the H-concat + re-SVD step Tree-SVD already uses
// between tree levels (Section 3.2), lifted one level above the
// per-shard trees.
//
// Mix[i] holds Q_i, the d_i×d block of rows of Q belonging to shard i.
// It lets the coordinator evaluate projections of M without touching M:
// Mᵀ·U_g = Σ_i W_i·Q_i, which drives both the reconstruction-error
// identity and the right embedding.
type MergedRoot struct {
	// Root is the merged factorization {U_g, Σ_g, V_g} with V_g = P.
	Root *linalg.SVDResult
	// Mix[i] is Q_i: shard i's d_i×d mixing block (a row-view into Q).
	Mix []*linalg.Dense
}

// MergeShardRoots merges per-shard root factorizations into one global
// rank≤rank root. roots[i] is shard i's tree root over M_i; ws[i] must
// be W_i = M_iᵀ·(roots[i].U) with the same column count as
// roots[i].Rank() and one row per graph node (all ws share n rows).
// The ws slices are only read.
func MergeShardRoots(roots []*linalg.SVDResult, ws []*linalg.Dense, rank, workers int) (*MergedRoot, error) {
	if len(roots) == 0 || len(roots) != len(ws) {
		return nil, fmt.Errorf("core: merge of %d roots with %d projections", len(roots), len(ws))
	}
	n := ws[0].Rows
	total, rowsS := 0, 0
	for i, r := range roots {
		if ws[i].Rows != n {
			return nil, fmt.Errorf("core: shard %d projection has %d rows, want %d", i, ws[i].Rows, n)
		}
		if ws[i].Cols != r.Rank() {
			return nil, fmt.Errorf("core: shard %d projection has %d cols for a rank-%d root", i, ws[i].Cols, r.Rank())
		}
		total += r.Rank()
		rowsS += r.U.Rows
	}
	if total == 0 {
		// Every shard is rank-0 (empty proximity): the merged root is the
		// empty factorization, mirroring svdLimited's degenerate case.
		mr := &MergedRoot{Root: &linalg.SVDResult{U: linalg.NewDense(rowsS, 0), V: linalg.NewDense(n, 0)}}
		mr.Mix = make([]*linalg.Dense, len(roots))
		for i := range mr.Mix {
			mr.Mix[i] = linalg.NewDense(0, 0)
		}
		return mr, nil
	}
	wall := linalg.GetDense(n, total)
	linalg.HCatInto(wall, ws...)
	svd := linalg.SVDTruncW(wall, rank, workers)
	linalg.PutDense(wall)
	d := svd.Rank()
	// Assemble U_g shard by shard: rows [rowOff, rowOff+|S_i|) are U_i·Q_i.
	ug := linalg.NewDense(rowsS, d)
	mix := make([]*linalg.Dense, len(roots))
	colOff, rowOff := 0, 0
	for i, r := range roots {
		di := r.Rank()
		// Q's rows are contiguous in svd.V.Data, so Q_i is a zero-copy view.
		qi := linalg.NewDenseData(di, d, svd.V.Data[colOff*d:(colOff+di)*d])
		mix[i] = qi
		if di > 0 && r.U.Rows > 0 {
			blk := linalg.MulW(r.U, qi, workers)
			copy(ug.Data[rowOff*d:(rowOff+r.U.Rows)*d], blk.Data)
		}
		colOff += di
		rowOff += r.U.Rows
	}
	return &MergedRoot{Root: &linalg.SVDResult{U: ug, S: svd.S, V: svd.U}, Mix: mix}, nil
}

// Projection returns Mᵀ·U_g = Σ_i W_i·Q_i (n×d) given the same ws slice
// passed to MergeShardRoots. It is the sharded counterpart of DynRow's
// TMulDense over the full matrix, at cost O(n·Σd_i·d) dense work.
func (mr *MergedRoot) Projection(ws []*linalg.Dense, workers int) *linalg.Dense {
	d := mr.Root.Rank()
	n := 0
	if len(ws) > 0 {
		n = ws[0].Rows
	}
	acc := linalg.NewDense(n, d)
	for i, w := range ws {
		if i >= len(mr.Mix) || mr.Mix[i].Rows == 0 {
			continue
		}
		p := linalg.MulW(w, mr.Mix[i], workers)
		for j, v := range p.Data {
			acc.Data[j] += v
		}
	}
	return acc
}

// RightEmbedding recovers Y = Ṽ_d·√Σ for the merged root, matching
// RightEmbeddingOfW applied to the full matrix: Mᵀ·U_g scaled per
// column by 1/√σ (zero where σ is numerically zero).
func (mr *MergedRoot) RightEmbedding(ws []*linalg.Dense, workers int) *linalg.Dense {
	y := mr.Projection(ws, workers)
	scale := make([]float64, len(mr.Root.S))
	for i, s := range mr.Root.S {
		if s > 0 {
			scale[i] = 1 / math.Sqrt(s)
		}
	}
	return y.MulDiag(scale)
}

// ReconstructionError returns ‖M − U_g·U_gᵀ·M‖_F via the projection
// identity ‖M‖²_F − ‖U_gᵀM‖²_F, given frob = ‖M‖_F (the root-sum-square
// of the per-shard block norms) and the ws slice from the merge. It is
// the sharded counterpart of Tree.ReconstructionError.
func (mr *MergedRoot) ReconstructionError(ws []*linalg.Dense, frob float64, workers int) float64 {
	if mr.Root.Rank() == 0 {
		return frob
	}
	proj := mr.Projection(ws, workers).FrobNorm()
	diff := frob*frob - proj*proj
	if diff < 0 {
		diff = 0
	}
	return math.Sqrt(diff)
}
