package ppr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// randGraph builds a random directed graph where every node has at least
// one out-edge (matching the paper's mature-graph regime).
func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	for v := int32(0); int(v) < n; v++ {
		for {
			u := int32(rng.Intn(n))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < m {
		g.InsertEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return g
}

// exactPPR computes π_s for every node by power iteration on the α-decay
// walk, using the same dangling self-loop convention as the push engine.
func exactPPR(g *graph.Graph, s int32, alpha float64, dir graph.Direction) []float64 {
	n := g.NumNodes()
	x := make([]float64, n)
	next := make([]float64, n)
	x[s] = 1
	// π_s = α Σ_t (1−α)^t walk-distribution_t; iterate the distribution.
	pi := make([]float64, n)
	weight := alpha
	for iter := 0; iter < 300; iter++ {
		for i := range pi {
			pi[i] += weight * x[i]
		}
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); int(u) < n; u++ {
			if x[u] == 0 {
				continue
			}
			nbrs := g.Neighbors(u, dir)
			if len(nbrs) == 0 {
				next[u] += x[u] // dangling self-loop
				continue
			}
			share := x[u] / float64(len(nbrs))
			for _, v := range nbrs {
				next[v] += share
			}
		}
		x, next = next, x
		weight *= 1 - alpha
		if weight < 1e-14 {
			break
		}
	}
	return pi
}

func TestPushEstimateWithinResidueBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 40, 160)
	params := Params{Alpha: 0.15, RMax: 1e-4}
	e := mustPPR(NewEngine(g, params))
	for _, dir := range []graph.Direction{graph.Forward, graph.Reverse} {
		st := NewState(3, dir)
		e.Push(st)
		pi := exactPPR(g, 3, params.Alpha, dir)
		bound := st.ResidueL1()
		for u := int32(0); int(u) < 40; u++ {
			if d := math.Abs(st.P[u] - pi[u]); d > bound+1e-9 {
				t.Fatalf("dir %v node %d: |p−π| = %g > Σ|r| = %g", dir, u, d, bound)
			}
		}
		// Mass conservation: Σp + Σr == 1 for a fresh push.
		var total float64
		for _, v := range st.P {
			total += v
		}
		for _, v := range st.R {
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("dir %v: p+r mass = %g, want 1", dir, total)
		}
	}
}

func TestPushInvariant(t *testing.T) {
	// After any number of pushes: π_s(u) = p_s(u) + Σ_v r_s(v)·π_v(u).
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 25, 75)
	params := Params{Alpha: 0.2, RMax: 1e-3}
	e := mustPPR(NewEngine(g, params))
	st := NewState(7, graph.Forward)
	e.Push(st)
	piAll := make([][]float64, 25)
	for v := int32(0); v < 25; v++ {
		piAll[v] = exactPPR(g, v, params.Alpha, graph.Forward)
	}
	for u := int32(0); u < 25; u++ {
		rhs := st.P[u]
		for v, r := range st.R {
			rhs += r * piAll[v][u]
		}
		if d := math.Abs(rhs - piAll[7][u]); d > 1e-6 {
			t.Fatalf("invariant violated at %d: %g vs %g", u, rhs, piAll[7][u])
		}
	}
}

func TestPushTerminatesBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 50, 250)
	params := Params{Alpha: 0.15, RMax: 1e-3}
	e := mustPPR(NewEngine(g, params))
	st := NewState(0, graph.Forward)
	e.Push(st)
	for u, r := range st.R {
		if math.Abs(r) > params.RMax*math.Max(float64(g.OutDeg(u)), 1)+1e-12 {
			t.Fatalf("node %d residue %g above threshold", u, r)
		}
	}
}

func TestDynamicPushMatchesScratch(t *testing.T) {
	// The central Algorithm 2 property: after incremental updates, the
	// estimate is still within Σ|r| of the true PPR on the new graph.
	rng := rand.New(rand.NewSource(4))
	g := randGraph(rng, 30, 120)
	params := Params{Alpha: 0.15, RMax: 1e-4}
	e := mustPPR(NewEngine(g, params))
	st := NewState(5, graph.Forward)
	e.Push(st)

	// A batch of random events (inserts and deletes), keeping min
	// out-degree ≥ 1 so the formulas stay exact.
	var events []graph.Event
	for len(events) < 40 {
		u, v := int32(rng.Intn(30)), int32(rng.Intn(30))
		if rng.Float64() < 0.7 {
			if !g.HasEdge(u, v) && u != v {
				events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
				g.InsertEdge(u, v)
				e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Insert})
			}
		} else if g.HasEdge(u, v) && g.OutDeg(u) > 1 {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Delete})
			g.DeleteEdge(u, v)
			e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Delete})
		}
	}
	e.Push(st)

	pi := exactPPR(g, 5, params.Alpha, graph.Forward)
	bound := st.ResidueL1() + 1e-9
	for u := int32(0); u < 30; u++ {
		if d := math.Abs(st.P[u] - pi[u]); d > bound {
			t.Fatalf("after %d events, node %d: |p−π| = %g > bound %g", len(events), u, d, bound)
		}
	}
}

func TestDynamicPushInvariantExact(t *testing.T) {
	// Stronger check: the push invariant itself holds exactly after the
	// Algorithm 2 adjustments (before and after re-pushing).
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 20, 70)
	params := Params{Alpha: 0.25, RMax: 1e-3}
	e := mustPPR(NewEngine(g, params))
	st := NewState(2, graph.Forward)
	e.Push(st)

	// One insert event.
	var u, v int32
	for {
		u, v = int32(rng.Intn(20)), int32(rng.Intn(20))
		if u != v && !g.HasEdge(u, v) {
			break
		}
	}
	g.InsertEdge(u, v)
	e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Insert})

	piAll := make([][]float64, 20)
	for w := int32(0); w < 20; w++ {
		piAll[w] = exactPPR(g, w, params.Alpha, graph.Forward)
	}
	for w := int32(0); w < 20; w++ {
		rhs := st.P[w]
		for x, r := range st.R {
			rhs += r * piAll[x][w]
		}
		if d := math.Abs(rhs - piAll[2][w]); d > 1e-6 {
			t.Fatalf("post-adjust invariant violated at %d: %g vs %g (event %d→%d)", w, rhs, piAll[2][w], u, v)
		}
	}
}

func TestSinkTransitionInvariant(t *testing.T) {
	// A sink node with settled mass gains its first out-edge, then loses
	// it again: the push invariant must hold exactly through both
	// transitions under the self-loop convention.
	alpha := 0.2
	params := Params{Alpha: alpha, RMax: 1e-4}
	g := graph.New(4)
	g.InsertEdge(0, 1)
	g.InsertEdge(1, 2)
	g.InsertEdge(2, 0)
	g.InsertEdge(2, 3)
	// Node 3 is a sink reachable from everywhere.
	e := mustPPR(NewEngine(g, params))
	st := NewState(0, graph.Forward)
	e.Push(st)
	if st.P[3] == 0 {
		t.Fatal("test premise broken: sink holds no mass")
	}

	checkInvariant := func(label string) {
		t.Helper()
		piAll := make([][]float64, 4)
		for v := int32(0); v < 4; v++ {
			piAll[v] = exactPPR(g, v, alpha, graph.Forward)
		}
		for u := int32(0); u < 4; u++ {
			rhs := st.P[u]
			for v, r := range st.R {
				rhs += r * piAll[v][u]
			}
			if d := math.Abs(rhs - piAll[0][u]); d > 1e-6 {
				t.Fatalf("%s: invariant violated at %d: %g vs %g", label, u, rhs, piAll[0][u])
			}
		}
	}

	// Sink gains its first out-edge.
	g.InsertEdge(3, 1)
	e.AdjustEvent(st, graph.Event{U: 3, V: 1, Type: graph.Insert})
	checkInvariant("after sink→deg1 insert")
	e.Push(st)
	checkInvariant("after repair push")

	// And becomes a sink again.
	g.DeleteEdge(3, 1)
	e.AdjustEvent(st, graph.Event{U: 3, V: 1, Type: graph.Delete})
	checkInvariant("after deg1→sink delete")
	e.Push(st)
	checkInvariant("after final push")
}

func TestLongStreamWithSinkChurn(t *testing.T) {
	// Stress: a growing stream where nodes regularly transition in and
	// out of sink state. The estimate must stay within the residue bound
	// of the exact PPR at the end.
	rng := rand.New(rand.NewSource(99))
	params := Params{Alpha: 0.15, RMax: 1e-4}
	g := graph.New(30)
	for v := int32(0); v < 10; v++ {
		g.InsertEdge(v, (v+1)%10)
	}
	e := mustPPR(NewEngine(g, params))
	st := NewState(0, graph.Forward)
	e.Push(st)
	for step := 0; step < 400; step++ {
		u := int32(rng.Intn(30))
		v := int32(rng.Intn(30))
		if u == v {
			continue
		}
		if rng.Float64() < 0.65 {
			if g.InsertEdge(u, v) {
				e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Insert})
			}
		} else if g.HasEdge(u, v) {
			g.DeleteEdge(u, v)
			e.AdjustEvent(st, graph.Event{U: u, V: v, Type: graph.Delete})
		}
		if step%50 == 49 {
			e.Push(st)
		}
	}
	e.Push(st)
	pi := exactPPR(g, 0, params.Alpha, graph.Forward)
	bound := st.ResidueL1() + 1e-6
	for u := int32(0); u < 30; u++ {
		if d := math.Abs(st.P[u] - pi[u]); d > bound {
			t.Fatalf("after sink churn, node %d: |p−π| = %g > bound %g", u, d, bound)
		}
	}
}

func TestAdjustEventNoEstimateIsNoOp(t *testing.T) {
	g := graph.New(3)
	g.InsertEdge(0, 1)
	g.InsertEdge(1, 2)
	e := mustPPR(NewEngine(g, Params{Alpha: 0.2, RMax: 0.1}))
	st := NewState(0, graph.Forward)
	// No push yet: p is empty, so any adjustment must be a no-op.
	g.InsertEdge(2, 0)
	e.AdjustEvent(st, graph.Event{U: 2, V: 0, Type: graph.Insert})
	if len(st.P) != 0 || len(st.R) != 1 || st.R[0] != 1 {
		t.Fatal("adjustment with zero estimate mutated state")
	}
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{{Alpha: 0, RMax: 0.1}, {Alpha: 1, RMax: 0.1}, {Alpha: 0.2, RMax: 0}} {
		if bad.Validate() == nil {
			t.Fatalf("accepted bad params %+v", bad)
		}
	}
	if (Params{Alpha: 0.15, RMax: 1e-5}).Validate() != nil {
		t.Fatal("rejected good params")
	}
}

func TestSmallerRMaxTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randGraph(rng, 40, 200)
	pi := exactPPR(g, 0, 0.15, graph.Forward)
	var prevErr = math.Inf(1)
	for _, rmax := range []float64{1e-2, 1e-3, 1e-4, 1e-5} {
		e := mustPPR(NewEngine(g, Params{Alpha: 0.15, RMax: rmax}))
		st := NewState(0, graph.Forward)
		e.Push(st)
		var errSum float64
		for u := int32(0); u < 40; u++ {
			errSum += math.Abs(st.P[u] - pi[u])
		}
		if errSum > prevErr*1.5+1e-12 {
			t.Fatalf("rmax %g error %g worse than previous %g", rmax, errSum, prevErr)
		}
		// Tight theoretical bound: Σ_u |p−π| ≤ Σ_v |r(v)| because each
		// π_v sums to 1 over targets.
		if bound := st.ResidueL1(); errSum > bound+1e-9 {
			t.Fatalf("rmax %g: L1 error %g exceeds residue mass %g", rmax, errSum, bound)
		}
		prevErr = errSum
	}
}
