package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/obs"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// churnTree builds a tree over a low-rank matrix with the incremental
// update path enabled and returns it with its rng.
func churnTree(t *testing.T, cfg Config) (*Tree, *sparse.DynRow, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	m := sparse.NewDynRow(40, 64, cfg.Blocks())
	fillLowRank(rng, m, cfg.Rank, 0.01, 0.5)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	return tr, m, rng
}

// perturbBlock nudges a handful of existing entries of block j just hard
// enough to trip the Eqn. 2 trigger at the given δ while keeping the delta
// small relative to it (eligible for the incremental path).
func perturbBlock(m *sparse.DynRow, rng *rand.Rand, j int, scale float64, touched int) {
	lo, hi := m.BlockRange(j)
	for i := 0; i < touched; i++ {
		r := rng.Intn(m.Rows())
		c := lo + rng.Intn(hi-lo)
		m.Set(r, c, m.Get(r, c)+scale*rng.NormFloat64())
	}
}

func TestUpdatePathAbsorbsSmallDeltas(t *testing.T) {
	cfg := testConfig(6)
	cfg.Delta = 0.001 // sensitive trigger so modest churn violates
	cfg.SVDUpdate = true
	// Wide-open thresholds: every violating block with cached factors goes
	// through the incremental path, making the hit deterministic.
	cfg.UpdateMaxRel = 1e6
	cfg.UpdateTailFrac = 1e6
	tr, m, rng := churnTree(t, cfg)

	var events []obs.TraceEvent
	tr.SetTrace(func(ev obs.TraceEvent) { events = append(events, ev) })
	totalUpdated := 0
	for round := 0; round < 6; round++ {
		perturbBlock(m, rng, round%tr.m.NumBlocks(), 0.05, 3)
		if _, err := tr.Update(bgt); err != nil {
			t.Fatal(err)
		}
		st := tr.Stats()
		totalUpdated += st.Level1Updated
		if err := tr.AuditShapes(); err != nil {
			t.Fatal(err)
		}
		if err := tr.AuditBlocks(); err != nil {
			t.Fatal(err)
		}
	}
	if totalUpdated == 0 {
		t.Fatal("incremental path never fired under small-delta churn")
	}
	if tr.met.BlocksUpdated.Load() != uint64(totalUpdated) {
		t.Fatalf("metrics count %d updates, stats %d", tr.met.BlocksUpdated.Load(), totalUpdated)
	}
	sawUpdate := false
	for _, ev := range events {
		if ev.Kind == obs.TraceBlockUpdate {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Fatal("no TraceBlockUpdate event despite Level1Updated > 0")
	}
	// The factorization must keep tracking the live matrix: its residual
	// stays bounded by the per-block tails (triangle inequality over
	// blocks, with merge truncation slack).
	var tailSq, frob float64
	for j := 0; j < m.NumBlocks(); j++ {
		tailSq += tr.level1[j].tail * tr.level1[j].tail
		f := m.BlockFrobNorm(j)
		frob += f * f
	}
	recon := tr.ReconstructionError()
	if recon > 3*math.Sqrt(tailSq)+0.5*math.Sqrt(frob) {
		t.Fatalf("reconstruction error %g implausibly large after updates", recon)
	}
}

func TestUpdatePathDisabledIsUnchanged(t *testing.T) {
	run := func(enable bool) [][]float64 {
		cfg := testConfig(6)
		cfg.Delta = 0.001
		cfg.SVDUpdate = enable
		// Tiny tail budget: every eligible block falls back, so the
		// enabled run must still recompute exactly like the disabled one.
		cfg.UpdateTailFrac = 1e-300
		tr, m, rng := churnTree(t, cfg)
		for round := 0; round < 4; round++ {
			perturbBlock(m, rng, round%m.NumBlocks(), 0.05, 3)
			if _, err := tr.Update(bgt); err != nil {
				t.Fatal(err)
			}
		}
		emb := tr.Embedding()
		out := make([][]float64, emb.Rows)
		for i := range out {
			out[i] = append([]float64(nil), emb.Row(i)...)
		}
		return out
	}
	on, off := run(true), run(false)
	for i := range on {
		for k := range on[i] {
			if on[i][k] != off[i][k] {
				t.Fatalf("fallback-only run diverges from updates-off at (%d,%d): %g vs %g",
					i, k, on[i][k], off[i][k])
			}
		}
	}
}

func TestUpdateFallbackOnTailBudget(t *testing.T) {
	cfg := testConfig(6)
	cfg.Delta = 0.001
	cfg.SVDUpdate = true
	cfg.UpdateMaxRel = 1e6      // everything is eligible...
	cfg.UpdateTailFrac = 1e-300 // ...but there is no error budget: always fall back
	tr, m, rng := churnTree(t, cfg)
	for round := 0; round < 6; round++ {
		perturbBlock(m, rng, round%m.NumBlocks(), 0.05, 3)
		if _, err := tr.Update(bgt); err != nil {
			t.Fatal(err)
		}
		if tr.Stats().Level1Updated != 0 {
			t.Fatal("update committed despite zero tail budget")
		}
	}
	if tr.met.UpdateFallbacks.Load() == 0 {
		t.Fatal("conditioning fallback never triggered under zero tail budget")
	}
	if tr.met.BlocksUpdated.Load() != 0 {
		t.Fatal("BlocksUpdated counted with zero tail budget")
	}
	// Fallbacks reset provenance: every cache must replay cleanly.
	if err := tr.AuditBlocks(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatePathSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig(6)
	cfg.Delta = 0.001
	cfg.SVDUpdate = true
	cfg.UpdateMaxRel = 1e6
	cfg.UpdateTailFrac = 1e6
	tr, m, rng := churnTree(t, cfg)
	fired := 0
	for round := 0; fired == 0 && round < 10; round++ {
		perturbBlock(m, rng, round%m.NumBlocks(), 0.05, 3)
		if _, err := tr.Update(bgt); err != nil {
			t.Fatal(err)
		}
		fired += tr.Stats().Level1Updated
	}
	if fired == 0 {
		t.Fatal("no incremental update fired; cannot test round trip")
	}
	restored, err := RestoreTree(m, cfg, tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Restored caches keep their factors and error budgets bit-exact.
	for j := range tr.level1 {
		a, b := tr.level1[j], restored.level1[j]
		if (a.fac == nil) != (b.fac == nil) {
			t.Fatalf("block %d factor retention lost in round trip", j)
		}
		if a.updErr != b.updErr || a.tail != b.tail || a.seq != b.seq {
			t.Fatalf("block %d cache metadata drifted in round trip", j)
		}
	}
	if err := restored.AuditBlocks(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWithoutUpdatesOmitsFactors(t *testing.T) {
	cfg := testConfig(6)
	tr, _, _ := churnTree(t, cfg)
	snap := tr.Snapshot()
	if snap.Level1U != nil || snap.Level1S != nil || snap.Level1V != nil || snap.Level1UpdErr != nil {
		t.Fatal("updates-off snapshot carries factor slices")
	}
}

func TestConfigValidateUpdateKnobs(t *testing.T) {
	base := testConfig(4)
	for _, mut := range []func(*Config){
		func(c *Config) { c.UpdateMaxRel = -0.1 },
		func(c *Config) { c.UpdateTailFrac = -1 },
	} {
		c := base
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("accepted bad config %+v", c)
		}
	}
	c := base
	c.SVDUpdate = true
	if c.Validate() != nil {
		t.Fatal("rejected valid update config")
	}
	if c.updateMaxRel() != DefaultUpdateMaxRel || c.updateTailFrac() != DefaultUpdateTailFrac {
		t.Fatal("zero knobs do not resolve to defaults")
	}
	c.UpdateMaxRel, c.UpdateTailFrac = 0.3, 0.1
	if c.updateMaxRel() != 0.3 || c.updateTailFrac() != 0.1 {
		t.Fatal("explicit knobs not honored")
	}
}
