// Shard scaling benchmark (ISSUE 6 satellite). `make bench-shards` runs
// TestEmitShardBench, which drives the churnstress stream through the
// pipeline at Shards ∈ {1, 2, 4, 8} and writes BENCH_SHARDS.json:
// ApplyEvents batch throughput (events/sec, with the speedup over the
// 1-shard baseline) and Recommend latency (p50/p99 over repeated calls
// against live snapshots). BENCH_SHARDS_SHORT=1 shrinks the stream to a
// smoke-test size; `make ci` runs that variant to keep the harness from
// rotting without gating on machine-dependent numbers.
package treesvd

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/tree-svd/treesvd/internal/dataset"
)

// shardBenchStream is the churnstress workload: a mid-size graph under
// sustained mixed churn, sized so each batch carries real maintenance
// work (PPR pushes plus block re-factorizations) across ≥8 sources.
func shardBenchStream(short bool) (*Graph, []int32, [][]Event, Config) {
	subset := []int32{0, 7, 19, 42, 77, 123, 256, 391, 477, 512}
	nodes, batches, batchSize := 600, 24, 512
	if short {
		nodes, batches, batchSize = 560, 4, 96
	}
	initial, stream := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: nodes, MaxNodes: 620, Degree: 5,
		Batches: batches, BatchSize: batchSize,
		SelfLoopFrac: 0.05, DeleteFrac: 0.2, DupFrac: 0.05, MissFrac: 0.05, GrowFrac: 0.05,
		BigBatch: -1,
		Protect:  subset,
		Seed:     7,
	})
	cfg := Config{Dim: 16, Branch: 4, Levels: 3, MaxNodes: 620, Seed: 3,
		Workers: runtime.NumCPU()}
	return initial, subset, stream, cfg
}

// shardBenchRecord is one row of BENCH_SHARDS.json.
type shardBenchRecord struct {
	Shards         int     `json:"shards"`
	Batches        int     `json:"batches"`
	Events         int     `json:"events"`
	ApplyNs        int64   `json:"apply_ns_total"`
	EventsPerSec   float64 `json:"events_per_sec"`
	SpeedupVsOne   float64 `json:"speedup_vs_1shard"`
	RecommendP50Ns int64   `json:"recommend_p50_ns"`
	RecommendP99Ns int64   `json:"recommend_p99_ns"`
	CPUs           int     `json:"cpus"`
	Short          bool    `json:"short,omitempty"`
}

// TestEmitShardBench writes the machine-readable shard scaling table
// when BENCH_SHARDS_OUT names an output path (a no-op under plain
// `go test`). Throughput is wall-clock over the whole stream — the
// quantity the scatter/fan-out design trades on — rather than
// testing.Benchmark, because the apply cost is stateful: batch i's cost
// depends on batches before it, so every shard count must pay the
// identical sequence.
func TestEmitShardBench(t *testing.T) {
	out := os.Getenv("BENCH_SHARDS_OUT")
	if out == "" {
		t.Skip("set BENCH_SHARDS_OUT=path to emit BENCH_SHARDS.json")
	}
	short := os.Getenv("BENCH_SHARDS_SHORT") != ""
	samples := 400
	if short {
		samples = 60
	}

	var recs []shardBenchRecord
	var baseline float64
	for _, shards := range []int{1, 2, 4, 8} {
		initial, subset, stream, cfg := shardBenchStream(short)
		cfg.Shards = shards
		emb, err := New(initial, subset, cfg)
		if err != nil {
			t.Fatal(err)
		}
		events := 0
		start := time.Now()
		for i, b := range stream {
			if _, err := emb.ApplyEvents(bgt, b); err != nil {
				t.Fatalf("shards=%d batch %d: %v", shards, i, err)
			}
			events += len(b)
		}
		applyNs := time.Since(start).Nanoseconds()

		// Recommend latency against the live snapshot, round-robin over
		// the subset. The first call after a publish pays the lazy
		// coordinator merge; later calls reuse it — both belong in the
		// distribution a serving deployment would see.
		lat := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			src := subset[i%len(subset)]
			c := time.Now()
			if _, err := emb.Recommend(src, 10); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(c))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		perSec := float64(events) / (float64(applyNs) / 1e9)
		if shards == 1 {
			baseline = perSec
		}
		rec := shardBenchRecord{
			Shards: shards, Batches: len(stream), Events: events,
			ApplyNs: applyNs, EventsPerSec: perSec, SpeedupVsOne: perSec / baseline,
			RecommendP50Ns: lat[len(lat)/2].Nanoseconds(),
			RecommendP99Ns: lat[len(lat)*99/100].Nanoseconds(),
			CPUs:           runtime.NumCPU(), Short: short,
		}
		recs = append(recs, rec)
		t.Logf("shards=%d: %.0f events/s (%.2fx), recommend p50 %s p99 %s",
			shards, rec.EventsPerSec, rec.SpeedupVsOne,
			time.Duration(rec.RecommendP50Ns), time.Duration(rec.RecommendP99Ns))
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote", out)
}
