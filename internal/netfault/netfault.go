// Package netfault wraps a net.Listener with scripted connection faults
// — resets, latency spikes, partial writes, and byte corruption — so the
// serving stack can be stormed with the network failures production
// clients actually cause. Faults are deterministic: the plan selects
// which accepted connections misbehave (every Nth, after a skip) and at
// which byte offset the fault lands, so a failing storm run replays.
//
// Each faulted connection misbehaves once (one-shot) and in one
// direction; everything else passes through. A partial write or a
// corrupted response stream is exactly what the wire package's
// torn-versus-corrupt frame classifier exists to tell apart, so the
// chaos suite drives both through it.
package netfault

import (
	"net"
	"sync"
	"time"
)

// Mode selects the fault a marked connection injects.
type Mode int

const (
	// Reset closes the connection with a TCP RST (SO_LINGER 0) once the
	// response stream reaches AfterBytes — the mid-response connection
	// loss a crashing peer or flipped LB produces.
	Reset Mode = iota
	// Latency stalls the first response write by Delay, once — a
	// network hiccup the request eventually survives.
	Latency
	// PartialWrite forwards the response only up to AfterBytes, then
	// resets: the client sees a torn prefix (io.ErrUnexpectedEOF land).
	PartialWrite
	// CorruptWrite flips one bit in the response byte at offset
	// AfterBytes and carries on — the stream stays the right length but
	// fails checksum verification (wire.ErrCorruptFrame land).
	CorruptWrite
	// CorruptRead flips one bit in the request byte at offset
	// AfterBytes: the server-side decoder sees the corruption.
	CorruptRead
)

func (m Mode) String() string {
	switch m {
	case Reset:
		return "reset"
	case Latency:
		return "latency"
	case PartialWrite:
		return "partialwrite"
	case CorruptWrite:
		return "corruptwrite"
	case CorruptRead:
		return "corruptread"
	}
	return "unknown"
}

// Plan scripts which connections fault and how.
type Plan struct {
	Mode Mode
	// EveryN marks every Nth accepted connection (after SkipFirst) as
	// faulted; 0 or 1 means every connection.
	EveryN int
	// SkipFirst lets the first K connections through untouched (e.g. a
	// warmup or health check).
	SkipFirst int
	// Delay is the Latency stall; 0 means 50ms.
	Delay time.Duration
	// AfterBytes is the byte offset in the faulted direction's stream
	// where the fault lands (Reset/PartialWrite cut there, Corrupt*
	// flips the bit there). 0 faults at the first byte.
	AfterBytes int
}

// Listener wraps an inner listener; obtain one with Wrap and serve on
// it as usual. Safe for concurrent use.
type Listener struct {
	net.Listener
	plan Plan

	mu       sync.Mutex
	accepted int
	faulted  int
}

// Wrap returns a fault-injecting view of ln.
func Wrap(ln net.Listener, plan Plan) *Listener {
	if plan.EveryN <= 0 {
		plan.EveryN = 1
	}
	if plan.Delay <= 0 {
		plan.Delay = 50 * time.Millisecond
	}
	return &Listener{Listener: ln, plan: plan}
}

// Accept accepts the next connection, wrapping it with the fault when
// the plan marks it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.accepted++
	marked := l.accepted > l.plan.SkipFirst &&
		(l.accepted-l.plan.SkipFirst-1)%l.plan.EveryN == 0
	if marked {
		l.faulted++
	}
	l.mu.Unlock()
	if !marked {
		return c, nil
	}
	return &conn{Conn: c, plan: l.plan}, nil
}

// Accepted returns how many connections have been accepted.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// Faulted returns how many connections were marked to misbehave.
func (l *Listener) Faulted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faulted
}

// conn is one marked connection. The fault is one-shot: once delivered,
// the connection behaves normally (if it still exists).
type conn struct {
	net.Conn
	plan Plan

	mu         sync.Mutex
	rOff, wOff int
	fired      bool
}

// reset closes the connection so the peer sees a hard RST rather than a
// graceful FIN, where the transport supports it.
func (c *conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// flipAt flips one bit of p if the scripted stream offset falls inside
// it; off is the stream offset of p[0] and advances by len(p).
func (c *conn) flipAt(p []byte, off *int) {
	at := c.plan.AfterBytes - *off
	if !c.fired && at >= 0 && at < len(p) {
		p[at] ^= 1 << 5
		c.fired = true
	}
	*off += len(p)
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.plan.Mode == CorruptRead && n > 0 {
		c.mu.Lock()
		c.flipAt(p[:n], &c.rOff)
		c.mu.Unlock()
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	switch c.plan.Mode {
	case Latency:
		if !c.fired {
			c.fired = true
			c.mu.Unlock()
			time.Sleep(c.plan.Delay)
			return c.Conn.Write(p)
		}
	case Reset:
		if !c.fired && c.wOff+len(p) > c.plan.AfterBytes {
			c.fired = true
			c.mu.Unlock()
			c.reset()
			return 0, net.ErrClosed
		}
		c.wOff += len(p)
	case PartialWrite:
		if !c.fired && c.wOff+len(p) > c.plan.AfterBytes {
			c.fired = true
			keep := c.plan.AfterBytes - c.wOff
			c.mu.Unlock()
			n := 0
			if keep > 0 {
				n, _ = c.Conn.Write(p[:keep])
			}
			c.reset()
			return n, net.ErrClosed
		}
		c.wOff += len(p)
	case CorruptWrite:
		// Copy before flipping: the caller's buffer is not ours to edit.
		if at := c.plan.AfterBytes - c.wOff; !c.fired && at >= 0 && at < len(p) {
			q := append([]byte(nil), p...)
			q[at] ^= 1 << 5
			c.fired = true
			c.wOff += len(p)
			c.mu.Unlock()
			return c.Conn.Write(q)
		}
		c.wOff += len(p)
	}
	c.mu.Unlock()
	return c.Conn.Write(p)
}
