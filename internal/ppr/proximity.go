package ppr

import (
	"context"
	"math"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Transform selects the non-linear operation applied to the scaled PPR
// scores (Section 2.2 of the paper: "e.g., log or sigmoid").
type Transform uint8

const (
	// Log is the STRAP convention M = log(arg) for arg > 1, else 0.
	Log Transform = iota
	// Sigmoid maps arg > 1 to 2/(1+e^(−(arg−1))) − 1 ∈ (0,1): a bounded
	// alternative that compresses heavy-tailed proximity scores harder.
	Sigmoid
)

// Proximity maintains the STRAP-style proximity matrix of Section 3.1,
//
//	M_S(s,v) = f( p_s(v)/r_max + p⊤_s(v)/r_max ),
//
// kept only where the argument exceeds 1 (the STRAP convention of
// retaining proximity scores no smaller than r_max), with f the chosen
// Transform (log by default). It is stored in a column-blocked DynRow so
// Tree-SVD's lazy update can read per-block Frobenius norms and deltas in
// O(1).
type Proximity struct {
	Sub *Subset
	M   *sparse.DynRow
	// Fn is the non-linearity; the zero value is Log.
	Fn Transform
}

// NewProximity builds the proximity matrix over maxNodes columns split
// into nblocks column blocks. maxNodes must bound every node id the
// dynamic stream will ever touch (graph growth never reallocates M).
func NewProximity(sub *Subset, maxNodes, nblocks int) *Proximity {
	pr := &Proximity{Sub: sub, M: sparse.NewDynRow(len(sub.S), maxNodes, nblocks)}
	for i := range sub.S {
		pr.refreshRowFull(i)
	}
	return pr
}

// RestoreProximity rewires a persisted proximity matrix onto a restored
// Subset without recomputation. Used by the save/load path.
func RestoreProximity(sub *Subset, m *sparse.DynRow) *Proximity {
	return &Proximity{Sub: sub, M: m}
}

// value computes M_S(s,v) from the two estimate vectors.
func (pr *Proximity) value(i int, v int32) float64 {
	rmax := pr.Sub.Engine.Params.RMax
	arg := (pr.Sub.Fwd[i].P[v] + pr.Sub.Rev[i].P[v]) / rmax
	if arg <= 1 {
		return 0
	}
	if pr.Fn == Sigmoid {
		return 2/(1+math.Exp(-(arg-1))) - 1
	}
	return math.Log(arg)
}

// NewProximityWith builds the proximity matrix with an explicit transform.
func NewProximityWith(sub *Subset, maxNodes, nblocks int, fn Transform) *Proximity {
	pr := &Proximity{Sub: sub, M: sparse.NewDynRow(len(sub.S), maxNodes, nblocks), Fn: fn}
	for i := range sub.S {
		pr.refreshRowFull(i)
	}
	return pr
}

// refreshRowFull recomputes row i from scratch: every column currently in
// the row or in either estimate vector.
func (pr *Proximity) refreshRowFull(i int) {
	// Clear stale columns first.
	touched := make(map[int32]struct{})
	for v := range pr.Sub.Fwd[i].P {
		touched[v] = struct{}{}
	}
	for v := range pr.Sub.Rev[i].P {
		touched[v] = struct{}{}
	}
	for v := range touched {
		pr.M.Set(i, int(v), pr.value(i, v))
	}
	// Columns that held a value before but have no estimate mass now.
	for _, v := range pr.M.RowColumns(i) {
		if _, ok := touched[v]; !ok {
			pr.M.Set(i, int(v), 0)
		}
	}
	pr.drainTouched(i)
}

// Refresh folds the estimate changes accumulated in the states' Touched
// sets into M and clears them. Call after Subset.ApplyEvents.
func (pr *Proximity) Refresh() {
	for i := range pr.Sub.S {
		for v := range pr.Sub.Fwd[i].Touched {
			pr.M.Set(i, int(v), pr.value(i, v))
		}
		for v := range pr.Sub.Rev[i].Touched {
			pr.M.Set(i, int(v), pr.value(i, v))
		}
		pr.drainTouched(i)
	}
}

// RefreshAll recomputes every row from scratch; pair with Subset.Rebuild.
func (pr *Proximity) RefreshAll() {
	for i := range pr.Sub.S {
		pr.refreshRowFull(i)
	}
}

func (pr *Proximity) drainTouched(i int) {
	pr.Sub.Fwd[i].Touched = make(map[int32]struct{})
	pr.Sub.Rev[i].Touched = make(map[int32]struct{})
}

// ApplyEvents advances the graph and the proximity matrix through a batch
// of edge events: Algorithm 2 on every state, then incremental M refresh.
// On error (context cancellation mid-repair) M has not absorbed the
// changes; callers must recover with Sub.Rebuild + RefreshAll before
// trusting the matrix again.
func (pr *Proximity) ApplyEvents(ctx context.Context, events []graph.Event) error {
	if err := pr.Sub.ApplyEvents(ctx, events); err != nil {
		return err
	}
	pr.Refresh()
	return nil
}

// RepairApplied is ApplyEvents for an already-advanced graph: the
// coordinator of a sharded embedder applies the batch to the shared
// graph once (ppr.ApplyAll) and hands the applied slice to every shard's
// proximity, which repairs its own states and refreshes its own rows.
// Error semantics match ApplyEvents.
func (pr *Proximity) RepairApplied(ctx context.Context, applied []Applied) error {
	if err := pr.Sub.Repair(ctx, applied); err != nil {
		return err
	}
	pr.Refresh()
	return nil
}
