package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForErrCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%50) + 1
		w := int(seed%7) + 1
		seen := make([]int32, n)
		err := ForErr(context.Background(), n, w, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForErrNilContext(t *testing.T) {
	var count int32
	if err := ForErr(nil, 8, 4, func(int) error {
		atomic.AddInt32(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("nil-ctx ForErr ran %d tasks, want 8", count)
	}
}

func TestForErrPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := ForErr(context.Background(), 100, w, func(i int) error {
			if i == 17 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("w=%d: got %v, want boom", w, err)
		}
	}
}

func TestForErrStopsSchedulingAfterError(t *testing.T) {
	// After the first error no *new* indices should start (in-flight tasks
	// may finish). With a sequential loop this is exact.
	var ran int32
	err := ForErr(context.Background(), 1000, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 4 {
		t.Fatalf("sequential ForErr ran %d tasks after early error, want 4", ran)
	}
	// Parallel: bounded well below n (each of the w workers can have at
	// most a handful in flight when the stop flag flips).
	ran = 0
	_ = ForErr(context.Background(), 100000, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return errors.New("immediate")
	})
	if ran > 1000 {
		t.Fatalf("parallel ForErr kept scheduling after error: %d tasks ran", ran)
	}
}

func TestForErrCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForErr(ctx, 100000, 4, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran == 100000 {
		t.Fatal("cancellation did not stop scheduling")
	}
}

func TestForErrPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		var ran int32
		err := ForErr(ctx, 50, w, func(int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: got %v, want context.Canceled", w, err)
		}
		if w == 1 && ran != 0 {
			t.Fatalf("pre-cancelled sequential loop ran %d tasks", ran)
		}
	}
}

func TestForErrRecoversPanics(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForErr(context.Background(), 20, w, func(i int) error {
			if i == 7 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("w=%d: panic not converted to error: %v", w, err)
		}
	}
}

func TestForWorkerErrWorkerIDsInRange(t *testing.T) {
	if err := ForWorkerErr(context.Background(), 40, 4, func(worker, i int) error {
		if worker < 0 || worker >= 4 {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
