package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// lowerFlopGate drops the goroutine-dispatch floor so small test matrices
// exercise the genuinely parallel kernel paths; restored via t.Cleanup.
func lowerFlopGate(t *testing.T) {
	t.Helper()
	old := parMinFlops
	parMinFlops = 1
	t.Cleanup(func() { parMinFlops = old })
}

// sparseRandDense draws a matrix with a mix of zero and N(0,1) entries so
// the zero-skip dispatch in axpyPair is exercised.
func sparseRandDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		if rng.Intn(3) != 0 {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// sumTol returns the comparison tolerance for a reduction over k terms of
// magnitude ≤ scale: reassociated summation error grows with k.
func sumTol(k int, scale float64) float64 {
	return 1e-12 * float64(k+1) * math.Max(scale, 1)
}

func maxAbs(m *Dense) float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// kernelCase is one (op, result, reference, reductionLength) quadruple.
type kernelCase struct {
	op       string
	got, ref *Dense
	k        int
}

// TestKernelsMatchNaive drives every product kernel across shapes that
// cover the degenerate (empty, single row/column), the sub-tile, and the
// tile-crossing regimes (a.Cols > tileK, b.Cols > tileJ), for worker
// budgets on both sides of the dispatch path, against naive
// triple-loop references. It also asserts the cross-worker-count
// determinism contract: every dense kernel must return bit-identical
// results for any worker budget.
func TestKernelsMatchNaive(t *testing.T) {
	lowerFlopGate(t)
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ r, k, c int }{
		{0, 0, 0}, {0, 3, 4}, {3, 0, 4}, {3, 4, 0},
		{1, 1, 1}, {1, 5, 2}, {5, 1, 3}, {3, 7, 5},
		{33, 65, 17},   // crosses tileK in the reduction dim
		{20, 130, 21},  // two tileK panels plus remainder
		{4, 70, 520},   // crosses tileJ in the output dim
		{13, 129, 514}, // crosses both, odd remainders
	}
	for _, sh := range shapes {
		a := sparseRandDense(rng, sh.r, sh.k)
		b := sparseRandDense(rng, sh.k, sh.c)
		at := a.T()
		bt := b.T()
		for _, w := range []int{0, 1, 2, 3, 8} {
			cases := []kernelCase{
				{"MulW", MulW(a, b, w), naiveMul(a, b), sh.k},
				{"MulTW", MulTW(a, bt, w), naiveMul(a, b), sh.k},
				{"TMulW", TMulW(at, b, w), naiveMul(a, b), sh.k},
				{"GramW", GramW(a, w), naiveMul(at, a), sh.r},
				{"GramTW", GramTW(a, w), naiveMul(a, at), sh.k},
			}
			for _, c := range cases {
				tol := sumTol(c.k, maxAbs(c.ref))
				if d := MaxAbsDiff(c.got, c.ref); d > tol {
					t.Fatalf("%s shape %v workers %d: diff %g > tol %g", c.op, sh, w, d, tol)
				}
			}
			if w > 1 {
				pairs := []kernelCase{
					{"MulW", MulW(a, b, w), MulW(a, b, 1), 0},
					{"MulTW", MulTW(a, bt, w), MulTW(a, bt, 1), 0},
					{"TMulW", TMulW(at, b, w), TMulW(at, b, 1), 0},
					{"GramW", GramW(a, w), GramW(a, 1), 0},
					{"GramTW", GramTW(a, w), GramTW(a, 1), 0},
				}
				for _, c := range pairs {
					if d := MaxAbsDiff(c.got, c.ref); d != 0 {
						t.Fatalf("%s shape %v: workers=%d differs from serial by %g (must be bit-identical)", c.op, sh, w, d)
					}
				}
			}
		}
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 67; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var ref, scale float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			ref += a[i] * b[i]
			if x := math.Abs(a[i] * b[i]); x > scale {
				scale = x
			}
		}
		if d := math.Abs(Dot(a, b) - ref); d > sumTol(n, scale) {
			t.Fatalf("Dot len %d: diff %g", n, d)
		}
	}
}

func TestHCatIntoMatchesHCat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ms := []*Dense{sparseRandDense(rng, 6, 3), sparseRandDense(rng, 6, 0), sparseRandDense(rng, 6, 5)}
	want := HCat(ms...)
	dst := GetDense(6, 8)
	if d := MaxAbsDiff(HCatInto(dst, ms...), want); d != 0 {
		t.Fatalf("HCatInto differs from HCat by %g", d)
	}
	PutDense(dst)
	defer func() {
		if recover() == nil {
			t.Fatal("HCatInto accepted a column-count mismatch")
		}
	}()
	HCatInto(NewDense(6, 9), ms...)
}

func TestGetDenseReturnsZeroed(t *testing.T) {
	m := GetDense(4, 5)
	for i := range m.Data {
		m.Data[i] = 42
	}
	PutDense(m)
	// Same capacity class: likely the same backing array, must be zeroed.
	n := GetDense(5, 4)
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("pooled matrix not zeroed at %d: %g", i, v)
		}
	}
	if n.Rows != 5 || n.Cols != 4 {
		t.Fatalf("pooled matrix has shape %d×%d", n.Rows, n.Cols)
	}
	PutDense(n)
}

// TestSymEigWMatchesSerial checks the cross-worker determinism of the
// parallel tred2/tql2 passes: with the dispatch gate lowered, the
// worker-budgeted eigensolve must be bit-identical to the serial one.
func TestSymEigWMatchesSerial(t *testing.T) {
	lowerFlopGate(t)
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 9, 40, 130} {
		b := sparseRandDense(rng, n, n)
		a := Add(b, b.T())
		l1, v1 := SymEigW(a, 1)
		for _, w := range []int{2, 8} {
			lw, vw := SymEigW(a, w)
			for i := range l1 {
				if l1[i] != lw[i] {
					t.Fatalf("n=%d workers=%d: eigenvalue %d differs: %g vs %g", n, w, i, l1[i], lw[i])
				}
			}
			if d := MaxAbsDiff(v1, vw); d != 0 {
				t.Fatalf("n=%d workers=%d: eigenvectors differ by %g (must be bit-identical)", n, w, d)
			}
		}
	}
}

// TestJacobiSymEigWParallel validates the tournament-ordered parallel
// Jacobi against the tred2/tql2 solver: same spectrum (to tolerance), an
// orthonormal V, and an accurate reconstruction. Bit-equality with the
// cyclic order is not expected — the pivot schedule differs.
func TestJacobiSymEigWParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 80 // ≥ jacobiParMinN so workers>1 takes the tournament path
	b := sparseRandDense(rng, n, n)
	a := Add(b, b.T())
	ref, _ := SymEig(a)
	for _, w := range []int{2, 4} {
		lam, v := JacobiSymEigW(a, w)
		scale := math.Abs(ref[0]) + 1
		for i := range ref {
			if math.Abs(lam[i]-ref[i]) > 1e-8*scale {
				t.Fatalf("workers=%d: eigenvalue %d: %g vs %g", w, i, lam[i], ref[i])
			}
		}
		checkOrthonormalCols(t, v, 1e-9, "parallel Jacobi V")
		vt := v.T()
		recon := Mul(v.MulDiag(lam), vt) // v is a fresh matrix per call
		if d := MaxAbsDiff(recon, a); d > 1e-8*scale {
			t.Fatalf("workers=%d: reconstruction off by %g", w, d)
		}
	}
}

func TestQRThinWMatchesSerial(t *testing.T) {
	lowerFlopGate(t)
	rng := rand.New(rand.NewSource(23))
	for _, sh := range []struct{ m, n int }{{1, 1}, {7, 3}, {40, 40}, {130, 33}} {
		a := sparseRandDense(rng, sh.m, sh.n)
		q1, r1 := QRThinW(a, 1)
		for _, w := range []int{2, 8} {
			qw, rw := QRThinW(a, w)
			if d := MaxAbsDiff(q1, qw); d != 0 {
				t.Fatalf("%v workers=%d: Q differs by %g (must be bit-identical)", sh, w, d)
			}
			if d := MaxAbsDiff(r1, rw); d != 0 {
				t.Fatalf("%v workers=%d: R differs by %g (must be bit-identical)", sh, w, d)
			}
		}
	}
}

func TestSVDWMatchesSerial(t *testing.T) {
	lowerFlopGate(t)
	rng := rand.New(rand.NewSource(29))
	for _, sh := range []struct{ m, n int }{{50, 30}, {30, 50}, {65, 65}} {
		a := sparseRandDense(rng, sh.m, sh.n)
		ref := SVD(a)
		for _, w := range []int{2, 8} {
			got := SVDW(a, w)
			if len(got.S) != len(ref.S) {
				t.Fatalf("%v workers=%d: rank %d vs %d", sh, w, len(got.S), len(ref.S))
			}
			for i := range ref.S {
				if ref.S[i] != got.S[i] {
					t.Fatalf("%v workers=%d: σ%d differs: %g vs %g", sh, w, i, ref.S[i], got.S[i])
				}
			}
			if d := MaxAbsDiff(ref.U, got.U); d != 0 {
				t.Fatalf("%v workers=%d: U differs by %g (must be bit-identical)", sh, w, d)
			}
			if d := MaxAbsDiff(ref.V, got.V); d != 0 {
				t.Fatalf("%v workers=%d: V differs by %g (must be bit-identical)", sh, w, d)
			}
		}
	}
}
