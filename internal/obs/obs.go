// Package obs is the zero-dependency observability layer of the Tree-SVD
// pipeline: lock-free counters, gauges and ring-buffer histograms that the
// hot paths update with single atomic operations, a Registry that exposes
// every registered metric as an expvar-style JSON document and as
// Prometheus text format over HTTP, a pluggable TraceHook fired at the
// pipeline's structural events (batch start/end, block recompute, rebuild,
// checkpoint, recovery), and pprof label helpers that attribute CPU
// profile samples to pipeline stages.
//
// Design rules, enforced by the benchmarks in this package and the
// churnstress overhead experiment in EXPERIMENTS.md:
//
//   - Recording a metric never allocates and never takes a lock: counters
//     and gauges are one atomic RMW, a histogram observation is three
//     atomic RMWs plus one atomic store into a fixed ring.
//   - Reading (Snapshot, ServeHTTP) may allocate freely — it is the cold
//     path — and sees each field atomically, though not the whole set as
//     of one instant (metrics keep moving while a snapshot walks them).
//   - A nil TraceHook costs one predictable branch at each fire site.
//
// The metric structs of the instrumented packages (ppr.Metrics,
// core.Metrics, wal.Metrics) embed these primitives by value, so a single
// allocation covers a subsystem and the zero value of every primitive is
// ready to use.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic int64 that can move in both directions (a level, a
// timestamp, a last-seen size). The zero value is ready to use. All
// methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
