// Command bench regenerates the paper's tables and figures on the scaled
// synthetic datasets. Each experiment id maps to one table/figure of the
// evaluation section (see DESIGN.md §3).
//
// Usage:
//
//	bench -list
//	bench -exp table1
//	bench -exp all [-heavy]
//	bench -exp exp4 -subset 300 -dim 32 -rmax 1e-4 -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tree-svd/treesvd/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		heavy   = flag.Bool("heavy", false, "include heavy per-snapshot experiments in 'all'")
		quick   = flag.Bool("quick", false, "smoke sizes (small subset, scaled-down graphs)")
		subset  = flag.Int("subset", 0, "override |S|")
		dim     = flag.Int("dim", 0, "override embedding dimension d")
		rmax    = flag.Float64("rmax", 0, "override PPR r_max")
		scale   = flag.Float64("scale", 0, "override dataset scale factor")
		seed    = flag.Int64("seed", 0, "override seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			tag := ""
			if e.Heavy {
				tag = "  [heavy]"
			}
			fmt.Printf("%-10s %s%s\n", e.ID, e.Desc, tag)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bench: -exp <id> required (try -list)")
		os.Exit(2)
	}

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	if *subset > 0 {
		o.SubsetSize = *subset
	}
	if *dim > 0 {
		o.Dim = *dim
	}
	if *rmax > 0 {
		o.RMax = *rmax
	}
	if *scale > 0 {
		o.Scale = *scale
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o.Workers = *workers

	run := func(id string) {
		t0 := time.Now()
		if err := bench.RunAndPrint(id, o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if *exp == "all" {
		for _, e := range bench.Registry() {
			if e.Heavy && !*heavy {
				fmt.Printf("[skipping heavy experiment %s; pass -heavy to include]\n", e.ID)
				continue
			}
			run(e.ID)
		}
		return
	}
	run(*exp)
}
