package treesvd

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// persistVersion guards the save format; bump on incompatible changes.
// Version 2 appends an integrity footer — the 4-byte magic "TSV2"
// followed by a little-endian CRC32C of the entire gob payload — so bit
// rot that still decodes as structurally plausible gob is rejected
// deterministically. Version-1 saves (no footer) remain loadable.
//
// Version 3 is the sharded form: per-shard PPR/proximity/tree state in
// Shards (single-stream saves) or in sibling shard checkpoint files
// referenced by ShardFiles (durable checkpoints). Unsharded embedders
// keep writing version 2, so their saves stay loadable by builds
// predating sharding.
const (
	persistVersion        = 2
	persistVersionSharded = 3
	persistMagic          = "TSV2"
	footerLen             = 8
)

// persistCRC is the CRC32C (Castagnoli) table shared by the save footer
// and the WAL/checkpoint formats.
var persistCRC = crc32.MakeTable(crc32.Castagnoli)

// savedShard is the gob wire form of one shard: its PPR states, its
// rows of the proximity matrix with the lazy-update bookkeeping, and
// its tree's cached factorizations.
type savedShard struct {
	Fwd  []*ppr.State
	Rev  []*ppr.State
	M    *sparse.DynRow
	Tree *core.TreeSnapshot
}

// savedEmbedder is the gob wire form of an Embedder: configuration,
// subset, the dynamic graph, every PPR state, the proximity matrix with
// its lazy-update bookkeeping, and the tree's cached factorizations.
// Loading restores the exact maintenance state — subsequent ApplyEvents
// behave as if the process had never restarted.
//
// Three layouts share the struct: version ≤ 2 carries one shard's state
// in the flat Fwd/Rev/M/Tree fields; a version-3 single-stream save
// carries every shard in Shards; a version-3 durable checkpoint
// manifest carries only Config/Subset/Graph plus ShardFiles — the
// count of sibling shard checkpoint files holding the savedShard
// payloads (the manifest is the checkpoint's commit point).
type savedEmbedder struct {
	Version int
	Config  Config
	Subset  []int32
	Graph   *graph.Graph
	Fwd     []*ppr.State
	Rev     []*ppr.State
	M       *sparse.DynRow
	Tree    *core.TreeSnapshot
	Shards  []savedShard
	// ShardFiles > 0 marks a checkpoint manifest: the shard payloads
	// live in that many sibling files, not in this stream.
	ShardFiles int
}

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, persistCRC, p[:n])
	return n, err
}

// writeFooted gob-encodes v to w followed by the integrity footer.
func writeFooted(w io.Writer, v any) error {
	cw := &crcWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(v); err != nil {
		return fmt.Errorf("treesvd: encode: %w", err)
	}
	var footer [footerLen]byte
	copy(footer[:4], persistMagic)
	binary.LittleEndian.PutUint32(footer[4:], cw.crc)
	_, err := w.Write(footer[:])
	return err
}

// splitFooted verifies and strips the integrity footer, returning the
// gob payload and whether a footer was present (version-1 saves carry
// none).
func splitFooted(data []byte, path string) (payload []byte, hasFooter bool, err error) {
	if len(data) >= footerLen && string(data[len(data)-footerLen:len(data)-4]) == persistMagic {
		payload = data[:len(data)-footerLen]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.Checksum(payload, persistCRC); got != want {
			return nil, false, corruptErr(path, "save checksum mismatch: computed %08x, footer %08x", got, want)
		}
		return payload, true, nil
	}
	return data, false, nil
}

// Save serializes the embedder's complete state to w: a gob payload
// followed by the integrity footer (version 2 unsharded, version 3
// sharded). It takes the update lock, so it is safe to call concurrently
// with ApplyEvents/Rebuild and always writes a fully committed state.
//
// Save alone is not crash-atomic: a crash mid-write leaves a truncated
// stream that Load will reject but nothing will repair. Use SaveFile for
// an atomically replaced on-disk checkpoint, or Open for continuous
// WAL-backed durability.
func (e *Embedder) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saveLocked(w)
}

// saveLocked writes the versioned payload and footer. Caller holds e.mu.
func (e *Embedder) saveLocked(w io.Writer) error {
	saved := savedEmbedder{
		Config: e.cfg,
		Subset: e.subset,
		Graph:  e.g,
	}
	if len(e.shards) == 1 {
		s := e.shards[0]
		saved.Version = persistVersion
		saved.Fwd = s.prox.Sub.Fwd
		saved.Rev = s.prox.Sub.Rev
		saved.M = s.prox.M
		saved.Tree = s.tree.Snapshot()
	} else {
		saved.Version = persistVersionSharded
		saved.Shards = make([]savedShard, len(e.shards))
		for i, s := range e.shards {
			saved.Shards[i] = savedShard{
				Fwd:  s.prox.Sub.Fwd,
				Rev:  s.prox.Sub.Rev,
				M:    s.prox.M,
				Tree: s.tree.Snapshot(),
			}
		}
	}
	return writeFooted(w, &saved)
}

// checkpointPayloads is checkpointPayloadsLocked under e.mu: the durable
// layer's state-capture entry point.
func (e *Embedder) checkpointPayloads() (manifest []byte, shards [][]byte, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpointPayloadsLocked()
}

// checkpointPayloadsLocked builds the durable checkpoint payloads for
// the current state. An unsharded embedder checkpoints as one full save
// (shards nil — the layout builds predating sharding recover from); a
// sharded one returns a slim manifest referencing len(shards) sibling
// payloads, each the footed gob of one savedShard. Caller holds e.mu.
func (e *Embedder) checkpointPayloadsLocked() (manifest []byte, shards [][]byte, err error) {
	if len(e.shards) == 1 {
		var buf bytes.Buffer
		if err := e.saveLocked(&buf); err != nil {
			return nil, nil, err
		}
		return buf.Bytes(), nil, nil
	}
	var mb bytes.Buffer
	saved := savedEmbedder{
		Version:    persistVersionSharded,
		Config:     e.cfg,
		Subset:     e.subset,
		Graph:      e.g,
		ShardFiles: len(e.shards),
	}
	if err := writeFooted(&mb, &saved); err != nil {
		return nil, nil, err
	}
	shards = make([][]byte, len(e.shards))
	for i, s := range e.shards {
		var sb bytes.Buffer
		sh := savedShard{Fwd: s.prox.Sub.Fwd, Rev: s.prox.Sub.Rev, M: s.prox.M, Tree: s.tree.Snapshot()}
		if err := writeFooted(&sb, &sh); err != nil {
			return nil, nil, err
		}
		shards[i] = sb.Bytes()
	}
	return mb.Bytes(), shards, nil
}

// decodeShardPayload verifies and decodes one shard checkpoint payload.
func decodeShardPayload(data []byte, path string) (*savedShard, error) {
	payload, hasFooter, err := splitFooted(data, path)
	if err != nil {
		return nil, err
	}
	if !hasFooter {
		return nil, corruptErr(path, "shard payload is missing its integrity footer")
	}
	var sh savedShard
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&sh); err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "shard gob decode failed", Err: err}
	}
	return &sh, nil
}

// Load restores an Embedder previously written by Save (any format
// version). Integrity and structural-consistency failures are reported
// as a *CorruptStateError.
func Load(r io.Reader) (*Embedder, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("treesvd: read save: %w", err)
	}
	e, err := decodeEmbedder(data, "")
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return e, nil
}

// SaveFile writes the embedder's state to path crash-atomically: the
// save goes to a temporary file in the same directory, is fsynced, and
// is renamed over path, with a final directory fsync. Readers of path
// therefore always observe either the previous complete save or the new
// one, never a torn mixture — the property Save(w io.Writer) alone
// cannot give.
func (e *Embedder) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := e.Save(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// LoadFile restores an Embedder from a file written by SaveFile (or any
// complete Save stream). Corruption is reported as a *CorruptStateError
// carrying the path.
func LoadFile(path string) (*Embedder, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, err := decodeEmbedder(data, path)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.publishLocked()
	e.mu.Unlock()
	return e, nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// corruptErr builds the uniform corruption error for decode failures.
func corruptErr(path, format string, args ...any) error {
	return &CorruptStateError{Path: path, Offset: -1, Reason: fmt.Sprintf(format, args...)}
}

// decodeEmbedder verifies, decodes and structurally validates a
// self-contained save (flat or with inline Shards), returning a fully
// wired but unpublished embedder. Checkpoint manifests are rejected —
// their shard payloads live in sibling files only the durable layer
// knows how to find.
func decodeEmbedder(data []byte, path string) (*Embedder, error) {
	saved, err := decodeSaved(data, path)
	if err != nil {
		return nil, err
	}
	if saved.ShardFiles > 0 {
		return nil, corruptErr(path, "checkpoint manifest references %d external shard files; open the durable directory instead",
			saved.ShardFiles)
	}
	return embedderFromSaved(saved, path)
}

// decodeSaved verifies the footer, decodes the gob payload and applies
// the version rules. It performs no structural validation — that is
// embedderFromSaved's job, after manifests have resolved their external
// shard payloads.
func decodeSaved(data []byte, path string) (*savedEmbedder, error) {
	payload, hasFooter, err := splitFooted(data, path)
	if err != nil {
		return nil, err
	}
	var saved savedEmbedder
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&saved); err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "gob decode failed", Err: err}
	}
	switch {
	case saved.Version >= persistVersion && !hasFooter:
		return nil, corruptErr(path, "version %d save is missing its integrity footer", saved.Version)
	case saved.Version == 1 && hasFooter:
		return nil, corruptErr(path, "version 1 payload carries a version 2 footer")
	case saved.Version != 1 && saved.Version != persistVersion && saved.Version != persistVersionSharded:
		return nil, fmt.Errorf("treesvd: save format version %d, want at most %d", saved.Version, persistVersionSharded)
	}
	return &saved, nil
}

// embedderFromSaved structurally validates a decoded save and wires the
// embedder: the checksum only guarantees the bytes, not that the pieces
// agree with each other, so the cross-field invariants New establishes
// are re-checked before anything is assembled (a hand-edited or v1
// checksum-less save errors here instead of panicking on first use).
// RestoreSubset and RestoreTree re-check their own pieces (state shapes,
// tree cache dims) per shard. The returned embedder is unpublished: no
// snapshot exists until the caller runs publishLocked, which lets WAL
// recovery replay and audit before anything becomes readable.
func embedderFromSaved(saved *savedEmbedder, path string) (*Embedder, error) {
	switch {
	case saved.Graph == nil:
		return nil, corruptErr(path, "missing graph")
	case len(saved.Subset) == 0:
		return nil, corruptErr(path, "empty subset")
	}
	seen := make(map[int32]bool, len(saved.Subset))
	for _, v := range saved.Subset {
		if seen[v] {
			return nil, corruptErr(path, "duplicate subset node %d", v)
		}
		seen[v] = true
	}
	cfg, err := saved.Config.withDefaults()
	if err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "invalid saved configuration", Err: err}
	}
	if cfg.Shards > len(saved.Subset) {
		return nil, corruptErr(path, "saved configuration asks for %d shards over %d subset nodes",
			cfg.Shards, len(saved.Subset))
	}
	// Normalize the two payload layouts into one per-shard slice.
	parts := saved.Shards
	if len(parts) == 0 {
		if cfg.Shards != 1 {
			return nil, corruptErr(path, "save declares %d shards but carries a single-shard payload", cfg.Shards)
		}
		parts = []savedShard{{Fwd: saved.Fwd, Rev: saved.Rev, M: saved.M, Tree: saved.Tree}}
	} else if len(parts) != cfg.Shards {
		return nil, corruptErr(path, "save carries %d shard payloads for a %d-shard configuration",
			len(parts), cfg.Shards)
	}
	ranges := core.ShardRanges(len(saved.Subset), cfg.Shards)
	for i, sh := range parts {
		switch {
		case sh.M == nil:
			return nil, corruptErr(path, "shard %d: missing proximity matrix", i)
		case sh.Tree == nil:
			return nil, corruptErr(path, "shard %d: missing tree snapshot", i)
		case sh.M.Rows() != ranges[i][1]-ranges[i][0]:
			return nil, corruptErr(path, "shard %d: proximity matrix has %d rows for %d subset nodes",
				i, sh.M.Rows(), ranges[i][1]-ranges[i][0])
		case sh.M.Cols() < saved.Graph.NumNodes():
			return nil, corruptErr(path, "shard %d: proximity matrix %d columns narrower than the %d-node graph",
				i, sh.M.Cols(), saved.Graph.NumNodes())
		case sh.M.Cols() != parts[0].M.Cols() || sh.M.NumBlocks() != parts[0].M.NumBlocks():
			return nil, corruptErr(path, "shard %d: proximity geometry differs from shard 0", i)
		}
	}
	sw := par.SplitBudget(cfg.Workers, cfg.Shards)
	params := ppr.Params{Alpha: cfg.Alpha, RMax: cfg.RMax, Workers: sw, Met: &ppr.Metrics{},
		Accel: cfg.PushAccel == PushSOR}
	if err := params.Validate(); err != nil {
		return nil, &CorruptStateError{Path: path, Offset: -1, Reason: "invalid saved configuration", Err: err}
	}
	tcfg := core.Config{
		Rank: cfg.Dim, Branch: cfg.Branch, Levels: cfg.Levels,
		Delta: cfg.Delta, Seed: cfg.Seed, Workers: sw,
		SVDUpdate: cfg.SVDUpdate, UpdateMaxRel: cfg.UpdateMaxRel, UpdateTailFrac: cfg.UpdateTailFrac,
	}
	treeMet := &core.Metrics{}
	shards := make([]*shard, len(parts))
	for i, sh := range parts {
		lo, hi := ranges[i][0], ranges[i][1]
		sub, err := ppr.RestoreSubset(saved.Graph, saved.Subset[lo:hi], params, sh.Fwd, sh.Rev)
		if err != nil {
			return nil, &CorruptStateError{Path: path, Offset: -1,
				Reason: fmt.Sprintf("shard %d: inconsistent PPR state", i), Err: err}
		}
		scfg := tcfg
		scfg.Seed = tcfg.Seed + int64(i)*shardSeedStride
		tree, err := core.RestoreTree(sh.M, scfg, sh.Tree)
		if err != nil {
			return nil, &CorruptStateError{Path: path, Offset: -1,
				Reason: fmt.Sprintf("shard %d: inconsistent tree snapshot", i), Err: err}
		}
		tree.ShareMetrics(treeMet)
		shards[i] = &shard{id: i, lo: lo, hi: hi, prox: ppr.RestoreProximity(sub, sh.M), tree: tree}
	}
	e := newEmbedder(cfg, saved.Subset, saved.Graph, shards)
	for _, s := range e.shards {
		if !s.tree.Built() {
			// Defensive: a snapshot saved before any Build (not reachable via
			// New+Save, but cheap to repair here).
			if err := s.tree.Build(context.Background()); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}
