package check

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// massTol bounds |Σp + Σr − 1|. Pushes and the Algorithm 2 corrections
// preserve the sum exactly in real arithmetic; the tolerance only absorbs
// floating-point drift accumulated across batches.
const massTol = 1e-8

// rmaxSlack loosens the push threshold comparison: residues may sit right
// at r_max·deg after a push that stopped exactly at the boundary.
const rmaxSlack = 1e-9

// PPRState audits one PPR state against the graph it was computed over:
//
//  1. every estimate/residue key is a live node id and every value finite,
//  2. the push invariant |r(u)| ≤ r_max·deg(u) holds everywhere (deg
//     under the engine's dangling-node self-loop convention), and
//  3. the mass accounting Σp + Σr = 1 holds within float tolerance — the
//     residue is exactly the mass the estimates have not settled yet.
//
// Violations of (2) mean a mutation forgot to mark a residue dirty before
// the repair push; violations of (3) mean a correction moved estimate and
// residue mass inconsistently (the self-loop bug class of ISSUE 3).
func PPRState(g *graph.Graph, params ppr.Params, st *ppr.State) error {
	if st == nil {
		return fmt.Errorf("check: nil PPR state")
	}
	n := int32(g.NumNodes())
	if st.Source < 0 || st.Source >= n {
		return fmt.Errorf("check: %v state source %d outside graph with %d nodes", st.Dir, st.Source, n)
	}
	var mass float64
	for u, p := range st.P {
		if u < 0 || u >= n {
			return fmt.Errorf("check: source %d %v: estimate key %d outside graph with %d nodes", st.Source, st.Dir, u, n)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("check: source %d %v: non-finite estimate p(%d) = %g", st.Source, st.Dir, u, p)
		}
		mass += p
	}
	for u, r := range st.R {
		if u < 0 || u >= n {
			return fmt.Errorf("check: source %d %v: residue key %d outside graph with %d nodes", st.Source, st.Dir, u, n)
		}
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("check: source %d %v: non-finite residue r(%d) = %g", st.Source, st.Dir, u, r)
		}
		deg := float64(g.Degree(u, st.Dir))
		if deg == 0 {
			deg = 1 // implicit self-loop at dangling nodes
		}
		if limit := params.RMax * deg; math.Abs(r) > limit*(1+rmaxSlack) {
			return fmt.Errorf("check: source %d %v: push invariant violated at %d: |r| = %g > r_max·deg = %g",
				st.Source, st.Dir, u, math.Abs(r), limit)
		}
		mass += r
	}
	if math.Abs(mass-1) > massTol {
		return fmt.Errorf("check: source %d %v: mass accounting broken: Σp + Σr = %.12f, want 1 ± %g",
			st.Source, st.Dir, mass, massTol)
	}
	return nil
}

// PPRSubset audits every forward and reverse state of a subset.
func PPRSubset(sub *ppr.Subset) error {
	g, params := sub.Engine.G, sub.Engine.Params
	for i, s := range sub.S {
		if sub.Fwd != nil {
			if err := PPRState(g, params, sub.Fwd[i]); err != nil {
				return fmt.Errorf("subset node %d: %w", s, err)
			}
		}
		if sub.Rev != nil {
			if err := PPRState(g, params, sub.Rev[i]); err != nil {
				return fmt.Errorf("subset node %d: %w", s, err)
			}
		}
	}
	return nil
}

// exactTol absorbs the truncation of the power iteration (run until the
// remaining walk weight is < 1e-14) plus float accumulation on top of the
// analytic ResidueL1 bound.
const exactTol = 1e-9

// PPRExact verifies a state's estimates against an exact power-iteration
// computation of π on the current graph. The push invariant gives
// π = p + Σ_u r(u)·π_u pointwise, so |π(v) − p(v)| ≤ Σ_u |r(u)| — and
// Algorithm 2's correctness criterion is that dynamic corrections keep
// this bound intact no matter how many events the state absorbed. A
// correction that moves estimate mass without the matching residue (the
// self-loop bug class) passes the cheap PPRState accounting but fails
// here, because the corrupted estimates are compared against ground
// truth. O(iterations·|E|) per call: harness-only, not for production
// self-checks.
func PPRExact(g *graph.Graph, params ppr.Params, st *ppr.State) error {
	if st == nil {
		return fmt.Errorf("check: nil PPR state")
	}
	pi := exactPPR(g, st.Source, params.Alpha, st.Dir)
	bound := st.ResidueL1() + exactTol
	for v, exact := range pi {
		if diff := math.Abs(exact - st.P[int32(v)]); diff > bound {
			return fmt.Errorf("check: source %d %v: estimate error |π(%d) − p(%d)| = %g exceeds residue bound Σ|r| = %g",
				st.Source, st.Dir, v, v, diff, bound)
		}
	}
	return nil
}

// PPRSubsetExact runs PPRExact over every forward and reverse state.
func PPRSubsetExact(sub *ppr.Subset) error {
	g, params := sub.Engine.G, sub.Engine.Params
	for i, s := range sub.S {
		if sub.Fwd != nil {
			if err := PPRExact(g, params, sub.Fwd[i]); err != nil {
				return fmt.Errorf("subset node %d: %w", s, err)
			}
		}
		if sub.Rev != nil {
			if err := PPRExact(g, params, sub.Rev[i]); err != nil {
				return fmt.Errorf("subset node %d: %w", s, err)
			}
		}
	}
	return nil
}

// exactPPR computes π_s for every node by power iteration on the α-decay
// walk, using the same dangling self-loop convention as the push engine.
func exactPPR(g *graph.Graph, s int32, alpha float64, dir graph.Direction) []float64 {
	n := g.NumNodes()
	x := make([]float64, n)
	next := make([]float64, n)
	x[s] = 1
	// π_s = α Σ_t (1−α)^t walk-distribution_t; iterate the distribution.
	pi := make([]float64, n)
	weight := alpha
	for iter := 0; iter < 300; iter++ {
		for i := range pi {
			pi[i] += weight * x[i]
		}
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); int(u) < n; u++ {
			if x[u] == 0 {
				continue
			}
			nbrs := g.Neighbors(u, dir)
			if len(nbrs) == 0 {
				next[u] += x[u] // dangling self-loop
				continue
			}
			share := x[u] / float64(len(nbrs))
			for _, v := range nbrs {
				next[v] += share
			}
		}
		x, next = next, x
		weight *= 1 - alpha
		if weight < 1e-14 {
			break
		}
	}
	return pi
}
