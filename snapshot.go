package treesvd

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Snapshot is one immutable, fully consistent version of the embedding
// state, published atomically by New/ApplyEvents/Rebuild. All methods are
// safe for concurrent use from any number of goroutines, and a snapshot
// stays valid and numerically unchanged forever — later updates publish
// new snapshots instead of mutating old ones. Hold one to serve a batch
// of reads (several Recommend calls, an Embedding plus a RightEmbedding)
// against a single consistent version while updates proceed underneath.
type Snapshot struct {
	version uint64
	subset  []int32       // shared with Embedder; immutable after New
	rowOf   map[int32]int // shared with Embedder; immutable after New
	x       *linalg.Dense // frozen U√Σ
	root    *linalg.SVDResult
	m       *sparse.CSR // proximity matrix frozen at publish time
	outNbrs map[int32][]int32
	stats   Stats
	// numNodes is the graph's node count at publish time. The right
	// embedding is MaxNodes rows wide, so candidate iteration must stop
	// here: rows past it are zero-score placeholders for ids that did not
	// exist yet (ISSUE 3, ghost recommendations).
	numNodes int

	// y is the right embedding Ṽ√Σ, materialized at most once per
	// snapshot on first use and reused by every later RightEmbedding/
	// Recommend on this version. yComputes counts materializations
	// (observable by tests: it must never exceed 1).
	yOnce     sync.Once
	y         *linalg.Dense
	yComputes atomic.Int32
}

// Version returns the snapshot's version counter; it increases by one
// with every snapshot the Embedder publishes.
func (s *Snapshot) Version() uint64 { return s.version }

// Subset returns the embedded node ids in row order.
func (s *Snapshot) Subset() []int32 { return append([]int32(nil), s.subset...) }

// Stats returns the factorization work counters of the update that
// published this snapshot.
func (s *Snapshot) Stats() Stats { return s.stats }

// NumNodes returns the graph's node count as of this snapshot's version.
func (s *Snapshot) NumNodes() int { return s.numNodes }

// Spectrum returns the singular values of this snapshot's root
// factorization, descending (a copy; the snapshot stays immutable).
func (s *Snapshot) Spectrum() []float64 { return append([]float64(nil), s.root.S...) }

// Embedding returns the |S|×d subset embedding X = U√Σ of this snapshot
// as a row-major matrix: row i embeds Subset()[i].
func (s *Snapshot) Embedding() [][]float64 { return toRows(s.x) }

// RightEmbedding returns the n×d right-factor embedding Y = Ṽ√Σ of this
// snapshot (row v embeds graph node v). Y is computed once per snapshot
// and cached; repeated calls (and Recommend) reuse it.
func (s *Snapshot) RightEmbedding() [][]float64 { return toRows(s.right()) }

// right materializes Y = Σ^{-1/2}·Uᵀ·M at most once (Theorem 3.2's
// recovery of the right factor from the frozen proximity matrix).
func (s *Snapshot) right() *linalg.Dense {
	s.yOnce.Do(func() {
		s.yComputes.Add(1)
		s.y = core.RightEmbeddingOf(s.root, s.m)
	})
	return s.y
}

func toRows(m *linalg.Dense) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// Recommendation is one ranked link candidate.
type Recommendation struct {
	Node  int32
	Score float64
}

// recHeap is a min-heap keyed by (Score asc, Node desc): the root is the
// weakest kept candidate, so top-k selection peeks and replaces it in
// O(log k) instead of re-sorting the slice on every improvement.
type recHeap []Recommendation

func (h recHeap) Len() int { return len(h) }
func (h recHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Node > h[j].Node
}
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(Recommendation)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Recommend returns the top-k candidate targets for subset node s, ranked
// by the factorization score dot(X[s], Y[v]) — the paper's motivating
// application. Candidates are the nodes that exist as of this snapshot's
// version (ids the MaxNodes headroom reserves but the graph has not
// reached yet are never returned); node s itself and its out-neighbors
// are excluded. Results are ordered by descending score, ties by
// ascending node id. It returns an error if s is not in the subset.
func (s *Snapshot) Recommend(src int32, k int) ([]Recommendation, error) {
	row, ok := s.rowOf[src]
	if !ok {
		return nil, fmt.Errorf("treesvd: node %d is not in the embedded subset", src)
	}
	if s.root.Rank() == 0 {
		return nil, fmt.Errorf("treesvd: empty factorization")
	}
	if k <= 0 {
		return nil, nil
	}
	y := s.right()
	xs := s.x.Row(row)
	exclude := make(map[int32]bool, len(s.outNbrs[src])+1)
	exclude[src] = true
	for _, v := range s.outNbrs[src] {
		exclude[v] = true
	}
	top := make(recHeap, 0, k)
	// y has MaxNodes rows; only the first numNodes are real nodes of this
	// snapshot's graph — the rest would surface as zero-score ghosts.
	limit := min(y.Rows, s.numNodes)
	for v := 0; v < limit; v++ {
		if exclude[int32(v)] {
			continue
		}
		score := dot(xs, y.Row(v))
		switch {
		case len(top) < k:
			heap.Push(&top, Recommendation{Node: int32(v), Score: score})
		case score > top[0].Score:
			top[0] = Recommendation{Node: int32(v), Score: score}
			heap.Fix(&top, 0)
		}
	}
	// Drain ascending (worst first) into the back of the output so the
	// result reads best-first.
	out := make([]Recommendation, len(top))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&top).(Recommendation)
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// publishLocked freezes the current pipeline state into a new immutable
// snapshot and publishes it. Caller holds e.mu; the tree must be built.
// The proximity matrix is captured as a CSR copy (the DynRow keeps
// mutating afterwards) and subset out-neighbor lists are copied out of
// the graph for the same reason.
func (e *Embedder) publishLocked() {
	root := e.tree.Root()
	g := e.prox.Sub.Engine.G
	nbrs := make(map[int32][]int32, len(e.subset))
	for _, s := range e.subset {
		nbrs[s] = append([]int32(nil), g.OutNeighbors(s)...)
	}
	ts := e.tree.Stats()
	e.snap.Store(&Snapshot{
		version:  e.version.Add(1),
		subset:   e.subset,
		rowOf:    e.rowOf,
		x:        root.USqrtS(),
		root:     root,
		m:        e.prox.M.ToCSR(),
		outNbrs:  nbrs,
		stats:    Stats{Level1Rebuilt: ts.Level1Rebuilt, Skipped: ts.Skipped, UpperRebuilt: ts.UpperRebuilt},
		numNodes: g.NumNodes(),
	})
	e.met.snapshots.Inc()
	e.met.lastPublishNanos.Set(time.Now().UnixNano())
}
