package treesvd

import "fmt"

// NodeRangeError reports an event whose node id falls outside the
// embedder's fixed proximity width (the Config.MaxNodes contract).
// ApplyEvents validates the whole batch up front and returns this error
// before mutating anything — the graph, the PPR estimates and the
// published snapshot are exactly as they were, so the caller may drop or
// remap the offending events and retry.
type NodeRangeError struct {
	Index    int   // position of the offending event within the batch
	Node     int32 // the out-of-range (or negative) node id
	MaxNodes int   // the embedder's capacity, fixed at New
}

func (e *NodeRangeError) Error() string {
	return fmt.Sprintf(
		"treesvd: event %d references node %d outside the embedder's capacity of %d nodes (set Config.MaxNodes at New to cover every id the stream will reach)",
		e.Index, e.Node, e.MaxNodes)
}
