package svdupd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

func randDense(rng *rand.Rand, r, c int) *linalg.Dense {
	m := linalg.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randDelta builds a sparse delta over t distinct rows of an m×n block and
// returns it alongside its dense expansion.
func randDelta(rng *rand.Rand, m, n, t, perRow int) (*sparse.BlockDelta, *linalg.Dense) {
	rows := rng.Perm(m)[:t]
	d := &sparse.BlockDelta{}
	dd := linalg.NewDense(m, n)
	sortInts(rows)
	for _, r := range rows {
		cols := rng.Perm(n)[:perRow]
		sortInts(cols)
		var cc []int32
		var vv []float64
		for _, c := range cols {
			v := rng.NormFloat64()
			cc = append(cc, int32(c))
			vv = append(vv, v)
			dd.Set(r, c, v)
		}
		d.Rows = append(d.Rows, r)
		d.Cols = append(d.Cols, cc)
		d.Vals = append(d.Vals, vv)
	}
	return d, dd
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestUpdateExactFullRank: when no truncation happens (rank budget covers
// the whole core), the update is algebraically exact — U'Σ'V'ᵀ equals
// B + D to rounding error, and Discarded is ~0.
func TestUpdateExactFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, r := 20, 14, 5
	b := linalg.MulW(randDense(rng, m, r), randDense(rng, r, n), 1)
	fac := linalg.SVDTruncW(b, r, 1) // exact: b has rank r
	d, dd := randDelta(rng, m, n, 3, 4)
	res, err := Update(fac, d, Options{Rank: r + 3})
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.Add(b, dd)
	got := res.Fac.Reconstruct()
	if diff := linalg.MaxAbsDiff(got, want); diff > 1e-10 {
		t.Fatalf("full-rank update not exact: max |diff| = %g", diff)
	}
	if res.Discarded > 1e-10 {
		t.Fatalf("Discarded = %g, want ~0 with no truncation", res.Discarded)
	}
	checkOrtho(t, res.Fac.U)
	checkOrtho(t, res.Fac.V)
	checkDescending(t, res.Fac.S)
}

// TestUpdateTruncatedMatchesDirectSVD: a rank-d truncated update must land
// on (numerically) the same subspace and singular values as a direct
// rank-d SVD of B + D, and Discarded must bound the extra residual.
func TestUpdateTruncatedMatchesDirectSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, d0 := 24, 16, 6
	b := randDense(rng, m, n)
	full := linalg.SVDW(b, 1)
	fac := full.Truncate(d0)
	baseTail := full.TailEnergy(b.FrobNorm(), d0)
	d, dd := randDelta(rng, m, n, 2, 3)
	res, err := Update(fac, d, Options{Rank: d0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fac.Rank() != d0 {
		t.Fatalf("updated rank %d, want %d", res.Fac.Rank(), d0)
	}
	bd := linalg.Add(b, dd)
	direct := linalg.SVDTruncW(bd, d0, 1)
	for i := range direct.S {
		// The update starts from the truncated fac, not B, so its spectrum
		// can differ by at most the dropped baseline tail (Weyl).
		if math.Abs(res.Fac.S[i]-direct.S[i]) > baseTail+1e-9 {
			t.Fatalf("σ_%d = %g, direct %g, Weyl slack %g", i, res.Fac.S[i], direct.S[i], baseTail)
		}
	}
	// Triangle bound: ‖(B+D) − fac'‖ ≤ ‖B − fac‖ + Discarded.
	resid := linalg.Sub(bd, res.Fac.Reconstruct()).FrobNorm()
	if resid > baseTail+res.Discarded+1e-9 {
		t.Fatalf("residual %g exceeds baseTail %g + Discarded %g", resid, baseTail, res.Discarded)
	}
	checkOrtho(t, res.Fac.U)
	checkOrtho(t, res.Fac.V)
}

// TestUpdateChain: many successive small updates stay orthonormal and keep
// the accumulated-error triangle bound Σ Discarded honest.
func TestUpdateChain(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, n, d0 := 18, 12, 4
	b := randDense(rng, m, n)
	full := linalg.SVDW(b, 1)
	fac := full.Truncate(d0)
	baseTail := full.TailEnergy(b.FrobNorm(), d0)
	live := b.Clone()
	var accum float64
	for step := 0; step < 25; step++ {
		d, dd := randDelta(rng, m, n, 1+rng.Intn(2), 2)
		res, err := Update(fac, d, Options{Rank: d0})
		if err != nil {
			t.Fatal(err)
		}
		fac = res.Fac
		accum += res.Discarded
		live = linalg.Add(live, dd)
	}
	checkOrtho(t, fac.U)
	checkOrtho(t, fac.V)
	resid := linalg.Sub(live, fac.Reconstruct()).FrobNorm()
	if resid > baseTail+accum+1e-8 {
		t.Fatalf("chained residual %g exceeds bound %g", resid, baseTail+accum)
	}
}

// TestUpdateRankDeficientDelta: repeated/parallel delta rows make the
// orthogonal complements rank-deficient; QR deflation must keep the
// result finite and the bound intact.
func TestUpdateRankDeficientDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, n, d0 := 16, 10, 4
	b := randDense(rng, m, n)
	full := linalg.SVDW(b, 1)
	fac := full.Truncate(d0)
	baseTail := full.TailEnergy(b.FrobNorm(), d0)
	// Two touched rows with identical change patterns → Dᵣ has rank 1.
	vals := []float64{1.25, -0.5}
	d := &sparse.BlockDelta{
		Rows: []int{2, 7},
		Cols: [][]int32{{1, 6}, {1, 6}},
		Vals: [][]float64{vals, vals},
	}
	dd := linalg.NewDense(m, n)
	for i, r := range d.Rows {
		for k, c := range d.Cols[i] {
			dd.Set(r, int(c), d.Vals[i][k])
		}
	}
	res, err := Update(fac, d, Options{Rank: d0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Fac.U.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite entry in updated U")
		}
	}
	resid := linalg.Sub(linalg.Add(b, dd), res.Fac.Reconstruct()).FrobNorm()
	if resid > baseTail+res.Discarded+1e-9 {
		t.Fatalf("rank-deficient residual %g exceeds bound", resid)
	}
	checkOrtho(t, res.Fac.U)
	checkOrtho(t, res.Fac.V)
}

func TestUpdateGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := randDense(rng, 6, 4)
	fac := linalg.SVDTruncW(b, 3, 1)

	// Empty delta: factorization returned unchanged, zero cost.
	res, err := Update(fac, &sparse.BlockDelta{}, Options{Rank: 3})
	if err != nil || res.Fac != fac || res.Discarded != 0 {
		t.Fatalf("empty delta: res=%+v err=%v", res, err)
	}

	// Delta touching more rows than the block has columns → error.
	wide := &sparse.BlockDelta{}
	for r := 0; r < 5; r++ {
		wide.Rows = append(wide.Rows, r)
		wide.Cols = append(wide.Cols, []int32{0})
		wide.Vals = append(wide.Vals, []float64{1})
	}
	if _, err := Update(fac, wide, Options{Rank: 3}); err == nil {
		t.Fatal("expected error for t > n")
	}

	// Missing right factors → error.
	noV := &linalg.SVDResult{U: fac.U, S: fac.S}
	one := &sparse.BlockDelta{Rows: []int{0}, Cols: [][]int32{{0}}, Vals: [][]float64{{1}}}
	if _, err := Update(noV, one, Options{Rank: 3}); err == nil {
		t.Fatal("expected error for V == nil")
	}

	// Out-of-range coordinates → error, not a panic.
	bad := &sparse.BlockDelta{Rows: []int{0}, Cols: [][]int32{{9}}, Vals: [][]float64{{1}}}
	if _, err := Update(fac, bad, Options{Rank: 3}); err == nil {
		t.Fatal("expected error for out-of-range column")
	}
}

// TestUpdateDeterministicAcrossWorkers: worker budget must not change a
// single bit of the result.
func TestUpdateDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	b := randDense(rng, 30, 20)
	fac := linalg.SVDW(b, 1).Truncate(6)
	d, _ := randDelta(rng, 30, 20, 4, 5)
	r1, err := Update(fac, d, Options{Rank: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Update(fac, d, Options{Rank: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Fac.U.Data, r4.Fac.U.Data) ||
		!reflect.DeepEqual(r1.Fac.S, r4.Fac.S) ||
		!reflect.DeepEqual(r1.Fac.V.Data, r4.Fac.V.Data) ||
		r1.Discarded != r4.Discarded {
		t.Fatal("result differs across worker budgets")
	}
}

func checkOrtho(t *testing.T, q *linalg.Dense) {
	t.Helper()
	g := linalg.TMulW(q, q, 1)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-9 {
				t.Fatalf("columns not orthonormal: G[%d][%d] = %g", i, j, g.At(i, j))
			}
		}
	}
}

func checkDescending(t *testing.T, s []float64) {
	t.Helper()
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", s)
		}
	}
}
