package rsvd

// mustSVD unwraps factorization results in tests; a factorization error is
// a test failure, surfaced as a panic with the error text.
func mustSVD[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
