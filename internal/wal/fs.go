// Package wal implements the durability layer of the dynamic embedder: a
// segmented write-ahead log of event batches and atomic, checksummed
// checkpoints. Every byte that reaches disk is covered by a CRC32C, every
// multi-step commit (segment rotation, checkpoint publication) ends with
// a rename plus directory fsync, and recovery (Recover, ReadCheckpoint)
// is written to land on a committed prefix of the logged stream no matter
// where a crash interrupted the writer.
//
// The package talks to the disk only through the FS interface so that the
// fault-injection harness (internal/faultfs) can interpose torn writes,
// bit flips and fsync failures at any operation; OS is the production
// implementation.
package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the WAL needs. Writers created by
// FS.Create are positioned at offset 0 on a truncated file; readers from
// FS.Open read from the start.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// FS abstracts the filesystem operations of the durability layer. All
// paths are absolute or relative to the process working directory; the
// WAL always passes paths inside its managed directory.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names in dir in lexical order.
	ReadDir(dir string) ([]string, error)
	// Stat returns the size of name in bytes.
	Stat(name string) (int64, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations inside it durable.
	SyncDir(dir string) error
}

// OS is the production FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	f, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
