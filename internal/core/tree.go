package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// blockCache is the per-level-1-block state kept between updates: the
// compressed representation Ū = (U)_d(Σ)_d fed to level 2, and the tail
// energy ‖(B)_d − B‖_F measured when the block was last factored (the
// first term of Eqn. 2, free from the cached singular values).
type blockCache struct {
	us   *linalg.Dense
	tail float64
}

// Stats counts the work done by the last Build or Update call.
type Stats struct {
	// Level1Rebuilt is |Z|: how many level-1 blocks were re-factored.
	Level1Rebuilt int
	// UpperRebuilt counts SVDs at levels ≥ 2 (affected ancestors + root).
	UpperRebuilt int
	// Skipped counts level-1 blocks served from cache.
	Skipped int
}

// Tree is the dynamic Tree-SVD over a column-blocked DynRow proximity
// matrix. The DynRow is owned by the caller (typically ppr.Proximity);
// Tree reads blocks, tracks their rebuild state via MarkRebuilt, and keeps
// all intermediate SVD results cached between snapshots.
type Tree struct {
	cfg Config
	m   *sparse.DynRow

	level1 []*blockCache
	// upper[l][j] caches Ū of node j at tree level l+2 (level 2 is
	// upper[0]); the root's full SVD lives in root instead. The last
	// entry of upper always has a single node (the root's merge input is
	// the level below it), except when the whole tree is a single chain.
	upper [][]*linalg.Dense
	root  *linalg.SVDResult
	seq   int64 // per-factorization counter so randomized draws differ
	stats Stats
	built bool
}

// NewTree wraps a DynRow whose block partition was created with
// cfg.Blocks() blocks. The realized block count may be smaller when the
// matrix is narrow; the tree adapts.
func NewTree(m *sparse.DynRow, cfg Config) *Tree {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tree{cfg: cfg, m: m, level1: make([]*blockCache, m.NumBlocks())}
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats returns the work counters of the last Build/Update.
func (t *Tree) Stats() Stats { return t.stats }

// factorBlock runs the level-1 sparse randomized SVD on block j and
// refreshes its cache and the DynRow baseline.
func (t *Tree) factorBlock(j int) {
	blk := t.m.BlockCSR(j)
	frob := blk.FrobNorm()
	opts := rsvd.Options{
		Rank:       t.cfg.Rank,
		Oversample: t.cfg.Oversample,
		PowerIters: t.cfg.PowerIters,
		Seed:       t.cfg.Seed + int64(j)*1_000_003 + t.seq*7_777_777,
	}
	var res *linalg.SVDResult
	if t.cfg.UseCountSketch {
		res = rsvd.SparseCW(blk, opts)
	} else {
		res = rsvd.Sparse(blk, opts)
	}
	t.level1[j] = &blockCache{us: res.US(), tail: res.TailEnergy(frob, t.cfg.Rank)}
	t.m.MarkRebuilt(j)
}

// workers resolves the configured worker count.
func (t *Tree) workers() int {
	if t.cfg.Workers <= 1 {
		return 1
	}
	return t.cfg.Workers
}

// Build runs the full static Tree-SVD (Algorithm 3) over the current
// matrix: every level-1 block is factored and the whole tree is merged.
func (t *Tree) Build() {
	t.stats = Stats{}
	t.seq++
	par.For(len(t.level1), t.workers(), t.factorBlock)
	t.stats.Level1Rebuilt = len(t.level1)
	t.mergeAll()
	t.built = true
}

// violates evaluates the Eqn. 2 trigger for level-1 block j:
//
//	‖(B^(t-i))_d − B^(t-i)‖_F + ‖D_j‖_F > √2·δ·‖B^t_j‖_F.
//
// Unbuilt blocks always violate.
func (t *Tree) violates(j int) bool {
	c := t.level1[j]
	if c == nil {
		return true
	}
	delta := t.m.DeltaFrobNorm(j)
	if delta == 0 {
		return false // untouched block: cache is exact
	}
	return c.tail+delta > math.Sqrt2*t.cfg.Delta*t.m.BlockFrobNorm(j)
}

// Update runs the lazy update (Algorithm 4): re-factor only the level-1
// blocks violating Eqn. 2, then recompute the affected ancestors. Call it
// after the proximity matrix absorbed a batch of edge events. It returns
// the number of level-1 blocks rebuilt.
func (t *Tree) Update() int {
	if !t.built {
		t.Build()
		return t.stats.Level1Rebuilt
	}
	t.stats = Stats{}
	t.seq++
	var z []int
	for j := range t.level1 {
		if t.violates(j) {
			z = append(z, j)
		} else {
			t.stats.Skipped++
		}
	}
	if len(z) == 0 {
		return 0 // every block within tolerance: cached embedding stands
	}
	dirty := make(map[int]bool, len(z))
	par.For(len(z), t.workers(), func(i int) { t.factorBlock(z[i]) })
	for _, j := range z {
		dirty[j] = true
	}
	t.stats.Level1Rebuilt = len(z)
	t.mergeDirty(dirty)
	return len(z)
}

// mergeAll rebuilds the whole upper tree (Algorithm 3 levels 2..q).
func (t *Tree) mergeAll() {
	dirty := make(map[int]bool, len(t.level1))
	for j := range t.level1 {
		dirty[j] = true
	}
	t.mergeDirty(dirty)
}

// levelCounts returns the node counts per tree level, bottom-up, ending
// with the single root.
func (t *Tree) levelCounts() []int {
	counts := []int{len(t.level1)}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+t.cfg.Branch-1)/t.cfg.Branch)
	}
	return counts
}

// childUS returns the cached compressed representation of node j at
// 0-based level cl (cl 0 is the level-1 blocks).
func (t *Tree) childUS(cl, j int) *linalg.Dense {
	if cl == 0 {
		return t.level1[j].us
	}
	return t.upper[cl-1][j]
}

// mergeDirty propagates rebuilt nodes up the tree (Algorithm 4 lines
// 6-12): a parent is re-merged exactly when one of its children changed;
// untouched subtrees are served from cache.
func (t *Tree) mergeDirty(dirty map[int]bool) {
	counts := t.levelCounts()
	if len(counts) == 1 {
		// Single level-1 block: its truncated SVD is the root.
		t.root = linalg.SVDTrunc(t.level1[0].us, t.cfg.Rank)
		t.stats.UpperRebuilt++
		return
	}
	// Size the upper cache: one slice per intermediate level (2..q-1).
	for len(t.upper) < len(counts)-2 {
		li := len(t.upper)
		t.upper = append(t.upper, make([]*linalg.Dense, counts[li+1]))
	}
	k := t.cfg.Branch
	for cl := 0; cl+1 < len(counts); cl++ {
		parentDirty := make(map[int]bool)
		for j := range dirty {
			parentDirty[j/k] = true
		}
		parents := make([]int, 0, len(parentDirty))
		for pj := range parentDirty {
			parents = append(parents, pj)
		}
		sort.Ints(parents)
		isRootLevel := counts[cl+1] == 1
		par.For(len(parents), t.workers(), func(pi int) {
			pj := parents[pi]
			lo := pj * k
			hi := lo + k
			if hi > counts[cl] {
				hi = counts[cl]
			}
			children := make([]*linalg.Dense, 0, hi-lo)
			for j := lo; j < hi; j++ {
				children = append(children, t.childUS(cl, j))
			}
			res := linalg.SVDTrunc(linalg.HCat(children...), t.cfg.Rank)
			if isRootLevel {
				t.root = res
			} else {
				t.upper[cl][pj] = res.US()
			}
		})
		t.stats.UpperRebuilt += len(parents)
		dirty = parentDirty
	}
}

// ForceRebuildBlock re-factors level-1 block j unconditionally and
// propagates along its ancestor path, bypassing the Eqn. 2 trigger (used
// by trigger ablations). It returns 1 (blocks rebuilt), or falls back to a
// full Build when the tree has never been built.
func (t *Tree) ForceRebuildBlock(j int) int {
	if !t.built {
		t.Build()
		return t.stats.Level1Rebuilt
	}
	t.stats = Stats{}
	t.seq++
	t.factorBlock(j)
	t.stats.Level1Rebuilt = 1
	t.mergeDirty(map[int]bool{j: true})
	return 1
}

// Root returns the root truncated SVD (U_{q,1})_d, (Σ_{q,1})_d. Build or
// Update must have run.
func (t *Tree) Root() *linalg.SVDResult {
	if t.root == nil {
		panic("core: Root before Build")
	}
	return t.root
}

// Embedding returns the subset embedding X = (U_{q,1})_d·√(Σ_{q,1})_d.
func (t *Tree) Embedding() *linalg.Dense {
	return t.Root().USqrtS()
}

// RightEmbedding recovers the right-factor embedding Y = Ṽ_d·√Σ with
// Ṽ_d = Σ⁻¹·Uᵀ·M_S (Theorem 3.2), i.e. Yᵀ rows are indexed by graph
// nodes. Net per-column scaling is 1/√σ, computed in one sparse pass.
func (t *Tree) RightEmbedding() *linalg.Dense {
	root := t.Root()
	y := t.m.ToCSR().TMulDense(root.U) // n×d = Mᵀ·U
	scale := make([]float64, len(root.S))
	for i, s := range root.S {
		if s > 0 {
			scale[i] = 1 / math.Sqrt(s)
		}
	}
	return y.MulDiag(scale)
}

// Matrix exposes the underlying proximity DynRow.
func (t *Tree) Matrix() *sparse.DynRow { return t.m }

// ReconstructionError returns ‖U·Σ·Ṽ − M‖_F with Ṽ = Σ⁻¹UᵀM, the
// observable counterpart of the Theorem 3.2 guarantee (tests and
// diagnostics; materializes a d×n dense intermediate).
func (t *Tree) ReconstructionError() float64 {
	root := t.Root()
	if root.Rank() == 0 {
		return t.m.FrobNorm()
	}
	csr := t.m.ToCSR()
	vt := csr.TMulDense(root.U) // n×d = Mᵀ·U
	// ‖M − U·Uᵀ·M‖²_F = ‖M‖²_F − ‖Uᵀ·M‖²_F (projection identity).
	f := t.m.FrobNorm()
	proj := vt.FrobNorm()
	diff := f*f - proj*proj
	if diff < 0 {
		diff = 0
	}
	return math.Sqrt(diff)
}

func (t *Tree) String() string {
	return fmt.Sprintf("TreeSVD(d=%d, k=%d, q=%d, b=%d, δ=%g)",
		t.cfg.Rank, t.cfg.Branch, t.cfg.Levels, t.m.NumBlocks(), t.cfg.Delta)
}
