package check

import "github.com/tree-svd/treesvd/internal/sparse"

// DynRow audits a proximity matrix's incrementally maintained bookkeeping
// (per-block Frobenius norms, delta norms against the rebuild baselines,
// nnz counters, baseline key validity) against an exact O(nnz) recount.
// The maintained quantities feed the Eqn. 2 lazy-update trigger, so drift
// here silently turns into missed (or spurious) block rebuilds.
func DynRow(m *sparse.DynRow) error {
	return m.AuditRecount()
}
