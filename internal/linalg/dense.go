// Package linalg provides the dense linear-algebra kernels used by every
// SVD in this repository: a row-major dense matrix type, matrix products,
// Householder QR, a cyclic Jacobi symmetric eigensolver, and exact thin
// truncated SVD (via the Gram matrix of the smaller side, with a one-sided
// Jacobi SVD available for cross-validation).
//
// The package depends only on the stdlib and the internal/par worker
// primitives. The matrices factored exactly by Tree-SVD are |S|×(k·d)
// with |S| in the low thousands and k·d around one thousand, so O(n³)
// kernels with good constants are sufficient — the kernels in kernels.go
// are cache-blocked, unrolled for instruction-level parallelism, and
// accept an optional worker budget (see the W-suffixed variants).
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps data (not copied) as an r×c matrix.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d×%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the (i,j) element.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i,j) element.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// shapeErr formats the panic message for a dimension mismatch.
func shapeErr(op string, ar, ac, br, bc int) string {
	return fmt.Sprintf("linalg: %s shape mismatch %d×%d · %d×%d", op, ar, ac, br, bc)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow/underflow for extreme values.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 { return Norm2(m.Data) }

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add returns a+b.
func Add(a, b *Dense) *Dense {
	mustSameShape("Add", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Dense) *Dense {
	mustSameShape("Sub", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

func mustSameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// HCat horizontally concatenates the given matrices (all with equal Rows).
func HCat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	r := ms[0].Rows
	c := 0
	for _, m := range ms {
		if m.Rows != r {
			panic(fmt.Sprintf("linalg: HCat row mismatch %d vs %d", m.Rows, r))
		}
		c += m.Cols
	}
	out := NewDense(r, c)
	for i := 0; i < r; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// HCatInto horizontally concatenates the given matrices into dst, whose
// shape must already match (same Rows, Cols = Σ ms[i].Cols). It is the
// allocation-free sibling of HCat used by the tree merges, which reuse
// one pooled concat buffer per parent instead of allocating a fresh
// |S|×(k·d) matrix on every update. Returns dst.
func HCatInto(dst *Dense, ms ...*Dense) *Dense {
	c := 0
	for _, m := range ms {
		if m.Rows != dst.Rows {
			panic(fmt.Sprintf("linalg: HCatInto row mismatch %d vs %d", m.Rows, dst.Rows))
		}
		c += m.Cols
	}
	if c != dst.Cols {
		panic(fmt.Sprintf("linalg: HCatInto column mismatch %d vs dst %d", c, dst.Cols))
	}
	for i := 0; i < dst.Rows; i++ {
		orow := dst.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return dst
}

// SliceCols returns the column range [lo,hi) as a new matrix.
func (m *Dense) SliceCols(lo, hi int) *Dense {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("linalg: SliceCols [%d,%d) out of 0..%d", lo, hi, m.Cols))
	}
	out := NewDense(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// MulDiag scales column j of m by d[j], in place, and returns m.
func (m *Dense) MulDiag(d []float64) *Dense {
	if len(d) != m.Cols {
		panic(fmt.Sprintf("linalg: MulDiag length %d != cols %d", len(d), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= d[j]
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		out.Data[i*n+i] = 1
	}
	return out
}

// MaxAbsDiff returns the largest elementwise absolute difference.
func MaxAbsDiff(a, b *Dense) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var d float64
	for i, v := range a.Data {
		if x := math.Abs(v - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}
