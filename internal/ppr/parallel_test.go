package ppr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// TestParallelSubsetMatchesSequential: worker count must not change any
// state (per-source work is independent and deterministic).
func TestParallelSubsetMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g1 := randGraph(rng, 60, 240)
	g2 := g1.Clone()
	s := []int32{1, 5, 9, 13, 17, 21}
	seq := mustPPR(NewSubset(g1, s, Params{Alpha: 0.15, RMax: 1e-3}))
	parl := mustPPR(NewSubset(g2, s, Params{Alpha: 0.15, RMax: 1e-3, Workers: 4}))

	compare := func(label string) {
		t.Helper()
		for i := range s {
			for _, pair := range [][2]*State{{seq.Fwd[i], parl.Fwd[i]}, {seq.Rev[i], parl.Rev[i]}} {
				a, b := pair[0], pair[1]
				if len(a.P) != len(b.P) || len(a.R) != len(b.R) {
					t.Fatalf("%s: state %d size mismatch", label, i)
				}
				for v, x := range a.P {
					if math.Abs(b.P[v]-x) > 1e-12 {
						t.Fatalf("%s: P mismatch at source %d node %d", label, i, v)
					}
				}
				for v, x := range a.R {
					if math.Abs(b.R[v]-x) > 1e-12 {
						t.Fatalf("%s: R mismatch at source %d node %d", label, i, v)
					}
				}
			}
		}
	}
	compare("initial build")

	var events []graph.Event
	for len(events) < 50 {
		u, v := int32(rng.Intn(60)), int32(rng.Intn(60))
		if u != v {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	must0t(seq.ApplyEvents(bgt, events))
	must0t(parl.ApplyEvents(bgt, events))
	compare("after events")
}

func TestRebuildThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randGraph(rng, 20, 60)
	sp := mustPPR(NewSubset(g, []int32{0}, Params{Alpha: 0.2, RMax: 1e-2}))
	if sp.RebuildThreshold(50) {
		t.Fatal("small batch should not trigger rebuild")
	}
	if !sp.RebuildThreshold(200) {
		t.Fatal("batch beyond 1/rmax should trigger rebuild")
	}
}
