package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
)

// Checkpoint files carry a full embedder save wrapped in a checksummed
// header:
//
//	[4B magic "TSCK"] [4B uint32 LE format version]
//	[8B uint64 LE seq of the last batch folded into the state]
//	[8B uint64 LE payload length]
//	[4B uint32 LE CRC32C over seq bytes ++ length bytes ++ payload]
//	[payload]
//
// and are published atomically: written to <name>.tmp, fsynced, renamed
// to checkpoint-<seq %016x>.ckpt, and the directory fsynced. A crash at
// any point leaves either the previous checkpoint set intact or the new
// file fully in place; a bit flip anywhere in the file fails the CRC and
// ReadCheckpoint reports a *CorruptError so the caller can fall back to
// an older checkpoint.
const (
	ckptMagic   = "TSCK"
	ckptVersion = 1
	ckptHdrLen  = 28

	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
	shardInfix = ".shard-"
)

// Sharded checkpoints split one logical checkpoint across files: one
// payload file per shard, named checkpoint-<seq>.shard-<i>.ckpt, written
// (and fsynced) before the plain checkpoint-<seq>.ckpt manifest. The
// manifest rename is the commit point — shard names fail parseCkptName
// (their hex part is not exactly 16 chars), so ListCheckpoints,
// HasState and PruneCheckpoints never observe a checkpoint whose shard
// payloads are not already durable. A crash between shard writes and
// the manifest leaves orphans that PruneShardCheckpoints collects.

// CheckpointInfo names one checkpoint file and the batch seq it covers.
type CheckpointInfo struct {
	Name string
	Seq  uint64
}

func ckptName(seq uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix) }

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(hexpart, "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// shardCkptName names shard i's payload file of the checkpoint at seq.
func shardCkptName(seq uint64, shard int) string {
	return fmt.Sprintf("%s%016x%s%d%s", ckptPrefix, seq, shardInfix, shard, ckptSuffix)
}

// parseShardCkptName inverts shardCkptName.
func parseShardCkptName(name string) (seq uint64, shard int, ok bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	hexpart, shardpart, found := strings.Cut(mid, shardInfix)
	if !found || len(hexpart) != 16 {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(hexpart, "%016x", &seq); err != nil {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(shardpart, "%d", &shard); err != nil || shard < 0 {
		return 0, 0, false
	}
	return seq, shard, true
}

// WriteCheckpoint atomically publishes payload as the checkpoint covering
// batches up to and including seq. For a sharded checkpoint this is the
// manifest — write every shard payload with WriteShardCheckpoint first.
func WriteCheckpoint(fs FS, dir string, seq uint64, payload []byte) error {
	return writeCkptFile(fs, dir, ckptName(seq), seq, payload)
}

// ShardCheckpointName returns the file name of shard i's payload of the
// checkpoint at seq, for error reporting and fault-injection targeting.
func ShardCheckpointName(seq uint64, shard int) string { return shardCkptName(seq, shard) }

// WriteShardCheckpoint atomically publishes one shard's payload of the
// checkpoint covering seq. The file is durable on return but carries no
// commit semantics of its own: the checkpoint exists only once its
// manifest (WriteCheckpoint at the same seq) lands.
func WriteShardCheckpoint(fs FS, dir string, seq uint64, shard int, payload []byte) error {
	return writeCkptFile(fs, dir, shardCkptName(seq, shard), seq, payload)
}

// writeCkptFile is the shared tmp-write/fsync/rename/dirsync body.
func writeCkptFile(fs FS, dir, name string, seq uint64, payload []byte) error {
	final := filepath.Join(dir, name)
	tmp := final + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	hdr := make([]byte, ckptHdrLen)
	copy(hdr[:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[8:24])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[24:], crc)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// ReadCheckpoint loads and verifies the named checkpoint, returning the
// seq it covers and the embedder payload. Integrity failures come back as
// a *CorruptError.
func ReadCheckpoint(fs FS, dir, name string) (uint64, []byte, error) {
	path := filepath.Join(dir, name)
	data, err := readAll(fs, path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < ckptHdrLen || string(data[:4]) != ckptMagic {
		return 0, nil, &CorruptError{Path: path, Offset: 0, Reason: "bad checkpoint magic"}
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ckptVersion {
		return 0, nil, &CorruptError{Path: path, Offset: 4,
			Reason: fmt.Sprintf("checkpoint format version %d, want %d", v, ckptVersion)}
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	plen := binary.LittleEndian.Uint64(data[16:24])
	if uint64(len(data)-ckptHdrLen) != plen {
		return 0, nil, &CorruptError{Path: path, Offset: 16,
			Reason: fmt.Sprintf("checkpoint payload is %d bytes, header says %d", len(data)-ckptHdrLen, plen)}
	}
	want := binary.LittleEndian.Uint32(data[24:28])
	crc := crc32.Update(0, castagnoli, data[8:24])
	crc = crc32.Update(crc, castagnoli, data[ckptHdrLen:])
	if crc != want {
		return 0, nil, &CorruptError{Path: path, Offset: 24,
			Reason: fmt.Sprintf("checkpoint checksum mismatch: computed %08x, stored %08x", crc, want)}
	}
	if n, ok := parseCkptName(name); ok && n != seq {
		return 0, nil, &CorruptError{Path: path, Offset: 8,
			Reason: fmt.Sprintf("checkpoint header seq %d disagrees with file name seq %d", seq, n)}
	}
	return seq, data[ckptHdrLen:], nil
}

// ReadShardCheckpoint loads and verifies one shard's payload of the
// checkpoint at seq. Integrity failures — including a header that claims
// a different seq than the file name — come back as a *CorruptError.
func ReadShardCheckpoint(fs FS, dir string, seq uint64, shard int) ([]byte, error) {
	name := shardCkptName(seq, shard)
	got, payload, err := ReadCheckpoint(fs, dir, name)
	if err != nil {
		return nil, err
	}
	if got != seq {
		return nil, &CorruptError{Path: filepath.Join(dir, name), Offset: 8,
			Reason: fmt.Sprintf("shard checkpoint header seq %d disagrees with file name seq %d", got, seq)}
	}
	return payload, nil
}

// ListCheckpoints returns the checkpoints in dir, ascending by seq.
// Temporary and foreign files are ignored.
func ListCheckpoints(fs FS, dir string) ([]CheckpointInfo, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cks []CheckpointInfo
	for _, n := range names {
		if seq, ok := parseCkptName(n); ok {
			cks = append(cks, CheckpointInfo{Name: n, Seq: seq})
		}
	}
	// Fixed-width hex names sort lexically, so ReadDir order is seq order.
	return cks, nil
}

// PruneCheckpoints removes the oldest checkpoints until keep remain.
// Removing oldest-first keeps the invariant that the surviving set is a
// suffix, so a crash mid-prune never strands a gap.
func PruneCheckpoints(fs FS, dir string, keep int) error {
	cks, err := ListCheckpoints(fs, dir)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	removed := false
	for i := 0; i < len(cks)-keep; i++ {
		if err := fs.Remove(filepath.Join(dir, cks[i].Name)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return fs.SyncDir(dir)
	}
	return nil
}

// PruneShardCheckpoints removes shard payload files whose seq has no
// surviving manifest: orphans of a crash between shard writes and the
// manifest rename, or leftovers of a manifest PruneCheckpoints already
// removed. Call it after PruneCheckpoints (and during recovery, after
// RemoveTempFiles).
func PruneShardCheckpoints(fs FS, dir string) error {
	cks, err := ListCheckpoints(fs, dir)
	if err != nil {
		return err
	}
	live := make(map[uint64]bool, len(cks))
	for _, ck := range cks {
		live[ck.Seq] = true
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, n := range names {
		if seq, _, ok := parseShardCkptName(n); ok && !live[seq] {
			if err := fs.Remove(filepath.Join(dir, n)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fs.SyncDir(dir)
	}
	return nil
}

// RemoveTempFiles deletes stranded .tmp files (checkpoints whose rename
// never happened). Call after recovery, before writing new state.
func RemoveTempFiles(fs FS, dir string) error {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			if err := fs.Remove(filepath.Join(dir, n)); err != nil {
				return err
			}
		}
	}
	return nil
}
