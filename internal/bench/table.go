// Package bench contains the experiment harness: one runner per table and
// figure of the paper's evaluation section (see DESIGN.md §3 for the
// mapping), each printing the same rows/series the paper reports, plus
// ablation runners for the design choices Tree-SVD makes. The cmd/bench
// binary and the root bench_test.go both dispatch into this package.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (scaled sizes, substitutions) printed under the
	// table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a [0,1] fraction as a percentage with two decimals.
func pct(x float64) string { return fmt.Sprintf("%.2f", 100*x) }

// dur formats a duration compactly.
func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
