package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/tree-svd/treesvd/internal/sparse"
)

// auditedTree builds a tree, churns the matrix, and runs a lazy Update so
// the caches mix freshly factored and skipped blocks — the state the
// audits have to reason about.
func auditedTree(t *testing.T) (*Tree, *sparse.DynRow) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	m := sparse.NewDynRow(8, 64, 8)
	fillLowRank(rng, m, 4, 0.01, 0.4)
	tr := mustCore(NewTree(m, testConfig(4)))
	must0t(tr.Build(bgt))
	for i := 0; i < 40; i++ {
		m.Set(rng.Intn(m.Rows()), rng.Intn(m.Cols()), rng.NormFloat64())
	}
	mustCore(tr.Update(bgt))
	return tr, m
}

func TestAuditShapesClean(t *testing.T) {
	tr, _ := auditedTree(t)
	if err := tr.AuditShapes(); err != nil {
		t.Fatalf("healthy tree failed shape audit: %v", err)
	}
	if err := tr.AuditBlocks(); err != nil {
		t.Fatalf("healthy tree failed block audit: %v", err)
	}
}

// TestAuditShapesDetectsCorruption mangles one cached structure at a time.
func TestAuditShapesDetectsCorruption(t *testing.T) {
	cases := map[string]struct {
		mutate func(*Tree)
		want   string
	}{
		"missing level-1 cache": {
			func(tr *Tree) { tr.level1[2] = nil },
			"missing level-1 cache",
		},
		"negative tail energy": {
			func(tr *Tree) { tr.level1[1].tail = -0.5 },
			"tail",
		},
		"NaN tail energy": {
			func(tr *Tree) { tr.level1[1].tail = math.NaN() },
			"tail",
		},
		"truncated upper level": {
			func(tr *Tree) { tr.upper[0] = tr.upper[0][:len(tr.upper[0])-1] },
			"upper level",
		},
		"missing root": {
			func(tr *Tree) { tr.root = nil },
			"root",
		},
		"spectrum not descending": {
			func(tr *Tree) { tr.root.S[0], tr.root.S[1] = tr.root.S[1], tr.root.S[0] },
			"spectrum",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			tr, _ := auditedTree(t)
			tc.mutate(tr)
			err := tr.AuditShapes()
			if err == nil {
				t.Fatalf("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestAuditBlockSeedReplay verifies the audit's core property: every
// level-1 cache can be reproduced bit-for-bit by re-factoring the block's
// baseline at the recorded sequence number — and a cache whose contents
// were tampered with after the fact no longer can.
func TestAuditBlockSeedReplay(t *testing.T) {
	tr, _ := auditedTree(t)
	for j := range tr.level1 {
		if err := tr.AuditBlock(j); err != nil {
			t.Fatalf("block %d failed seed replay: %v", j, err)
		}
	}

	tr.level1[3].us.Data[0] += 1e-6
	if err := tr.AuditBlock(3); err == nil {
		t.Fatal("tampered Ū cache passed seed replay")
	}
	tr, _ = auditedTree(t)
	tr.level1[3].tail *= 1.01
	if tr.level1[3].tail == 0 {
		t.Skip("block tail is exactly zero; perturbation impossible")
	}
	if err := tr.AuditBlock(3); err == nil {
		t.Fatal("tampered tail passed seed replay")
	}
}

// TestAuditBlockSkipsUnknownProvenance: caches restored from snapshots
// that predate seed recording carry seq = -1 and must be skipped, not
// failed.
func TestAuditBlockSkipsUnknownProvenance(t *testing.T) {
	tr, _ := auditedTree(t)
	tr.level1[0].seq = -1
	tr.level1[0].us.Data[0] += 1 // would fail replay if it ran
	if err := tr.AuditBlock(0); err != nil {
		t.Fatalf("seq = -1 block audited anyway: %v", err)
	}
}
