package bench

import (
	"fmt"
	"time"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/eval"
	"github.com/tree-svd/treesvd/internal/hsvd"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/rsvd"
)

// ncDatasets are the labeled profiles used for node classification.
func ncDatasets() []dataset.Profile {
	return []dataset.Profile{dataset.Patent(), dataset.MagAuthors(), dataset.Wikipedia()}
}

// lpDatasets are the link-prediction profiles.
func lpDatasets() []dataset.Profile {
	return []dataset.Profile{dataset.YouTube(), dataset.Flickr(), dataset.MagAuthors()}
}

// classify runs the NC protocol on a subset embedding.
func (o Options) classify(left *linalg.Dense, labels []int, classes int, ratio float64) float64 {
	cfg := eval.DefaultLogRegConfig()
	cfg.Seed = o.Seed
	micro, _ := eval.Classify(left, labels, classes, ratio, cfg)
	return micro
}

// RunTable1 reproduces Table 1: Micro-F1 of subset vs global embedding
// with 50% training ratio (Global-STRAP vs Subset-STRAP vs DynPPE).
func RunTable1(o Options) *Table {
	t := &Table{
		Title:  "Table 1: Micro-F1 (%) subset vs global embedding, 50% train",
		Header: []string{"Method"},
	}
	rows := map[string][]string{"Global-STRAP": nil, "Subset-STRAP": nil, "DynPPE": nil}
	order := []string{"Global-STRAP", "Subset-STRAP", "DynPPE"}
	for _, prof := range ncDatasets() {
		t.Header = append(t.Header, prof.Name)
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities

		gRes := o.runGlobalSTRAP(g, s)
		rows["Global-STRAP"] = append(rows["Global-STRAP"], pct(o.classify(gRes.Left, labels, cls, o.TrainRatio)))
		sRes := o.runSubsetSTRAP(g, s, ds.Profile.Nodes)
		rows["Subset-STRAP"] = append(rows["Subset-STRAP"], pct(o.classify(sRes.Left, labels, cls, o.TrainRatio)))
		_, dRes := o.runDynPPE(g, s)
		rows["DynPPE"] = append(rows["DynPPE"], pct(o.classify(dRes.Left, labels, cls, o.TrainRatio)))
	}
	for _, m := range order {
		t.AddRow(append([]string{m}, rows[m]...)...)
	}
	t.Notes = append(t.Notes, "expected shape: Subset-STRAP ≫ Global-STRAP; DynPPE between")
	return t
}

// RunFig3 reproduces Figure 3: NC Micro-F1 and embedding time for every
// method on the labeled datasets (last snapshot, 50% train).
func RunFig3(o Options) *Table {
	t := &Table{
		Title:  "Figure 3: NC Micro-F1 (%) / embedding time, last snapshot",
		Header: []string{"Dataset", "Method", "Micro-F1", "Time"},
	}
	for _, prof := range ncDatasets() {
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities

		type entry struct {
			name string
			res  embedResult
		}
		var entries []entry
		entries = append(entries, entry{"Global-STRAP", o.runGlobalSTRAP(g, s)})
		entries = append(entries, entry{"Subset-STRAP", o.runSubsetSTRAP(g, s, ds.Profile.Nodes)})
		_, dres := o.runDynPPE(g, s)
		entries = append(entries, entry{"DynPPE", dres})
		entries = append(entries, entry{"FREDE", o.runFREDE(g, s, ds.Profile.Nodes)})
		entries = append(entries, entry{"RandNE", o.runRandNE(g, s)})
		entries = append(entries, entry{"Tree-SVD-S", o.runTreeSVDS(g, s, ds.Profile.Nodes, false)})
		for _, e := range entries {
			t.AddRow(prof.Name, e.name, pct(o.classify(e.res.Left, labels, cls, o.TrainRatio)), dur(e.res.Elapsed))
		}
	}
	t.Notes = append(t.Notes, "expected shape: Tree-SVD-S best or tied-best F1 at RandNE-like speed")
	return t
}

// RunTable4 reproduces Table 4 + Figure 4: LP precision and embedding
// time on the social datasets.
func RunTable4(o Options) *Table {
	t := &Table{
		Title:  "Table 4 + Fig 4: link-prediction precision (%) / embedding time",
		Header: []string{"Dataset", "Method", "Precision", "Time"},
	}
	for _, prof := range lpDatasets() {
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		sp := eval.NewLinkPredSplit(g, s, 0.3, o.Seed)
		tg := sp.TrainGraph

		gRes := o.runGlobalSTRAP(tg, s)
		t.AddRow(prof.Name, "Global-STRAP", pct(sp.Precision(gRes.Left, s, gRes.Right)), dur(gRes.Elapsed))
		sRes := o.runSubsetSTRAP(tg, s, ds.Profile.Nodes)
		t.AddRow(prof.Name, "Subset-STRAP", pct(sp.Precision(sRes.Left, s, sRes.Right)), dur(sRes.Elapsed))
		fRes := o.runFREDE(tg, s, ds.Profile.Nodes)
		t.AddRow(prof.Name, "FREDE", pct(sp.Precision(fRes.Left, s, fRes.Right)), dur(fRes.Elapsed))
		rRes := o.runRandNE(tg, s)
		t.AddRow(prof.Name, "RandNE", pct(sp.PrecisionSameSpace(rRes.Right)), dur(rRes.Elapsed))
		tRes := o.runTreeSVDS(tg, s, ds.Profile.Nodes, true)
		t.AddRow(prof.Name, "Tree-SVD-S", pct(sp.Precision(tRes.Left, s, tRes.Right)), dur(tRes.Elapsed))
	}
	t.Notes = append(t.Notes, "expected shape: Tree-SVD-S ≈ Subset-STRAP > Global-STRAP > RandNE > FREDE")
	return t
}

// RunExp2 reproduces Figure 5 + Tables 5 and 6: the SVD-framework
// comparison. All three frameworks factor the *same* proximity matrix;
// only factorization time is measured.
func RunExp2(o Options) *Table {
	t := &Table{
		Title:  "Exp 2 (Fig 5, Tables 5-6): SVD frameworks on a shared proximity matrix",
		Header: []string{"Dataset", "Method", "SVD time", "Micro-F1", "LP-Precision"},
	}
	treeCfg := o.treeConfig()
	hsvdCfg := hsvd.Config{Rank: o.Dim, Blocks: treeCfg.Blocks(), Branch: treeCfg.Branch, Workers: o.Workers}
	profiles := []dataset.Profile{dataset.Patent(), dataset.MagAuthors(), dataset.Wikipedia(),
		dataset.YouTube(), dataset.Flickr()}
	for _, prof := range profiles {
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)

		var labels []int
		var sp *eval.LinkPredSplit
		embGraph := g
		if prof.Labeled {
			labels = ds.LabelsFor(s)
		} else {
			sp = eval.NewLinkPredSplit(g, s, 0.3, o.Seed)
			embGraph = sp.TrainGraph
		}
		prox := o.buildProximity(embGraph, s, ds.Profile.Nodes)
		csr := prox.M.ToCSR()

		report := func(name string, res *linalg.SVDResult, elapsed time.Duration) {
			left := res.USqrtS()
			f1, prec := "-", "-"
			if prof.Labeled {
				f1 = pct(o.classify(left, labels, ds.Profile.Communities, o.TrainRatio))
			} else {
				right := core.RightEmbeddingOf(res, csr)
				prec = pct(sp.Precision(left, s, right))
			}
			t.AddRow(prof.Name, name, dur(elapsed), f1, prec)
		}

		t0 := time.Now()
		fr := must(rsvd.FRPCA(csr, rsvd.Options{Rank: o.Dim, Seed: o.Seed, Workers: o.Workers}))
		report("FRPCA", fr, time.Since(t0))

		t0 = time.Now()
		hr := hsvd.Factorize(csr, hsvdCfg)
		report("HSVD", hr, time.Since(t0))

		t0 = time.Now()
		tree := must(core.NewTree(prox.M, treeCfg))
		must0(tree.Build(bg))
		report("Tree-SVD-S", tree.Root(), time.Since(t0))
	}
	t.Notes = append(t.Notes,
		"expected shape: all three reach the same quality; Tree-SVD-S ≪ HSVD time, competitive with FRPCA (crossover grows with n)")
	return t
}

// RunFig5Scale extends Exp. 2 with the scale series behind Figure 5's
// headline: Tree-SVD-S vs FRPCA factorization time as n grows (Twitter
// profile at 1×, 2×, 4×). The paper's "up to 3.9× faster than FRPCA"
// appears past the crossover because FRPCA's subspace iteration pays
// O(n·p²) per power step while the tree's column dimensions collapse to
// O(d) after level 1.
func RunFig5Scale(o Options) *Table {
	t := &Table{
		Title:  "Figure 5 (scale series): Tree-SVD-S vs FRPCA time vs n",
		Header: []string{"n", "nnz", "Tree-SVD-S", "FRPCA", "Speedup"},
	}
	for _, f := range []float64{1, 2, 4} {
		prof := dataset.ScaleProfile(dataset.Twitter(), f*o.Scale)
		ds := dataset.Generate(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		prox := o.buildProximity(g, s, prof.Nodes)
		csr := prox.M.ToCSR()

		t0 := time.Now()
		tree := must(core.NewTree(prox.M, o.treeConfig()))
		must0(tree.Build(bg))
		tTree := time.Since(t0)

		t0 = time.Now()
		must(rsvd.FRPCA(csr, rsvd.Options{Rank: o.Dim, Seed: o.Seed, Workers: o.Workers}))
		tF := time.Since(t0)
		t.AddRow(fmt.Sprint(prof.Nodes), fmt.Sprint(csr.NNZ()), dur(tTree), dur(tF),
			fmt.Sprintf("%.1fx", tF.Seconds()/tTree.Seconds()))
	}
	t.Notes = append(t.Notes, "expected shape: speedup crosses 1 and grows with n (paper reports up to 3.9x at n=6M)")
	return t
}

// sharedProximity is a helper for sweeps that reuse one proximity build.
func (o Options) sharedProximity(prof dataset.Profile) (*dataset.Dataset, *ppr.Proximity, []int32) {
	ds := o.load(prof)
	g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
	s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
	return ds, o.buildProximity(g, s, ds.Profile.Nodes), s
}
