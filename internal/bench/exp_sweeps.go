package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/tree-svd/treesvd/internal/baselines"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/hsvd"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// RunFig11 reproduces Figure 11: Tree-SVD-S vs HSVD with varying number
// of first-level sub-matrices b. HSVD's cost grows with b while
// Tree-SVD-S stays flat.
func RunFig11(o Options) *Table {
	t := &Table{
		Title:  "Figure 11: varying b — HSVD vs Tree-SVD-S (time / Micro-F1)",
		Header: []string{"Dataset", "b", "HSVD time", "HSVD F1", "Tree time", "Tree F1"},
	}
	for _, prof := range []dataset.Profile{dataset.Patent(), dataset.MagAuthors()} {
		ds, prox, s := o.sharedProximity(prof)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities
		csr := prox.M.ToCSR()
		for _, b := range []int{16, 64, 256} {
			t0 := time.Now()
			hr := hsvd.Factorize(csr, hsvd.Config{Rank: o.Dim, Blocks: b, Branch: 8, Workers: o.Workers})
			hTime := time.Since(t0)
			hF1 := o.classify(hr.USqrtS(), labels, cls, o.TrainRatio)

			// Match the tree shape to b: k=8, q = 1+log_k(b).
			cfg := o.treeConfig()
			cfg.Levels = 1 + int(math.Round(math.Log(float64(b))/math.Log(float64(cfg.Branch))))
			if cfg.Levels < 2 {
				cfg.Levels = 2
			}
			m := rebucket(prox, b)
			t0 = time.Now()
			tree := must(core.NewTree(m, cfg))
			must0(tree.Build(bg))
			tTime := time.Since(t0)
			tF1 := o.classify(tree.Embedding(), labels, cls, o.TrainRatio)
			t.AddRow(prof.Name, fmt.Sprint(b), dur(hTime), pct(hF1), dur(tTime), pct(tF1))
		}
	}
	t.Notes = append(t.Notes, "expected shape: HSVD time grows steeply with b; Tree-SVD-S stays flat at equal F1")
	return t
}

// rebucket copies a proximity matrix into a DynRow with a different block
// count (Fig. 11 sweeps b).
func rebucket(prox *ppr.Proximity, b int) *sparse.DynRow {
	src := prox.M
	m := sparse.NewDynRow(src.Rows(), src.Cols(), b)
	for r := 0; r < src.Rows(); r++ {
		for _, c := range src.RowColumns(r) {
			m.Set(r, int(c), src.Get(r, int(c)))
		}
	}
	return m
}

// RunFig12 reproduces Figure 12: Subset-STRAP vs Tree-SVD-S with varying
// r_max (quality and embedding time).
func RunFig12(o Options) *Table {
	t := &Table{
		Title:  "Figure 12: varying r_max — Subset-STRAP vs Tree-SVD-S",
		Header: []string{"Dataset", "r_max", "STRAP time", "STRAP F1", "Tree time", "Tree F1"},
	}
	for _, prof := range []dataset.Profile{dataset.Patent(), dataset.Wikipedia()} {
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities
		for _, rmax := range []float64{1e-3, 3e-4, 1e-4, 3e-5} {
			oo := o
			oo.RMax = rmax
			sRes := oo.runSubsetSTRAP(g, s, ds.Profile.Nodes)
			tRes := oo.runTreeSVDS(g, s, ds.Profile.Nodes, false)
			t.AddRow(prof.Name, fmt.Sprintf("%.0e", rmax),
				dur(sRes.Elapsed), pct(o.classify(sRes.Left, labels, cls, o.TrainRatio)),
				dur(tRes.Elapsed), pct(o.classify(tRes.Left, labels, cls, o.TrainRatio)))
		}
	}
	t.Notes = append(t.Notes, "expected shape: both degrade as r_max grows; Tree-SVD-S faster at equal quality")
	return t
}

// RunFig13 reproduces Figure 13: dynamic Tree-SVD quality with varying
// lazy-update threshold δ.
func RunFig13(o Options) *Table {
	t := &Table{
		Title:  "Figure 13: varying δ — dynamic Tree-SVD after batch updates",
		Header: []string{"Dataset", "delta", "AvgUpdate", "BlocksRebuilt", "Micro-F1"},
	}
	for _, prof := range ncDatasets() {
		ds := o.load(prof)
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		labels := ds.LabelsFor(s)
		cls := ds.Profile.Communities
		plan := o.planBatches(ds, exp4NumBatches, exp4Churn, nil)
		for _, delta := range []float64{0.05, 0.2, 0.45, 0.65, 0.9} {
			cfg := o.treeConfig()
			cfg.Delta = delta
			sub := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
			prox := ppr.NewProximity(sub, ds.Profile.Nodes, cfg.Blocks())
			tree := must(core.NewTree(prox.M, cfg))
			must0(tree.Build(bg))
			var elapsed time.Duration
			rebuilt := 0
			for _, b := range plan.batches {
				t0 := time.Now()
				must0(prox.ApplyEvents(bg, b))
				rebuilt += must(tree.Update(bg))
				elapsed += time.Since(t0)
			}
			t.AddRow(prof.Name, fmt.Sprintf("%.2f", delta),
				dur(elapsed/time.Duration(len(plan.batches))),
				fmt.Sprint(rebuilt),
				pct(o.classify(tree.Embedding(), labels, cls, o.TrainRatio)))
		}
	}
	t.Notes = append(t.Notes, "expected shape: smaller δ → more rebuilds, slightly better F1")
	return t
}

// RunFig14 reproduces Figure 14: cumulative maintenance cost of dynamic
// Tree-SVD vs rebuilding Tree-SVD-S as update batches accumulate — the
// cut-off analysis.
func RunFig14(o Options) *Table {
	t := &Table{
		Title:  "Figure 14: update-size cut-off — cumulative time, Tree-SVD vs Tree-SVD-S",
		Header: []string{"Dataset", "Batches", "Events", "Tree-SVD cum", "Tree-SVD-S cum"},
	}
	for _, prof := range []dataset.Profile{dataset.Patent(), dataset.YouTube()} {
		ds := o.load(prof)
		s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
		plan := o.planBatches(ds, 32, 0.12, nil)

		subD := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		proxD := ppr.NewProximity(subD, ds.Profile.Nodes, o.treeConfig().Blocks())
		treeD := must(core.NewTree(proxD.M, o.treeConfig()))
		must0(treeD.Build(bg))

		subS := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		proxS := ppr.NewProximity(subS, ds.Profile.Nodes, o.treeConfig().Blocks())
		treeS := must(core.NewTree(proxS.M, o.treeConfig()))

		var cumD, cumS time.Duration
		events := 0
		for bi, b := range plan.batches {
			events += len(b)
			t0 := time.Now()
			must0(proxD.ApplyEvents(bg, b))
			must(treeD.Update(bg))
			cumD += time.Since(t0)

			t0 = time.Now()
			must0(proxS.ApplyEvents(bg, b))
			must0(treeS.Build(bg))
			cumS += time.Since(t0)

			if n := bi + 1; n == 1 || n == 2 || n == 4 || n == 8 || n == 16 || n == 32 {
				t.AddRow(prof.Name, fmt.Sprint(n), fmt.Sprint(events), dur(cumD), dur(cumS))
			}
		}
	}
	t.Notes = append(t.Notes, "expected shape: Tree-SVD cumulative cost stays below Tree-SVD-S well past 10% of edges changed")
	return t
}

// RunAblations benches design choices beyond the paper's sweeps:
// Gaussian vs count-sketch level-1 range finder, and the Frobenius
// (Eqn. 2) trigger vs a naive nnz-count trigger.
func RunAblations(o Options) *Table {
	t := &Table{
		Title:  "Ablations: level-1 sketch and lazy-update trigger",
		Header: []string{"Variant", "Build", "AvgUpdate", "Rebuilds", "Micro-F1"},
	}
	prof := dataset.Patent()
	ds := o.load(prof)
	s := ds.SampleSubset(1, o.SubsetSize, o.Seed)
	labels := ds.LabelsFor(s)
	cls := ds.Profile.Communities
	plan := o.planBatches(ds, exp4NumBatches, exp4Churn, nil)

	type variant struct {
		name    string
		sketchy bool // count-sketch at level 1
		nnzTrig bool // replace Eqn. 2 with a naive nnz-based trigger
	}
	for _, v := range []variant{
		{"gaussian+frobenius", false, false},
		{"countsketch+frobenius", true, false},
		{"gaussian+nnz-trigger", false, true},
	} {
		cfg := o.treeConfig()
		cfg.UseCountSketch = v.sketchy
		sub := must(ppr.NewSubset(plan.startGraph.Clone(), s, o.params()))
		prox := ppr.NewProximity(sub, ds.Profile.Nodes, cfg.Blocks())
		tree := must(core.NewTree(prox.M, cfg))
		t0 := time.Now()
		must0(tree.Build(bg))
		buildTime := time.Since(t0)
		var upd time.Duration
		rebuilds := 0
		baseNNZ := blockNNZs(prox)
		for _, b := range plan.batches {
			ts := time.Now()
			must0(prox.ApplyEvents(bg, b))
			if v.nnzTrig {
				// Naive trigger: rebuild a block when its nnz changed by
				// >10% since its last rebuild (no error guarantee).
				cur := blockNNZs(prox)
				for j := range cur {
					lo := baseNNZ[j] * 9 / 10
					hi := baseNNZ[j] * 11 / 10
					if cur[j] < lo || cur[j] > hi {
						rebuilds += must(tree.ForceRebuildBlock(bg, j))
						baseNNZ[j] = cur[j]
					}
				}
			} else {
				rebuilds += must(tree.Update(bg))
			}
			upd += time.Since(ts)
		}
		t.AddRow(v.name, dur(buildTime), dur(upd/time.Duration(len(plan.batches))),
			fmt.Sprint(rebuilds), pct(o.classify(tree.Embedding(), labels, cls, o.TrainRatio)))
	}
	t.Notes = append(t.Notes, "Eqn. 2's Frobenius trigger is the guaranteed one; nnz trigger is the heuristic the paper argues against")
	return t
}

func blockNNZs(prox *ppr.Proximity) []int {
	out := make([]int, prox.M.NumBlocks())
	for j := range out {
		out[j] = prox.M.BlockNNZ(j)
	}
	return out
}

// RunFutureWork implements the paper's conclusion-section direction:
// "if we focus on a subset of users with similar properties, e.g., in the
// same age group or same city, the performance of subset embedding also
// tends to improve over global counterparts." We compare the
// subset-over-global quality gap for a random subset against a coherent
// one (drawn from three communities, the "same city" analogue).
func RunFutureWork(o Options) *Table {
	t := &Table{
		Title:  "Future work (§7): coherent vs random subsets — subset-over-global gap",
		Header: []string{"Dataset", "Subset", "Global-STRAP F1", "Tree-SVD-S F1", "Gap"},
	}
	for _, prof := range []dataset.Profile{dataset.Patent(), dataset.MagAuthors()} {
		ds := o.load(prof)
		g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
		type subsetKind struct {
			name  string
			nodes []int32
		}
		kinds := []subsetKind{
			{"random", ds.SampleSubset(1, o.SubsetSize, o.Seed)},
			{"coherent", ds.SampleSubsetFromCommunities(1, o.SubsetSize, o.Seed, 0, 1, 2)},
		}
		// Global embedding computed once per dataset and reused.
		gs := baselines.NewGlobalSTRAP(g, ppr.Params{Alpha: o.Alpha, RMax: o.GlobalRMax}, o.Dim, o.Seed)
		globalEmb := must(gs.Factorize()).Left
		for _, k := range kinds {
			labels := ds.LabelsFor(k.nodes)
			classes := ds.Profile.Communities
			gF1 := o.classify(baselines.SubsetRows(globalEmb, k.nodes), labels, classes, o.TrainRatio)
			sRes := o.runTreeSVDS(g, k.nodes, ds.Profile.Nodes, false)
			sF1 := o.classify(sRes.Left, labels, classes, o.TrainRatio)
			t.AddRow(prof.Name, fmt.Sprintf("%s(|S|=%d)", k.name, len(k.nodes)),
				pct(gF1), pct(sF1), fmt.Sprintf("%+.2f", 100*(sF1-gF1)))
		}
	}
	t.Notes = append(t.Notes, "expected shape: the subset-over-global gap holds (or grows) for property-coherent subsets")
	return t
}
