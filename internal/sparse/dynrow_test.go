package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tree-svd/treesvd/internal/linalg"
)

func TestDynRowBlockLayout(t *testing.T) {
	m := NewDynRow(3, 100, 8)
	if m.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d, want 8", m.NumBlocks())
	}
	seen := 0
	for j := 0; j < m.NumBlocks(); j++ {
		lo, hi := m.BlockRange(j)
		if lo != seen {
			t.Fatalf("block %d starts at %d, want %d", j, lo, seen)
		}
		for c := lo; c < hi; c++ {
			if m.BlockOf(c) != j {
				t.Fatalf("BlockOf(%d) = %d, want %d", c, m.BlockOf(c), j)
			}
		}
		seen = hi
	}
	if seen != 100 {
		t.Fatalf("blocks cover %d cols, want 100", seen)
	}
}

func TestDynRowRaggedLastBlock(t *testing.T) {
	m := NewDynRow(2, 10, 4) // width 3 → blocks of 3,3,3,1
	lo, hi := m.BlockRange(3)
	if lo != 9 || hi != 10 {
		t.Fatalf("last block [%d,%d), want [9,10)", lo, hi)
	}
}

func TestDynRowSetGet(t *testing.T) {
	m := NewDynRow(4, 12, 3)
	m.Set(1, 5, 2.5)
	m.Set(3, 11, -1)
	if m.Get(1, 5) != 2.5 || m.Get(3, 11) != -1 || m.Get(0, 0) != 0 {
		t.Fatal("Set/Get mismatch")
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	m.Set(1, 5, 0) // delete
	if m.Get(1, 5) != 0 || m.NNZ() != 1 {
		t.Fatal("delete via Set(0) failed")
	}
}

func TestDynRowFrobTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewDynRow(5, 20, 4)
	// Random churn including overwrites and deletions.
	for step := 0; step < 500; step++ {
		r := rng.Intn(5)
		c := rng.Intn(20)
		var v float64
		if rng.Float64() < 0.2 {
			v = 0
		} else {
			v = rng.NormFloat64()
		}
		m.Set(r, c, v)
	}
	d := m.ToDense()
	for j := 0; j < m.NumBlocks(); j++ {
		lo, hi := m.BlockRange(j)
		want := d.SliceCols(lo, hi).FrobNorm()
		if diff := math.Abs(m.BlockFrobNorm(j) - want); diff > 1e-9 {
			t.Fatalf("block %d FrobNorm %g, want %g", j, m.BlockFrobNorm(j), want)
		}
	}
	if diff := math.Abs(m.FrobNorm() - d.FrobNorm()); diff > 1e-9 {
		t.Fatalf("total FrobNorm %g, want %g", m.FrobNorm(), d.FrobNorm())
	}
}

func TestDynRowDeltaTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewDynRow(4, 16, 4)
	for step := 0; step < 100; step++ {
		m.Set(rng.Intn(4), rng.Intn(16), rng.NormFloat64())
	}
	// Take the baseline snapshot for every block.
	base := m.ToDense()
	for j := 0; j < m.NumBlocks(); j++ {
		m.MarkRebuilt(j)
		if m.DeltaFrobNorm(j) != 0 {
			t.Fatalf("block %d delta non-zero after rebuild", j)
		}
	}
	// Churn again, including entries that return exactly to baseline.
	for step := 0; step < 200; step++ {
		r, c := rng.Intn(4), rng.Intn(16)
		if rng.Float64() < 0.3 {
			m.Set(r, c, base.At(r, c)) // revert to baseline
		} else {
			m.Set(r, c, rng.NormFloat64())
		}
	}
	cur := m.ToDense()
	diff := linalg.Sub(cur, base)
	for j := 0; j < m.NumBlocks(); j++ {
		lo, hi := m.BlockRange(j)
		want := diff.SliceCols(lo, hi).FrobNorm()
		if d := math.Abs(m.DeltaFrobNorm(j) - want); d > 1e-9 {
			t.Fatalf("block %d delta %g, want %g", j, m.DeltaFrobNorm(j), want)
		}
	}
}

func TestDynRowRevertClearsNothing(t *testing.T) {
	// An entry set away from and back to its baseline contributes zero
	// delta but the block remains dirty (conservative DirtyBlocks).
	m := NewDynRow(1, 4, 2)
	m.Set(0, 0, 1)
	m.MarkRebuilt(0)
	m.MarkRebuilt(1)
	m.Set(0, 0, 2)
	m.Set(0, 0, 1)
	if m.DeltaFrobNorm(0) > 1e-12 {
		t.Fatalf("delta after revert = %g, want 0", m.DeltaFrobNorm(0))
	}
	if len(m.DirtyBlocks()) != 1 || m.DirtyBlocks()[0] != 0 {
		t.Fatalf("DirtyBlocks = %v, want [0]", m.DirtyBlocks())
	}
}

func TestDynRowBlockCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewDynRow(6, 25, 4)
	for step := 0; step < 80; step++ {
		m.Set(rng.Intn(6), rng.Intn(25), rng.NormFloat64())
	}
	d := m.ToDense()
	for j := 0; j < m.NumBlocks(); j++ {
		lo, hi := m.BlockRange(j)
		blk := m.BlockCSR(j)
		if blk.Rows != 6 || blk.Cols != hi-lo {
			t.Fatalf("block %d shape %d×%d", j, blk.Rows, blk.Cols)
		}
		if diff := linalg.MaxAbsDiff(blk.ToDense(), d.SliceCols(lo, hi)); diff > 0 {
			t.Fatalf("block %d CSR mismatch %g", j, diff)
		}
		// Column indices sorted per row.
		for r := 0; r < blk.Rows; r++ {
			for p := blk.RowPtr[r] + 1; p < blk.RowPtr[r+1]; p++ {
				if blk.ColIdx[p-1] >= blk.ColIdx[p] {
					t.Fatalf("block %d row %d unsorted", j, r)
				}
			}
		}
	}
}

func TestDynRowToCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewDynRow(5, 17, 3)
	for step := 0; step < 60; step++ {
		m.Set(rng.Intn(5), rng.Intn(17), rng.NormFloat64())
	}
	if diff := linalg.MaxAbsDiff(m.ToCSR().ToDense(), m.ToDense()); diff > 0 {
		t.Fatalf("ToCSR mismatch %g", diff)
	}
	if m.ToCSR().NNZ() != m.NNZ() {
		t.Fatal("nnz mismatch")
	}
}

func TestDynRowNNZPerBlock(t *testing.T) {
	m := NewDynRow(2, 8, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 1)
	m.Set(1, 5, 1)
	if m.BlockNNZ(0) != 2 || m.BlockNNZ(1) != 1 {
		t.Fatalf("block nnz = %d,%d want 2,1", m.BlockNNZ(0), m.BlockNNZ(1))
	}
	m.Set(0, 1, 0)
	if m.BlockNNZ(0) != 1 {
		t.Fatalf("block nnz after delete = %d, want 1", m.BlockNNZ(0))
	}
}

func TestDynRowPropertyFrobMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 2 + rng.Intn(30)
		nb := 1 + rng.Intn(6)
		m := NewDynRow(rows, cols, nb)
		for step := 0; step < 150; step++ {
			v := rng.NormFloat64()
			if rng.Float64() < 0.25 {
				v = 0
			}
			m.Set(rng.Intn(rows), rng.Intn(cols), v)
			if rng.Float64() < 0.02 {
				m.MarkRebuilt(rng.Intn(m.NumBlocks()))
			}
		}
		// Incremental ± accumulation leaves O(ε)·Σ|v²| residue in the
		// squared norm; after exact cancellation to zero the sqrt
		// amplifies it to ~1e-8, so compare with a scale-aware tolerance.
		want := m.ToDense().FrobNorm()
		return math.Abs(m.FrobNorm()-want) < 1e-7*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
