// Command doclint enforces the repository's documentation bar, beyond
// what go vet checks: every package (root, internal/..., cmd/...) must
// carry a package comment; every exported identifier of the public
// root package and of the exported-surface internal packages listed in
// exportedSurface — types, funcs, methods, consts, vars — must have a
// doc comment; and no doc comment or markdown document may contain a
// wording from the known-stale list (claims that were once true, were
// fixed, and must not creep back in a merge or a copy-paste). It prints
// one line per violation and exits non-zero if any were found;
// `make docs` runs it together with go vet.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// exportedSurface lists the directories whose exported identifiers must
// all carry doc comments: the public root package plus internal packages
// that the documentation chapters present as named building blocks.
var exportedSurface = []string{".", "internal/svdupd"}

// staleWordings are phrases that were once accurate, got invalidated by
// a later change, and were rewritten — each entry records the fix so the
// old claim cannot quietly reappear. Matching is case-insensitive over
// .go comments and .md files.
var staleWordings = []struct{ phrase, fix string }{
	// ApplyEvents' return value counts updated blocks too since the
	// incremental SVD path landed; the contract wording is "refreshed".
	{"level-1 blocks re-factored across", "say \"refreshed\" and point at LastStats for the split"},
	// The provenance chapter tracks five BENCH_*.json artifacts.
	{"two json artifacts", "the artifact list grew; count it again"},
	// The serving bench runs an 8k-node synthetic graph (BENCH_SERVE.json).
	{"4k-node graph", "BENCH_SERVE.json says nodes: 8000"},
	{"4k-node synthetic graph", "BENCH_SERVE.json says nodes: 8000"},
}

func main() {
	problems := 0
	problems += checkPackageDocs(".")
	for _, dir := range exportedSurface {
		problems += checkExported(dir)
	}
	problems += checkStaleWordings(".")
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// goDirs returns every directory under root that contains non-test .go
// files, skipping hidden and example-data directories.
func goDirs(root string) []string {
	seen := map[string]bool{}
	var dirs []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs
}

// parseDir parses one directory's non-test files with comments.
func parseDir(dir string) (map[string]*ast.Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	return pkgs, fset, err
}

// checkPackageDocs requires a package comment in every package under
// root.
func checkPackageDocs(root string) int {
	problems := 0
	for _, dir := range goDirs(root) {
		pkgs, _, err := parseDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			problems++
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				fmt.Fprintf(os.Stderr, "doclint: package %s (%s) has no package comment\n", name, dir)
				problems++
			}
		}
	}
	return problems
}

// checkExported requires a doc comment on every exported identifier of
// the package in dir: types, their exported methods, funcs, and every
// exported const/var (directly or via a documented group).
func checkExported(dir string) int {
	pkgs, fset, err := parseDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	problems := 0
	for _, pkg := range pkgs {
		d := doc.New(pkg, "./", 0)
		report := func(pos token.Pos, kind, name string) {
			fmt.Fprintf(os.Stderr, "doclint: %s: exported %s %s has no doc comment\n",
				fset.Position(pos), kind, name)
			problems++
		}
		values := func(kind string, vs []*doc.Value) {
			for _, v := range vs {
				if strings.TrimSpace(v.Doc) != "" {
					continue
				}
				// No group doc: accept a doc comment on the individual
				// spec declaring each exported name instead.
				for _, spec := range v.Decl.Specs {
					vspec, ok := spec.(*ast.ValueSpec)
					if !ok || (vspec.Doc != nil && strings.TrimSpace(vspec.Doc.Text()) != "") {
						continue
					}
					for _, ident := range vspec.Names {
						if ast.IsExported(ident.Name) {
							report(vspec.Pos(), kind, ident.Name)
							break
						}
					}
				}
			}
		}
		values("const", d.Consts)
		values("var", d.Vars)
		for _, f := range d.Funcs {
			if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
				report(f.Decl.Pos(), "func", f.Name)
			}
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				report(t.Decl.Pos(), "type", t.Name)
			}
			values("const", t.Consts)
			values("var", t.Vars)
			for _, f := range t.Funcs {
				if ast.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
					report(f.Decl.Pos(), "func", f.Name)
				}
			}
			for _, m := range t.Methods {
				if ast.IsExported(m.Name) && strings.TrimSpace(m.Doc) == "" {
					report(m.Decl.Pos(), "method", t.Name+"."+m.Name)
				}
			}
		}
	}
	return problems
}

// checkStaleWordings scans every markdown document and every .go comment
// under root for the known-stale phrases. cmd/doclint itself is exempt:
// the list lives here.
func checkStaleWordings(root string) int {
	problems := 0
	scan := func(path, text string) {
		lower := strings.ToLower(text)
		for _, w := range staleWordings {
			if strings.Contains(lower, w.phrase) {
				fmt.Fprintf(os.Stderr, "doclint: %s: stale wording %q (%s)\n", path, w.phrase, w.fix)
				problems++
			}
		}
	}
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "cmd/doclint" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".md"):
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			scan(path, string(data))
		case strings.HasSuffix(path, ".go"):
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil // a build gate's job, not doclint's
			}
			for _, cg := range f.Comments {
				scan(path, cg.Text())
			}
		}
		return nil
	})
	return problems
}
