package wal

import "github.com/tree-svd/treesvd/internal/obs"

// Metrics are the log writer's cumulative durability counters and
// latency spans. One instance is attached via Options.Met (allocated
// automatically when nil) and survives writer re-creation, so the counts
// span checkpoint/recovery cycles. Fsync latency is the WAL's dominant
// cost under SyncBatch — watch FsyncNanos against the sync policy when
// tuning acknowledged-batch durability versus throughput.
type Metrics struct {
	// Appends counts Append calls that wrote a record; AppendedBytes the
	// total record bytes (headers included) they wrote.
	Appends, AppendedBytes obs.Counter
	// Fsyncs counts File.Sync calls from every path (append policy,
	// explicit Sync, rotation, segment creation, close).
	Fsyncs obs.Counter
	// Rotations counts segment rollovers.
	Rotations obs.Counter
	// AppendNanos spans whole Append calls (including any fsync);
	// FsyncNanos spans the File.Sync calls alone.
	AppendNanos, FsyncNanos obs.Histogram
}
