package baselines

import (
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// FrequentDirections is the Liberty matrix sketch underlying FREDE: a
// 2ℓ×n buffer absorbs rows one at a time; whenever the buffer fills, an
// SVD compresses it and shrinks every singular value by the ℓ-th one,
// guaranteeing ‖AᵀA − BᵀB‖₂ ≤ ‖A‖²_F/ℓ.
type FrequentDirections struct {
	l, n  int
	buf   *linalg.Dense // 2l×n
	used  int           // occupied rows of buf
	shrnk int           // count of shrink rounds (diagnostics)
}

// NewFrequentDirections creates a sketch with ℓ retained directions over
// n-dimensional rows.
func NewFrequentDirections(l, n int) *FrequentDirections {
	return &FrequentDirections{l: l, n: n, buf: linalg.NewDense(2*l, n)}
}

// AppendSparse inserts one row given as (column, value) pairs.
func (fd *FrequentDirections) AppendSparse(cols []int32, vals []float64) {
	if fd.used == 2*fd.l {
		fd.shrink()
	}
	row := fd.buf.Row(fd.used)
	for i := range row {
		row[i] = 0
	}
	for i, c := range cols {
		row[c] = vals[i]
	}
	fd.used++
}

// shrink compresses the buffer: SVD, subtract σ_ℓ² energy, keep ℓ rows.
func (fd *FrequentDirections) shrink() {
	res := linalg.SVD(fd.buf)
	cut := 0.0
	if len(res.S) > fd.l {
		cut = res.S[fd.l-1] * res.S[fd.l-1]
	}
	keep := fd.l
	if keep > len(res.S) {
		keep = len(res.S)
	}
	for i := range fd.buf.Data {
		fd.buf.Data[i] = 0
	}
	for r := 0; r < keep; r++ {
		s2 := res.S[r]*res.S[r] - cut
		if s2 <= 0 {
			keep = r
			break
		}
		s := math.Sqrt(s2)
		row := fd.buf.Row(r)
		for c := 0; c < fd.n; c++ {
			row[c] = s * res.V.At(c, r)
		}
	}
	fd.used = keep
	fd.shrnk++
}

// Sketch returns the current ℓ×n sketch matrix (a final shrink is applied
// if the buffer holds more than ℓ rows).
func (fd *FrequentDirections) Sketch() *linalg.Dense {
	if fd.used > fd.l {
		fd.shrink()
	}
	out := linalg.NewDense(fd.l, fd.n)
	copy(out.Data, fd.buf.Data[:fd.l*fd.n])
	return out
}

// FREDE sketches the rows of a proximity matrix with frequent directions
// and derives embeddings from the single maintained sketch (Section 2.2:
// unlike Tree-SVD it keeps one compressed result, provides no Frobenius
// guarantee for the d-rank factorization, and cannot reuse past results on
// updates). Left embedding: X = M·V_B·Σ_B^{-1/2}; right: Y = V_B·Σ_B^{1/2}.
func FREDE(m *sparse.CSR, dim int) *STRAPResult {
	fd := NewFrequentDirections(dim, m.Cols)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		fd.AppendSparse(m.ColIdx[lo:hi], m.Val[lo:hi])
	}
	sk := fd.Sketch()
	res := linalg.SVD(sk)
	if res.Rank() == 0 {
		return &STRAPResult{
			Left:  linalg.NewDense(m.Rows, 0),
			Right: linalg.NewDense(m.Cols, 0),
			Root:  res,
		}
	}
	invSqrt := make([]float64, len(res.S))
	sqrtS := make([]float64, len(res.S))
	for i, s := range res.S {
		sqrtS[i] = math.Sqrt(s)
		invSqrt[i] = 1 / sqrtS[i]
	}
	left := m.MulDense(res.V).MulDiag(invSqrt)
	right := res.V.Clone().MulDiag(sqrtS)
	return &STRAPResult{Left: left, Right: right, Root: res}
}
