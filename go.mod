module github.com/tree-svd/treesvd

go 1.22
