package linalg

import (
	"fmt"
	"math"
)

// qrDeflationTol is the relative column-norm floor below which QRThin
// treats a column as numerically dependent on its predecessors.
const qrDeflationTol = 1e-13

// QRThin computes the thin QR factorization A = Q·R of an m×n matrix with
// m ≥ n using Householder reflections. Q is m×n with orthonormal columns
// and R is n×n upper triangular.
//
// The working matrix is held transposed so that every Householder vector
// and every column it touches is a contiguous slice — the inner loops are
// pure []float64 traversals.
func QRThin(a *Dense) (q, r *Dense) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QRThin requires rows ≥ cols, got %d×%d", m, n))
	}
	wt := a.T() // wt.Row(k) is column k of A
	betas := make([]float64, n)
	v0 := make([]float64, n)
	// Deflation floor: a column whose remaining norm is rounding noise
	// relative to the input must not seed a reflector — on rank-deficient
	// inputs such junk reflectors amplify noise exponentially across
	// steps. The column is zeroed instead (R gets an exact zero).
	floor := qrDeflationTol * Norm2(a.Data)
	for k := 0; k < n; k++ {
		col := wt.Row(k)
		var norm float64
		for _, x := range col[k:] {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm <= floor {
			for i := k; i < m; i++ {
				col[i] = 0
			}
			continue
		}
		alpha := col[k]
		s := norm
		if alpha > 0 {
			s = -norm
		}
		v0[k] = alpha - s
		col[k] = s
		vtv := v0[k] * v0[k]
		for _, x := range col[k+1:] {
			vtv += x * x
		}
		if vtv == 0 {
			continue
		}
		beta := 2 / vtv
		betas[k] = beta
		tail := col[k+1:]
		for j := k + 1; j < n; j++ {
			cj := wt.Row(j)
			dot := v0[k] * cj[k]
			cjTail := cj[k+1:]
			for i, vv := range tail {
				dot += vv * cjTail[i]
			}
			dot *= beta
			cj[k] -= dot * v0[k]
			for i, vv := range tail {
				cjTail[i] -= dot * vv
			}
		}
	}
	r = NewDense(n, n)
	for i := 0; i < n; i++ {
		ri := r.Row(i)
		for j := i; j < n; j++ {
			ri[j] = wt.Row(j)[i]
		}
	}
	// Accumulate Q (transposed: qt.Row(j) is column j of Q) by applying
	// reflectors in reverse to the identity's first n columns.
	qt := NewDense(n, m)
	for j := 0; j < n; j++ {
		qt.Row(j)[j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		tail := wt.Row(k)[k+1:]
		for j := 0; j < n; j++ {
			cj := qt.Row(j)
			dot := v0[k] * cj[k]
			cjTail := cj[k+1:]
			for i, vv := range tail {
				dot += vv * cjTail[i]
			}
			dot *= beta
			cj[k] -= dot * v0[k]
			for i, vv := range tail {
				cjTail[i] -= dot * vv
			}
		}
	}
	return qt.T(), r
}

// Orthonormalize replaces the columns of a with an orthonormal basis of
// their span (the Q factor of a thin QR) and returns a. It is the
// re-orthonormalization step of randomized subspace iteration.
func Orthonormalize(a *Dense) *Dense {
	q, _ := QRThin(a)
	copy(a.Data, q.Data)
	return a
}
