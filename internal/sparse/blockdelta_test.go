package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// densify expands a BlockDelta into a dense rows×width matrix for
// comparison against live − baseline computed entrywise.
func densify(d *BlockDelta, rows, width int) [][]float64 {
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, width)
	}
	for i, r := range d.Rows {
		for k, c := range d.Cols[i] {
			out[r][c] = d.Vals[i][k]
		}
	}
	return out
}

func TestBlockDeltaMatchesLiveMinusBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewDynRow(6, 25, 5)
	// Build an initial state and snapshot it as every block's baseline.
	for step := 0; step < 80; step++ {
		m.Set(rng.Intn(6), rng.Intn(25), rng.NormFloat64())
	}
	for j := 0; j < m.NumBlocks(); j++ {
		m.MarkRebuilt(j)
	}
	before := m.ToDense()
	// Churn: overwrites, deletions, inserts.
	for step := 0; step < 120; step++ {
		var v float64
		if rng.Float64() > 0.3 {
			v = rng.NormFloat64()
		}
		m.Set(rng.Intn(6), rng.Intn(25), v)
	}
	after := m.ToDense()

	for j := 0; j < m.NumBlocks(); j++ {
		lo, hi := m.BlockRange(j)
		d := m.BlockDelta(j)
		got := densify(d, 6, hi-lo)
		nnz := 0
		for r := 0; r < 6; r++ {
			for c := lo; c < hi; c++ {
				want := after.At(r, c) - before.At(r, c)
				if math.Abs(got[r][c-lo]-want) > 1e-12 {
					t.Fatalf("block %d delta[%d][%d] = %g, want %g", j, r, c-lo, got[r][c-lo], want)
				}
				if want != 0 {
					nnz++
				}
			}
		}
		if d.NNZ() != nnz {
			t.Fatalf("block %d NNZ = %d, want %d", j, d.NNZ(), nnz)
		}
	}
}

func TestBlockDeltaSortedAndDeterministic(t *testing.T) {
	build := func(seed int64) *BlockDelta {
		rng := rand.New(rand.NewSource(seed))
		m := NewDynRow(8, 16, 2)
		for step := 0; step < 60; step++ {
			m.Set(rng.Intn(8), rng.Intn(16), rng.NormFloat64())
		}
		for j := 0; j < m.NumBlocks(); j++ {
			m.MarkRebuilt(j)
		}
		for step := 0; step < 60; step++ {
			m.Set(rng.Intn(8), rng.Intn(16), rng.NormFloat64())
		}
		return m.BlockDelta(0)
	}
	d := build(42)
	for i := 1; i < len(d.Rows); i++ {
		if d.Rows[i] <= d.Rows[i-1] {
			t.Fatalf("rows not strictly ascending: %v", d.Rows)
		}
	}
	for i := range d.Rows {
		for k := 1; k < len(d.Cols[i]); k++ {
			if d.Cols[i][k] <= d.Cols[i][k-1] {
				t.Fatalf("row %d cols not strictly ascending: %v", d.Rows[i], d.Cols[i])
			}
		}
	}
	// Map iteration order must not leak into the extraction.
	for trial := 0; trial < 5; trial++ {
		if again := build(42); !reflect.DeepEqual(d, again) {
			t.Fatalf("BlockDelta not deterministic:\n%+v\nvs\n%+v", d, again)
		}
	}
}

func TestBlockDeltaDropsEntriesBackAtBaseline(t *testing.T) {
	m := NewDynRow(3, 8, 1)
	m.Set(1, 2, 4.0)
	m.Set(2, 3, -1.5)
	for j := 0; j < m.NumBlocks(); j++ {
		m.MarkRebuilt(j)
	}
	// Move an entry away and exactly back; delete-then-restore another.
	m.Set(1, 2, 9.0)
	m.Set(1, 2, 4.0)
	m.Set(2, 3, 0)
	m.Set(2, 3, -1.5)
	// One genuine change so the block is dirty for a reason.
	m.Set(0, 5, 7.0)
	if d := m.BlockDelta(0); d.NNZ() != 1 || d.Rows[0] != 0 || d.Cols[0][0] != 5 || d.Vals[0][0] != 7.0 {
		t.Fatalf("expected single delta (0,5)=7, got %+v", d)
	}
}
