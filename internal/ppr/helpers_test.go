package ppr

import "context"

// bgt is the test-wide context; cancellation paths build their own.
var bgt = context.Background()

// mustPPR unwraps constructor results in tests.
func mustPPR[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must0t fails the calling test (via panic) on an unexpected error.
func must0t(err error) {
	if err != nil {
		panic(err)
	}
}
