package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// ringSize is the number of most-recent observations a Histogram retains
// for quantile estimation. A power of two so the index wrap is a mask.
const ringSize = 512

// Histogram records int64 observations (by convention nanoseconds)
// without locks or allocation: cumulative count/sum/min/max are atomics,
// and the last ringSize observations live in a fixed ring buffer from
// which Snapshot estimates quantiles. Quantiles therefore describe the
// recent window, while Count/Sum/Min/Max cover the histogram's whole
// lifetime. The zero value is ready to use; all methods are safe for
// concurrent use.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	// minP1 holds min+1 so the zero value means "no observation yet"
	// (observations are assumed non-negative, which holds for durations).
	minP1 atomic.Int64
	max   atomic.Int64
	pos   atomic.Uint64
	ring  [ringSize]atomic.Int64
}

// Observe records one value. Values are assumed non-negative; negative
// values are clamped to 0 so the min/max sentinels stay sound.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.minP1.Load()
		if old != 0 && v+1 >= old {
			break
		}
		if h.minP1.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.ring[(h.pos.Add(1)-1)%ringSize].Store(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// HistStats is a point-in-time view of a Histogram. Count, Sum, Min and
// Max are lifetime aggregates; the quantiles are estimated from the most
// recent ringSize observations.
type HistStats struct {
	Count               uint64
	Sum, Min, Max       int64
	P50, P90, P99, P999 int64
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistStats) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Snapshot returns the current statistics. Fields are read individually
// atomically; under concurrent writes the set is approximately — not
// transactionally — consistent (e.g. Sum may include an observation Count
// does not yet). This is the documented contract of the whole package.
func (h *Histogram) Snapshot() HistStats {
	s := HistStats{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.minP1.Load(); m != 0 {
		s.Min = m - 1
	}
	n := ringSize
	if s.Count < ringSize {
		n = int(s.Count)
	}
	if n == 0 {
		return s
	}
	window := make([]int64, n)
	for i := range window {
		window[i] = h.ring[i].Load()
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	s.P50 = quantile(window, 0.50)
	s.P90 = quantile(window, 0.90)
	s.P99 = quantile(window, 0.99)
	// With a 512-slot window the p999 is effectively the window max; it
	// exists so latency SLOs (the serving layer's p999 target) read from
	// the same surface as the rest of the quantiles.
	s.P999 = quantile(window, 0.999)
	return s
}

// quantile returns the q-th quantile of a sorted non-empty window using
// the nearest-rank method.
func quantile(sorted []int64, q float64) int64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
