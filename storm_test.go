package treesvd

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/tree-svd/treesvd/internal/check"
)

// TestSnapshotImmutableUnderStorm pins one published snapshot, hashes its
// complete observable state (X, Y, root spectrum) with the harness
// fingerprint, then hammers the embedder with an update storm while
// concurrent readers keep materializing the pinned snapshot's right
// embedding. The fingerprint afterwards must be bit-for-bit identical:
// published versions never change, no matter what happens to the pipeline
// that produced them. Run with -race.
func TestSnapshotImmutableUnderStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 60
	g := buildGraph(rng, n, 240)
	subset := []int32{1, 4, 8, 15, 16, 23}
	emb := mustTB(New(g, subset, Config{Dim: 8, RMax: 1e-3, MaxNodes: n + 8, Workers: 2}))

	pinned := emb.Snapshot()
	before := check.Snapshot(pinned.Embedding(), pinned.RightEmbedding(), pinned.Spectrum())
	wantNodes := pinned.NumNodes()

	batches := make([][]Event, 8)
	for i := range batches {
		batches[i] = insertBatch(rng, n, 20)
	}
	// One batch grows the graph so later snapshots see more nodes than the
	// pinned one — its NumNodes must not move with them.
	batches[3] = append(batches[3], Event{U: 0, V: int32(n), Type: Insert})

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := check.Snapshot(pinned.Embedding(), pinned.RightEmbedding(), pinned.Spectrum()); got != before {
					t.Errorf("pinned snapshot changed mid-storm: fingerprint %x, want %x", got, before)
					return
				}
			}
		}()
	}
	ctx := context.Background()
	for i, b := range batches {
		if _, err := emb.ApplyEvents(ctx, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	wg.Wait()

	if after := check.Snapshot(pinned.Embedding(), pinned.RightEmbedding(), pinned.Spectrum()); after != before {
		t.Fatalf("pinned snapshot mutated by update storm: fingerprint %x, want %x", after, before)
	}
	if pinned.NumNodes() != wantNodes {
		t.Fatalf("pinned snapshot's node count moved: %d, want %d", pinned.NumNodes(), wantNodes)
	}
	if fresh := emb.Snapshot(); fresh.NumNodes() != n+1 {
		t.Fatalf("fresh snapshot sees %d nodes, want %d", fresh.NumNodes(), n+1)
	}
}
