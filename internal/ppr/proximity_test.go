package ppr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
)

func buildSubset(rng *rand.Rand, n, m, subsetSize int, params Params) (*graph.Graph, []int32, *Subset) {
	g := randGraph(rng, n, m)
	perm := rng.Perm(n)
	s := make([]int32, subsetSize)
	for i := range s {
		s[i] = int32(perm[i])
	}
	return g, s, mustPPR(NewSubset(g, s, params))
}

// proximityWant computes the expected M value directly from the states.
func proximityWant(sub *Subset, i int, v int32) float64 {
	rmax := sub.Engine.Params.RMax
	arg := (sub.Fwd[i].P[v] + sub.Rev[i].P[v]) / rmax
	if arg <= 1 {
		return 0
	}
	return math.Log(arg)
}

func checkProximityConsistent(t *testing.T, pr *Proximity) {
	t.Helper()
	sub := pr.Sub
	n := pr.M.Cols()
	for i := range sub.S {
		for v := 0; v < n; v++ {
			want := proximityWant(sub, i, int32(v))
			if got := pr.M.Get(i, v); math.Abs(got-want) > 1e-12 {
				t.Fatalf("M[%d][%d] = %g, want %g", i, v, got, want)
			}
		}
	}
}

func TestProximityInitialBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_, _, sub := buildSubset(rng, 30, 120, 5, Params{Alpha: 0.15, RMax: 1e-3})
	pr := NewProximity(sub, 30, 4)
	checkProximityConsistent(t, pr)
	if pr.M.NNZ() == 0 {
		t.Fatal("proximity matrix is empty")
	}
}

func TestProximityNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, _, sub := buildSubset(rng, 25, 100, 4, Params{Alpha: 0.2, RMax: 1e-3})
	pr := NewProximity(sub, 25, 4)
	d := pr.M.ToDense()
	for _, v := range d.Data {
		if v < 0 {
			t.Fatalf("negative proximity entry %g", v)
		}
	}
}

func TestProximityIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, _, sub := buildSubset(rng, 30, 110, 6, Params{Alpha: 0.15, RMax: 1e-3})
	pr := NewProximity(sub, 30, 4)

	// Apply a few event batches incrementally.
	for batch := 0; batch < 3; batch++ {
		var events []graph.Event
		for len(events) < 15 {
			u, v := int32(rng.Intn(30)), int32(rng.Intn(30))
			if rng.Float64() < 0.75 {
				if u != v && !g.HasEdge(u, v) {
					events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
				}
			} else if g.HasEdge(u, v) && g.OutDeg(u) > 1 {
				events = append(events, graph.Event{U: u, V: v, Type: graph.Delete})
			}
		}
		must0t(pr.ApplyEvents(bgt, events))
		checkProximityConsistent(t, pr)
	}
}

func TestProximityRebuildRefreshAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, _, sub := buildSubset(rng, 20, 80, 4, Params{Alpha: 0.2, RMax: 1e-3})
	pr := NewProximity(sub, 20, 4)
	before := pr.M.ToDense()

	// Mutate the graph behind the subset's back, then rebuild from scratch.
	for i := 0; i < 10; i++ {
		g.InsertEdge(int32(rng.Intn(20)), int32(rng.Intn(20)))
	}
	must0t(sub.Rebuild(bgt))
	pr.RefreshAll()
	checkProximityConsistent(t, pr)
	// The matrix should actually have changed.
	if linalg.MaxAbsDiff(before, pr.M.ToDense()) == 0 {
		t.Fatal("proximity unchanged after graph mutation + rebuild")
	}
}

func TestProximityDynamicVsScratchClose(t *testing.T) {
	// End-to-end: proximity maintained incrementally through events stays
	// close (not identical — push is approximate) to a scratch-built one.
	rng := rand.New(rand.NewSource(14))
	params := Params{Alpha: 0.15, RMax: 1e-4}
	g, s, sub := buildSubset(rng, 40, 160, 6, params)
	pr := NewProximity(sub, 40, 4)

	var events []graph.Event
	for len(events) < 30 {
		u, v := int32(rng.Intn(40)), int32(rng.Intn(40))
		if u != v && !g.HasEdge(u, v) {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	must0t(pr.ApplyEvents(bgt, events))

	subScratch := mustPPR(NewSubset(g, s, params))
	prScratch := NewProximity(subScratch, 40, 4)

	dyn := pr.M.ToDense()
	scr := prScratch.M.ToDense()
	// Tolerance: log-scale entries built from estimates that differ by at
	// most the residue mass; allow a loose but meaningful band.
	diff := linalg.Sub(dyn, scr).FrobNorm()
	base := scr.FrobNorm()
	if diff > 0.15*base {
		t.Fatalf("dynamic vs scratch proximity drift too large: %g vs base %g", diff, base)
	}
}

func TestSubsetRejectsOutOfRange(t *testing.T) {
	g := graph.New(3)
	g.InsertEdge(0, 1)
	if _, err := NewSubset(g, []int32{5}, Params{Alpha: 0.2, RMax: 0.1}); err == nil {
		t.Fatal("expected error on out-of-range subset node")
	}
}

func TestProximitySigmoidTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g, _, sub := buildSubset(rng, 25, 100, 4, Params{Alpha: 0.2, RMax: 1e-3})
	_ = g
	prLog := NewProximity(sub, 25, 4)
	prSig := NewProximityWith(sub, 25, 4, Sigmoid)
	if prSig.M.NNZ() != prLog.M.NNZ() {
		t.Fatalf("transforms keep different supports: %d vs %d", prSig.M.NNZ(), prLog.M.NNZ())
	}
	// Sigmoid values are bounded in (0,1); log values are unbounded.
	foundAboveOne := false
	for i := 0; i < 4; i++ {
		for _, c := range prSig.M.RowColumns(i) {
			v := prSig.M.Get(i, int(c))
			// Large arguments saturate to exactly 1 in float64.
			if v <= 0 || v > 1 {
				t.Fatalf("sigmoid value %g outside (0,1]", v)
			}
			if prLog.M.Get(i, int(c)) > 1 {
				foundAboveOne = true
			}
		}
	}
	if !foundAboveOne {
		t.Fatal("test premise broken: no log value above 1")
	}
	// Incremental maintenance honors the transform.
	var events []graph.Event
	for len(events) < 15 {
		u, v := int32(rng.Intn(25)), int32(rng.Intn(25))
		if u != v {
			events = append(events, graph.Event{U: u, V: v, Type: graph.Insert})
		}
	}
	must0t(prSig.ApplyEvents(bgt, events))
	for i := 0; i < 4; i++ {
		for _, c := range prSig.M.RowColumns(i) {
			if v := prSig.M.Get(i, int(c)); v <= 0 || v > 1 {
				t.Fatalf("post-update sigmoid value %g outside (0,1]", v)
			}
		}
	}
}
