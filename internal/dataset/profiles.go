package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/tree-svd/treesvd/internal/graph"
)

// The profiles below mirror Table 3 of the paper scaled to sizes a single
// CPU core can sweep: node counts shrink ~300-2000×, the edge/node ratio,
// class count |C|, and snapshot count τ are preserved. Scale or Seed can
// be overridden before Generate.

// Patent mirrors the Patent citation graph (2.7M/14M, |C|=6, τ=25).
func Patent() Profile {
	return Profile{Name: "Patent", Nodes: 9000, TargetEdges: 46000,
		Communities: 6, Labeled: true, Snapshots: 25, Homophily: 0.62, Seed: 101}
}

// MagAuthors mirrors Mag-authors (5.8M/27.7M, |C|=19, τ=9).
func MagAuthors() Profile {
	return Profile{Name: "Mag-authors", Nodes: 11000, TargetEdges: 52000,
		Communities: 19, Labeled: true, Snapshots: 9, Homophily: 0.62, Seed: 102}
}

// Wikipedia mirrors the Wikipedia web-link graph (6.2M/178M, |C|=10, τ=20).
func Wikipedia() Profile {
	return Profile{Name: "Wikipedia", Nodes: 10000, TargetEdges: 280000,
		Communities: 10, Labeled: true, Snapshots: 20, Homophily: 0.6, Seed: 103}
}

// YouTube mirrors the YouTube social network (3.2M/9.4M, τ=8, unlabeled).
func YouTube() Profile {
	return Profile{Name: "YouTube", Nodes: 10000, TargetEdges: 30000,
		Communities: 12, Labeled: false, Snapshots: 8, Homophily: 0.75, Seed: 104}
}

// Flickr mirrors the Flickr social network (2.3M/33.1M, τ=6, unlabeled).
func Flickr() Profile {
	return Profile{Name: "Flickr", Nodes: 8000, TargetEdges: 115000,
		Communities: 12, Labeled: false, Snapshots: 6, Homophily: 0.75, Seed: 105}
}

// Twitter mirrors the Twitter graph of Exp. 5 (41.6M/1.5B, τ=8,
// unlabeled) — the scalability stress profile, largest of the suite.
func Twitter() Profile {
	return Profile{Name: "Twitter", Nodes: 24000, TargetEdges: 860000,
		Communities: 16, Labeled: false, Snapshots: 8, Homophily: 0.7, Seed: 106}
}

// ByName resolves a profile by its (case-sensitive) Table 3 name.
func ByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// AllProfiles lists every built-in profile in Table 3 order.
func AllProfiles() []Profile {
	return []Profile{Patent(), MagAuthors(), Wikipedia(), YouTube(), Flickr(), Twitter()}
}

// ScaleProfile returns p resized by factor f (nodes and edges), keeping
// everything else; used by quick tests and smoke benches.
func ScaleProfile(p Profile, f float64) Profile {
	p.Nodes = int(float64(p.Nodes) * f)
	if p.Nodes < 16 {
		p.Nodes = 16
	}
	p.TargetEdges = int(float64(p.TargetEdges) * f)
	if p.TargetEdges < 4*p.Nodes {
		p.TargetEdges = 4 * p.Nodes
	}
	return p
}

// SampleSubset draws `size` distinct nodes that already have an out-edge
// at snapshot t (the paper samples S from the first snapshot's topology).
func (d *Dataset) SampleSubset(t, size int, seed int64) []int32 {
	g := d.Stream.BuildSnapshot(t)
	var candidates []int32
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		if g.OutDeg(v) > 0 {
			candidates = append(candidates, v)
		}
	}
	if size > len(candidates) {
		size = len(candidates)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(a, b int) {
		candidates[a], candidates[b] = candidates[b], candidates[a]
	})
	out := append([]int32(nil), candidates[:size]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// LabelsFor extracts the labels of the given nodes (panics on unlabeled
// datasets).
func (d *Dataset) LabelsFor(nodes []int32) []int {
	if d.Labels == nil {
		panic("dataset: " + d.Profile.Name + " is unlabeled")
	}
	out := make([]int, len(nodes))
	for i, v := range nodes {
		out[i] = d.Labels[v]
	}
	return out
}

// SnapshotGraph materializes the graph at snapshot t (1-based).
func (d *Dataset) SnapshotGraph(t int) *graph.Graph { return d.Stream.BuildSnapshot(t) }

// SampleSubsetFromCommunities draws `size` distinct active-at-snapshot-t
// nodes whose label belongs to comms — the "subset of users with similar
// properties (same age group, same city)" scenario of the paper's
// conclusion. Labeled datasets only.
func (d *Dataset) SampleSubsetFromCommunities(t, size int, seed int64, comms ...int) []int32 {
	if d.Labels == nil {
		panic("dataset: " + d.Profile.Name + " is unlabeled")
	}
	want := make(map[int]bool, len(comms))
	for _, c := range comms {
		want[c] = true
	}
	g := d.Stream.BuildSnapshot(t)
	var candidates []int32
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		if g.OutDeg(v) > 0 && want[d.Labels[v]] {
			candidates = append(candidates, v)
		}
	}
	if size > len(candidates) {
		size = len(candidates)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(a, b int) {
		candidates[a], candidates[b] = candidates[b], candidates[a]
	})
	out := append([]int32(nil), candidates[:size]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
