package treesvd

import "context"

// bgt is the test-wide context; cancellation tests build their own.
var bgt = context.Background()

// mustTB unwraps (v, err) results in tests and benchmarks.
func mustTB[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must0tb fails the calling test/benchmark (via panic) on an error.
func must0tb(err error) {
	if err != nil {
		panic(err)
	}
}
