package linalg

import "sort"

// symEigTol is the relative off-diagonal tolerance at which the cyclic
// Jacobi iteration is considered converged.
const symEigTol = 1e-12

// symEigMaxSweeps bounds the number of Jacobi sweeps. Cyclic Jacobi
// converges quadratically; well-conditioned inputs need < 10 sweeps.
const symEigMaxSweeps = 60

// sortEig reorders eigenpairs so eigenvalues are descending.
func sortEig(lambda []float64, v *Dense) {
	n := len(lambda)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lambda[idx[a]] > lambda[idx[b]] })
	newL := make([]float64, n)
	newV := NewDense(v.Rows, v.Cols)
	for to, from := range idx {
		newL[to] = lambda[from]
		for r := 0; r < v.Rows; r++ {
			newV.Set(r, to, v.At(r, from))
		}
	}
	copy(lambda, newL)
	copy(v.Data, newV.Data)
}
