package obs

import (
	"context"
	"runtime/pprof"
)

// StageLabel is the pprof label key every Stage call sets; filter CPU
// profiles with it, e.g. `go tool pprof -tagfocus treesvd_stage=tree.level1`.
const StageLabel = "treesvd_stage"

// Stage runs f with the goroutine labeled as executing the named pipeline
// stage, so CPU profile samples — including those of worker goroutines
// spawned inside f, which inherit the label — are attributed to the
// stage. Nested stages override the label for their extent, giving the
// innermost attribution.
func Stage(ctx context.Context, stage string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(StageLabel, stage), f)
}
