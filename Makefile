# Tree-SVD developer targets. `make ci` is the full gate: vet, build,
# tests, the race-detector pass over the concurrency-sensitive packages
# (the public facade and everything under internal/), and the short-mode
# differential fuzz of the correctness harness.

GO ?= go

# Seed count for `make fuzz`; each seed is one adversarial churn stream
# driven through the differential harness (internal/check).
SEEDS ?= 16

.PHONY: ci vet build test race differential fuzz bench bench-kernels fmt

ci: vet build test race differential

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... .

# Differential correctness harness at the default seed count, under the
# race detector — the CI gate for the dynamic path.
differential:
	$(GO) test -race -run TestDifferential -count=1 ./internal/check

# Configurable-depth fuzz: make fuzz SEEDS=64
fuzz:
	TREESVD_FUZZ_SEEDS=$(SEEDS) $(GO) test -run TestDifferential -count=1 -v ./internal/check

bench:
	$(GO) test -run '^$$' -bench . -benchtime 50x .

# Emits BENCH_KERNELS.json: ns/op, allocs/op and B/op for every hot
# linear-algebra kernel across worker budgets (see internal/linalg/bench_test.go).
bench-kernels:
	BENCH_KERNELS_OUT=$(CURDIR)/BENCH_KERNELS.json $(GO) test -run TestEmitKernelBench -v ./internal/linalg

fmt:
	gofmt -l .
