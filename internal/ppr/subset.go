package ppr

import (
	"context"
	"fmt"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/par"
)

// Subset maintains forward and reverse PPR states for every node of a
// subset S over one shared dynamic graph, implementing the per-snapshot
// update loop of the paper: per edge event, adjust every state (Algorithm 2
// lines 1-7), then re-push all violating residues (lines 8-11).
//
// Per-source work (initial pushes, event replay, repair pushes) is
// embarrassingly parallel; with Params.Workers > 1 it fans out across a
// worker pool, each worker owning its own push scratch. Every per-source
// task is atomic: a cancelled ApplyEvents/Rebuild leaves each source either
// fully processed or untouched, never half-adjusted.
type Subset struct {
	Engine *Engine
	S      []int32
	Fwd    []*State // forward PPR p_s, one per subset node (nil if disabled)
	Rev    []*State // reverse-graph PPR p⊤_s, one per subset node (nil if disabled)

	engines []*Engine // per-worker scratch engines sharing Engine.G
}

// NewSubset builds forward and reverse PPR states for every s ∈ S on the
// current graph, running the initial pushes. Reverse states capture the
// transposed-graph PPR used by the STRAP proximity (Section 3.1).
func NewSubset(g *graph.Graph, s []int32, params Params) (*Subset, error) {
	return NewSubsetDirs(g, s, params, true, true)
}

// NewSubsetDirs is NewSubset with per-direction control: hashing-based
// methods like DynPPE only need the forward vectors.
func NewSubsetDirs(g *graph.Graph, s []int32, params Params, fwd, rev bool) (*Subset, error) {
	for _, v := range s {
		if int(v) >= g.NumNodes() || v < 0 {
			return nil, fmt.Errorf("ppr: subset node %d outside graph with %d nodes", v, g.NumNodes())
		}
	}
	sp, err := newSubsetShell(g, s, params)
	if err != nil {
		return nil, err
	}
	if fwd {
		sp.Fwd = make([]*State, len(s))
	}
	if rev {
		sp.Rev = make([]*State, len(s))
	}
	if err := par.ForWorkerErr(nil, len(sp.S), par.Workers(sp.Engine.Params.Workers), func(worker, i int) error {
		eng := sp.engines[worker]
		if fwd {
			sp.Fwd[i] = NewState(sp.S[i], graph.Forward)
			eng.Push(sp.Fwd[i])
		}
		if rev {
			sp.Rev[i] = NewState(sp.S[i], graph.Reverse)
			eng.Push(sp.Rev[i])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return sp, nil
}

// RestoreSubset rebuilds a Subset from persisted states without running
// any pushes (the states are taken as-is). Used by the save/load path.
// Unlike NewSubsetDirs it receives states from an untrusted decode, so it
// re-runs the structural checks a fresh build guarantees by construction:
// subset ids inside the graph, one state per subset node in matching
// order and direction, and every estimate/residue key a valid node id. A
// corrupted save errors here instead of panicking on first use.
func RestoreSubset(g *graph.Graph, s []int32, params Params, fwd, rev []*State) (*Subset, error) {
	for _, v := range s {
		if int(v) >= g.NumNodes() || v < 0 {
			return nil, fmt.Errorf("ppr: restore: subset node %d outside graph with %d nodes", v, g.NumNodes())
		}
	}
	if err := validateStates(g, s, fwd, graph.Forward); err != nil {
		return nil, err
	}
	if err := validateStates(g, s, rev, graph.Reverse); err != nil {
		return nil, err
	}
	sp, err := newSubsetShell(g, s, params)
	if err != nil {
		return nil, err
	}
	sp.Fwd = fwd
	sp.Rev = rev
	return sp, nil
}

// validateStates checks one direction's restored state slice against the
// subset and the graph. A nil slice is valid (direction disabled).
func validateStates(g *graph.Graph, s []int32, states []*State, dir graph.Direction) error {
	if states == nil {
		return nil
	}
	if len(states) != len(s) {
		return fmt.Errorf("ppr: restore: %d %v states for a subset of %d nodes", len(states), dir, len(s))
	}
	n := int32(g.NumNodes())
	for i, st := range states {
		switch {
		case st == nil:
			return fmt.Errorf("ppr: restore: nil %v state for subset node %d", dir, s[i])
		case st.Source != s[i]:
			return fmt.Errorf("ppr: restore: %v state %d has source %d, want subset node %d", dir, i, st.Source, s[i])
		case st.Dir != dir:
			return fmt.Errorf("ppr: restore: state for subset node %d has direction %v, want %v", s[i], st.Dir, dir)
		case st.P == nil || st.R == nil:
			return fmt.Errorf("ppr: restore: %v state for subset node %d has nil maps", dir, s[i])
		}
		for u := range st.P {
			if u < 0 || u >= n {
				return fmt.Errorf("ppr: restore: estimate key %d of source %d outside graph with %d nodes", u, st.Source, n)
			}
		}
		for u := range st.R {
			if u < 0 || u >= n {
				return fmt.Errorf("ppr: restore: residue key %d of source %d outside graph with %d nodes", u, st.Source, n)
			}
		}
	}
	return nil
}

// newSubsetShell allocates the shared engine and per-worker scratch engines.
func newSubsetShell(g *graph.Graph, s []int32, params Params) (*Subset, error) {
	eng, err := NewEngine(g, params)
	if err != nil {
		return nil, err
	}
	sp := &Subset{Engine: eng, S: append([]int32(nil), s...)}
	w := par.Workers(params.Workers)
	sp.engines = make([]*Engine, w)
	sp.engines[0] = sp.Engine
	for i := 1; i < w; i++ {
		sp.engines[i], _ = NewEngine(g, params) // params already validated
		sp.engines[i].Met = eng.Met             // one shared counter set per subset
	}
	return sp, nil
}

// Metrics returns the subset's shared work counters (see Metrics).
func (sp *Subset) Metrics() *Metrics { return sp.Engine.Met }

// Applied records one effective graph mutation together with the
// post-event degrees the Algorithm 2 corrections need, so the per-source
// replay can run after (and independent of) the graph mutation. A
// sharded embedder's coordinator advances the shared graph once with
// ApplyAll and fans the resulting slice out to every shard's Repair.
type Applied struct {
	Ev      graph.Event
	OutDegU float64 // post-event out-degree of U (forward adjustment)
	InDegV  float64 // post-event in-degree of V (reverse adjustment)
}

// ApplyAll advances g through the events sequentially (event order
// matters), recording every effective mutation with the post-event
// degrees Repair needs. Duplicate inserts and missing deletes leave the
// graph unchanged and are dropped from the result.
func ApplyAll(g *graph.Graph, events []graph.Event) []Applied {
	applied := make([]Applied, 0, len(events))
	for _, ev := range events {
		if !g.Apply(ev) {
			continue // duplicate insert / missing delete: graph unchanged
		}
		applied = append(applied, Applied{
			Ev:      ev,
			OutDegU: float64(g.OutDeg(ev.U)),
			InDegV:  float64(g.InDeg(ev.V)),
		})
	}
	return applied
}

// ApplyEvents advances the shared graph through the events and
// incrementally repairs every state. Cost O(|S|·(τ + 1/r_max)) per
// Theorem 3.7's first term. The graph mutation is sequential (event order
// matters); the per-source corrections and repair pushes run on the
// worker pool with ctx-aware cancellation. On a non-nil error the graph
// has already advanced but some sources may not have been repaired —
// callers must recover by a full Rebuild before trusting the estimates.
func (sp *Subset) ApplyEvents(ctx context.Context, events []graph.Event) error {
	return sp.Repair(ctx, ApplyAll(sp.Engine.G, events))
}

// Repair replays the Algorithm 2 corrections for an already-applied
// event slice (see ApplyAll) on every state and re-pushes the violating
// residues. The graph must already reflect the events; it is only read
// here, so several Subsets sharing one graph (the sharded layout) may
// Repair the same slice concurrently. On a non-nil error some sources
// may not have been repaired — recover with Rebuild.
func (sp *Subset) Repair(ctx context.Context, applied []Applied) error {
	if len(applied) == 0 {
		return nil
	}
	// The correction count is a closed form — one Algorithm 2 adjustment
	// per (applied event, source, enabled direction) — so the τ cost term
	// is recorded with a single atomic add instead of per-call counting.
	dirs := uint64(0)
	if sp.Fwd != nil {
		dirs++
	}
	if sp.Rev != nil {
		dirs++
	}
	sp.Engine.Met.Adjusts.Add(uint64(len(applied)) * uint64(len(sp.S)) * dirs)
	return par.ForWorkerErr(ctx, len(sp.S), par.Workers(sp.Engine.Params.Workers), func(worker, i int) error {
		eng := sp.engines[worker]
		if sp.Fwd != nil {
			st := sp.Fwd[i]
			for _, ae := range applied {
				eng.adjustWithDeg(st, ae.Ev.U, ae.Ev.V, ae.Ev.Type, ae.OutDegU)
			}
			eng.Push(st)
		}
		if sp.Rev != nil {
			st := sp.Rev[i]
			for _, ae := range applied {
				eng.adjustWithDeg(st, ae.Ev.V, ae.Ev.U, ae.Ev.Type, ae.InDegV)
			}
			eng.Push(st)
		}
		return nil
	})
}

// Rebuild recomputes every state from scratch on the current graph, the
// O(|S|/r_max) fallback of Theorem 3.7 for very large batches. Fresh
// states replace the old ones per source only after that source's pushes
// finish, so a cancelled Rebuild leaves every state either old-and-valid
// or new-and-valid.
func (sp *Subset) Rebuild(ctx context.Context) error {
	dirs := uint64(0)
	if sp.Fwd != nil {
		dirs++
	}
	if sp.Rev != nil {
		dirs++
	}
	sp.Engine.Met.SourceRebuilds.Add(uint64(len(sp.S)) * dirs)
	return par.ForWorkerErr(ctx, len(sp.S), par.Workers(sp.Engine.Params.Workers), func(worker, i int) error {
		eng := sp.engines[worker]
		if sp.Fwd != nil {
			st := NewState(sp.S[i], graph.Forward)
			eng.Push(st)
			sp.Fwd[i] = st
		}
		if sp.Rev != nil {
			st := NewState(sp.S[i], graph.Reverse)
			eng.Push(st)
			sp.Rev[i] = st
		}
		return nil
	})
}

// RebuildThreshold reports whether a batch of size tau is past the point
// where Theorem 3.7's min(τ + 1/r_max, |S|/r_max)-style accounting favors
// recomputing each state from scratch: per source the incremental path
// costs Θ(τ) correction work plus pushes, while a fresh push is bounded
// by O(1/r_max).
func (sp *Subset) RebuildThreshold(tau int) bool {
	return float64(tau) > 1/sp.Engine.Params.RMax
}
