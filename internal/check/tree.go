package check

import "github.com/tree-svd/treesvd/internal/core"

// Tree audits a Tree-SVD's cached structures against the matrix it wraps
// and its configured geometry: level-1 caches present and correctly
// shaped, upper-level slices sized by levelCounts, root dimensions
// agreeing with a descending non-negative spectrum. Cheap (no
// factorizations) — suitable for per-update self-checks.
func Tree(t *core.Tree) error {
	return t.AuditShapes()
}

// TreeDeep is Tree plus seed-replay verification of every level-1 cache:
// each block's baseline (its contents at the cache's rebuild, recovered
// from the DynRow delta bookkeeping) is re-factored at the seed recorded
// in the cache and must reproduce the cached Ū and tail energy. This ties
// three layers together — cache, baseline bookkeeping, and the
// deterministic randomized SVD — so corruption in any one of them
// surfaces. Costs a full re-factorization per block; harness use only.
func TreeDeep(t *core.Tree) error {
	if err := t.AuditShapes(); err != nil {
		return err
	}
	return t.AuditBlocks()
}
