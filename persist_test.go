package treesvd

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildGraph(rng, 60, 240)
	subset := []int32{2, 4, 8, 16, 32, 48}
	cfg := Config{Dim: 8, MaxNodes: 80}
	emb, err := New(g, subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Advance through a batch so the state is non-trivial (deltas,
	// baselines, cached blocks).
	var events []Event
	for len(events) < 30 {
		u, v := int32(rng.Intn(60)), int32(rng.Intn(60))
		if u != v {
			events = append(events, Event{U: u, V: v, Type: Insert})
		}
	}
	mustTB(emb.ApplyEvents(bgt, events))

	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical embeddings immediately after load.
	a, b := emb.Embedding(), loaded.Embedding()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("embedding differs after load at (%d,%d)", i, j)
			}
		}
	}
	if got := loaded.Subset(); len(got) != len(subset) || got[0] != subset[0] {
		t.Fatal("subset not restored")
	}
	if loaded.Graph().NumEdges() != emb.Graph().NumEdges() {
		t.Fatal("graph not restored")
	}

	// Identical behavior on further updates: apply the same batch to
	// both and compare.
	var more []Event
	for len(more) < 40 {
		u, v := int32(rng.Intn(70)), int32(rng.Intn(70))
		if u != v {
			more = append(more, Event{U: u, V: v, Type: Insert})
		}
	}
	r1 := mustTB(emb.ApplyEvents(bgt, more))
	r2 := mustTB(loaded.ApplyEvents(bgt, more))
	if r1 != r2 {
		t.Fatalf("rebuild counts diverge after load: %d vs %d", r1, r2)
	}
	// Incremental Frobenius bookkeeping accumulates in map-iteration
	// order, so post-update states can differ by float reassociation
	// (~1 ulp); anything beyond that is real state loss.
	a, b = emb.Embedding(), loaded.Embedding()
	for i := range a {
		for j := range a[i] {
			if d := a[i][j] - b[i][j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("post-update embedding differs at (%d,%d): %g vs %g", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadPreservesRightEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := buildGraph(rng, 40, 160)
	emb, err := New(g, []int32{1, 3, 5, 7}, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := emb.RightEmbedding(), loaded.RightEmbedding()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("right embedding differs at (%d,%d)", i, j)
			}
		}
	}
}
