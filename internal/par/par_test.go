package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%50) + 1
		w := int(seed%7) + 1
		seen := make([]int32, n)
		For(n, w, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForSingleWorkerOrdered(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatal("single-worker For not sequential")
		}
	}
}

func TestWorkers(t *testing.T) {
	// The unified resolver uses the public-config convention: 0 or
	// negative (and 1) all mean sequential.
	if Workers(0) != 1 {
		t.Fatal("Workers(0) != 1")
	}
	if Workers(-3) != 1 {
		t.Fatal("Workers(-3) != 1")
	}
	if Workers(1) != 1 {
		t.Fatal("Workers(1) != 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}

func TestForChunksCoversAllIndicesOnce(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed % 200)
		w := int(seed%9) - 1 // include 0 and -1
		seen := make([]int32, n)
		ForChunks(n, w, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Fatalf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunksZeroItems(t *testing.T) {
	ForChunks(0, 4, func(lo, hi int) { t.Fatal("fn called for n=0") })
}

func TestForChunksSequentialIsSingleRange(t *testing.T) {
	calls := 0
	ForChunks(17, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 17 {
			t.Fatalf("sequential ForChunks got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential ForChunks made %d calls", calls)
	}
}

func TestForChunksRangesAreContiguousAndDeterministic(t *testing.T) {
	// Chunk boundaries must depend only on (n, w): collect the realized
	// ranges twice and compare as sets.
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		set := make(map[[2]int]bool)
		ForChunks(1000, 3, func(lo, hi int) {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return set
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk count varies: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if !b[r] {
			t.Fatalf("range %v missing from second run", r)
		}
	}
}

func TestForParallelActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core machine")
	}
	var concurrent, peak int32
	For(64, 8, func(int) {
		c := atomic.AddInt32(&concurrent, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&concurrent, -1)
	})
	if peak < 2 {
		t.Skip("no observed concurrency (scheduler-dependent)")
	}
}

func TestForWorkerCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%40) + 1
		w := int(seed%5) + 1
		seen := make([]int32, n)
		workers := make([]int32, n)
		ForWorker(n, w, func(worker, i int) {
			atomic.AddInt32(&seen[i], 1)
			atomic.StoreInt32(&workers[i], int32(worker))
		})
		resolved := Workers(w)
		if resolved > n {
			resolved = n
		}
		for i, c := range seen {
			if c != 1 {
				return false
			}
			if int(workers[i]) >= resolved && resolved > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForWorkerSequentialIsWorkerZero(t *testing.T) {
	ForWorker(8, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("sequential ForWorker used worker %d", worker)
		}
	})
	ForWorker(0, 4, func(worker, i int) { t.Fatal("fn called for n=0") })
}

func TestForWorkerStableIDsWithinCall(t *testing.T) {
	// Worker ids must stay in range even when w exceeds n.
	ForWorker(3, 16, func(worker, i int) {
		if worker < 0 || worker >= 3 {
			t.Fatalf("worker id %d out of range for n=3", worker)
		}
	})
}
