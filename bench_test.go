package treesvd

// One testing.B benchmark per table/figure of the paper (DESIGN.md §3
// maps ids to artifacts). Each runs the corresponding harness experiment
// at smoke scale so `go test -bench=.` finishes in minutes; the full-size
// tables come from `go run ./cmd/bench -exp <id>`. Micro-benchmarks of
// the core primitives (push, block SVD, tree build/update) follow.

import (
	"io"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/bench"
	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/rsvd"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := bench.QuickOptions()
	for i := 0; i < b.N; i++ {
		if err := bench.RunAndPrint(id, o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkExp2(b *testing.B)      { benchExperiment(b, "exp2") }
func BenchmarkFig5Scale(b *testing.B) { benchExperiment(b, "fig5scale") }
func BenchmarkExp3NC(b *testing.B)    { benchExperiment(b, "exp3nc") }
func BenchmarkExp3LP(b *testing.B)    { benchExperiment(b, "exp3lp") }
func BenchmarkExp4(b *testing.B)      { benchExperiment(b, "exp4") }
func BenchmarkTable7(b *testing.B)    { benchExperiment(b, "table7") }
func BenchmarkExp5(b *testing.B)      { benchExperiment(b, "exp5") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// --- core primitive micro-benchmarks ---

func benchSetup() (*dataset.Dataset, []int32, *ppr.Proximity) {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Patent(), 0.25))
	s := ds.SampleSubset(1, 100, 1)
	g := ds.SnapshotGraph(ds.Stream.NumSnapshots() / 2)
	sub := mustTB(ppr.NewSubset(g, s, ppr.Params{Alpha: 0.15, RMax: 1e-4}))
	return ds, s, ppr.NewProximity(sub, ds.Profile.Nodes, 64)
}

func BenchmarkForwardPush(b *testing.B) {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Patent(), 0.25))
	g := ds.SnapshotGraph(ds.Stream.NumSnapshots())
	e := mustTB(ppr.NewEngine(g, ppr.Params{Alpha: 0.15, RMax: 1e-4}))
	s := ds.SampleSubset(1, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ppr.NewState(s[i%len(s)], graph.Forward)
		e.Push(st)
	}
}

func BenchmarkDynamicPushBatch(b *testing.B) {
	ds, s, prox := benchSetup()
	mid := ds.Stream.NumSnapshots()/2 + 1
	events := ds.Stream.SnapshotEvents(mid)
	if len(events) > 200 {
		events = events[:200]
	}
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		must0tb(prox.ApplyEvents(bgt, events))
		b.StopTimer()
		// Re-applying identical inserts is a no-op; flip to keep work real.
		flipped := make([]graph.Event, len(events))
		for j, ev := range events {
			typ := graph.Delete
			if ev.Type == graph.Delete {
				typ = graph.Insert
			}
			flipped[j] = graph.Event{U: ev.U, V: ev.V, Type: typ}
		}
		events = flipped
		b.StartTimer()
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	_, _, prox := benchSetup()
	cfg := core.DefaultConfig(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := mustTB(core.NewTree(prox.M, cfg))
		must0tb(tree.Build(bgt))
	}
}

func BenchmarkTreeLazyUpdateOneBlock(b *testing.B) {
	_, _, prox := benchSetup()
	cfg := core.DefaultConfig(32)
	tree := mustTB(core.NewTree(prox.M, cfg))
	must0tb(tree.Build(bgt))
	rng := rand.New(rand.NewSource(1))
	lo, hi := prox.M.BlockRange(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 50; j++ {
			prox.M.Set(rng.Intn(prox.M.Rows()), lo+rng.Intn(hi-lo), rng.Float64()*5)
		}
		b.StartTimer()
		mustTB(tree.ForceRebuildBlock(bgt, 0))
	}
}

func BenchmarkBlockRandomizedSVD(b *testing.B) {
	_, _, prox := benchSetup()
	blk := prox.M.BlockCSR(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rsvd.Sparse(blk, rsvd.Options{Rank: 32, Seed: int64(i)})
	}
}

func BenchmarkFullMatrixFRPCA(b *testing.B) {
	_, _, prox := benchSetup()
	csr := prox.M.ToCSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rsvd.FRPCA(csr, rsvd.Options{Rank: 32, Seed: int64(i)})
	}
}

func BenchmarkEmbedderApplyEvents(b *testing.B) {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Patent(), 0.25))
	g := ds.SnapshotGraph(ds.Stream.NumSnapshots() / 2)
	s := ds.SampleSubset(1, 100, 1)
	cfg := Defaults()
	cfg.MaxNodes = ds.Stream.NumNodes
	emb, err := New(g, s, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rest := ds.Stream.Events[ds.Stream.Ends[ds.Stream.NumSnapshots()/2-1]:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 100) % len(rest)
		hi := lo + 100
		if hi > len(rest) {
			hi = len(rest)
		}
		mustTB(emb.ApplyEvents(bgt, rest[lo:hi]))
	}
}

func BenchmarkFutureWork(b *testing.B) { benchExperiment(b, "futurework") }
