// Command serve runs the treesvd HTTP service (package server) around one
// embedder: snapshot-isolated reads (/v1/recommend, /v1/embedding,
// /v1/rightembedding, /v1/version), streaming ingest (/v1/events), plus
// /metrics and /debug/pprof on the same listener. The embedder comes from
// a state file written by `treesvd -save` (resume serving exactly where a
// build left off) or, with -synthetic, from a generated random graph —
// the self-contained form cmd/loadgen and `make bench-serve` use.
//
// Usage:
//
//	serve -load state.bin -addr :8080
//	serve -synthetic -nodes 20000 -edges 120000 -subset 256 -dim 32
//
// SIGINT/SIGTERM trigger a graceful shutdown: /readyz flips to 503,
// the listener closes, then in-flight requests drain (bounded by
// -shutdown-timeout) before the process exits. If the listener dies on
// its own (port stolen, fd exhaustion) the process exits non-zero
// instead of lingering as a zombie that answers nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port, \":0\" picks a port)")
		loadFrom  = flag.String("load", "", "state file written by `treesvd -save` to serve")
		synthetic = flag.Bool("synthetic", false, "serve a generated random graph instead of -load")
		nodes     = flag.Int("nodes", 10000, "synthetic: initial node count")
		edges     = flag.Int("edges", 60000, "synthetic: initial edge count")
		subset    = flag.Int("subset", 256, "synthetic: subset size |S|")
		dim       = flag.Int("dim", 32, "synthetic: embedding dimension d")
		rmax      = flag.Float64("rmax", 1e-3, "synthetic: Forward-Push threshold")
		shards    = flag.Int("shards", 1, "synthetic: subset row shards")
		workers   = flag.Int("workers", 0, "synthetic: worker pool size (0 = sequential)")
		maxNodes  = flag.Int("maxnodes", 0, "synthetic: node capacity headroom (0 = 2x initial)")
		seed      = flag.Int64("seed", 1, "synthetic: graph + subset seed")
		batchCap  = flag.Int("batchcap", 0, "max events per ingest batch (0 = server default)")
		drain     = flag.Duration("shutdown-timeout", 15*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	var emb *treesvd.Embedder
	var err error
	switch {
	case *loadFrom != "":
		emb, err = treesvd.LoadFile(*loadFrom)
		if err != nil {
			fail(err)
		}
	case *synthetic:
		emb, err = buildSynthetic(*nodes, *edges, *subset, *dim, *rmax, *shards, *workers, *maxNodes, *seed)
		if err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "serve: need -load <state> or -synthetic")
		os.Exit(2)
	}
	g := emb.Graph()
	fmt.Printf("serve: embedder ready: %d nodes, %d edges, |S|=%d, %d shard(s), version %d\n",
		g.NumNodes(), g.NumEdges(), len(emb.Subset()), emb.NumShards(), emb.Version())

	srv := server.New(emb, server.Options{MaxBatchEvents: *batchCap})
	if err := srv.Start(*addr); err != nil {
		fail(err)
	}
	fmt.Printf("serve: listening on http://%s (endpoints: /v1/..., /metrics, /debug/pprof)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("serve: %v: readiness ready -> draining, shedding new work (up to %v)\n", s, *drain)
	case <-srv.ServeDone():
		// The accept loop died without being asked to — surface the
		// cause and exit non-zero so supervisors restart us.
		if err := srv.ServeErr(); err != nil {
			fail(fmt.Errorf("listener failed: %w", err))
		}
		fail(fmt.Errorf("listener closed unexpectedly"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(err)
	}
	if err := srv.ServeErr(); err != nil {
		fail(fmt.Errorf("serve: %w", err))
	}
	fmt.Println("serve: drained, bye")
}

// buildSynthetic generates a connected-ish random graph and embeds a
// sampled subset, mirroring the cmd/treesvd bootstrap but self-contained.
func buildSynthetic(nodes, edges, subsetSize, dim int, rmax float64, shards, workers, maxNodes int, seed int64) (*treesvd.Embedder, error) {
	rng := rand.New(rand.NewSource(seed))
	g := treesvd.NewGraphN(nodes)
	for v := int32(0); int(v) < nodes; v++ {
		for {
			u := int32(rng.Intn(nodes))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < edges {
		g.InsertEdge(int32(rng.Intn(nodes)), int32(rng.Intn(nodes)))
	}
	subset := make([]int32, 0, subsetSize)
	perm := rng.Perm(nodes)
	for _, v := range perm {
		if len(subset) == subsetSize {
			break
		}
		subset = append(subset, int32(v))
	}
	cfg := treesvd.Defaults()
	cfg.Dim = dim
	cfg.RMax = rmax
	cfg.Shards = shards
	cfg.Workers = workers
	cfg.Seed = seed
	if maxNodes <= 0 {
		maxNodes = 2 * nodes
	}
	cfg.MaxNodes = maxNodes
	return treesvd.New(g, subset, cfg)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
