package linalg

import (
	"fmt"
	"math"

	"github.com/tree-svd/treesvd/internal/par"
)

// SymEig computes the full eigendecomposition A = V·diag(λ)·Vᵀ of a
// symmetric matrix. Eigenvalues are returned in descending order with
// matching eigenvector columns in V.
func SymEig(a *Dense) (lambda []float64, v *Dense) { return SymEigW(a, 1) }

// SymEigW is SymEig with a worker budget for the O(n²)-per-step inner
// loops. The implementation is the classic two-stage dense symmetric
// solver: Householder reduction to tridiagonal form (tred2) followed by
// the implicit-shift QL iteration (tql2), both accumulating the
// orthogonal transform. The parallelized loops (the rank-2 update and
// transform accumulation of tred2, the rotation application of tql2)
// partition disjoint output rows or columns with a fixed per-element
// operation order, so the result is identical for every worker count.
//
// It is O(n³) with a small constant — an order of magnitude faster than
// the cyclic Jacobi method kept in JacobiSymEig, which tests use as an
// independent cross-check.
func SymEigW(a *Dense, workers int) (lambda []float64, v *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: SymEig requires a square matrix, got %d×%d", n, a.Cols))
	}
	if n == 0 {
		return nil, NewDense(0, 0)
	}
	// Both stages run on the transposed representation (row i holds what
	// the textbook formulation calls column i) so every inner loop walks a
	// contiguous slice; the input is symmetric, so no initial transpose is
	// needed.
	vt := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(vt, d, e, workers)
	tql2(vt, d, e, workers)
	v = vt.T()
	sortEig(d, v)
	return d, v
}

// tred2 reduces a symmetric matrix to tridiagonal form, overwriting zt
// with the accumulated orthogonal transformation (transposed: row j of zt
// is transform column j), d with the diagonal and e with the subdiagonal
// (e[0] unused). The textbook V[a][b] maps to zt.Row(b)[a], which makes
// every inner loop a contiguous slice walk.
//
// The two O(l²) passes per step — the symmetric rank-2 update and the
// transform accumulation — touch one zt row per j index and read only
// shared state written before the pass, so they fan out over j-panels;
// the deferred d[j] writes keep the parallel schedule identical to the
// serial one. The symmetric matrix-vector product stays serial: it
// accumulates into e across j, and only the upper triangle of the active
// submatrix is valid, so splitting it would need per-worker reduction
// buffers for a loop that is at most a third of the step.
func tred2(zt *Dense, d, e []float64, workers int) {
	n := zt.Rows
	copy(d, zt.Row(n-1)) // symmetric input: row n-1 == column n-1
	// The parallel pass closures are hoisted out of the O(n) step loops and
	// parameterized through ci/cl (the current step's i and l): a closure
	// literal passed to ForChunks escapes, and allocating one per step
	// would dominate the allocation profile of every small eigensolve.
	var ci, cl int
	rank2 := func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			fj, gj := d[j], e[j]
			rowJ := zt.Row(j)
			for k := j; k <= cl; k++ {
				rowJ[k] -= fj*e[k] + gj*d[k]
			}
			rowJ[ci] = 0
		}
	}
	accumulate := func(jlo, jhi int) {
		rowL := zt.Row(cl)
		for j := jlo; j < jhi; j++ {
			rowJ := zt.Row(j)[:cl]
			g := Dot(rowL[:cl], rowJ)
			axpy(rowJ, -g, d[:cl])
		}
	}
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		for k := 0; k <= l; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[l]
			rowI := zt.Row(i)
			for j := 0; j <= l; j++ {
				d[j] = zt.Row(j)[l]
				zt.Row(j)[i] = 0
				rowI[j] = 0
			}
		} else {
			for k := 0; k <= l; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[l]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[l] = f - g
			for j := 0; j <= l; j++ {
				e[j] = 0
			}
			rowI := zt.Row(i)
			for j := 0; j <= l; j++ {
				f = d[j]
				rowI[j] = f
				rowJ := zt.Row(j)
				g = e[j] + rowJ[j]*f
				for k := j + 1; k <= l; k++ {
					g += rowJ[k] * d[k]
					e[k] += rowJ[k] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j <= l; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j <= l; j++ {
				e[j] -= hh * d[j]
			}
			// Rank-2 update A ← A − v·wᵀ − w·vᵀ on the upper triangle.
			// Every task reads d/e (frozen for the pass) and writes only
			// its own rows; d[j] ← rowJ[l] is deferred past the barrier so
			// no task observes another's update.
			ci, cl = i, l
			par.ForChunks(l+1, kernelWorkers(workers, l+1, (l+1)*(l+1)/2), rank2)
			for j := 0; j <= l; j++ {
				d[j] = zt.Row(j)[l]
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		rowI := zt.Row(i)
		rowI[n-1] = rowI[i]
		rowI[i] = 1
		l := i + 1
		rowL := zt.Row(l)
		if d[l] != 0 {
			for k := 0; k < l; k++ {
				d[k] = rowL[k] / d[l]
			}
			cl = l
			par.ForChunks(l, kernelWorkers(workers, l, l*l), accumulate)
		}
		for k := 0; k < l; k++ {
			rowL[k] = 0
		}
	}
	for j := 0; j < n; j++ {
		rowJ := zt.Row(j)
		d[j] = rowJ[n-1]
		rowJ[n-1] = 0
	}
	zt.Row(n - 1)[n-1] = 1
	e[0] = 0
}

// tql2 diagonalizes the tridiagonal matrix (d, e) with implicit-shift QL
// iterations, rotating the eigenvector matrix alongside. zt holds the
// eigenvector matrix transposed: row i of zt is eigenvector column i. The
// routine is a port of the EISPACK/JAMA tql2, whose shift strategy and
// global deflation test are robust to the clustered and near-zero
// eigenvalues that Gram matrices of nearly low-rank blocks produce.
//
// The scalar rotation recurrence is inherently serial but O(m−l); the
// O((m−l)·n) application of the rotation chain to the eigenvector rows —
// the dominant cost of the whole eigensolve — is replayed per column
// chunk, every chunk applying the chain in the same order, so it fans
// out across the worker budget with a bit-identical result.
func tql2(zt *Dense, d, e []float64, workers int) {
	n := zt.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	cs := make([]float64, n)
	sn := make([]float64, n)
	// Hoisted out of the QL iteration (see the matching comment in tred2):
	// replays the rotation chain recorded in cs/sn for rows cl..cm-1 on one
	// column chunk of the eigenvector matrix.
	var cm, cll int
	replay := func(klo, khi int) {
		for i := cm - 1; i >= cll; i-- {
			ri, ri1 := zt.Row(i), zt.Row(i+1)
			ci, si := cs[i], sn[i]
			for k := klo; k < khi; k++ {
				h := ri1[k]
				ri1[k] = si*ri[k] + ci*h
				ri[k] = ci*ri[k] - si*h
			}
		}
	}
	const eps = 2.220446049250313e-16 // 2^-52
	var f, tst1 float64
	for l := 0; l < n; l++ {
		if s := math.Abs(d[l]) + math.Abs(e[l]); s > tst1 {
			tst1 = s
		}
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 1000 {
					panic(fmt.Sprintf("linalg: tql2 failed to converge: l=%d m=%d d=%v e=%v", l, m, d, e))
				}
				// Compute the implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation: run the scalar recurrence
				// first, recording each plane rotation...
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3, c2, s2 = c2, c, s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					cs[i], sn[i] = c, s
				}
				// ...then replay the chain on the eigenvector rows, split
				// over column chunks.
				cm, cll = m, l
				par.ForChunks(n, kernelWorkers(workers, n, 6*(m-l)*n), replay)
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
}

// JacobiSymEig is the cyclic Jacobi eigensolver — slower than SymEig but
// algorithmically independent; tests cross-validate the two.
func JacobiSymEig(a *Dense) (lambda []float64, v *Dense) { return JacobiSymEigW(a, 1) }

// jacobiParMinN is the matrix size below which JacobiSymEigW ignores the
// worker budget: a round's rotation phases are O(n²) and only amortize
// goroutine dispatch for reasonably large n.
const jacobiParMinN = 64

// JacobiSymEigW is JacobiSymEig with a worker budget. With workers ≤ 1
// (or tiny matrices) it runs the classic serial cyclic sweep. Otherwise
// it switches to the round-robin ("chess tournament") pivot ordering:
// each round pairs every index with a distinct partner, the ⌊n/2⌋
// rotations of a round commute (their index pairs are disjoint), and the
// rotation application — the entire O(n) cost of a pivot — fans out
// across the worker budget in three barrier-separated phases (column
// update, row update, eigenvector update). Angles are computed before
// any application, which is equivalent to applying the round's rotations
// serially in any order, so the parallel result is deterministic for a
// fixed worker count.
func JacobiSymEigW(a *Dense, workers int) (lambda []float64, v *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: JacobiSymEig requires a square matrix, got %d×%d", n, a.Cols))
	}
	workers = par.Workers(workers)
	if workers > 1 && n >= jacobiParMinN {
		return jacobiSymEigRounds(a, workers)
	}
	return jacobiSymEigCyclic(a)
}

// jacobiSymEigCyclic is the historical serial implementation.
func jacobiSymEigCyclic(a *Dense) (lambda []float64, v *Dense) {
	n := a.Rows
	w := a.Clone()
	v = Identity(n)
	if n == 0 {
		return nil, v
	}
	total := w.FrobNorm()
	if total == 0 {
		return make([]float64, n), v
	}
	for sweep := 0; sweep < symEigMaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) <= symEigTol*total {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= symEigTol*total/float64(n*n) {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	lambda = make([]float64, n)
	for i := 0; i < n; i++ {
		lambda[i] = w.At(i, i)
	}
	sortEig(lambda, v)
	return lambda, v
}

// planeRot is one recorded Jacobi rotation of a tournament round.
type planeRot struct {
	p, q int
	c, s float64
}

// jacobiSymEigRounds runs cyclic-by-rounds Jacobi: m−1 rounds of ⌊m/2⌋
// disjoint pivot pairs per sweep (the circle-method tournament schedule),
// with each round's rotations applied in three parallel phases.
func jacobiSymEigRounds(a *Dense, workers int) (lambda []float64, v *Dense) {
	n := a.Rows
	w := a.Clone()
	v = Identity(n)
	total := w.FrobNorm()
	if total == 0 {
		return make([]float64, n), v
	}
	skipTol := symEigTol * total / float64(n*n)
	// Circle-method schedule over m players (bye = m-1 when n is odd).
	m := n
	if m%2 == 1 {
		m++
	}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	rots := make([]planeRot, 0, m/2)
	for sweep := 0; sweep < symEigMaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			row := w.Row(i)
			for j := i + 1; j < n; j++ {
				off += 2 * row[j] * row[j]
			}
		}
		if math.Sqrt(off) <= symEigTol*total {
			break
		}
		for round := 0; round < m-1; round++ {
			// Phase 0: angles, from the pre-round matrix. Disjoint pairs
			// never read each other's (p,p), (q,q), (p,q) entries, so the
			// round equals a serial application of the same rotations.
			rots = rots[:0]
			for i := 0; i < m/2; i++ {
				p, q := perm[i], perm[m-1-i]
				if p >= n || q >= n {
					continue // bye slot
				}
				if p > q {
					p, q = q, p
				}
				apq := w.At(p, q)
				if math.Abs(apq) <= skipTol {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				rots = append(rots, planeRot{p: p, q: q, c: c, s: t * c})
			}
			if len(rots) > 0 {
				// Phase 1: column updates W ← W·J — disjoint column pairs.
				par.ForChunks(n, workers, func(klo, khi int) {
					for _, r := range rots {
						for k := klo; k < khi; k++ {
							row := w.Row(k)
							wkp, wkq := row[r.p], row[r.q]
							row[r.p] = r.c*wkp - r.s*wkq
							row[r.q] = r.s*wkp + r.c*wkq
						}
					}
				})
				// Phase 2: row updates W ← Jᵀ·W — disjoint row pairs,
				// split over column chunks.
				par.ForChunks(n, workers, func(klo, khi int) {
					for _, r := range rots {
						rp, rq := w.Row(r.p), w.Row(r.q)
						for k := klo; k < khi; k++ {
							wpk, wqk := rp[k], rq[k]
							rp[k] = r.c*wpk - r.s*wqk
							rq[k] = r.s*wpk + r.c*wqk
						}
					}
				})
				// Phase 3: eigenvector updates V ← V·J.
				par.ForChunks(n, workers, func(klo, khi int) {
					for _, r := range rots {
						for k := klo; k < khi; k++ {
							row := v.Row(k)
							vkp, vkq := row[r.p], row[r.q]
							row[r.p] = r.c*vkp - r.s*vkq
							row[r.q] = r.s*vkp + r.c*vkq
						}
					}
				})
			}
			// Rotate the schedule: fix perm[0], cycle the rest.
			last := perm[m-1]
			copy(perm[2:], perm[1:m-1])
			perm[1] = last
		}
	}
	lambda = make([]float64, n)
	for i := 0; i < n; i++ {
		lambda[i] = w.At(i, i)
	}
	sortEig(lambda, v)
	return lambda, v
}
