// Package core implements Tree-SVD, the paper's primary contribution: a
// hierarchical truncated SVD over vertically partitioned sparse matrices
// (Algorithm 3) whose per-block intermediate results are cached so that
// dynamic updates only re-factor blocks whose accumulated change violates
// the Frobenius trigger of Lemma 3.4 (Algorithm 4, the lazy update).
package core

import (
	"fmt"
)

// Config holds the Tree-SVD hyper-parameters (Table 2 notation in
// comments).
type Config struct {
	// Rank is the embedding dimension d; every truncated SVD in the tree
	// keeps d singular triplets.
	Rank int
	// Branch is the fan-in k: how many child results merge into one
	// parent matrix.
	Branch int
	// Levels is the tree depth q; the number of level-1 blocks is
	// b = k^(q-1). The paper uses q=3, k=8 → b=64.
	Levels int
	// Delta is the lazy-update threshold δ of Eqn. 2; a level-1 block is
	// re-factored when tail + ‖D_j‖_F > √2·δ·‖B_j‖_F. The theoretical
	// guarantee of Theorem 3.6 holds for δ ≤ (1+ε)/√2; the paper uses
	// 0.65 empirically.
	Delta float64
	// Oversample and PowerIters tune the level-1 randomized SVD.
	Oversample int
	PowerIters int
	// Seed makes the randomized level-1 factorization deterministic.
	Seed int64
	// UseCountSketch switches the level-1 range finder from Gaussian to
	// Clarkson–Woodruff (the input-sparsity-time variant); an ablation
	// knob, off by default.
	UseCountSketch bool
	// Workers parallelizes per-block factorization and per-level merges
	// (0 or 1 = sequential).
	Workers int
}

// DefaultConfig mirrors the paper's settings scaled to this repository's
// benchmark sizes: q=3, k=8, b=64, δ=0.65.
func DefaultConfig(rank int) Config {
	return Config{Rank: rank, Branch: 8, Levels: 3, Delta: 0.65, Oversample: 8, PowerIters: 0, Seed: 1}
}

// Blocks returns b = k^(q-1), the requested number of level-1 blocks.
func (c Config) Blocks() int {
	b := 1
	for i := 1; i < c.Levels; i++ {
		b *= c.Branch
	}
	return b
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("core: rank %d must be positive", c.Rank)
	}
	if c.Branch < 2 {
		return fmt.Errorf("core: branch %d must be ≥ 2", c.Branch)
	}
	if c.Levels < 2 {
		return fmt.Errorf("core: levels %d must be ≥ 2", c.Levels)
	}
	if c.Delta < 0 {
		return fmt.Errorf("core: delta %g must be non-negative", c.Delta)
	}
	return nil
}
