// Package par provides the tiny worker-pool primitives used to
// parallelize the pipeline at two granularities: task parallelism over
// independent items (per-source PPR pushes, per-block level-1
// factorizations, per-parent tree merges) via For/ForErr, and data
// parallelism over contiguous index ranges inside the linear-algebra
// kernels via ForChunks. The paper's reference setup uses 64 threads;
// this library mirrors that with a Workers knob threaded through the
// public configs.
package par

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Workers is the single resolver for every Workers knob in the public
// configs (treesvd.Config, core.Config, ppr.Params, rsvd.Options): values
// ≤ 1 mean sequential. It replaces the formerly duplicated per-package
// helpers, so "0 or 1 = sequential" holds uniformly across the codebase.
func Workers(w int) int {
	return max(w, 1)
}

// SplitBudget divides a worker budget across tasks concurrent tasks so
// nested parallelism composes instead of oversubscribing. It is the
// single budget resolver for every fan-out that runs parallel kernels
// inside parallel tasks — per-block factorizations inside a tree pass,
// per-parent merges inside a level sweep, and per-shard pipelines inside
// a sharded embedder.
//
// Contract: with T concurrent tasks each running its kernels at
// SplitBudget(w, T) workers, the total concurrency is at most
// Workers(w) whenever the outer fan-out itself is capped at Workers(w)
// runnable tasks (For/ForErr guarantee that cap). In particular
// Shards × SplitBudget(w, Shards) ≤ max(w, Shards), and the excess over
// w is goroutine count only, never runnable parallelism, because the
// outer loop schedules at most w tasks at once. SplitBudget(w, 1) ==
// Workers(w): a single task (e.g. the root merge, the serial bottleneck
// of an update pass) gets the whole budget.
func SplitBudget(w, tasks int) int {
	if tasks < 1 {
		tasks = 1
	}
	return max(1, Workers(w)/tasks)
}

// For runs fn(i) for every i in [0,n) across at most w workers. With one
// worker (or n ≤ 1) it degenerates to a plain loop — no goroutines, no
// overhead, fully deterministic ordering.
func For(n, w int, fn func(i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0,n) across at most w workers, with
// cancellation and first-error propagation: once ctx is done or any call
// returns an error, no further indices are scheduled and the first error
// observed is returned (in-flight calls run to completion first). A panic
// inside fn is recovered and converted into an error, so a failing task
// degrades into an error return instead of killing the process — the
// property that lets the update pipeline promise "no reachable panics".
// A nil ctx disables cancellation. With one worker (or n ≤ 1) it
// degenerates to a plain sequential loop.
func ForErr(ctx context.Context, n, w int, fn func(i int) error) error {
	return ForWorkerErr(ctx, n, w, func(_, i int) error { return fn(i) })
}

// ForWorkerErr is ForErr with the worker index passed to fn (see ForWorker).
func ForWorkerErr(ctx context.Context, n, w int, fn func(worker, i int) error) error {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := protect(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next  int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		stop  atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := protect(fn, worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return first
}

// protect invokes fn(worker, i), converting a panic into an error.
func protect(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v", i, r)
		}
	}()
	return fn(worker, i)
}

// chunksPerWorker oversubscribes ForChunks chunks relative to workers so
// that dynamically scheduled chunks re-balance uneven work (e.g. the
// shrinking triangular panels of a Gram product) without paying a
// goroutine dispatch per index.
const chunksPerWorker = 4

// ForChunks runs fn over a partition of [0,n) into contiguous half-open
// ranges [lo,hi), using at most w workers. It is the row-panel primitive
// of the linear-algebra kernels: contiguous ranges amortize goroutine
// dispatch over many rows and keep each worker streaming adjacent memory.
// Ranges are dispatched dynamically (about chunksPerWorker per worker) so
// uneven per-row work still balances. With w ≤ 1 it degenerates to a
// single fn(0,n) call — no goroutines, no overhead.
//
// The chunk boundaries depend only on n and w, never on scheduling, so a
// caller whose per-range work is deterministic gets a deterministic
// result for any fixed (n, w).
func ForChunks(n, w int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunks := chunksPerWorker * w
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForWorker is For with the worker index passed to fn, so callers can use
// per-worker scratch state (e.g. one push engine per worker). Worker ids
// are in [0, Workers(w)) and stable within one call.
func ForWorker(n, w int, fn func(worker, i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}
