package core

import (
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Factorize runs the static Tree-SVD (Algorithm 3, "Tree-SVD-S") over any
// rectangular sparse matrix — the paper notes the scheme is not limited to
// subset embedding and speeds up SVD for any c×n matrix with c ≪ n. It
// returns the root truncated SVD (U_{q,1})_d, (Σ_{q,1})_d.
func Factorize(m *sparse.CSR, cfg Config) (*linalg.SVDResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nb := cfg.Blocks()
	if nb > m.Cols {
		nb = m.Cols
	}
	width := (m.Cols + nb - 1) / nb
	nb = (m.Cols + width - 1) / width
	level := make([]*linalg.Dense, 0, nb)
	for j := 0; j < nb; j++ {
		lo := j * width
		hi := lo + width
		if hi > m.Cols {
			hi = m.Cols
		}
		blk := m.SliceColsCSR(lo, hi)
		opts := rsvd.Options{
			Rank:       cfg.Rank,
			Oversample: cfg.Oversample,
			PowerIters: cfg.PowerIters,
			Seed:       cfg.Seed + int64(j)*1_000_003,
		}
		var res *linalg.SVDResult
		var err error
		if cfg.UseCountSketch {
			res, err = rsvd.SparseCW(blk, opts)
		} else {
			res, err = rsvd.Sparse(blk, opts)
		}
		if err != nil {
			return nil, err
		}
		level = append(level, res.US())
	}
	for len(level) > 1 {
		var next []*linalg.Dense
		for lo := 0; lo < len(level); lo += cfg.Branch {
			hi := lo + cfg.Branch
			if hi > len(level) {
				hi = len(level)
			}
			res := linalg.SVDTrunc(linalg.HCat(level[lo:hi]...), cfg.Rank)
			if len(level) <= cfg.Branch {
				return res, nil
			}
			next = append(next, res.US())
		}
		level = next
	}
	return linalg.SVDTrunc(level[0], cfg.Rank), nil
}

// Embedding runs Factorize and returns X = U√Σ.
func Embedding(m *sparse.CSR, cfg Config) (*linalg.Dense, error) {
	root, err := Factorize(m, cfg)
	if err != nil {
		return nil, err
	}
	return root.USqrtS(), nil
}

// RightEmbeddingOf recovers Y = Ṽ√Σ (Ṽ = Σ⁻¹UᵀM, rows indexed by the n
// matrix columns) for an externally held root SVD over matrix m.
func RightEmbeddingOf(root *linalg.SVDResult, m *sparse.CSR) *linalg.Dense {
	y := m.TMulDense(root.U)
	scale := make([]float64, len(root.S))
	for i, s := range root.S {
		if s > 0 {
			scale[i] = 1 / math.Sqrt(s)
		}
	}
	return y.MulDiag(scale)
}
