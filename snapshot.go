package treesvd

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Snapshot is one immutable, fully consistent version of the embedding
// state, published atomically by New/ApplyEvents/Rebuild. All methods are
// safe for concurrent use from any number of goroutines, and a snapshot
// stays valid and numerically unchanged forever — later updates publish
// new snapshots instead of mutating old ones. Hold one to serve a batch
// of reads (several Recommend calls, an Embedding plus a RightEmbedding)
// against a single consistent version while updates proceed underneath.
type Snapshot struct {
	version uint64
	subset  []int32       // shared with Embedder; immutable after New
	rowOf   map[int32]int // shared with Embedder; immutable after New
	x       *linalg.Dense // frozen U√Σ
	root    *linalg.SVDResult
	m       *sparse.CSR // proximity matrix frozen at publish time (unsharded)
	outNbrs map[int32][]int32
	stats   Stats
	// numNodes is the graph's node count at publish time. The right
	// embedding is MaxNodes rows wide, so candidate iteration must stop
	// here: rows past it are zero-score placeholders for ids that did not
	// exist yet (ISSUE 3, ghost recommendations).
	numNodes int

	// parts holds the frozen per-shard factorizations of a sharded
	// embedder (nil when unsharded). x, root and y are then materialized
	// at most once by mergeOnce: the coordinator merge above the shard
	// boundary runs lazily, on the first read that needs global factors.
	parts     []snapPart
	rank      int // Config.Dim, the merge truncation rank
	workers   int // resolved worker budget for the lazy merge
	mergeOnce sync.Once

	// y is the right embedding Ṽ√Σ, materialized at most once per
	// snapshot on first use and reused by every later RightEmbedding/
	// Recommend on this version. yComputes counts materializations
	// (observable by tests: it must never exceed 1).
	yOnce     sync.Once
	y         *linalg.Dense
	yComputes atomic.Int32
}

// snapPart is one shard's contribution to a sharded snapshot: its frozen
// root factorization and proximity rows, plus the subset row range they
// cover.
type snapPart struct {
	root   *linalg.SVDResult
	m      *sparse.CSR
	lo, hi int
}

// ensureMerged materializes the global factors of a sharded snapshot
// exactly once: per-shard projections W_i = M_iᵀU_i, the coordinator
// merge above the shard boundary, and (in the same pass, while the
// projections are in hand) the right embedding. Unsharded snapshots are
// published with x/root already frozen, so this is a no-op for them.
func (s *Snapshot) ensureMerged() {
	if s.parts == nil {
		return
	}
	s.mergeOnce.Do(func() {
		roots := make([]*linalg.SVDResult, len(s.parts))
		ws := make([]*linalg.Dense, len(s.parts))
		for i, p := range s.parts {
			roots[i] = p.root
			ws[i] = p.m.TMulDenseW(p.root.U, s.workers)
		}
		mr, err := core.MergeShardRoots(roots, ws, s.rank, s.workers)
		if err != nil {
			// Shapes come from the publishing embedder; a mismatch is a
			// programming error, not a runtime condition.
			panic(err)
		}
		s.root = mr.Root
		s.x = mr.Root.USqrtS()
		s.yComputes.Add(1)
		s.y = mr.RightEmbedding(ws, s.workers)
	})
}

// rootSVD returns the snapshot's (merged) root factorization.
func (s *Snapshot) rootSVD() *linalg.SVDResult {
	s.ensureMerged()
	return s.root
}

// xMat returns the snapshot's (merged) subset embedding X = U√Σ.
func (s *Snapshot) xMat() *linalg.Dense {
	s.ensureMerged()
	return s.x
}

// Version returns the snapshot's version counter; it increases by one
// with every snapshot the Embedder publishes.
func (s *Snapshot) Version() uint64 { return s.version }

// Subset returns the embedded node ids in row order.
func (s *Snapshot) Subset() []int32 { return append([]int32(nil), s.subset...) }

// Stats returns the factorization work counters of the update that
// published this snapshot.
func (s *Snapshot) Stats() Stats { return s.stats }

// NumNodes returns the graph's node count as of this snapshot's version.
func (s *Snapshot) NumNodes() int { return s.numNodes }

// Spectrum returns the singular values of this snapshot's root
// factorization, descending (a copy; the snapshot stays immutable).
func (s *Snapshot) Spectrum() []float64 { return append([]float64(nil), s.rootSVD().S...) }

// Embedding returns the |S|×d subset embedding X = U√Σ of this snapshot
// as a row-major matrix: row i embeds Subset()[i].
func (s *Snapshot) Embedding() [][]float64 { return toRows(s.xMat()) }

// RightEmbedding returns the n×d right-factor embedding Y = Ṽ√Σ of this
// snapshot (row v embeds graph node v). Y is computed once per snapshot
// and cached; repeated calls (and Recommend) reuse it.
func (s *Snapshot) RightEmbedding() [][]float64 { return toRows(s.right()) }

// right materializes Y = Σ^{-1/2}·Uᵀ·M at most once (Theorem 3.2's
// recovery of the right factor from the frozen proximity matrix). For
// sharded snapshots Y falls out of the coordinator merge instead.
func (s *Snapshot) right() *linalg.Dense {
	if s.parts != nil {
		s.ensureMerged()
		return s.y
	}
	s.yOnce.Do(func() {
		s.yComputes.Add(1)
		s.y = core.RightEmbeddingOf(s.root, s.m)
	})
	return s.y
}

func toRows(m *linalg.Dense) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// Recommendation is one ranked link candidate.
type Recommendation struct {
	Node  int32
	Score float64
}

// recHeap is a min-heap keyed by (Score asc, Node desc): the root is the
// weakest kept candidate, so top-k selection peeks and replaces it in
// O(log k) instead of re-sorting the slice on every improvement.
type recHeap []Recommendation

func (h recHeap) Len() int { return len(h) }
func (h recHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Node > h[j].Node
}
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(Recommendation)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scanTopK scores candidates v ∈ [lo, hi) against xs and keeps the top k
// under the (score desc, node asc) total order. Ascending iteration plus
// strict-greater replacement keeps the smallest node ids among ties, so
// the returned heap holds exactly the range's top k under that order —
// which makes per-range results mergeable without losing exactness.
func scanTopK(xs []float64, y *linalg.Dense, lo, hi int, exclude map[int32]bool, k int) recHeap {
	top := make(recHeap, 0, k)
	for v := lo; v < hi; v++ {
		if exclude[int32(v)] {
			continue
		}
		score := dot(xs, y.Row(v))
		switch {
		case len(top) < k:
			heap.Push(&top, Recommendation{Node: int32(v), Score: score})
		case score > top[0].Score:
			top[0] = Recommendation{Node: int32(v), Score: score}
			heap.Fix(&top, 0)
		}
	}
	return top
}

// mergeTopK gathers per-range top-k heaps into one ranked result:
// descending score, ties by ascending node id — the same order a single
// full scan produces.
func mergeTopK(tops []recHeap, k int) []Recommendation {
	var all []Recommendation
	for _, t := range tops {
		all = append(all, t...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Recommend returns the top-k candidate targets for subset node s, ranked
// by the factorization score dot(X[s], Y[v]) — the paper's motivating
// application. Candidates are the nodes that exist as of this snapshot's
// version (ids the MaxNodes headroom reserves but the graph has not
// reached yet are never returned); node s itself and its out-neighbors
// are excluded. Results are ordered by descending score, ties by
// ascending node id.
//
// The k contract: k <= 0 is rejected with a *InvalidKError, and a k
// larger than the candidate set truncates — the result simply holds every
// scored candidate, which may be fewer than k (never an error). A source
// that is not in the embedded subset is rejected with a
// *NotInSubsetError. Both are deterministic input errors (a serving layer
// maps them to HTTP 400 and 404); anything else is a real failure.
//
// On a sharded snapshot the scan scatters across contiguous candidate
// ranges (one per shard, scored in parallel under the snapshot's worker
// budget) and gathers the per-range top-k heaps into one ranked merge;
// the result is provably identical to the single full scan.
func (s *Snapshot) Recommend(src int32, k int) ([]Recommendation, error) {
	if k <= 0 {
		return nil, &InvalidKError{K: k}
	}
	row, ok := s.rowOf[src]
	if !ok {
		return nil, &NotInSubsetError{Node: src, Subset: len(s.subset)}
	}
	if s.rootSVD().Rank() == 0 {
		return nil, fmt.Errorf("treesvd: empty factorization")
	}
	y := s.right()
	xs := s.xMat().Row(row)
	exclude := make(map[int32]bool, len(s.outNbrs[src])+1)
	exclude[src] = true
	for _, v := range s.outNbrs[src] {
		exclude[v] = true
	}
	// y has MaxNodes rows; only the first numNodes are real nodes of this
	// snapshot's graph — the rest would surface as zero-score ghosts.
	limit := min(y.Rows, s.numNodes)
	if s.parts == nil {
		return mergeTopK([]recHeap{scanTopK(xs, y, 0, limit, exclude, k)}, k), nil
	}
	ranges := core.ShardRanges(limit, len(s.parts))
	tops := make([]recHeap, len(ranges))
	par.For(len(ranges), s.workers, func(i int) {
		tops[i] = scanTopK(xs, y, ranges[i][0], ranges[i][1], exclude, k)
	})
	return mergeTopK(tops, k), nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// publishLocked freezes the current pipeline state into a new immutable
// snapshot and publishes it. Caller holds e.mu; every shard's tree must
// be built. Proximity rows are captured as per-shard CSR copies (the
// DynRows keep mutating afterwards) and subset out-neighbor lists are
// copied out of the graph for the same reason. An unsharded embedder
// freezes its factors directly; a sharded one freezes the per-shard
// parts and defers the coordinator merge to the first global read.
func (e *Embedder) publishLocked() {
	g := e.g
	nbrs := make(map[int32][]int32, len(e.subset))
	for _, s := range e.subset {
		nbrs[s] = append([]int32(nil), g.OutNeighbors(s)...)
	}
	snap := &Snapshot{
		version:  e.version.Add(1),
		subset:   e.subset,
		rowOf:    e.rowOf,
		outNbrs:  nbrs,
		numNodes: g.NumNodes(),
	}
	if len(e.shards) == 1 {
		s := e.shards[0]
		root := s.tree.Root()
		ts := s.tree.Stats()
		snap.x = root.USqrtS()
		snap.root = root
		snap.m = s.prox.M.ToCSR()
		snap.stats = Stats{
			Level1Rebuilt: ts.Level1Rebuilt, Level1Updated: ts.Level1Updated,
			Skipped: ts.Skipped, UpperRebuilt: ts.UpperRebuilt,
		}
	} else {
		snap.parts = make([]snapPart, len(e.shards))
		snap.rank = e.cfg.Dim
		snap.workers = par.Workers(e.cfg.Workers)
		for i, s := range e.shards {
			snap.parts[i] = snapPart{root: s.tree.Root(), m: s.prox.M.ToCSR(), lo: s.lo, hi: s.hi}
			ts := s.tree.Stats()
			snap.stats.Level1Rebuilt += ts.Level1Rebuilt
			snap.stats.Level1Updated += ts.Level1Updated
			snap.stats.Skipped += ts.Skipped
			snap.stats.UpperRebuilt += ts.UpperRebuilt
		}
	}
	e.snap.Store(snap)
	e.met.snapshots.Inc()
	e.met.lastPublishNanos.Set(time.Now().UnixNano())
}
