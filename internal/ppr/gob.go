package ppr

import (
	"bytes"
	"encoding/gob"

	"github.com/tree-svd/treesvd/internal/graph"
)

// gobState is the wire form of a PPR state. The dirty-residue set is not
// persisted: on decode every residue node is marked dirty so the first
// Push after a load re-validates the threshold everywhere — conservative
// and always sound.
type gobState struct {
	Source int32
	Dir    uint8
	PKeys  []int32
	PVals  []float64
	RKeys  []int32
	RVals  []float64
	TKeys  []int32
}

// GobEncode implements gob.GobEncoder.
func (st *State) GobEncode() ([]byte, error) {
	wire := gobState{Source: st.Source, Dir: uint8(st.Dir)}
	for k, v := range st.P {
		wire.PKeys = append(wire.PKeys, k)
		wire.PVals = append(wire.PVals, v)
	}
	for k, v := range st.R {
		wire.RKeys = append(wire.RKeys, k)
		wire.RVals = append(wire.RVals, v)
	}
	for k := range st.Touched {
		wire.TKeys = append(wire.TKeys, k)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (st *State) GobDecode(data []byte) error {
	var wire gobState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return err
	}
	st.Source = wire.Source
	st.Dir = graph.Direction(wire.Dir)
	st.P = make(map[int32]float64, len(wire.PKeys))
	for i, k := range wire.PKeys {
		st.P[k] = wire.PVals[i]
	}
	st.R = make(map[int32]float64, len(wire.RKeys))
	st.dirtyR = make(map[int32]struct{}, len(wire.RKeys))
	for i, k := range wire.RKeys {
		st.R[k] = wire.RVals[i]
		st.dirtyR[k] = struct{}{}
	}
	st.Touched = make(map[int32]struct{}, len(wire.TKeys))
	for _, k := range wire.TKeys {
		st.Touched[k] = struct{}{}
	}
	return nil
}
