package graph

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// gobGraph is the wire form of a Graph. Both adjacency directions are
// stored verbatim (flattened, with per-node offsets): neighbor order
// affects the processing order of push queues downstream, so a loaded
// graph must be indistinguishable from the original, not merely
// edge-equivalent.
type gobGraph struct {
	Version uint8
	N       int
	OutPtr  []int32
	OutAdj  []int32
	InPtr   []int32
	InAdj   []int32
}

const gobGraphVersion = 2

func flatten(adj [][]int32) (ptr, flat []int32) {
	ptr = make([]int32, len(adj)+1)
	for i, s := range adj {
		ptr[i+1] = ptr[i] + int32(len(s))
		flat = append(flat, s...)
	}
	return ptr, flat
}

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) {
	wire := gobGraph{Version: gobGraphVersion, N: g.NumNodes()}
	wire.OutPtr, wire.OutAdj = flatten(g.out)
	wire.InPtr, wire.InAdj = flatten(g.in)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (g *Graph) GobDecode(data []byte) error {
	var wire gobGraph
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return err
	}
	if wire.Version != gobGraphVersion {
		return fmt.Errorf("graph: gob version %d, want %d", wire.Version, gobGraphVersion)
	}
	*g = *New(wire.N)
	for v := 0; v < wire.N; v++ {
		g.out[v] = append([]int32(nil), wire.OutAdj[wire.OutPtr[v]:wire.OutPtr[v+1]]...)
		g.in[v] = append([]int32(nil), wire.InAdj[wire.InPtr[v]:wire.InPtr[v+1]]...)
	}
	for u := int32(0); int(u) < wire.N; u++ {
		for _, v := range g.out[u] {
			g.edges[edgeKey(u, v)] = struct{}{}
			g.m++
		}
	}
	return nil
}
