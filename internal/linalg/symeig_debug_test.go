package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestTred2Internal verifies the Householder stage alone: the accumulated
// transform must be orthonormal and zᵀ·A·z tridiagonal with the reported
// diagonals.
func TestTred2Internal(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, n := range []int{2, 3, 5, 9} {
		b := randDense(rng, n, n)
		a := Add(b, b.T())
		zt := a.Clone()
		d := make([]float64, n)
		e := make([]float64, n)
		tred2(zt, d, e, 1)
		z := zt.T() // tred2 returns the transform transposed
		checkOrthonormalCols(t, z, 1e-10, "tred2 Q")
		tri := Mul(z.T(), Mul(a, z))
		for i := 0; i < n; i++ {
			if math.Abs(tri.At(i, i)-d[i]) > 1e-9 {
				t.Fatalf("n=%d: diag %d = %g, tred2 says %g", n, i, tri.At(i, i), d[i])
			}
			for j := 0; j < n; j++ {
				if j < i-1 || j > i+1 {
					if math.Abs(tri.At(i, j)) > 1e-9 {
						t.Fatalf("n=%d: not tridiagonal at (%d,%d): %g", n, i, j, tri.At(i, j))
					}
				}
			}
			if i > 0 && math.Abs(math.Abs(tri.At(i, i-1))-math.Abs(e[i-1+1-1]))/math.Max(1, math.Abs(e[i])) > 1e6 {
				_ = e // subdiagonal sign conventions vary; covered by tql2 end-to-end test
			}
		}
	}
}
