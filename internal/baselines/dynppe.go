// Package baselines implements the competitor methods of the paper's
// evaluation: DynPPE (hashing-based dynamic subset embedding, Guo et al.),
// Global-STRAP and Subset-STRAP (truncated-SVD matrix factorization, Yin &
// Wei), FREDE (frequent-directions row sketching, Tsitsulin et al.), and
// RandNE (iterative Gaussian random projection, Zhang et al.). All of them
// share this repository's PPR and linear-algebra substrates so timing
// comparisons are apples-to-apples.
package baselines

import (
	"context"
	"math"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/ppr"
)

// DynPPE is the hashing-based dynamic subset embedding: per source s ∈ S
// it maintains an approximate PPR vector with Forward-Push / dynamic
// Forward-Push and hashes it into d dimensions with a feature-hashing
// kernel, emb[h(v)] += ξ(v)·π̂_s(v). Updates re-hash only the PPR entries
// that changed.
type DynPPE struct {
	Sub  *ppr.Subset
	Dim  int
	seed uint64

	emb *linalg.Dense
	// shadow[i][v] is the hashed contribution ξ(v)·p_s(v) last folded into
	// row i, enabling O(changed entries) incremental re-hashing.
	shadow []map[int32]float64
}

// NewDynPPE builds the initial hashed embeddings for subset s on g.
func NewDynPPE(g *graph.Graph, s []int32, params ppr.Params, dim int, seed int64) (*DynPPE, error) {
	sub, err := ppr.NewSubsetDirs(g, s, params, true, false)
	if err != nil {
		return nil, err
	}
	d := &DynPPE{
		Sub:    sub,
		Dim:    dim,
		seed:   uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567,
		emb:    linalg.NewDense(len(s), dim),
		shadow: make([]map[int32]float64, len(s)),
	}
	for i := range d.shadow {
		d.shadow[i] = make(map[int32]float64)
		d.rehashRow(i)
	}
	return d, nil
}

// hash maps a node to (dimension, sign) with a splitmix64 mix.
func (d *DynPPE) hash(v int32) (int, float64) {
	x := uint64(v)*0xBF58476D1CE4E5B9 + d.seed
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	dim := int(x % uint64(d.Dim))
	sign := 1.0
	if (x>>40)&1 == 1 {
		sign = -1
	}
	return dim, sign
}

// rehashRow folds the changed PPR entries of row i into its embedding.
// Entries are hashed on the same log(p/r_max) scale the MF methods use
// for their proximity matrices (values below r_max contribute nothing),
// which keeps the hash kernel from being dominated by the handful of
// largest probabilities.
func (d *DynPPE) rehashRow(i int) {
	st := d.Sub.Fwd[i]
	rmax := d.Sub.Engine.Params.RMax
	row := d.emb.Row(i)
	for v := range st.Touched {
		dim, sign := d.hash(v)
		var contrib float64
		if arg := st.P[v] / rmax; arg > 1 {
			contrib = sign * math.Log(arg)
		}
		row[dim] += contrib - d.shadow[i][v]
		if contrib == 0 {
			delete(d.shadow[i], v)
		} else {
			d.shadow[i][v] = contrib
		}
	}
	st.Touched = make(map[int32]struct{})
}

// ApplyEvents advances the graph, incrementally repairs every PPR vector,
// and re-hashes only the affected entries.
func (d *DynPPE) ApplyEvents(ctx context.Context, events []graph.Event) error {
	if err := d.Sub.ApplyEvents(ctx, events); err != nil {
		return err
	}
	for i := range d.shadow {
		d.rehashRow(i)
	}
	return nil
}

// Embedding returns the |S|×d hashed embedding matrix (live storage; do
// not mutate).
func (d *DynPPE) Embedding() *linalg.Dense { return d.emb }
