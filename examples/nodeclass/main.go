// Nodeclass: classify target users with embeddings maintained over a
// dynamic graph — Exp. 3 of the paper in miniature. At every snapshot the
// subset embedding is lazily updated and a logistic-regression classifier
// is retrained on half the subset; accuracy rises as the graph matures.
package main

import (
	"context"
	"fmt"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/eval"
	"github.com/tree-svd/treesvd/internal/linalg"
)

func main() {
	ds := dataset.Generate(dataset.ScaleProfile(dataset.Patent(), 0.5))
	stream := ds.Stream
	subset := ds.SampleSubset(1, 200, 11)
	labels := ds.LabelsFor(subset)
	fmt.Printf("Patent-like stream: %d nodes, %d classes, %d snapshots; |S|=%d\n",
		stream.NumNodes, ds.Profile.Communities, stream.NumSnapshots(), len(subset))

	g := stream.BuildSnapshot(1)
	cfg := treesvd.Defaults()
	cfg.Dim = 32
	cfg.MaxNodes = stream.NumNodes
	emb, err := treesvd.New(g, subset, cfg)
	if err != nil {
		panic(err)
	}

	classify := func() float64 {
		rows := emb.Embedding()
		x := linalg.NewDense(len(rows), len(rows[0]))
		for i, r := range rows {
			copy(x.Row(i), r)
		}
		micro, _ := eval.Classify(x, labels, ds.Profile.Communities, 0.5, eval.DefaultLogRegConfig())
		return micro
	}

	fmt.Printf("snapshot  1: micro-F1 %.1f%% (full build)\n", 100*classify())
	for t := 2; t <= stream.NumSnapshots(); t++ {
		batch := stream.SnapshotEvents(t)
		t0 := time.Now()
		if _, err := emb.ApplyEvents(context.Background(), batch); err != nil {
			panic(err)
		}
		upd := time.Since(t0)
		if t%4 == 0 || t == stream.NumSnapshots() {
			fmt.Printf("snapshot %2d: micro-F1 %.1f%% (update %v, %d blocks re-factored)\n",
				t, 100*classify(), upd.Round(time.Millisecond), emb.LastStats().Level1Rebuilt)
		}
	}
	fmt.Println("\nAccuracy improves as the stream matures because the embedding is")
	fmt.Println("kept in sync with the topology at a small incremental cost.")
}
