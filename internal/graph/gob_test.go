package graph

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestGraphGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(30)
	for i := 0; i < 150; i++ {
		g.InsertEdge(int32(rng.Intn(30)), int32(rng.Intn(30)))
	}
	// Some deletions so adjacency order reflects swap-removes.
	for i := 0; i < 20; i++ {
		u := int32(rng.Intn(30))
		if nbrs := g.OutNeighbors(u); len(nbrs) > 1 {
			g.DeleteEdge(u, nbrs[rng.Intn(len(nbrs))])
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatal(err)
	}
	g2 := &Graph{}
	if err := gob.NewDecoder(&buf).Decode(g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	// Adjacency order must be preserved verbatim in both directions —
	// downstream push queues depend on it for reproducibility.
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		for dir := range []Direction{Forward, Reverse} {
			a, b := g.Neighbors(v, Direction(dir)), g2.Neighbors(v, Direction(dir))
			if len(a) != len(b) {
				t.Fatalf("node %d dir %d degree mismatch", v, dir)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d dir %d adjacency order differs at %d", v, dir, i)
				}
			}
		}
	}
	// Edge set behaves.
	if !g2.HasEdge(g.OutNeighbors(0)[0], 0) && g2.HasEdge(0, g.OutNeighbors(0)[0]) != g.HasEdge(0, g.OutNeighbors(0)[0]) {
		t.Fatal("edge set inconsistent after decode")
	}
	// Mutations still work on the decoded graph.
	before := g2.NumEdges()
	g2.InsertEdge(28, 29)
	if g2.NumEdges() != before+1 && g.HasEdge(28, 29) == false {
		t.Fatal("decoded graph not mutable")
	}
}
