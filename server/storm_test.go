package server_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/client"
	"github.com/tree-svd/treesvd/server"
)

// TestServingStorm is the serving-layer storm (run under -race): reader
// goroutines hammer Recommend/Embedding through the client SDK while a
// writer streams ApplyEvents batches and another goroutine cycles
// graceful shutdown/restart of the server (new listener each cycle, same
// embedder). Transport errors during a swap are expected and skipped;
// every response that does succeed must be internally consistent — its
// row shapes match the subset/dim, its recommendations respect the k
// contract, and the version it reports never moves backwards, because
// every server generation fronts the same snapshot sequence.
func TestServingStorm(t *testing.T) {
	g := buildGraph(rand.New(rand.NewSource(23)), 40, 160)
	emb, err := treesvd.New(g, testSubset, treesvd.Config{Dim: 6, RMax: 1e-3, MaxNodes: 256})
	if err != nil {
		t.Fatal(err)
	}

	// currentURL always points at the live server generation.
	var currentURL atomic.Value
	srv := server.New(emb, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	currentURL.Store(srv.URL())

	const (
		readers      = 4
		readIters    = 120
		writerEvents = 200
		restarts     = 4
	)
	var (
		wg       sync.WaitGroup
		fails    atomic.Int64
		okReads  atomic.Int64
		okWrites atomic.Int64
	)
	fail := func(format string, args ...any) {
		fails.Add(1)
		t.Errorf(format, args...)
	}
	ctx := context.Background()

	// transient reports whether an error is an expected casualty of the
	// shutdown/restart cycle rather than a correctness bug: connection
	// refused/reset around a listener swap, or a typed error a reader
	// deliberately provoked.
	transient := func(err error) bool {
		var apiErr *client.APIError
		return err != nil && !errors.As(err, &apiErr)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastVersion uint64
			for i := 0; i < readIters; i++ {
				c := client.New(currentURL.Load().(string),
					client.WithRetries(0), client.WithBinary(rng.Intn(2) == 0))
				switch rng.Intn(3) {
				case 0:
					k := 1 + rng.Intn(8)
					src := testSubset[rng.Intn(len(testSubset))]
					res, err := c.Recommend(ctx, src, k)
					if err != nil {
						if !transient(err) {
							fail("reader: recommend: %v", err)
						}
						continue
					}
					if len(res.Recs) > k {
						fail("reader: %d recs for k=%d", len(res.Recs), k)
					}
					for j := 1; j < len(res.Recs); j++ {
						if res.Recs[j].Score > res.Recs[j-1].Score {
							fail("reader: recs not sorted at %d", j)
						}
					}
					if res.Version < lastVersion {
						fail("reader: version went backwards: %d after %d", res.Version, lastVersion)
					}
					lastVersion = res.Version
				case 1:
					res, err := c.Embedding(ctx)
					if err != nil {
						if !transient(err) {
							fail("reader: embedding: %v", err)
						}
						continue
					}
					if len(res.Rows) != len(testSubset) {
						fail("reader: embedding has %d rows, want %d", len(res.Rows), len(testSubset))
					}
					for _, row := range res.Rows {
						if len(row) != 6 {
							fail("reader: embedding row dim %d, want 6", len(row))
						}
					}
					if res.Version < lastVersion {
						fail("reader: version went backwards: %d after %d", res.Version, lastVersion)
					}
					lastVersion = res.Version
				default:
					ver, err := c.Version(ctx)
					if err != nil {
						if !transient(err) {
							fail("reader: version: %v", err)
						}
						continue
					}
					if ver.Version < lastVersion {
						fail("reader: version went backwards: %d after %d", ver.Version, lastVersion)
					}
					lastVersion = ver.Version
					if ver.SubsetSize != len(testSubset) {
						fail("reader: subset size %d, want %d", ver.SubsetSize, len(testSubset))
					}
				}
				okReads.Add(1)
			}
		}(int64(100 + r))
	}

	// Writer: small streamed batches against whichever generation is live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < writerEvents/4; i++ {
			batch := make([]treesvd.Event, 4)
			for j := range batch {
				batch[j] = treesvd.Event{U: int32(rng.Intn(60)), V: int32(rng.Intn(60)), Type: treesvd.Insert}
			}
			c := client.New(currentURL.Load().(string), client.WithRetries(0))
			res, err := c.ApplyEvents(ctx, batch)
			if err != nil {
				if !transient(err) {
					fail("writer: %v", err)
				}
				continue
			}
			if res.Events != len(batch) {
				fail("writer: applied %d events, want %d", res.Events, len(batch))
			}
			okWrites.Add(1)
		}
	}()

	// Restart cycler: bring up the next generation, repoint clients, then
	// drain the old one. The embedder (and its metric registry) is shared
	// across generations, exercising the metricsFor reuse path every time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		old := srv
		for i := 0; i < restarts; i++ {
			time.Sleep(15 * time.Millisecond)
			next := server.New(emb, server.Options{})
			if err := next.Start("127.0.0.1:0"); err != nil {
				fail("restart %d: %v", i, err)
				return
			}
			currentURL.Store(next.URL())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := old.Shutdown(ctx); err != nil {
				fail("shutdown %d: %v", i, err)
			}
			cancel()
			old = next
		}
		srv = old
	}()

	wg.Wait()
	defer srv.Shutdown(context.Background())

	if okReads.Load() == 0 || okWrites.Load() == 0 {
		t.Fatalf("storm made no progress: %d reads, %d writes succeeded", okReads.Load(), okWrites.Load())
	}
	t.Logf("storm: %d reads, %d writes succeeded across %d restarts (failures: %d)",
		okReads.Load(), okWrites.Load(), restarts, fails.Load())

	// The embedder must still be coherent after the storm.
	if err := emb.Audit(); err != nil {
		t.Fatalf("post-storm audit: %v", err)
	}
}
