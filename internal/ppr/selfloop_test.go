package ppr

import (
	"context"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// cloneMap copies a residue/estimate map.
func cloneMap(m map[int32]float64) map[int32]float64 {
	out := make(map[int32]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// TestSelfLoopSinkTransitionNoOp is the ISSUE 3 regression for the
// self-loop corruption bug: under the engine's dangling-node convention a
// sink already behaves as if it had a self-loop, so making that loop
// explicit (or removing an explicit last-edge self-loop) leaves the
// effective traversal matrix unchanged and the exact Algorithm 2
// correction is a no-op. The a ≠ b sink-transition formulas used to run
// here instead, deflating p(a) by a factor α on insert (and inflating it
// by 1/α on delete) while manufacturing artificial residue.
func TestSelfLoopSinkTransitionNoOp(t *testing.T) {
	g := graph.New(3)
	g.InsertEdge(0, 1)
	g.InsertEdge(0, 2)
	// Node 1 is dangling; PPR from 0 parks (1−α)/2 of its mass there.
	eng, err := NewEngine(g, Params{Alpha: 0.2, RMax: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(0, graph.Forward)
	eng.Push(st)
	if st.P[1] < 0.1 {
		t.Fatalf("setup: expected estimate mass at dangling node 1, got %g", st.P[1])
	}
	p0, r0 := cloneMap(st.P), cloneMap(st.R)

	// Dangling → explicit self-loop: must not move any estimate or residue.
	ev := graph.Event{U: 1, V: 1, Type: graph.Insert}
	if !g.Apply(ev) {
		t.Fatal("setup: self-loop insert rejected")
	}
	eng.AdjustEvent(st, ev)
	for u, v := range p0 {
		if st.P[u] != v {
			t.Errorf("insert(1,1): p(%d) changed %g -> %g; self-loop on a sink must be a no-op", u, v, st.P[u])
		}
	}
	for u, v := range r0 {
		if st.R[u] != v {
			t.Errorf("insert(1,1): r(%d) changed %g -> %g", u, v, st.R[u])
		}
	}
	if len(st.P) != len(p0) || len(st.R) != len(r0) {
		t.Errorf("insert(1,1): support changed: |P| %d -> %d, |R| %d -> %d", len(p0), len(st.P), len(r0), len(st.R))
	}

	// Explicit self-loop → dangling: the inverse transition, also a no-op.
	ev = graph.Event{U: 1, V: 1, Type: graph.Delete}
	if !g.Apply(ev) {
		t.Fatal("setup: self-loop delete rejected")
	}
	eng.AdjustEvent(st, ev)
	for u, v := range p0 {
		if st.P[u] != v {
			t.Errorf("delete(1,1): p(%d) changed %g -> %g", u, v, st.P[u])
		}
	}
	for u, v := range r0 {
		if st.R[u] != v {
			t.Errorf("delete(1,1): r(%d) changed %g -> %g", u, v, st.R[u])
		}
	}
}

// TestSelfLoopGeneralCorrection checks the derived a == b correction on a
// node that keeps other out-edges: insert then delete of a self-loop must
// keep the estimates consistent with a from-scratch push within the
// pointwise residue bound.
func TestSelfLoopGeneralCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 20, 60)
	params := Params{Alpha: 0.15, RMax: 1e-6}
	inc, err := NewSubset(g, []int32{0, 1, 2}, params)
	if err != nil {
		t.Fatal(err)
	}
	var events []graph.Event
	for u := int32(0); u < 20; u++ {
		events = append(events, graph.Event{U: u, V: u, Type: graph.Insert})
	}
	for u := int32(0); u < 20; u += 2 {
		events = append(events, graph.Event{U: u, V: u, Type: graph.Delete})
	}
	if err := inc.ApplyEvents(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSubset(g.Clone(), []int32{0, 1, 2}, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.S {
		for _, pair := range [][2]*State{{inc.Fwd[i], fresh.Fwd[i]}, {inc.Rev[i], fresh.Rev[i]}} {
			bound := pair[0].ResidueL1() + pair[1].ResidueL1()
			seen := make(map[int32]struct{})
			for u := range pair[0].P {
				seen[u] = struct{}{}
			}
			for u := range pair[1].P {
				seen[u] = struct{}{}
			}
			for u := range seen {
				if d := abs(pair[0].P[u] - pair[1].P[u]); d > bound {
					t.Errorf("source %d dir %v: |Δp(%d)| = %g exceeds residue bound %g",
						inc.S[i], pair[0].Dir, u, d, bound)
				}
			}
		}
	}
}

// TestSelfLoopEstimateAccuracy drives a self-loop-heavy event stream
// incrementally and checks the final estimates against exact PPR (power
// iteration) within the Σ|r| pointwise guarantee.
func TestSelfLoopEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New(15)
	for v := int32(0); v < 15; v++ {
		g.InsertEdge(v, (v+1)%15)
	}
	params := Params{Alpha: 0.2, RMax: 1e-6}
	sub, err := NewSubset(g, []int32{0}, params)
	if err != nil {
		t.Fatal(err)
	}
	var events []graph.Event
	for k := 0; k < 120; k++ {
		u := int32(rng.Intn(15))
		switch rng.Intn(4) {
		case 0:
			events = append(events, graph.Event{U: u, V: u, Type: graph.Insert})
		case 1:
			events = append(events, graph.Event{U: u, V: u, Type: graph.Delete})
		case 2:
			events = append(events, graph.Event{U: u, V: int32(rng.Intn(15)), Type: graph.Delete})
		default:
			events = append(events, graph.Event{U: u, V: int32(rng.Intn(15)), Type: graph.Insert})
		}
	}
	for i := 0; i < len(events); i += 9 {
		end := min(i+9, len(events))
		if err := sub.ApplyEvents(context.Background(), events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	for _, dir := range []graph.Direction{graph.Forward, graph.Reverse} {
		st := sub.Fwd[0]
		if dir == graph.Reverse {
			st = sub.Rev[0]
		}
		exact := exactPPR(g, 0, params.Alpha, dir)
		bound := st.ResidueL1() + 1e-9
		for u, pi := range exact {
			if d := abs(st.P[int32(u)] - pi); d > bound {
				t.Errorf("dir %v: |p(%d) − π(%d)| = %g exceeds Σ|r| = %g", dir, u, u, d, bound)
			}
		}
	}
}
